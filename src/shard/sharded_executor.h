/**
 * @file
 * Row-parallel sharded LUT-GEMM execution over worker groups.
 *
 * A ShardedExecutor owns one long-lived leader thread per shard, each
 * with its own ExecutionContext (ThreadPool + workspace) — contexts
 * are single-client, so concurrent per-shard kernels need disjoint
 * resources. Leaders (and the pool workers they spawn) pin to the CPU
 * set planned for their shard (shard/numa.h): on a multi-node machine
 * each worker group stays on one NUMA node next to its key slab.
 *
 * run() executes one layer GEMM: every shard runs an ordinary
 * lutGemm() over its row slice (Packed/Simd consume the sliced key
 * slab; Reference/Threaded gather from the sliced planes), and the
 * combine step is pure concatenation — each shard writes its disjoint
 * output-row range of the shared result. No output element is touched
 * by more than one shard and per-row accumulation order is the
 * unsharded kernel's, so the result is bit-identical to a single
 * unsharded call by construction, for all four backends.
 *
 * Counters stay execution-invariant: a sharded run rebuilds each
 * (column, group) LUT set once per shard — executor overhead that the
 * simulator's interconnect/overhead model prices — so the per-shard
 * counters are discarded and the full-tensor closed form
 * (addLutGemmClosedFormCounters) is added exactly once. Reported
 * counters are bit-identical to shards=1.
 */

#ifndef FIGLUT_SHARD_SHARDED_EXECUTOR_H
#define FIGLUT_SHARD_SHARDED_EXECUTOR_H

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/execution_context.h"
#include "core/lut_gemm.h"
#include "shard/numa.h"
#include "shard/shard_plan.h"

namespace figlut {

/** Executes a ShardPlan's GEMMs across per-shard worker groups. */
class ShardedExecutor
{
  public:
    /**
     * @param plan    sliced operands; must outlive the executor.
     * @param threads total worker budget across all shards (<= 0 =
     *                auto: each group sizes to its CPU set, or an
     *                equal split of the hardware concurrency when
     *                unpinned). An explicit count is split evenly.
     * @param cpuSets per-shard CPU sets (normally
     *                shardCpuSets(detectNumaTopology(), shards));
     *                empty, or an empty entry, leaves that group
     *                unpinned.
     */
    ShardedExecutor(const ShardPlan &plan, int threads,
                    std::vector<CpuSet> cpuSets = {});

    /** Joins all leader threads (and their worker pools). */
    ~ShardedExecutor();

    ShardedExecutor(const ShardedExecutor &) = delete;
    ShardedExecutor &operator=(const ShardedExecutor &) = delete;

    int shards() const { return plan_->shards(); }

    /** Leader threads whose affinity mask was accepted by the OS. */
    std::size_t pinnedGroups() const { return pinnedGroups_; }

    /** Worker budget each shard group runs with. */
    int threadsPerShard() const { return threadsPerShard_; }

    /**
     * Run one sharded layer GEMM: y = W x for the plan's (layer, op)
     * operand against activations x (N x B), returning the full M x B
     * result. Counters (optional) accumulate the canonical unsharded
     * closed form exactly once. Throws (via the leaders' captured
     * first exception) exactly like the unsharded kernel would.
     */
    MatrixD run(std::size_t layer, LayerOp op, const MatrixD &x,
                const LutGemmConfig &config, LutGemmCounters *counters);

  private:
    /** One published unit of work, consumed by every leader. */
    struct Job
    {
        std::size_t layer = 0;
        LayerOp op = LayerOp::QkvProj;
        const MatrixD *x = nullptr;
        const LutGemmConfig *config = nullptr;
        MatrixD *y = nullptr;
    };

    void leaderLoop(std::size_t shard);
    void runShard(std::size_t shard, const Job &job);

    const ShardPlan *plan_;
    std::vector<CpuSet> cpuSets_;
    int threadsPerShard_ = 1;
    std::size_t pinnedGroups_ = 0;

    std::vector<std::unique_ptr<ExecutionContext>> contexts_;
    std::vector<std::thread> leaders_;

    std::mutex mutex_;
    std::condition_variable jobReady_;
    std::condition_variable jobDone_;
    Job job_;
    uint64_t generation_ = 0;   ///< bumps once per published job
    std::size_t remaining_ = 0; ///< leaders still running the job
    std::size_t started_ = 0;   ///< leaders up (startup barrier)
    std::exception_ptr firstError_;
    bool stopping_ = false;
};

} // namespace figlut

#endif // FIGLUT_SHARD_SHARDED_EXECUTOR_H
