#include "shard/numa.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <thread>

namespace figlut {
namespace {

/** Highest node id probed in sysfs; nodes above this are ignored. */
constexpr int kMaxProbedNode = 255;

} // namespace

std::size_t
NumaTopology::totalCpus() const
{
    std::size_t total = 0;
    for (const NumaNode &node : nodes)
        total += node.cpus.size();
    return total;
}

CpuSet
parseCpuList(const std::string &text)
{
    CpuSet cpus;
    std::stringstream stream(text);
    std::string item;
    while (std::getline(stream, item, ',')) {
        const auto dash = item.find('-');
        try {
            if (dash == std::string::npos) {
                cpus.push_back(std::stoi(item));
            } else {
                const int lo = std::stoi(item.substr(0, dash));
                const int hi = std::stoi(item.substr(dash + 1));
                for (int cpu = lo; cpu <= hi; ++cpu)
                    cpus.push_back(cpu);
            }
        } catch (...) {
            // Malformed fragment: skip it, keep what parsed.
        }
    }
    std::sort(cpus.begin(), cpus.end());
    cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
    return cpus;
}

NumaTopology
detectNumaTopology()
{
    NumaTopology topology;
#if defined(__linux__)
    for (int id = 0; id <= kMaxProbedNode; ++id) {
        const std::string path = "/sys/devices/system/node/node" +
                                 std::to_string(id) + "/cpulist";
        std::ifstream file(path);
        if (!file.is_open())
            continue;
        std::string line;
        std::getline(file, line);
        CpuSet cpus = parseCpuList(line);
        if (!cpus.empty())
            topology.nodes.push_back({id, std::move(cpus)});
    }
#endif
    if (topology.nodes.empty()) {
        // Non-Linux or sysfs unavailable: one node over all CPUs.
        const int hw = resolveThreadCount(0);
        NumaNode node;
        node.cpus.reserve(static_cast<std::size_t>(hw));
        for (int cpu = 0; cpu < hw; ++cpu)
            node.cpus.push_back(cpu);
        topology.nodes.push_back(std::move(node));
    }
    return topology;
}

std::vector<CpuSet>
shardCpuSets(const NumaTopology &topology, int shards)
{
    std::vector<CpuSet> sets;
    if (shards <= 0)
        return sets;
    sets.reserve(static_cast<std::size_t>(shards));
    if (topology.nodeCount() >= 2) {
        for (int s = 0; s < shards; ++s)
            sets.push_back(
                topology
                    .nodes[static_cast<std::size_t>(s) %
                           topology.nodeCount()]
                    .cpus);
        return sets;
    }
    static const CpuSet kNoCpus;
    const CpuSet &cpus =
        topology.nodes.empty() ? kNoCpus : topology.nodes[0].cpus;
    const std::size_t n = cpus.size();
    const auto count = static_cast<std::size_t>(shards);
    for (std::size_t s = 0; s < count; ++s) {
        if (n == 0) {
            sets.emplace_back(); // nothing known: leave unpinned
        } else if (n < count) {
            sets.push_back({cpus[s % n]});
        } else {
            const std::size_t lo = s * n / count;
            const std::size_t hi = (s + 1) * n / count;
            sets.emplace_back(cpus.begin() +
                                  static_cast<std::ptrdiff_t>(lo),
                              cpus.begin() +
                                  static_cast<std::ptrdiff_t>(hi));
        }
    }
    return sets;
}

} // namespace figlut
