/**
 * @file
 * NUMA topology detection and shard -> CPU-set placement.
 *
 * Sharded execution (shard/sharded_executor.h) wants each worker
 * group's threads co-located with the memory its key slab lives in.
 * On Linux the node layout is read from
 * /sys/devices/system/node/node<N>/cpulist; everywhere else (or when
 * sysfs is absent) the machine is treated as one node spanning every
 * logical CPU. Placement is then pure arithmetic: with multiple nodes
 * each shard takes a whole node (round-robin when shards > nodes);
 * with one node the CPU list is partitioned into near-equal contiguous
 * slices so worker groups at least avoid sharing cores. Pinning is an
 * optimization only — every fallback path leaves threads unpinned and
 * results are independent of placement.
 */

#ifndef FIGLUT_SHARD_NUMA_H
#define FIGLUT_SHARD_NUMA_H

#include <cstddef>
#include <string>
#include <vector>

#include "core/parallel.h"

namespace figlut {

/** One NUMA node: its OS id and the logical CPUs it owns. */
struct NumaNode
{
    int id = 0;
    CpuSet cpus;
};

/** The machine's node layout as seen by the shard planner. */
struct NumaTopology
{
    std::vector<NumaNode> nodes;

    std::size_t nodeCount() const { return nodes.size(); }

    /** Total logical CPUs across all nodes. */
    std::size_t totalCpus() const;
};

/**
 * Parse a Linux sysfs cpulist string ("0-3,8,10-11") into a sorted
 * CPU set. Malformed fragments are skipped; an unparseable string
 * yields an empty set.
 */
CpuSet parseCpuList(const std::string &text);

/**
 * Detect the node layout. Linux: one NumaNode per
 * /sys/devices/system/node/node<N> with a readable cpulist. Fallback
 * (non-Linux, sysfs missing or empty): a single node 0 covering CPUs
 * [0, hardware_concurrency).
 */
NumaTopology detectNumaTopology();

/**
 * Plan one CPU set per shard. Multiple nodes: shard i pins to node
 * (i mod nodes) — worker groups land whole-node and shards beyond the
 * node count share. One node: its CPU list is split into `shards`
 * near-equal contiguous slices; with fewer CPUs than shards each
 * shard gets one CPU round-robin. shards <= 0 returns an empty plan.
 */
std::vector<CpuSet> shardCpuSets(const NumaTopology &topology,
                                 int shards);

} // namespace figlut

#endif // FIGLUT_SHARD_NUMA_H
