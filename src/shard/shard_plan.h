/**
 * @file
 * Row-wise shard partitioning of a quantized model.
 *
 * A ShardPlan slices every layer GEMM operand of a QuantizedModel —
 * the BcqTensor and, when the model materialized them, its
 * PackedLutKeys — into N contiguous row ranges, built exactly once at
 * plan construction (the sharded analogue of QuantizedModel's
 * one-time quantize/pack pass). Each shard's slice is a complete,
 * self-consistent operand: column geometry (cols, groupSize, groups,
 * chunk layout) is untouched, only the output rows change, so a
 * per-shard lutGemm() call is an ordinary kernel invocation and every
 * output row is computed by exactly one shard with the unsharded
 * accumulation order. That is the whole bit-identity argument — see
 * DESIGN.md, "Sharded execution".
 *
 * Key slabs slice cheaply: PackedLutKeys stores [plane][chunk][row]
 * with rows innermost, so a row range is one contiguous copy per
 * (plane, chunk).
 */

#ifndef FIGLUT_SHARD_SHARD_PLAN_H
#define FIGLUT_SHARD_SHARD_PLAN_H

#include <cstddef>
#include <vector>

#include "model/workload.h"
#include "quant/bcq.h"
#include "quant/packing.h"
#include "runtime/quantized_model.h"

namespace figlut {

/** Half-open output-row range [begin, end) owned by one shard. */
struct ShardRowRange
{
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t size() const { return end - begin; }
    bool empty() const { return begin == end; }
};

/**
 * Split [0, rows) into `shards` contiguous near-equal ranges (sizes
 * differ by at most one; with shards > rows the tail ranges are
 * empty). Ranges are disjoint and cover [0, rows) in order.
 */
std::vector<ShardRowRange> planShardRows(std::size_t rows, int shards);

/** Row slice [r0, r1) of a BCQ tensor (planes, alphas, offsets). */
BcqTensor sliceBcqRows(const BcqTensor &tensor, std::size_t r0,
                       std::size_t r1);

/**
 * Row slice [r0, r1) of pre-packed LUT keys. Chunk geometry fields
 * are copied unchanged; only rows and the key payload shrink. The
 * result is bit-identical to packLutKeys(sliceBcqRows(...), mu).
 */
PackedLutKeys slicePackedKeysRows(const PackedLutKeys &keys,
                                  std::size_t r0, std::size_t r1);

/** Per-shard row slices of one layer GEMM operand. */
struct ShardedOperand
{
    std::vector<ShardRowRange> ranges;
    std::vector<BcqTensor> tensors;
    /** Empty when the model was built without packed keys. */
    std::vector<PackedLutKeys> keys;

    std::size_t shards() const { return ranges.size(); }
};

/**
 * All per-shard operand slices of a quantized model, built once.
 *
 * The plan holds copies of the sliced weights/keys (each output row's
 * data lives in exactly one shard's slab — first-touch by that
 * shard's worker group places it on the right node), so it is
 * independent of the source model's lifetime after construction.
 */
class ShardPlan
{
  public:
    /**
     * Slice every GEMM operand of `model` into `shards` row ranges.
     * shards must be >= 1; shards == 1 is a valid degenerate plan
     * (whole-operand "slices"), though the executor is normally only
     * engaged for shards >= 2.
     */
    ShardPlan(const QuantizedModel &model, int shards);

    int shards() const { return shards_; }
    std::size_t layers() const { return layers_.size(); }

    /** Sliced operand of a GEMM step; fatal for non-GEMM ops. */
    const ShardedOperand &operand(std::size_t layer, LayerOp op) const;

    /** Total bytes held by the sliced tensors + key slabs. */
    std::size_t storageBytes() const;

  private:
    /** The four GEMM operands of one layer, indexed by gemmOperandIndex. */
    struct LayerShards
    {
        ShardedOperand ops[4];
    };

    int shards_ = 1;
    std::vector<LayerShards> layers_;
};

/** Dense 0..3 index of a GEMM LayerOp; fatal for vector ops. */
std::size_t gemmOperandIndex(LayerOp op);

} // namespace figlut

#endif // FIGLUT_SHARD_SHARD_PLAN_H
