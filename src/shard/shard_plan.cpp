#include "shard/shard_plan.h"

#include <algorithm>

#include "common/logging.h"

namespace figlut {
namespace {

/** Copy rows [r0, r1) of a matrix into a fresh (r1-r0) x cols one. */
template <typename T>
Matrix<T>
sliceMatrixRows(const Matrix<T> &src, std::size_t r0, std::size_t r1)
{
    Matrix<T> out(r1 - r0, src.cols());
    for (std::size_t r = r0; r < r1; ++r)
        for (std::size_t c = 0; c < src.cols(); ++c)
            out(r - r0, c) = src(r, c);
    return out;
}

} // namespace

std::vector<ShardRowRange>
planShardRows(std::size_t rows, int shards)
{
    FIGLUT_ASSERT(shards >= 1, "planShardRows needs shards >= 1");
    const auto count = static_cast<std::size_t>(shards);
    std::vector<ShardRowRange> ranges;
    ranges.reserve(count);
    for (std::size_t s = 0; s < count; ++s)
        ranges.push_back({s * rows / count, (s + 1) * rows / count});
    return ranges;
}

BcqTensor
sliceBcqRows(const BcqTensor &tensor, std::size_t r0, std::size_t r1)
{
    FIGLUT_ASSERT(r0 <= r1 && r1 <= tensor.rows,
                  "BCQ row slice out of range");
    BcqTensor out;
    out.rows = r1 - r0;
    out.cols = tensor.cols;
    out.bits = tensor.bits;
    out.groupSize = tensor.groupSize;
    out.hasOffset = tensor.hasOffset;
    out.planes.reserve(tensor.planes.size());
    for (const auto &plane : tensor.planes)
        out.planes.push_back(sliceMatrixRows(plane, r0, r1));
    out.alphas.reserve(tensor.alphas.size());
    for (const auto &alpha : tensor.alphas)
        out.alphas.push_back(sliceMatrixRows(alpha, r0, r1));
    if (tensor.offsets.size() > 0)
        out.offsets = sliceMatrixRows(tensor.offsets, r0, r1);
    return out;
}

PackedLutKeys
slicePackedKeysRows(const PackedLutKeys &keys, std::size_t r0,
                    std::size_t r1)
{
    FIGLUT_ASSERT(r0 <= r1 && r1 <= keys.rows,
                  "packed-key row slice out of range");
    PackedLutKeys out;
    out.mu = keys.mu;
    out.bits = keys.bits;
    out.rows = r1 - r0;
    out.cols = keys.cols;
    out.groupSize = keys.groupSize;
    out.groups = keys.groups;
    out.totalChunks = keys.totalChunks;
    out.groupChunkStart = keys.groupChunkStart;
    const std::size_t outRows = out.rows;
    out.keys.resize(static_cast<std::size_t>(keys.bits) *
                    keys.totalChunks * outRows);
    // Rows are the innermost index, so each (plane, chunk) slice is
    // one contiguous block copy.
    for (int plane = 0; plane < keys.bits; ++plane) {
        for (std::size_t chunk = 0; chunk < keys.totalChunks; ++chunk) {
            const uint32_t *src = keys.chunkKeys(plane, chunk) + r0;
            uint32_t *dst =
                out.keys.data() +
                (static_cast<std::size_t>(plane) * out.totalChunks +
                 chunk) *
                    outRows;
            std::copy(src, src + outRows, dst);
        }
    }
    return out;
}

std::size_t
gemmOperandIndex(LayerOp op)
{
    switch (op) {
      case LayerOp::QkvProj:
        return 0;
      case LayerOp::OutProj:
        return 1;
      case LayerOp::Fc1:
        return 2;
      case LayerOp::Fc2:
        return 3;
      default:
        fatal("gemmOperandIndex: LayerOp is not a GEMM operand");
    }
}

ShardPlan::ShardPlan(const QuantizedModel &model, int shards)
    : shards_(shards)
{
    FIGLUT_ASSERT(shards >= 1, "ShardPlan needs shards >= 1");
    const LayerOp gemmOps[4] = {LayerOp::QkvProj, LayerOp::OutProj,
                                LayerOp::Fc1, LayerOp::Fc2};
    layers_.resize(model.layers());
    for (std::size_t l = 0; l < model.layers(); ++l) {
        const QuantizedLayer &layer = model.layer(l);
        for (const LayerOp op : gemmOps) {
            ShardedOperand &sharded =
                layers_[l].ops[gemmOperandIndex(op)];
            const BcqTensor &weights = layer.weights(op);
            const PackedLutKeys &keys = layer.keys(op);
            const bool hasKeys = keys.rows > 0;
            sharded.ranges = planShardRows(weights.rows, shards);
            sharded.tensors.reserve(sharded.ranges.size());
            if (hasKeys)
                sharded.keys.reserve(sharded.ranges.size());
            for (const ShardRowRange &range : sharded.ranges) {
                sharded.tensors.push_back(
                    sliceBcqRows(weights, range.begin, range.end));
                if (hasKeys)
                    sharded.keys.push_back(slicePackedKeysRows(
                        keys, range.begin, range.end));
            }
        }
    }
}

const ShardedOperand &
ShardPlan::operand(std::size_t layer, LayerOp op) const
{
    FIGLUT_ASSERT(layer < layers_.size(),
                  "ShardPlan layer index out of range");
    return layers_[layer].ops[gemmOperandIndex(op)];
}

std::size_t
ShardPlan::storageBytes() const
{
    std::size_t bytes = 0;
    for (const LayerShards &layer : layers_) {
        for (const ShardedOperand &op : layer.ops) {
            for (const BcqTensor &tensor : op.tensors)
                bytes += tensor.storageBits() / 8;
            for (const PackedLutKeys &keys : op.keys)
                bytes += keys.keyBytes();
        }
    }
    return bytes;
}

} // namespace figlut
