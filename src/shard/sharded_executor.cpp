#include "shard/sharded_executor.h"

#include <algorithm>

#include "common/logging.h"

namespace figlut {
namespace {

/**
 * Worker budget of one shard group: an explicit total splits evenly
 * (at least one worker each); auto sizes the group to its CPU set
 * when pinned, else to an equal split of the hardware concurrency.
 */
int
groupThreadBudget(int totalThreads, int shards, const CpuSet &cpus)
{
    if (totalThreads > 0)
        return std::max(1, totalThreads / std::max(1, shards));
    if (!cpus.empty())
        return static_cast<int>(cpus.size());
    return std::max(1, resolveThreadCount(0) / std::max(1, shards));
}

} // namespace

ShardedExecutor::ShardedExecutor(const ShardPlan &plan, int threads,
                                 std::vector<CpuSet> cpuSets)
    : plan_(&plan), cpuSets_(std::move(cpuSets))
{
    const auto shards = static_cast<std::size_t>(plan.shards());
    cpuSets_.resize(shards); // missing entries = unpinned
    contexts_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        const int budget = groupThreadBudget(threads, plan.shards(),
                                             cpuSets_[s]);
        if (s == 0)
            threadsPerShard_ = budget;
        contexts_.push_back(
            std::make_unique<ExecutionContext>(budget, cpuSets_[s]));
    }
    leaders_.reserve(shards);
    try {
        for (std::size_t s = 0; s < shards; ++s)
            leaders_.emplace_back([this, s] { leaderLoop(s); });
    } catch (...) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        jobReady_.notify_all();
        for (auto &leader : leaders_)
            leader.join();
        throw;
    }
    // Wait until every leader has applied (or skipped) its affinity,
    // so pinnedGroups() is stable from here on.
    std::unique_lock<std::mutex> lock(mutex_);
    jobDone_.wait(lock, [this, shards] { return started_ == shards; });
}

ShardedExecutor::~ShardedExecutor()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    jobReady_.notify_all();
    for (auto &leader : leaders_)
        leader.join();
}

MatrixD
ShardedExecutor::run(std::size_t layer, LayerOp op, const MatrixD &x,
                     const LutGemmConfig &config,
                     LutGemmCounters *counters)
{
    const ShardedOperand &operand = plan_->operand(layer, op);
    FIGLUT_ASSERT(!operand.ranges.empty(),
                  "sharded operand has no row ranges");
    const std::size_t rows = operand.ranges.back().end;
    MatrixD y(rows, x.cols(), 0.0);

    {
        std::unique_lock<std::mutex> lock(mutex_);
        job_ = Job{layer, op, &x, &config, &y};
        remaining_ = leaders_.size();
        ++generation_;
    }
    jobReady_.notify_all();
    {
        std::unique_lock<std::mutex> lock(mutex_);
        jobDone_.wait(lock, [this] { return remaining_ == 0; });
        if (firstError_) {
            auto err = firstError_;
            firstError_ = nullptr;
            lock.unlock();
            std::rethrow_exception(err);
        }
    }

    if (counters != nullptr) {
        // Canonical (execution-invariant) accounting: the closed
        // forms read only the shape scalars, so a payload-free tensor
        // describing the FULL operand reproduces the unsharded call's
        // counters exactly. Per-shard LUT rebuilds are deliberately
        // not counted — they are executor overhead, priced by the
        // simulator's interconnect/overhead term, not kernel work.
        const BcqTensor &slice0 = operand.tensors.front();
        BcqTensor shape;
        shape.rows = rows;
        shape.cols = slice0.cols;
        shape.bits = slice0.bits;
        shape.groupSize = slice0.groupSize;
        shape.hasOffset = slice0.hasOffset;
        addLutGemmClosedFormCounters(shape, config, x.cols(),
                                     *counters);
    }
    return y;
}

void
ShardedExecutor::leaderLoop(std::size_t shard)
{
    const bool pinned = applyThreadAffinity(cpuSets_[shard]);
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (pinned)
            ++pinnedGroups_;
        ++started_;
    }
    jobDone_.notify_all();

    uint64_t seen = 0;
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            jobReady_.wait(lock, [this, seen] {
                return stopping_ || generation_ != seen;
            });
            if (stopping_)
                return;
            seen = generation_;
            job = job_;
        }
        try {
            runShard(shard, job);
        } catch (...) {
            std::unique_lock<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --remaining_;
        }
        jobDone_.notify_all();
    }
}

void
ShardedExecutor::runShard(std::size_t shard, const Job &job)
{
    const ShardedOperand &operand = plan_->operand(job.layer, job.op);
    const ShardRowRange range = operand.ranges[shard];
    if (range.empty())
        return; // more shards than rows: nothing owned here
    const BcqTensor &weights = operand.tensors[shard];
    ExecutionContext *ctx = contexts_[shard].get();
    // Per-shard counters are discarded (nullptr): run() adds the
    // full-tensor closed form once instead. Keys ride along only for
    // the backends that consume them — Reference/Threaded reject
    // pre-packed keys by contract.
    const bool useKeys =
        !operand.keys.empty() &&
        (job.config->backend == LutGemmBackend::Packed ||
         job.config->backend == LutGemmBackend::Simd);
    MatrixD slice =
        useKeys ? lutGemm(weights, *job.x, *job.config,
                          operand.keys[shard], nullptr, ctx)
                : lutGemm(weights, *job.x, *job.config, nullptr, ctx);
    // Concat combine: this shard owns output rows [begin, end) and no
    // other shard touches them.
    MatrixD &y = *job.y;
    for (std::size_t r = 0; r < slice.rows(); ++r)
        for (std::size_t b = 0; b < slice.cols(); ++b)
            y(range.begin + r, b) = slice(r, b);
}

} // namespace figlut
