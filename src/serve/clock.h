/**
 * @file
 * Time source of the serving layer.
 *
 * Engine stamps every request-level timing (queue wait, TTFT, decode
 * seconds) through an EngineClock instead of reading the system clock
 * directly, so the same accounting code runs in two modes:
 *
 *  - SteadyClock: monotonic wall-clock seconds — production serving
 *    and the measured runs of the serving_load harness.
 *  - VirtualClock: a manually advanced timeline — deterministic
 *    latency tests, and trace replays where simulated kernel durations
 *    (sim/trace_replay.h) drive time instead of host speed.
 *
 * A clock is passed to the engine by pointer (EngineOptions::clock)
 * and must outlive it; the engine only ever calls now(), so one
 * VirtualClock can be shared between a test driver and the engine it
 * drives.
 */

#ifndef FIGLUT_SERVE_CLOCK_H
#define FIGLUT_SERVE_CLOCK_H

#include <chrono>

namespace figlut {
namespace serve {

/** Monotonic time source, in seconds on an arbitrary epoch. */
class EngineClock
{
  public:
    virtual ~EngineClock() = default;

    /** Current time in seconds; never decreases between calls. */
    virtual double now() const = 0;
};

/** Wall-clock seconds since construction (std::chrono::steady_clock). */
class SteadyClock final : public EngineClock
{
  public:
    double now() const override;

  private:
    std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
};

/** A timeline advanced explicitly by the driver (tests, replays). */
class VirtualClock final : public EngineClock
{
  public:
    double now() const override { return nowS_; }

    /** Move time forward by `seconds` (must be >= 0). */
    void advance(double seconds);

    /** Jump to an absolute time (must not move backwards). */
    void set(double seconds);

  private:
    double nowS_ = 0.0;
};

} // namespace serve
} // namespace figlut

#endif // FIGLUT_SERVE_CLOCK_H
