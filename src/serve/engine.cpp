#include "serve/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "model/synthetic.h"
#include "runtime/reference_ops.h"
#include "shard/numa.h"
#include "shard/shard_plan.h"
#include "shard/sharded_executor.h"

namespace figlut {
namespace serve {

namespace {

/** Only the Packed and Simd backends consume pre-packed keys; skip
 *  the materialization (roughly q bytes per weight) for the others. */
ModelOptions
modelOptionsFor(const EngineOptions &options)
{
    ModelOptions model = options.model;
    model.packKeys = options.exec.backend == LutGemmBackend::Packed ||
                     options.exec.backend == LutGemmBackend::Simd;
    return model;
}

/**
 * One fused-batch column's exact share of a step's kernel counters.
 * Every closed form (core/lut_gemm.cpp) is linear in the batch columns
 * with no cross-column or per-call constant term, so the totals divide
 * evenly; a remainder would mean the accounting gained a cross-column
 * term and per-request attribution is no longer exact. A request's
 * share is this times the columns it contributed (one decode column,
 * or its prefill chunk) — equal-per-request splits would misbill
 * mixed prefill/decode steps.
 */
LutGemmCounters
perColumnShare(const LutGemmCounters &total, std::size_t columns)
{
    auto split = [columns](uint64_t v) {
        FIGLUT_ASSERT(v % columns == 0,
                      "fused-step counter ", v,
                      " not divisible by live batch ", columns);
        return v / columns;
    };
    LutGemmCounters share;
    share.lutGenerations = split(total.lutGenerations);
    share.generatorAdds = split(total.generatorAdds);
    share.lutReads = split(total.lutReads);
    share.racAccumulates = split(total.racAccumulates);
    share.scaleMuls = split(total.scaleMuls);
    share.offsetOps = split(total.offsetOps);
    return share;
}

LutGemmCounters
scaleCounters(const LutGemmCounters &share, std::size_t columns)
{
    LutGemmCounters scaled;
    scaled.lutGenerations = share.lutGenerations * columns;
    scaled.generatorAdds = share.generatorAdds * columns;
    scaled.lutReads = share.lutReads * columns;
    scaled.racAccumulates = share.racAccumulates * columns;
    scaled.scaleMuls = share.scaleMuls * columns;
    scaled.offsetOps = share.offsetOps * columns;
    return scaled;
}

bool
countersEqual(const LutGemmCounters &a, const LutGemmCounters &b)
{
    return a.lutGenerations == b.lutGenerations &&
           a.generatorAdds == b.generatorAdds &&
           a.lutReads == b.lutReads &&
           a.racAccumulates == b.racAccumulates &&
           a.scaleMuls == b.scaleMuls && a.offsetOps == b.offsetOps;
}

void
accumulate(LutGemmCounters &into, const LutGemmCounters &add)
{
    into.lutGenerations += add.lutGenerations;
    into.generatorAdds += add.generatorAdds;
    into.lutReads += add.lutReads;
    into.racAccumulates += add.racAccumulates;
    into.scaleMuls += add.scaleMuls;
    into.offsetOps += add.offsetOps;
}

Status
validateEngineConfig(const OptConfig &model, const EngineOptions &options)
{
    if (model.hidden == 0 || model.layers == 0 || model.ffn == 0)
        return Status::invalidArgument(
            "Engine needs a non-empty OptConfig, got hidden=",
            model.hidden, " layers=", model.layers, " ffn=", model.ffn);
    if (model.heads == 0 || model.hidden % model.heads != 0)
        return Status::invalidArgument(
            "Engine needs hidden divisible by heads, got ", model.hidden,
            " / ", model.heads);
    if (options.model.weightBits < 1)
        return Status::invalidArgument(
            "Engine weightBits must be >= 1, got ",
            options.model.weightBits);
    if (options.maxBatch == 0)
        return Status::invalidArgument(
            "Engine maxBatch must be positive: a batch of 0 can never ",
            "decode a request");
    if (options.kvBlockTokens == 0)
        return Status::invalidArgument(
            "Engine kvBlockTokens must be >= 1: the KV arena cannot ",
            "page with empty blocks");
    if (options.kvBudgetBytes > 0) {
        // One decode step needs at least one block on every layer.
        const std::size_t blockBytes =
            options.kvBlockTokens * 2 * model.hidden * sizeof(double);
        const std::size_t floor = blockBytes * model.layers;
        if (options.kvBudgetBytes < floor)
            return Status::invalidArgument(
                "Engine kvBudgetBytes ", options.kvBudgetBytes,
                " cannot hold one block per layer (", model.layers,
                " layers x ", blockBytes, "-byte blocks = ", floor,
                " bytes); raise the budget or shrink kvBlockTokens");
    }
    return validateExecOptions(options.exec, options.model.mu);
}

KvArena::Options
arenaOptionsFor(const OptConfig &model, const EngineOptions &options)
{
    KvArena::Options arena;
    arena.hidden = model.hidden;
    arena.layers = model.layers;
    arena.blockTokens = options.kvBlockTokens;
    arena.budgetBytes = options.kvBudgetBytes;
    return arena;
}

} // namespace

Result<std::unique_ptr<Engine>>
Engine::create(const OptConfig &model, const EngineOptions &options)
{
    if (Status s = validateEngineConfig(model, options); !s.ok())
        return s;
    return std::unique_ptr<Engine>(new Engine(model, options));
}

Engine::Engine(const OptConfig &model, const EngineOptions &options)
    : model_(model, modelOptionsFor(options)), options_(options),
      ctx_(options.exec.threads),
      clock_(options.clock != nullptr ? options.clock : &ownedClock_),
      arena_(arenaOptionsFor(model, options), options.faults)
{
    options_.model.packKeys = model_.options().packKeys;
    // Resolve the shard count once (explicit knob, else FIGLUT_SHARDS,
    // else 1) and normalize it back into the stored options so every
    // downstream consumer — workloadTasks(), simulate(), callers
    // reading options() — sees the resolved value. shards == 1 keeps
    // the unsharded path byte-for-byte: no plan, no extra threads.
    shards_ = resolveShardCount(options_.exec.shards);
    options_.exec.shards = shards_;
    if (shards_ > 1) {
        shardPlan_ = std::make_unique<ShardPlan>(model_, shards_);
        shardExec_ = std::make_unique<ShardedExecutor>(
            *shardPlan_, options_.exec.threads,
            shardCpuSets(detectNumaTopology(), shards_));
    }
    // Only the semantic op order is needed to drive the numeric step;
    // the analytic view is rebuilt per call because the live batch and
    // its context lengths change between steps.
    WorkloadOptions opOrder;
    opOrder.batch = 1;
    opOrder.contextLen = 1;
    for (const auto &spec : layerSpecs(model_.config(), opOrder))
        layerOps_.push_back(spec.op);
}

Engine::~Engine() = default;

Engine::Request *
Engine::find(RequestId id)
{
    const auto it = requests_.find(id);
    return it == requests_.end() ? nullptr : &it->second;
}

const Engine::Request *
Engine::find(RequestId id) const
{
    const auto it = requests_.find(id);
    return it == requests_.end() ? nullptr : &it->second;
}

std::size_t
Engine::contextTokens(const Request &req) const
{
    // The arena sequence is authoritative while it exists; otherwise
    // (queued, or re-queued after an eviction) the analytic count is
    // the per-life bookkeeping. Unlike the synthetic-prompt era this
    // is honest: prompt entries exist only once prefill computed them.
    if (req.seq != KvArena::kInvalidSeq)
        return arena_.tokens(req.seq);
    return req.prefillDone + req.lifeTokens;
}

std::size_t
Engine::remainingPrompt(const Request &req) const
{
    const std::size_t prompt =
        req.promptDropped ? 0 : req.options.promptTokens;
    return prompt > req.prefillDone ? prompt - req.prefillDone : 0;
}

Result<RequestId>
Engine::submit(const RequestOptions &request)
{
    if (request.deadlineS < 0.0)
        return Status::invalidArgument(
            "request deadlineS must be >= 0, got ", request.deadlineS);
    // A new request only bypasses the queue when the queue is empty —
    // earlier submits waiting for a slot keep their FIFO position even
    // if a cancellation just freed one (the next step admits them).
    const bool direct =
        active_.size() < options_.maxBatch && queue_.empty();
    if (!direct && queue_.size() >= options_.maxQueue)
        return Status::resourceExhausted(
            "engine at capacity: ", active_.size(), " live (maxBatch ",
            options_.maxBatch, ") and ", queue_.size(),
            " queued (maxQueue ", options_.maxQueue,
            "); retry after step() retires traffic");

    const RequestId id = nextId_++;
    Request req;
    req.options = request;
    req.submitTimeS = clock_->now();
    // The initial hidden state comes first in the request's RNG
    // stream; the prompt embeddings follow, but are materialized
    // lazily at the request's first work step (see prepareLife) so
    // queued traffic holds no prompt or KV bytes.
    Rng rng(request.seed);
    req.hidden = syntheticActivations(model_.config().hidden, 1, rng);
    if (direct) {
        req.state = RequestState::Active;
        req.admitSeq = ++admitCounter_;
        req.lastActivityS = req.submitTimeS;
        active_.push_back(id);
    } else {
        req.state = RequestState::Queued;
        queue_.push_back(id);
    }
    requests_.emplace(id, std::move(req));
    return id;
}

Status
Engine::provideInput(RequestId id, const MatrixD &hidden)
{
    Request *req = find(id);
    if (req == nullptr)
        return Status::notFound("unknown request id ", id);
    if (requestStateTerminal(req->state))
        return Status::failedPrecondition(
            "request ", id, " already retired (",
            requestStateName(req->state), ")");
    const std::size_t h = model_.config().hidden;
    if (hidden.rows() != h || hidden.cols() != 1)
        return Status::invalidArgument("request input must be ", h,
                                       "x1, got ", hidden.rows(), "x",
                                       hidden.cols());
    req->hidden = hidden;
    return Status::okStatus();
}

std::size_t
Engine::admitFromQueue(double nowS)
{
    // queueSeconds is deliberately NOT stamped here: admission is
    // bookkeeping, not decode. step() stamps it at the start of the
    // first fused step that actually decodes the request, so the full
    // pre-decode wait (queue + admitted-but-idle) lands in one bucket.
    std::size_t admitted = 0;
    while (active_.size() < options_.maxBatch && !queue_.empty()) {
        const RequestId id = queue_.front();
        queue_.pop_front();
        Request &req = requests_.at(id);
        req.state = RequestState::Active;
        req.admitSeq = ++admitCounter_;
        req.lastActivityS = nowS;
        active_.push_back(id);
        ++admitted;
    }
    return admitted;
}

void
Engine::retireSequence(Request &req, bool retain)
{
    if (req.seq == KvArena::kInvalidSeq)
        return;
    if (retain && options_.retainFinishedKv)
        req.retainedKv = arena_.materialize(req.seq);
    arena_.releaseSequence(req.seq);
    req.seq = KvArena::kInvalidSeq;
}

void
Engine::sweepDeadlines(double nowS, std::vector<RequestId> &expired)
{
    // Active columns first, then the queue, both in order — the same
    // sweep order replayTrace() mirrors.
    std::vector<RequestId> sweep(active_.begin(), active_.end());
    sweep.insert(sweep.end(), queue_.begin(), queue_.end());
    for (const RequestId id : sweep) {
        Request &req = requests_.at(id);
        if (req.options.deadlineS <= 0.0 ||
            nowS <= req.submitTimeS + req.options.deadlineS)
            continue;
        retireSequence(req, /*retain=*/false);
        removeFromSchedule(id);
        req.state = RequestState::DeadlineExceeded;
        req.terminal = Status::deadlineExceeded(
            "request ", id, " missed its ", req.options.deadlineS,
            "s deadline at t=", nowS);
        expired.push_back(id);
    }
}

void
Engine::reserveStep(StepStats &stats, std::vector<std::size_t> &work,
                    double nowS)
{
    // Work assignment first: each live request's column count this
    // step — its prefill chunk out of the shared per-step budget, or
    // one decode column (serve/degradation.h).
    std::vector<std::size_t> remaining;
    remaining.reserve(active_.size());
    for (const RequestId id : active_)
        remaining.push_back(remainingPrompt(requests_.at(id)));
    const std::vector<std::size_t> assigned =
        planPrefillChunks(remaining, options_.prefillChunkTokens);

    // The reservation view covers the working requests only: a
    // stalled prefill (chunk budget exhausted this step) needs no new
    // tokens and keeps its held blocks — it is neither a requester
    // nor a victim this step.
    std::vector<ReservationItem> items;
    std::vector<std::size_t> itemToActive;
    items.reserve(active_.size());
    for (std::size_t i = 0; i < active_.size(); ++i) {
        if (assigned[i] == 0)
            continue;
        Request &req = requests_.at(active_[i]);
        if (req.seq == KvArena::kInvalidSeq)
            req.seq = arena_.createSequence();
        ReservationItem item;
        item.seq = req.seq;
        item.needTokens = contextTokens(req) + assigned[i];
        item.lastActivityS = req.lastActivityS;
        item.admitSeq = req.admitSeq;
        items.push_back(item);
        itemToActive.push_back(i);
    }
    const ReservationPlan plan =
        planStepReservations(arena_, options_.policy, items);

    // The planner already released every victim's sequence; apply the
    // request-side transitions here.
    std::vector<char> dropped(active_.size(), 0);
    std::vector<RequestId> evicted;
    for (const std::size_t idx : plan.evicted) {
        const std::size_t slot = itemToActive[idx];
        const RequestId id = active_[slot];
        Request &req = requests_.at(id);
        req.seq = KvArena::kInvalidSeq;
        req.state = RequestState::Preempted;
        req.stats.preemptions += 1;
        req.lifeTokens = 0;
        req.prefillDone = 0;
        req.promptEmbeds = MatrixD();
        req.lifeReady = false;
        req.restartPending = true;
        req.requeuedAtS = nowS;
        dropped[slot] = 1;
        evicted.push_back(id);
        stats.evictedIds.push_back(id);
    }
    for (const std::size_t idx : plan.shed) {
        const std::size_t slot = itemToActive[idx];
        const RequestId id = active_[slot];
        Request &req = requests_.at(id);
        req.seq = KvArena::kInvalidSeq;
        req.state = RequestState::Shed;
        req.terminal = Status::resourceExhausted(
            "request ", id, " shed: KV budget of ",
            options_.kvBudgetBytes, " bytes cannot back its next token ",
            "(policy ", degradationPolicyName(options_.policy), ")");
        dropped[slot] = 1;
        stats.shedIds.push_back(id);
    }

    // Survivors keep their batch order (stalled prefills stay live
    // with zero columns this step); evicted requests rejoin the queue
    // FRONT in admission order, ahead of never-admitted traffic (they
    // already waited once).
    std::vector<RequestId> keep;
    keep.reserve(active_.size());
    work.clear();
    for (std::size_t i = 0; i < active_.size(); ++i) {
        if (dropped[i])
            continue;
        keep.push_back(active_[i]);
        work.push_back(assigned[i]);
    }
    active_ = std::move(keep);
    std::sort(evicted.begin(), evicted.end(),
              [this](RequestId a, RequestId b) {
                  return requests_.at(a).admitSeq >
                         requests_.at(b).admitSeq;
              });
    for (const RequestId id : evicted) {
        requests_.at(id).state = RequestState::Queued;
        queue_.push_front(id);
    }
}

void
Engine::prepareLife(Request &req)
{
    if (req.lifeReady)
        return;
    const std::size_t h = model_.config().hidden;
    // Replay the submit-time RNG stream: hidden state first, then the
    // prompt embeddings. On a preemption restart the redrawn hidden
    // replaces the evicted life's progress (the from-scratch
    // recompute); on a first admission the request still holds that
    // exact draw (or a provideInput override, which must win), so the
    // redraw is discarded.
    Rng rng(req.options.seed);
    MatrixD first = syntheticActivations(h, 1, rng);
    if (req.stats.preemptions > 0)
        req.hidden = std::move(first);
    const std::size_t prompt = remainingPrompt(req);
    if (prompt > 0)
        req.promptEmbeds = syntheticActivations(h, prompt, rng);
    req.lifeReady = true;
}

Result<StepStats>
Engine::step()
{
    if (active_.empty() && queue_.empty())
        return Status::failedPrecondition(
            "no live requests to decode; submit() first");

    StepStats stats;
    const double t0 = clock_->now();
    // Injected skew shifts only the deadline clock: latency accounting
    // stays on the real time source, but deadlines can fire early or
    // late — the overload harness's "clock skew" fault.
    const double skewS = options_.faults != nullptr
                             ? options_.faults->clockSkewS(stepsExecuted_)
                             : 0.0;
    sweepDeadlines(t0 + skewS, stats.deadlineIds);

    stats.admitted = admitFromQueue(t0);
    if (active_.empty()) {
        // The sweep emptied the schedule. Not an error (the caller
        // did have live traffic) — an empty step that decodes nothing
        // and does not count toward stepsExecuted().
        stats.queueDepth = queue_.size();
        stats.kvBlocksInUse = arena_.blocksInUse();
        stats.kvBytesInUse = arena_.bytesInUse();
        return stats;
    }

    // Work assignment + KV reservation pass: after this, every
    // assigned column has its arena slot block-backed, so the numeric
    // step cannot fail.
    std::vector<std::size_t> work;
    reserveStep(stats, work, t0);
    std::vector<Request *> live;
    std::vector<RequestId> liveIds;
    std::vector<std::size_t> columns;
    for (std::size_t i = 0; i < active_.size(); ++i) {
        if (work[i] == 0)
            continue;
        live.push_back(&requests_.at(active_[i]));
        liveIds.push_back(active_[i]);
        columns.push_back(work[i]);
    }
    if (live.empty()) {
        // Governance dropped every working column (all shed, or every
        // budget-holding request evicted and re-queued, leaving at
        // most stalled prefills). Refill and report the empty step;
        // the next step re-assigns the chunk budget.
        stats.admitted += admitFromQueue(t0);
        stats.queueDepth = queue_.size();
        stats.kvBlocksInUse = arena_.blocksInUse();
        stats.kvBytesInUse = arena_.bytesInUse();
        return stats;
    }

    const OptConfig &cfg = model_.config();
    const std::size_t h = cfg.hidden;
    const std::size_t b = live.size();
    stats.liveRequests = b;

    // First work step of a life: replay the seed (restart hidden
    // redraw + prompt embeddings). First work step ever: everything
    // before this instant was waiting (queue + admitted-but-idle), not
    // compute. A restarted life instead books its renewed wait into
    // restartSeconds.
    std::vector<char> prefilling(b, 0);
    std::vector<std::size_t> held(b, 0);
    for (std::size_t w = 0; w < b; ++w) {
        Request &req = *live[w];
        prepareLife(req);
        if (!req.everWorked) {
            req.stats.queueSeconds = t0 - req.submitTimeS;
            req.everWorked = true;
        }
        if (req.restartPending) {
            req.stats.restartSeconds += t0 - req.requeuedAtS;
            req.restartPending = false;
        }
        prefilling[w] = remainingPrompt(req) > 0 ? 1 : 0;
        held[w] = contextTokens(req);
    }

    // Gather: each working request's columns are contiguous in the
    // fused batch — its next prefill chunk (prompt embedding columns)
    // while its prompt is unfinished, its one decode column (the
    // latest hidden state) after — so every layer GEMM below runs
    // once over the whole mixed-width batch.
    std::size_t W = 0;
    for (const std::size_t c : columns)
        W += c;
    MatrixD x(h, W);
    std::size_t base = 0;
    for (std::size_t w = 0; w < b; ++w) {
        Request &req = *live[w];
        if (prefilling[w]) {
            for (std::size_t j = 0; j < columns[w]; ++j)
                for (std::size_t r = 0; r < h; ++r)
                    x(r, base + j) =
                        req.promptEmbeds(r, req.prefillDone + j);
            stats.prefillIds.push_back(liveIds[w]);
            stats.prefillTokens += columns[w];
        } else {
            for (std::size_t r = 0; r < h; ++r)
                x(r, base) = req.hidden(r, 0);
            stats.decodedIds.push_back(liveIds[w]);
            stats.decodeTokens += 1;
        }
        for (std::size_t j = 0; j < columns[w]; ++j)
            stats.columnContexts.push_back(held[w] + j + 1);
        base += columns[w];
    }

    const LutGemmConfig gemmCfg =
        makeGemmConfig(options_.exec, options_.model.mu);
    auto runGemm = [&](std::size_t l, LayerOp op, const MatrixD &in) {
        ++stats.gemmCalls;
        // Sharded path: the executor runs the plan's row slices on its
        // worker groups and concatenates — bit-identical output and
        // canonical (shard-invariant) counters by construction.
        if (shardExec_ != nullptr)
            return shardExec_->run(l, op, in, gemmCfg, &stats.counters);
        const QuantizedLayer &layer = model_.layer(l);
        // The pre-packed overload serves the Packed and Simd backends;
        // the others gather keys from the bit planes themselves.
        if (gemmCfg.backend == LutGemmBackend::Packed ||
            gemmCfg.backend == LutGemmBackend::Simd)
            return lutGemm(layer.weights(op), in, gemmCfg,
                           layer.keys(op), &stats.counters, &ctx_);
        return lutGemm(layer.weights(op), in, gemmCfg, &stats.counters,
                       &ctx_);
    };

    // Same per-column arithmetic as a batch-1 Session step: the GEMM
    // and every vector op treat columns independently, so each request
    // is bit-identical to running alone (the differential suite pins
    // this) — and a prefill chunked any which way is bit-identical to
    // the whole prompt in one step (the prefill suite pins that).
    MatrixD ln, qkv, attn, proj, ffn;
    std::vector<std::vector<KvTokenRef>> views(W);
    std::vector<KvTokenRef> full;
    for (std::size_t l = 0; l < model_.layers(); ++l) {
        for (const LayerOp op : layerOps_) {
            switch (op) {
              case LayerOp::LayerNorm1:
              case LayerOp::LayerNorm2:
                ln = referenceLayerNorm(x);
                break;
              case LayerOp::QkvProj:
                qkv = runGemm(l, op, ln);
                break;
              case LayerOp::Attention: {
                MatrixD q(h, W);
                std::size_t c0 = 0;
                for (std::size_t w = 0; w < b; ++w) {
                    // Every column's K/V go straight into reserved
                    // arena slots — then each column attends causally
                    // over the prefix ending at itself: position
                    // held + j sees held + j + 1 entries. For a decode
                    // column that prefix is the full sequence, exactly
                    // the old decode attention.
                    for (std::size_t j = 0; j < columns[w]; ++j) {
                        const std::size_t c = c0 + j;
                        const KvArena::TokenSlot slot =
                            arena_.appendToken(live[w]->seq, l);
                        for (std::size_t r = 0; r < h; ++r) {
                            q(r, c) = qkv(r, c);
                            slot.k[r] = qkv(h + r, c);
                            slot.v[r] = qkv(2 * h + r, c);
                        }
                    }
                    arena_.tokenRefs(live[w]->seq, l, full);
                    for (std::size_t j = 0; j < columns[w]; ++j)
                        views[c0 + j].assign(
                            full.begin(),
                            full.begin() +
                                (full.size() - columns[w] + j + 1));
                    c0 += columns[w];
                }
                attn = referenceDecodeAttention(q, views, cfg.heads);
                break;
              }
              case LayerOp::OutProj:
                proj = runGemm(l, op, attn);
                break;
              case LayerOp::Residual1:
              case LayerOp::Residual2:
                x = referenceResidualAdd(x, proj);
                break;
              case LayerOp::Fc1:
                ffn = runGemm(l, op, ln);
                break;
              case LayerOp::Gelu:
                ffn = options_.exec.lutGelu ? referenceGeluLut(ffn)
                                            : referenceGelu(ffn);
                break;
              case LayerOp::Fc2:
                proj = runGemm(l, op, ffn);
                break;
            }
        }
    }

    const double t1 = clock_->now();
    stats.seconds = t1 - t0;

    // Scatter + per-request accounting, then retire exhausted budgets.
    // Counter shares are token-weighted: each request gets the
    // per-column share times the columns it contributed, and the
    // shares must reassemble to the step total exactly.
    const LutGemmCounters share = perColumnShare(stats.counters, W);
    LutGemmCounters reassembled;
    std::vector<RequestId> retired;
    base = 0;
    for (std::size_t w = 0; w < b; ++w) {
        Request &req = *live[w];
        const LutGemmCounters reqShare = scaleCounters(share, columns[w]);
        accumulate(req.stats.counters, reqShare);
        accumulate(reassembled, reqShare);
        req.stats.gemmCalls += stats.gemmCalls;
        req.stats.decodeSeconds += stats.seconds;
        req.lastActivityS = t0;
        if (prefilling[w]) {
            req.prefillDone += columns[w];
            req.stats.prefillTokens += columns[w];
            req.stats.prefillSeconds += stats.seconds;
            if (remainingPrompt(req) == 0) {
                // Prefill complete: the final prompt column's output
                // is the first decode input; the embeddings are spent.
                for (std::size_t r = 0; r < h; ++r)
                    req.hidden(r, 0) = x(r, base + columns[w] - 1);
                req.promptEmbeds = MatrixD();
            }
        } else {
            for (std::size_t r = 0; r < h; ++r)
                req.hidden(r, 0) = x(r, base);
            req.stats.tokensDecoded += 1;
            req.lifeTokens += 1;
            if (req.stats.tokensDecoded == 1)
                req.stats.ttftSeconds = t1 - req.submitTimeS;
            if (req.options.maxTokens > 0 &&
                req.lifeTokens >= req.options.maxTokens) {
                req.state = RequestState::Finished;
                retireSequence(req, /*retain=*/true);
                retired.push_back(liveIds[w]);
            }
        }
        base += columns[w];
    }
    FIGLUT_ASSERT(countersEqual(reassembled, stats.counters),
                  "token-weighted counter shares did not reassemble to ",
                  "the fused-step total");
    for (const RequestId id : retired)
        removeFromSchedule(id);
    stats.retired = retired.size();
    // Everything still queued sat out this step's decode; count that
    // before refilling slots freed by retirement (refilling now keeps
    // the batch full between steps and drains FIFO traffic as early
    // as possible).
    for (const RequestId id : queue_)
        requests_.at(id).stats.queuedSteps += 1;
    stats.admitted += admitFromQueue(t0);
    stats.queueDepth = queue_.size();
    stats.kvBlocksInUse = arena_.blocksInUse();
    stats.kvBytesInUse = arena_.bytesInUse();
    ++stepsExecuted_;
    return stats;
}

Result<RequestSnapshot>
Engine::poll(RequestId id) const
{
    const Request *req = find(id);
    if (req == nullptr)
        return Status::notFound("unknown request id ", id);
    RequestSnapshot snap;
    snap.id = id;
    snap.state = req->state;
    snap.hidden = req->hidden;
    snap.kvLength = requestStateTerminal(req->state)
                        ? req->retainedKv.length()
                        : contextTokens(*req);
    snap.stats = req->stats;
    snap.terminal = req->terminal;
    return snap;
}

Status
Engine::cancel(RequestId id)
{
    Request *req = find(id);
    if (req == nullptr)
        return Status::notFound("unknown request id ", id);
    if (requestStateTerminal(req->state))
        return Status::failedPrecondition(
            "request ", id, " already retired (",
            requestStateName(req->state), ")");
    removeFromSchedule(id);
    retireSequence(*req, /*retain=*/true);
    req->state = RequestState::Cancelled;
    req->terminal = Status::cancelled("request ", id,
                                      " cancelled by the client");
    return Status::okStatus();
}

Status
Engine::resetKv(RequestId id)
{
    Request *req = find(id);
    if (req == nullptr)
        return Status::notFound("unknown request id ", id);
    if (requestStateTerminal(req->state))
        return Status::failedPrecondition(
            "request ", id, " already retired (",
            requestStateName(req->state), ")");
    if (req->seq != KvArena::kInvalidSeq)
        arena_.resetSequence(req->seq);
    // The prompt is gone for good, like the old contiguous clear():
    // a later life's prefill must not resurrect it (and a half-done
    // prefill stops here — the request decodes from its current
    // hidden state with an empty context).
    req->promptDropped = true;
    req->prefillDone = 0;
    req->promptEmbeds = MatrixD();
    req->lifeTokens = 0;
    return Status::okStatus();
}

Result<KvCache>
Engine::kvHistory(RequestId id) const
{
    const Request *req = find(id);
    if (req == nullptr)
        return Status::notFound("unknown request id ", id);
    if (req->seq != KvArena::kInvalidSeq)
        return arena_.materialize(req->seq);
    return req->retainedKv;
}

void
Engine::removeFromSchedule(RequestId id)
{
    active_.erase(std::remove(active_.begin(), active_.end(), id),
                  active_.end());
    const auto it = std::find(queue_.begin(), queue_.end(), id);
    if (it != queue_.end())
        queue_.erase(it);
}

std::vector<KernelTask>
Engine::workloadTasks() const
{
    // step() admits from the queue before decoding, so the scored
    // batch is the *prospective* one: live requests plus the queued
    // requests the next step will admit into free slots.
    std::vector<const Request *> next;
    next.reserve(options_.maxBatch);
    for (const RequestId id : active_)
        next.push_back(find(id));
    for (const RequestId id : queue_) {
        if (next.size() >= options_.maxBatch)
            break;
        next.push_back(find(id));
    }
    if (next.empty())
        return {};
    // Mirror step()'s work assignment: each request contributes its
    // prefill chunk (out of the shared per-step budget) or one decode
    // column, and the fused GEMM batch is the total column count.
    std::vector<std::size_t> remaining;
    remaining.reserve(next.size());
    for (const Request *req : next)
        remaining.push_back(remainingPrompt(*req));
    const std::vector<std::size_t> work =
        planPrefillChunks(remaining, options_.prefillChunkTokens);
    // The next step appends before attending, so a column at sequence
    // position p has the analytic (causal) context length p + 1.
    std::vector<std::size_t> contextLens;
    std::size_t W = 0;
    for (std::size_t i = 0; i < next.size(); ++i) {
        const std::size_t heldTokens = contextTokens(*next[i]);
        for (std::size_t j = 0; j < work[i]; ++j)
            contextLens.push_back(heldTokens + j + 1);
        W += work[i];
    }
    WorkloadOptions opts;
    opts.batch = W;
    opts.weightBits = options_.model.weightBits;
    opts.includeVector = options_.includeVector;
    opts.groupSize = options_.model.groupSize;
    opts.hasOffset = options_.model.useOffset;
    opts.shards = shards_;
    return decodeStepWorkload(model_.config(), opts, contextLens);
}

WorkloadResult
Engine::simulate(const HwConfig &hw) const
{
    const Accelerator acc(hw);
    return acc.runWorkload(workloadTasks());
}

} // namespace serve
} // namespace figlut
