#include "serve/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "model/synthetic.h"
#include "runtime/reference_ops.h"

namespace figlut {
namespace serve {

namespace {

/** Only the Packed and Simd backends consume pre-packed keys; skip
 *  the materialization (roughly q bytes per weight) for the others. */
ModelOptions
modelOptionsFor(const EngineOptions &options)
{
    ModelOptions model = options.model;
    model.packKeys = options.exec.backend == LutGemmBackend::Packed ||
                     options.exec.backend == LutGemmBackend::Simd;
    return model;
}

/**
 * One live column's exact share of a fused step's kernel counters.
 * Every closed form (core/lut_gemm.cpp) is linear in the batch columns
 * with no cross-column or per-call constant term, so the totals divide
 * evenly; a remainder would mean the accounting gained a cross-column
 * term and per-request attribution is no longer exact.
 */
LutGemmCounters
perColumnShare(const LutGemmCounters &total, std::size_t columns)
{
    auto split = [columns](uint64_t v) {
        FIGLUT_ASSERT(v % columns == 0,
                      "fused-step counter ", v,
                      " not divisible by live batch ", columns);
        return v / columns;
    };
    LutGemmCounters share;
    share.lutGenerations = split(total.lutGenerations);
    share.generatorAdds = split(total.generatorAdds);
    share.lutReads = split(total.lutReads);
    share.racAccumulates = split(total.racAccumulates);
    share.scaleMuls = split(total.scaleMuls);
    share.offsetOps = split(total.offsetOps);
    return share;
}

void
accumulate(LutGemmCounters &into, const LutGemmCounters &add)
{
    into.lutGenerations += add.lutGenerations;
    into.generatorAdds += add.generatorAdds;
    into.lutReads += add.lutReads;
    into.racAccumulates += add.racAccumulates;
    into.scaleMuls += add.scaleMuls;
    into.offsetOps += add.offsetOps;
}

Status
validateEngineConfig(const OptConfig &model, const EngineOptions &options)
{
    if (model.hidden == 0 || model.layers == 0 || model.ffn == 0)
        return Status::invalidArgument(
            "Engine needs a non-empty OptConfig, got hidden=",
            model.hidden, " layers=", model.layers, " ffn=", model.ffn);
    if (model.heads == 0 || model.hidden % model.heads != 0)
        return Status::invalidArgument(
            "Engine needs hidden divisible by heads, got ", model.hidden,
            " / ", model.heads);
    if (options.model.weightBits < 1)
        return Status::invalidArgument(
            "Engine weightBits must be >= 1, got ",
            options.model.weightBits);
    if (options.maxBatch == 0)
        return Status::invalidArgument(
            "Engine maxBatch must be positive: a batch of 0 can never ",
            "decode a request");
    if (options.kvBlockTokens == 0)
        return Status::invalidArgument(
            "Engine kvBlockTokens must be >= 1: the KV arena cannot ",
            "page with empty blocks");
    if (options.kvBudgetBytes > 0) {
        // One decode step needs at least one block on every layer.
        const std::size_t blockBytes =
            options.kvBlockTokens * 2 * model.hidden * sizeof(double);
        const std::size_t floor = blockBytes * model.layers;
        if (options.kvBudgetBytes < floor)
            return Status::invalidArgument(
                "Engine kvBudgetBytes ", options.kvBudgetBytes,
                " cannot hold one block per layer (", model.layers,
                " layers x ", blockBytes, "-byte blocks = ", floor,
                " bytes); raise the budget or shrink kvBlockTokens");
    }
    return validateExecOptions(options.exec, options.model.mu);
}

KvArena::Options
arenaOptionsFor(const OptConfig &model, const EngineOptions &options)
{
    KvArena::Options arena;
    arena.hidden = model.hidden;
    arena.layers = model.layers;
    arena.blockTokens = options.kvBlockTokens;
    arena.budgetBytes = options.kvBudgetBytes;
    return arena;
}

} // namespace

Result<std::unique_ptr<Engine>>
Engine::create(const OptConfig &model, const EngineOptions &options)
{
    if (Status s = validateEngineConfig(model, options); !s.ok())
        return s;
    return std::unique_ptr<Engine>(new Engine(model, options));
}

Engine::Engine(const OptConfig &model, const EngineOptions &options)
    : model_(model, modelOptionsFor(options)), options_(options),
      ctx_(options.exec.threads),
      clock_(options.clock != nullptr ? options.clock : &ownedClock_),
      arena_(arenaOptionsFor(model, options), options.faults)
{
    options_.model.packKeys = model_.options().packKeys;
    // Only the semantic op order is needed to drive the numeric step;
    // the analytic view is rebuilt per call because the live batch and
    // its context lengths change between steps.
    WorkloadOptions opOrder;
    opOrder.batch = 1;
    opOrder.contextLen = 1;
    for (const auto &spec : layerSpecs(model_.config(), opOrder))
        layerOps_.push_back(spec.op);
}

Engine::Request *
Engine::find(RequestId id)
{
    const auto it = requests_.find(id);
    return it == requests_.end() ? nullptr : &it->second;
}

const Engine::Request *
Engine::find(RequestId id) const
{
    const auto it = requests_.find(id);
    return it == requests_.end() ? nullptr : &it->second;
}

std::size_t
Engine::contextTokens(const Request &req) const
{
    // Before the prompt is materialized (queued, or re-queued after an
    // eviction) the count is analytic; once the arena sequence holds
    // the tokens, it is authoritative.
    if (!req.promptWritten)
        return (req.promptDropped ? 0 : req.options.promptTokens) +
               req.lifeTokens;
    if (req.seq != KvArena::kInvalidSeq)
        return arena_.tokens(req.seq);
    return req.lifeTokens;
}

Result<RequestId>
Engine::submit(const RequestOptions &request)
{
    if (request.deadlineS < 0.0)
        return Status::invalidArgument(
            "request deadlineS must be >= 0, got ", request.deadlineS);
    // A new request only bypasses the queue when the queue is empty —
    // earlier submits waiting for a slot keep their FIFO position even
    // if a cancellation just freed one (the next step admits them).
    const bool direct =
        active_.size() < options_.maxBatch && queue_.empty();
    if (!direct && queue_.size() >= options_.maxQueue)
        return Status::resourceExhausted(
            "engine at capacity: ", active_.size(), " live (maxBatch ",
            options_.maxBatch, ") and ", queue_.size(),
            " queued (maxQueue ", options_.maxQueue,
            "); retry after step() retires traffic");

    const RequestId id = nextId_++;
    Request req;
    req.options = request;
    req.submitTimeS = clock_->now();
    // The initial hidden state comes first in the request's RNG
    // stream; the synthetic prompt KV follows, but is materialized
    // lazily into the arena at the request's first decode step (see
    // writePromptIfNeeded) so queued traffic holds no KV bytes.
    Rng rng(request.seed);
    req.hidden = syntheticActivations(model_.config().hidden, 1, rng);
    if (direct) {
        req.state = RequestState::Active;
        req.admitSeq = ++admitCounter_;
        req.lastActivityS = req.submitTimeS;
        active_.push_back(id);
    } else {
        req.state = RequestState::Queued;
        queue_.push_back(id);
    }
    requests_.emplace(id, std::move(req));
    return id;
}

Status
Engine::provideInput(RequestId id, const MatrixD &hidden)
{
    Request *req = find(id);
    if (req == nullptr)
        return Status::notFound("unknown request id ", id);
    if (requestStateTerminal(req->state))
        return Status::failedPrecondition(
            "request ", id, " already retired (",
            requestStateName(req->state), ")");
    const std::size_t h = model_.config().hidden;
    if (hidden.rows() != h || hidden.cols() != 1)
        return Status::invalidArgument("request input must be ", h,
                                       "x1, got ", hidden.rows(), "x",
                                       hidden.cols());
    req->hidden = hidden;
    return Status::okStatus();
}

std::size_t
Engine::admitFromQueue(double nowS)
{
    // queueSeconds is deliberately NOT stamped here: admission is
    // bookkeeping, not decode. step() stamps it at the start of the
    // first fused step that actually decodes the request, so the full
    // pre-decode wait (queue + admitted-but-idle) lands in one bucket.
    std::size_t admitted = 0;
    while (active_.size() < options_.maxBatch && !queue_.empty()) {
        const RequestId id = queue_.front();
        queue_.pop_front();
        Request &req = requests_.at(id);
        req.state = RequestState::Active;
        req.admitSeq = ++admitCounter_;
        req.lastActivityS = nowS;
        active_.push_back(id);
        ++admitted;
    }
    return admitted;
}

void
Engine::retireSequence(Request &req, bool retain)
{
    if (req.seq == KvArena::kInvalidSeq)
        return;
    if (retain && options_.retainFinishedKv)
        req.retainedKv = arena_.materialize(req.seq);
    arena_.releaseSequence(req.seq);
    req.seq = KvArena::kInvalidSeq;
}

void
Engine::sweepDeadlines(double nowS, std::vector<RequestId> &expired)
{
    // Active columns first, then the queue, both in order — the same
    // sweep order replayTrace() mirrors.
    std::vector<RequestId> sweep(active_.begin(), active_.end());
    sweep.insert(sweep.end(), queue_.begin(), queue_.end());
    for (const RequestId id : sweep) {
        Request &req = requests_.at(id);
        if (req.options.deadlineS <= 0.0 ||
            nowS <= req.submitTimeS + req.options.deadlineS)
            continue;
        retireSequence(req, /*retain=*/false);
        removeFromSchedule(id);
        req.state = RequestState::DeadlineExceeded;
        req.terminal = Status::deadlineExceeded(
            "request ", id, " missed its ", req.options.deadlineS,
            "s deadline at t=", nowS);
        expired.push_back(id);
    }
}

void
Engine::reserveStep(StepStats &stats)
{
    // Build the reservation view of the live batch, in column order.
    std::vector<ReservationItem> items;
    items.reserve(active_.size());
    for (const RequestId id : active_) {
        Request &req = requests_.at(id);
        if (req.seq == KvArena::kInvalidSeq)
            req.seq = arena_.createSequence();
        ReservationItem item;
        item.seq = req.seq;
        item.needTokens = contextTokens(req) + 1;
        item.lastActivityS = req.lastActivityS;
        item.admitSeq = req.admitSeq;
        items.push_back(item);
    }
    const ReservationPlan plan =
        planStepReservations(arena_, options_.policy, items);

    // The planner already released every victim's sequence; apply the
    // request-side transitions here.
    std::vector<RequestId> evicted;
    for (const std::size_t idx : plan.evicted) {
        const RequestId id = active_[idx];
        Request &req = requests_.at(id);
        req.seq = KvArena::kInvalidSeq;
        req.state = RequestState::Preempted;
        req.stats.preemptions += 1;
        req.lifeTokens = 0;
        req.promptWritten = false;
        evicted.push_back(id);
        stats.evictedIds.push_back(id);
    }
    for (const std::size_t idx : plan.shed) {
        const RequestId id = active_[idx];
        Request &req = requests_.at(id);
        req.seq = KvArena::kInvalidSeq;
        req.state = RequestState::Shed;
        req.terminal = Status::resourceExhausted(
            "request ", id, " shed: KV budget of ",
            options_.kvBudgetBytes, " bytes cannot back its next token ",
            "(policy ", degradationPolicyName(options_.policy), ")");
        stats.shedIds.push_back(id);
    }

    // The decode set keeps its batch order; evicted requests rejoin
    // the queue FRONT in admission order, ahead of never-admitted
    // traffic (they already waited once).
    std::vector<RequestId> decode;
    decode.reserve(plan.decode.size());
    for (const std::size_t idx : plan.decode)
        decode.push_back(active_[idx]);
    active_ = std::move(decode);
    std::sort(evicted.begin(), evicted.end(),
              [this](RequestId a, RequestId b) {
                  return requests_.at(a).admitSeq >
                         requests_.at(b).admitSeq;
              });
    for (const RequestId id : evicted) {
        requests_.at(id).state = RequestState::Queued;
        queue_.push_front(id);
    }
}

void
Engine::writePromptIfNeeded(Request &req)
{
    if (req.promptWritten)
        return;
    const std::size_t h = model_.config().hidden;
    // Replay the submit-time RNG stream: hidden state first, then the
    // prompt K/V per (layer, token). On a preemption restart the
    // redrawn hidden replaces the evicted life's progress (the
    // from-scratch recompute); on a first admission the request still
    // holds that exact draw (or a provideInput override, which must
    // win), so the redraw is discarded.
    Rng rng(req.options.seed);
    MatrixD first = syntheticActivations(h, 1, rng);
    if (req.stats.preemptions > 0)
        req.hidden = std::move(first);
    if (!req.promptDropped) {
        for (std::size_t l = 0; l < model_.layers(); ++l) {
            for (std::size_t t = 0; t < req.options.promptTokens; ++t) {
                const MatrixD k = syntheticActivations(h, 1, rng);
                const MatrixD v = syntheticActivations(h, 1, rng);
                const KvArena::TokenSlot slot =
                    arena_.appendToken(req.seq, l);
                for (std::size_t r = 0; r < h; ++r) {
                    slot.k[r] = k(r, 0);
                    slot.v[r] = v(r, 0);
                }
            }
        }
    }
    req.promptWritten = true;
}

Result<StepStats>
Engine::step()
{
    if (active_.empty() && queue_.empty())
        return Status::failedPrecondition(
            "no live requests to decode; submit() first");

    StepStats stats;
    const double t0 = clock_->now();
    // Injected skew shifts only the deadline clock: latency accounting
    // stays on the real time source, but deadlines can fire early or
    // late — the overload harness's "clock skew" fault.
    const double skewS = options_.faults != nullptr
                             ? options_.faults->clockSkewS(stepsExecuted_)
                             : 0.0;
    sweepDeadlines(t0 + skewS, stats.deadlineIds);

    stats.admitted = admitFromQueue(t0);
    if (active_.empty()) {
        // The sweep emptied the schedule. Not an error (the caller
        // did have live traffic) — an empty step that decodes nothing
        // and does not count toward stepsExecuted().
        stats.queueDepth = queue_.size();
        stats.kvBlocksInUse = arena_.blocksInUse();
        stats.kvBytesInUse = arena_.bytesInUse();
        return stats;
    }

    // KV reservation pass: after this, every surviving column has its
    // next token block-backed, so the numeric step cannot fail.
    reserveStep(stats);
    if (active_.empty()) {
        // Governance dropped every column (all shed, or the whole
        // batch evicted and re-queued). Refill and report the empty
        // step; the next step decodes the re-admitted traffic.
        stats.admitted += admitFromQueue(t0);
        stats.queueDepth = queue_.size();
        stats.kvBlocksInUse = arena_.blocksInUse();
        stats.kvBytesInUse = arena_.bytesInUse();
        return stats;
    }

    const OptConfig &cfg = model_.config();
    const std::size_t h = cfg.hidden;
    const std::size_t b = active_.size();
    stats.liveRequests = b;

    std::vector<Request *> live;
    live.reserve(b);
    for (const RequestId id : active_)
        live.push_back(&requests_.at(id));
    stats.decodedIds = active_;

    // First decode step of a request's first life: materialize its
    // synthetic prompt into the freshly reserved sequence. Restarts
    // after eviction rebuild prompt + hidden the same way.
    for (Request *req : live)
        writePromptIfNeeded(*req);

    // First fused step for a request: everything before this instant
    // was waiting (queue + admitted-but-idle), not decoding.
    for (Request *req : live)
        if (req->stats.tokensDecoded == 0)
            req->stats.queueSeconds = t0 - req->submitTimeS;

    // Gather: one hidden column per live request, admission order, so
    // every layer GEMM below runs once over the whole live batch.
    MatrixD x(h, b);
    for (std::size_t c = 0; c < b; ++c)
        for (std::size_t r = 0; r < h; ++r)
            x(r, c) = live[c]->hidden(r, 0);

    const LutGemmConfig gemmCfg =
        makeGemmConfig(options_.exec, options_.model.mu);
    auto runGemm = [&](const BcqTensor &w, const PackedLutKeys &keys,
                       const MatrixD &in) {
        ++stats.gemmCalls;
        // The pre-packed overload serves the Packed and Simd backends;
        // the others gather keys from the bit planes themselves.
        if (gemmCfg.backend == LutGemmBackend::Packed ||
            gemmCfg.backend == LutGemmBackend::Simd)
            return lutGemm(w, in, gemmCfg, keys, &stats.counters, &ctx_);
        return lutGemm(w, in, gemmCfg, &stats.counters, &ctx_);
    };

    // Same per-column arithmetic as a batch-1 Session step: the GEMM
    // and every vector op treat columns independently, so each request
    // is bit-identical to running alone (the differential suite pins
    // this).
    MatrixD ln, qkv, attn, proj, ffn;
    std::vector<std::vector<KvTokenRef>> views(b);
    for (std::size_t l = 0; l < model_.layers(); ++l) {
        const QuantizedLayer &layer = model_.layer(l);
        for (const LayerOp op : layerOps_) {
            switch (op) {
              case LayerOp::LayerNorm1:
              case LayerOp::LayerNorm2:
                ln = referenceLayerNorm(x);
                break;
              case LayerOp::QkvProj:
                qkv = runGemm(layer.weights(op), layer.keys(op), ln);
                break;
              case LayerOp::Attention: {
                MatrixD q(h, b);
                for (std::size_t c = 0; c < b; ++c) {
                    // This token's K/V go straight into the reserved
                    // arena slot — the slab doubles attention reads.
                    const KvArena::TokenSlot slot =
                        arena_.appendToken(live[c]->seq, l);
                    for (std::size_t r = 0; r < h; ++r) {
                        q(r, c) = qkv(r, c);
                        slot.k[r] = qkv(h + r, c);
                        slot.v[r] = qkv(2 * h + r, c);
                    }
                    arena_.tokenRefs(live[c]->seq, l, views[c]);
                }
                attn = referenceDecodeAttention(q, views, cfg.heads);
                break;
              }
              case LayerOp::OutProj:
                proj = runGemm(layer.weights(op), layer.keys(op), attn);
                break;
              case LayerOp::Residual1:
              case LayerOp::Residual2:
                x = referenceResidualAdd(x, proj);
                break;
              case LayerOp::Fc1:
                ffn = runGemm(layer.weights(op), layer.keys(op), ln);
                break;
              case LayerOp::Gelu:
                ffn = options_.exec.lutGelu ? referenceGeluLut(ffn)
                                            : referenceGelu(ffn);
                break;
              case LayerOp::Fc2:
                proj = runGemm(layer.weights(op), layer.keys(op), ffn);
                break;
            }
        }
    }

    const double t1 = clock_->now();
    stats.seconds = t1 - t0;

    // Scatter + per-request accounting, then retire exhausted budgets.
    const LutGemmCounters share = perColumnShare(stats.counters, b);
    std::vector<RequestId> retired;
    for (std::size_t c = 0; c < b; ++c) {
        Request &req = *live[c];
        for (std::size_t r = 0; r < h; ++r)
            req.hidden(r, 0) = x(r, c);
        req.stats.tokensDecoded += 1;
        req.lifeTokens += 1;
        if (req.stats.tokensDecoded == 1)
            req.stats.ttftSeconds = t1 - req.submitTimeS;
        req.stats.gemmCalls += stats.gemmCalls;
        accumulate(req.stats.counters, share);
        req.stats.decodeSeconds += stats.seconds;
        req.lastActivityS = t0;
        if (req.options.maxTokens > 0 &&
            req.lifeTokens >= req.options.maxTokens) {
            req.state = RequestState::Finished;
            retireSequence(req, /*retain=*/true);
            retired.push_back(active_[c]);
        }
    }
    for (const RequestId id : retired)
        removeFromSchedule(id);
    stats.retired = retired.size();
    // Everything still queued sat out this step's decode; count that
    // before refilling slots freed by retirement (refilling now keeps
    // the batch full between steps and drains FIFO traffic as early
    // as possible).
    for (const RequestId id : queue_)
        requests_.at(id).stats.queuedSteps += 1;
    stats.admitted += admitFromQueue(t0);
    stats.queueDepth = queue_.size();
    stats.kvBlocksInUse = arena_.blocksInUse();
    stats.kvBytesInUse = arena_.bytesInUse();
    ++stepsExecuted_;
    return stats;
}

Result<RequestSnapshot>
Engine::poll(RequestId id) const
{
    const Request *req = find(id);
    if (req == nullptr)
        return Status::notFound("unknown request id ", id);
    RequestSnapshot snap;
    snap.id = id;
    snap.state = req->state;
    snap.hidden = req->hidden;
    snap.kvLength = requestStateTerminal(req->state)
                        ? req->retainedKv.length()
                        : contextTokens(*req);
    snap.stats = req->stats;
    snap.terminal = req->terminal;
    return snap;
}

Status
Engine::cancel(RequestId id)
{
    Request *req = find(id);
    if (req == nullptr)
        return Status::notFound("unknown request id ", id);
    if (requestStateTerminal(req->state))
        return Status::failedPrecondition(
            "request ", id, " already retired (",
            requestStateName(req->state), ")");
    removeFromSchedule(id);
    retireSequence(*req, /*retain=*/true);
    req->state = RequestState::Cancelled;
    req->terminal = Status::cancelled("request ", id,
                                      " cancelled by the client");
    return Status::okStatus();
}

Status
Engine::resetKv(RequestId id)
{
    Request *req = find(id);
    if (req == nullptr)
        return Status::notFound("unknown request id ", id);
    if (requestStateTerminal(req->state))
        return Status::failedPrecondition(
            "request ", id, " already retired (",
            requestStateName(req->state), ")");
    if (req->seq != KvArena::kInvalidSeq)
        arena_.resetSequence(req->seq);
    // The prompt is gone for good, like the old contiguous clear():
    // a later prompt-materialization pass must not resurrect it.
    req->promptDropped = true;
    req->promptWritten = true;
    req->lifeTokens = 0;
    return Status::okStatus();
}

Result<KvCache>
Engine::kvHistory(RequestId id) const
{
    const Request *req = find(id);
    if (req == nullptr)
        return Status::notFound("unknown request id ", id);
    if (req->seq != KvArena::kInvalidSeq)
        return arena_.materialize(req->seq);
    return req->retainedKv;
}

void
Engine::removeFromSchedule(RequestId id)
{
    active_.erase(std::remove(active_.begin(), active_.end(), id),
                  active_.end());
    const auto it = std::find(queue_.begin(), queue_.end(), id);
    if (it != queue_.end())
        queue_.erase(it);
}

std::vector<KernelTask>
Engine::workloadTasks() const
{
    // step() admits from the queue before decoding, so the scored
    // batch is the *prospective* one: live requests plus the queued
    // requests the next step will admit into free slots.
    std::vector<const Request *> next;
    next.reserve(options_.maxBatch);
    for (const RequestId id : active_)
        next.push_back(find(id));
    for (const RequestId id : queue_) {
        if (next.size() >= options_.maxBatch)
            break;
        next.push_back(find(id));
    }
    if (next.empty())
        return {};
    WorkloadOptions opts;
    opts.batch = next.size();
    opts.weightBits = options_.model.weightBits;
    opts.includeVector = options_.includeVector;
    opts.groupSize = options_.model.groupSize;
    opts.hasOffset = options_.model.useOffset;
    // The next step appends before attending, so each column's
    // analytic context length is its held entries plus one.
    std::vector<std::size_t> contextLens;
    contextLens.reserve(next.size());
    for (const Request *req : next)
        contextLens.push_back(contextTokens(*req) + 1);
    return decodeStepWorkload(model_.config(), opts, contextLens);
}

WorkloadResult
Engine::simulate(const HwConfig &hw) const
{
    const Accelerator acc(hw);
    return acc.runWorkload(workloadTasks());
}

} // namespace serve
} // namespace figlut
