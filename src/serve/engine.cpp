#include "serve/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "model/synthetic.h"
#include "runtime/reference_ops.h"

namespace figlut {
namespace serve {

namespace {

/** Only the Packed backend consumes pre-packed keys; skip the
 *  materialization (roughly q bytes per weight) for the others. */
ModelOptions
modelOptionsFor(const EngineOptions &options)
{
    ModelOptions model = options.model;
    model.packKeys = options.exec.backend == LutGemmBackend::Packed;
    return model;
}

/**
 * One live column's exact share of a fused step's kernel counters.
 * Every closed form (core/lut_gemm.cpp) is linear in the batch columns
 * with no cross-column or per-call constant term, so the totals divide
 * evenly; a remainder would mean the accounting gained a cross-column
 * term and per-request attribution is no longer exact.
 */
LutGemmCounters
perColumnShare(const LutGemmCounters &total, std::size_t columns)
{
    auto split = [columns](uint64_t v) {
        FIGLUT_ASSERT(v % columns == 0,
                      "fused-step counter ", v,
                      " not divisible by live batch ", columns);
        return v / columns;
    };
    LutGemmCounters share;
    share.lutGenerations = split(total.lutGenerations);
    share.generatorAdds = split(total.generatorAdds);
    share.lutReads = split(total.lutReads);
    share.racAccumulates = split(total.racAccumulates);
    share.scaleMuls = split(total.scaleMuls);
    share.offsetOps = split(total.offsetOps);
    return share;
}

void
accumulate(LutGemmCounters &into, const LutGemmCounters &add)
{
    into.lutGenerations += add.lutGenerations;
    into.generatorAdds += add.generatorAdds;
    into.lutReads += add.lutReads;
    into.racAccumulates += add.racAccumulates;
    into.scaleMuls += add.scaleMuls;
    into.offsetOps += add.offsetOps;
}

Status
validateEngineConfig(const OptConfig &model, const EngineOptions &options)
{
    if (model.hidden == 0 || model.layers == 0 || model.ffn == 0)
        return Status::invalidArgument(
            "Engine needs a non-empty OptConfig, got hidden=",
            model.hidden, " layers=", model.layers, " ffn=", model.ffn);
    if (model.heads == 0 || model.hidden % model.heads != 0)
        return Status::invalidArgument(
            "Engine needs hidden divisible by heads, got ", model.hidden,
            " / ", model.heads);
    if (options.model.weightBits < 1)
        return Status::invalidArgument(
            "Engine weightBits must be >= 1, got ",
            options.model.weightBits);
    if (options.maxBatch == 0)
        return Status::invalidArgument(
            "Engine maxBatch must be positive: a batch of 0 can never ",
            "decode a request");
    return validateExecOptions(options.exec, options.model.mu);
}

} // namespace

Result<std::unique_ptr<Engine>>
Engine::create(const OptConfig &model, const EngineOptions &options)
{
    if (Status s = validateEngineConfig(model, options); !s.ok())
        return s;
    return std::unique_ptr<Engine>(new Engine(model, options));
}

Engine::Engine(const OptConfig &model, const EngineOptions &options)
    : model_(model, modelOptionsFor(options)), options_(options),
      ctx_(options.exec.threads),
      clock_(options.clock != nullptr ? options.clock : &ownedClock_)
{
    options_.model.packKeys = model_.options().packKeys;
    // Only the semantic op order is needed to drive the numeric step;
    // the analytic view is rebuilt per call because the live batch and
    // its context lengths change between steps.
    WorkloadOptions opOrder;
    opOrder.batch = 1;
    opOrder.contextLen = 1;
    for (const auto &spec : layerSpecs(model_.config(), opOrder))
        layerOps_.push_back(spec.op);
}

Engine::Request *
Engine::find(RequestId id)
{
    const auto it = requests_.find(id);
    return it == requests_.end() ? nullptr : &it->second;
}

const Engine::Request *
Engine::find(RequestId id) const
{
    const auto it = requests_.find(id);
    return it == requests_.end() ? nullptr : &it->second;
}

Result<RequestId>
Engine::submit(const RequestOptions &request)
{
    // A new request only bypasses the queue when the queue is empty —
    // earlier submits waiting for a slot keep their FIFO position even
    // if a cancellation just freed one (the next step admits them).
    const bool direct =
        active_.size() < options_.maxBatch && queue_.empty();
    if (!direct && queue_.size() >= options_.maxQueue)
        return Status::resourceExhausted(
            "engine at capacity: ", active_.size(), " live (maxBatch ",
            options_.maxBatch, ") and ", queue_.size(),
            " queued (maxQueue ", options_.maxQueue,
            "); retry after step() retires traffic");

    const RequestId id = nextId_++;
    Request req;
    req.options = request;
    req.submitTimeS = clock_->now();
    Rng rng(request.seed);
    const std::size_t h = model_.config().hidden;
    req.hidden = syntheticActivations(h, 1, rng);
    req.kv = KvCache(model_.layers());
    // Synthetic prompt KV (the prefill stand-in): one K/V entry per
    // (prompt token, layer), drawn from the request seed after the
    // hidden state, so attention and the workloadTasks() context
    // pricing both see the prompt from the first decode step.
    for (std::size_t l = 0; l < model_.layers(); ++l) {
        for (std::size_t t = 0; t < request.promptTokens; ++t) {
            MatrixD k = syntheticActivations(h, 1, rng);
            MatrixD v = syntheticActivations(h, 1, rng);
            req.kv.append(l, std::move(k), std::move(v));
        }
    }
    if (direct) {
        req.state = RequestState::Active;
        active_.push_back(id);
    } else {
        req.state = RequestState::Queued;
        queue_.push_back(id);
    }
    requests_.emplace(id, std::move(req));
    return id;
}

Status
Engine::provideInput(RequestId id, const MatrixD &hidden)
{
    Request *req = find(id);
    if (req == nullptr)
        return Status::notFound("unknown request id ", id);
    if (req->state == RequestState::Finished ||
        req->state == RequestState::Cancelled)
        return Status::failedPrecondition(
            "request ", id, " already retired (",
            requestStateName(req->state), ")");
    const std::size_t h = model_.config().hidden;
    if (hidden.rows() != h || hidden.cols() != 1)
        return Status::invalidArgument("request input must be ", h,
                                       "x1, got ", hidden.rows(), "x",
                                       hidden.cols());
    req->hidden = hidden;
    return Status::okStatus();
}

std::size_t
Engine::admitFromQueue()
{
    // queueSeconds is deliberately NOT stamped here: admission is
    // bookkeeping, not decode. step() stamps it at the start of the
    // first fused step that actually decodes the request, so the full
    // pre-decode wait (queue + admitted-but-idle) lands in one bucket.
    std::size_t admitted = 0;
    while (active_.size() < options_.maxBatch && !queue_.empty()) {
        const RequestId id = queue_.front();
        queue_.pop_front();
        Request &req = requests_.at(id);
        req.state = RequestState::Active;
        active_.push_back(id);
        ++admitted;
    }
    return admitted;
}

Result<StepStats>
Engine::step()
{
    StepStats stats;
    stats.admitted = admitFromQueue();
    if (active_.empty())
        return Status::failedPrecondition(
            "no live requests to decode; submit() first");

    const double t0 = clock_->now();
    const OptConfig &cfg = model_.config();
    const std::size_t h = cfg.hidden;
    const std::size_t b = active_.size();
    stats.liveRequests = b;

    std::vector<Request *> live;
    live.reserve(b);
    for (const RequestId id : active_)
        live.push_back(&requests_.at(id));
    stats.decodedIds = active_;

    // First fused step for a request: everything before this instant
    // was waiting (queue + admitted-but-idle), not decoding.
    for (Request *req : live)
        if (req->stats.tokensDecoded == 0)
            req->stats.queueSeconds = t0 - req->submitTimeS;

    // Gather: one hidden column per live request, admission order, so
    // every layer GEMM below runs once over the whole live batch.
    MatrixD x(h, b);
    for (std::size_t c = 0; c < b; ++c)
        for (std::size_t r = 0; r < h; ++r)
            x(r, c) = live[c]->hidden(r, 0);

    const LutGemmConfig gemmCfg =
        makeGemmConfig(options_.exec, options_.model.mu);
    auto runGemm = [&](const BcqTensor &w, const PackedLutKeys &keys,
                       const MatrixD &in) {
        ++stats.gemmCalls;
        // The pre-packed overload is Packed-only; the other backends
        // gather keys from the bit planes themselves.
        if (gemmCfg.backend == LutGemmBackend::Packed)
            return lutGemm(w, in, gemmCfg, keys, &stats.counters, &ctx_);
        return lutGemm(w, in, gemmCfg, &stats.counters, &ctx_);
    };

    // Same per-column arithmetic as a batch-1 Session step: the GEMM
    // and every vector op treat columns independently, so each request
    // is bit-identical to running alone (the differential suite pins
    // this).
    MatrixD ln, qkv, attn, proj, ffn;
    for (std::size_t l = 0; l < model_.layers(); ++l) {
        const QuantizedLayer &layer = model_.layer(l);
        for (const LayerOp op : layerOps_) {
            switch (op) {
              case LayerOp::LayerNorm1:
              case LayerOp::LayerNorm2:
                ln = referenceLayerNorm(x);
                break;
              case LayerOp::QkvProj:
                qkv = runGemm(layer.weights(op), layer.keys(op), ln);
                break;
              case LayerOp::Attention: {
                MatrixD q(h, b);
                std::vector<KvColumn> views(b);
                for (std::size_t c = 0; c < b; ++c) {
                    MatrixD k(h, 1), v(h, 1);
                    for (std::size_t r = 0; r < h; ++r) {
                        q(r, c) = qkv(r, c);
                        k(r, 0) = qkv(h + r, c);
                        v(r, 0) = qkv(2 * h + r, c);
                    }
                    KvCache &kv = live[c]->kv;
                    kv.append(l, std::move(k), std::move(v));
                    views[c] = KvColumn{&kv.keys(l), &kv.values(l), 0,
                                        kv.length()};
                }
                attn = referenceDecodeAttention(q, views, cfg.heads);
                break;
              }
              case LayerOp::OutProj:
                proj = runGemm(layer.weights(op), layer.keys(op), attn);
                break;
              case LayerOp::Residual1:
              case LayerOp::Residual2:
                x = referenceResidualAdd(x, proj);
                break;
              case LayerOp::Fc1:
                ffn = runGemm(layer.weights(op), layer.keys(op), ln);
                break;
              case LayerOp::Gelu:
                ffn = referenceGelu(ffn);
                break;
              case LayerOp::Fc2:
                proj = runGemm(layer.weights(op), layer.keys(op), ffn);
                break;
            }
        }
    }

    const double t1 = clock_->now();
    stats.seconds = t1 - t0;

    // Scatter + per-request accounting, then retire exhausted budgets.
    const LutGemmCounters share = perColumnShare(stats.counters, b);
    std::vector<RequestId> retired;
    for (std::size_t c = 0; c < b; ++c) {
        Request &req = *live[c];
        for (std::size_t r = 0; r < h; ++r)
            req.hidden(r, 0) = x(r, c);
        req.stats.tokensDecoded += 1;
        if (req.stats.tokensDecoded == 1)
            req.stats.ttftSeconds = t1 - req.submitTimeS;
        req.stats.gemmCalls += stats.gemmCalls;
        accumulate(req.stats.counters, share);
        req.stats.decodeSeconds += stats.seconds;
        if (req.options.maxTokens > 0 &&
            req.stats.tokensDecoded >= req.options.maxTokens) {
            req.state = RequestState::Finished;
            retired.push_back(active_[c]);
        }
    }
    for (const RequestId id : retired)
        removeFromSchedule(id);
    stats.retired = retired.size();
    // Everything still queued sat out this step's decode; count that
    // before refilling slots freed by retirement (refilling now keeps
    // the batch full between steps and drains FIFO traffic as early
    // as possible).
    for (const RequestId id : queue_)
        requests_.at(id).stats.queuedSteps += 1;
    stats.admitted += admitFromQueue();
    stats.queueDepth = queue_.size();
    ++stepsExecuted_;
    return stats;
}

Result<RequestSnapshot>
Engine::poll(RequestId id) const
{
    const Request *req = find(id);
    if (req == nullptr)
        return Status::notFound("unknown request id ", id);
    RequestSnapshot snap;
    snap.id = id;
    snap.state = req->state;
    snap.hidden = req->hidden;
    snap.kvLength = req->kv.length();
    snap.stats = req->stats;
    return snap;
}

Status
Engine::cancel(RequestId id)
{
    Request *req = find(id);
    if (req == nullptr)
        return Status::notFound("unknown request id ", id);
    if (req->state == RequestState::Finished ||
        req->state == RequestState::Cancelled)
        return Status::failedPrecondition(
            "request ", id, " already retired (",
            requestStateName(req->state), ")");
    removeFromSchedule(id);
    req->state = RequestState::Cancelled;
    return Status::okStatus();
}

Status
Engine::resetKv(RequestId id)
{
    Request *req = find(id);
    if (req == nullptr)
        return Status::notFound("unknown request id ", id);
    if (req->state == RequestState::Finished ||
        req->state == RequestState::Cancelled)
        return Status::failedPrecondition(
            "request ", id, " already retired (",
            requestStateName(req->state), ")");
    req->kv.clear();
    return Status::okStatus();
}

Result<KvCache>
Engine::kvHistory(RequestId id) const
{
    const Request *req = find(id);
    if (req == nullptr)
        return Status::notFound("unknown request id ", id);
    return req->kv;
}

void
Engine::removeFromSchedule(RequestId id)
{
    active_.erase(std::remove(active_.begin(), active_.end(), id),
                  active_.end());
    const auto it = std::find(queue_.begin(), queue_.end(), id);
    if (it != queue_.end())
        queue_.erase(it);
}

std::vector<KernelTask>
Engine::workloadTasks() const
{
    // step() admits from the queue before decoding, so the scored
    // batch is the *prospective* one: live requests plus the queued
    // requests the next step will admit into free slots.
    std::vector<const Request *> next;
    next.reserve(options_.maxBatch);
    for (const RequestId id : active_)
        next.push_back(find(id));
    for (const RequestId id : queue_) {
        if (next.size() >= options_.maxBatch)
            break;
        next.push_back(find(id));
    }
    if (next.empty())
        return {};
    WorkloadOptions opts;
    opts.batch = next.size();
    opts.weightBits = options_.model.weightBits;
    opts.includeVector = options_.includeVector;
    opts.groupSize = options_.model.groupSize;
    opts.hasOffset = options_.model.useOffset;
    // The next step appends before attending, so each column's
    // analytic context length is its cached length plus one.
    std::vector<std::size_t> contextLens;
    contextLens.reserve(next.size());
    for (const Request *req : next)
        contextLens.push_back(req->kv.length() + 1);
    return decodeStepWorkload(model_.config(), opts, contextLens);
}

WorkloadResult
Engine::simulate(const HwConfig &hw) const
{
    const Accelerator acc(hw);
    return acc.runWorkload(workloadTasks());
}

} // namespace serve
} // namespace figlut
