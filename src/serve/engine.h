/**
 * @file
 * Request-level serving engine with continuous batching.
 *
 * Session (runtime/session.h) is single-client by design: one
 * lock-step batch, one KV cache, one sequence lifetime. Engine is the
 * request-level surface the serving north star needs — independent
 * sequences are admitted, batched, and retired dynamically over one
 * shared quantized model:
 *
 *     auto engine = serve::Engine::create(optByName("OPT-125M"), opts);
 *     auto id = engine.value()->submit({.maxTokens = 32, .seed = 7});
 *     while (engine.value()->liveRequests() > 0)
 *         engine.value()->step();   // one fused decode step, all requests
 *     auto done = engine.value()->poll(id.value());
 *
 * step() gathers every working request's columns into a single
 * hidden x batchWidth matrix — a request still prefilling contributes
 * its next chunk of prompt embedding columns (bounded per step by
 * prefillChunkTokens across the batch), a decoding request its one
 * hidden column — so each layer's weight GEMM hits the Packed LUT
 * kernel exactly once per step: all requests share the model's
 * pre-packed keys and the engine's one ExecutionContext (the paper's
 * repeated-inference amortization, applied across clients). Attention
 * is ragged and causal: every column attends over its own sequence of
 * the engine's paged KV arena up to and including itself, so a
 * request's prompt is *computed* — real K/V written by real QKV
 * projections, real TTFT cost — before its first token decodes.
 * Requests admit up to maxBatch; excess submits wait in a FIFO queue
 * (up to maxQueue) and join as slots retire — continuous batching,
 * not lock-step epochs.
 *
 * The engine is memory-governed and failure-aware: all KV bytes live
 * in one paged arena (runtime/kv_arena.h) under an optional byte
 * budget, every fused step starts with a deadline sweep and a KV
 * reservation pass, and shortfalls resolve through a degradation
 * policy (serve/degradation.h) — shed-newest drops the youngest
 * traffic terminally, evict-longest-idle releases a victim's KV and
 * re-queues it as Preempted for a from-scratch restart. A restarted
 * request re-derives its inputs from its seed, so its surviving
 * decode output is bit-identical to an unconstrained run. An optional
 * FaultInjector adds deterministic allocation failures and deadline
 * clock skew on top.
 *
 * Errors on the construction/submission paths are recoverable
 * (common/status.h): create() validates the model shape and every
 * execution knob, submit() rejects over-capacity traffic, poll() and
 * cancel() report unknown ids — a serving loop never dies on a bad
 * request. Programming errors (misuse of a value-holding Result) still
 * panic, and the numeric kernels keep their fatal contracts.
 *
 * Like the Session it powers, an Engine is single-client: one engine
 * per serving thread (its ExecutionContext is not thread-safe). All
 * stochastic inputs are deterministic in the configured seeds, and a
 * fused step is bit-identical, per request, to that request running
 * alone in a batch-1 Session (the differential suite in
 * tests/serve/test_engine.cpp pins this).
 */

#ifndef FIGLUT_SERVE_ENGINE_H
#define FIGLUT_SERVE_ENGINE_H

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/execution_context.h"
#include "model/workload.h"
#include "runtime/exec_options.h"
#include "runtime/kv_arena.h"
#include "runtime/kv_cache.h"
#include "runtime/quantized_model.h"
#include "serve/clock.h"
#include "serve/degradation.h"
#include "serve/request.h"
#include "sim/accelerator.h"

namespace figlut {

class ShardPlan;
class ShardedExecutor;

namespace serve {

/** Weight materialization options, owned by the engine (one-time). */
using ModelOptions = QuantizedModelOptions;

/** Full configuration of an Engine. */
struct EngineOptions
{
    /** Quantize/pack the shared weights (engine-owned, built once). */
    ModelOptions model;
    /** Host execution of the fused GEMMs (shared by all requests). */
    ExecOptions exec;
    /** Live requests per fused step (the admission bound). */
    std::size_t maxBatch = 8;
    /** Waiting requests beyond maxBatch; submits past this rejected. */
    std::size_t maxQueue = 64;
    /**
     * Per-step prefill token budget: how many prompt tokens one fused
     * step may fold into the GEMM batch alongside the live decode
     * columns, shared by every prefilling request in batch order
     * (serve/degradation.h planPrefillChunks). 0 = unbounded — each
     * request's whole remaining prompt prefills in one step. Bounding
     * it caps the fused batch width, so long prompts cannot starve
     * live decoders; chunking never changes results, only scheduling
     * (chunked and whole-prompt prefill are bit-identical per
     * request).
     */
    std::size_t prefillChunkTokens = 0;
    /** Keep vector kernels in workloadTasks(). */
    bool includeVector = true;
    /**
     * Time source of every request-level timing (queue wait, TTFT,
     * step seconds). nullptr = an engine-owned monotonic wall clock;
     * a VirtualClock here makes latency accounting deterministic for
     * tests and simulated-time replays (serve/clock.h). Not owned;
     * must outlive the engine.
     */
    const EngineClock *clock = nullptr;
    /**
     * KV arena byte budget across all live requests; 0 = unbounded
     * (the pre-governance behavior). When bounded, each fused step
     * runs a reservation pass and resolves shortfalls through the
     * degradation policy below. Must hold at least one block per
     * layer.
     */
    std::size_t kvBudgetBytes = 0;
    /** Paging granularity of the KV arena, in tokens per block. */
    std::size_t kvBlockTokens = 16;
    /** What to do with live traffic when the budget runs out. */
    DegradationPolicy policy = DegradationPolicy::ShedNewest;
    /**
     * Optional failure seam: consulted on every arena block
     * allocation and for per-step clock skew on the deadline clock.
     * Not owned; must outlive the engine. Implementations must be
     * pure (see FaultInjector) when shared with a trace replay.
     */
    FaultInjector *faults = nullptr;
    /**
     * Materialize a request's KV into a contiguous snapshot when it
     * finishes or is cancelled (so kvHistory() keeps working after
     * the arena blocks are reclaimed). Serving fleets that never read
     * finished KV can turn this off.
     */
    bool retainFinishedKv = true;
};

/** Whole-step accounting returned by Engine::step(). */
struct StepStats
{
    /** Requests that did work (prefill or decode) in this fused step. */
    std::size_t liveRequests = 0;
    /**
     * Requests admitted from the queue around this step: into free
     * slots before decoding, and into slots freed by retirement after
     * (those decode from the next step).
     */
    std::size_t admitted = 0;
    /** Requests retired (budget reached) after this step. */
    std::size_t retired = 0;
    /** Weight GEMM kernel calls (4 per layer, whole batch each). */
    std::size_t gemmCalls = 0;
    /** Kernel op counters over the whole fused step. */
    LutGemmCounters counters;
    /** Clock seconds of the fused step (gather + layers, no admin). */
    double seconds = 0.0;
    /** Requests still waiting after this step's final admission. */
    std::size_t queueDepth = 0;
    /** Prompt tokens prefilled across the whole fused batch. */
    std::size_t prefillTokens = 0;
    /** Decode tokens produced across the whole fused batch (one per
     *  decoding request). prefillTokens + decodeTokens is the fused
     *  GEMM batch width; both 0 means the step did no work (and does
     *  not count toward stepsExecuted()). */
    std::size_t decodeTokens = 0;
    /**
     * The requests this step decoded one token for, in fused batch
     * order — the per-token completion hook load harnesses use to
     * stamp inter-token latencies without polling every id. Empty
     * (with ok status) when deadline sweeps, the reservation pass, or
     * the prefill chunk budget left nothing to decode (a pure-prefill
     * step has work but no decoded ids).
     */
    std::vector<RequestId> decodedIds;
    /** Requests this step prefilled prompt tokens for, batch order. */
    std::vector<RequestId> prefillIds;
    /**
     * Analytic context length of every fused GEMM column, in gather
     * order (each working request's columns are contiguous): a prompt
     * column at sequence position p reports p + 1 (its causal
     * window), a decode column its full context. Exactly the
     * contextLens decodeStepWorkload() prices this step with — the
     * hook the replay-equivalence tests use to score the executed
     * step without reconstructing the chunk schedule.
     */
    std::vector<std::size_t> columnContexts;
    /** Requests shed terminally by the reservation pass this step. */
    std::vector<RequestId> shedIds;
    /** Requests evicted (Preempted, re-queued) this step. */
    std::vector<RequestId> evictedIds;
    /** Requests dropped by the deadline sweep this step. */
    std::vector<RequestId> deadlineIds;
    /** Arena blocks held after this step. */
    std::size_t kvBlocksInUse = 0;
    /** Arena bytes held after this step. */
    std::size_t kvBytesInUse = 0;
};

/** A request-level serving engine over one shared quantized model. */
class Engine
{
  public:
    /**
     * Validate the architecture and every execution knob, then build
     * the engine: materialize + quantize + (for the Packed and Simd
     * backends)
     * key-pack all layers — the one-time cost. Returns InvalidArgument
     * with an actionable message instead of constructing on bad input.
     */
    static Result<std::unique_ptr<Engine>>
    create(const OptConfig &model, const EngineOptions &options);

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;
    /** Out of line: unique_ptr members of incomplete shard types. */
    ~Engine();

    const QuantizedModel &model() const { return model_; }
    const EngineOptions &options() const { return options_; }
    ExecutionContext &context() { return ctx_; }
    /** Worker groups each fused GEMM is row-sharded across (resolved
     *  from ExecOptions::shards / FIGLUT_SHARDS at construction;
     *  1 = the unsharded single-context path). */
    int shards() const { return shards_; }

    /**
     * Submit a new request. Admitted immediately when a batch slot is
     * free, queued when live traffic is at maxBatch, rejected with
     * ResourceExhausted when the queue is also full. The initial
     * hidden state is drawn from the request's seed.
     */
    Result<RequestId> submit(const RequestOptions &request);

    /**
     * Override a request's next-step input (hidden x 1). By default
     * each step's output feeds the next step; an external driver (the
     * Session adapter, or a client with real embeddings) injects its
     * own columns instead. Rejected once the request has retired.
     */
    Status provideInput(RequestId id, const MatrixD &hidden);

    /**
     * One fused step over all live requests: sweep deadlines, admit
     * from the queue into free slots, assign each live request its
     * work — a prefill chunk (bounded by prefillChunkTokens across
     * the batch) while its prompt is unfinished, one decode column
     * after — run the KV reservation pass over the working requests
     * (shedding or evicting through the degradation policy when the
     * budget or an injected fault denies blocks), gather prompt/
     * hidden columns, run every layer's GEMMs once over the whole
     * mixed-width batch (pre-packed keys, shared context) with
     * ragged causal paged-KV attention, append one KV entry per
     * (column, layer), then retire requests that reached their token
     * budget. FailedPrecondition when no request is live or queued;
     * ok with zero prefillTokens + decodeTokens when governance
     * dropped every working column.
     */
    Result<StepStats> step();

    /** Point-in-time copy of a request's state; NotFound if unknown. */
    Result<RequestSnapshot> poll(RequestId id) const;

    /**
     * Cancel a queued or active request, freeing its slot for the
     * queue. The record stays pollable. FailedPrecondition when the
     * request already retired.
     */
    Status cancel(RequestId id);

    /**
     * Drop a request's KV history, prompt included (restart its
     * sequence; weights, stats, and budget are unaffected). Rejected
     * once retired.
     */
    Status resetKv(RequestId id);

    /**
     * Copy of a request's full KV history: materialized from the
     * arena while live, the retained snapshot after Finished or
     * cancel() (empty when retainFinishedKv is off, and for requests
     * dropped by governance). NotFound if unknown.
     */
    Result<KvCache> kvHistory(RequestId id) const;

    /** Requests currently decoding (columns of the next fused step). */
    std::size_t liveRequests() const { return active_.size(); }
    /** Requests waiting for a slot. */
    std::size_t queuedRequests() const { return queue_.size(); }
    /** Fused steps executed so far (steps that did prefill or decode
     *  work; empty governance-only steps are not counted). */
    std::size_t stepsExecuted() const { return stepsExecuted_; }
    /** The paged KV arena backing every live request. */
    const KvArena &arena() const { return arena_; }

    /**
     * The KernelTask list of the *next* fused step: GEMMs at the
     * mixed prefill/decode batch width the step will run (live
     * requests plus the queued ones it will admit into free slots,
     * each contributing its prefill chunk or one decode column),
     * attention priced at every column's causal context — so
     * sim::Accelerator scores exactly the workload step() executes.
     * Empty when nothing is live or queued.
     */
    std::vector<KernelTask> workloadTasks() const;

    /** Score the next fused step on a simulated accelerator. */
    WorkloadResult simulate(const HwConfig &hw) const;

  private:
    /** One tracked request (see serve/request.h for the public view). */
    struct Request
    {
        RequestOptions options;
        RequestState state = RequestState::Queued;
        MatrixD hidden; ///< next-step input, hidden x 1
        /** This request's arena sequence (invalid until admitted and
         *  after any terminal transition or eviction). */
        KvArena::SeqId seq = KvArena::kInvalidSeq;
        /** Contiguous snapshot kept at Finished/Cancelled when
         *  retainFinishedKv is on (the arena blocks are reclaimed). */
        KvCache retainedKv;
        RequestStats stats;
        double submitTimeS = 0.0; ///< clock time of submit()
        /** Step-start time of the last step that decoded this request
         *  (admission time until then) — the eviction idle key. */
        double lastActivityS = 0.0;
        /** Admission counter value of the latest (re-)admission. */
        std::uint64_t admitSeq = 0;
        /** Tokens decoded in the current life (reset by eviction;
         *  drives retirement, unlike the cumulative stats count). */
        std::size_t lifeTokens = 0;
        /** Prompt tokens prefilled in the current life (reset by
         *  eviction; the restart recomputes them bit-identically). */
        std::size_t prefillDone = 0;
        /** Prompt embeddings (hidden x promptTokens), drawn from the
         *  seed at the life's first work step and released once the
         *  last chunk is computed — only requests mid-prefill hold
         *  them. */
        MatrixD promptEmbeds;
        /** This life's seed replay (hidden redraw + prompt embedding
         *  draw) has happened. */
        bool lifeReady = false;
        /** Some step has done work (prefill or decode) for this
         *  request — queueSeconds is stamped exactly once, then. */
        bool everWorked = false;
        /** An eviction is awaiting its restartSeconds stamp. */
        bool restartPending = false;
        /** Step-start time of the eviction that re-queued this
         *  request (the restartSeconds base). */
        double requeuedAtS = 0.0;
        /** resetKv() dropped the prompt for good. */
        bool promptDropped = false;
        /** Definite terminal outcome (see RequestSnapshot::terminal). */
        Status terminal;
    };

    Engine(const OptConfig &model, const EngineOptions &options);

    Request *find(RequestId id);
    const Request *find(RequestId id) const;
    /** Admit queued requests into free batch slots (FIFO), stamping
     *  admission metadata at step-start time nowS. */
    std::size_t admitFromQueue(double nowS);
    /** Remove id from the active list / queue (state already set). */
    void removeFromSchedule(RequestId id);
    /** Drop expired requests (active first, then queued). */
    void sweepDeadlines(double nowS, std::vector<RequestId> &expired);
    /** Prompt tokens the request still has to prefill this life. */
    std::size_t remainingPrompt(const Request &req) const;
    /** Work assignment + reservation pass over the live batch: on
     *  return active_ holds the surviving requests (stalled prefills
     *  included) and work[i] their column counts this step (0 =
     *  stalled). nowS is the step-start time (the restartSeconds base
     *  stamped on evictions). */
    void reserveStep(StepStats &stats, std::vector<std::size_t> &work,
                     double nowS);
    /** Replay the request's seed at the first work step of a life:
     *  redraw the hidden state (a restart's from-scratch recompute)
     *  and materialize the prompt embeddings the prefill consumes. */
    void prepareLife(Request &req);
    /** KV entries the request holds (prefilled + decoded this life). */
    std::size_t contextTokens(const Request &req) const;
    /** Release the arena sequence, materializing into retainedKv
     *  first when asked. */
    void retireSequence(Request &req, bool retain);

    QuantizedModel model_;
    EngineOptions options_;
    ExecutionContext ctx_;
    /** Resolved shard count (>= 1; normalized into options_.exec). */
    int shards_ = 1;
    /** Row-partition of every GEMM operand (null when shards_ == 1). */
    std::unique_ptr<ShardPlan> shardPlan_;
    /** NUMA-aware worker groups running the plan (null when
     *  shards_ == 1: the unsharded path keeps using ctx_). */
    std::unique_ptr<ShardedExecutor> shardExec_;
    /** Fallback time source when EngineOptions::clock is null. */
    SteadyClock ownedClock_;
    const EngineClock *clock_ = nullptr;
    /** Semantic op order of one decoder layer (construction-invariant). */
    std::vector<LayerOp> layerOps_;
    /** Paged KV slab shared by all requests. */
    KvArena arena_;
    std::unordered_map<RequestId, Request> requests_;
    /** Live requests in admission order = fused batch column order. */
    std::vector<RequestId> active_;
    std::deque<RequestId> queue_;
    RequestId nextId_ = 1;
    std::size_t stepsExecuted_ = 0;
    /** Monotone admission counter (ShedNewest recency key). */
    std::uint64_t admitCounter_ = 0;
};

} // namespace serve
} // namespace figlut

#endif // FIGLUT_SERVE_ENGINE_H
