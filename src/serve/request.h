/**
 * @file
 * Request model of the serving surface (serve/engine.h).
 *
 * A request is one independent decode sequence: it is submitted with
 * its own token budget and input seed, admitted into the engine's
 * fused batch when a slot frees, decoded one token per Engine::step()
 * alongside every other live request, and retired when it reaches its
 * budget (or is cancelled). Each request holds one sequence of the
 * engine's paged KV arena, so live requests may have arbitrarily
 * different context lengths — and the engine can reclaim a sequence
 * whole under memory pressure.
 *
 * Lifecycle:  submit() -> Queued <-> Active -> Finished
 *                               \-> Cancelled (client, pre-Finished)
 *                               \-> Shed (memory pressure, terminal)
 *                               \-> DeadlineExceeded (terminal)
 * The Queued <-> Active back edge is Preempted: an eviction releases
 * the request's KV and re-queues it for a from-scratch restart.
 */

#ifndef FIGLUT_SERVE_REQUEST_H
#define FIGLUT_SERVE_REQUEST_H

#include <cstddef>
#include <cstdint>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/lut_gemm.h"

namespace figlut {
namespace serve {

/** Opaque handle of a submitted request (monotonic, never reused). */
using RequestId = std::uint64_t;

/** Per-request knobs, fixed at submit(). */
struct RequestOptions
{
    /**
     * Decode steps before the engine retires the request (its token
     * budget). 0 = unbounded: the request decodes until cancelled —
     * the mode the Session adapter drives.
     */
    std::size_t maxTokens = 16;
    /**
     * Seed of the request's synthetic inputs (model/synthetic.h): the
     * initial hidden state (used directly when promptTokens == 0) and
     * the prompt embedding matrix the prefill phase runs through the
     * model. Each decode step's output feeds the next step unless the
     * client overrides it with Engine::provideInput().
     */
    std::uint64_t seed = Rng::kDefaultSeed;
    /**
     * Prompt length in tokens. Before its first decode step the
     * request goes through a *computed prefill*: its synthetic prompt
     * embeddings (hidden x promptTokens, drawn from `seed` after the
     * hidden state) run through every layer with causal attention,
     * writing real K/V — the QKV projection outputs — into the arena,
     * and the final prompt column's output becomes the first decode
     * input. Prefill work is scheduled in chunks
     * (EngineOptions::prefillChunkTokens) alongside live decode
     * columns, billed in StepStats and the workloadTasks() pricing, so
     * long-prompt traffic pays real TTFT cost, as it should.
     */
    std::size_t promptTokens = 0;
    /**
     * Seconds after submit() by which the request must finish; past
     * it the engine drops the request with DeadlineExceeded at the
     * start of the next fused step. 0 = no deadline.
     */
    double deadlineS = 0.0;
};

/** Where a request is in its lifecycle. */
enum class RequestState
{
    Queued,    ///< submitted, waiting for a batch slot
    Active,    ///< participating in fused decode steps
    Finished,  ///< reached its token budget; record kept for poll()
    Cancelled, ///< cancelled by the client; record kept for poll()
    /** Evicted under memory pressure (EvictLongestIdle): KV released,
     *  re-queued for a from-scratch restart. Not terminal. */
    Preempted,
    /** Dropped under memory pressure (terminal, ResourceExhausted). */
    Shed,
    /** Dropped past its deadline (terminal, DeadlineExceeded). */
    DeadlineExceeded,
};

/** Stable name of a RequestState ("queued", ...). */
const char *requestStateName(RequestState state);

/** True for the states a request never leaves (Finished, Cancelled,
 *  Shed, DeadlineExceeded). */
bool requestStateTerminal(RequestState state);

/** Per-request accounting, updated by every fused step. */
struct RequestStats
{
    /** Decode steps this request has executed. */
    std::size_t tokensDecoded = 0;
    /** Prompt tokens this request has prefilled, cumulative across
     *  lives (an evicted request prefills its prompt again). */
    std::size_t prefillTokens = 0;
    /** Weight GEMMs this request has ridden through (4 per layer). */
    std::size_t gemmCalls = 0;
    /**
     * This request's exact share of the fused-step kernel counters,
     * weighted by the columns (tokens) it contributed to each step:
     * every LutGemmCounters closed form is linear in the batch columns
     * with no cross-column terms, so a per-column split scaled by the
     * request's column count is exact (the differential suite pins it
     * against a batch-1 run, and the scatter path asserts the shares
     * reassemble to the step total).
     */
    LutGemmCounters counters;
    /** Fused steps that ran while this request sat in the queue. */
    std::size_t queuedSteps = 0;
    /** Times this request was evicted (KV dropped, restarted). */
    std::size_t preemptions = 0;
    /**
     * Seconds from submit() to the *start* of the first fused step
     * that did any work (prefill or decode) for this request: the
     * full pre-compute wait, covering both queue time and any
     * admitted-but-idle gap until the driver's next step() call.
     * Stamped exactly once, at the request's first-ever compute step;
     * 0 until then. Post-preemption waits land in restartSeconds.
     */
    double queueSeconds = 0.0;
    /**
     * Re-admission wait accumulated across preemptions: for each
     * eviction, the seconds from the evicting step's start to the
     * start of the first step that worked on the restarted life.
     * 0 for never-preempted requests.
     */
    double restartSeconds = 0.0;
    /**
     * Time to first token: seconds from submit() to the end of the
     * first fused step that decoded this request — queueSeconds plus
     * every prefill step in between plus that step's duration. 0
     * until the first token lands.
     */
    double ttftSeconds = 0.0;
    /** Seconds inside the fused steps this request joined (prefill
     *  steps included). */
    double decodeSeconds = 0.0;
    /** Seconds inside the fused steps that prefilled prompt tokens
     *  for this request (a subset of decodeSeconds). */
    double prefillSeconds = 0.0;
};

/** Point-in-time copy of a request's externally visible state. */
struct RequestSnapshot
{
    RequestId id = 0;
    RequestState state = RequestState::Queued;
    /** Latest hidden state, hidden x 1 (the next step's input). */
    MatrixD hidden;
    /** KV entries (prompt + decode) the request currently holds. */
    std::size_t kvLength = 0;
    RequestStats stats;
    /**
     * Why the request ended: OK while live and for Finished; the
     * definite terminal Status (Cancelled, ResourceExhausted for a
     * shed, DeadlineExceeded) otherwise — every non-completed request
     * carries one.
     */
    Status terminal;
};

} // namespace serve
} // namespace figlut

#endif // FIGLUT_SERVE_REQUEST_H
