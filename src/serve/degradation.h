/**
 * @file
 * Degradation policies of the memory-governed engine: what happens
 * when a fused step's KV reservations exceed the arena budget (or an
 * injected fault denies a block).
 *
 * planStepReservations() is the single shared implementation of the
 * per-step reservation pass — serve::Engine runs it against its live
 * arena and sim::replayTrace() runs it against a shadow arena with the
 * same geometry, which is what keeps the measured and simulated
 * admission/eviction schedules bit-identical: same items in the same
 * batch order against the same allocator state yield the same plan.
 *
 * The per-item state machine (items processed in fused-batch order):
 *
 *     Pending --reserve ok--------------------------> Committed
 *     Pending --reserve fails, policy finds victim--> retry
 *                (victim: Pending -> Evicted | Shed)
 *     Pending --reserve fails, no victim------------> Shed (self)
 *
 * Committed items are never victims — blocks granted this step are
 * never clawed back, so the pass cannot ping-pong and terminates:
 * every retry either frees a victim's blocks (finitely many) or sheds
 * the requester. An injected Fault is handled exactly like NoCapacity,
 * so even a fail-every-allocation injector degrades the step to sheds
 * instead of looping.
 *
 * Ownership: the planner calls KvArena::releaseSequence() on every
 * evicted or shed victim (their blocks fund the retries); the caller
 * must treat those SeqIds as gone and re-create sequences on
 * re-admission.
 */

#ifndef FIGLUT_SERVE_DEGRADATION_H
#define FIGLUT_SERVE_DEGRADATION_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/kv_arena.h"

namespace figlut {
namespace serve {

/** What to do with live traffic when the KV budget runs out. */
enum class DegradationPolicy
{
    /**
     * Shed the most recently admitted request among those still
     * un-reserved this step (possibly the requester itself) — drop it
     * terminally with ResourceExhausted. Protects old traffic.
     */
    ShedNewest,
    /**
     * Evict the longest-idle un-reserved request (excluding the
     * requester): release its KV and re-queue it as Preempted for a
     * from-scratch restart. Sheds the requester only when no victim
     * remains. Trades recompute for admission.
     */
    EvictLongestIdle,
};

/** Stable name of a DegradationPolicy ("shed-newest", ...). */
const char *degradationPolicyName(DegradationPolicy policy);

/** One live request's view of the reservation pass, in fused-batch
 *  order. The caller computes needTokens (context length + 1). */
struct ReservationItem
{
    KvArena::SeqId seq = KvArena::kInvalidSeq;
    /** Token slots per layer this step needs block-backed. */
    std::size_t needTokens = 0;
    /** Clock time of the last step that decoded this request (its
     *  admission time until then) — the EvictLongestIdle key. */
    double lastActivityS = 0.0;
    /** Admission counter (monotone; bumped on every (re-)admission) —
     *  the ShedNewest key and the idle tie-break. */
    std::uint64_t admitSeq = 0;
};

/** The plan: index lists into the items vector (disjoint, covering). */
struct ReservationPlan
{
    /** Items whose reservation succeeded — this step's decode set,
     *  in the original batch order. */
    std::vector<std::size_t> decode;
    /** Victims released for their blocks: re-queue as Preempted. */
    std::vector<std::size_t> evicted;
    /** Items dropped terminally (ResourceExhausted). */
    std::vector<std::size_t> shed;
};

/**
 * Run the reservation pass: for each item in batch order, reserve its
 * needTokens in the arena, resolving NoCapacity/Fault through the
 * policy until the item commits or sheds. Releases every victim's
 * sequence (see the ownership note above). Deterministic: a pure
 * function of the arena state, policy, and items.
 */
ReservationPlan planStepReservations(
    KvArena &arena, DegradationPolicy policy,
    const std::vector<ReservationItem> &items);

/**
 * Per-request work assignment of one fused step, shared by
 * serve::Engine and sim::replayTrace so both schedule the identical
 * mixed prefill/decode batch.
 *
 * remainingPrompt[i] is the prompt tokens batch item i still has to
 * prefill (0 = the item is decoding). Returns workTokens[i]: always 1
 * for a decoding item; for a prefilling item, the chunk it computes
 * this step — the requests share a per-step prefill budget of
 * chunkTokens (0 = unbounded, whole remaining prompts), consumed in
 * batch order, so a prefilling item late in the batch can be assigned
 * 0 and must stall this step (no columns, no reservation). Decode
 * columns never consume the budget: chunking bounds prompt work per
 * step precisely so live decoders cannot be starved by long prompts.
 */
std::vector<std::size_t> planPrefillChunks(
    const std::vector<std::size_t> &remainingPrompt,
    std::size_t chunkTokens);

} // namespace serve
} // namespace figlut

#endif // FIGLUT_SERVE_DEGRADATION_H
