#include "serve/clock.h"

#include "common/logging.h"

namespace figlut {
namespace serve {

double
SteadyClock::now() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
VirtualClock::advance(double seconds)
{
    FIGLUT_ASSERT(seconds >= 0.0,
                  "VirtualClock cannot advance by negative seconds: ",
                  seconds);
    nowS_ += seconds;
}

void
VirtualClock::set(double seconds)
{
    FIGLUT_ASSERT(seconds >= nowS_,
                  "VirtualClock is monotonic: cannot set ", seconds,
                  " below current ", nowS_);
    nowS_ = seconds;
}

} // namespace serve
} // namespace figlut
