#include "serve/request.h"

namespace figlut {
namespace serve {

const char *
requestStateName(RequestState state)
{
    switch (state) {
      case RequestState::Queued: return "queued";
      case RequestState::Active: return "active";
      case RequestState::Finished: return "finished";
      case RequestState::Cancelled: return "cancelled";
      case RequestState::Preempted: return "preempted";
      case RequestState::Shed: return "shed";
      case RequestState::DeadlineExceeded: return "deadline-exceeded";
    }
    return "unknown";
}

bool
requestStateTerminal(RequestState state)
{
    switch (state) {
      case RequestState::Queued:
      case RequestState::Active:
      case RequestState::Preempted:
        return false;
      case RequestState::Finished:
      case RequestState::Cancelled:
      case RequestState::Shed:
      case RequestState::DeadlineExceeded:
        return true;
    }
    return true;
}

} // namespace serve
} // namespace figlut
