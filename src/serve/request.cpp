#include "serve/request.h"

namespace figlut {
namespace serve {

const char *
requestStateName(RequestState state)
{
    switch (state) {
      case RequestState::Queued: return "queued";
      case RequestState::Active: return "active";
      case RequestState::Finished: return "finished";
      case RequestState::Cancelled: return "cancelled";
    }
    return "unknown";
}

} // namespace serve
} // namespace figlut
