#include "serve/degradation.h"

namespace figlut {
namespace serve {

namespace {

enum class Fate
{
    Pending,
    Committed,
    Evicted,
    Shed,
};

constexpr std::size_t kNoVictim = static_cast<std::size_t>(-1);

/**
 * Pick the item that gives up its blocks so item i can reserve.
 * Pending items are the only candidates: earlier items already
 * resolved (committed blocks are never clawed back), so a candidate
 * is always i itself or a later batch column — which is what makes
 * the pass terminate.
 */
std::size_t
pickVictim(DegradationPolicy policy, const std::vector<Fate> &fate,
           const std::vector<ReservationItem> &items, std::size_t i)
{
    std::size_t victim = kNoVictim;
    for (std::size_t j = 0; j < items.size(); ++j) {
        if (fate[j] != Fate::Pending)
            continue;
        switch (policy) {
          case DegradationPolicy::ShedNewest:
            // Most recently admitted, the requester included.
            if (victim == kNoVictim ||
                items[j].admitSeq > items[victim].admitSeq)
                victim = j;
            break;
          case DegradationPolicy::EvictLongestIdle:
            // Longest idle *other* request; newest admission breaks
            // ties so the re-queue order stays deterministic.
            if (j == i)
                break;
            if (victim == kNoVictim ||
                items[j].lastActivityS < items[victim].lastActivityS ||
                (items[j].lastActivityS == items[victim].lastActivityS &&
                 items[j].admitSeq > items[victim].admitSeq))
                victim = j;
            break;
        }
    }
    return victim;
}

} // namespace

const char *
degradationPolicyName(DegradationPolicy policy)
{
    switch (policy) {
      case DegradationPolicy::ShedNewest: return "shed-newest";
      case DegradationPolicy::EvictLongestIdle: return "evict-idle";
    }
    return "unknown";
}

ReservationPlan
planStepReservations(KvArena &arena, DegradationPolicy policy,
                     const std::vector<ReservationItem> &items)
{
    std::vector<Fate> fate(items.size(), Fate::Pending);

    for (std::size_t i = 0; i < items.size(); ++i) {
        if (fate[i] != Fate::Pending)
            continue;
        while (fate[i] == Fate::Pending) {
            const KvArena::Reserve r =
                arena.reserveTokens(items[i].seq, items[i].needTokens);
            if (r == KvArena::Reserve::Ok) {
                fate[i] = Fate::Committed;
                break;
            }
            // NoCapacity and an injected Fault degrade identically:
            // treating a fault as retryable would loop forever under a
            // fail-every-allocation injector.
            const std::size_t victim = pickVictim(policy, fate, items, i);
            if (victim == kNoVictim || victim == i) {
                // No one left to sacrifice (or the requester is the
                // sacrifice): shed i itself.
                arena.releaseSequence(items[i].seq);
                fate[i] = Fate::Shed;
                break;
            }
            arena.releaseSequence(items[victim].seq);
            // ShedNewest victims are dropped for good; EvictLongestIdle
            // victims restart from the queue.
            fate[victim] = policy == DegradationPolicy::ShedNewest
                               ? Fate::Shed
                               : Fate::Evicted;
        }
    }

    ReservationPlan plan;
    for (std::size_t i = 0; i < items.size(); ++i) {
        switch (fate[i]) {
          case Fate::Committed: plan.decode.push_back(i); break;
          case Fate::Evicted: plan.evicted.push_back(i); break;
          case Fate::Shed: plan.shed.push_back(i); break;
          case Fate::Pending: break; // unreachable: the loop resolves all
        }
    }
    return plan;
}

std::vector<std::size_t>
planPrefillChunks(const std::vector<std::size_t> &remainingPrompt,
                  std::size_t chunkTokens)
{
    std::vector<std::size_t> work(remainingPrompt.size(), 0);
    std::size_t budget = chunkTokens == 0
                             ? static_cast<std::size_t>(-1)
                             : chunkTokens;
    for (std::size_t i = 0; i < remainingPrompt.size(); ++i) {
        if (remainingPrompt[i] == 0) {
            work[i] = 1; // decode columns ride along, budget-free
            continue;
        }
        const std::size_t chunk =
            remainingPrompt[i] < budget ? remainingPrompt[i] : budget;
        work[i] = chunk;
        budget -= chunk;
    }
    return work;
}

} // namespace serve
} // namespace figlut
