/**
 * @file
 * Detailed cycle-stepped simulator of the weight-stationary systolic
 * array (paper Fig. 4/5).
 *
 * This is the ground truth the analytic timing model is validated
 * against: it steps registers cycle by cycle — skewed activation
 * injection at the left edge, rightward activation flow, downward
 * partial-sum flow — and reports both the functional outputs and the
 * exact cycle the last output drains.
 *
 * Array orientation: rows index the reduction (K) dimension, columns
 * index outputs (M). PE(r, c) holds weight w(r, c); output column c
 * computes sum_r w(r, c) * x(r, b).
 *
 * The arithmetic domain is int64 (pre-aligned mantissas or plain test
 * integers) so functional equivalence checks are exact.
 */

#ifndef FIGLUT_SIM_SYSTOLIC_SIM_H
#define FIGLUT_SIM_SYSTOLIC_SIM_H

#include <cstdint>

#include "common/matrix.h"

namespace figlut {

/** Geometry of the detailed array. */
struct SystolicConfig
{
    int rows = 8; ///< reduction lanes (K)
    int cols = 8; ///< output lanes (M)
};

/** Result of streaming one weight tile over a batch of inputs. */
struct SystolicTileRun
{
    /** outputs(c, b) = column c's result for batch b. */
    Matrix<int64_t> outputs;
    /** Cycle (1-based count) at which the final output drained. */
    uint64_t cycles = 0;
    /** Number of PE compute events (MACs executed). */
    uint64_t macEvents = 0;
};

/** Cycle-stepped weight-stationary array. */
class SystolicSim
{
  public:
    explicit SystolicSim(const SystolicConfig &config);

    /**
     * Stream `batch` activation columns through a stationary weight
     * tile.
     *
     * @param weights  rows x cols stationary tile
     * @param acts     rows x batch activation columns
     */
    SystolicTileRun runTile(const Matrix<int32_t> &weights,
                            const Matrix<int32_t> &acts) const;

    /**
     * Closed-form cycle count for a tile run:
     * batch + rows + cols - 2 (skew fill + drain).
     */
    static uint64_t expectedCycles(int rows, int cols,
                                   std::size_t batch);

  private:
    SystolicConfig config_;
};

} // namespace figlut

#endif // FIGLUT_SIM_SYSTOLIC_SIM_H
