/**
 * @file
 * Vector processing unit (paper Fig. 12): executes the non-GEMM
 * operations — activation sums for the BCQ offset term, output
 * scaling, softmax / layer-norm / GELU for full transformer layers.
 *
 * The VPU is a simple lane-parallel FP32 engine; the paper notes its
 * impact is minor because GEMMs dominate, which the OPT workload
 * benches confirm.
 */

#ifndef FIGLUT_SIM_VPU_H
#define FIGLUT_SIM_VPU_H

#include <cstddef>

#include "arch/tech_params.h"

namespace figlut {

/** Elementwise op tallies for a VPU kernel. */
struct VpuOpCounts
{
    double adds = 0.0;
    double muls = 0.0;
    double specials = 0.0; ///< exp/div/sqrt (priced as 4 FP32 mults)

    void
    merge(const VpuOpCounts &other)
    {
        adds += other.adds;
        muls += other.muls;
        specials += other.specials;
    }

    double total() const { return adds + muls + specials; }
};

/** Softmax over `rows` independent vectors of length `cols`. */
VpuOpCounts softmaxOps(std::size_t rows, std::size_t cols);

/** LayerNorm over `rows` vectors of length `cols`. */
VpuOpCounts layerNormOps(std::size_t rows, std::size_t cols);

/** GELU (tanh approximation) over n elements. */
VpuOpCounts geluOps(std::size_t n);

/** Residual adds over n elements. */
VpuOpCounts residualOps(std::size_t n);

/** Energy of a VPU op mix (fJ). */
double vpuEnergyFj(const VpuOpCounts &ops, const TechParams &tech);

/**
 * Cycles for a VPU op mix on `lanes` FP32 lanes. The default matches
 * a 256-lane SIMD unit — wide enough that decode-phase attention and
 * normalization stay minor next to the GEMMs, as the paper observes.
 */
double vpuCycles(const VpuOpCounts &ops, int lanes = 256);

} // namespace figlut

#endif // FIGLUT_SIM_VPU_H
