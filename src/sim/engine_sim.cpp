#include "sim/engine_sim.h"

#include "arch/lut_power.h"
#include "arch/memory_model.h"
#include "common/logging.h"

namespace figlut {

MpuConfig
mpuConfigFor(const HwConfig &hw)
{
    MpuConfig mpu;
    mpu.engine = hw.engine;
    mpu.actFormat = hw.actFormat;
    mpu.weightBits = hw.fixedWeightBits;
    mpu.mu = hw.mu;
    mpu.k = hw.k;
    return mpu;
}

EnergyBreakdown
energyForProfile(const HwConfig &hw, const OpProfile &p)
{
    const TechParams &tech = hw.tech;
    const int mant = significandBits(hw.actFormat);
    EnergyBreakdown e;

    // ---- MPU arithmetic ----
    e.mpuArithFj += p.fpMulOps * tech.fpMulEnergy(mant);
    e.mpuArithFj += p.fpAddOps * tech.fpAddEnergy(24);
    if (p.intMulOps > 0.0)
        e.mpuArithFj += p.intMulOps *
                        tech.intMulEnergy(p.intMulBitsA, p.intMulBitsB);
    if (p.intAddOps > 0.0)
        e.mpuArithFj += p.intAddOps * tech.intAddEnergy(p.intAddBits);
    e.mpuArithFj += p.dequantOps * tech.dequantEnergyFj(
        hw.fixedWeightBits, mant);
    e.mpuArithFj += p.prealignOps * tech.prealignEnergyFj(
        alignedWidth(hw.actFormat));
    e.mpuArithFj += p.i2fOps * tech.i2fEnergyFj(
        alignedWidth(hw.actFormat));
    e.mpuArithFj += p.scaleMulOps * tech.fpMulEnergy(24);

    // ---- LUT array (hFFLUT by default; FFLUT/RFLUT for ablation) ----
    if (p.lutInstanceCycles > 0.0) {
        LutConfig lut_cfg;
        lut_cfg.mu = hw.mu;
        lut_cfg.valueBits = p.lutValueBits;
        lut_cfg.fanout = hw.k;
        const auto pw = lutPower(hw.lutImpl, lut_cfg, tech);
        // Hold power per instantiated table (fan-out inflation
        // included); read/decode energy charged per actual read.
        e.lutFj += p.lutInstanceCycles * pw.holdFj;
        e.lutFj += p.lutReads * ((pw.readFj + pw.decoderFj) / hw.k);
    }

    // ---- LUT generation ----
    if (p.generatorAdds > 0.0) {
        const bool integer = hw.engine == EngineKind::FIGLUT_I;
        const double add_fj =
            integer ? tech.intAddEnergy(p.lutValueBits)
                    : tech.fpAddEnergy(24);
        e.generatorFj += p.generatorAdds * add_fj;
        e.generatorFj += p.lutWriteBits * tech.ffWritePerBitFj;
    }

    // ---- Pipeline registers ----
    e.registersFj += p.registerBitCycles * tech.ffHoldPerBitFj;

    // ---- VPU ----
    e.vpuFj += p.vpuOps *
               0.5 * (tech.fpAddEnergy(24) + tech.fpMulEnergy(24));

    // ---- Memories ----
    const SramModel sram(tech);
    const DramModel dram(tech);
    e.sramFj += sram.readEnergyFj(p.traffic.sramReadBits) +
                sram.writeEnergyFj(p.traffic.sramWriteBits);
    e.dramFj += dram.accessEnergyFj(p.traffic.dramBits);

    return e;
}

SimResult
simulateGemm(const HwConfig &hw, const GemmShape &shape)
{
    SimResult result;
    result.hw = hw;
    result.shape = shape;

    result.profile = gemmOpProfile(hw, shape);
    result.timing = gemmTiming(hw, shape,
                               result.profile.traffic.dramBits / 8.0);
    result.energy = energyForProfile(hw, result.profile);

    result.powerW = averagePowerW(result.energy,
                                  result.timing.totalCycles,
                                  hw.tech.freqMhz);
    result.effTops = shape.ops() / result.timing.seconds / 1e12;
    result.topsPerWatt =
        shape.ops() / result.energy.totalJoules() / 1e12;
    result.areaMm2 = engineTotalAreaMm2(mpuConfigFor(hw), hw.tech);
    result.topsPerMm2 = result.effTops / result.areaMm2;
    return result;
}

} // namespace figlut
