/**
 * @file
 * Hardware and workload configuration for the cycle-level simulator.
 *
 * All engines are configured at the paper's common design point: equal
 * peak Q4 throughput (16384 binary lanes / 4096 Q4 MACs per cycle),
 * 100 MHz, 28 nm (Section IV-B "Configuration Setup").
 */

#ifndef FIGLUT_SIM_ENGINE_CONFIG_H
#define FIGLUT_SIM_ENGINE_CONFIG_H

#include <cstdint>
#include <string>

#include "arch/lut_power.h"
#include "arch/tech_params.h"
#include "core/engine_numerics.h"
#include "numerics/fp_format.h"

namespace figlut {

/** One GEMM workload: Y(M x B) = W(M x N) * X(N x B). */
struct GemmShape
{
    std::size_t m = 0;        ///< output features
    std::size_t n = 0;        ///< input features (reduction dim)
    std::size_t batch = 1;    ///< input columns
    int weightBits = 4;       ///< quantized width q
    std::size_t groupSize = 0;///< scale group (0 = full row)
    bool hasOffset = true;    ///< BCQ offset / uniform zero point

    double macs() const
    {
        return static_cast<double>(m) * static_cast<double>(n) *
               static_cast<double>(batch);
    }

    /** Nominal GEMM operations (2 per MAC), the paper's TOPS basis. */
    double ops() const { return 2.0 * macs(); }

    /** Validate invariants; throws FatalError on bad input. */
    void validate() const;
};

/**
 * Host-side execution policy for the LUT-GEMM functional kernel
 * backing the FIGLUT engines. This configures the *simulator's*
 * software (which backend runs the numerics, on how many threads),
 * not the modeled hardware; results are backend-invariant by
 * construction. The non-LUT engine kernels (FPE/iFPU/FIGNA) are
 * scalar and ignore this policy.
 */
struct ExecConfig
{
    LutGemmBackend backend = LutGemmBackend::Reference;
    int threads = 0;    ///< Threaded/Packed: workers, <= 0 = hardware
    int blockRows = 64; ///< Threaded/Packed: rows per M-tile work item
    /**
     * Per-read operation counting inside the kernel loops instead of
     * the default closed-form accounting (identical totals either
     * way; instrumenting only slows the host kernel down).
     */
    bool instrument = false;

    /** Validate invariants; throws FatalError on bad input. */
    void validate() const;
};

/**
 * Interconnect cost model for sharded execution, in the spirit of
 * HPCC's b_eff effective-bandwidth methodology: one combine (the
 * activation broadcast to remote worker groups + the gather of their
 * output rows) costs latencyS + bytes / bandwidthBytesPerS. Both
 * parameters are calibrated from measurement — bench_stream's
 * cross-pool transfer reports them directly (xpool_latency_s /
 * xpool_bw_bytes_per_s; see BUILDING.md "Comm-model calibration") —
 * and the defaults below carry the dev-host calibration so simulated
 * shard sweeps are honest out of the box.
 */
struct InterconnectConfig
{
    /** Per-combine fixed cost: cross-group handshake + wakeup.
     *  Default = the best mutex/condvar handoff half round trip
     *  bench_stream's xpool probe measured on the reference host. */
    double latencyS = 1.0e-6;
    /** Effective cross-group bandwidth for combine traffic. Default =
     *  the xpool cross-pool copy rate on the reference host. */
    double bandwidthBytesPerS = 2.0e10;

    /** Validate invariants; throws FatalError on bad input. */
    void validate() const;
};

/** Engine hardware configuration. */
struct HwConfig
{
    EngineKind engine = EngineKind::FIGLUT_I;
    ActFormat actFormat = ActFormat::FP16;
    int mu = 4;               ///< FIGLUT LUT group size
    int k = 32;               ///< FIGLUT RACs per LUT
    /**
     * LUT implementation for the FIGLUT engines. hFFLUT is the
     * paper's design; FFLUT and RFLUT are the ablation points
     * (Sections III-C/III-D).
     */
    LutImpl lutImpl = LutImpl::HFFLUT;
    /**
     * Physical weight width of the fixed-precision engines. FPE and
     * FIGNA instantiated for Q4 must pad narrower weights to 4 bits;
     * the Q8 variants are separate (wider) hardware (Section IV-B).
     */
    int fixedWeightBits = 4;
    TechParams tech = TechParams::default28nm();
    ExecConfig exec; ///< host execution of the functional kernels
    /** Combine pricing for sharded GEMM tasks (shards > 1). */
    InterconnectConfig interconnect;

    /** True for the bit-serial engines (iFPU, FIGLUT). */
    bool bitSerial() const;

    /** Whether this engine runs on the pre-aligned integer datapath. */
    bool integerDatapath() const;

    /**
     * The weight width the hardware actually processes for a q-bit
     * workload: q for bit-serial engines, padded fixedWeightBits for
     * the fixed-precision ones.
     */
    int processedWeightBits(int q) const;

    /** Peak binary-lane MACs per cycle (16384 at the design point). */
    double peakBinaryLanes() const;

    /** Display name like "FIGLUT-I(FP16)". */
    std::string describe() const;

    /**
     * Numerics settings for this engine's functional kernels, with
     * the host execution policy (exec) plumbed through.
     */
    NumericsConfig numerics() const;

    /** Validate invariants; throws FatalError on bad input. */
    void validate() const;
};

} // namespace figlut

#endif // FIGLUT_SIM_ENGINE_CONFIG_H
