/**
 * @file
 * Analytic timing model for the weight-stationary engines.
 *
 * Tiling (Fig. 5): weight tiles are loaded once and reused across the
 * batch; bit-serial engines iterate weight bit planes within a tile
 * position before advancing. The model computes compute cycles from
 * the tile walk (inputs per tile + pipeline fill/drain) and overlaps
 * DRAM transfer via double buffering: total = max(compute, transfer)
 * plus one un-overlapped prologue tile.
 *
 * The detailed cycle-stepped simulator (systolic_sim) validates the
 * per-tile formula exactly on small shapes.
 */

#ifndef FIGLUT_SIM_TIMING_MODEL_H
#define FIGLUT_SIM_TIMING_MODEL_H

#include "sim/engine_config.h"

namespace figlut {

/** Tile geometry an engine walks for a given workload. */
struct TileWalk
{
    std::size_t mTile = 0;        ///< output rows covered per tile
    std::size_t kTileBinary = 0;  ///< binary (plane x column) lanes/tile
    std::size_t tilesM = 0;
    std::size_t tilesK = 0;       ///< over N x q binary columns
    double fillCycles = 0.0;      ///< pipeline fill + drain per tile
    double cyclesPerTile = 0.0;   ///< batch + fill
    double computeCycles = 0.0;   ///< tilesM * tilesK * cyclesPerTile
};

/** Resolve the tile walk for an engine/workload pair. */
TileWalk tileWalk(const HwConfig &hw, const GemmShape &shape);

/** Timing result with memory overlap applied. */
struct TimingResult
{
    double computeCycles = 0.0;
    double dramCycles = 0.0;
    double totalCycles = 0.0;
    double seconds = 0.0;
    double utilization = 0.0; ///< achieved / peak MAC throughput
};

/**
 * Combine compute cycles with DRAM transfer cycles under double
 * buffering.
 *
 * @param dram_bytes  total off-chip traffic for the workload
 */
TimingResult gemmTiming(const HwConfig &hw, const GemmShape &shape,
                        double dram_bytes);

} // namespace figlut

#endif // FIGLUT_SIM_TIMING_MODEL_H
