/**
 * @file
 * Engine simulator: composes the tile timing, the op profile and the
 * technology model into cycles, energy, power, TOPS/W and TOPS/mm^2
 * for one GEMM on one engine — the quantities behind Tables V and
 * Figs. 13, 15, 16, 17.
 */

#ifndef FIGLUT_SIM_ENGINE_SIM_H
#define FIGLUT_SIM_ENGINE_SIM_H

#include "arch/area_model.h"
#include "arch/energy_model.h"
#include "sim/op_counts.h"
#include "sim/timing_model.h"

namespace figlut {

/** Full result of simulating a GEMM on an engine. */
struct SimResult
{
    HwConfig hw;
    GemmShape shape;
    TimingResult timing;
    OpProfile profile;
    EnergyBreakdown energy;

    double powerW = 0.0;      ///< average power over the run
    double effTops = 0.0;     ///< nominal ops / wall time
    double topsPerWatt = 0.0; ///< nominal ops / joule
    double areaMm2 = 0.0;     ///< MPU + buffers
    double topsPerMm2 = 0.0;
};

/** Map an engine HwConfig onto the area model's MpuConfig. */
MpuConfig mpuConfigFor(const HwConfig &hw);

/** Price an op profile into an energy breakdown. */
EnergyBreakdown energyForProfile(const HwConfig &hw,
                                 const OpProfile &profile);

/** Simulate one GEMM end to end. */
SimResult simulateGemm(const HwConfig &hw, const GemmShape &shape);

} // namespace figlut

#endif // FIGLUT_SIM_ENGINE_SIM_H
