#include "sim/timing_model.h"

#include <algorithm>
#include <cmath>

#include "arch/area_model.h"
#include "arch/memory_model.h"
#include "common/logging.h"

namespace figlut {

namespace {

std::size_t
ceilDiv(std::size_t a, std::size_t b)
{
    return (a + b - 1) / b;
}

} // namespace

TileWalk
tileWalk(const HwConfig &hw, const GemmShape &shape)
{
    shape.validate();
    hw.validate();

    const auto geo = engineArray(hw.engine);
    const int q = hw.processedWeightBits(shape.weightBits);

    TileWalk walk;
    switch (hw.engine) {
      case EngineKind::FPE:
      case EngineKind::FIGNA: {
        // 64x64 multi-bit PEs: tiles over M and N; q is in-PE width.
        walk.mTile = static_cast<std::size_t>(geo.rows);
        walk.kTileBinary = static_cast<std::size_t>(geo.cols);
        walk.tilesM = ceilDiv(shape.m, walk.mTile);
        walk.tilesK = ceilDiv(shape.n, walk.kTileBinary);
        // Skew fill + drain, exactly as the detailed simulator counts.
        walk.fillCycles = static_cast<double>(geo.rows + geo.cols - 2);
        break;
      }
      case EngineKind::IFPU: {
        // 64x64x4 binary PEs: the plane dimension is extra binary-K
        // capacity; q planes of N columns make N*q binary columns.
        walk.mTile = static_cast<std::size_t>(geo.rows);
        walk.kTileBinary =
            static_cast<std::size_t>(geo.cols) * geo.planes;
        walk.tilesM = ceilDiv(shape.m, walk.mTile);
        walk.tilesK = ceilDiv(shape.n * static_cast<std::size_t>(q),
                              walk.kTileBinary);
        walk.fillCycles = static_cast<double>(geo.rows + geo.cols - 2);
        break;
      }
      case EngineKind::FIGLUT_F:
      case EngineKind::FIGLUT_I: {
        // 2x16x4 PEs, each k RACs x mu lanes: per tile the array covers
        // rows*k outputs and cols*mu*planes binary columns.
        walk.mTile = static_cast<std::size_t>(geo.rows) * hw.k;
        walk.kTileBinary = static_cast<std::size_t>(geo.cols) * hw.mu *
                           geo.planes;
        walk.tilesM = ceilDiv(shape.m, walk.mTile);
        walk.tilesK = ceilDiv(shape.n * static_cast<std::size_t>(q),
                              walk.kTileBinary);
        // Shallow pipeline: 16-column skew + 2 PE rows + LUT
        // generation stage (paper: <= 15-stage input buffers).
        walk.fillCycles =
            static_cast<double>(skewStages(hw.engine) + geo.rows + 1);
        break;
      }
    }

    walk.cyclesPerTile = static_cast<double>(shape.batch) +
                         walk.fillCycles;
    // Steady-state pipelining: double-buffered weight registers let a
    // tile's fill overlap the previous tile's drain within a row of K
    // tiles, so the fill penalty is paid once per M pass, not per
    // tile. (The detailed simulator validates the single-tile
    // batch+fill figure; this composes it with overlap.)
    walk.computeCycles = static_cast<double>(walk.tilesM) *
                             static_cast<double>(walk.tilesK) *
                             static_cast<double>(shape.batch) +
                         static_cast<double>(walk.tilesM) *
                             walk.fillCycles;
    return walk;
}

TimingResult
gemmTiming(const HwConfig &hw, const GemmShape &shape, double dram_bytes)
{
    const auto walk = tileWalk(hw, shape);
    const DramModel dram(hw.tech);

    TimingResult t;
    t.computeCycles = walk.computeCycles;
    t.dramCycles = dram.transferCycles(dram_bytes);
    // Double buffering overlaps compute with transfer; the first tile's
    // worth of data cannot be hidden.
    const double prologue =
        t.dramCycles / std::max<double>(1.0, static_cast<double>(
            walk.tilesM * walk.tilesK));
    t.totalCycles = std::max(t.computeCycles, t.dramCycles) + prologue;
    t.seconds = t.totalCycles / (hw.tech.freqMhz * 1e6);

    const int q = hw.processedWeightBits(shape.weightBits);
    const double peak_macs_per_cycle = hw.peakBinaryLanes() /
                                       static_cast<double>(q);
    t.utilization = shape.macs() /
                    (peak_macs_per_cycle * t.totalCycles);
    return t;
}

} // namespace figlut
