#include "sim/trace_replay.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"

namespace figlut {

namespace {

/** Mutable scheduling state of one request during the replay. */
struct Slot
{
    std::size_t decoded = 0;
};

} // namespace

ReplayResult
replayTrace(const OptConfig &model, const HwConfig &hw,
            const ReplayOptions &options,
            const std::vector<ReplayRequest> &trace)
{
    FIGLUT_ASSERT(options.maxBatch > 0,
                  "replayTrace needs maxBatch >= 1, got ",
                  options.maxBatch);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        FIGLUT_ASSERT(trace[i].outputTokens >= 1,
                      "replayTrace request ", i,
                      " has outputTokens == 0; a replay needs finite ",
                      "decode budgets");
        FIGLUT_ASSERT(i == 0 ||
                          trace[i - 1].arrivalS <= trace[i].arrivalS,
                      "replayTrace trace must be sorted by arrival: ",
                      "request ", i, " at ", trace[i].arrivalS,
                      " follows ", trace[i - 1].arrivalS);
    }

    ReplayResult result;
    result.requests.resize(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        result.requests[i].arrivalS = trace[i].arrivalS;
        result.requests[i].promptTokens = trace[i].promptTokens;
        result.requests[i].outputTokens = trace[i].outputTokens;
    }

    const Accelerator accelerator(hw);
    WorkloadOptions workload;
    workload.weightBits = options.weightBits;
    workload.includeVector = options.includeVector;
    workload.groupSize = options.groupSize;
    workload.hasOffset = options.hasOffset;

    std::vector<Slot> slots(trace.size());
    std::vector<std::size_t> active; ///< admission order = batch order
    std::deque<std::size_t> queue;

    // Mirror of Engine::submit(): direct admission only when a slot is
    // free AND nothing is already waiting (FIFO fairness), a bounded
    // queue otherwise, load-shed beyond it.
    const auto submit = [&](std::size_t i) {
        const bool direct =
            active.size() < options.maxBatch && queue.empty();
        if (direct)
            active.push_back(i);
        else if (queue.size() < options.maxQueue)
            queue.push_back(i);
        else
            result.requests[i].shed = true;
    };
    // Mirror of Engine::admitFromQueue().
    const auto admitFromQueue = [&] {
        while (active.size() < options.maxBatch && !queue.empty()) {
            active.push_back(queue.front());
            queue.pop_front();
        }
    };

    double simT = 0.0;
    std::size_t next = 0;
    while (true) {
        // Arrivals up to the current virtual time join before the next
        // step, exactly like submits landing between two step() calls.
        while (next < trace.size() && trace[next].arrivalS <= simT)
            submit(next++);
        if (active.empty() && queue.empty()) {
            if (next == trace.size())
                break;
            simT = trace[next].arrivalS;
            continue;
        }

        // One fused step: admit, price the ragged-context batch on the
        // accelerator, advance virtual time, decode one token each.
        admitFromQueue();
        const std::vector<std::size_t> batch = active;
        workload.batch = batch.size();
        std::vector<std::size_t> contextLens;
        contextLens.reserve(batch.size());
        for (const std::size_t i : batch)
            contextLens.push_back(trace[i].promptTokens +
                                  slots[i].decoded + 1);
        const std::vector<KernelTask> tasks =
            decodeStepWorkload(model, workload, contextLens);
        const double stepS = accelerator.runWorkload(tasks).seconds;

        for (const std::size_t i : batch)
            if (slots[i].decoded == 0)
                result.requests[i].queueS = simT - trace[i].arrivalS;
        simT += stepS;
        for (const std::size_t i : batch) {
            slots[i].decoded += 1;
            result.requests[i].tokenTimesS.push_back(simT);
        }
        active.erase(std::remove_if(active.begin(), active.end(),
                                    [&](std::size_t i) {
                                        return slots[i].decoded >=
                                               trace[i].outputTokens;
                                    }),
                     active.end());
        admitFromQueue();

        result.stepSeconds.push_back(stepS);
        result.queueDepth.push_back(queue.size());
        ++result.steps;
    }
    result.endS = simT;
    return result;
}

} // namespace figlut
