#include "sim/trace_replay.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"

namespace figlut {

namespace {

/** Mutable scheduling state of one request during the replay. */
struct Slot
{
    /** Tokens decoded in the current life (reset by eviction). */
    std::size_t decoded = 0;
    /** Prompt tokens prefilled in the current life (reset by
     *  eviction: the restarted life prefills from scratch). */
    std::size_t prefilled = 0;
    /** Shadow-arena sequence while live (reservation-only). */
    KvArena::SeqId seq = KvArena::kInvalidSeq;
    /** Step-start time of the last decoding step (admission time
     *  until then) — the eviction idle key, as in the engine. */
    double lastActivityS = 0.0;
    /** Admission counter value of the latest (re-)admission. */
    std::uint64_t admitSeq = 0;
    /** queueS stamped (first decode reached; never re-stamped). */
    bool everStamped = false;
    /** Dropped terminally mid-flight (shed or deadline). */
    bool terminal = false;
};

} // namespace

ReplayResult
replayTrace(const OptConfig &model, const HwConfig &hw,
            const ReplayOptions &options,
            const std::vector<ReplayRequest> &trace)
{
    FIGLUT_ASSERT(options.maxBatch > 0,
                  "replayTrace needs maxBatch >= 1, got ",
                  options.maxBatch);
    FIGLUT_ASSERT(options.kvBlockTokens > 0,
                  "replayTrace needs kvBlockTokens >= 1, got ",
                  options.kvBlockTokens);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        FIGLUT_ASSERT(trace[i].outputTokens >= 1,
                      "replayTrace request ", i,
                      " has outputTokens == 0; a replay needs finite ",
                      "decode budgets");
        FIGLUT_ASSERT(trace[i].deadlineS >= 0.0,
                      "replayTrace request ", i,
                      " has a negative deadline ", trace[i].deadlineS);
        FIGLUT_ASSERT(i == 0 ||
                          trace[i - 1].arrivalS <= trace[i].arrivalS,
                      "replayTrace trace must be sorted by arrival: ",
                      "request ", i, " at ", trace[i].arrivalS,
                      " follows ", trace[i - 1].arrivalS);
    }

    ReplayResult result;
    result.requests.resize(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        result.requests[i].arrivalS = trace[i].arrivalS;
        result.requests[i].promptTokens = trace[i].promptTokens;
        result.requests[i].outputTokens = trace[i].outputTokens;
    }

    const Accelerator accelerator(hw);
    WorkloadOptions workload;
    workload.weightBits = options.weightBits;
    workload.includeVector = options.includeVector;
    workload.groupSize = options.groupSize;
    workload.hasOffset = options.hasOffset;
    workload.shards = options.shards;

    // The shadow arena: same geometry, budget, and injector as the
    // engine's, but only ever reserve/release — no token is written,
    // so no slab chunk is materialized.
    KvArena::Options arenaOptions;
    arenaOptions.hidden = model.hidden;
    arenaOptions.layers = model.layers;
    arenaOptions.blockTokens = options.kvBlockTokens;
    arenaOptions.budgetBytes = options.kvBudgetBytes;
    KvArena arena(arenaOptions, options.faults);

    std::vector<Slot> slots(trace.size());
    std::vector<std::size_t> active; ///< admission order = batch order
    std::deque<std::size_t> queue;
    std::uint64_t admitCounter = 0;

    // Mirror of Engine::submit(): direct admission only when a slot is
    // free AND nothing is already waiting (FIFO fairness), a bounded
    // queue otherwise, load-shed beyond it.
    const auto submit = [&](std::size_t i, double nowS) {
        const bool direct =
            active.size() < options.maxBatch && queue.empty();
        if (direct) {
            slots[i].admitSeq = ++admitCounter;
            slots[i].lastActivityS = nowS;
            active.push_back(i);
        } else if (queue.size() < options.maxQueue) {
            queue.push_back(i);
        } else {
            result.requests[i].shed = true;
        }
    };
    // Mirror of Engine::admitFromQueue().
    const auto admitFromQueue = [&](double nowS) {
        while (active.size() < options.maxBatch && !queue.empty()) {
            const std::size_t i = queue.front();
            queue.pop_front();
            slots[i].admitSeq = ++admitCounter;
            slots[i].lastActivityS = nowS;
            active.push_back(i);
        }
    };
    const auto releaseSeq = [&](std::size_t i) {
        if (slots[i].seq != KvArena::kInvalidSeq) {
            arena.releaseSequence(slots[i].seq);
            slots[i].seq = KvArena::kInvalidSeq;
        }
    };

    double simT = 0.0;
    std::size_t next = 0;
    while (true) {
        // Arrivals up to the current virtual time join before the next
        // step, exactly like submits landing between two step() calls.
        while (next < trace.size() && trace[next].arrivalS <= simT) {
            submit(next, simT);
            ++next;
        }
        if (active.empty() && queue.empty()) {
            if (next == trace.size())
                break;
            simT = trace[next].arrivalS;
            continue;
        }

        // Mirror of Engine::step(), in the same order: deadline sweep
        // (on the skewed clock), admission, reservation pass, decode.
        const double t0 = simT;
        const double skewS =
            options.faults != nullptr
                ? options.faults->clockSkewS(result.steps)
                : 0.0;
        const double dlNowS = t0 + skewS;
        // Active columns first, then the queue, both in order.
        {
            std::vector<std::size_t> sweep(active.begin(), active.end());
            sweep.insert(sweep.end(), queue.begin(), queue.end());
            for (const std::size_t i : sweep) {
                if (trace[i].deadlineS <= 0.0 ||
                    dlNowS <= trace[i].arrivalS + trace[i].deadlineS)
                    continue;
                releaseSeq(i);
                slots[i].terminal = true;
                result.requests[i].deadlineMiss = true;
                result.requests[i].tokenTimesS.clear();
                active.erase(std::remove(active.begin(), active.end(),
                                         i),
                             active.end());
                const auto it =
                    std::find(queue.begin(), queue.end(), i);
                if (it != queue.end())
                    queue.erase(it);
            }
        }
        admitFromQueue(t0);
        if (active.empty())
            continue; // empty governance step: nothing recorded

        // Work assignment, as Engine::reserveStep(): each live
        // request's prefill chunk out of the shared per-step budget,
        // or one decode column.
        std::vector<std::size_t> remaining;
        remaining.reserve(active.size());
        for (const std::size_t i : active)
            remaining.push_back(trace[i].promptTokens -
                                slots[i].prefilled);
        const std::vector<std::size_t> assigned =
            serve::planPrefillChunks(remaining,
                                     options.prefillChunkTokens);

        // Reservation pass against the shadow arena — the exact
        // planner the engine runs, on the same items (working
        // requests only; a stalled prefill neither reserves nor is a
        // victim) in the same batch order.
        std::vector<serve::ReservationItem> items;
        std::vector<std::size_t> itemToActive;
        items.reserve(active.size());
        for (std::size_t a = 0; a < active.size(); ++a) {
            if (assigned[a] == 0)
                continue;
            const std::size_t i = active[a];
            if (slots[i].seq == KvArena::kInvalidSeq)
                slots[i].seq = arena.createSequence();
            serve::ReservationItem item;
            item.seq = slots[i].seq;
            item.needTokens =
                slots[i].prefilled + slots[i].decoded + assigned[a];
            item.lastActivityS = slots[i].lastActivityS;
            item.admitSeq = slots[i].admitSeq;
            items.push_back(item);
            itemToActive.push_back(a);
        }
        const serve::ReservationPlan plan =
            serve::planStepReservations(arena, options.policy, items);
        std::vector<char> dropped(active.size(), 0);
        std::vector<std::size_t> evicted;
        for (const std::size_t idx : plan.evicted) {
            const std::size_t a = itemToActive[idx];
            const std::size_t i = active[a];
            slots[i].seq = KvArena::kInvalidSeq; // planner released it
            slots[i].decoded = 0;
            slots[i].prefilled = 0;
            result.requests[i].evictions += 1;
            result.requests[i].tokenTimesS.clear();
            dropped[a] = 1;
            evicted.push_back(i);
        }
        for (const std::size_t idx : plan.shed) {
            const std::size_t a = itemToActive[idx];
            const std::size_t i = active[a];
            slots[i].seq = KvArena::kInvalidSeq;
            slots[i].terminal = true;
            result.requests[i].shed = true;
            result.requests[i].tokenTimesS.clear();
            dropped[a] = 1;
        }
        std::vector<std::size_t> keep;
        std::vector<std::size_t> work;
        keep.reserve(active.size());
        for (std::size_t a = 0; a < active.size(); ++a) {
            if (dropped[a])
                continue;
            keep.push_back(active[a]);
            work.push_back(assigned[a]);
        }
        active = std::move(keep);
        std::sort(evicted.begin(), evicted.end(),
                  [&](std::size_t a, std::size_t b) {
                      return slots[a].admitSeq > slots[b].admitSeq;
                  });
        for (const std::size_t i : evicted)
            queue.push_front(i);

        // The working subset: requests with columns this step. Empty
        // only when governance dropped every budget-holding request
        // (stalled prefills may survive with zero columns).
        std::vector<std::size_t> batch;
        std::vector<std::size_t> batchWork;
        for (std::size_t a = 0; a < active.size(); ++a) {
            if (work[a] == 0)
                continue;
            batch.push_back(active[a]);
            batchWork.push_back(work[a]);
        }
        if (batch.empty()) {
            admitFromQueue(t0);
            continue; // governance-empty step: nothing recorded
        }

        // One fused step: price the ragged mixed prefill/decode batch
        // on the accelerator, advance virtual time, then complete each
        // column's bookkeeping — a prompt column at sequence position
        // p attends causally over p + 1 entries, a decode column over
        // its full context, exactly the engine's columnContexts.
        std::vector<std::size_t> contextLens;
        std::size_t width = 0;
        for (std::size_t w = 0; w < batch.size(); ++w) {
            const std::size_t i = batch[w];
            const std::size_t heldTokens =
                slots[i].prefilled + slots[i].decoded;
            for (std::size_t j = 0; j < batchWork[w]; ++j)
                contextLens.push_back(heldTokens + j + 1);
            width += batchWork[w];
        }
        workload.batch = width;
        const std::vector<KernelTask> tasks =
            decodeStepWorkload(model, workload, contextLens);
        const double stepS = accelerator.runWorkload(tasks).seconds;

        for (const std::size_t i : batch)
            if (!slots[i].everStamped) {
                result.requests[i].queueS = t0 - trace[i].arrivalS;
                slots[i].everStamped = true;
            }
        simT += stepS;
        for (std::size_t w = 0; w < batch.size(); ++w) {
            const std::size_t i = batch[w];
            slots[i].lastActivityS = t0;
            if (slots[i].prefilled < trace[i].promptTokens) {
                slots[i].prefilled += batchWork[w];
                result.prefillTokens += batchWork[w];
            } else {
                slots[i].decoded += 1;
                result.decodeTokens += 1;
                result.requests[i].tokenTimesS.push_back(simT);
            }
        }
        for (const std::size_t i : batch)
            if (slots[i].decoded >= trace[i].outputTokens)
                releaseSeq(i);
        active.erase(std::remove_if(active.begin(), active.end(),
                                    [&](std::size_t i) {
                                        return slots[i].decoded >=
                                               trace[i].outputTokens;
                                    }),
                     active.end());
        admitFromQueue(t0);

        result.stepSeconds.push_back(stepS);
        result.queueDepth.push_back(queue.size());
        ++result.steps;
    }
    result.endS = simT;
    return result;
}

} // namespace figlut
