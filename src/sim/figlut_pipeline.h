/**
 * @file
 * Detailed cycle-stepped model of the FIGLUT PE pipeline (Fig. 4):
 * the LUT generator consumes one mu-chunk of pre-aligned activations
 * per cycle, the generated half-table is written to the PE's FFLUT
 * after the generator's pipelined tree latency, and k RACs per plane
 * read it concurrently (the conflict-free property) and accumulate
 * integer partial sums.
 *
 * This is the FIGLUT counterpart of SystolicSim: it validates the
 * analytic model's per-tile cycle shape and proves the dataflow
 * functionally — pipeline outputs must equal the plane-serial signed
 * sums bit for bit.
 */

#ifndef FIGLUT_SIM_FIGLUT_PIPELINE_H
#define FIGLUT_SIM_FIGLUT_PIPELINE_H

#include <cstdint>
#include <vector>

#include "common/matrix.h"

namespace figlut {

/** Geometry of the modeled PE group. */
struct FiglutPipelineConfig
{
    int mu = 4;             ///< LUT group size
    int k = 32;             ///< RACs sharing each LUT
    int planes = 4;         ///< bit planes processed concurrently
    int generatorDepth = 2; ///< pipelined tree stages (Fig. 11)
};

/** Result of streaming one weight tile through the pipeline. */
struct FiglutPipelineRun
{
    /** psums(r, p): output row r, bit plane p. */
    Matrix<int64_t> psums;
    uint64_t cycles = 0;
    uint64_t lutBuilds = 0;
    uint64_t lutReads = 0;
};

/** Cycle-stepped FIGLUT PE pipeline. */
class FiglutPipelineSim
{
  public:
    explicit FiglutPipelineSim(const FiglutPipelineConfig &config);

    /**
     * Stream a tile.
     *
     * @param plane_bits  plane_bits[p](r, c) in {0,1}: weight bit of
     *                    plane p for output row r (r < k), input
     *                    column c; p < planes; column count must be a
     *                    multiple of mu
     * @param acts        pre-aligned integer activations, one per
     *                    input column
     */
    FiglutPipelineRun runTile(
        const std::vector<Matrix<uint8_t>> &plane_bits,
        const std::vector<int64_t> &acts) const;

    /** Closed-form cycles: chunks + generatorDepth (pipeline drain). */
    static uint64_t expectedCycles(std::size_t chunks, int depth);

  private:
    FiglutPipelineConfig config_;
};

} // namespace figlut

#endif // FIGLUT_SIM_FIGLUT_PIPELINE_H
