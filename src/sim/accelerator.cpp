#include "sim/accelerator.h"

#include "common/logging.h"

namespace figlut {

KernelTask
KernelTask::makeGemm(std::string name, GemmShape shape)
{
    KernelTask task;
    task.kind = Kind::Gemm;
    task.name = std::move(name);
    task.gemm = shape;
    return task;
}

KernelTask
KernelTask::makeVector(std::string name, VpuOpCounts ops)
{
    KernelTask task;
    task.kind = Kind::Vector;
    task.name = std::move(name);
    task.vector = ops;
    return task;
}

Accelerator::Accelerator(HwConfig hw) : hw_(std::move(hw))
{
    hw_.validate();
}

SimResult
Accelerator::runGemm(const GemmShape &shape) const
{
    return simulateGemm(hw_, shape);
}

WorkloadResult
Accelerator::runWorkload(const std::vector<KernelTask> &tasks) const
{
    if (tasks.empty())
        fatal("cannot run an empty workload");

    WorkloadResult result;
    double gemm_ops = 0.0;

    for (const auto &task : tasks) {
        switch (task.kind) {
          case KernelTask::Kind::Gemm: {
            auto sim = runGemm(task.gemm);
            result.totalCycles += sim.timing.totalCycles;
            result.gemmCycles += sim.timing.totalCycles;
            result.energy.merge(sim.energy);
            // Shared-memory interface: activations in, outputs out
            // (weights are resident; the host reads results in place,
            // Section III-F).
            const int store = storageBits(hw_.actFormat);
            result.axiBytes +=
                (static_cast<double>(task.gemm.n) * task.gemm.batch +
                 static_cast<double>(task.gemm.m) * task.gemm.batch) *
                store / 8.0;
            // Row-sharded execution: compute is unchanged (each output
            // row runs on exactly one group), but every GEMM pays one
            // combine — broadcast the activations to the shards-1
            // remote groups, gather their share of the output rows —
            // priced b_eff-style as latency + bytes / eff. bandwidth.
            if (task.shards > 1) {
                const double remote =
                    static_cast<double>(task.shards - 1);
                const double bytes =
                    (static_cast<double>(task.gemm.n) *
                         task.gemm.batch * remote +
                     static_cast<double>(task.gemm.m) *
                         task.gemm.batch * remote / task.shards) *
                    store / 8.0;
                const double commS =
                    hw_.interconnect.latencyS +
                    bytes / hw_.interconnect.bandwidthBytesPerS;
                const double commCycles =
                    commS * hw_.tech.freqMhz * 1e6;
                result.commBytes += bytes;
                result.commCycles += commCycles;
                result.totalCycles += commCycles;
            }
            gemm_ops += task.gemm.ops();
            result.gemmResults.push_back(std::move(sim));
            break;
          }
          case KernelTask::Kind::Vector: {
            const double cycles = vpuCycles(task.vector);
            result.totalCycles += cycles;
            result.vpuCycles += cycles;
            EnergyBreakdown e;
            e.vpuFj = vpuEnergyFj(task.vector, hw_.tech);
            result.energy.merge(e);
            break;
          }
        }
    }

    result.seconds = result.totalCycles / (hw_.tech.freqMhz * 1e6);
    result.effTops = gemm_ops / result.seconds / 1e12;
    result.topsPerWatt =
        gemm_ops / result.energy.totalJoules() / 1e12;
    result.powerW = averagePowerW(result.energy, result.totalCycles,
                                  hw_.tech.freqMhz);
    return result;
}

} // namespace figlut
