/**
 * @file
 * Weight-tile fetch sequencing (paper Fig. 5).
 *
 * Both engine families are weight-stationary, but they walk weight
 * tiles differently:
 *  - FP-INT engines (FPE/FIGNA, Fig. 5a): each weight element is a
 *    multi-bit word; tiles advance in K-major order within an M pass.
 *  - FP-BCQ engines (iFPU/FIGLUT, Fig. 5b): weights are bit planes;
 *    at each (M, K) tile position the engine loads *all q planes
 *    consecutively* ("2" in the figure) before advancing to the next
 *    K tile.
 *
 * The scheduler materializes the exact fetch order so the memory
 * models (and tests) can check coverage and ordering properties
 * explicitly instead of trusting closed-form counts.
 */

#ifndef FIGLUT_SIM_TILE_SCHEDULER_H
#define FIGLUT_SIM_TILE_SCHEDULER_H

#include <cstdint>
#include <vector>

#include "sim/timing_model.h"

namespace figlut {

/** One weight-tile fetch. */
struct TileFetch
{
    std::size_t mTile = 0;  ///< output-row tile index
    std::size_t kTile = 0;  ///< reduction tile index (binary cols)
    int plane = 0;          ///< bit plane (always 0 for FP-INT)

    bool
    operator==(const TileFetch &other) const
    {
        return mTile == other.mTile && kTile == other.kTile &&
               plane == other.plane;
    }
};

/**
 * The full fetch sequence for a workload on an engine.
 *
 * FP-INT engines produce tilesM x tilesK fetches (plane fixed at 0);
 * FP-BCQ engines produce tilesM x tilesK x plane-groups fetches in
 * plane-major order within each tile position. `planes_per_fetch`
 * planes are co-resident (the array's plane dimension), so a q-bit
 * workload needs ceil(q / planes_per_fetch) plane groups.
 */
std::vector<TileFetch> tileFetchSequence(const HwConfig &hw,
                                         const GemmShape &shape);

/** Number of plane groups an engine iterates per tile position. */
int planeGroupsPerTile(const HwConfig &hw, const GemmShape &shape);

} // namespace figlut

#endif // FIGLUT_SIM_TILE_SCHEDULER_H
