#include "sim/figlut_pipeline.h"

#include <optional>

#include "common/logging.h"
#include "core/lut_generator.h"

namespace figlut {

FiglutPipelineSim::FiglutPipelineSim(const FiglutPipelineConfig &config)
    : config_(config)
{
    if (config.mu < 2 || config.mu > 8)
        fatal("FIGLUT pipeline needs mu in [2, 8], got ", config.mu);
    if (config.k < 1 || config.planes < 1 || config.generatorDepth < 1)
        fatal("FIGLUT pipeline needs positive k/planes/depth");
}

uint64_t
FiglutPipelineSim::expectedCycles(std::size_t chunks, int depth)
{
    return static_cast<uint64_t>(chunks) + static_cast<uint64_t>(depth);
}

FiglutPipelineRun
FiglutPipelineSim::runTile(const std::vector<Matrix<uint8_t>> &plane_bits,
                           const std::vector<int64_t> &acts) const
{
    const auto mu = static_cast<std::size_t>(config_.mu);
    const auto k = static_cast<std::size_t>(config_.k);
    const auto planes = static_cast<std::size_t>(config_.planes);

    if (plane_bits.size() != planes)
        fatal("expected ", planes, " weight planes, got ",
              plane_bits.size());
    if (acts.empty() || acts.size() % mu != 0)
        fatal("activation count ", acts.size(),
              " must be a non-zero multiple of mu=", mu);
    for (const auto &p : plane_bits) {
        if (p.rows() != k || p.cols() != acts.size())
            fatal("weight plane must be ", k, "x", acts.size(),
                  ", got ", p.rows(), "x", p.cols());
    }
    const std::size_t chunks = acts.size() / mu;

    FiglutPipelineRun run;
    run.psums = Matrix<int64_t>(k, planes, 0);

    const LutGenerator generator(config_.mu, FpArith::Exact);

    // Pipeline registers: a generated table in flight per stage.
    struct InFlight
    {
        HalfLutI table;
        std::size_t chunk;
    };
    std::vector<std::optional<InFlight>> stage(
        static_cast<std::size_t>(config_.generatorDepth));

    const uint64_t horizon =
        expectedCycles(chunks, config_.generatorDepth) + 4;
    uint64_t last_work = 0;
    std::size_t retired = 0;

    for (uint64_t t = 0; t < horizon && retired < chunks; ++t) {
        // RAC stage: the table leaving the last pipeline register is
        // read by every (row, plane) RAC this cycle.
        if (stage.back().has_value()) {
            const auto &ready = *stage.back();
            const std::size_t c0 = ready.chunk * mu;
            for (std::size_t p = 0; p < planes; ++p) {
                for (std::size_t r = 0; r < k; ++r) {
                    uint32_t key = 0;
                    for (std::size_t j = 0; j < mu; ++j)
                        key = (key << 1) | plane_bits[p](r, c0 + j);
                    run.psums(r, p) += ready.table.value(key);
                    ++run.lutReads;
                }
            }
            ++retired;
            last_work = t + 1;
        }

        // Shift the generator pipeline.
        for (std::size_t s = stage.size(); s-- > 1;)
            stage[s] = std::move(stage[s - 1]);

        // Generator front end: start one chunk per cycle.
        if (t < chunks) {
            std::vector<int64_t> xs(acts.begin() + t * mu,
                                    acts.begin() + (t + 1) * mu);
            stage[0] = InFlight{generator.generateHalfInt(xs),
                                static_cast<std::size_t>(t)};
            ++run.lutBuilds;
            last_work = t + 1;
        } else {
            stage[0].reset();
        }
    }

    FIGLUT_ASSERT(retired == chunks,
                  "FIGLUT pipeline failed to retire all chunks: ",
                  retired, " of ", chunks);
    run.cycles = last_work;
    return run;
}

} // namespace figlut
