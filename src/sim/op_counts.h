/**
 * @file
 * Per-engine operation and traffic profiles for a GEMM workload.
 *
 * The profile is the bridge between the timing model and the energy
 * model: every arithmetic operation, LUT event, register-file cycle and
 * memory bit moved is tallied here, then priced by arch/TechParams in
 * the engine simulator.
 */

#ifndef FIGLUT_SIM_OP_COUNTS_H
#define FIGLUT_SIM_OP_COUNTS_H

#include "arch/memory_model.h"
#include "sim/timing_model.h"

namespace figlut {

/** Operation tallies for one GEMM run on one engine. */
struct OpProfile
{
    // ---- MPU arithmetic ----
    double fpMulOps = 0.0;     ///< FP multiplies (input significand)
    double fpAddOps = 0.0;     ///< FP adds (accumulate significand)
    double intMulOps = 0.0;    ///< integer multiplies
    int intMulBitsA = 0;
    int intMulBitsB = 0;
    double intAddOps = 0.0;    ///< integer adds
    int intAddBits = 0;
    double dequantOps = 0.0;   ///< INT->FP weight dequantizations (FPE)
    double prealignOps = 0.0;  ///< activation alignment shifts
    double i2fOps = 0.0;       ///< INT->FP output recoveries
    double scaleMulOps = 0.0;  ///< alpha/scale FP32 multiplies

    // ---- LUT events (FIGLUT only) ----
    double lutReads = 0.0;       ///< RAC table reads
    double lutBuilds = 0.0;      ///< table (re)generations
    double generatorAdds = 0.0;  ///< adds inside generators
    double lutWriteBits = 0.0;   ///< FF write bits during builds
    int lutValueBits = 0;        ///< stored entry width
    double lutInstanceCycles = 0.0; ///< #LUT instances x active cycles

    // ---- Register activity ----
    double registerBitCycles = 0.0; ///< held FF bits x active cycles

    // ---- VPU ----
    double vpuOps = 0.0; ///< FP32-equivalent vector ops

    // ---- Memory traffic ----
    MemTraffic traffic;

    // ---- Timing snapshot used to build the profile ----
    TileWalk walk;
};

/**
 * Build the operation profile for a GEMM on the configured engine.
 *
 * The profile embeds the tile walk (so compute-cycle-proportional
 * costs like register clocking and LUT holding use the same numbers as
 * the timing model).
 */
OpProfile gemmOpProfile(const HwConfig &hw, const GemmShape &shape);

/** Per-PE pipeline flip-flop bits (excluding the LUT FF array). */
int peRegisterBits(const HwConfig &hw);

} // namespace figlut

#endif // FIGLUT_SIM_OP_COUNTS_H
