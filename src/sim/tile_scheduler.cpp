#include "sim/tile_scheduler.h"

#include <cmath>

#include "arch/area_model.h"
#include "common/logging.h"

namespace figlut {

int
planeGroupsPerTile(const HwConfig &hw, const GemmShape &shape)
{
    if (!hw.bitSerial())
        return 1;
    const auto geo = engineArray(hw.engine);
    return static_cast<int>(std::ceil(
        static_cast<double>(shape.weightBits) / geo.planes));
}

std::vector<TileFetch>
tileFetchSequence(const HwConfig &hw, const GemmShape &shape)
{
    shape.validate();
    hw.validate();

    // The walk counts binary-column tiles including the plane
    // dimension; for the explicit sequence we separate the K-space
    // walk from the plane iteration at one tile position.
    const auto walk = tileWalk(hw, shape);
    const int plane_groups = planeGroupsPerTile(hw, shape);
    const std::size_t tiles_k_space =
        (walk.tilesK + plane_groups - 1) /
        static_cast<std::size_t>(plane_groups);

    std::vector<TileFetch> sequence;
    sequence.reserve(walk.tilesM * tiles_k_space *
                     static_cast<std::size_t>(plane_groups));

    for (std::size_t m = 0; m < walk.tilesM; ++m) {
        for (std::size_t k = 0; k < tiles_k_space; ++k) {
            // Fig. 5b: all plane groups at this position first ("2"),
            // then advance to the next K tile ("3"). For FP-INT
            // engines plane_groups == 1 and this degenerates to the
            // Fig. 5a walk.
            for (int p = 0; p < plane_groups; ++p)
                sequence.push_back({m, k, p});
        }
    }
    return sequence;
}

} // namespace figlut
