#include "sim/engine_config.h"

#include "arch/area_model.h"
#include "common/logging.h"

namespace figlut {

void
GemmShape::validate() const
{
    if (m == 0 || n == 0 || batch == 0)
        fatal("GEMM shape must be non-empty, got ", m, "x", n, " batch ",
              batch);
    if (weightBits < 1 || weightBits > 8)
        fatal("weight bits must be in [1, 8], got ", weightBits);
    if (groupSize > n)
        fatal("group size ", groupSize, " exceeds reduction dim ", n);
}

bool
HwConfig::bitSerial() const
{
    return engine == EngineKind::IFPU ||
           engine == EngineKind::FIGLUT_F ||
           engine == EngineKind::FIGLUT_I;
}

bool
HwConfig::integerDatapath() const
{
    return engine == EngineKind::IFPU || engine == EngineKind::FIGNA ||
           engine == EngineKind::FIGLUT_I;
}

int
HwConfig::processedWeightBits(int q) const
{
    if (bitSerial())
        return q;
    if (q > fixedWeightBits)
        fatal(engineName(engine), " hardware with ", fixedWeightBits,
              "-bit weight datapath cannot process q=", q, " weights");
    return fixedWeightBits; // sub-width data is padded (Section IV-C)
}

double
HwConfig::peakBinaryLanes() const
{
    const auto geo = engineArray(engine);
    switch (engine) {
      case EngineKind::FPE:
      case EngineKind::FIGNA:
        // One fixed-width MAC per PE per cycle counts as
        // fixedWeightBits binary lanes.
        return static_cast<double>(geo.pes()) * fixedWeightBits;
      case EngineKind::IFPU:
        return static_cast<double>(geo.pes());
      case EngineKind::FIGLUT_F:
      case EngineKind::FIGLUT_I:
        return static_cast<double>(geo.pes()) * k * mu;
    }
    panic("unknown engine kind");
}

std::string
HwConfig::describe() const
{
    return engineName(engine) + "(" + actFormatName(actFormat) + ",Q" +
           std::to_string(fixedWeightBits) + ")";
}

void
InterconnectConfig::validate() const
{
    if (latencyS < 0.0)
        fatal("interconnect latency must be >= 0, got ", latencyS);
    if (bandwidthBytesPerS <= 0.0)
        fatal("interconnect bandwidth must be positive, got ",
              bandwidthBytesPerS);
}

void
ExecConfig::validate() const
{
    if (backend != LutGemmBackend::Reference && blockRows < 1)
        fatal("blocked execution needs blockRows >= 1, got ", blockRows);
    if (threads > kMaxLutGemmThreads)
        fatal("threaded execution supports at most ", kMaxLutGemmThreads,
              " workers, got ", threads);
}

NumericsConfig
HwConfig::numerics() const
{
    NumericsConfig nc;
    nc.actFormat = actFormat;
    nc.mu = mu;
    nc.backend = exec.backend;
    nc.threads = exec.threads;
    nc.blockRows = exec.blockRows;
    nc.instrument = exec.instrument;
    return nc;
}

void
HwConfig::validate() const
{
    if (mu < 2 || mu > 8)
        fatal("FIGLUT mu must be in [2, 8], got ", mu);
    if (k < 1 || k > 1024)
        fatal("FIGLUT k must be in [1, 1024], got ", k);
    if (fixedWeightBits != 4 && fixedWeightBits != 8)
        fatal("fixed-precision engines support Q4 or Q8 datapaths, got ",
              fixedWeightBits);
    if (tech.freqMhz <= 0.0)
        fatal("clock frequency must be positive");
    exec.validate();
    interconnect.validate();
}

} // namespace figlut
