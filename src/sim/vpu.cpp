#include "sim/vpu.h"

#include "common/logging.h"

namespace figlut {

VpuOpCounts
softmaxOps(std::size_t rows, std::size_t cols)
{
    VpuOpCounts ops;
    const double r = static_cast<double>(rows);
    const double c = static_cast<double>(cols);
    // max reduce + subtract + exp + sum reduce + divide
    ops.adds = r * (c + c);       // max tree + sum tree
    ops.muls = r * c;             // subtract (priced as add-class mul)
    ops.specials = r * (c + c);   // exp per element + divide per element
    return ops;
}

VpuOpCounts
layerNormOps(std::size_t rows, std::size_t cols)
{
    VpuOpCounts ops;
    const double r = static_cast<double>(rows);
    const double c = static_cast<double>(cols);
    // mean, variance, normalize, scale+shift
    ops.adds = r * (c + c + c);
    ops.muls = r * (c + c);
    ops.specials = r; // rsqrt per row
    return ops;
}

VpuOpCounts
geluOps(std::size_t n)
{
    VpuOpCounts ops;
    const double d = static_cast<double>(n);
    ops.adds = 2.0 * d;
    ops.muls = 4.0 * d;
    ops.specials = d; // tanh
    return ops;
}

VpuOpCounts
residualOps(std::size_t n)
{
    VpuOpCounts ops;
    ops.adds = static_cast<double>(n);
    return ops;
}

double
vpuEnergyFj(const VpuOpCounts &ops, const TechParams &tech)
{
    const double add = tech.fpAddEnergy(24);
    const double mul = tech.fpMulEnergy(24);
    return ops.adds * add + ops.muls * mul + ops.specials * 4.0 * mul;
}

double
vpuCycles(const VpuOpCounts &ops, int lanes)
{
    FIGLUT_ASSERT(lanes > 0, "VPU needs at least one lane");
    // Specials take 4 lane-cycles.
    const double lane_ops = ops.adds + ops.muls + 4.0 * ops.specials;
    return lane_ops / static_cast<double>(lanes);
}

} // namespace figlut
