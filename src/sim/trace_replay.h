/**
 * @file
 * Trace replay on the simulated accelerator: the serving engine's
 * continuous-batching schedule, re-run in virtual time with every
 * fused step priced by sim::Accelerator instead of executed on the
 * host.
 *
 * replayTrace() consumes the same arrival trace a measured
 * serving_load run drives through serve::Engine and mirrors the
 * engine's scheduling policy exactly — FIFO admission up to maxBatch,
 * a bounded wait queue with load-shed beyond maxQueue, one token per
 * live request per step, retirement at the output budget — but each
 * step advances a virtual clock by the Accelerator-scored duration of
 * that step's ragged-context KernelTask list (the same
 * decodeStepWorkload() mapping Engine::workloadTasks() emits). The
 * result is per-request latency in *simulated* seconds, directly
 * comparable against the measured run: same trace, same schedule
 * shape, modeled hardware instead of the host.
 *
 * The schedule equivalence is pinned by tests/bench_load: a
 * serve::Engine driven on a VirtualClock advanced by the identical
 * per-step scores produces bit-identical shed sets, token completion
 * times, and queue depths.
 */

#ifndef FIGLUT_SIM_TRACE_REPLAY_H
#define FIGLUT_SIM_TRACE_REPLAY_H

#include <cstdint>
#include <vector>

#include "model/workload.h"
#include "sim/accelerator.h"

namespace figlut {

/** One arriving request of a replayed trace. */
struct ReplayRequest
{
    double arrivalS = 0.0;         ///< submit time, seconds from start
    std::size_t promptTokens = 0;  ///< synthetic prompt KV length
    std::size_t outputTokens = 1;  ///< decode budget (must be >= 1)
};

/** Scheduling and workload-pricing knobs, mirroring EngineOptions. */
struct ReplayOptions
{
    std::size_t maxBatch = 8; ///< live requests per fused step
    std::size_t maxQueue = 64; ///< waiting bound; shed beyond
    int weightBits = 4;        ///< quantized weight width of the GEMMs
    bool includeVector = true; ///< price the VPU kernels too
    std::size_t groupSize = 0; ///< scale-group geometry (0 = per-row)
    bool hasOffset = true;     ///< BCQ offset term present
};

/** Simulated outcome of one trace request (trace order). */
struct ReplayRequestResult
{
    double arrivalS = 0.0;
    std::size_t promptTokens = 0;
    std::size_t outputTokens = 0;
    bool shed = false; ///< rejected at submit (queue full)
    /** Arrival to the start of the first decoding step (0 if shed). */
    double queueS = 0.0;
    /** Virtual completion time of each decoded token, oldest first. */
    std::vector<double> tokenTimesS;
};

/** Aggregated replay outcome. */
struct ReplayResult
{
    /** Per-request outcomes, in trace order. */
    std::vector<ReplayRequestResult> requests;
    /** Fused steps executed. */
    std::size_t steps = 0;
    /** Simulated duration of each step, in execution order. */
    std::vector<double> stepSeconds;
    /** Wait-queue depth after each step's final admission. */
    std::vector<std::size_t> queueDepth;
    /** Virtual time when the last step finished. */
    double endS = 0.0;
};

/**
 * Replay an arrival trace (sorted by arrivalS, every outputTokens
 * >= 1) against the accelerator model `hw`, mirroring serve::Engine's
 * continuous-batching schedule. Deterministic: a pure function of its
 * arguments.
 */
ReplayResult replayTrace(const OptConfig &model, const HwConfig &hw,
                         const ReplayOptions &options,
                         const std::vector<ReplayRequest> &trace);

} // namespace figlut

#endif // FIGLUT_SIM_TRACE_REPLAY_H
