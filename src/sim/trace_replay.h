/**
 * @file
 * Trace replay on the simulated accelerator: the serving engine's
 * continuous-batching schedule, re-run in virtual time with every
 * fused step priced by sim::Accelerator instead of executed on the
 * host.
 *
 * replayTrace() consumes the same arrival trace a measured
 * serving_load run drives through serve::Engine and mirrors the
 * engine's scheduling policy exactly — FIFO admission up to maxBatch,
 * a bounded wait queue with load-shed beyond maxQueue, chunked prompt
 * prefill before the first token (the shared planPrefillChunks()
 * budget, so prefill steps cost simulated time exactly as they cost
 * the engine wall time), one token per decoding request per step,
 * retirement at the output budget — but each step advances a virtual
 * clock by the Accelerator-scored duration of that step's
 * ragged-context KernelTask list (the same decodeStepWorkload()
 * mapping Engine::workloadTasks() emits). The result is per-request
 * latency in *simulated* seconds, directly comparable against the
 * measured run: same trace, same schedule shape, modeled hardware
 * instead of the host.
 *
 * The memory governance is mirrored too: a bounded kvBudgetBytes runs
 * the replay against a shadow KvArena (same block geometry, same
 * FaultInjector) through the identical planStepReservations() pass
 * the engine runs, so shed/evict/deadline outcomes reproduce the
 * engine's schedule — the shadow arena only *reserves* blocks, it
 * never writes a KV byte, so a replay costs block-table bookkeeping,
 * not slab memory. This is a deliberate inversion of the layer map
 * (sim consuming runtime/kv_arena.h and serve/degradation.h, like
 * runtime/session consuming serve/engine.h): the replay is a model
 * *of* the serving engine and shares its policy code by construction
 * rather than by transcription. One divergence to know about:
 * deadlines are measured from arrivalS here but from the actual
 * submit time in the engine — identical whenever arrivals are
 * released on time (the pinned case), off by the submit lag
 * otherwise.
 *
 * The schedule equivalence is pinned by tests/bench_load: a
 * serve::Engine driven on a VirtualClock advanced by the identical
 * per-step scores produces bit-identical shed sets, token completion
 * times, and queue depths — with and without a KV budget, eviction,
 * deadlines, and injected allocation faults.
 */

#ifndef FIGLUT_SIM_TRACE_REPLAY_H
#define FIGLUT_SIM_TRACE_REPLAY_H

#include <cstdint>
#include <vector>

#include "model/workload.h"
#include "runtime/kv_arena.h"
#include "serve/degradation.h"
#include "sim/accelerator.h"

namespace figlut {

/** One arriving request of a replayed trace. */
struct ReplayRequest
{
    double arrivalS = 0.0;         ///< submit time, seconds from start
    std::size_t promptTokens = 0;  ///< prompt length (prefilled before
                                   ///< the first decoded token)
    std::size_t outputTokens = 1;  ///< decode budget (must be >= 1)
    /** Seconds after arrival by which the request must finish; 0 =
     *  no deadline (mirrors RequestOptions::deadlineS). */
    double deadlineS = 0.0;
};

/** Scheduling and workload-pricing knobs, mirroring EngineOptions. */
struct ReplayOptions
{
    std::size_t maxBatch = 8; ///< live requests per fused step
    std::size_t maxQueue = 64; ///< waiting bound; shed beyond
    int weightBits = 4;        ///< quantized weight width of the GEMMs
    bool includeVector = true; ///< price the VPU kernels too
    std::size_t groupSize = 0; ///< scale-group geometry (0 = per-row)
    bool hasOffset = true;     ///< BCQ offset term present
    /** Worker groups each GEMM is row-sharded across, as
     *  ExecOptions::shards resolves in the engine (1 = unsharded);
     *  shards > 1 prices one interconnect combine per GEMM. */
    int shards = 1;
    /** KV byte budget (0 = unbounded), as EngineOptions::kvBudgetBytes. */
    std::size_t kvBudgetBytes = 0;
    /** Arena paging granularity, as EngineOptions::kvBlockTokens. */
    std::size_t kvBlockTokens = 16;
    /** Per-step prefill token budget shared across the batch, as
     *  EngineOptions::prefillChunkTokens (0 = unbounded). */
    std::size_t prefillChunkTokens = 0;
    /** Degradation policy under budget pressure. */
    serve::DegradationPolicy policy =
        serve::DegradationPolicy::ShedNewest;
    /** Shared failure seam (must be pure; see FaultInjector). Not
     *  owned. nullptr = no faults, no clock skew. */
    FaultInjector *faults = nullptr;
};

/** Simulated outcome of one trace request (trace order). */
struct ReplayRequestResult
{
    double arrivalS = 0.0;
    std::size_t promptTokens = 0;
    std::size_t outputTokens = 0;
    /** Dropped terminally under capacity pressure: rejected at submit
     *  (queue full) or shed mid-flight by the KV budget. */
    bool shed = false;
    /** Dropped past its deadline (terminal). */
    bool deadlineMiss = false;
    /** Times the request was evicted and re-queued (its token times
     *  only reflect the final, surviving life — which prefills the
     *  prompt again from scratch). */
    std::size_t evictions = 0;
    /** Arrival to the start of the first step that worked on this
     *  request — prefill or decode (0 if shed before any work). */
    double queueS = 0.0;
    /** Virtual completion time of each *decoded* token, oldest first
     *  (prefill steps advance the clock but complete no token, so
     *  tokenTimesS[0] - arrivalS is the honest simulated TTFT:
     *  queue wait + every prefill step + the first decode step). */
    std::vector<double> tokenTimesS;
};

/** Aggregated replay outcome. */
struct ReplayResult
{
    /** Per-request outcomes, in trace order. */
    std::vector<ReplayRequestResult> requests;
    /** Fused steps that did work — prefill or decode (empty
     *  governance-only steps are not counted, matching
     *  Engine::stepsExecuted()). */
    std::size_t steps = 0;
    /** Prompt tokens prefilled across all steps (re-prefills after an
     *  eviction counted again, matching the engine's recompute). */
    std::size_t prefillTokens = 0;
    /** Decode tokens completed across all steps. */
    std::size_t decodeTokens = 0;
    /** Simulated duration of each step, in execution order. */
    std::vector<double> stepSeconds;
    /** Wait-queue depth after each step's final admission. */
    std::vector<std::size_t> queueDepth;
    /** Virtual time when the last step finished. */
    double endS = 0.0;
};

/**
 * Replay an arrival trace (sorted by arrivalS, every outputTokens
 * >= 1) against the accelerator model `hw`, mirroring serve::Engine's
 * continuous-batching schedule and memory governance. Deterministic:
 * a pure function of its arguments (FaultInjector purity included).
 */
ReplayResult replayTrace(const OptConfig &model, const HwConfig &hw,
                         const ReplayOptions &options,
                         const std::vector<ReplayRequest> &trace);

} // namespace figlut

#endif // FIGLUT_SIM_TRACE_REPLAY_H
