#include "sim/systolic_sim.h"

#include "common/logging.h"

namespace figlut {

SystolicSim::SystolicSim(const SystolicConfig &config) : config_(config)
{
    if (config.rows < 1 || config.cols < 1)
        fatal("systolic array must be at least 1x1, got ", config.rows,
              "x", config.cols);
}

uint64_t
SystolicSim::expectedCycles(int rows, int cols, std::size_t batch)
{
    return static_cast<uint64_t>(batch) + rows + cols - 2;
}

SystolicTileRun
SystolicSim::runTile(const Matrix<int32_t> &weights,
                     const Matrix<int32_t> &acts) const
{
    const int rows = config_.rows;
    const int cols = config_.cols;
    if (weights.rows() != static_cast<std::size_t>(rows) ||
        weights.cols() != static_cast<std::size_t>(cols)) {
        fatal("weight tile must be ", rows, "x", cols, ", got ",
              weights.rows(), "x", weights.cols());
    }
    if (acts.rows() != static_cast<std::size_t>(rows))
        fatal("activation tile must have ", rows, " rows, got ",
              acts.rows());
    const std::size_t batch = acts.cols();
    if (batch == 0)
        fatal("cannot stream an empty batch");

    SystolicTileRun run;
    run.outputs = Matrix<int64_t>(static_cast<std::size_t>(cols), batch,
                                  0);

    // Register state: value + validity + the batch index the value
    // belongs to (for drain bookkeeping).
    struct ActReg
    {
        int64_t value = 0;
        long batch = -1;
    };
    struct PsumReg
    {
        int64_t value = 0;
        long batch = -1;
    };
    Matrix<ActReg> act_now(rows, cols);
    Matrix<ActReg> act_next(rows, cols);
    Matrix<PsumReg> psum_now(rows, cols);
    Matrix<PsumReg> psum_next(rows, cols);

    uint64_t last_drain = 0;
    std::size_t drained = 0;
    const uint64_t horizon =
        expectedCycles(rows, cols, batch) + 4; // safety margin

    for (uint64_t t = 0; t < horizon && drained < batch * cols; ++t) {
        for (int r = 0; r < rows; ++r) {
            for (int c = 0; c < cols; ++c) {
                // Activation input: left neighbour, or skewed
                // injection at the left edge (batch b enters row r at
                // cycle b + r).
                ActReg a_in;
                if (c == 0) {
                    const long b = static_cast<long>(t) - r;
                    if (b >= 0 && b < static_cast<long>(batch)) {
                        a_in.value = acts(static_cast<std::size_t>(r),
                                          static_cast<std::size_t>(b));
                        a_in.batch = b;
                    }
                } else {
                    a_in = act_now(r, c - 1);
                }

                // Partial-sum input from above (zero at the top).
                PsumReg p_in;
                if (r > 0)
                    p_in = psum_now(r - 1, c);

                PsumReg p_out;
                if (a_in.batch >= 0) {
                    FIGLUT_ASSERT(r == 0 || p_in.batch == a_in.batch ||
                                      p_in.batch == -1,
                                  "systolic psum/activation skew "
                                  "mismatch at (", r, ",", c, ")");
                    p_out.value =
                        (r > 0 ? p_in.value : 0) +
                        static_cast<int64_t>(weights(
                            static_cast<std::size_t>(r),
                            static_cast<std::size_t>(c))) *
                            a_in.value;
                    p_out.batch = a_in.batch;
                    ++run.macEvents;
                }

                act_next(r, c) = a_in;
                psum_next(r, c) = p_out;
            }
        }
        std::swap(act_now, act_next);
        std::swap(psum_now, psum_next);

        // Drain: the bottom row's psum registers now hold completed
        // outputs for their batch indices.
        for (int c = 0; c < cols; ++c) {
            const auto &p = psum_now(rows - 1, c);
            if (p.batch >= 0) {
                run.outputs(static_cast<std::size_t>(c),
                            static_cast<std::size_t>(p.batch)) = p.value;
                ++drained;
                last_drain = t + 1;
            }
        }
    }

    FIGLUT_ASSERT(drained == batch * static_cast<std::size_t>(cols),
                  "systolic run did not drain all outputs: ", drained,
                  " of ", batch * cols);
    run.cycles = last_drain;
    return run;
}

} // namespace figlut
