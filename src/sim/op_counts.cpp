#include "sim/op_counts.h"

#include <cmath>

#include "arch/area_model.h"
#include "common/logging.h"
#include "core/lut_generator.h"

namespace figlut {

int
peRegisterBits(const HwConfig &hw)
{
    const int store = storageBits(hw.actFormat);
    const int aligned = alignedWidth(hw.actFormat);
    switch (hw.engine) {
      case EngineKind::FPE:
        // weight + input + psum + control
        return hw.fixedWeightBits + store + 32 + 2;
      case EngineKind::FIGNA: {
        const int acc = aligned + hw.fixedWeightBits + 8;
        return hw.fixedWeightBits + aligned + acc + 2;
      }
      case EngineKind::IFPU: {
        const int acc = aligned + 8;
        return 1 + aligned + acc + 1;
      }
      case EngineKind::FIGLUT_F:
        // Per PE: k x (mu-bit key + 32-bit psum).
        return hw.k * (hw.mu + 32);
      case EngineKind::FIGLUT_I: {
        const int acc = aligned + hw.mu / 2 + 8;
        return hw.k * (hw.mu + acc);
      }
    }
    panic("unknown engine kind");
}

OpProfile
gemmOpProfile(const HwConfig &hw, const GemmShape &shape)
{
    shape.validate();
    hw.validate();

    OpProfile p;
    p.walk = tileWalk(hw, shape);

    const double m = static_cast<double>(shape.m);
    const double n = static_cast<double>(shape.n);
    const double b = static_cast<double>(shape.batch);
    const double macs = shape.macs();
    const int q = shape.weightBits;            // logical planes
    const int qproc = hw.processedWeightBits(q); // physical width
    const int store = storageBits(hw.actFormat);
    const int aligned = alignedWidth(hw.actFormat);
    const auto geo = engineArray(hw.engine);
    const double tiles_m = static_cast<double>(p.walk.tilesM);
    const double tiles_k = static_cast<double>(p.walk.tilesK);
    // Cycles in which the array does useful work; fill/drain cycles
    // are clock-gated and charged nothing (standard practice, and
    // essential at small batch where fill dominates the tile time).
    const double active_cycles = tiles_m * tiles_k * b;
    const std::size_t groups =
        shape.groupSize == 0 ? 1
                             : (shape.n + shape.groupSize - 1) /
                                   shape.groupSize;

    // ---- Arithmetic by engine ----
    switch (hw.engine) {
      case EngineKind::FPE: {
        p.fpMulOps = macs;
        p.fpAddOps = macs; // FP32 accumulate
        // Dequantize once per stationary weight element per batch pass.
        p.dequantOps = m * n;
        p.scaleMulOps = 0.0; // folded into dequantization
        break;
      }
      case EngineKind::FIGNA: {
        p.intMulOps = macs;
        p.intMulBitsA = aligned;
        p.intMulBitsB = qproc;
        p.intAddOps = macs;
        p.intAddBits = aligned + qproc + 8;
        p.prealignOps = n * b * tiles_m;
        // Exponent recovery + FP32 fold per (output, k-tile).
        p.i2fOps = m * b * tiles_k;
        p.scaleMulOps = m * b * static_cast<double>(groups);
        break;
      }
      case EngineKind::IFPU: {
        p.intAddOps = macs * q; // one add/sub per binary plane lane
        p.intAddBits = aligned + 8;
        p.prealignOps = n * b * tiles_m;
        p.i2fOps = m * b * tiles_k;
        // alpha multiply per (output, plane, group).
        p.scaleMulOps = m * b * q * static_cast<double>(groups);
        break;
      }
      case EngineKind::FIGLUT_F:
      case EngineKind::FIGLUT_I: {
        const bool integer = hw.engine == EngineKind::FIGLUT_I;
        const double mu = static_cast<double>(hw.mu);
        p.lutReads = macs * q / mu;
        if (integer) {
            p.intAddOps = p.lutReads; // RAC integer accumulate
            p.intAddBits = aligned + hw.mu / 2 + 8;
            p.prealignOps = n * b * tiles_m;
            p.i2fOps = m * b * tiles_k;
        } else {
            p.fpAddOps = p.lutReads; // RAC FP32 accumulate
        }
        p.scaleMulOps = m * b * q * static_cast<double>(groups);

        // LUT generation: every (mu-chunk, batch column) per M pass,
        // repeated for each group of `planes` bit planes the array
        // processes concurrently.
        const double plane_passes = std::ceil(
            static_cast<double>(q) / geo.planes);
        p.lutBuilds = (n / mu) * b * tiles_m * plane_passes;
        const auto gstats = lutGeneratorAdderCount(hw.mu);
        p.generatorAdds =
            p.lutBuilds * static_cast<double>(gstats.treeAdds);
        p.lutValueBits = integer ? aligned + hw.mu / 2 : 32;
        p.lutWriteBits = p.lutBuilds *
                         static_cast<double>(lutEntries(hw.mu - 1)) *
                         p.lutValueBits;
        // Every PE's LUT is held while the array streams inputs.
        p.lutInstanceCycles = static_cast<double>(geo.pes()) *
                              active_cycles;
        break;
      }
    }

    // ---- Register clocking: active PE flip-flops ----
    p.registerBitCycles = static_cast<double>(peRegisterBits(hw)) *
                          static_cast<double>(geo.pes()) *
                          active_cycles;
    // Input skew buffers at the array edge, clocked while streaming.
    {
        const int stages = skewStages(hw.engine);
        const double tri = 0.5 * stages * (stages + 1);
        const int lane_bits =
            hw.engine == EngineKind::FPE ? store : aligned;
        p.registerBitCycles += tri * lane_bits * active_cycles;
    }

    // ---- VPU: offset term + output post-processing ----
    // Activation sums per (group, batch): n adds; offset multiply-add
    // per (output, group, batch); final output scale/convert per
    // output element.
    p.vpuOps = n * b                                      // act sums
               + (shape.hasOffset ? m * b * groups : 0.0) // offset MAD
               + m * b;                                   // output pack

    // ---- Memory traffic ----
    const double weight_bits_dram =
        m * n * static_cast<double>(hw.bitSerial() ? q : qproc);
    const double meta_bits =
        m * static_cast<double>(groups) *
        (static_cast<double>(q) + (shape.hasOffset ? 1.0 : 0.0)) * 16.0;
    const double act_bits = n * b * store;
    const double out_bits = m * b * store;

    p.traffic.dramBits = weight_bits_dram + meta_bits + act_bits +
                         out_bits;

    // SRAM: weights and activations staged once, activations re-read
    // per M pass, psums spilled between K tiles.
    p.traffic.sramWriteBits = weight_bits_dram + meta_bits + act_bits +
                              out_bits;
    p.traffic.sramReadBits = weight_bits_dram + meta_bits +
                             act_bits * tiles_m + out_bits;
    if (tiles_k > 1.0) {
        const double psum_bits = m * b * 32.0 * (tiles_k - 1.0);
        p.traffic.sramReadBits += psum_bits;
        p.traffic.sramWriteBits += psum_bits;
    }

    return p;
}

} // namespace figlut
