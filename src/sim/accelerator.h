/**
 * @file
 * Whole-accelerator system model (paper Fig. 12): FIGLUT (or a
 * baseline engine) attached to a host over an AXI-style shared-memory
 * interface, with double-buffered on-chip staging, the MPU for GEMMs
 * and the VPU for everything else.
 *
 * The accelerator executes *workloads* — sequences of GEMM and vector
 * kernels (a transformer layer, a full decode step) — and aggregates
 * timing, energy and interface traffic.
 */

#ifndef FIGLUT_SIM_ACCELERATOR_H
#define FIGLUT_SIM_ACCELERATOR_H

#include <string>
#include <vector>

#include "sim/engine_sim.h"
#include "sim/vpu.h"

namespace figlut {

/** One kernel in a workload. */
struct KernelTask
{
    enum class Kind { Gemm, Vector };

    Kind kind = Kind::Gemm;
    std::string name;
    GemmShape gemm;       ///< valid when kind == Gemm
    VpuOpCounts vector;   ///< valid when kind == Vector
    /**
     * Worker groups this GEMM is row-sharded across (1 = unsharded).
     * Sharding never changes the computed result, so the compute
     * cycles are unchanged; shards > 1 adds one interconnect combine
     * per GEMM (HwConfig::interconnect): the activation broadcast to
     * the shards-1 remote groups plus the gather of their output
     * rows. Ignored for vector tasks.
     */
    int shards = 1;

    static KernelTask makeGemm(std::string name, GemmShape shape);
    static KernelTask makeVector(std::string name, VpuOpCounts ops);
};

/** Aggregated result of running a workload. */
struct WorkloadResult
{
    double totalCycles = 0.0;
    double seconds = 0.0;
    EnergyBreakdown energy;
    double gemmCycles = 0.0;
    double vpuCycles = 0.0;
    double commCycles = 0.0;  ///< interconnect combines (sharded GEMMs)
    double commBytes = 0.0;   ///< bytes moved by those combines
    double axiBytes = 0.0;    ///< host<->accelerator shared-memory traffic
    double effTops = 0.0;     ///< GEMM ops / wall time
    double topsPerWatt = 0.0;
    double powerW = 0.0;
    std::vector<SimResult> gemmResults;
};

/** The accelerator system: one engine + VPU + shared-memory frontend. */
class Accelerator
{
  public:
    explicit Accelerator(HwConfig hw);

    const HwConfig &config() const { return hw_; }

    /** Run a single GEMM. */
    SimResult runGemm(const GemmShape &shape) const;

    /** Run a kernel sequence and aggregate. */
    WorkloadResult runWorkload(const std::vector<KernelTask> &tasks) const;

  private:
    HwConfig hw_;
};

} // namespace figlut

#endif // FIGLUT_SIM_ACCELERATOR_H
