/**
 * @file
 * Umbrella header: the full FIGLUT public API.
 *
 * Layering (see DESIGN.md):
 *   common   - containers, RNG, logging, output formatting
 *   numerics - bit-exact FP16/BF16, pre-alignment
 *   quant    - RTN, BCQ, uniform->BCQ, packing, mixed precision
 *   core     - LUT/hFFLUT/generator/RAC, LUT-GEMM, engine numerics,
 *              thread pool + execution context
 *   arch     - 28nm technology, LUT power, memory, area/energy models
 *   sim      - tile timing, detailed systolic sim, engine simulator
 *   model    - OPT workloads, synthetic data, perplexity proxy
 *   runtime  - quantized models, KV caches + the paged KV arena,
 *              inference sessions (numeric decode steps + the
 *              matching analytic workload)
 *   serve    - request-level engine with continuous batching over one
 *              shared quantized model (Status/Result error surface),
 *              memory-governed by a KV byte budget with pluggable
 *              degradation policies and fault injection
 */

#ifndef FIGLUT_FIGLUT_H
#define FIGLUT_FIGLUT_H

#include "common/csv.h"
#include "common/logging.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table.h"

#include "numerics/bf16.h"
#include "numerics/fp16.h"
#include "numerics/fp_format.h"
#include "numerics/prealign.h"
#include "numerics/softfloat.h"

#include "quant/bcq.h"
#include "quant/mixed_precision.h"
#include "quant/packing.h"
#include "quant/rtn.h"
#include "quant/uniform_to_bcq.h"

#include "core/engine_numerics.h"
#include "core/execution_context.h"
#include "core/half_lut.h"
#include "core/lut.h"
#include "core/lut_gemm.h"
#include "core/lut_generator.h"
#include "core/lut_key.h"
#include "core/parallel.h"
#include "core/simd.h"

#include "arch/area_model.h"
#include "arch/bank_conflict.h"
#include "arch/energy_model.h"
#include "arch/lut_power.h"
#include "arch/memory_model.h"
#include "arch/tech_params.h"

#include "sim/accelerator.h"
#include "sim/engine_config.h"
#include "sim/engine_sim.h"
#include "sim/figlut_pipeline.h"
#include "sim/op_counts.h"
#include "sim/systolic_sim.h"
#include "sim/tile_scheduler.h"
#include "sim/timing_model.h"
#include "sim/trace_replay.h"
#include "sim/vpu.h"

#include "model/opt_family.h"
#include "model/ppl.h"
#include "model/synthetic.h"
#include "model/workload.h"

#include "runtime/exec_options.h"
#include "runtime/kv_arena.h"
#include "runtime/kv_cache.h"
#include "runtime/quantized_model.h"
#include "runtime/reference_ops.h"
#include "runtime/session.h"

#include "shard/numa.h"
#include "shard/shard_plan.h"
#include "shard/sharded_executor.h"

#include "serve/clock.h"
#include "serve/degradation.h"
#include "serve/engine.h"
#include "serve/request.h"

#endif // FIGLUT_FIGLUT_H
