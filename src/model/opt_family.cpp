#include "model/opt_family.h"

#include "common/logging.h"

namespace figlut {

double
OptConfig::gemmParams() const
{
    const double h = static_cast<double>(hidden);
    const double f = static_cast<double>(ffn);
    // QKV (3h*h) + out (h*h) + FC1 (f*h) + FC2 (h*f) per layer.
    return static_cast<double>(layers) * (4.0 * h * h + 2.0 * h * f);
}

const std::vector<OptConfig> &
optFamily()
{
    static const std::vector<OptConfig> family = {
        {"OPT-125M", 768, 12, 12, 3072},
        {"OPT-350M", 1024, 24, 16, 4096},
        {"OPT-1.3B", 2048, 24, 32, 8192},
        {"OPT-2.7B", 2560, 32, 32, 10240},
        {"OPT-6.7B", 4096, 32, 32, 16384},
        {"OPT-13B", 5120, 40, 40, 20480},
        {"OPT-30B", 7168, 48, 56, 28672},
    };
    return family;
}

const OptConfig &
optByName(const std::string &name)
{
    for (const auto &cfg : optFamily())
        if (cfg.name == name)
            return cfg;
    fatal("unknown OPT variant '", name, "'");
}

std::vector<GemmShape>
layerGemms(const OptConfig &model, std::size_t batch, int weight_bits,
           std::size_t group_size, bool has_offset)
{
    if (batch == 0)
        fatal("batch must be positive");
    auto shape = [&](std::size_t m, std::size_t n) {
        GemmShape s;
        s.m = m;
        s.n = n;
        s.batch = batch;
        s.weightBits = weight_bits;
        s.groupSize = group_size; // 0 = per-row scales
        s.hasOffset = has_offset;
        return s;
    };
    return {
        shape(3 * model.hidden, model.hidden), // QKV
        shape(model.hidden, model.hidden),     // attention output
        shape(model.ffn, model.hidden),        // FC1
        shape(model.hidden, model.ffn),        // FC2
    };
}

std::vector<GemmShape>
decodeStepGemms(const OptConfig &model, std::size_t batch,
                int weight_bits)
{
    std::vector<GemmShape> all;
    const auto layer = layerGemms(model, batch, weight_bits);
    all.reserve(model.layers * layer.size());
    for (std::size_t l = 0; l < model.layers; ++l)
        all.insert(all.end(), layer.begin(), layer.end());
    return all;
}

} // namespace figlut
