/**
 * @file
 * Perplexity reference data and the quantization-error -> perplexity
 * proxy (DESIGN.md substitution #3).
 *
 * We cannot run OPT on WikiText-2 offline, so:
 *  - the paper's published perplexities (Tables IV and VI) are kept
 *    verbatim as reference constants, and
 *  - a two-anchor power-law proxy maps *measured* weight quantization
 *    error (from our own RTN/BCQ quantizers) to a proxy perplexity:
 *        ppl(err) = ppl_fp16 + a * err^b
 *    with (a, b) solved from the published (BCQ4, BCQ3) anchor points
 *    per model. The proxy is monotone in error, exact at the anchors,
 *    and lets benches print paper-shaped perplexity columns for bit
 *    widths the paper reports (2, 2.4, 3, 4).
 */

#ifndef FIGLUT_MODEL_PPL_H
#define FIGLUT_MODEL_PPL_H

#include <string>
#include <vector>

namespace figlut {

/** Published WikiText-2 perplexities for one OPT variant. */
struct OptPplReference
{
    std::string model;
    double fp16;  ///< FP16 baseline (Table VI)
    double rtn4;  ///< RTN 4-bit, all engines (Table IV)
    double bcq4;  ///< ShiftAddLLM BCQ 4-bit (Table VI)
    double bcq3;  ///< ShiftAddLLM BCQ 3-bit (Table VI)
};

/** Paper reference table (350M .. 30B). */
const std::vector<OptPplReference> &pplReferenceTable();

/** Look up by model name; throws FatalError if unknown. */
const OptPplReference &pplReference(const std::string &model);

/** Table IV special case: FIGLUT-I differs only at 13B (20.89). */
double tableIvPerplexity(const std::string &model,
                         const std::string &engine);

/** Two-anchor power-law proxy ppl(err) = fp16 + a * err^b. */
class PplProxy
{
  public:
    /**
     * @param fp16_ppl  unquantized baseline perplexity
     * @param err4      measured quantization error at the 4-bit anchor
     * @param ppl4      published 4-bit perplexity
     * @param err3      measured quantization error at the 3-bit anchor
     * @param ppl3      published 3-bit perplexity
     */
    PplProxy(double fp16_ppl, double err4, double ppl4, double err3,
             double ppl3);

    /** Proxy perplexity for a measured quantization error. */
    double predict(double err) const;

    double exponent() const { return b_; }
    double coefficient() const { return a_; }

  private:
    double fp16_;
    double a_;
    double b_;
};

} // namespace figlut

#endif // FIGLUT_MODEL_PPL_H
