#include "model/ppl.h"

#include <cmath>

#include "common/logging.h"

namespace figlut {

const std::vector<OptPplReference> &
pplReferenceTable()
{
    // Sources: paper Table IV (RTN-4bit via every engine) and Table VI
    // (FP16 / ShiftAddLLM BCQ4 / BCQ3).
    static const std::vector<OptPplReference> table = {
        {"OPT-350M", 22.00, 55.24, 22.59, 28.72},
        {"OPT-1.3B", 14.62, 67.95, 15.11, 19.69},
        {"OPT-2.7B", 12.47, 35.46, 12.73, 15.28},
        {"OPT-6.7B", 10.86, 24.13, 11.08, 11.80},
        {"OPT-13B", 10.13, 20.93, 10.33, 10.70},
        {"OPT-30B", 9.56, 19.17, 9.70, 9.89},
    };
    return table;
}

const OptPplReference &
pplReference(const std::string &model)
{
    for (const auto &entry : pplReferenceTable())
        if (entry.model == model)
            return entry;
    fatal("no perplexity reference for model '", model, "'");
}

double
tableIvPerplexity(const std::string &model, const std::string &engine)
{
    const auto &ref = pplReference(model);
    // Table IV: GPU, FIGLUT-F and FIGLUT-I agree everywhere except
    // FIGLUT-I on OPT-13B (20.89 vs 20.93), the pre-alignment rounding
    // artefact.
    if (engine == "FIGLUT-I" && model == "OPT-13B")
        return 20.89;
    return ref.rtn4;
}

PplProxy::PplProxy(double fp16_ppl, double err4, double ppl4, double err3,
                   double ppl3)
    : fp16_(fp16_ppl)
{
    if (!(err3 > err4 && err4 > 0.0))
        fatal("proxy anchors need err3 > err4 > 0, got ", err3, " vs ",
              err4);
    if (!(ppl3 > ppl4 && ppl4 > fp16_ppl))
        fatal("proxy anchors need ppl3 > ppl4 > fp16, got ", ppl3, ", ",
              ppl4, ", ", fp16_ppl);
    // Solve ppl = fp16 + a * err^b through both anchors.
    b_ = std::log((ppl3 - fp16_) / (ppl4 - fp16_)) /
         std::log(err3 / err4);
    a_ = (ppl4 - fp16_) / std::pow(err4, b_);
}

double
PplProxy::predict(double err) const
{
    if (err <= 0.0)
        return fp16_;
    return fp16_ + a_ * std::pow(err, b_);
}

} // namespace figlut
