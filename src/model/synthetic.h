/**
 * @file
 * Synthetic weight/activation generators standing in for real OPT
 * checkpoints and WikiText-2 activations (see DESIGN.md substitution
 * #2/#3).
 *
 * Weights: zero-mean Gaussians with per-row scale variation, matching
 * the statistics weight-only quantizers are designed for. Activations:
 * Gaussian bulk plus a small fraction of large outliers — the salient
 * property of LLM activations the paper cites as the reason for
 * keeping activations in FP.
 */

#ifndef FIGLUT_MODEL_SYNTHETIC_H
#define FIGLUT_MODEL_SYNTHETIC_H

#include "common/matrix.h"
#include "common/rng.h"

namespace figlut {

/** Plain Gaussian matrix. */
MatrixD gaussianMatrix(std::size_t rows, std::size_t cols, Rng &rng,
                       double mean = 0.0, double stddev = 1.0);

/** Transformer-like weight matrix: Gaussian with per-row scales. */
MatrixD syntheticWeights(std::size_t rows, std::size_t cols, Rng &rng,
                         double base_std = 0.02,
                         double row_scale_spread = 0.5);

/**
 * LLM-like activations: N(0,1) bulk with `outlier_rate` of entries
 * scaled by `outlier_scale` (channel-consistent outliers).
 */
MatrixD syntheticActivations(std::size_t rows, std::size_t cols, Rng &rng,
                             double outlier_rate = 0.005,
                             double outlier_scale = 12.0);

} // namespace figlut

#endif // FIGLUT_MODEL_SYNTHETIC_H
