/**
 * @file
 * OPT model family descriptors (Zhang et al., 2022) — the workloads of
 * every evaluation in the paper (OPT-125M .. OPT-30B on WikiText-2).
 *
 * Only the decoder GEMM structure matters for the accelerator: per
 * layer, the QKV projection (3h x h), the attention output projection
 * (h x h) and the two FFN projections (4h x h and h x 4h).
 */

#ifndef FIGLUT_MODEL_OPT_FAMILY_H
#define FIGLUT_MODEL_OPT_FAMILY_H

#include <string>
#include <vector>

#include "sim/engine_config.h"

namespace figlut {

/** Architecture of one OPT variant. */
struct OptConfig
{
    std::string name;     ///< "OPT-6.7B"
    std::size_t hidden = 0;
    std::size_t layers = 0;
    std::size_t heads = 0;
    std::size_t ffn = 0;  ///< FFN inner width (4 * hidden for OPT)

    /** Decoder GEMM parameter count (excludes embeddings). */
    double gemmParams() const;
};

/** All variants evaluated in the paper, smallest first. */
const std::vector<OptConfig> &optFamily();

/** Look up a variant by name; throws FatalError if unknown. */
const OptConfig &optByName(const std::string &name);

/**
 * The four weight-GEMM shapes of one decoder layer for a given batch
 * and weight precision, in execution order: QKV, attn-out, FC1, FC2.
 * group_size/has_offset describe the scale-group geometry of the
 * quantized weights (defaults: per-row scales with an offset term, the
 * paper's evaluation point).
 */
std::vector<GemmShape> layerGemms(const OptConfig &model,
                                  std::size_t batch, int weight_bits,
                                  std::size_t group_size = 0,
                                  bool has_offset = true);

/** All weight GEMMs of a full decode step (layers x 4). */
std::vector<GemmShape> decodeStepGemms(const OptConfig &model,
                                       std::size_t batch,
                                       int weight_bits);

} // namespace figlut

#endif // FIGLUT_MODEL_OPT_FAMILY_H
