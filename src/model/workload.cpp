#include "model/workload.h"

#include "common/logging.h"

namespace figlut {

std::vector<LayerStepSpec>
layerSpecs(const OptConfig &model, const WorkloadOptions &options)
{
    return layerSpecs(
        model, options,
        std::vector<std::size_t>(options.batch, options.contextLen));
}

std::vector<LayerStepSpec>
layerSpecs(const OptConfig &model, const WorkloadOptions &options,
           const std::vector<std::size_t> &contextLens)
{
    if (contextLens.size() != options.batch)
        fatal("ragged layerSpecs needs one context length per batch ",
              "column: got ", contextLens.size(), " for batch ",
              options.batch);
    const auto gemms = layerGemms(model, options.batch,
                                  options.weightBits, options.groupSize,
                                  options.hasOffset);
    const std::size_t b = options.batch;
    const std::size_t h = model.hidden;
    const std::size_t f = model.ffn;

    std::vector<LayerStepSpec> steps;
    auto vec = [&](LayerOp op, const char *name, VpuOpCounts ops) {
        steps.push_back({op, KernelTask::makeVector(name, ops)});
    };
    auto gemm = [&](LayerOp op, const char *name, std::size_t idx) {
        KernelTask task = KernelTask::makeGemm(name, gemms[idx]);
        // Sharded execution is an attribute of the GEMM, not of the
        // vector ops: the Accelerator prices one combine per task.
        task.shards = options.shards > 0 ? options.shards : 1;
        steps.push_back({op, std::move(task)});
    };

    vec(LayerOp::LayerNorm1, "ln1", layerNormOps(b, h));
    gemm(LayerOp::QkvProj, "qkv", 0);
    // Decode-phase attention: per batch column, scores over that
    // column's KV cache (h dot products of length ctx are act-act work
    // on the VPU here). Summing per-column costs keeps the uniform
    // case exact: the op counts are small-integer products.
    {
        VpuOpCounts attn;
        for (const std::size_t ctx : contextLens) {
            attn.adds += static_cast<double>(ctx) * h;  // QK^T
            attn.muls += static_cast<double>(ctx) * h;
            attn.merge(softmaxOps(model.heads, ctx));
            attn.adds += static_cast<double>(ctx) * h;  // AV
            attn.muls += static_cast<double>(ctx) * h;
        }
        vec(LayerOp::Attention, "attention", attn);
    }
    gemm(LayerOp::OutProj, "attn_out", 1);
    vec(LayerOp::Residual1, "residual1", residualOps(b * h));
    vec(LayerOp::LayerNorm2, "ln2", layerNormOps(b, h));
    gemm(LayerOp::Fc1, "fc1", 2);
    vec(LayerOp::Gelu, "gelu", geluOps(b * f));
    gemm(LayerOp::Fc2, "fc2", 3);
    vec(LayerOp::Residual2, "residual2", residualOps(b * h));
    return steps;
}

namespace {

std::vector<KernelTask>
specTasks(const std::vector<LayerStepSpec> &specs, bool includeVector)
{
    std::vector<KernelTask> tasks;
    for (const auto &step : specs) {
        if (!step.isGemm() && !includeVector)
            continue;
        tasks.push_back(step.task);
    }
    return tasks;
}

std::vector<KernelTask>
tileLayers(const std::vector<KernelTask> &layer, std::size_t layers)
{
    std::vector<KernelTask> all;
    all.reserve(layers * layer.size());
    for (std::size_t l = 0; l < layers; ++l)
        all.insert(all.end(), layer.begin(), layer.end());
    return all;
}

} // namespace

std::vector<KernelTask>
layerWorkload(const OptConfig &model, const WorkloadOptions &options)
{
    return specTasks(layerSpecs(model, options), options.includeVector);
}

std::vector<KernelTask>
decodeStepWorkload(const OptConfig &model, const WorkloadOptions &options)
{
    return tileLayers(layerWorkload(model, options), model.layers);
}

std::vector<KernelTask>
decodeStepWorkload(const OptConfig &model, const WorkloadOptions &options,
                   const std::vector<std::size_t> &contextLens)
{
    return tileLayers(specTasks(layerSpecs(model, options, contextLens),
                                options.includeVector),
                      model.layers);
}

} // namespace figlut
