#include "model/workload.h"

#include "common/logging.h"

namespace figlut {

std::vector<KernelTask>
layerWorkload(const OptConfig &model, const WorkloadOptions &options)
{
    const auto gemms = layerGemms(model, options.batch,
                                  options.weightBits);
    const std::size_t b = options.batch;
    const std::size_t h = model.hidden;
    const std::size_t f = model.ffn;
    const std::size_t ctx = options.contextLen;

    std::vector<KernelTask> tasks;
    auto vec = [&](const char *name, VpuOpCounts ops) {
        if (options.includeVector)
            tasks.push_back(KernelTask::makeVector(name, ops));
    };

    vec("ln1", layerNormOps(b, h));
    tasks.push_back(KernelTask::makeGemm("qkv", gemms[0]));
    // Decode-phase attention: per batch row, scores over the KV cache
    // (h dot products of length ctx are act-act work on the VPU here).
    {
        VpuOpCounts attn;
        attn.adds = static_cast<double>(b) * ctx * h;  // QK^T
        attn.muls = static_cast<double>(b) * ctx * h;
        attn.merge(softmaxOps(b * model.heads, ctx));
        attn.adds += static_cast<double>(b) * ctx * h; // AV
        attn.muls += static_cast<double>(b) * ctx * h;
        vec("attention", attn);
    }
    tasks.push_back(KernelTask::makeGemm("attn_out", gemms[1]));
    vec("residual1", residualOps(b * h));
    vec("ln2", layerNormOps(b, h));
    tasks.push_back(KernelTask::makeGemm("fc1", gemms[2]));
    vec("gelu", geluOps(b * f));
    tasks.push_back(KernelTask::makeGemm("fc2", gemms[3]));
    vec("residual2", residualOps(b * h));
    return tasks;
}

std::vector<KernelTask>
decodeStepWorkload(const OptConfig &model, const WorkloadOptions &options)
{
    std::vector<KernelTask> all;
    const auto layer = layerWorkload(model, options);
    all.reserve(model.layers * layer.size());
    for (std::size_t l = 0; l < model.layers; ++l)
        all.insert(all.end(), layer.begin(), layer.end());
    return all;
}

} // namespace figlut
