#include "model/workload.h"

#include "common/logging.h"

namespace figlut {

std::vector<LayerStepSpec>
layerSpecs(const OptConfig &model, const WorkloadOptions &options)
{
    const auto gemms = layerGemms(model, options.batch,
                                  options.weightBits, options.groupSize,
                                  options.hasOffset);
    const std::size_t b = options.batch;
    const std::size_t h = model.hidden;
    const std::size_t f = model.ffn;
    const std::size_t ctx = options.contextLen;

    std::vector<LayerStepSpec> steps;
    auto vec = [&](LayerOp op, const char *name, VpuOpCounts ops) {
        steps.push_back({op, KernelTask::makeVector(name, ops)});
    };
    auto gemm = [&](LayerOp op, const char *name, std::size_t idx) {
        steps.push_back({op, KernelTask::makeGemm(name, gemms[idx])});
    };

    vec(LayerOp::LayerNorm1, "ln1", layerNormOps(b, h));
    gemm(LayerOp::QkvProj, "qkv", 0);
    // Decode-phase attention: per batch row, scores over the KV cache
    // (h dot products of length ctx are act-act work on the VPU here).
    {
        VpuOpCounts attn;
        attn.adds = static_cast<double>(b) * ctx * h;  // QK^T
        attn.muls = static_cast<double>(b) * ctx * h;
        attn.merge(softmaxOps(b * model.heads, ctx));
        attn.adds += static_cast<double>(b) * ctx * h; // AV
        attn.muls += static_cast<double>(b) * ctx * h;
        vec(LayerOp::Attention, "attention", attn);
    }
    gemm(LayerOp::OutProj, "attn_out", 1);
    vec(LayerOp::Residual1, "residual1", residualOps(b * h));
    vec(LayerOp::LayerNorm2, "ln2", layerNormOps(b, h));
    gemm(LayerOp::Fc1, "fc1", 2);
    vec(LayerOp::Gelu, "gelu", geluOps(b * f));
    gemm(LayerOp::Fc2, "fc2", 3);
    vec(LayerOp::Residual2, "residual2", residualOps(b * h));
    return steps;
}

std::vector<KernelTask>
layerWorkload(const OptConfig &model, const WorkloadOptions &options)
{
    std::vector<KernelTask> tasks;
    for (const auto &step : layerSpecs(model, options)) {
        if (!step.isGemm() && !options.includeVector)
            continue;
        tasks.push_back(step.task);
    }
    return tasks;
}

std::vector<KernelTask>
decodeStepWorkload(const OptConfig &model, const WorkloadOptions &options)
{
    std::vector<KernelTask> all;
    const auto layer = layerWorkload(model, options);
    all.reserve(model.layers * layer.size());
    for (std::size_t l = 0; l < model.layers; ++l)
        all.insert(all.end(), layer.begin(), layer.end());
    return all;
}

} // namespace figlut
