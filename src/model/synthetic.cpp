#include "model/synthetic.h"

#include <cmath>

#include "common/logging.h"

namespace figlut {

MatrixD
gaussianMatrix(std::size_t rows, std::size_t cols, Rng &rng, double mean,
               double stddev)
{
    if (rows == 0 || cols == 0)
        fatal("cannot generate an empty matrix");
    MatrixD m(rows, cols);
    for (auto &v : m)
        v = rng.normal(mean, stddev);
    return m;
}

MatrixD
syntheticWeights(std::size_t rows, std::size_t cols, Rng &rng,
                 double base_std, double row_scale_spread)
{
    if (rows == 0 || cols == 0)
        fatal("cannot generate an empty weight matrix");
    MatrixD m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        // Log-normal per-row scale around base_std.
        const double row_std =
            base_std * std::exp(rng.normal(0.0, row_scale_spread));
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = rng.normal(0.0, row_std);
    }
    return m;
}

MatrixD
syntheticActivations(std::size_t rows, std::size_t cols, Rng &rng,
                     double outlier_rate, double outlier_scale)
{
    if (rows == 0 || cols == 0)
        fatal("cannot generate an empty activation matrix");
    MatrixD m(rows, cols);
    // Pick outlier channels (rows) once: LLM outliers are
    // channel-consistent (Dettmers et al.).
    std::vector<bool> outlier_row(rows, false);
    for (std::size_t r = 0; r < rows; ++r)
        outlier_row[r] = rng.uniform() < outlier_rate;

    for (std::size_t r = 0; r < rows; ++r) {
        const double scale = outlier_row[r] ? outlier_scale : 1.0;
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = rng.normal(0.0, scale);
    }
    return m;
}

} // namespace figlut
