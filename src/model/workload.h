/**
 * @file
 * Full decode-step workloads: GEMM kernels plus the VPU kernels
 * (layer norms, attention softmax, GELU, residuals) that a transformer
 * decoder layer executes around them.
 *
 * The layer is described once, as a sequence of LayerStepSpec — each
 * step carrying its semantic operation (what to compute) together with
 * its analytic KernelTask (shape/op-count view). Two backends consume
 * the same description: runtime/Session executes the steps numerically
 * with the functional kernels, and sim/Accelerator scores the mapped
 * KernelTask sequence for timing/energy (Table V, Fig. 15) — one
 * description, two backends, so the scored workload is exactly the
 * executed one.
 */

#ifndef FIGLUT_MODEL_WORKLOAD_H
#define FIGLUT_MODEL_WORKLOAD_H

#include <vector>

#include "model/opt_family.h"
#include "sim/accelerator.h"

namespace figlut {

/** Workload build options. */
struct WorkloadOptions
{
    std::size_t batch = 32;
    int weightBits = 4;
    /** KV-cache length used for attention VPU cost accounting. */
    std::size_t contextLen = 512;
    /** Include non-GEMM (VPU) kernels. */
    bool includeVector = true;
    /** Scale-group geometry of the quantized weights (0 = per-row). */
    std::size_t groupSize = 0;
    /** BCQ offset / uniform zero-point term present. */
    bool hasOffset = true;
    /**
     * Worker groups each GEMM is row-sharded across (stamped onto the
     * emitted GEMM tasks; 1 = unsharded). Shards > 1 makes the
     * Accelerator price one interconnect combine per GEMM.
     */
    int shards = 1;
};

/**
 * Semantic operation of one decoder-layer step, in execution order.
 * GEMM steps name the weight matrix they consume; vector steps name
 * the reference op the numeric backend runs.
 */
enum class LayerOp
{
    LayerNorm1, ///< pre-attention layer norm (vector)
    QkvProj,    ///< QKV projection GEMM, 3h x h
    Attention,  ///< KV-cache attention + softmax (vector)
    OutProj,    ///< attention output projection GEMM, h x h
    Residual1,  ///< attention residual add (vector)
    LayerNorm2, ///< pre-FFN layer norm (vector)
    Fc1,        ///< FFN up projection GEMM, f x h
    Gelu,       ///< GELU activation (vector)
    Fc2,        ///< FFN down projection GEMM, h x f
    Residual2,  ///< FFN residual add (vector)
};

/**
 * One step of a decoder layer: the semantic op plus its analytic
 * KernelTask. task.gemm carries the full quantized-GEMM description
 * (shape, weight bits, scale-group geometry, offset term) for GEMM
 * steps; task.vector carries the VPU op counts for vector steps.
 */
struct LayerStepSpec
{
    LayerOp op = LayerOp::LayerNorm1;
    KernelTask task;

    bool isGemm() const { return task.kind == KernelTask::Kind::Gemm; }
};

/**
 * The full step sequence of one decoder layer. Vector steps are always
 * present here (the numeric backend needs them to chain the GEMM
 * shapes); WorkloadOptions::includeVector only controls whether the
 * KernelTask mappings below keep them.
 */
std::vector<LayerStepSpec> layerSpecs(const OptConfig &model,
                                      const WorkloadOptions &options);

/**
 * Ragged-context layer description: one KV context length per batch
 * column (contextLens.size() must equal options.batch;
 * options.contextLen is ignored), so the attention cost is the sum of
 * per-column costs — the serve Engine's fused step over requests of
 * different ages. With uniform lengths this is element-for-element
 * equal to the lock-step overload above (every VPU op count is an
 * exact small-integer sum), which delegates here.
 */
std::vector<LayerStepSpec>
layerSpecs(const OptConfig &model, const WorkloadOptions &options,
           const std::vector<std::size_t> &contextLens);

/** Kernel sequence for one decoder layer. */
std::vector<KernelTask> layerWorkload(const OptConfig &model,
                                      const WorkloadOptions &options);

/** Kernel sequence for a whole decode step (all layers). */
std::vector<KernelTask> decodeStepWorkload(const OptConfig &model,
                                           const WorkloadOptions &options);

/** Ragged-context decode step (see the ragged layerSpecs overload). */
std::vector<KernelTask>
decodeStepWorkload(const OptConfig &model, const WorkloadOptions &options,
                   const std::vector<std::size_t> &contextLens);

} // namespace figlut

#endif // FIGLUT_MODEL_WORKLOAD_H
