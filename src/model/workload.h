/**
 * @file
 * Full decode-step workloads: GEMM kernels plus the VPU kernels
 * (layer norms, attention softmax, GELU, residuals) that a transformer
 * decoder layer executes around them. Used by the system-level benches
 * (Table V, Fig. 15) through sim/Accelerator.
 */

#ifndef FIGLUT_MODEL_WORKLOAD_H
#define FIGLUT_MODEL_WORKLOAD_H

#include <vector>

#include "model/opt_family.h"
#include "sim/accelerator.h"

namespace figlut {

/** Workload build options. */
struct WorkloadOptions
{
    std::size_t batch = 32;
    int weightBits = 4;
    /** KV-cache length used for attention VPU cost accounting. */
    std::size_t contextLen = 512;
    /** Include non-GEMM (VPU) kernels. */
    bool includeVector = true;
};

/** Kernel sequence for one decoder layer. */
std::vector<KernelTask> layerWorkload(const OptConfig &model,
                                      const WorkloadOptions &options);

/** Kernel sequence for a whole decode step (all layers). */
std::vector<KernelTask> decodeStepWorkload(const OptConfig &model,
                                           const WorkloadOptions &options);

} // namespace figlut

#endif // FIGLUT_MODEL_WORKLOAD_H
