/**
 * @file
 * Banked shared-memory LUT model (paper Section II-C, Fig. 2).
 *
 * GPU LUT-GEMM keeps its tables in banked shared memory: when several
 * threads' weight keys map to the same bank in one cycle, the accesses
 * serialize. This module reproduces that behaviour so the motivation
 * for the conflict-free FFLUT is measurable: random weight patterns
 * cause a predictable serialization factor, while the FFLUT's
 * per-reader mux trees always complete in one cycle.
 */

#ifndef FIGLUT_ARCH_BANK_CONFLICT_H
#define FIGLUT_ARCH_BANK_CONFLICT_H

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace figlut {

/** Banked memory geometry. */
struct BankedLutConfig
{
    int banks = 32;    ///< shared-memory banks (GPU warp width)
    int threads = 32;  ///< concurrent readers per cycle
    int mu = 4;        ///< key width; table has 2^mu words
};

/**
 * Cycles needed to service one batch of reads: the maximum number of
 * *distinct word* requests landing in any single bank (GPU semantics:
 * identical addresses broadcast for free; distinct addresses in one
 * bank serialize).
 */
uint32_t conflictCycles(const std::vector<uint32_t> &keys, int banks);

/** Aggregate statistics over many read batches. */
struct BankConflictStats
{
    uint64_t batches = 0;      ///< read cycles issued
    uint64_t totalCycles = 0;  ///< cycles actually consumed
    uint32_t worstBatch = 0;   ///< worst single-batch serialization

    /** Mean serialization factor (1.0 = conflict-free). */
    double slowdown() const;
};

/**
 * Simulate the LUT *query* phase: every batch, each thread reads its
 * own chunk's table (tables are laid out contiguously in shared
 * memory, LUT-GEMM style) at an independently random mu-bit weight key
 * (the paper's "randomness of the weight pattern"). Distinct tables
 * alias onto the same banks, producing the read-phase conflicts.
 */
BankConflictStats simulateRandomReads(Rng &rng,
                                      const BankedLutConfig &config,
                                      std::size_t batches);

/**
 * Simulate the LUT *construction* phase: threads write consecutive
 * table entries, which LUT-GEMM lays out to hit distinct banks — this
 * phase is conflict-free by design and the simulation confirms it.
 */
BankConflictStats simulateConstructionWrites(
    const BankedLutConfig &config, std::size_t batches);

/**
 * Expected slowdown of random reads from the balls-into-bins model
 * (E[max load] for t keys over b banks, distinct-word collisions),
 * evaluated by Monte Carlo with the library RNG; used to sanity-check
 * the simulator.
 */
double expectedRandomSlowdown(Rng &rng, const BankedLutConfig &config,
                              std::size_t trials);

} // namespace figlut

#endif // FIGLUT_ARCH_BANK_CONFLICT_H
