#include "arch/area_model.h"

#include <algorithm>

#include "arch/memory_model.h"
#include "common/logging.h"
#include "core/lut_generator.h"

namespace figlut {

ArrayGeometry
engineArray(EngineKind engine)
{
    switch (engine) {
      case EngineKind::FPE:
      case EngineKind::FIGNA:
        return {64, 64, 1};
      case EngineKind::IFPU:
        return {64, 64, 4};
      case EngineKind::FIGLUT_F:
      case EngineKind::FIGLUT_I:
        return {2, 16, 4};
    }
    panic("unknown engine kind");
}

int
alignedWidth(ActFormat fmt)
{
    // Mantissa (hidden bit included) plus guard bits covering the
    // alignment range; iFPU-style near-lossless datapath.
    return significandBits(fmt) + 13;
}

int
skewStages(EngineKind engine)
{
    switch (engine) {
      case EngineKind::FPE:
      case EngineKind::FIGNA:
      case EngineKind::IFPU:
        return 63; // 64-wide systolic diagonal
      case EngineKind::FIGLUT_F:
      case EngineKind::FIGLUT_I:
        return 15; // 16-wide column dimension (paper Section IV-B)
    }
    panic("unknown engine kind");
}

namespace {

/** Triangular skew-buffer flip-flop count times width. */
double
skewFfBits(int stages, int lanes, int bits_per_lane)
{
    // Lane i needs i delay registers: sum_{i=0}^{stages} i, spread over
    // the array's input lanes (capped by lanes).
    const int n = std::min(stages, lanes);
    const double tri = 0.5 * static_cast<double>(n) * (n + 1);
    return tri * bits_per_lane;
}

} // namespace

MpuAreaBreakdown
mpuArea(const MpuConfig &config, const TechParams &tech)
{
    const auto geo = engineArray(config.engine);
    const int mant = significandBits(config.actFormat);
    const int store = storageBits(config.actFormat);
    const int aligned = alignedWidth(config.actFormat);
    const int wbits = config.weightBits;

    MpuAreaBreakdown area;
    double arith_per_pe = 0.0; // um^2
    double ff_per_pe = 0.0;    // um^2

    switch (config.engine) {
      case EngineKind::FPE: {
        // Dequantizer + FP multiplier (input precision) + FP32 adder.
        arith_per_pe = tech.dequantGePerBit * wbits * tech.geUm2 +
                       tech.fpMulArea(mant) + tech.fpAddArea(24);
        // Weight, input, psum and control registers.
        ff_per_pe = tech.ffArea(wbits + store + 32 + 2);
        break;
      }
      case EngineKind::FIGNA: {
        // Aligned-mantissa x weight multiplier + wide integer adder.
        const int acc = aligned + wbits + 8;
        arith_per_pe = tech.intMulArea(aligned, wbits) +
                       tech.intAddArea(acc);
        ff_per_pe = tech.ffArea(wbits + aligned + acc + 2);
        break;
      }
      case EngineKind::IFPU: {
        // Binary PE: add/sub of the aligned mantissa into the psum.
        const int acc = aligned + 8;
        arith_per_pe = tech.intAddArea(acc);
        ff_per_pe = tech.ffArea(1 + aligned + acc + 1);
        break;
      }
      case EngineKind::FIGLUT_F:
      case EngineKind::FIGLUT_I: {
        const bool integer = config.engine == EngineKind::FIGLUT_I;
        // LUT value width: FP32 words (F) or aligned sums (I).
        const int w = integer ? aligned + config.mu / 2 : 32;
        const int half_entries = 1 << (config.mu - 1);
        const int acc = integer ? w + 8 : 32;

        // hFFLUT storage counts as flip-flop area.
        ff_per_pe += tech.ffArea(half_entries * w);
        // Read muxes + decoders per RAC are arithmetic/logic area.
        arith_per_pe += config.k *
                        ((half_entries - 1) * w * tech.muxGePerLeafBit +
                         w * tech.decoderGePerBit) *
                        tech.geUm2;
        // RAC accumulators.
        arith_per_pe += config.k * (integer
                                        ? tech.intAddArea(acc)
                                        : tech.fpAddArea(24));
        // Key registers + psum registers per RAC.
        ff_per_pe += config.k * tech.ffArea(config.mu + acc);
        break;
      }
    }

    area.arithmeticUm2 = arith_per_pe * static_cast<double>(geo.pes());
    area.flipFlopUm2 = ff_per_pe * static_cast<double>(geo.pes());

    // Array-edge units.
    if (config.engine == EngineKind::FIGNA ||
        config.engine == EngineKind::IFPU ||
        config.engine == EngineKind::FIGLUT_I) {
        // Pre-alignment units, one per input lane, plus INT->FP
        // recovery per output lane.
        const int lanes = geo.cols * geo.planes;
        const int out_lanes = geo.rows *
                              (config.engine == EngineKind::FIGLUT_I
                                   ? config.k : 1);
        area.arithmeticUm2 +=
            lanes * tech.prealignGePerBit * aligned * tech.geUm2;
        area.arithmeticUm2 +=
            out_lanes * tech.i2fGePerBit * (aligned + 16) * tech.geUm2;
    }
    if (config.engine == EngineKind::FIGLUT_F ||
        config.engine == EngineKind::FIGLUT_I) {
        // LUT generators: one per (column, plane), each a 14-adder tree
        // for mu=4 (tree size from the generator accounting).
        const bool integer = config.engine == EngineKind::FIGLUT_I;
        const auto stats = lutGeneratorAdderCount(config.mu);
        const double adder = integer
                                 ? tech.intAddArea(
                                       alignedWidth(config.actFormat) +
                                       config.mu / 2)
                                 : tech.fpAddArea(24);
        area.arithmeticUm2 += static_cast<double>(geo.cols) *
                              geo.planes *
                              static_cast<double>(stats.treeAdds) * adder;
    }

    // Input skew buffers (triangular delay registers).
    const int lane_bits =
        config.engine == EngineKind::FPE ? store : alignedWidth(
            config.actFormat);
    area.flipFlopUm2 += tech.ffArea(1) * skewFfBits(
        skewStages(config.engine), engineArray(config.engine).cols *
                                       engineArray(config.engine).planes,
        lane_bits);

    return area;
}

double
bufferCapacityBits()
{
    // 1 MiB unified on-chip buffering (input + weight + psum + output),
    // identical across engines (Section III-F system assumption).
    return 8.0 * 1024.0 * 1024.0;
}

double
engineTotalAreaMm2(const MpuConfig &config, const TechParams &tech)
{
    const auto mpu = mpuArea(config, tech);
    const SramModel sram(tech);
    return mpu.totalMm2() + sram.areaUm2(bufferCapacityBits()) * 1e-6;
}

} // namespace figlut
