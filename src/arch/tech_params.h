/**
 * @file
 * 28 nm technology model: per-component energy and area constants.
 *
 * The paper evaluates synthesized netlists (Synopsys DC + ICC2 P&R,
 * 28 nm, 100 MHz) which we cannot run offline. This model substitutes
 * an analytic component library whose constants are:
 *
 *  - anchored to published energy-per-operation data (Horowitz,
 *    "Computing's energy problem", ISSCC 2014; 45 nm values scaled to
 *    28 nm by ~0.55x), and
 *  - calibrated so the paper's *relative* results reproduce: FP/INT
 *    energy ratios, FFLUT-vs-FP-adder shapes across mu (Fig. 6),
 *    LUT-sharing behaviour with the k* = 32 optimum (Figs. 8/9), and
 *    the engine-level TOPS/W ordering (Table V, Fig. 16).
 *
 * Energies are in femtojoules (fJ) per operation at nominal voltage;
 * areas are in NAND2 gate equivalents (GE) converted to um^2. The
 * calibration targets are unit-tested in tests/arch/.
 */

#ifndef FIGLUT_ARCH_TECH_PARAMS_H
#define FIGLUT_ARCH_TECH_PARAMS_H

namespace figlut {

/** Technology constants for the 28 nm design point. */
struct TechParams
{
    // ---- Clocking ----
    double freqMhz = 100.0; ///< paper synthesis frequency

    // ---- Integer arithmetic (dynamic energy, fJ) ----
    /** Ripple/CLA adder energy per result bit. */
    double intAddPerBitFj = 1.1;
    /** Array multiplier energy per partial-product bit pair. */
    double intMulPerBitPairFj = 1.8;

    // ---- Floating-point arithmetic (fJ) ----
    /**
     * FP adder energy as affine in significand bits s (hidden bit
     * included): fpAdd = fpAddBaseFj + fpAddPerSigBitFj * s.
     * Anchors: FP16 (s=11) ~ 240 fJ, FP32 (s=24) ~ 540 fJ at 28 nm.
     */
    double fpAddBaseFj = -14.0;
    double fpAddPerSigBitFj = 23.0;
    /**
     * FP multiplier energy: mantissa array + exponent/normalize:
     * fpMul = fpMulBaseFj + fpMulPerSigSqFj * s^2.
     * Anchors: FP16 ~ 660 fJ, FP32 ~ 2200 fJ at 28 nm.
     */
    double fpMulBaseFj = 250.0;
    double fpMulPerSigSqFj = 3.4;

    // ---- Storage cells (fJ) ----
    /** Flip-flop hold energy per bit per cycle (clock + leak share). */
    double ffHoldPerBitFj = 2.5;
    /** Flip-flop write (data toggle) energy per bit. */
    double ffWritePerBitFj = 1.0;
    /** Mux-tree read energy per (leaf, bit). */
    double muxPerLeafBitFj = 0.008;
    /** hFFLUT decoder energy per output bit (complement + sign flip). */
    double decoderPerBitFj = 0.12;

    // ---- Register-file LUT (compiled macro model, fJ) ----
    /** Fixed peripheral cost per read (decoders, precharge, sensing). */
    double rfReadFixedFj = 4360.0;
    /** Bitline cost per (bit, sqrt(entries)). */
    double rfReadPerBitSqrtEntriesFj = 3.93;

    // ---- Fan-out model ----
    /**
     * Driving k readers multiplies LUT read/hold power by
     * 1 + a*(k-1) + b*(k-1)^2. With b = (1-a)/1023 the per-RAC power
     * minimum falls exactly at k = 32 (paper Fig. 9).
     */
    double fanoutLinear = 0.01;
    double fanoutQuadratic = (1.0 - 0.01) / 1023.0;

    // ---- Conversion units (fJ) ----
    /** INT->FP weight dequantizer, per weight bit (FPE). */
    double dequantPerBitFj = 30.0;
    /** Pre-alignment barrel shift + exponent compare, per datapath bit. */
    double prealignPerBitFj = 1.3;
    /** INT->FP output recovery, per datapath bit. */
    double i2fPerBitFj = 1.5;

    // ---- Memories ----
    double sramReadPerBitFj = 35.0;   ///< on-chip SRAM read, per bit
    double sramWritePerBitFj = 40.0;  ///< on-chip SRAM write, per bit
    double dramPerBitFj = 650.0;      ///< off-chip DRAM access, per bit
    double dramBytesPerCycle = 128.0; ///< DRAM bandwidth at core clock

    // ---- Area (NAND2 gate equivalents; 1 GE = 0.49 um^2 at 28 nm) ----
    double geUm2 = 0.49;
    double intAddGePerBit = 12.0;
    double intMulGePerBitPair = 7.0;
    double fpAddGeBase = 350.0;
    double fpAddGePerSigBit = 240.0;
    double fpMulGeBase = 500.0;
    double fpMulGePerSigSq = 9.0;
    double ffGePerBit = 6.0;
    double muxGePerLeafBit = 0.45;
    double decoderGePerBit = 3.0;
    /** INT->FP dequantizer (FPE) in GE, per weight bit of input. */
    double dequantGePerBit = 160.0;
    /** Pre-alignment unit (max-exponent + shifter) GE per datapath bit. */
    double prealignGePerBit = 40.0;
    /** Integer-to-FP output converter GE per datapath bit. */
    double i2fGePerBit = 30.0;

    // ---- Derived helpers (energies in fJ) ----
    double intAddEnergy(int bits) const;
    double intMulEnergy(int bits_a, int bits_b) const;
    double fpAddEnergy(int sig_bits) const;
    double fpMulEnergy(int sig_bits) const;
    double fanoutMultiplier(int k) const;
    double dequantEnergyFj(int weight_bits, int sig_bits) const;
    double prealignEnergyFj(int width) const;
    double i2fEnergyFj(int width) const;

    // ---- Derived helpers (areas in um^2) ----
    double intAddArea(int bits) const;
    double intMulArea(int bits_a, int bits_b) const;
    double fpAddArea(int sig_bits) const;
    double fpMulArea(int sig_bits) const;
    double ffArea(int bits) const;

    /** The default calibrated 28 nm design point. */
    static const TechParams &default28nm();
};

} // namespace figlut

#endif // FIGLUT_ARCH_TECH_PARAMS_H
