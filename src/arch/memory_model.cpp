#include "arch/memory_model.h"

#include "common/logging.h"

namespace figlut {

double
SramModel::readEnergyFj(double bits) const
{
    FIGLUT_ASSERT(bits >= 0.0, "negative SRAM read size");
    return tech_.sramReadPerBitFj * bits;
}

double
SramModel::writeEnergyFj(double bits) const
{
    FIGLUT_ASSERT(bits >= 0.0, "negative SRAM write size");
    return tech_.sramWritePerBitFj * bits;
}

double
SramModel::areaUm2(double capacity_bits) const
{
    FIGLUT_ASSERT(capacity_bits >= 0.0, "negative SRAM capacity");
    return 0.45 * capacity_bits;
}

double
DramModel::accessEnergyFj(double bits) const
{
    FIGLUT_ASSERT(bits >= 0.0, "negative DRAM access size");
    return tech_.dramPerBitFj * bits;
}

double
DramModel::transferCycles(double bytes) const
{
    FIGLUT_ASSERT(bytes >= 0.0, "negative DRAM transfer size");
    return bytes / tech_.dramBytesPerCycle;
}

} // namespace figlut
