#include "arch/tech_params.h"

#include <cmath>

#include "common/logging.h"

namespace figlut {

double
TechParams::intAddEnergy(int bits) const
{
    FIGLUT_ASSERT(bits > 0, "adder width must be positive");
    return intAddPerBitFj * bits;
}

double
TechParams::intMulEnergy(int bits_a, int bits_b) const
{
    FIGLUT_ASSERT(bits_a > 0 && bits_b > 0,
                  "multiplier widths must be positive");
    return intMulPerBitPairFj * bits_a * bits_b;
}

double
TechParams::fpAddEnergy(int sig_bits) const
{
    FIGLUT_ASSERT(sig_bits > 0, "significand width must be positive");
    return fpAddBaseFj + fpAddPerSigBitFj * sig_bits;
}

double
TechParams::fpMulEnergy(int sig_bits) const
{
    FIGLUT_ASSERT(sig_bits > 0, "significand width must be positive");
    return fpMulBaseFj + fpMulPerSigSqFj * sig_bits * sig_bits;
}

double
TechParams::fanoutMultiplier(int k) const
{
    FIGLUT_ASSERT(k >= 1, "fan-out requires at least one reader");
    const double km1 = static_cast<double>(k - 1);
    return 1.0 + fanoutLinear * km1 + fanoutQuadratic * km1 * km1;
}

double
TechParams::dequantEnergyFj(int weight_bits, int sig_bits) const
{
    // Code-to-mantissa placement plus exponent fix-up.
    return dequantPerBitFj * weight_bits + 0.5 * intAddPerBitFj *
                                               sig_bits;
}

double
TechParams::prealignEnergyFj(int width) const
{
    return prealignPerBitFj * width;
}

double
TechParams::i2fEnergyFj(int width) const
{
    return i2fPerBitFj * width;
}

double
TechParams::intAddArea(int bits) const
{
    return intAddGePerBit * bits * geUm2;
}

double
TechParams::intMulArea(int bits_a, int bits_b) const
{
    return intMulGePerBitPair * bits_a * bits_b * geUm2;
}

double
TechParams::fpAddArea(int sig_bits) const
{
    return (fpAddGeBase + fpAddGePerSigBit * sig_bits) * geUm2;
}

double
TechParams::fpMulArea(int sig_bits) const
{
    return (fpMulGeBase + fpMulGePerSigSq * sig_bits * sig_bits) * geUm2;
}

double
TechParams::ffArea(int bits) const
{
    return ffGePerBit * bits * geUm2;
}

const TechParams &
TechParams::default28nm()
{
    static const TechParams params{};
    return params;
}

} // namespace figlut
