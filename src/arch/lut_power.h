/**
 * @file
 * Power models for the three LUT implementations (paper Section III-C
 * and III-D): register-file LUT (RFLUT), flip-flop LUT (FFLUT), and
 * half-size flip-flop LUT (hFFLUT), plus the PE-level sharing analysis
 * across the LUT fan-out k.
 *
 * All quantities are energies per cycle (equivalently, power at the
 * fixed clock) in fJ. "Per work unit" quantities are normalized to one
 * binary-weight MAC equivalent, i.e. the work one FP adder performs per
 * cycle in the baseline — this is the paper's "equivalent throughput"
 * normalization in Figs. 6 and 8.
 */

#ifndef FIGLUT_ARCH_LUT_POWER_H
#define FIGLUT_ARCH_LUT_POWER_H

#include "arch/tech_params.h"

namespace figlut {

/** Which LUT hardware implementation. */
enum class LutImpl
{
    RFLUT,  ///< compiled register-file macro
    FFLUT,  ///< flip-flop array + per-reader mux tree
    HFFLUT, ///< half-size flip-flop array + sign decoder
};

/** Datapath configuration of one LUT instance. */
struct LutConfig
{
    int mu = 4;         ///< table key width (2^mu entries)
    int valueBits = 32; ///< stored entry width
    int fanout = 1;     ///< k: RACs sharing this LUT
};

/** Per-cycle energy breakdown of one LUT instance serving k readers. */
struct LutPowerBreakdown
{
    double holdFj = 0.0;    ///< FF array hold/clock (0 for RFLUT)
    double readFj = 0.0;    ///< k mux-tree reads (or k RF reads)
    double decoderFj = 0.0; ///< hFFLUT sign decoders (k instances)

    double total() const { return holdFj + readFj + decoderFj; }
};

/** Energy breakdown of one LUT instance per cycle. */
LutPowerBreakdown lutPower(LutImpl impl, const LutConfig &config,
                           const TechParams &tech);

/**
 * RAC accumulate energy (the add that folds a LUT read into the
 * partial sum): FP add for FIGLUT-F, integer add for FIGLUT-I.
 */
double racAccumulateEnergy(bool integer_path, int datapath_bits,
                           const TechParams &tech);

/** PE-level power analysis (one LUT shared by k RACs). */
struct PePower
{
    double lutFj = 0.0;     ///< LUT (hold + reads + decode), fan-out incl.
    double racsFj = 0.0;    ///< k RAC accumulators
    double totalFj = 0.0;   ///< P_PE
    double perRacFj = 0.0;  ///< P_RAC = P_PE / k
};

/**
 * Power of one PE with the given LUT implementation and k RACs.
 * Fan-out inflates the FF-array drive power via
 * TechParams::fanoutMultiplier.
 */
PePower pePower(LutImpl impl, const LutConfig &config, bool integer_path,
                int rac_bits, const TechParams &tech);

/**
 * Fig. 6 quantity: LUT-based read power per work unit relative to one
 * FP adder doing the same work. Includes the RAC accumulate and the
 * LUT share; excludes generation (amortized, reported separately).
 *
 * @param fp_sig_bits  significand width of the baseline FP adder
 */
double relativeReadPower(LutImpl impl, const LutConfig &config,
                         int fp_sig_bits, const TechParams &tech);

} // namespace figlut

#endif // FIGLUT_ARCH_LUT_POWER_H
