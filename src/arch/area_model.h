/**
 * @file
 * MPU area model for the five hardware engines (paper Figs. 13/14).
 *
 * Every engine is normalized to the same peak Q4 throughput
 * (Section IV-B): FPE/FIGNA use 64x64 PE arrays, iFPU a 64x64x4
 * binary-PE array, and FIGLUT a 2x16x4 array of PEs with one shared
 * hFFLUT and k=32 RACs each (2*16*4*32 RACs * mu=4 = 16384 binary
 * lanes = iFPU's). The model composes each PE from the TechParams
 * component library and splits the result into the paper's two Fig. 14
 * categories: arithmetic logic vs flip-flops.
 */

#ifndef FIGLUT_ARCH_AREA_MODEL_H
#define FIGLUT_ARCH_AREA_MODEL_H

#include "arch/tech_params.h"
#include "core/engine_numerics.h"
#include "numerics/fp_format.h"

namespace figlut {

/** PE-array geometry (rows x cols x planes). */
struct ArrayGeometry
{
    int rows = 0;
    int cols = 0;
    int planes = 1;

    long pes() const { return static_cast<long>(rows) * cols * planes; }
};

/** Hardware configuration that determines MPU area. */
struct MpuConfig
{
    EngineKind engine = EngineKind::FPE;
    ActFormat actFormat = ActFormat::FP16;
    /**
     * Weight datapath width. For the fixed-precision engines
     * (FPE/FIGNA) this is the physical width (4 or 8); bit-serial
     * engines (iFPU/FIGLUT) always process 1-bit planes and ignore it
     * for area purposes.
     */
    int weightBits = 4;
    int mu = 4; ///< FIGLUT LUT group size
    int k = 32; ///< FIGLUT RACs per LUT
};

/** Area split used by Fig. 14. */
struct MpuAreaBreakdown
{
    double arithmeticUm2 = 0.0; ///< adders/multipliers/dequant/mux/...
    double flipFlopUm2 = 0.0;   ///< pipeline, psum, LUT and skew FFs

    double totalUm2() const { return arithmeticUm2 + flipFlopUm2; }
    double totalMm2() const { return totalUm2() * 1e-6; }
};

/** Array geometry each engine uses at the common Q4 throughput. */
ArrayGeometry engineArray(EngineKind engine);

/** Pre-aligned integer datapath width for a format (mantissa+guard). */
int alignedWidth(ActFormat fmt);

/** Number of input-skew pipeline stages the engine needs (Fig. 14). */
int skewStages(EngineKind engine);

/** MPU area breakdown for a configuration. */
MpuAreaBreakdown mpuArea(const MpuConfig &config, const TechParams &tech);

/** Total on-chip buffer capacity (bits) assumed for every engine. */
double bufferCapacityBits();

/** MPU + buffer area in mm^2 (used for TOPS/mm^2, Fig. 13). */
double engineTotalAreaMm2(const MpuConfig &config, const TechParams &tech);

} // namespace figlut

#endif // FIGLUT_ARCH_AREA_MODEL_H
