#include "arch/energy_model.h"

#include "common/logging.h"

namespace figlut {

double
EnergyBreakdown::totalFj() const
{
    return mpuArithFj + lutFj + generatorFj + registersFj + vpuFj +
           sramFj + dramFj;
}

double
EnergyBreakdown::computeFj() const
{
    return mpuArithFj + lutFj + generatorFj + registersFj + vpuFj;
}

void
EnergyBreakdown::merge(const EnergyBreakdown &other)
{
    mpuArithFj += other.mpuArithFj;
    lutFj += other.lutFj;
    generatorFj += other.generatorFj;
    registersFj += other.registersFj;
    vpuFj += other.vpuFj;
    sramFj += other.sramFj;
    dramFj += other.dramFj;
}

const std::vector<std::string> &
EnergyBreakdown::categoryNames()
{
    static const std::vector<std::string> names = {
        "mpu_arith", "lut", "generator", "registers",
        "vpu", "sram", "dram"};
    return names;
}

std::vector<double>
EnergyBreakdown::toVector() const
{
    return {mpuArithFj, lutFj, generatorFj, registersFj,
            vpuFj, sramFj, dramFj};
}

double
averagePowerW(const EnergyBreakdown &energy, double cycles,
              double freq_mhz)
{
    FIGLUT_ASSERT(cycles > 0.0, "power needs a positive cycle count");
    const double seconds = cycles / (freq_mhz * 1e6);
    return energy.totalJoules() / seconds;
}

} // namespace figlut
