#include "arch/bank_conflict.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace figlut {

uint32_t
conflictCycles(const std::vector<uint32_t> &keys, int banks)
{
    if (banks < 1)
        fatal("banked memory needs at least one bank, got ", banks);
    if (keys.empty())
        return 0;

    // Distinct words per bank; identical words broadcast.
    std::vector<std::set<uint32_t>> words(
        static_cast<std::size_t>(banks));
    for (const auto key : keys)
        words[key % static_cast<uint32_t>(banks)].insert(key);

    uint32_t worst = 1;
    for (const auto &w : words)
        worst = std::max(worst, static_cast<uint32_t>(w.size()));
    return worst;
}

double
BankConflictStats::slowdown() const
{
    return batches ? static_cast<double>(totalCycles) /
                         static_cast<double>(batches)
                   : 0.0;
}

BankConflictStats
simulateRandomReads(Rng &rng, const BankedLutConfig &config,
                    std::size_t batches)
{
    if (config.threads < 1 || config.mu < 1 || config.mu > 16)
        fatal("invalid banked-LUT config: threads=", config.threads,
              " mu=", config.mu);

    BankConflictStats stats;
    const uint32_t table = 1u << config.mu;
    std::vector<uint32_t> addrs(
        static_cast<std::size_t>(config.threads));
    for (std::size_t b = 0; b < batches; ++b) {
        // LUT-GEMM keeps one table per mu-chunk in shared memory, laid
        // out contiguously; thread t reads its own chunk's table at a
        // key given by its (random) weight pattern. Different tables
        // alias onto the same banks, which is where the read-phase
        // conflicts come from.
        for (std::size_t t = 0; t < addrs.size(); ++t) {
            const auto key = static_cast<uint32_t>(rng.next() % table);
            addrs[t] = static_cast<uint32_t>(t) * table + key;
        }
        const auto cycles = conflictCycles(addrs, config.banks);
        ++stats.batches;
        stats.totalCycles += cycles;
        stats.worstBatch = std::max(stats.worstBatch, cycles);
    }
    return stats;
}

BankConflictStats
simulateConstructionWrites(const BankedLutConfig &config,
                           std::size_t batches)
{
    if (config.threads < 1)
        fatal("invalid banked-LUT config: threads=", config.threads);

    BankConflictStats stats;
    std::vector<uint32_t> keys(static_cast<std::size_t>(config.threads));
    for (std::size_t b = 0; b < batches; ++b) {
        // Thread t writes entry base + t: consecutive words, one per
        // bank (modulo wrap), conflict-free when threads <= banks.
        const auto base = static_cast<uint32_t>(b * config.threads);
        for (std::size_t t = 0; t < keys.size(); ++t)
            keys[t] = base + static_cast<uint32_t>(t);
        const auto cycles = conflictCycles(keys, config.banks);
        ++stats.batches;
        stats.totalCycles += cycles;
        stats.worstBatch = std::max(stats.worstBatch, cycles);
    }
    return stats;
}

double
expectedRandomSlowdown(Rng &rng, const BankedLutConfig &config,
                       std::size_t trials)
{
    const auto stats = simulateRandomReads(rng, config, trials);
    return stats.slowdown();
}

} // namespace figlut
