/**
 * @file
 * On-chip SRAM and off-chip DRAM models.
 *
 * The paper composes its buffers from 28 nm SRAM macros and takes DRAM
 * energy/latency from CACTI. We model both at transaction granularity:
 * energy per bit moved plus a bandwidth constraint used by the timing
 * model's double-buffered overlap (compute vs transfer).
 */

#ifndef FIGLUT_ARCH_MEMORY_MODEL_H
#define FIGLUT_ARCH_MEMORY_MODEL_H

#include <cstdint>

#include "arch/tech_params.h"

namespace figlut {

/** Traffic tally in bits, kept per run. */
struct MemTraffic
{
    double sramReadBits = 0.0;
    double sramWriteBits = 0.0;
    double dramBits = 0.0;

    void
    merge(const MemTraffic &other)
    {
        sramReadBits += other.sramReadBits;
        sramWriteBits += other.sramWriteBits;
        dramBits += other.dramBits;
    }
};

/** On-chip SRAM model (input/weight/psum/unified buffers). */
class SramModel
{
  public:
    explicit SramModel(const TechParams &tech) : tech_(tech) {}

    double readEnergyFj(double bits) const;
    double writeEnergyFj(double bits) const;

    /** Area of a buffer of the given capacity (um^2), ~0.45 um^2/bit
     *  macro density at 28 nm including periphery. */
    double areaUm2(double capacity_bits) const;

  private:
    const TechParams &tech_;
};

/** Off-chip DRAM model (CACTI-style energy + simple bandwidth). */
class DramModel
{
  public:
    explicit DramModel(const TechParams &tech) : tech_(tech) {}

    double accessEnergyFj(double bits) const;

    /** Core-clock cycles to transfer the given bytes at full BW. */
    double transferCycles(double bytes) const;

    double bytesPerCycle() const { return tech_.dramBytesPerCycle; }

  private:
    const TechParams &tech_;
};

} // namespace figlut

#endif // FIGLUT_ARCH_MEMORY_MODEL_H
