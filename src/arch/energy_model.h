/**
 * @file
 * Energy bookkeeping: the per-category breakdown every simulation run
 * produces (paper Fig. 15) and unit conversions to Joules/Watts.
 *
 * Category filling is done by the engine simulator (sim/engine_sim),
 * which knows each engine's op mix; this header defines the common
 * currency.
 */

#ifndef FIGLUT_ARCH_ENERGY_MODEL_H
#define FIGLUT_ARCH_ENERGY_MODEL_H

#include <string>
#include <vector>

namespace figlut {

/** Energy per category in femtojoules. */
struct EnergyBreakdown
{
    double mpuArithFj = 0.0;  ///< multipliers/adders/dequant/prealign
    double lutFj = 0.0;       ///< FFLUT hold + mux reads + decoders
    double generatorFj = 0.0; ///< LUT generator adds + table writes
    double registersFj = 0.0; ///< pipeline/psum/weight/key flip-flops
    double vpuFj = 0.0;       ///< vector unit (offsets, scaling, misc)
    double sramFj = 0.0;      ///< on-chip buffer traffic
    double dramFj = 0.0;      ///< off-chip traffic

    double totalFj() const;
    double totalJoules() const { return totalFj() * 1e-15; }

    /** Compute-side share (everything but SRAM+DRAM). */
    double computeFj() const;

    void merge(const EnergyBreakdown &other);

    /** Category labels, aligned with toVector(). */
    static const std::vector<std::string> &categoryNames();

    /** Values in category order (fJ). */
    std::vector<double> toVector() const;
};

/** Average power in watts for energy spent over cycles at freq_mhz. */
double averagePowerW(const EnergyBreakdown &energy, double cycles,
                     double freq_mhz);

} // namespace figlut

#endif // FIGLUT_ARCH_ENERGY_MODEL_H
