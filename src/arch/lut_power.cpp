#include "arch/lut_power.h"

#include <cmath>

#include "common/logging.h"

namespace figlut {

namespace {

double
ffArrayHold(int entries, int value_bits, const TechParams &tech)
{
    return tech.ffHoldPerBitFj * entries * value_bits;
}

double
muxReadEnergy(int entries, int value_bits, const TechParams &tech)
{
    // A value_bits-wide tree of (entries - 1) 2:1 muxes.
    return tech.muxPerLeafBitFj * (entries - 1) * value_bits;
}

} // namespace

LutPowerBreakdown
lutPower(LutImpl impl, const LutConfig &config, const TechParams &tech)
{
    FIGLUT_ASSERT(config.mu >= 2 && config.mu <= 10,
                  "LUT power model needs mu in [2, 10], got ", config.mu);
    FIGLUT_ASSERT(config.fanout >= 1, "fanout must be >= 1");
    FIGLUT_ASSERT(config.valueBits > 0, "value width must be positive");

    const int full_entries = 1 << config.mu;
    const int k = config.fanout;
    LutPowerBreakdown power;

    switch (impl) {
      case LutImpl::RFLUT: {
        // Compiled macro: no held FF array, but each of the k readers
        // pays a full read (limited ports make sharing serial anyway;
        // we charge the energy as-if ported for a fair comparison).
        const double per_read =
            tech.rfReadFixedFj +
            tech.rfReadPerBitSqrtEntriesFj * config.valueBits *
                std::sqrt(static_cast<double>(full_entries));
        power.readFj = per_read * k;
        break;
      }
      case LutImpl::FFLUT: {
        power.holdFj = ffArrayHold(full_entries, config.valueBits, tech) *
                       tech.fanoutMultiplier(k);
        power.readFj =
            muxReadEnergy(full_entries, config.valueBits, tech) * k;
        break;
      }
      case LutImpl::HFFLUT: {
        const int half_entries = full_entries / 2;
        power.holdFj = ffArrayHold(half_entries, config.valueBits, tech) *
                       tech.fanoutMultiplier(k);
        power.readFj =
            muxReadEnergy(half_entries, config.valueBits, tech) * k;
        // Complement-select + conditional sign flip per reader.
        power.decoderFj = tech.decoderPerBitFj * config.valueBits * k;
        break;
      }
    }
    return power;
}

double
racAccumulateEnergy(bool integer_path, int datapath_bits,
                    const TechParams &tech)
{
    return integer_path ? tech.intAddEnergy(datapath_bits)
                        : tech.fpAddEnergy(datapath_bits);
}

PePower
pePower(LutImpl impl, const LutConfig &config, bool integer_path,
        int rac_bits, const TechParams &tech)
{
    const auto lut = lutPower(impl, config, tech);
    PePower pe;
    pe.lutFj = lut.total();
    pe.racsFj = racAccumulateEnergy(integer_path, rac_bits, tech) *
                config.fanout;
    pe.totalFj = pe.lutFj + pe.racsFj;
    pe.perRacFj = pe.totalFj / config.fanout;
    return pe;
}

double
relativeReadPower(LutImpl impl, const LutConfig &config, int fp_sig_bits,
                  const TechParams &tech)
{
    // One LUT read retires mu binary MACs per RAC; the baseline FP
    // adder retires one per cycle. Work units per cycle for this PE:
    const double work_units =
        static_cast<double>(config.mu) * config.fanout;
    const auto pe = pePower(impl, config, /*integer_path=*/false,
                            /*rac_bits=*/fp_sig_bits, tech);
    const double baseline = tech.fpAddEnergy(fp_sig_bits);
    return pe.totalFj / (work_units * baseline);
}

} // namespace figlut
