/**
 * @file
 * Status reporting and error handling for the FIGLUT library.
 *
 * Follows the gem5 fatal/panic split:
 *  - fatal():  the *user* supplied an impossible configuration; throws
 *              FatalError so callers (and tests) can recover.
 *  - panic():  the *library* violated one of its own invariants; throws
 *              PanicError. A panic reaching the top level is a bug.
 *  - warn()/inform(): non-fatal status on stderr.
 */

#ifndef FIGLUT_COMMON_LOGGING_H
#define FIGLUT_COMMON_LOGGING_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace figlut {

/** Error caused by invalid user input or configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Error caused by a broken internal invariant (a library bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail {

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

void emitMessage(const char *tag, const std::string &msg);

} // namespace detail

/** Report a condition the user should know about but not worry about. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitMessage("info", detail::concat(std::forward<Args>(args)...));
}

/** Report behaviour that might be wrong but lets the run continue. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitMessage("warn", detail::concat(std::forward<Args>(args)...));
}

/** Abort the computation: the user's configuration cannot be honoured. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::concat(std::forward<Args>(args)...));
}

/** Abort the computation: an internal invariant does not hold. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(detail::concat(std::forward<Args>(args)...));
}

/**
 * Invariant check that stays on in release builds.
 *
 * Use for cheap checks guarding library invariants; failures indicate a
 * FIGLUT bug, not a user error.
 */
#define FIGLUT_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::figlut::panic("assertion '", #cond, "' failed at ",           \
                            __FILE__, ":", __LINE__, ": ", __VA_ARGS__);    \
        }                                                                   \
    } while (false)

} // namespace figlut

#endif // FIGLUT_COMMON_LOGGING_H
