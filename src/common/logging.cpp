#include "common/logging.h"

#include <iostream>
#include <mutex>

namespace figlut {
namespace detail {

namespace {
std::mutex emitMutex;
} // namespace

void
emitMessage(const char *tag, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(emitMutex);
    std::cerr << tag << ": " << msg << '\n';
}

} // namespace detail
} // namespace figlut
