/**
 * @file
 * Console table formatter used by the benchmark binaries to print
 * paper-style tables and figure series.
 */

#ifndef FIGLUT_COMMON_TABLE_H
#define FIGLUT_COMMON_TABLE_H

#include <string>
#include <vector>

namespace figlut {

/** Column-aligned text table with a header row and optional title. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Insert a horizontal rule before the next added row. */
    void addRule();

    /** Render with padded columns and box-drawing rules. */
    std::string render() const;

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Format a double with the given precision (helper for callers). */
    static std::string num(double v, int precision = 3);

    /** Format a double as "1.23x" style ratio. */
    static std::string ratio(double v, int precision = 2);

    /** Format a double as a percentage "12.3%". */
    static std::string pct(double v, int precision = 1);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::size_t> rulesBefore_;
};

} // namespace figlut

#endif // FIGLUT_COMMON_TABLE_H
