/**
 * @file
 * Streaming summary statistics and simple histograms.
 *
 * Used by the accuracy harness (ULP/error distributions) and by the
 * simulator's per-component counters.
 */

#ifndef FIGLUT_COMMON_STATS_H
#define FIGLUT_COMMON_STATS_H

#include <cstddef>
#include <string>
#include <vector>

namespace figlut {

/** Welford-style running mean/variance with min/max tracking. */
class RunningStats
{
  public:
    /** Fold one sample into the summary. */
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const;
    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return sum_; }

    /** Merge another summary into this one. */
    void merge(const RunningStats &other);

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** Fixed-width histogram over [lo, hi) with under/overflow bins. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);

    std::size_t bins() const { return counts_.size(); }
    std::size_t binCount(std::size_t i) const { return counts_.at(i); }
    std::size_t underflow() const { return underflow_; }
    std::size_t overflow() const { return overflow_; }
    std::size_t total() const { return total_; }

    /** Lower edge of bin i. */
    double binLow(std::size_t i) const;

    /** Render as a short ASCII bar chart (for bench output). */
    std::string render(std::size_t width = 40) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::size_t total_ = 0;
};

} // namespace figlut

#endif // FIGLUT_COMMON_STATS_H
