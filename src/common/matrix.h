/**
 * @file
 * Minimal row-major dense matrix used throughout the library.
 *
 * This is deliberately not a linear-algebra package: FIGLUT's kernels do
 * their own arithmetic (often in emulated FP formats), so Matrix is just
 * an owning 2-D container with bounds-checked access in debug paths.
 */

#ifndef FIGLUT_COMMON_MATRIX_H
#define FIGLUT_COMMON_MATRIX_H

#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace figlut {

/** Owning row-major matrix of trivially copyable elements. */
template <typename T>
class Matrix
{
  public:
    Matrix() : rows_(0), cols_(0) {}

    /** Construct rows x cols, value-initialized. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols)
    {}

    /** Construct rows x cols filled with init. */
    Matrix(std::size_t rows, std::size_t cols, const T &init)
        : rows_(rows), cols_(cols), data_(rows * cols, init)
    {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    /** Element access (row r, column c). */
    T &
    operator()(std::size_t r, std::size_t c)
    {
        FIGLUT_ASSERT(r < rows_ && c < cols_,
                      "matrix index (", r, ",", c, ") out of (",
                      rows_, ",", cols_, ")");
        return data_[r * cols_ + c];
    }

    const T &
    operator()(std::size_t r, std::size_t c) const
    {
        FIGLUT_ASSERT(r < rows_ && c < cols_,
                      "matrix index (", r, ",", c, ") out of (",
                      rows_, ",", cols_, ")");
        return data_[r * cols_ + c];
    }

    /** Pointer to the start of row r. */
    T *rowPtr(std::size_t r) { return data_.data() + r * cols_; }
    const T *rowPtr(std::size_t r) const { return data_.data() + r * cols_; }

    T *data() { return data_.data(); }
    const T *data() const { return data_.data(); }

    /** Flat element access in row-major order. */
    T &at(std::size_t i) { return data_.at(i); }
    const T &at(std::size_t i) const { return data_.at(i); }

    bool
    operator==(const Matrix &other) const
    {
        return rows_ == other.rows_ && cols_ == other.cols_ &&
               data_ == other.data_;
    }

    /** Fill every element with v. */
    void
    fill(const T &v)
    {
        std::fill(data_.begin(), data_.end(), v);
    }

    auto begin() { return data_.begin(); }
    auto end() { return data_.end(); }
    auto begin() const { return data_.begin(); }
    auto end() const { return data_.end(); }

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<T> data_;
};

using MatrixF = Matrix<float>;
using MatrixD = Matrix<double>;

} // namespace figlut

#endif // FIGLUT_COMMON_MATRIX_H
