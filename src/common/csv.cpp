#include "common/csv.h"

#include "common/logging.h"

namespace figlut {

CsvWriter::CsvWriter(const std::string &path,
                     std::vector<std::string> header)
    : out_(path), width_(header.size())
{
    if (!out_)
        fatal("cannot open CSV output file '", path, "'");
    if (header.empty())
        fatal("CSV header must not be empty");
    writeRow(header);
}

void
CsvWriter::addRow(const std::vector<std::string> &row)
{
    if (row.size() != width_)
        fatal("CSV row width ", row.size(), " != header width ", width_);
    writeRow(row);
    ++rows_;
}

std::string
CsvWriter::escape(const std::string &field)
{
    const bool needs_quote =
        field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::writeRow(const std::vector<std::string> &row)
{
    for (std::size_t i = 0; i < row.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << escape(row[i]);
    }
    out_ << '\n';
}

} // namespace figlut
