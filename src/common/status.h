/**
 * @file
 * Recoverable error model of the serving surface: Status / Result<T>.
 *
 * The fatal()/panic() exceptions (common/logging.h) abort a
 * computation; that is the right behaviour deep inside a kernel, but a
 * serving loop must be able to reject one bad request and keep
 * serving. The public construction and submission paths of the serve
 * layer therefore return a Status (or a Result<T> when there is a
 * value to hand back) instead of throwing:
 *
 *     auto engine = serve::Engine::create(model, options);
 *     if (!engine.ok()) { log(engine.status().message()); return; }
 *     auto id = engine.value()->submit(request);   // Result<RequestId>
 *
 * Conventions:
 *  - Status::okStatus() / a value-holding Result is the success path.
 *  - Error codes follow the usual RPC vocabulary (InvalidArgument,
 *    NotFound, ResourceExhausted, FailedPrecondition, plus the
 *    serving-outcome trio DeadlineExceeded / Cancelled / Preempted) so
 *    callers can branch without parsing messages; messages stay
 *    actionable (what was wrong, what the bound was).
 *  - Accessing the value of an error Result is a *library-client* bug
 *    and panics (PanicError), mirroring FIGLUT_ASSERT discipline.
 */

#ifndef FIGLUT_COMMON_STATUS_H
#define FIGLUT_COMMON_STATUS_H

#include <optional>
#include <string>
#include <utility>

#include "common/logging.h"

namespace figlut {

/** Machine-readable classification of a Status. */
enum class StatusCode
{
    Ok,
    InvalidArgument,    ///< the supplied configuration/value is malformed
    NotFound,           ///< the named entity (e.g. RequestId) is unknown
    ResourceExhausted,  ///< a capacity bound (batch/queue/KV bytes) is full
    FailedPrecondition, ///< the call is valid but not in this state
    DeadlineExceeded,   ///< the request outlived its deadline
    Cancelled,          ///< the client cancelled the request
    Preempted,          ///< evicted under memory pressure (may restart)
};

/** Stable name of a StatusCode ("INVALID_ARGUMENT", ...). */
const char *statusCodeName(StatusCode code);

/** Success-or-error outcome of a recoverable operation. */
class Status
{
  public:
    /** Default: success. */
    Status() = default;

    /** The success value (named to leave ok() for the predicate). */
    static Status okStatus() { return Status(); }

    template <typename... Args>
    static Status
    invalidArgument(Args &&...args)
    {
        return Status(StatusCode::InvalidArgument,
                      detail::concat(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    notFound(Args &&...args)
    {
        return Status(StatusCode::NotFound,
                      detail::concat(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    resourceExhausted(Args &&...args)
    {
        return Status(StatusCode::ResourceExhausted,
                      detail::concat(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    failedPrecondition(Args &&...args)
    {
        return Status(StatusCode::FailedPrecondition,
                      detail::concat(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    deadlineExceeded(Args &&...args)
    {
        return Status(StatusCode::DeadlineExceeded,
                      detail::concat(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    cancelled(Args &&...args)
    {
        return Status(StatusCode::Cancelled,
                      detail::concat(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    preempted(Args &&...args)
    {
        return Status(StatusCode::Preempted,
                      detail::concat(std::forward<Args>(args)...));
    }

    bool ok() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "OK" or "INVALID_ARGUMENT: <message>". */
    std::string toString() const;

  private:
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/**
 * A T on success or a Status on failure. Implicitly constructible from
 * either, so `return Status::invalidArgument(...)` and `return value`
 * both work from a Result-returning function. T may be move-only
 * (Result<std::unique_ptr<Engine>> is the canonical use).
 */
template <typename T>
class Result
{
  public:
    Result(T value) : value_(std::move(value)) {}

    Result(Status status) : status_(std::move(status))
    {
        if (status_.ok())
            panic("Result constructed from an OK Status but no value");
    }

    bool ok() const { return value_.has_value(); }
    const Status &status() const { return status_; }

    T &
    value() &
    {
        requireOk();
        return *value_;
    }

    const T &
    value() const &
    {
        requireOk();
        return *value_;
    }

    /** Move the value out (e.g. `auto v = std::move(result).value()`). */
    T &&
    value() &&
    {
        requireOk();
        return *std::move(value_);
    }

  private:
    void
    requireOk() const
    {
        if (!ok())
            panic("Result::value() on error Result: ",
                  status_.toString());
    }

    Status status_;
    std::optional<T> value_;
};

} // namespace figlut

#endif // FIGLUT_COMMON_STATUS_H
