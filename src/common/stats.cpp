#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace figlut {

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::mean() const
{
    return n_ ? mean_ : 0.0;
}

double
RunningStats::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::min() const
{
    return n_ ? min_ : 0.0;
}

double
RunningStats::max() const
{
    return n_ ? max_ : 0.0;
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double n_total = na + nb;
    mean_ += delta * nb / n_total;
    m2_ += other.m2_ + delta * delta * na * nb / n_total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (!(lo < hi) || bins == 0)
        fatal("histogram needs lo < hi and at least one bin; got [",
              lo, ", ", hi, ") with ", bins, " bins");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        const double frac = (x - lo_) / (hi_ - lo_);
        auto idx = static_cast<std::size_t>(
            frac * static_cast<double>(counts_.size()));
        idx = std::min(idx, counts_.size() - 1);
        ++counts_[idx];
    }
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
           static_cast<double>(counts_.size());
}

std::string
Histogram::render(std::size_t width) const
{
    std::size_t peak = 1;
    for (auto c : counts_)
        peak = std::max(peak, c);

    std::ostringstream os;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto bar = counts_[i] * width / peak;
        os << binLow(i) << "\t|";
        for (std::size_t j = 0; j < bar; ++j)
            os << '#';
        os << ' ' << counts_[i] << '\n';
    }
    return os.str();
}

} // namespace figlut
