#include "common/status.h"

namespace figlut {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return "OK";
      case StatusCode::InvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::NotFound: return "NOT_FOUND";
      case StatusCode::ResourceExhausted: return "RESOURCE_EXHAUSTED";
      case StatusCode::FailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::DeadlineExceeded: return "DEADLINE_EXCEEDED";
      case StatusCode::Cancelled: return "CANCELLED";
      case StatusCode::Preempted: return "PREEMPTED";
    }
    return "UNKNOWN";
}

std::string
Status::toString() const
{
    if (ok())
        return "OK";
    return std::string(statusCodeName(code_)) + ": " + message_;
}

} // namespace figlut
