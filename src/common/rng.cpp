#include "common/rng.h"

#include <cmath>

namespace figlut {

namespace {

/** SplitMix64 step, used only for seeding. */
uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed) : seed_(seed)
{
    uint64_t sm = seed;
    for (auto &s : state_)
        s = splitMix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    // Rejection-free modulo is fine here; span is tiny vs 2^64 in all uses.
    return lo + static_cast<int64_t>(next() % span);
}

double
Rng::normal()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586476925286766559;
    spare_ = mag * std::sin(two_pi * u2);
    haveSpare_ = true;
    return mag * std::cos(two_pi * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::flip()
{
    return (next() >> 63) != 0;
}

std::vector<double>
Rng::normalVector(std::size_t n, double mean, double stddev)
{
    std::vector<double> out(n);
    for (auto &v : out)
        v = normal(mean, stddev);
    return out;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xA5A5A5A55A5A5A5AULL);
}

} // namespace figlut
