/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic behaviour in the library flows through Rng so that every
 * experiment is reproducible from a printed seed. The generator is
 * xoshiro256** seeded via SplitMix64 (Blackman & Vigna), implemented here
 * to avoid any dependence on platform-varying std::random_engine state.
 */

#ifndef FIGLUT_COMMON_RNG_H
#define FIGLUT_COMMON_RNG_H

#include <cstdint>
#include <vector>

namespace figlut {

/** xoshiro256** pseudo-random generator with convenience distributions. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with SplitMix64). */
    explicit Rng(uint64_t seed = kDefaultSeed);

    /** Default seed used across examples and benches. */
    static constexpr uint64_t kDefaultSeed = 0xF161A2C0DE2025ULL;

    /** Next raw 64-bit draw. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal draw (Box-Muller, cached spare). */
    double normal();

    /** Normal draw with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Fair coin flip. */
    bool flip();

    /** Vector of n standard-normal draws. */
    std::vector<double> normalVector(std::size_t n, double mean = 0.0,
                                     double stddev = 1.0);

    /** Split off an independent child generator (for parallel streams). */
    Rng split();

    /** The seed this generator was constructed with. */
    uint64_t seed() const { return seed_; }

  private:
    uint64_t seed_;
    uint64_t state_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace figlut

#endif // FIGLUT_COMMON_RNG_H
