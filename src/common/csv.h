/**
 * @file
 * Small CSV writer so every bench can dump machine-readable series
 * alongside its console table.
 */

#ifndef FIGLUT_COMMON_CSV_H
#define FIGLUT_COMMON_CSV_H

#include <fstream>
#include <string>
#include <vector>

namespace figlut {

/** Append-only CSV file writer with RFC-4180 style quoting. */
class CsvWriter
{
  public:
    /** Open (truncate) path and emit the header row. */
    CsvWriter(const std::string &path, std::vector<std::string> header);

    /** Append one row; width must match the header. */
    void addRow(const std::vector<std::string> &row);

    /** Number of data rows written. */
    std::size_t rowCount() const { return rows_; }

    /** Quote one field if needed. */
    static std::string escape(const std::string &field);

  private:
    void writeRow(const std::vector<std::string> &row);

    std::ofstream out_;
    std::size_t width_;
    std::size_t rows_ = 0;
};

} // namespace figlut

#endif // FIGLUT_COMMON_CSV_H
