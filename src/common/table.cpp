#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.h"

namespace figlut {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    if (header_.empty())
        fatal("TextTable needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        fatal("TextTable row width ", row.size(), " != header width ",
              header_.size());
    rows_.push_back(std::move(row));
}

void
TextTable::addRule()
{
    rulesBefore_.push_back(rows_.size());
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto hrule = [&] {
        std::string s = "+";
        for (auto w : width)
            s += std::string(w + 2, '-') + "+";
        return s + "\n";
    };
    auto line = [&](const std::vector<std::string> &cells) {
        std::ostringstream os;
        os << "|";
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << ' ' << std::left << std::setw(static_cast<int>(width[c]))
               << cells[c] << " |";
        os << "\n";
        return os.str();
    };

    std::ostringstream os;
    os << hrule() << line(header_) << hrule();
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (std::find(rulesBefore_.begin(), rulesBefore_.end(), r) !=
            rulesBefore_.end() && r != 0) {
            os << hrule();
        }
        os << line(rows_[r]);
    }
    os << hrule();
    return os.str();
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TextTable::ratio(double v, int precision)
{
    return num(v, precision) + "x";
}

std::string
TextTable::pct(double v, int precision)
{
    return num(100.0 * v, precision) + "%";
}

} // namespace figlut
