/**
 * @file
 * Paged KV arena: fixed-size blocks in one slab, per-sequence block
 * tables, and a byte budget — the memory-governed replacement for one
 * contiguous KvCache per request.
 *
 * The contiguous KvCache (runtime/kv_cache.h) owns one h x 1 matrix
 * per cached token; every live request carries its own and nothing
 * bounds their sum. The arena instead owns all KV bytes of an engine
 * in fixed-size blocks (blockTokens tokens x 2h doubles each, K then V
 * per token) and hands each sequence a per-layer block table. That
 * gives the serving layer the three properties request-count admission
 * cannot:
 *
 *  - a *byte* budget: reserveTokens() fails with NoCapacity instead of
 *    growing without bound, so admission is gated by the resource that
 *    actually limits concurrency;
 *  - O(1) reclamation: releasing a sequence returns whole blocks to a
 *    free list — eviction and re-admission never copy KV bytes;
 *  - a fault seam: every block allocation consults an optional
 *    FaultInjector, so tests and the load harness can drive allocation
 *    failure deterministically.
 *
 * Reads are bit-identical to the contiguous cache by construction:
 * appendToken() hands back the exact slab doubles a token's K/V land
 * in, tokenRefs() exposes them as stride-1 KvTokenRef views consumed
 * by referenceDecodeAttention(), and materialize() copies a sequence
 * back into a KvCache (the differential suite in
 * tests/runtime/test_kv_arena.cpp pins all three against the
 * contiguous oracle).
 *
 * Ownership and invariants:
 *  - The arena owns the slab; TokenSlot/KvTokenRef pointers borrow it
 *    and stay valid until the sequence is reset or released (chunks
 *    are never reallocated, only appended).
 *  - A sequence's per-layer tables always hold the same block count,
 *    and reserveTokens() is all-or-nothing: on NoCapacity/Fault every
 *    block granted within the call is rolled back, so a failed
 *    reservation leaves the arena exactly as it found it.
 *  - Capacity checks precede the injector: an allocation that the
 *    budget would deny never counts as an attempt, and a reservation
 *    already covered by granted blocks never consults the injector —
 *    both rules keep a shared injector's attempt sequence identical
 *    between a measured engine and a trace replay.
 */

#ifndef FIGLUT_RUNTIME_KV_ARENA_H
#define FIGLUT_RUNTIME_KV_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "runtime/kv_cache.h"
#include "runtime/reference_ops.h"

namespace figlut {

/**
 * Deterministic failure seam of the memory-governed serving path.
 *
 * Implementations MUST be pure functions of their arguments (no
 * internal state): the same injector instance is shared between a
 * measured serve::Engine and sim::replayTrace(), and the
 * measured-vs-simulated pin holds only if both sides see identical
 * answers for identical attempt/step indices.
 */
class FaultInjector
{
  public:
    virtual ~FaultInjector() = default;
    /**
     * Should this block allocation fail? `attempt` is the arena's
     * 1-based count of allocation attempts that passed the budget
     * check (KvArena::allocationAttempts()).
     */
    virtual bool
    failBlockAllocation(std::uint64_t attempt)
    {
        (void)attempt;
        return false;
    }
    /**
     * Clock skew, in seconds, applied to the engine's deadline clock
     * on fused step `stepIndex` (0-based). Positive skew makes
     * deadlines fire early.
     */
    virtual double
    clockSkewS(std::uint64_t stepIndex)
    {
        (void)stepIndex;
        return 0.0;
    }
};

/**
 * The stock injector of the tests and the load harness: every
 * failEvery-th allocation attempt fails (0 = never), and every odd
 * fused step runs with a fixed forward clock skew. Stateless, per the
 * FaultInjector purity contract.
 */
class CountingFaultInjector final : public FaultInjector
{
  public:
    explicit CountingFaultInjector(std::uint64_t failEvery,
                                   double skewS = 0.0)
        : failEvery_(failEvery), skewS_(skewS)
    {}

    bool
    failBlockAllocation(std::uint64_t attempt) override
    {
        return failEvery_ != 0 && attempt % failEvery_ == 0;
    }

    double
    clockSkewS(std::uint64_t stepIndex) override
    {
        return stepIndex % 2 == 1 ? skewS_ : 0.0;
    }

  private:
    std::uint64_t failEvery_ = 0;
    double skewS_ = 0.0;
};

/** Paged KV storage with per-sequence block tables and a byte budget. */
class KvArena
{
  public:
    using SeqId = std::uint64_t;
    /** The null sequence handle (createSequence() never returns it). */
    static constexpr SeqId kInvalidSeq = 0;

    struct Options
    {
        /** Hidden width h: each token slot holds 2h doubles (K, V). */
        std::size_t hidden = 0;
        /** Decoder layers; every reservation spans all of them. */
        std::size_t layers = 0;
        /** Tokens per block (the paging granularity). */
        std::size_t blockTokens = 16;
        /** Slab byte budget across all sequences; 0 = unbounded. */
        std::size_t budgetBytes = 0;
    };

    /** Outcome of a reservation (all-or-nothing; see reserveTokens). */
    enum class Reserve
    {
        Ok,         ///< capacity granted (or already covered)
        NoCapacity, ///< the byte budget cannot hold the new blocks
        Fault,      ///< the FaultInjector failed an allocation
    };

    /** Writable K/V slab pointers of one appended token (h each). */
    struct TokenSlot
    {
        double *k = nullptr;
        double *v = nullptr;
    };

    explicit KvArena(const Options &options,
                     FaultInjector *faults = nullptr);

    KvArena(const KvArena &) = delete;
    KvArena &operator=(const KvArena &) = delete;

    /** Register a new (empty) sequence and return its handle. */
    SeqId createSequence();

    /**
     * Ensure `tokens` token slots per layer are block-backed for the
     * sequence. Grows the block table only when the current blocks do
     * not already cover the count; growth allocates (need - current)
     * blocks per layer, each checked against the budget and then the
     * injector, and rolls every granted block back on failure.
     */
    Reserve reserveTokens(SeqId seq, std::size_t tokens);

    /**
     * Claim the next token slot of (seq, layer) and return its slab
     * pointers. Capacity must have been reserved (fatal otherwise) —
     * appends cannot fail, so a fused step that passed its reservation
     * pass always completes.
     */
    TokenSlot appendToken(SeqId seq, std::size_t layer);

    /** Tokens appended so far (layer 0; layers advance in lock-step). */
    std::size_t tokens(SeqId seq) const;

    /**
     * Stride-1 attention views over every appended token of
     * (seq, layer), oldest first, for referenceDecodeAttention().
     */
    void tokenRefs(SeqId seq, std::size_t layer,
                   std::vector<KvTokenRef> &out) const;

    /** Copy a sequence's appended tokens into a contiguous KvCache. */
    KvCache materialize(SeqId seq) const;

    /** Drop a sequence's tokens and return its blocks to the free
     *  list; the handle stays valid (and empty). */
    void resetSequence(SeqId seq);

    /** resetSequence() plus forgetting the handle entirely. */
    void releaseSequence(SeqId seq);

    /** True while the handle is registered. */
    bool hasSequence(SeqId seq) const;

    std::size_t blockTokens() const { return options_.blockTokens; }
    /** Bytes of one block: blockTokens x 2h doubles. */
    std::size_t blockBytes() const { return blockDoubles_ * 8; }
    /** Budget in whole blocks (0 = unbounded). */
    std::size_t budgetBlocks() const { return budgetBlocks_; }
    std::size_t blocksInUse() const { return blocksInUse_; }
    std::size_t bytesInUse() const { return blocksInUse_ * blockBytes(); }
    /** High-water mark of bytesInUse() over the arena's lifetime. */
    std::size_t peakBytes() const { return peakBlocks_ * blockBytes(); }
    /** Allocation attempts that passed the budget check (1-based ids
     *  handed to the injector). */
    std::uint64_t allocationAttempts() const { return attempts_; }
    /** Attempts the injector failed. */
    std::uint64_t allocationFaults() const { return faultsInjected_; }

  private:
    struct Seq
    {
        /** blocks[layer][i] = block id of token range [iB, (i+1)B). */
        std::vector<std::vector<std::uint32_t>> blocks;
        /** Tokens appended per layer. */
        std::vector<std::size_t> cursor;
    };

    enum class Alloc
    {
        Ok,
        NoCapacity,
        Fault,
    };

    Alloc allocBlock(std::uint32_t &id);
    void freeBlock(std::uint32_t id);
    const Seq &seqAt(SeqId seq) const;
    Seq &seqAt(SeqId seq);
    /** Slab address of a block, materializing its chunk on demand. */
    double *blockData(std::uint32_t id);
    /** Read-side slab address; the chunk must exist (fatal if not). */
    const double *blockData(std::uint32_t id) const;

    Options options_;
    FaultInjector *faults_ = nullptr;
    std::size_t blockDoubles_ = 0; ///< doubles per block (B x 2h)
    std::size_t budgetBlocks_ = 0;
    /** Slab storage: fixed-size chunks of kChunkBlocks blocks each,
     *  appended (never reallocated) so block addresses are stable. */
    std::vector<std::unique_ptr<double[]>> chunks_;
    std::vector<std::uint32_t> freeBlocks_;
    std::uint32_t blocksCreated_ = 0;
    std::size_t blocksInUse_ = 0;
    std::size_t peakBlocks_ = 0;
    std::uint64_t attempts_ = 0;
    std::uint64_t faultsInjected_ = 0;
    std::unordered_map<SeqId, Seq> seqs_;
    SeqId nextSeq_ = 1;
};

} // namespace figlut

#endif // FIGLUT_RUNTIME_KV_ARENA_H
