#include "runtime/exec_options.h"

#include <algorithm>
#include <cstdlib>

namespace figlut {
namespace {

/** FIGLUT_SHARDS, parsed and clamped once per process. */
int
envShardCount()
{
    static const int value = [] {
        const char *env = std::getenv("FIGLUT_SHARDS");
        if (env == nullptr || *env == '\0')
            return 1;
        char *end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        if (end == env || *end != '\0' || parsed < 1)
            return 1; // unparseable or nonsense: unsharded
        return static_cast<int>(
            std::min<long>(parsed, kMaxShards));
    }();
    return value;
}

} // namespace

int
resolveShardCount(int requested)
{
    if (requested >= 1)
        return std::min(requested, kMaxShards);
    return envShardCount();
}

LutGemmConfig
makeGemmConfig(const ExecOptions &exec, int mu)
{
    LutGemmConfig cfg;
    cfg.mu = mu;
    cfg.actFormat = exec.actFormat;
    cfg.arith = exec.arith;
    cfg.preAligned = exec.preAligned;
    cfg.alignFracBits = exec.alignFracBits;
    cfg.useHalfLut = exec.useHalfLut;
    cfg.useGeneratorTree = exec.useGeneratorTree;
    cfg.backend = exec.backend;
    cfg.threads = exec.threads;
    cfg.blockRows = exec.blockRows;
    return cfg;
}

Status
validateExecOptions(const ExecOptions &exec, int mu)
{
    if (exec.shards > kMaxShards)
        return Status::invalidArgument(
            "ExecOptions::shards must be <= ", kMaxShards, ", got ",
            exec.shards, " (<= 0 selects FIGLUT_SHARDS, else 1)");
    return validateLutGemmConfig(makeGemmConfig(exec, mu));
}

} // namespace figlut
