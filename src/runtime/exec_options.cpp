#include "runtime/exec_options.h"

namespace figlut {

LutGemmConfig
makeGemmConfig(const ExecOptions &exec, int mu)
{
    LutGemmConfig cfg;
    cfg.mu = mu;
    cfg.actFormat = exec.actFormat;
    cfg.arith = exec.arith;
    cfg.preAligned = exec.preAligned;
    cfg.alignFracBits = exec.alignFracBits;
    cfg.useHalfLut = exec.useHalfLut;
    cfg.useGeneratorTree = exec.useGeneratorTree;
    cfg.backend = exec.backend;
    cfg.threads = exec.threads;
    cfg.blockRows = exec.blockRows;
    return cfg;
}

Status
validateExecOptions(const ExecOptions &exec, int mu)
{
    return validateLutGemmConfig(makeGemmConfig(exec, mu));
}

} // namespace figlut
