/**
 * @file
 * Per-layer quantized weights of an OPT-style decoder, built once and
 * reused across every decode step — the weight half of a runtime
 * Session (see runtime/session.h).
 *
 * Each decoder layer owns the four weight GEMM operands (QKV,
 * attention output, FC1, FC2) as BCQ tensors plus their pre-packed
 * LUT keys, so the per-call work of the serving loop is only LUT
 * builds and reads: quantization and key packing are one-time costs
 * paid at model build. Weights are synthetic stand-ins for real OPT
 * checkpoints (model/synthetic.h; DESIGN.md substitution #2),
 * deterministic in the options' seed.
 */

#ifndef FIGLUT_RUNTIME_QUANTIZED_MODEL_H
#define FIGLUT_RUNTIME_QUANTIZED_MODEL_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "model/opt_family.h"
#include "model/workload.h"
#include "quant/bcq.h"
#include "quant/packing.h"

namespace figlut {

/** How to materialize and quantize the model weights. */
struct QuantizedModelOptions
{
    int weightBits = 4;
    /** Columns per scale group (0 = one group per full row). */
    std::size_t groupSize = 0;
    /** Fit a BCQ offset term per (row, group). */
    bool useOffset = true;
    /** Alternating-optimization rounds of quantizeBcq. */
    int bcqIterations = 2;
    /** LUT group size the packed keys encode. */
    int mu = 4;
    /**
     * Materialize only the first maxLayers decoder layers (0 = all).
     * Quantizing a full model is minutes of one-time work; truncation
     * keeps examples/tests proportionate while exercising the same
     * per-layer path.
     */
    std::size_t maxLayers = 0;
    /**
     * Materialize PackedLutKeys per operand (the Packed and Simd
     * backends' input; ~q bytes per weight, more than the quantized
     * payload itself). Session disables this automatically for
     * backends that gather keys from the bit planes instead.
     */
    bool packKeys = true;
    /** Seed of the synthetic weight draw. */
    uint64_t seed = Rng::kDefaultSeed;
};

/** The four quantized weight operands of one decoder layer. */
struct QuantizedLayer
{
    BcqTensor qkv;     ///< 3h x h
    BcqTensor attnOut; ///< h x h
    BcqTensor fc1;     ///< f x h
    BcqTensor fc2;     ///< h x f
    PackedLutKeys qkvKeys;
    PackedLutKeys attnOutKeys;
    PackedLutKeys fc1Keys;
    PackedLutKeys fc2Keys;

    /** Operand of a GEMM step; fatal for non-GEMM ops. */
    const BcqTensor &weights(LayerOp op) const;
    const PackedLutKeys &keys(LayerOp op) const;
};

/** All layers of a quantized decoder, built once from an OptConfig. */
class QuantizedModel
{
  public:
    QuantizedModel(const OptConfig &model,
                   const QuantizedModelOptions &options);

    /**
     * The architecture actually materialized: a copy of the source
     * config with layers truncated to maxLayers when set. Workloads
     * emitted for this model (decodeStepWorkload and Session) use
     * this config, so the analytic and numeric views stay aligned.
     */
    const OptConfig &config() const { return config_; }
    const QuantizedModelOptions &options() const { return options_; }

    std::size_t layers() const { return layers_.size(); }
    const QuantizedLayer &layer(std::size_t l) const;

    /** Quantized weight payload (planes + scales + offsets), bytes. */
    std::size_t storageBytes() const;
    /** Pre-packed LUT key payload, bytes. */
    std::size_t packedKeyBytes() const;

  private:
    OptConfig config_;
    QuantizedModelOptions options_;
    std::vector<QuantizedLayer> layers_;
};

} // namespace figlut

#endif // FIGLUT_RUNTIME_QUANTIZED_MODEL_H
