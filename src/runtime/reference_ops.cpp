#include "runtime/reference_ops.h"

#include <cmath>

#include "common/logging.h"

namespace figlut {

MatrixD
referenceLayerNorm(const MatrixD &x, double eps)
{
    const std::size_t h = x.rows();
    const std::size_t batch = x.cols();
    if (h == 0)
        fatal("layer norm needs a non-empty input");
    MatrixD out(h, batch);
    for (std::size_t b = 0; b < batch; ++b) {
        double mean = 0.0;
        for (std::size_t r = 0; r < h; ++r)
            mean += x(r, b);
        mean /= static_cast<double>(h);
        double var = 0.0;
        for (std::size_t r = 0; r < h; ++r) {
            const double d = x(r, b) - mean;
            var += d * d;
        }
        var /= static_cast<double>(h);
        const double inv = 1.0 / std::sqrt(var + eps);
        for (std::size_t r = 0; r < h; ++r)
            out(r, b) = (x(r, b) - mean) * inv;
    }
    return out;
}

void
referenceSoftmaxInPlace(double *v, std::size_t n)
{
    if (n == 0)
        return;
    double mx = v[0];
    for (std::size_t i = 1; i < n; ++i)
        mx = std::max(mx, v[i]);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        v[i] = std::exp(v[i] - mx);
        sum += v[i];
    }
    for (std::size_t i = 0; i < n; ++i)
        v[i] /= sum;
}

MatrixD
referenceGelu(const MatrixD &x)
{
    // tanh approximation: 0.5 x (1 + tanh(sqrt(2/pi) (x + c x^3))).
    constexpr double kSqrt2OverPi = 0.7978845608028654;
    constexpr double kCubicCoeff = 0.044715;
    MatrixD out(x.rows(), x.cols());
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double v = x.at(i);
        out.at(i) =
            0.5 * v *
            (1.0 + std::tanh(kSqrt2OverPi * (v + kCubicCoeff * v * v * v)));
    }
    return out;
}

MatrixD
referenceResidualAdd(const MatrixD &a, const MatrixD &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        fatal("residual add shape mismatch: ", a.rows(), "x", a.cols(),
              " vs ", b.rows(), "x", b.cols());
    MatrixD out(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.size(); ++i)
        out.at(i) = a.at(i) + b.at(i);
    return out;
}

MatrixD
referenceDecodeAttention(const MatrixD &q,
                         const std::vector<MatrixD> &kSteps,
                         const std::vector<MatrixD> &vSteps,
                         std::size_t heads)
{
    const std::size_t h = q.rows();
    const std::size_t batch = q.cols();
    const std::size_t steps = kSteps.size();
    if (heads == 0 || h % heads != 0)
        fatal("attention needs hidden divisible by heads, got ", h,
              " / ", heads);
    if (vSteps.size() != steps)
        fatal("attention K/V cache length mismatch: ", steps, " vs ",
              vSteps.size());
    if (steps == 0)
        fatal("attention needs at least one cached KV step");
    for (std::size_t t = 0; t < steps; ++t)
        if (kSteps[t].rows() != h || kSteps[t].cols() != batch ||
            vSteps[t].rows() != h || vSteps[t].cols() != batch)
            fatal("attention cache step ", t, " shape mismatch");

    const std::size_t headDim = h / heads;
    const double scale = 1.0 / std::sqrt(static_cast<double>(headDim));
    MatrixD out(h, batch, 0.0);
    std::vector<double> scores(steps);
    for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t hd = 0; hd < heads; ++hd) {
            const std::size_t r0 = hd * headDim;
            for (std::size_t t = 0; t < steps; ++t) {
                double dot = 0.0;
                for (std::size_t d = 0; d < headDim; ++d)
                    dot += q(r0 + d, b) * kSteps[t](r0 + d, b);
                scores[t] = dot * scale;
            }
            referenceSoftmaxInPlace(scores.data(), steps);
            for (std::size_t t = 0; t < steps; ++t) {
                const double p = scores[t];
                for (std::size_t d = 0; d < headDim; ++d)
                    out(r0 + d, b) += p * vSteps[t](r0 + d, b);
            }
        }
    }
    return out;
}

} // namespace figlut
