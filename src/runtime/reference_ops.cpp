#include "runtime/reference_ops.h"

#include <cmath>
#include <vector>

#include "common/logging.h"
#include "core/simd.h"

namespace figlut {

MatrixD
referenceLayerNorm(const MatrixD &x, double eps)
{
    const std::size_t h = x.rows();
    const std::size_t batch = x.cols();
    if (h == 0)
        fatal("layer norm needs a non-empty input");
    const SimdKernels &k = simdKernels();
    MatrixD out(h, batch);
    // Columns of the row-major h x B matrix are strided; stage each
    // one contiguously so the flat kernels apply. The reductions use
    // the fixed kSimdReduceLanes-strided order on every ISA, so the
    // result does not depend on which table is active.
    std::vector<double> col(h), norm(h);
    for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t r = 0; r < h; ++r)
            col[r] = x(r, b);
        const double mean = k.sumLanes(col.data(), h) /
                            static_cast<double>(h);
        const double var = k.sumSqDevLanes(col.data(), mean, h) /
                           static_cast<double>(h);
        const double inv = 1.0 / std::sqrt(var + eps);
        k.normalizeFlat(norm.data(), col.data(), mean, inv, h);
        for (std::size_t r = 0; r < h; ++r)
            out(r, b) = norm[r];
    }
    return out;
}

void
referenceSoftmaxInPlace(double *v, std::size_t n)
{
    if (n == 0)
        return;
    const SimdKernels &k = simdKernels();
    const double mx = k.maxFlat(v, n);
    // exp and the running sum stay scalar: the sum is a sequential
    // fold here (score counts are small), and there is no vector exp
    // under the bit-identity contract.
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        v[i] = std::exp(v[i] - mx);
        sum += v[i];
    }
    k.divFlat(v, sum, n);
}

namespace {

// tanh approximation: 0.5 x (1 + tanh(sqrt(2/pi) (x + c x^3))) —
// matches the VPU costing. Shared by the exact elementwise GELU and
// the knot sampling of the piecewise-linear table below.
double
geluScalar(double v)
{
    constexpr double kSqrt2OverPi = 0.7978845608028654;
    constexpr double kCubicCoeff = 0.044715;
    return 0.5 * v *
           (1.0 + std::tanh(kSqrt2OverPi * (v + kCubicCoeff * v * v * v)));
}

/**
 * The LUT-segmented GELU table: 2048 uniform segments over [-8, 8]
 * (step 2^-7, so knot positions and invStep are exact), knots sampled
 * from the tanh GELU. |GELU''| < 1.2 everywhere, so the per-segment
 * chord error is under 1.2/8 * step^2 < 1e-5; outside the range GELU
 * is within 1e-14 of its clamp/identity asymptotes. DESIGN.md records
 * the substitution and the 1e-4 acceptance tolerance.
 */
const GeluLutTable &
geluLutTable()
{
    static const GeluLutTable table = [] {
        GeluLutTable t;
        t.segments = 2048;
        t.lo = -8.0;
        t.hi = 8.0;
        t.step = (t.hi - t.lo) / static_cast<double>(t.segments);
        t.invStep = 1.0 / t.step;
        t.value.resize(static_cast<std::size_t>(t.segments) + 1);
        t.slope.resize(static_cast<std::size_t>(t.segments));
        for (int i = 0; i <= t.segments; ++i)
            t.value[static_cast<std::size_t>(i)] =
                geluScalar(t.lo + static_cast<double>(i) * t.step);
        for (int i = 0; i < t.segments; ++i)
            t.slope[static_cast<std::size_t>(i)] =
                (t.value[static_cast<std::size_t>(i) + 1] -
                 t.value[static_cast<std::size_t>(i)]) *
                t.invStep;
        return t;
    }();
    return table;
}

} // namespace

MatrixD
referenceGelu(const MatrixD &x)
{
    // Deliberately scalar: tanh dominates the cost and has no vector
    // equivalent under the bit-identity contract. referenceGeluLut()
    // below is the vectorized (approximate, opt-in) alternative.
    MatrixD out(x.rows(), x.cols());
    for (std::size_t i = 0; i < x.size(); ++i)
        out.at(i) = geluScalar(x.at(i));
    return out;
}

MatrixD
referenceGeluLut(const MatrixD &x)
{
    const GeluLutTable &table = geluLutTable();
    MatrixD out(x.rows(), x.cols());
    simdKernels().geluLutFlat(out.data(), x.data(), x.size(), table);
    return out;
}

MatrixD
referenceResidualAdd(const MatrixD &a, const MatrixD &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        fatal("residual add shape mismatch: ", a.rows(), "x", a.cols(),
              " vs ", b.rows(), "x", b.cols());
    MatrixD out(a.rows(), a.cols());
    simdKernels().addFlat(out.data(), a.data(), b.data(), a.size());
    return out;
}

MatrixD
referenceDecodeAttention(const MatrixD &q,
                         const std::vector<MatrixD> &kSteps,
                         const std::vector<MatrixD> &vSteps,
                         std::size_t heads)
{
    const std::size_t batch = q.cols();
    if (vSteps.size() != kSteps.size())
        fatal("attention K/V cache length mismatch: ", kSteps.size(),
              " vs ", vSteps.size());
    // Lock-step contract: every snapshot is exactly batch wide (the
    // ragged path below only requires the attended column to exist).
    for (std::size_t t = 0; t < kSteps.size(); ++t)
        if (kSteps[t].cols() != batch || vSteps[t].cols() != batch)
            fatal("attention cache step ", t, " width mismatch: ",
                  kSteps[t].cols(), "/", vSteps[t].cols(), " vs batch ",
                  batch);
    std::vector<KvColumn> kv(batch);
    for (std::size_t b = 0; b < batch; ++b)
        kv[b] = KvColumn{&kSteps, &vSteps, b, kSteps.size()};
    return referenceDecodeAttention(q, kv, heads);
}

MatrixD
referenceDecodeAttention(const MatrixD &q,
                         const std::vector<KvColumn> &kv,
                         std::size_t heads)
{
    const std::size_t h = q.rows();
    const std::size_t batch = q.cols();
    if (heads == 0 || h % heads != 0)
        fatal("attention needs hidden divisible by heads, got ", h,
              " / ", heads);
    if (kv.size() != batch)
        fatal("attention needs one KV history per query column, got ",
              kv.size(), " for ", batch);
    for (std::size_t b = 0; b < batch; ++b) {
        const KvColumn &col = kv[b];
        if (col.kSteps == nullptr || col.vSteps == nullptr)
            fatal("attention KV history ", b, " has no snapshots");
        if (col.length == 0)
            fatal("attention KV history ", b,
                  " needs at least one cached step");
        if (col.length > col.kSteps->size() ||
            col.length > col.vSteps->size())
            fatal("attention KV history ", b, " length ", col.length,
                  " exceeds cached steps ", col.kSteps->size(), "/",
                  col.vSteps->size());
        for (std::size_t t = 0; t < col.length; ++t) {
            const MatrixD &k = (*col.kSteps)[t];
            const MatrixD &v = (*col.vSteps)[t];
            if (k.rows() != h || v.rows() != h ||
                col.column >= k.cols() || col.column >= v.cols())
                fatal("attention KV history ", b, " step ", t,
                      " shape mismatch");
        }
    }

    // Convert each matrix column to strided token views and run the
    // shared arithmetic core: element (r0 + d, c) of a row-major h x B
    // snapshot is data()[(r0 + d) * B + c], i.e. a column pointer with
    // stride B — the exact doubles the loop read before the paged
    // arena introduced the KvTokenRef layer.
    std::vector<std::vector<KvTokenRef>> views(batch);
    for (std::size_t b = 0; b < batch; ++b) {
        const KvColumn &col = kv[b];
        views[b].resize(col.length);
        for (std::size_t t = 0; t < col.length; ++t) {
            const MatrixD &k = (*col.kSteps)[t];
            const MatrixD &v = (*col.vSteps)[t];
            views[b][t] = KvTokenRef{k.data() + col.column,
                                     v.data() + col.column, k.cols()};
        }
    }
    return referenceDecodeAttention(q, views, heads);
}

MatrixD
referenceDecodeAttention(const MatrixD &q,
                         const std::vector<std::vector<KvTokenRef>> &kv,
                         std::size_t heads)
{
    const std::size_t h = q.rows();
    const std::size_t batch = q.cols();
    if (heads == 0 || h % heads != 0)
        fatal("attention needs hidden divisible by heads, got ", h,
              " / ", heads);
    if (kv.size() != batch)
        fatal("attention needs one KV history per query column, got ",
              kv.size(), " for ", batch);
    for (std::size_t b = 0; b < batch; ++b) {
        if (kv[b].empty())
            fatal("attention KV history ", b,
                  " needs at least one cached step");
        for (std::size_t t = 0; t < kv[b].size(); ++t)
            if (kv[b][t].k == nullptr || kv[b][t].v == nullptr)
                fatal("attention KV history ", b, " token ", t,
                      " has null storage");
    }

    const std::size_t headDim = h / heads;
    const double scale = 1.0 / std::sqrt(static_cast<double>(headDim));
    MatrixD out(h, batch, 0.0);
    std::vector<double> scores;
    for (std::size_t b = 0; b < batch; ++b) {
        const std::vector<KvTokenRef> &toks = kv[b];
        const std::size_t steps = toks.size();
        scores.resize(steps);
        for (std::size_t hd = 0; hd < heads; ++hd) {
            const std::size_t r0 = hd * headDim;
            for (std::size_t t = 0; t < steps; ++t) {
                double dot = 0.0;
                for (std::size_t d = 0; d < headDim; ++d)
                    dot += q(r0 + d, b) *
                           toks[t].k[(r0 + d) * toks[t].stride];
                scores[t] = dot * scale;
            }
            referenceSoftmaxInPlace(scores.data(), steps);
            for (std::size_t t = 0; t < steps; ++t) {
                const double p = scores[t];
                for (std::size_t d = 0; d < headDim; ++d)
                    out(r0 + d, b) +=
                        p * toks[t].v[(r0 + d) * toks[t].stride];
            }
        }
    }
    return out;
}

} // namespace figlut
