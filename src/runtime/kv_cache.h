/**
 * @file
 * Per-sequence KV cache of a decoder, extracted from Session so the
 * serve layer can key one cache per request.
 *
 * A KvCache holds, for every decoder layer, the K and V snapshots of
 * each decode step executed so far (one hidden x width matrix per
 * step, oldest first). All layers grow in lock-step — a decode step
 * appends exactly one entry per layer — so the cache has one length.
 * Session keeps one batch-wide cache column per sequence; the serve
 * Engine keeps one single-column cache per live request, which is what
 * makes ragged (per-request) context lengths representable.
 */

#ifndef FIGLUT_RUNTIME_KV_CACHE_H
#define FIGLUT_RUNTIME_KV_CACHE_H

#include <cstddef>
#include <vector>

#include "common/matrix.h"

namespace figlut {

/** KV snapshots of one sequence (or one lock-step batch), all layers. */
class KvCache
{
  public:
    KvCache() = default;

    /** A cache for `layers` decoder layers, initially empty. */
    explicit KvCache(std::size_t layers) : k_(layers), v_(layers) {}

    std::size_t layers() const { return k_.size(); }

    /** Decode steps cached (identical across layers by construction). */
    std::size_t
    length() const
    {
        return k_.empty() ? 0 : k_.front().size();
    }

    bool empty() const { return length() == 0; }

    /**
     * Append one decode step's K/V snapshot for `layer`. Within one
     * decode step this must be called exactly once per layer; k and v
     * must share a shape (hidden x width, the same width every step).
     */
    void append(std::size_t layer, MatrixD k, MatrixD v);

    /** K snapshots of `layer`, oldest first. */
    const std::vector<MatrixD> &keys(std::size_t layer) const;
    /** V snapshots of `layer`, oldest first. */
    const std::vector<MatrixD> &values(std::size_t layer) const;

    /** Drop every cached step (weights/config are unaffected). */
    void clear();

    /** Cached payload in bytes (doubles held across all layers). */
    std::size_t bytes() const;

    bool
    operator==(const KvCache &other) const
    {
        return k_ == other.k_ && v_ == other.v_;
    }
    bool operator!=(const KvCache &other) const { return !(*this == other); }

  private:
    std::vector<std::vector<MatrixD>> k_;
    std::vector<std::vector<MatrixD>> v_;
};

} // namespace figlut

#endif // FIGLUT_RUNTIME_KV_CACHE_H
