/**
 * @file
 * Reference (plain double) vector kernels of the numeric decode path.
 *
 * These are the non-GEMM operations a decoder layer executes around
 * the weight GEMMs: layer norm, KV-cache attention, GELU, residual
 * adds. The accelerator prices them as VPU op counts (sim/vpu.h); the
 * runtime Session executes them with these functions. They are plain
 * double-precision operations — deterministic and exactly reproducible
 * — so a hand-rolled per-layer reference can be compared bit-for-bit
 * against Session output (the differential suite in
 * tests/runtime/test_session.cpp does exactly that). The elementwise
 * and reduction stages route through the runtime-dispatched SIMD
 * kernels of core/simd.h, whose bit-identity contract (fixed
 * kSimdReduceLanes-strided reduction order, identical per-element
 * arithmetic on every ISA) keeps results independent of the host CPU;
 * tests/runtime/test_reference_ops.cpp pins every ISA against the
 * scalar table.
 */

#ifndef FIGLUT_RUNTIME_REFERENCE_OPS_H
#define FIGLUT_RUNTIME_REFERENCE_OPS_H

#include <cstddef>
#include <vector>

#include "common/matrix.h"

namespace figlut {

/**
 * LayerNorm over each column of x (one column = one token's hidden
 * state), unit gain and zero bias: (v - mean) / sqrt(var + eps) with
 * the population variance.
 */
MatrixD referenceLayerNorm(const MatrixD &x, double eps = 1e-5);

/** Numerically-stable softmax over v[0..n), in place. */
void referenceSoftmaxInPlace(double *v, std::size_t n);

/** GELU (tanh approximation, matching the VPU costing) elementwise. */
MatrixD referenceGelu(const MatrixD &x);

/**
 * Piecewise-linear LUT GELU (the PIM LUT-segmented transcendental
 * idiom): 2048 uniform segments over [-8, 8], identity tail above,
 * executed by the dispatched SIMD kernels. Bit-identical across ISAs
 * but NOT bit-identical to referenceGelu — absolute error is bounded
 * by the table resolution (< 1e-5; see DESIGN.md). Opt-in via
 * ExecOptions::lutGelu; the exact tanh GELU stays the default.
 */
MatrixD referenceGeluLut(const MatrixD &x);

/** Elementwise a + b; shapes must match. */
MatrixD referenceResidualAdd(const MatrixD &a, const MatrixD &b);

/**
 * Decode-phase multi-head attention over per-step KV snapshots.
 *
 * q is h x B (one query column per sequence in the batch); kSteps and
 * vSteps hold one h x B matrix per cached decode step, oldest first.
 * For every batch column and head, scores over the T cached steps are
 * scaled dot products (1/sqrt(headDim)), softmaxed, and used to blend
 * the cached V columns. Returns h x B.
 */
MatrixD referenceDecodeAttention(const MatrixD &q,
                                 const std::vector<MatrixD> &kSteps,
                                 const std::vector<MatrixD> &vSteps,
                                 std::size_t heads);

/**
 * One query column's KV history for the ragged-batch attention below:
 * which column of which per-step K/V snapshots to attend over, and
 * over how many steps. The snapshot vectors are borrowed — the caller
 * keeps them alive for the duration of the attention call.
 */
struct KvColumn
{
    const std::vector<MatrixD> *kSteps = nullptr;
    const std::vector<MatrixD> *vSteps = nullptr;
    /** Column within each snapshot matrix. */
    std::size_t column = 0;
    /** Cached steps to attend over (a prefix of the snapshots). */
    std::size_t length = 0;
};

/**
 * Ragged-batch decode attention: column b of q attends over its own
 * KV history kv[b], so every column may have a different context
 * length — the serve Engine's fused step over requests of different
 * ages. Per column the arithmetic (scaled dot products, softmax,
 * V blend, all in this exact order) is identical to the lock-step
 * overload above, which delegates here; a column with a batch-1
 * history is therefore bit-identical to a batch-1 lock-step call.
 */
MatrixD referenceDecodeAttention(const MatrixD &q,
                                 const std::vector<KvColumn> &kv,
                                 std::size_t heads);

/**
 * One cached token's K/V as raw strided views — the storage-agnostic
 * attention input. Element d of K is k[d * stride] (likewise V):
 * stride 1 for the paged-arena slab layout, the snapshot width for a
 * column of an h x B KvCache matrix. Borrowed; the caller keeps the
 * backing storage alive for the duration of the attention call.
 */
struct KvTokenRef
{
    const double *k = nullptr;
    const double *v = nullptr;
    std::size_t stride = 1;
};

/**
 * Ragged-batch decode attention over raw token views: kv[b] holds
 * column b's cached tokens, oldest first. This is the arithmetic core
 * both cache layouts share — the KvColumn overload above converts its
 * matrix columns to strided views and delegates here, so a paged-arena
 * read (stride 1) is bit-identical to the contiguous KvCache read
 * (stride = snapshot width) by construction.
 */
MatrixD
referenceDecodeAttention(const MatrixD &q,
                         const std::vector<std::vector<KvTokenRef>> &kv,
                         std::size_t heads);

} // namespace figlut

#endif // FIGLUT_RUNTIME_REFERENCE_OPS_H
