#include "runtime/kv_arena.h"

#include <algorithm>

#include "common/logging.h"

namespace figlut {

namespace {

/** Blocks per slab chunk: big enough to amortize the allocation,
 *  small enough that a tiny test arena stays tiny. */
constexpr std::size_t kChunkBlocks = 16;

std::size_t
ceilDiv(std::size_t a, std::size_t b)
{
    return (a + b - 1) / b;
}

} // namespace

KvArena::KvArena(const Options &options, FaultInjector *faults)
    : options_(options), faults_(faults)
{
    FIGLUT_ASSERT(options.hidden >= 1,
                  "KvArena needs hidden >= 1, got ", options.hidden);
    FIGLUT_ASSERT(options.layers >= 1,
                  "KvArena needs layers >= 1, got ", options.layers);
    FIGLUT_ASSERT(options.blockTokens >= 1,
                  "KvArena needs blockTokens >= 1, got ",
                  options.blockTokens);
    blockDoubles_ = options.blockTokens * 2 * options.hidden;
    budgetBlocks_ =
        options.budgetBytes == 0 ? 0 : options.budgetBytes / blockBytes();
    FIGLUT_ASSERT(options.budgetBytes == 0 || budgetBlocks_ >= 1,
                  "KvArena budgetBytes ", options.budgetBytes,
                  " cannot hold a single ", blockBytes(),
                  "-byte block");
}

KvArena::SeqId
KvArena::createSequence()
{
    const SeqId id = nextSeq_++;
    Seq seq;
    seq.blocks.resize(options_.layers);
    seq.cursor.assign(options_.layers, 0);
    seqs_.emplace(id, std::move(seq));
    return id;
}

KvArena::Alloc
KvArena::allocBlock(std::uint32_t &id)
{
    // Budget first, injector second: an allocation the budget denies
    // is not an "attempt", so a shared injector sees the identical
    // attempt sequence on the engine and the replay side.
    if (budgetBlocks_ != 0 && blocksInUse_ >= budgetBlocks_)
        return Alloc::NoCapacity;
    ++attempts_;
    if (faults_ != nullptr && faults_->failBlockAllocation(attempts_)) {
        ++faultsInjected_;
        return Alloc::Fault;
    }
    if (!freeBlocks_.empty()) {
        id = freeBlocks_.back();
        freeBlocks_.pop_back();
    } else {
        id = blocksCreated_++;
    }
    ++blocksInUse_;
    peakBlocks_ = std::max(peakBlocks_, blocksInUse_);
    return Alloc::Ok;
}

void
KvArena::freeBlock(std::uint32_t id)
{
    freeBlocks_.push_back(id);
    FIGLUT_ASSERT(blocksInUse_ > 0,
                  "KvArena freed block ", id, " with none in use");
    --blocksInUse_;
}

KvArena::Reserve
KvArena::reserveTokens(SeqId seq, std::size_t tokens)
{
    Seq &s = seqAt(seq);
    const std::size_t need = ceilDiv(tokens, options_.blockTokens);
    const std::size_t cur = s.blocks[0].size();
    if (need <= cur)
        return Reserve::Ok;

    // All-or-nothing growth: collect every new block first, roll the
    // lot back on the first failure, and only then extend the tables
    // (so a failed reservation leaves the sequence untouched).
    std::vector<std::uint32_t> granted;
    granted.reserve((need - cur) * options_.layers);
    Reserve outcome = Reserve::Ok;
    for (std::size_t b = cur; b < need && outcome == Reserve::Ok; ++b) {
        for (std::size_t l = 0; l < options_.layers; ++l) {
            std::uint32_t id = 0;
            const Alloc r = allocBlock(id);
            if (r == Alloc::Ok) {
                granted.push_back(id);
                continue;
            }
            outcome = r == Alloc::NoCapacity ? Reserve::NoCapacity
                                             : Reserve::Fault;
            break;
        }
    }
    if (outcome != Reserve::Ok) {
        for (const std::uint32_t id : granted)
            freeBlock(id);
        return outcome;
    }
    std::size_t g = 0;
    for (std::size_t b = cur; b < need; ++b)
        for (std::size_t l = 0; l < options_.layers; ++l)
            s.blocks[l].push_back(granted[g++]);
    return Reserve::Ok;
}

double *
KvArena::blockData(std::uint32_t id)
{
    const std::size_t chunk = id / kChunkBlocks;
    while (chunks_.size() <= chunk)
        // Value-initialized, like the Matrix storage KvCache uses.
        chunks_.push_back(std::make_unique<double[]>(kChunkBlocks *
                                                     blockDoubles_));
    return chunks_[chunk].get() + (id % kChunkBlocks) * blockDoubles_;
}

const double *
KvArena::blockData(std::uint32_t id) const
{
    const std::size_t chunk = id / kChunkBlocks;
    FIGLUT_ASSERT(chunk < chunks_.size(),
                  "KvArena read of block ", id,
                  " before any token was written to its chunk");
    return chunks_[chunk].get() + (id % kChunkBlocks) * blockDoubles_;
}

KvArena::TokenSlot
KvArena::appendToken(SeqId seq, std::size_t layer)
{
    Seq &s = seqAt(seq);
    FIGLUT_ASSERT(layer < options_.layers,
                  "KvArena appendToken layer ", layer, " out of range ",
                  options_.layers);
    const std::size_t t = s.cursor[layer];
    FIGLUT_ASSERT(t < s.blocks[layer].size() * options_.blockTokens,
                  "KvArena appendToken without reserved capacity: seq ",
                  seq, " layer ", layer, " token ", t, " but only ",
                  s.blocks[layer].size(), " blocks of ",
                  options_.blockTokens, " tokens are reserved");
    double *base =
        blockData(s.blocks[layer][t / options_.blockTokens]) +
        (t % options_.blockTokens) * 2 * options_.hidden;
    ++s.cursor[layer];
    return TokenSlot{base, base + options_.hidden};
}

std::size_t
KvArena::tokens(SeqId seq) const
{
    return seqAt(seq).cursor[0];
}

void
KvArena::tokenRefs(SeqId seq, std::size_t layer,
                   std::vector<KvTokenRef> &out) const
{
    const Seq &s = seqAt(seq);
    FIGLUT_ASSERT(layer < options_.layers,
                  "KvArena tokenRefs layer ", layer, " out of range ",
                  options_.layers);
    const std::size_t n = s.cursor[layer];
    out.resize(n);
    for (std::size_t t = 0; t < n; ++t) {
        const double *base =
            blockData(s.blocks[layer][t / options_.blockTokens]) +
            (t % options_.blockTokens) * 2 * options_.hidden;
        out[t] = KvTokenRef{base, base + options_.hidden, 1};
    }
}

KvCache
KvArena::materialize(SeqId seq) const
{
    const Seq &s = seqAt(seq);
    KvCache cache(options_.layers);
    const std::size_t h = options_.hidden;
    for (std::size_t l = 0; l < options_.layers; ++l) {
        FIGLUT_ASSERT(s.cursor[l] == s.cursor[0],
                      "KvArena materialize needs lock-step layers: ",
                      "layer ", l, " holds ", s.cursor[l],
                      " tokens vs ", s.cursor[0]);
        for (std::size_t t = 0; t < s.cursor[l]; ++t) {
            const double *base =
                blockData(s.blocks[l][t / options_.blockTokens]) +
                (t % options_.blockTokens) * 2 * h;
            MatrixD k(h, 1), v(h, 1);
            for (std::size_t r = 0; r < h; ++r) {
                k(r, 0) = base[r];
                v(r, 0) = base[h + r];
            }
            cache.append(l, std::move(k), std::move(v));
        }
    }
    return cache;
}

void
KvArena::resetSequence(SeqId seq)
{
    Seq &s = seqAt(seq);
    for (auto &table : s.blocks) {
        for (const std::uint32_t id : table)
            freeBlock(id);
        table.clear();
    }
    s.cursor.assign(options_.layers, 0);
}

void
KvArena::releaseSequence(SeqId seq)
{
    resetSequence(seq);
    seqs_.erase(seq);
}

bool
KvArena::hasSequence(SeqId seq) const
{
    return seqs_.count(seq) != 0;
}

const KvArena::Seq &
KvArena::seqAt(SeqId seq) const
{
    const auto it = seqs_.find(seq);
    FIGLUT_ASSERT(it != seqs_.end(), "KvArena unknown sequence ", seq);
    return it->second;
}

KvArena::Seq &
KvArena::seqAt(SeqId seq)
{
    const auto it = seqs_.find(seq);
    FIGLUT_ASSERT(it != seqs_.end(), "KvArena unknown sequence ", seq);
    return it->second;
}

} // namespace figlut
