/**
 * @file
 * Host-execution options of the runtime and serve layers.
 *
 * The one-struct SessionOptions of the original runtime mixed three
 * concerns that the serving surface needs separated:
 *  - ModelOptions (QuantizedModelOptions): how weights are
 *    materialized, quantized, and key-packed — owned by the model /
 *    Engine, one-time cost.
 *  - ExecOptions (this header): how GEMM kernels execute on the host —
 *    backend, worker budget, tile height, activation/accumulate
 *    formats. Shared by every request an Engine serves.
 *  - RequestOptions (serve/request.h): per-request knobs — token
 *    budget, input seed.
 *
 * makeGemmConfig() is the single mapping from ExecOptions (+ the
 * model's LUT group size mu) to the kernel-level LutGemmConfig, so the
 * Session and Engine paths cannot drift apart.
 */

#ifndef FIGLUT_RUNTIME_EXEC_OPTIONS_H
#define FIGLUT_RUNTIME_EXEC_OPTIONS_H

#include "common/status.h"
#include "core/lut_gemm.h"

namespace figlut {

/** Host execution of the GEMM kernels (core/lut_gemm.h knobs). */
struct ExecOptions
{
    /** Simd is bit-identical to Packed (and Reference) with the same
     *  closed-form counters, so the fastest backend is the default;
     *  dispatch degrades to the scalar table on non-SIMD hosts. */
    LutGemmBackend backend = LutGemmBackend::Simd;
    int threads = 0;    ///< workers, <= 0 = hardware concurrency
    int blockRows = 64; ///< rows per M-tile work item
    ActFormat actFormat = ActFormat::FP16;
    FpArith arith = FpArith::Fp32;
    bool preAligned = true; ///< FIGLUT-I integer path
    int alignFracBits = 24;
    bool useHalfLut = true;
    bool useGeneratorTree = true;

    /**
     * Execute the FFN GELU with the piecewise-linear LUT kernel
     * (referenceGeluLut) instead of the exact tanh GELU. Vectorized
     * and bit-identical across ISAs, but an approximation (abs error
     * < 1e-5; see DESIGN.md) — hence opt-in, default off.
     */
    bool lutGelu = false;

    /**
     * Row-shard every layer GEMM across this many worker groups
     * (shard/sharded_executor.h), each pinned to a NUMA node where
     * detected. <= 0 = auto: the FIGLUT_SHARDS env override when set
     * (mirroring FIGLUT_SIMD), else 1. Sharding is an execution
     * detail: outputs, KV, and counters are bit-identical to
     * shards=1 by construction, and 1 runs the regular unsharded
     * path with zero added overhead.
     */
    int shards = 0;
};

/** Upper bound on ExecOptions::shards (guards typo'd counts). */
inline constexpr int kMaxShards = 64;

/**
 * Resolve the shard-count knob: values >= 1 are taken as-is, <= 0
 * ("auto") reads FIGLUT_SHARDS once per process (unset/invalid = 1).
 * Both paths clamp to [1, kMaxShards].
 */
int resolveShardCount(int requested);

/** The kernel configuration these options select for LUT group size mu. */
LutGemmConfig makeGemmConfig(const ExecOptions &exec, int mu);

/**
 * Validate the execution knobs for LUT group size mu without running a
 * kernel: threads bound, blockRows positivity, mu range, hFFLUT
 * constraints — the same checks lutGemm() enforces fatally, surfaced
 * as a recoverable Status for the serving construction paths.
 */
Status validateExecOptions(const ExecOptions &exec, int mu);

} // namespace figlut

#endif // FIGLUT_RUNTIME_EXEC_OPTIONS_H
