#include "runtime/quantized_model.h"

#include "common/logging.h"
#include "model/synthetic.h"

namespace figlut {

const BcqTensor &
QuantizedLayer::weights(LayerOp op) const
{
    switch (op) {
      case LayerOp::QkvProj: return qkv;
      case LayerOp::OutProj: return attnOut;
      case LayerOp::Fc1: return fc1;
      case LayerOp::Fc2: return fc2;
      default:
        fatal("LayerOp ", static_cast<int>(op),
              " is not a GEMM step and has no weight operand");
    }
}

const PackedLutKeys &
QuantizedLayer::keys(LayerOp op) const
{
    switch (op) {
      case LayerOp::QkvProj: return qkvKeys;
      case LayerOp::OutProj: return attnOutKeys;
      case LayerOp::Fc1: return fc1Keys;
      case LayerOp::Fc2: return fc2Keys;
      default:
        fatal("LayerOp ", static_cast<int>(op),
              " is not a GEMM step and has no packed keys");
    }
}

namespace {

/**
 * Quantize one synthetic weight matrix and pack its LUT keys. The RNG
 * stream is derived from (seed, layer, operand index) so every operand
 * is deterministic independently of build order; the golden-ratio mix
 * keeps operand streams disjoint from Rng(seed) streams callers use
 * for inputs (a plain seed + offset would collide with them).
 */
void
buildOperand(std::size_t m, std::size_t n, std::size_t layer,
             std::size_t operand, const QuantizedModelOptions &opts,
             BcqTensor &tensor, PackedLutKeys &keys)
{
    Rng rng(opts.seed ^
            (0x9E3779B97F4A7C15ULL * (layer * 4 + operand + 1)));
    const MatrixD w = syntheticWeights(m, n, rng);
    BcqConfig qcfg;
    qcfg.bits = opts.weightBits;
    qcfg.groupSize = opts.groupSize;
    qcfg.useOffset = opts.useOffset;
    qcfg.iterations = opts.bcqIterations;
    tensor = quantizeBcq(w, qcfg);
    if (opts.packKeys)
        keys = packLutKeys(tensor, opts.mu);
}

} // namespace

QuantizedModel::QuantizedModel(const OptConfig &model,
                               const QuantizedModelOptions &options)
    : config_(model), options_(options)
{
    if (model.hidden == 0 || model.layers == 0 || model.ffn == 0)
        fatal("QuantizedModel needs a non-empty OptConfig, got hidden=",
              model.hidden, " layers=", model.layers, " ffn=", model.ffn);
    if (model.heads == 0 || model.hidden % model.heads != 0)
        fatal("QuantizedModel needs hidden divisible by heads, got ",
              model.hidden, " / ", model.heads);
    if (options.weightBits < 1)
        fatal("QuantizedModel weightBits must be >= 1, got ",
              options.weightBits);
    if (options.maxLayers > 0 && options.maxLayers < config_.layers)
        config_.layers = options.maxLayers;

    const std::size_t h = config_.hidden;
    const std::size_t f = config_.ffn;
    layers_.resize(config_.layers);
    for (std::size_t l = 0; l < config_.layers; ++l) {
        QuantizedLayer &lay = layers_[l];
        buildOperand(3 * h, h, l, 0, options_, lay.qkv, lay.qkvKeys);
        buildOperand(h, h, l, 1, options_, lay.attnOut, lay.attnOutKeys);
        buildOperand(f, h, l, 2, options_, lay.fc1, lay.fc1Keys);
        buildOperand(h, f, l, 3, options_, lay.fc2, lay.fc2Keys);
    }
}

const QuantizedLayer &
QuantizedModel::layer(std::size_t l) const
{
    if (l >= layers_.size())
        fatal("layer index ", l, " out of ", layers_.size());
    return layers_[l];
}

std::size_t
QuantizedModel::storageBytes() const
{
    std::size_t bits = 0;
    for (const auto &lay : layers_) {
        bits += lay.qkv.storageBits();
        bits += lay.attnOut.storageBits();
        bits += lay.fc1.storageBits();
        bits += lay.fc2.storageBits();
    }
    return bits / 8;
}

std::size_t
QuantizedModel::packedKeyBytes() const
{
    std::size_t bytes = 0;
    for (const auto &lay : layers_) {
        bytes += lay.qkvKeys.keyBytes();
        bytes += lay.attnOutKeys.keyBytes();
        bytes += lay.fc1Keys.keyBytes();
        bytes += lay.fc2Keys.keyBytes();
    }
    return bytes;
}

} // namespace figlut
