#include "runtime/session.h"

#include "common/logging.h"
#include "model/synthetic.h"
#include "runtime/reference_ops.h"

namespace figlut {

namespace {

/** Only the Packed backend consumes pre-packed keys; skip the
 *  materialization (roughly q bytes per weight) for the others. */
QuantizedModelOptions
quantOptionsFor(const SessionOptions &options)
{
    QuantizedModelOptions quant = options.quant;
    quant.packKeys = options.backend == LutGemmBackend::Packed;
    return quant;
}

} // namespace

Session::Session(const OptConfig &model, const SessionOptions &options)
    : model_(model, quantOptionsFor(options)), options_(options),
      ctx_(options.threads)
{
    if (options_.batch == 0)
        fatal("Session batch must be positive");
    kCache_.resize(model_.layers());
    vCache_.resize(model_.layers());
    // The spec sequence is construction-invariant; build it once and
    // iterate the cached member every decode step.
    specs_ = layerSpecs(model_.config(), workloadOptions());
}

MatrixD
Session::makeInput(Rng &rng) const
{
    return syntheticActivations(model_.config().hidden, options_.batch,
                                rng);
}

LutGemmConfig
Session::gemmConfig() const
{
    LutGemmConfig cfg;
    cfg.mu = options_.quant.mu;
    cfg.actFormat = options_.actFormat;
    cfg.arith = options_.arith;
    cfg.preAligned = options_.preAligned;
    cfg.alignFracBits = options_.alignFracBits;
    cfg.useHalfLut = options_.useHalfLut;
    cfg.useGeneratorTree = options_.useGeneratorTree;
    cfg.backend = options_.backend;
    cfg.threads = options_.threads;
    cfg.blockRows = options_.blockRows;
    return cfg;
}

MatrixD
Session::runGemm(const BcqTensor &w, const PackedLutKeys &keys,
                 const MatrixD &x, LutGemmCounters &counters)
{
    const LutGemmConfig cfg = gemmConfig();
    // The pre-packed overload is Packed-only; the other backends
    // gather keys from the bit planes themselves.
    if (cfg.backend == LutGemmBackend::Packed)
        return lutGemm(w, x, cfg, keys, &counters, &ctx_);
    return lutGemm(w, x, cfg, &counters, &ctx_);
}

DecodeStepResult
Session::runDecodeStep(const MatrixD &hidden_in)
{
    const OptConfig &cfg = model_.config();
    const std::size_t h = cfg.hidden;
    const std::size_t batch = options_.batch;
    if (hidden_in.rows() != h || hidden_in.cols() != batch)
        fatal("decode-step input must be ", h, "x", batch, ", got ",
              hidden_in.rows(), "x", hidden_in.cols());

    // One description, two backends: specs_ is the same sequence
    // workloadTasks() maps to KernelTasks for the simulator.
    DecodeStepResult result;
    MatrixD x = hidden_in;
    // Step-local temporaries threaded between consecutive specs.
    MatrixD ln, qkv, attn, proj, ffn;
    for (std::size_t l = 0; l < model_.layers(); ++l) {
        const QuantizedLayer &layer = model_.layer(l);
        for (const auto &step : specs_) {
            switch (step.op) {
              case LayerOp::LayerNorm1:
                ln = referenceLayerNorm(x);
                break;
              case LayerOp::QkvProj:
                qkv = runGemm(layer.weights(step.op),
                              layer.keys(step.op), ln, result.counters);
                ++result.gemmCalls;
                break;
              case LayerOp::Attention: {
                MatrixD q(h, batch), k(h, batch), v(h, batch);
                for (std::size_t r = 0; r < h; ++r) {
                    for (std::size_t b = 0; b < batch; ++b) {
                        q(r, b) = qkv(r, b);
                        k(r, b) = qkv(h + r, b);
                        v(r, b) = qkv(2 * h + r, b);
                    }
                }
                kCache_[l].push_back(std::move(k));
                vCache_[l].push_back(std::move(v));
                attn = referenceDecodeAttention(q, kCache_[l],
                                                vCache_[l], cfg.heads);
                break;
              }
              case LayerOp::OutProj:
                proj = runGemm(layer.weights(step.op),
                               layer.keys(step.op), attn,
                               result.counters);
                ++result.gemmCalls;
                break;
              case LayerOp::Residual1:
                x = referenceResidualAdd(x, proj);
                break;
              case LayerOp::LayerNorm2:
                ln = referenceLayerNorm(x);
                break;
              case LayerOp::Fc1:
                ffn = runGemm(layer.weights(step.op),
                              layer.keys(step.op), ln, result.counters);
                ++result.gemmCalls;
                break;
              case LayerOp::Gelu:
                ffn = referenceGelu(ffn);
                break;
              case LayerOp::Fc2:
                proj = runGemm(layer.weights(step.op),
                               layer.keys(step.op), ffn,
                               result.counters);
                ++result.gemmCalls;
                break;
              case LayerOp::Residual2:
                x = referenceResidualAdd(x, proj);
                break;
            }
        }
    }
    result.hidden = std::move(x);
    return result;
}

WorkloadOptions
Session::workloadOptions() const
{
    WorkloadOptions opts;
    opts.batch = options_.batch;
    opts.weightBits = options_.quant.weightBits;
    opts.contextLen = options_.contextLen;
    opts.includeVector = options_.includeVector;
    opts.groupSize = options_.quant.groupSize;
    opts.hasOffset = options_.quant.useOffset;
    return opts;
}

std::vector<KernelTask>
Session::workloadTasks() const
{
    return decodeStepWorkload(model_.config(), workloadOptions());
}

WorkloadResult
Session::simulate(const HwConfig &hw) const
{
    const Accelerator acc(hw);
    return acc.runWorkload(workloadTasks());
}

std::size_t
Session::kvLength() const
{
    return kCache_.empty() ? 0 : kCache_.front().size();
}

void
Session::resetKv()
{
    for (auto &steps : kCache_)
        steps.clear();
    for (auto &steps : vCache_)
        steps.clear();
}

} // namespace figlut
