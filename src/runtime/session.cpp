#include "runtime/session.h"

#include "common/logging.h"
#include "model/synthetic.h"
#include "serve/engine.h"

namespace figlut {

Session::Session(const OptConfig &model, const SessionOptions &options)
    : options_(options)
{
    if (options_.batch == 0)
        fatal("Session batch must be positive");
    serve::EngineOptions engineOptions;
    engineOptions.model = options_.quant;
    engineOptions.exec = options_.exec;
    engineOptions.maxBatch = options_.batch;
    engineOptions.maxQueue = 0;
    engineOptions.includeVector = options_.includeVector;
    auto engine = serve::Engine::create(model, engineOptions);
    if (!engine.ok())
        fatal(engine.status().message());
    engine_ = std::move(engine).value();

    // One unbounded request per lock-step sequence; the caller drives
    // every step's input, so the submit-time seed never decodes.
    ids_.reserve(options_.batch);
    for (std::size_t b = 0; b < options_.batch; ++b) {
        serve::RequestOptions req;
        req.maxTokens = 0;
        auto id = engine_->submit(req);
        FIGLUT_ASSERT(id.ok(), "session request ", b, " rejected: ",
                      id.status().toString());
        ids_.push_back(id.value());
    }
}

Session::~Session() = default;

const QuantizedModel &
Session::model() const
{
    return engine_->model();
}

ExecutionContext &
Session::context()
{
    return engine_->context();
}

MatrixD
Session::makeInput(Rng &rng) const
{
    return syntheticActivations(model().config().hidden, options_.batch,
                                rng);
}

DecodeStepResult
Session::runDecodeStep(const MatrixD &hidden_in)
{
    const std::size_t h = model().config().hidden;
    const std::size_t batch = options_.batch;
    if (hidden_in.rows() != h || hidden_in.cols() != batch)
        fatal("decode-step input must be ", h, "x", batch, ", got ",
              hidden_in.rows(), "x", hidden_in.cols());

    MatrixD column(h, 1);
    for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t r = 0; r < h; ++r)
            column(r, 0) = hidden_in(r, b);
        const Status s = engine_->provideInput(ids_[b], column);
        FIGLUT_ASSERT(s.ok(), "session input rejected: ", s.toString());
    }

    auto step = engine_->step();
    FIGLUT_ASSERT(step.ok(), "session step failed: ",
                  step.status().toString());

    DecodeStepResult result;
    result.counters = step.value().counters;
    result.gemmCalls = step.value().gemmCalls;
    result.hidden = MatrixD(h, batch);
    for (std::size_t b = 0; b < batch; ++b) {
        auto snap = engine_->poll(ids_[b]);
        FIGLUT_ASSERT(snap.ok(), "session poll failed: ",
                      snap.status().toString());
        for (std::size_t r = 0; r < h; ++r)
            result.hidden(r, b) = snap.value().hidden(r, 0);
    }
    return result;
}

WorkloadOptions
Session::workloadOptions() const
{
    WorkloadOptions opts;
    opts.batch = options_.batch;
    opts.weightBits = options_.quant.weightBits;
    opts.contextLen = options_.contextLen;
    opts.includeVector = options_.includeVector;
    opts.groupSize = options_.quant.groupSize;
    opts.hasOffset = options_.quant.useOffset;
    // The engine resolved the shard count (knob or FIGLUT_SHARDS) at
    // construction; mirror it so the scored workload prices the same
    // per-GEMM combines the executed one pays.
    opts.shards = engine_->shards();
    return opts;
}

std::vector<KernelTask>
Session::workloadTasks() const
{
    return decodeStepWorkload(model().config(), workloadOptions());
}

WorkloadResult
Session::simulate(const HwConfig &hw) const
{
    const Accelerator acc(hw);
    return acc.runWorkload(workloadTasks());
}

std::size_t
Session::kvLength() const
{
    auto snap = engine_->poll(ids_.front());
    FIGLUT_ASSERT(snap.ok(), "session poll failed: ",
                  snap.status().toString());
    return snap.value().kvLength;
}

KvCache
Session::kv(std::size_t seq) const
{
    if (seq >= ids_.size())
        fatal("session sequence ", seq, " out of ", ids_.size());
    auto history = engine_->kvHistory(ids_[seq]);
    FIGLUT_ASSERT(history.ok(), "session kv history failed: ",
                  history.status().toString());
    return std::move(history).value();
}

void
Session::resetKv()
{
    for (const serve::RequestId id : ids_) {
        const Status s = engine_->resetKv(id);
        FIGLUT_ASSERT(s.ok(), "session kv reset failed: ", s.toString());
    }
}

} // namespace figlut
