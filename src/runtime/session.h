/**
 * @file
 * Inference session: the single-client adapter over serve::Engine.
 *
 * A Session keeps the original "one lock-step batch, caller-driven
 * hidden states" surface — quantize -> pack -> execute behind one
 * object:
 *
 *     Session session(optByName("OPT-125M"), opts);
 *     MatrixD h = session.makeInput(rng);
 *     h = session.runDecodeStep(h).hidden;
 *
 * — but is now a thin wrapper: the constructor builds a serve::Engine
 * sized to the session batch and submits one unbounded request per
 * sequence; runDecodeStep() injects the caller's hidden columns with
 * Engine::provideInput() and runs one fused Engine::step(). The
 * numeric path (Packed LUT-GEMM kernels with pre-packed keys on one
 * shared ExecutionContext, reference vector ops, per-sequence KvCache)
 * is therefore exactly the serving path, and the Session differential
 * suites pin the Engine's per-column arithmetic. Construction-time
 * configuration errors keep the historical fatal() contract: the
 * engine's Status rejections are rethrown as FatalError.
 *
 * A Session is single-client like the Engine it wraps: one session per
 * serving thread. Request-level traffic (dynamic admission, ragged
 * budgets, recoverable errors) wants serve::Engine directly.
 */

#ifndef FIGLUT_RUNTIME_SESSION_H
#define FIGLUT_RUNTIME_SESSION_H

#include <memory>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "core/execution_context.h"
#include "core/lut_gemm.h"
#include "model/workload.h"
#include "runtime/exec_options.h"
#include "runtime/kv_cache.h"
#include "runtime/quantized_model.h"
#include "sim/accelerator.h"

namespace figlut {

namespace serve {
class Engine;
using RequestId = std::uint64_t;
} // namespace serve

/**
 * Full configuration of a Session: the model/exec/request split of the
 * serving surface (runtime/exec_options.h), plus the lock-step batch
 * geometry that is the Session's own request shape.
 */
struct SessionOptions
{
    /** Weight materialization + quantization (see quantized_model.h). */
    QuantizedModelOptions quant;

    /** Host execution of the GEMM kernels (core/lut_gemm.h knobs). */
    ExecOptions exec;

    /** Sequences decoded in parallel (one hidden-state column each). */
    std::size_t batch = 1;
    /**
     * KV-cache length charged to the *analytic* attention cost
     * (workloadTasks()/simulate()). The numeric path attends over the
     * KV entries actually cached so far (kvLength()).
     */
    std::size_t contextLen = 512;
    /** Keep vector kernels in the emitted KernelTask list. */
    bool includeVector = true;
};

/** Result of one numeric decode step. */
struct DecodeStepResult
{
    /** Next hidden state, hidden x batch. */
    MatrixD hidden;
    /** Kernel op counters accumulated over the step's GEMMs. */
    LutGemmCounters counters;
    /** Weight GEMMs executed (4 per layer). */
    std::size_t gemmCalls = 0;
};

/** A live inference session over one quantized model. */
class Session
{
  public:
    /**
     * Build the session: materialize + quantize + pack every layer's
     * weights (the one-time cost), spawn no threads yet (the pool is
     * lazy in the first blocked GEMM call). Throws FatalError on an
     * invalid configuration (the recoverable form of the same checks
     * is serve::Engine::create).
     */
    Session(const OptConfig &model, const SessionOptions &options);
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    const QuantizedModel &model() const;
    const SessionOptions &options() const { return options_; }
    ExecutionContext &context();

    /** Synthetic hidden-state input, hidden x batch (model/synthetic.h). */
    MatrixD makeInput(Rng &rng) const;

    /**
     * Execute one full decode step numerically: every layer's GEMMs
     * through the LUT-GEMM kernel and its vector steps as reference
     * ops. hidden_in must be hidden x batch. Appends one KV entry per
     * layer (kvLength() grows by 1).
     */
    DecodeStepResult runDecodeStep(const MatrixD &hidden_in);

    /** The WorkloadOptions describing this session's decode step. */
    WorkloadOptions workloadOptions() const;

    /**
     * The executed layer graph as KernelTasks — element-for-element
     * equal to decodeStepWorkload(model().config(), workloadOptions()).
     */
    std::vector<KernelTask> workloadTasks() const;

    /** Score the emitted graph on a simulated accelerator. */
    WorkloadResult simulate(const HwConfig &hw) const;

    /** Decode steps currently held in the KV cache. */
    std::size_t kvLength() const;

    /**
     * KV history of sequence `seq` (batch column seq): one h x 1
     * snapshot per decode step and layer, by value.
     */
    KvCache kv(std::size_t seq = 0) const;

    /** Drop the KV cache (start a fresh sequence; weights persist). */
    void resetKv();

    /** The underlying request-level engine (advanced use). */
    serve::Engine &engine() { return *engine_; }

  private:
    SessionOptions options_;
    std::unique_ptr<serve::Engine> engine_;
    /** One unbounded engine request per batch column, column order. */
    std::vector<serve::RequestId> ids_;
};

} // namespace figlut

#endif // FIGLUT_RUNTIME_SESSION_H
