/**
 * @file
 * Inference session: quantize -> pack -> execute behind one object.
 *
 * A Session owns a QuantizedModel (per-layer BCQ planes + packed LUT
 * keys, built once) and an ExecutionContext (persistent ThreadPool +
 * kernel workspace), and makes "run an OPT decode step for real" a
 * three-line program:
 *
 *     Session session(optByName("OPT-125M"), opts);
 *     MatrixD h = session.makeInput(rng);
 *     h = session.runDecodeStep(h).hidden;
 *
 * The decode step is the layer sequence of model/workload.h
 * (layerSpecs): weight GEMMs run numerically through the LUT-GEMM
 * kernel (Packed backend by default, pre-packed keys, shared context),
 * vector steps run as reference ops (runtime/reference_ops.h) over a
 * per-layer KV cache that grows one entry per step. The *same* spec
 * sequence maps to the KernelTask list (workloadTasks()) that
 * sim/Accelerator scores — one description, two backends, so the
 * timing/energy estimate is for exactly the workload that was
 * executed.
 *
 * A Session is single-client like its ExecutionContext: one session
 * per serving thread. All stochastic inputs are deterministic in the
 * configured seeds.
 */

#ifndef FIGLUT_RUNTIME_SESSION_H
#define FIGLUT_RUNTIME_SESSION_H

#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "core/execution_context.h"
#include "core/lut_gemm.h"
#include "model/workload.h"
#include "runtime/quantized_model.h"
#include "sim/accelerator.h"

namespace figlut {

/** Full configuration of a Session. */
struct SessionOptions
{
    /** Weight materialization + quantization (see quantized_model.h). */
    QuantizedModelOptions quant;

    /** Sequences decoded in parallel (one hidden-state column each). */
    std::size_t batch = 1;
    /**
     * KV-cache length charged to the *analytic* attention cost
     * (workloadTasks()/simulate()). The numeric path attends over the
     * KV entries actually cached so far (kvLength()).
     */
    std::size_t contextLen = 512;
    /** Keep vector kernels in the emitted KernelTask list. */
    bool includeVector = true;

    /** Host execution of the GEMM kernels (core/lut_gemm.h knobs). */
    LutGemmBackend backend = LutGemmBackend::Packed;
    int threads = 0;    ///< workers, <= 0 = hardware concurrency
    int blockRows = 64; ///< rows per M-tile work item
    ActFormat actFormat = ActFormat::FP16;
    FpArith arith = FpArith::Fp32;
    bool preAligned = true; ///< FIGLUT-I integer path
    int alignFracBits = 24;
    bool useHalfLut = true;
    bool useGeneratorTree = true;
};

/** Result of one numeric decode step. */
struct DecodeStepResult
{
    /** Next hidden state, hidden x batch. */
    MatrixD hidden;
    /** Kernel op counters accumulated over the step's GEMMs. */
    LutGemmCounters counters;
    /** Weight GEMMs executed (4 per layer). */
    std::size_t gemmCalls = 0;
};

/** A live inference session over one quantized model. */
class Session
{
  public:
    /**
     * Build the session: materialize + quantize + pack every layer's
     * weights (the one-time cost), spawn no threads yet (the pool is
     * lazy in the first blocked GEMM call).
     */
    Session(const OptConfig &model, const SessionOptions &options);

    const QuantizedModel &model() const { return model_; }
    const SessionOptions &options() const { return options_; }
    ExecutionContext &context() { return ctx_; }

    /** Synthetic hidden-state input, hidden x batch (model/synthetic.h). */
    MatrixD makeInput(Rng &rng) const;

    /**
     * Execute one full decode step numerically: every layer's GEMMs
     * through the LUT-GEMM kernel and its vector steps as reference
     * ops. hidden_in must be hidden x batch. Appends one KV entry per
     * layer (kvLength() grows by 1).
     */
    DecodeStepResult runDecodeStep(const MatrixD &hidden_in);

    /** The WorkloadOptions describing this session's decode step. */
    WorkloadOptions workloadOptions() const;

    /**
     * The executed layer graph as KernelTasks — element-for-element
     * equal to decodeStepWorkload(model().config(), workloadOptions()).
     */
    std::vector<KernelTask> workloadTasks() const;

    /** Score the emitted graph on a simulated accelerator. */
    WorkloadResult simulate(const HwConfig &hw) const;

    /** Decode steps currently held in the KV cache. */
    std::size_t kvLength() const;

    /** Drop the KV cache (start a fresh sequence; weights persist). */
    void resetKv();

  private:
    LutGemmConfig gemmConfig() const;
    MatrixD runGemm(const BcqTensor &w, const PackedLutKeys &keys,
                    const MatrixD &x, LutGemmCounters &counters);

    QuantizedModel model_;
    SessionOptions options_;
    ExecutionContext ctx_;
    /** Cached layer description (construction-invariant). */
    std::vector<LayerStepSpec> specs_;
    /** Per-layer KV snapshots, one hidden x batch matrix per step. */
    std::vector<std::vector<MatrixD>> kCache_;
    std::vector<std::vector<MatrixD>> vCache_;
};

} // namespace figlut

#endif // FIGLUT_RUNTIME_SESSION_H
