#include "runtime/kv_cache.h"

#include "common/logging.h"

namespace figlut {

void
KvCache::append(std::size_t layer, MatrixD k, MatrixD v)
{
    if (layer >= k_.size())
        fatal("KvCache layer ", layer, " out of ", k_.size());
    if (k.rows() != v.rows() || k.cols() != v.cols())
        fatal("KvCache K/V shape mismatch: ", k.rows(), "x", k.cols(),
              " vs ", v.rows(), "x", v.cols());
    if (!k_[layer].empty() &&
        (k.rows() != k_[layer].front().rows() ||
         k.cols() != k_[layer].front().cols()))
        fatal("KvCache step shape changed mid-sequence: ", k.rows(), "x",
              k.cols(), " vs cached ", k_[layer].front().rows(), "x",
              k_[layer].front().cols());
    k_[layer].push_back(std::move(k));
    v_[layer].push_back(std::move(v));
}

const std::vector<MatrixD> &
KvCache::keys(std::size_t layer) const
{
    if (layer >= k_.size())
        fatal("KvCache layer ", layer, " out of ", k_.size());
    return k_[layer];
}

const std::vector<MatrixD> &
KvCache::values(std::size_t layer) const
{
    if (layer >= v_.size())
        fatal("KvCache layer ", layer, " out of ", v_.size());
    return v_[layer];
}

void
KvCache::clear()
{
    for (auto &steps : k_)
        steps.clear();
    for (auto &steps : v_)
        steps.clear();
}

std::size_t
KvCache::bytes() const
{
    std::size_t doubles = 0;
    for (const auto &steps : k_)
        for (const auto &m : steps)
            doubles += m.size();
    for (const auto &steps : v_)
        for (const auto &m : steps)
            doubles += m.size();
    return doubles * sizeof(double);
}

} // namespace figlut
