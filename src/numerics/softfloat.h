/**
 * @file
 * Generic IEEE-754 binary rounding machinery.
 *
 * FIGLUT's accuracy evaluation (Table IV) needs *bit-exact* emulation of
 * narrow floating-point formats on the host. The core primitive is
 * "round this double to a (mant_bits, exp_bits) binary format with
 * round-to-nearest-even", implemented without relying on the host FPU
 * rounding mode.
 *
 * Correctness argument used throughout: the sum or product of two
 * binary16 (or bfloat16) values is exactly representable in an IEEE
 * double (demonstrably: worst-case alignment spans < 53 mantissa bits),
 * so compute-in-double followed by one explicit RNE rounding step equals
 * the correctly-rounded narrow operation.
 */

#ifndef FIGLUT_NUMERICS_SOFTFLOAT_H
#define FIGLUT_NUMERICS_SOFTFLOAT_H

#include <cstdint>

namespace figlut {

/** Static description of an IEEE-754 style binary interchange format. */
struct FpSpec
{
    int mantBits;  ///< explicit mantissa (fraction) bits
    int expBits;   ///< exponent field width

    constexpr int bias() const { return (1 << (expBits - 1)) - 1; }
    constexpr int maxExp() const { return bias(); }          ///< unbiased
    constexpr int minExp() const { return 1 - bias(); }      ///< normal min
    constexpr int totalBits() const { return 1 + expBits + mantBits; }
};

/** binary16: 1 sign, 5 exponent, 10 mantissa. */
inline constexpr FpSpec kFp16Spec{10, 5};
/** bfloat16: 1 sign, 8 exponent, 7 mantissa. */
inline constexpr FpSpec kBf16Spec{7, 8};
/** binary32 (for completeness; host float is used directly). */
inline constexpr FpSpec kFp32Spec{23, 8};

/**
 * Round a double to the given format with round-to-nearest-even.
 *
 * Handles signed zero, subnormals, overflow-to-infinity and NaN
 * (canonical quiet NaN). The result is the format's bit pattern in the
 * low bits of the return value.
 */
uint32_t roundToFormat(double x, const FpSpec &spec);

/** Decode a format bit pattern back to double (exact). */
double decodeFormat(uint32_t bits, const FpSpec &spec);

/**
 * Units-in-the-last-place distance between two bit patterns of the same
 * format, treating the patterns as lexicographically ordered signed
 * magnitudes. NaNs compare at maximum distance.
 */
uint32_t ulpDistance(uint32_t a, uint32_t b, const FpSpec &spec);

} // namespace figlut

#endif // FIGLUT_NUMERICS_SOFTFLOAT_H
