#include "numerics/fp_format.h"

#include <algorithm>
#include <cctype>

#include "common/logging.h"

namespace figlut {

std::string
actFormatName(ActFormat fmt)
{
    switch (fmt) {
      case ActFormat::FP16: return "FP16";
      case ActFormat::BF16: return "BF16";
      case ActFormat::FP32: return "FP32";
    }
    panic("unknown ActFormat value ", static_cast<int>(fmt));
}

const FpSpec &
actFormatSpec(ActFormat fmt)
{
    switch (fmt) {
      case ActFormat::FP16: return kFp16Spec;
      case ActFormat::BF16: return kBf16Spec;
      case ActFormat::FP32: return kFp32Spec;
    }
    panic("unknown ActFormat value ", static_cast<int>(fmt));
}

int
significandBits(ActFormat fmt)
{
    return actFormatSpec(fmt).mantBits + 1;
}

int
storageBits(ActFormat fmt)
{
    return fmt == ActFormat::FP32 ? 32 : 16;
}

double
quantizeToFormat(double v, ActFormat fmt)
{
    if (fmt == ActFormat::FP32) {
        // Host float is IEEE binary32; a single narrowing conversion is
        // the correctly rounded operation.
        return static_cast<double>(static_cast<float>(v));
    }
    const FpSpec &spec = actFormatSpec(fmt);
    return decodeFormat(roundToFormat(v, spec), spec);
}

uint32_t
encodeFormat(double v, ActFormat fmt)
{
    if (fmt == ActFormat::FP32) {
        const float f = static_cast<float>(v);
        uint32_t bits;
        static_assert(sizeof(bits) == sizeof(f));
        __builtin_memcpy(&bits, &f, sizeof(bits));
        return bits;
    }
    return roundToFormat(v, actFormatSpec(fmt));
}

ActFormat
parseActFormat(const std::string &name)
{
    std::string up = name;
    std::transform(up.begin(), up.end(), up.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    if (up == "FP16")
        return ActFormat::FP16;
    if (up == "BF16")
        return ActFormat::BF16;
    if (up == "FP32")
        return ActFormat::FP32;
    fatal("unknown activation format '", name,
          "' (expected FP16, BF16 or FP32)");
}

} // namespace figlut
