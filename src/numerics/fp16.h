/**
 * @file
 * Bit-exact IEEE-754 binary16 value type.
 *
 * Arithmetic helpers compute in double (exact for any single binary16
 * add/mul, see softfloat.h) and round once with RNE, so they match a
 * correctly-rounded hardware FP16 unit bit for bit.
 */

#ifndef FIGLUT_NUMERICS_FP16_H
#define FIGLUT_NUMERICS_FP16_H

#include <cstdint>

#include "numerics/softfloat.h"

namespace figlut {

/** IEEE binary16 stored as its 16-bit pattern. */
class Fp16
{
  public:
    Fp16() = default;

    /** Round a double into binary16 (RNE). */
    static Fp16 fromDouble(double v);

    /** Round a float into binary16 (RNE). */
    static Fp16 fromFloat(float v) { return fromDouble(v); }

    /** Adopt a raw bit pattern. */
    static Fp16 fromBits(uint16_t bits);

    /** Exact widening to double. */
    double toDouble() const;

    /** Widening to float (exact: binary16 values fit in binary32). */
    float toFloat() const { return static_cast<float>(toDouble()); }

    uint16_t bits() const { return bits_; }

    bool isNan() const;
    bool isInf() const;
    bool isZero() const;

    /** Correctly-rounded binary16 sum. */
    static Fp16 add(Fp16 a, Fp16 b);

    /** Correctly-rounded binary16 product. */
    static Fp16 mul(Fp16 a, Fp16 b);

    /** Negation (sign-bit flip; exact). */
    Fp16 negate() const { return fromBits(bits_ ^ 0x8000u); }

    bool operator==(const Fp16 &o) const { return bits_ == o.bits_; }

  private:
    uint16_t bits_ = 0;
};

/** ULP distance between two binary16 values. */
uint32_t ulpDistance(Fp16 a, Fp16 b);

} // namespace figlut

#endif // FIGLUT_NUMERICS_FP16_H
