/**
 * @file
 * Runtime descriptor for the activation formats the engines support.
 *
 * The paper evaluates every engine for FP16, BF16 and FP32 activations
 * (Figs. 13-15). ActFormat carries the format identity through the
 * functional kernels, the datapath-width-dependent area/energy models,
 * and the accuracy harness.
 */

#ifndef FIGLUT_NUMERICS_FP_FORMAT_H
#define FIGLUT_NUMERICS_FP_FORMAT_H

#include <cstdint>
#include <string>

#include "numerics/softfloat.h"

namespace figlut {

/** Floating-point activation format. */
enum class ActFormat
{
    FP16,
    BF16,
    FP32,
};

/** All supported formats, in paper order. */
inline constexpr ActFormat kAllActFormats[] = {
    ActFormat::FP16, ActFormat::BF16, ActFormat::FP32};

/** Human-readable name ("FP16", ...). */
std::string actFormatName(ActFormat fmt);

/** IEEE field layout of the format. */
const FpSpec &actFormatSpec(ActFormat fmt);

/** Significand width including the hidden bit (11 / 8 / 24). */
int significandBits(ActFormat fmt);

/** Storage width in bits (16 / 16 / 32). */
int storageBits(ActFormat fmt);

/**
 * Round a double through the format and back (RNE).
 *
 * This is the canonical "this value lives in format fmt" operation used
 * when generating activations for the accuracy experiments.
 */
double quantizeToFormat(double v, ActFormat fmt);

/** Bit pattern of v in the format (low bits of the result). */
uint32_t encodeFormat(double v, ActFormat fmt);

/** Parse "FP16"/"BF16"/"FP32" (case-insensitive); throws FatalError. */
ActFormat parseActFormat(const std::string &name);

} // namespace figlut

#endif // FIGLUT_NUMERICS_FP_FORMAT_H
