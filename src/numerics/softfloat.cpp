#include "numerics/softfloat.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace figlut {

namespace {

/** Round a non-negative exact double to the nearest integer, ties even. */
double
rneToInteger(double y)
{
    const double f = std::floor(y);
    const double d = y - f;
    if (d > 0.5)
        return f + 1.0;
    if (d < 0.5)
        return f;
    // Tie: round to even.
    return (std::fmod(f, 2.0) == 0.0) ? f : f + 1.0;
}

} // namespace

uint32_t
roundToFormat(double x, const FpSpec &spec)
{
    const int mant = spec.mantBits;
    const uint32_t sign_bit = 1u << (spec.expBits + mant);
    const uint32_t exp_mask = ((1u << spec.expBits) - 1u) << mant;
    const uint32_t mant_mask = (1u << mant) - 1u;

    if (std::isnan(x))
        return exp_mask | (1u << (mant - 1)); // canonical qNaN

    const bool negative = std::signbit(x);
    const uint32_t sign = negative ? sign_bit : 0u;
    double a = std::fabs(x);

    if (a == 0.0)
        return sign; // signed zero

    if (std::isinf(x))
        return sign | exp_mask;

    int e = 0;
    // a = m * 2^e with m in [0.5, 1)  =>  significand s = 2m in [1, 2).
    (void)std::frexp(a, &e);
    int unbiased = e - 1;

    if (unbiased >= spec.minExp()) {
        // Normal candidate: scale so the significand occupies
        // [2^mant, 2^(mant+1)), then round.
        double scaled = std::ldexp(a, mant - unbiased);
        double r = rneToInteger(scaled);
        if (r >= std::ldexp(1.0, mant + 1)) {
            // Carry out of the mantissa: exponent grows by one.
            r = std::ldexp(1.0, mant);
            ++unbiased;
        }
        if (unbiased > spec.maxExp())
            return sign | exp_mask; // overflow -> infinity
        const auto mant_bits =
            static_cast<uint32_t>(r - std::ldexp(1.0, mant));
        const auto exp_field =
            static_cast<uint32_t>(unbiased + spec.bias());
        return sign | (exp_field << mant) | (mant_bits & mant_mask);
    }

    // Subnormal candidate: fixed scale 2^(mant - minExp).
    double scaled = std::ldexp(a, mant - spec.minExp());
    double r = rneToInteger(scaled);
    if (r >= std::ldexp(1.0, mant)) {
        // Rounded up into the smallest normal.
        return sign | (1u << mant);
    }
    return sign | static_cast<uint32_t>(r);
}

double
decodeFormat(uint32_t bits, const FpSpec &spec)
{
    const int mant = spec.mantBits;
    const uint32_t sign_bit = 1u << (spec.expBits + mant);
    const uint32_t exp_field = (bits >> mant) & ((1u << spec.expBits) - 1u);
    const uint32_t mant_field = bits & ((1u << mant) - 1u);
    const double sign = (bits & sign_bit) ? -1.0 : 1.0;

    if (exp_field == ((1u << spec.expBits) - 1u)) {
        if (mant_field)
            return std::nan("");
        return sign * std::numeric_limits<double>::infinity();
    }
    if (exp_field == 0) {
        // Subnormal (or zero): value = mant * 2^(minExp - mantBits).
        return sign * std::ldexp(static_cast<double>(mant_field),
                                 spec.minExp() - mant);
    }
    const int unbiased = static_cast<int>(exp_field) - spec.bias();
    const double significand =
        1.0 + std::ldexp(static_cast<double>(mant_field), -mant);
    return sign * std::ldexp(significand, unbiased);
}

uint32_t
ulpDistance(uint32_t a, uint32_t b, const FpSpec &spec)
{
    const uint32_t sign_bit = 1u << (spec.expBits + spec.mantBits);
    const uint32_t exp_mask =
        ((1u << spec.expBits) - 1u) << spec.mantBits;
    const uint32_t mant_mask = (1u << spec.mantBits) - 1u;

    auto is_nan = [&](uint32_t v) {
        return (v & exp_mask) == exp_mask && (v & mant_mask) != 0;
    };
    if (is_nan(a) || is_nan(b))
        return ~0u;

    // Map sign-magnitude onto a monotone integer line.
    auto order = [&](uint32_t v) -> int64_t {
        const int64_t mag = static_cast<int64_t>(v & (sign_bit - 1u));
        return (v & sign_bit) ? -mag : mag;
    };
    const int64_t d = order(a) - order(b);
    const int64_t m = d < 0 ? -d : d;
    return static_cast<uint32_t>(m);
}

} // namespace figlut
