#include "numerics/prealign.h"

#include <cmath>

#include "common/logging.h"

namespace figlut {

double
AlignedBlock::scale() const
{
    return std::ldexp(1.0, sharedExp - fracBits);
}

double
AlignedBlock::valueAt(std::size_t i) const
{
    FIGLUT_ASSERT(i < mantissas.size(), "aligned index out of range");
    return static_cast<double>(mantissas[i]) * scale();
}

AlignedBlock
preAlign(const std::vector<double> &values, ActFormat fmt, int frac_bits,
         AlignRounding rounding)
{
    if (frac_bits < 2 || frac_bits > 60)
        fatal("pre-alignment fraction bits must be in [2, 60], got ",
              frac_bits);

    AlignedBlock block;
    block.fracBits = frac_bits;
    block.mantissas.resize(values.size(), 0);

    // Find the maximum exponent across the block.
    int max_exp = 0;
    bool any = false;
    std::vector<double> quantized(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
        const double q = quantizeToFormat(values[i], fmt);
        if (std::isnan(q) || std::isinf(q))
            fatal("pre-alignment input ", i, " is not finite");
        quantized[i] = q;
        if (q != 0.0) {
            int e = 0;
            (void)std::frexp(std::fabs(q), &e);
            const int unbiased = e - 1;
            max_exp = any ? std::max(max_exp, unbiased) : unbiased;
            any = true;
        }
    }
    if (!any) {
        block.allZero = true;
        block.sharedExp = 0;
        return block;
    }
    block.allZero = false;
    block.sharedExp = max_exp;

    // Express each value as m * 2^(sharedExp - fracBits).
    for (std::size_t i = 0; i < values.size(); ++i) {
        const double scaled =
            std::ldexp(quantized[i], frac_bits - max_exp);
        double m = 0.0;
        switch (rounding) {
          case AlignRounding::Truncate:
            m = std::trunc(scaled);
            break;
          case AlignRounding::NearestEven: {
            const double f = std::floor(scaled);
            const double d = scaled - f;
            if (d > 0.5) {
                m = f + 1.0;
            } else if (d < 0.5) {
                m = f;
            } else {
                m = (std::fmod(f, 2.0) == 0.0) ? f : f + 1.0;
            }
            break;
          }
        }
        block.mantissas[i] = static_cast<int64_t>(m);
    }
    return block;
}

double
alignedDot(const AlignedBlock &block, const std::vector<int32_t> &weights)
{
    FIGLUT_ASSERT(weights.size() == block.mantissas.size(),
                  "aligned dot length mismatch: ", weights.size(), " vs ",
                  block.mantissas.size());
    __int128 acc = 0;
    for (std::size_t i = 0; i < weights.size(); ++i)
        acc += static_cast<__int128>(block.mantissas[i]) * weights[i];
    return static_cast<double>(acc) * block.scale();
}

int64_t
alignedSignedSum(const AlignedBlock &block,
                 const std::vector<int8_t> &signs)
{
    FIGLUT_ASSERT(signs.size() == block.mantissas.size(),
                  "aligned signed sum length mismatch");
    int64_t acc = 0;
    for (std::size_t i = 0; i < signs.size(); ++i) {
        FIGLUT_ASSERT(signs[i] == 1 || signs[i] == -1,
                      "sign must be +1 or -1, got ", int(signs[i]));
        acc += signs[i] > 0 ? block.mantissas[i] : -block.mantissas[i];
    }
    return acc;
}

} // namespace figlut
