#include "numerics/bf16.h"

namespace figlut {

Bf16
Bf16::fromDouble(double v)
{
    Bf16 h;
    h.bits_ = static_cast<uint16_t>(roundToFormat(v, kBf16Spec));
    return h;
}

Bf16
Bf16::fromBits(uint16_t bits)
{
    Bf16 h;
    h.bits_ = bits;
    return h;
}

double
Bf16::toDouble() const
{
    return decodeFormat(bits_, kBf16Spec);
}

bool
Bf16::isNan() const
{
    return (bits_ & 0x7F80u) == 0x7F80u && (bits_ & 0x007Fu) != 0;
}

bool
Bf16::isInf() const
{
    return (bits_ & 0x7FFFu) == 0x7F80u;
}

bool
Bf16::isZero() const
{
    return (bits_ & 0x7FFFu) == 0;
}

Bf16
Bf16::add(Bf16 a, Bf16 b)
{
    return fromDouble(a.toDouble() + b.toDouble());
}

Bf16
Bf16::mul(Bf16 a, Bf16 b)
{
    return fromDouble(a.toDouble() * b.toDouble());
}

uint32_t
ulpDistance(Bf16 a, Bf16 b)
{
    return ulpDistance(a.bits(), b.bits(), kBf16Spec);
}

} // namespace figlut
