#include "numerics/fp16.h"

namespace figlut {

Fp16
Fp16::fromDouble(double v)
{
    Fp16 h;
    h.bits_ = static_cast<uint16_t>(roundToFormat(v, kFp16Spec));
    return h;
}

Fp16
Fp16::fromBits(uint16_t bits)
{
    Fp16 h;
    h.bits_ = bits;
    return h;
}

double
Fp16::toDouble() const
{
    return decodeFormat(bits_, kFp16Spec);
}

bool
Fp16::isNan() const
{
    return (bits_ & 0x7C00u) == 0x7C00u && (bits_ & 0x03FFu) != 0;
}

bool
Fp16::isInf() const
{
    return (bits_ & 0x7FFFu) == 0x7C00u;
}

bool
Fp16::isZero() const
{
    return (bits_ & 0x7FFFu) == 0;
}

Fp16
Fp16::add(Fp16 a, Fp16 b)
{
    return fromDouble(a.toDouble() + b.toDouble());
}

Fp16
Fp16::mul(Fp16 a, Fp16 b)
{
    return fromDouble(a.toDouble() * b.toDouble());
}

uint32_t
ulpDistance(Fp16 a, Fp16 b)
{
    return ulpDistance(a.bits(), b.bits(), kFp16Spec);
}

} // namespace figlut
