/**
 * @file
 * Mantissa pre-alignment: the FP->INT conversion trick shared by iFPU,
 * FIGNA and FIGLUT-I.
 *
 * A block of floating-point activations is aligned to the maximum
 * exponent in the block: every value becomes a signed integer mantissa
 * scaled by a single shared power of two. All subsequent arithmetic
 * (adds for the bit-serial engines, multiplies for FIGNA) is plain
 * integer arithmetic; one FP multiply per output restores the scale.
 *
 * Alignment is lossy for values much smaller than the block maximum;
 * the fraction-bit budget (`fracBits`) controls that loss and mirrors
 * the aligned-mantissa datapath width of the hardware.
 */

#ifndef FIGLUT_NUMERICS_PREALIGN_H
#define FIGLUT_NUMERICS_PREALIGN_H

#include <cstdint>
#include <vector>

#include "numerics/fp_format.h"

namespace figlut {

/** Rounding applied when shifting mantissas right during alignment. */
enum class AlignRounding
{
    Truncate,       ///< drop shifted-out bits (cheapest hardware)
    NearestEven,    ///< RNE on the shifted-out fraction
};

/** A block of activations re-expressed on a shared exponent. */
struct AlignedBlock
{
    /** value[i] ~= mantissas[i] * 2^(sharedExp - fracBits). */
    std::vector<int64_t> mantissas;
    int sharedExp = 0;   ///< unbiased exponent of the block maximum
    int fracBits = 0;    ///< fraction bits kept below the shared exponent
    bool allZero = true; ///< no non-zero finite input present

    /** Exact double value represented by mantissa index i. */
    double valueAt(std::size_t i) const;

    /** Scale factor 2^(sharedExp - fracBits) as a double. */
    double scale() const;
};

/**
 * Pre-align a block of format-`fmt` activations.
 *
 * @param values     activation values (assumed already representable in
 *                   fmt; they are re-quantized defensively)
 * @param fmt        activation format (decides the input mantissa width)
 * @param frac_bits  aligned datapath fraction width; defaults (24) give
 *                   the near-lossless behaviour reported by iFPU/FIGNA
 * @param rounding   shift-out rounding mode
 */
AlignedBlock preAlign(const std::vector<double> &values, ActFormat fmt,
                      int frac_bits = 24,
                      AlignRounding rounding = AlignRounding::NearestEven);

/**
 * Integer dot product between aligned mantissas and small integer
 * weights, with the result returned as an exact double
 * (sum * 2^(sharedExp - fracBits)).
 *
 * Weight values must fit in 32 bits; the accumulation uses __int128 so
 * it cannot overflow for any realistic block length.
 */
double alignedDot(const AlignedBlock &block,
                  const std::vector<int32_t> &weights);

/** Sum of a subset of mantissas with per-element signs (+1/-1). */
int64_t alignedSignedSum(const AlignedBlock &block,
                         const std::vector<int8_t> &signs);

} // namespace figlut

#endif // FIGLUT_NUMERICS_PREALIGN_H
