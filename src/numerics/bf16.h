/**
 * @file
 * Bit-exact bfloat16 value type (1/8/7 layout), mirroring Fp16.
 */

#ifndef FIGLUT_NUMERICS_BF16_H
#define FIGLUT_NUMERICS_BF16_H

#include <cstdint>

#include "numerics/softfloat.h"

namespace figlut {

/** bfloat16 stored as its 16-bit pattern. */
class Bf16
{
  public:
    Bf16() = default;

    /** Round a double into bfloat16 (RNE). */
    static Bf16 fromDouble(double v);
    static Bf16 fromFloat(float v) { return fromDouble(v); }
    static Bf16 fromBits(uint16_t bits);

    /** Exact widening to double. */
    double toDouble() const;
    float toFloat() const { return static_cast<float>(toDouble()); }

    uint16_t bits() const { return bits_; }

    bool isNan() const;
    bool isInf() const;
    bool isZero() const;

    /** Correctly-rounded bfloat16 sum. */
    static Bf16 add(Bf16 a, Bf16 b);

    /** Correctly-rounded bfloat16 product. */
    static Bf16 mul(Bf16 a, Bf16 b);

    Bf16 negate() const { return fromBits(bits_ ^ 0x8000u); }

    bool operator==(const Bf16 &o) const { return bits_ == o.bits_; }

  private:
    uint16_t bits_ = 0;
};

/** ULP distance between two bfloat16 values. */
uint32_t ulpDistance(Bf16 a, Bf16 b);

} // namespace figlut

#endif // FIGLUT_NUMERICS_BF16_H
