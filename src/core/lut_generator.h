/**
 * @file
 * The efficient LUT generator (paper Section III-E, Fig. 11).
 *
 * The generator produces the 2^(mu-1) hFFLUT entries with a two-step
 * tree: the group is split into an upper part (first h = ceil(mu/2)
 * activations, whose leading sign is pinned to + by the half-table
 * symmetry) and a lower part (remaining l = mu - h activations, all
 * sign combinations). Upper and lower partial patterns are computed
 * once and every (upper, lower) pair is combined with a single add.
 *
 * Adder accounting for mu = 4 reproduces the paper's numbers exactly:
 * 2 (upper) + 4 (lower) + 8 (combine) = 14 additions versus the
 * straightforward 2^(mu-1) * (mu-1) = 24, a 42% reduction.
 */

#ifndef FIGLUT_CORE_LUT_GENERATOR_H
#define FIGLUT_CORE_LUT_GENERATOR_H

#include <cstdint>
#include <vector>

#include "core/half_lut.h"
#include "core/lut.h"

namespace figlut {

/** Addition-count accounting for one LUT generation. */
struct GeneratorStats
{
    int mu = 0;
    uint64_t upperAdds = 0;    ///< adds producing upper patterns
    uint64_t lowerAdds = 0;    ///< adds producing lower patterns
    uint64_t combineAdds = 0;  ///< adds joining upper x lower
    uint64_t treeAdds = 0;     ///< total adds in the tree generator
    uint64_t naiveAdds = 0;    ///< 2^(mu-1) * (mu-1) baseline
    double savingRatio = 0.0;  ///< 1 - tree/naive
};

/** Static adder accounting for a given mu (no values computed). */
GeneratorStats lutGeneratorAdderCount(int mu);

/**
 * Tree-based LUT generator.
 *
 * Values are computed in the physical adder order of the hardware tree
 * so that FP rounding behaviour matches the modeled datapath; integer
 * generation is exact.
 */
class LutGenerator
{
  public:
    LutGenerator(int mu, FpArith mode);

    int mu() const { return mu_; }
    FpArith mode() const { return mode_; }

    /** Generate the half table for a group of mu FP activations. */
    HalfLutD generateHalf(const std::vector<double> &xs) const;

    /** Generate the half table over pre-aligned integer mantissas. */
    HalfLutI generateHalfInt(const std::vector<int64_t> &xs) const;

    /**
     * Generate the full mirrored table (2^mu entries) into
     * caller-owned storage, with the tree's physical adder order: the
     * MSB = 1 half holds the tree-generated entries and every MSB = 0
     * entry is the negated complement, so out[key] is bit-identical to
     * the hFFLUT decoder read of generateHalf() for every key. Backs
     * the flat LUT arenas of the LUT-GEMM kernel (no allocation).
     */
    void generateFullInto(const double *xs, double *out) const;

    /** Integer-mantissa variant of generateFullInto() (exact). */
    void generateFullIntInto(const int64_t *xs, int64_t *out) const;

    /** Adder accounting for this generator's mu. */
    const GeneratorStats &stats() const { return stats_; }

  private:
    int mu_;
    FpArith mode_;
    GeneratorStats stats_;
};

} // namespace figlut

#endif // FIGLUT_CORE_LUT_GENERATOR_H
