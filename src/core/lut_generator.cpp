#include "core/lut_generator.h"

#include "common/logging.h"

namespace figlut {

GeneratorStats
lutGeneratorAdderCount(int mu)
{
    FIGLUT_ASSERT(mu >= 2 && mu <= kMaxMu,
                  "generator accounting needs mu in [2, ", kMaxMu, "]");
    GeneratorStats s;
    s.mu = mu;

    const int h = (mu + 1) / 2;   // upper part size (leading sign fixed)
    const int l = mu - h;         // lower part size (all signs free)

    // Upper: 2^(h-1) patterns, each chains h-1 adds.
    s.upperAdds = static_cast<uint64_t>(lutEntries(h - 1)) *
                  static_cast<uint64_t>(h - 1);
    // Lower: 2^l patterns, each chains l-1 adds (l = 1 costs nothing:
    // +x and -x are wire/sign taps).
    s.lowerAdds = l >= 1
                      ? static_cast<uint64_t>(lutEntries(l)) *
                            static_cast<uint64_t>(l - 1)
                      : 0;
    // Combine: one add per (upper, lower) pair = 2^(mu-1).
    s.combineAdds = l >= 1 ? lutEntries(mu - 1) : 0;

    s.treeAdds = s.upperAdds + s.lowerAdds + s.combineAdds;
    s.naiveAdds = static_cast<uint64_t>(lutEntries(mu - 1)) *
                  static_cast<uint64_t>(mu - 1);
    s.savingRatio =
        s.naiveAdds
            ? 1.0 - static_cast<double>(s.treeAdds) /
                        static_cast<double>(s.naiveAdds)
            : 0.0;
    return s;
}

LutGenerator::LutGenerator(int mu, FpArith mode)
    : mu_(mu), mode_(mode), stats_(lutGeneratorAdderCount(mu))
{}

void
LutGenerator::generateFullInto(const double *xs, double *out) const
{
    const int h = (mu_ + 1) / 2;
    const int l = mu_ - h;

    // Upper patterns: leading sign fixed +; bits enumerate signs of
    // x2..xh (bit value 1 => +), MSB-first to match key layout.
    const uint32_t upper_n = lutEntries(h - 1);
    std::vector<double> upper(upper_n, 0.0);
    for (uint32_t u = 0; u < upper_n; ++u) {
        double acc = fpRound(xs[0], mode_);
        for (int j = 1; j < h; ++j) {
            const int sign = ((u >> (h - 1 - j)) & 1u) ? 1 : -1;
            acc = fpAdd(acc, sign * xs[static_cast<std::size_t>(j)],
                        mode_);
        }
        upper[u] = acc;
    }

    // Lower patterns: all sign combinations of x_{h+1}..x_mu.
    const uint32_t lower_n = lutEntries(l);
    std::vector<double> lower(lower_n, 0.0);
    for (uint32_t p = 0; p < lower_n; ++p) {
        const int sign0 = ((p >> (l - 1)) & 1u) ? 1 : -1;
        double acc = fpRound(sign0 * xs[static_cast<std::size_t>(h)],
                             mode_);
        for (int j = 1; j < l; ++j) {
            const int sign = ((p >> (l - 1 - j)) & 1u) ? 1 : -1;
            acc = fpAdd(acc, sign * xs[static_cast<std::size_t>(h + j)],
                        mode_);
        }
        lower[p] = acc;
    }

    // Combine: stored index = (upper bits << l) | lower bits.
    std::vector<double> half(lutEntries(mu_ - 1), 0.0);
    if (l == 0) {
        half = upper;
    } else {
        for (uint32_t u = 0; u < upper_n; ++u)
            for (uint32_t p = 0; p < lower_n; ++p)
                half[(u << l) | p] = fpAdd(upper[u], lower[p], mode_);
    }

    // Mirror into the full table: MSB = 1 entries are the generated
    // half, MSB = 0 entries their negated complements.
    for (uint32_t low = 0; low < half.size(); ++low) {
        out[(1u << (mu_ - 1)) | low] = half[low];
        out[complementKey((1u << (mu_ - 1)) | low, mu_)] = -half[low];
    }
}

HalfLutD
LutGenerator::generateHalf(const std::vector<double> &xs) const
{
    FIGLUT_ASSERT(static_cast<int>(xs.size()) == mu_,
                  "generator expects ", mu_, " activations, got ",
                  xs.size());
    // Rebuilding through the public direct-build path would lose the
    // tree rounding order; construct via fromFull on a mirrored table.
    std::vector<double> full(lutEntries(mu_), 0.0);
    generateFullInto(xs.data(), full.data());
    return HalfLutD::fromFull(LutD(mu_, std::move(full)));
}

void
LutGenerator::generateFullIntInto(const int64_t *xs, int64_t *out) const
{
    const int h = (mu_ + 1) / 2;
    const int l = mu_ - h;

    const uint32_t upper_n = lutEntries(h - 1);
    std::vector<int64_t> upper(upper_n, 0);
    for (uint32_t u = 0; u < upper_n; ++u) {
        int64_t acc = xs[0];
        for (int j = 1; j < h; ++j) {
            const int sign = ((u >> (h - 1 - j)) & 1u) ? 1 : -1;
            acc += sign * xs[static_cast<std::size_t>(j)];
        }
        upper[u] = acc;
    }

    const uint32_t lower_n = lutEntries(l);
    std::vector<int64_t> lower(lower_n, 0);
    for (uint32_t p = 0; p < lower_n; ++p) {
        int64_t acc = 0;
        for (int j = 0; j < l; ++j) {
            const int sign = ((p >> (l - 1 - j)) & 1u) ? 1 : -1;
            acc += sign * xs[static_cast<std::size_t>(h + j)];
        }
        lower[p] = acc;
    }

    for (uint32_t u = 0; u < upper_n; ++u) {
        for (uint32_t p = 0; p < lower_n; ++p) {
            const uint32_t low = l == 0 ? u : ((u << l) | p);
            const int64_t v = l == 0 ? upper[u] : upper[u] + lower[p];
            out[(1u << (mu_ - 1)) | low] = v;
            out[complementKey((1u << (mu_ - 1)) | low, mu_)] = -v;
            if (l == 0)
                break;
        }
    }
}

HalfLutI
LutGenerator::generateHalfInt(const std::vector<int64_t> &xs) const
{
    FIGLUT_ASSERT(static_cast<int>(xs.size()) == mu_,
                  "generator expects ", mu_, " mantissas, got ",
                  xs.size());
    std::vector<int64_t> full(lutEntries(mu_), 0);
    generateFullIntInto(xs.data(), full.data());
    return HalfLutI::fromFull(LutI(mu_, std::move(full)));
}

} // namespace figlut
