#include "core/lut.h"

#include "common/logging.h"

namespace figlut {

double
fpRound(double v, FpArith mode)
{
    switch (mode) {
      case FpArith::Exact: return v;
      case FpArith::Fp32: return quantizeToFormat(v, ActFormat::FP32);
      case FpArith::Fp16: return quantizeToFormat(v, ActFormat::FP16);
      case FpArith::Bf16: return quantizeToFormat(v, ActFormat::BF16);
    }
    panic("unknown FpArith mode");
}

double
fpAdd(double a, double b, FpArith mode)
{
    return fpRound(a + b, mode);
}

LutD::LutD(int mu, std::vector<double> values)
    : mu_(mu), values_(std::move(values))
{
    FIGLUT_ASSERT(mu_ >= 1 && mu_ <= kMaxMu, "mu out of range: ", mu_);
    FIGLUT_ASSERT(values_.size() == lutEntries(mu_),
                  "LUT entry count mismatch");
}

void
LutD::buildDirectInto(const double *xs, int mu, FpArith mode, double *out)
{
    FIGLUT_ASSERT(mu >= 1 && mu <= kMaxMu,
                  "LUT group size out of range: ", mu);
    const uint32_t n = lutEntries(mu);
    for (uint32_t key = 0; key < n; ++key) {
        // First term carries its sign directly; subsequent terms are
        // folded in with one (possibly rounded) add each: mu-1 adds.
        double acc = fpRound(keySign(key, 0, mu) * xs[0], mode);
        for (int j = 1; j < mu; ++j)
            acc = fpAdd(acc, keySign(key, j, mu) * xs[j], mode);
        out[key] = acc;
    }
}

LutD
LutD::buildDirect(const std::vector<double> &xs, FpArith mode)
{
    const int mu = static_cast<int>(xs.size());
    std::vector<double> values(lutEntries(mu), 0.0);
    buildDirectInto(xs.data(), mu, mode, values.data());
    return LutD(mu, std::move(values));
}

LutI::LutI(int mu, std::vector<int64_t> values)
    : mu_(mu), values_(std::move(values))
{
    FIGLUT_ASSERT(mu_ >= 1 && mu_ <= kMaxMu, "mu out of range: ", mu_);
    FIGLUT_ASSERT(values_.size() == lutEntries(mu_),
                  "LUT entry count mismatch");
}

void
LutI::buildDirectInto(const int64_t *xs, int mu, int64_t *out)
{
    FIGLUT_ASSERT(mu >= 1 && mu <= kMaxMu,
                  "LUT group size out of range: ", mu);
    const uint32_t n = lutEntries(mu);
    for (uint32_t key = 0; key < n; ++key) {
        int64_t acc = 0;
        for (int j = 0; j < mu; ++j)
            acc += keySign(key, j, mu) * xs[j];
        out[key] = acc;
    }
}

LutI
LutI::buildDirect(const std::vector<int64_t> &xs)
{
    const int mu = static_cast<int>(xs.size());
    std::vector<int64_t> values(lutEntries(mu), 0);
    buildDirectInto(xs.data(), mu, values.data());
    return LutI(mu, std::move(values));
}

} // namespace figlut
