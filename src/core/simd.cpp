#include "core/simd.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/logging.h"

namespace figlut {

namespace simd_detail {

/**
 * Scalar kernel set — the bit-identity reference every ISA table must
 * reproduce. These are deliberately plain loops: the GEMM contract's
 * round-to-binary32 is the hardware double->float->double round-trip
 * (identical to the softfloat RNE rounding of fpAdd, which the
 * 4-backend differential suite proves), and the reductions follow the
 * fixed kSimdReduceLanes-strided order documented in simd.h.
 */

void
accumFpSpanFp32Scalar(double *psum, const double *lut,
                      std::size_t lutStride, const std::uint32_t *keys,
                      std::size_t keyStride, std::size_t chunks,
                      std::size_t n)
{
    for (std::size_t r = 0; r < n; ++r) {
        double p = psum[r];
        const double *l = lut;
        const std::uint32_t *k = keys + r;
        for (std::size_t c = 0; c < chunks; ++c) {
            p = static_cast<double>(static_cast<float>(p + l[*k]));
            l += lutStride;
            k += keyStride;
        }
        psum[r] = p;
    }
}

void
accumFpSpanExactScalar(double *psum, const double *lut,
                       std::size_t lutStride, const std::uint32_t *keys,
                       std::size_t keyStride, std::size_t chunks,
                       std::size_t n)
{
    for (std::size_t r = 0; r < n; ++r) {
        double p = psum[r];
        const double *l = lut;
        const std::uint32_t *k = keys + r;
        for (std::size_t c = 0; c < chunks; ++c) {
            p = p + l[*k];
            l += lutStride;
            k += keyStride;
        }
        psum[r] = p;
    }
}

void
accumIntSpanScalar(std::int64_t *psum, const std::int64_t *lut,
                   std::size_t lutStride, const std::uint32_t *keys,
                   std::size_t keyStride, std::size_t chunks,
                   std::size_t n)
{
    for (std::size_t r = 0; r < n; ++r) {
        std::int64_t p = psum[r];
        const std::int64_t *l = lut;
        const std::uint32_t *k = keys + r;
        for (std::size_t c = 0; c < chunks; ++c) {
            p += l[*k];
            l += lutStride;
            k += keyStride;
        }
        psum[r] = p;
    }
}

void
addFlatScalar(double *out, const double *a, const double *b,
              std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = a[i] + b[i];
}

void
divFlatScalar(double *v, double denom, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        v[i] = v[i] / denom;
}

double
maxFlatScalar(const double *v, std::size_t n)
{
    double mx = v[0];
    for (std::size_t i = 1; i < n; ++i)
        mx = mx < v[i] ? v[i] : mx;
    return mx;
}

double
sumLanesScalar(const double *v, std::size_t n)
{
    double lane[kSimdReduceLanes] = {0.0, 0.0, 0.0, 0.0};
    std::size_t i = 0;
    for (; i + kSimdReduceLanes <= n; i += kSimdReduceLanes)
        for (std::size_t l = 0; l < kSimdReduceLanes; ++l)
            lane[l] += v[i + l];
    for (std::size_t l = 0; i < n; ++i, ++l)
        lane[l] += v[i];
    return ((lane[0] + lane[1]) + lane[2]) + lane[3];
}

double
sumSqDevLanesScalar(const double *v, double mean, std::size_t n)
{
    double lane[kSimdReduceLanes] = {0.0, 0.0, 0.0, 0.0};
    std::size_t i = 0;
    for (; i + kSimdReduceLanes <= n; i += kSimdReduceLanes)
        for (std::size_t l = 0; l < kSimdReduceLanes; ++l) {
            const double d = v[i + l] - mean;
            lane[l] += d * d;
        }
    for (std::size_t l = 0; i < n; ++i, ++l) {
        const double d = v[i] - mean;
        lane[l] += d * d;
    }
    return ((lane[0] + lane[1]) + lane[2]) + lane[3];
}

void
normalizeFlatScalar(double *out, const double *v, double mean,
                    double invStd, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = (v[i] - mean) * invStd;
}

void
geluLutFlatScalar(double *out, const double *v, std::size_t n,
                  const GeluLutTable &t)
{
    for (std::size_t i = 0; i < n; ++i) {
        const double x = v[i];
        // Clamp exactly as the vector path's max/min predicates do
        // (NaN clamps to lo); the identity tail overrides afterwards.
        double cx = x > t.lo ? x : t.lo;
        cx = cx < t.hi ? cx : t.hi;
        int idx = static_cast<int>((cx - t.lo) * t.invStep);
        idx = idx < t.segments ? idx : t.segments - 1;
        const double x0 = t.lo + static_cast<double>(idx) * t.step;
        const double pwl =
            t.value[static_cast<std::size_t>(idx)] +
            (cx - x0) * t.slope[static_cast<std::size_t>(idx)];
        out[i] = x > t.hi ? x : pwl;
    }
}

const SimdKernels kScalarKernels = {
    SimdIsa::Scalar,       accumFpSpanFp32Scalar,
    accumFpSpanExactScalar, accumIntSpanScalar,
    addFlatScalar,         divFlatScalar,
    maxFlatScalar,         sumLanesScalar,
    sumSqDevLanesScalar,   normalizeFlatScalar,
    geluLutFlatScalar,
};

#if FIGLUT_HAVE_AVX2_KERNELS
const SimdKernels &avx2Kernels(); // simd_avx2.cpp (built with -mavx2)
#endif
#if FIGLUT_HAVE_NEON_KERNELS
const SimdKernels &neonKernels(); // simd_neon.cpp
#endif

} // namespace simd_detail

int
simdIsaCode(SimdIsa isa)
{
    switch (isa) {
      case SimdIsa::Scalar: return 0;
      case SimdIsa::Avx2: return 1;
      case SimdIsa::Neon: return 2;
    }
    return 0;
}

const char *
simdIsaName(SimdIsa isa)
{
    switch (isa) {
      case SimdIsa::Scalar: return "scalar";
      case SimdIsa::Avx2: return "avx2";
      case SimdIsa::Neon: return "neon";
    }
    return "scalar";
}

bool
parseSimdIsa(const std::string &name, SimdIsa *out)
{
    if (name == "scalar")
        *out = SimdIsa::Scalar;
    else if (name == "avx2")
        *out = SimdIsa::Avx2;
    else if (name == "neon")
        *out = SimdIsa::Neon;
    else
        return false;
    return true;
}

bool
simdIsaCompiled(SimdIsa isa)
{
    switch (isa) {
      case SimdIsa::Scalar:
          return true;
      case SimdIsa::Avx2:
#if FIGLUT_HAVE_AVX2_KERNELS
          return true;
#else
          return false;
#endif
      case SimdIsa::Neon:
#if FIGLUT_HAVE_NEON_KERNELS
          return true;
#else
          return false;
#endif
    }
    return false;
}

bool
simdIsaSupported(SimdIsa isa)
{
    if (!simdIsaCompiled(isa))
        return false;
    switch (isa) {
      case SimdIsa::Scalar:
          return true;
      case SimdIsa::Avx2:
#if defined(__x86_64__) || defined(__i386__)
          return __builtin_cpu_supports("avx2") != 0;
#else
          return false;
#endif
      case SimdIsa::Neon:
          // NEON is architecturally mandatory on aarch64; the kernels
          // are only compiled there, so compiled implies executable.
          return true;
    }
    return false;
}

SimdIsa
detectSimdIsa()
{
    if (simdIsaSupported(SimdIsa::Avx2))
        return SimdIsa::Avx2;
    if (simdIsaSupported(SimdIsa::Neon))
        return SimdIsa::Neon;
    return SimdIsa::Scalar;
}

namespace {

/** Programmatic override: -1 = none, else simdIsaCode of the ISA. */
std::atomic<int> gIsaOverride{-1};

SimdIsa
clampToSupported(SimdIsa isa)
{
    return simdIsaSupported(isa) ? isa : SimdIsa::Scalar;
}

/** FIGLUT_SIMD environment selection, parsed once. */
SimdIsa
envSimdIsa()
{
    static const SimdIsa parsed = [] {
        const char *env = std::getenv("FIGLUT_SIMD");
        if (env == nullptr || *env == '\0' ||
            std::string(env) == "auto")
            return detectSimdIsa();
        SimdIsa isa = SimdIsa::Scalar;
        if (!parseSimdIsa(env, &isa)) {
            warn("FIGLUT_SIMD=", env,
                 " is not scalar|avx2|neon|auto; using auto");
            return detectSimdIsa();
        }
        const SimdIsa clamped = clampToSupported(isa);
        if (clamped != isa)
            warn("FIGLUT_SIMD=", env,
                 " is not supported by this build/CPU; ",
                 "falling back to scalar");
        return clamped;
    }();
    return parsed;
}

SimdIsa
isaFromCode(int code)
{
    switch (code) {
      case 1: return SimdIsa::Avx2;
      case 2: return SimdIsa::Neon;
      default: return SimdIsa::Scalar;
    }
}

} // namespace

SimdIsa
activeSimdIsa()
{
    const int forced = gIsaOverride.load(std::memory_order_relaxed);
    if (forced >= 0)
        return isaFromCode(forced);
    return envSimdIsa();
}

SimdIsa
setSimdIsaOverride(SimdIsa isa)
{
    const SimdIsa clamped = clampToSupported(isa);
    gIsaOverride.store(simdIsaCode(clamped),
                       std::memory_order_relaxed);
    return clamped;
}

void
clearSimdIsaOverride()
{
    gIsaOverride.store(-1, std::memory_order_relaxed);
}

const SimdKernels &
simdKernelsFor(SimdIsa isa)
{
    switch (clampToSupported(isa)) {
      case SimdIsa::Scalar:
          break;
      case SimdIsa::Avx2:
#if FIGLUT_HAVE_AVX2_KERNELS
          return simd_detail::avx2Kernels();
#else
          break;
#endif
      case SimdIsa::Neon:
#if FIGLUT_HAVE_NEON_KERNELS
          return simd_detail::neonKernels();
#else
          break;
#endif
    }
    return simd_detail::kScalarKernels;
}

const SimdKernels &
simdKernels()
{
    return simdKernelsFor(activeSimdIsa());
}

} // namespace figlut
