/**
 * @file
 * Functional LUT-based FP-INT GEMM (paper Section III-A/III-B).
 *
 * Computes Y = W X for a BCQ weight tensor W (M x N, q planes, group
 * scales, optional offset) and FP activations X (N x B):
 *
 *     y[m,b] = sum_g sum_i alpha_i[m,g] * (B_i[m,g] . x[g,b])
 *              + z[m,g] * sum(x[g,b])
 *
 * The inner binary dot products are executed by table look-ups: the
 * activations of each group are chunked into mu-element LUT groups, a
 * (half-)LUT is generated per chunk, and each (row, plane) pair reads
 * one value per chunk keyed by its weight pattern — the RAC operation.
 *
 * Two numerics paths mirror the two hardware variants:
 *  - FIGLUT-F: LUT entries and accumulation in FP (default FP32, the
 *    paper's accumulate precision).
 *  - FIGLUT-I: activations pre-aligned per group to integer mantissas;
 *    LUT entries, RAC reads and plane sums are exact integers; one FP
 *    multiply per (row, group, plane) restores the scale.
 */

#ifndef FIGLUT_CORE_LUT_GEMM_H
#define FIGLUT_CORE_LUT_GEMM_H

#include <cstdint>
#include <string>

#include "common/matrix.h"
#include "common/status.h"
#include "core/lut_generator.h"
#include "numerics/prealign.h"
#include "quant/bcq.h"
#include "quant/packing.h"

namespace figlut {

class ExecutionContext;

/**
 * Execution backend of the functional kernel.
 *
 * All backends produce bit-identical outputs: every output row
 * accumulates its (batch, group, plane) contributions in the same
 * order through the same emulated-FP operations, and LUT contents are
 * a deterministic function of the activations. They differ only in
 * traversal: Reference streams all M rows per (column, group) LUT set
 * on one thread; Threaded carves M into blockRows-row work items,
 * rebuilding the (column, group) LUT sets per block so each set stays
 * cache-hot for exactly the rows of its block; Packed builds each
 * activation column's LUT arenas exactly once, pre-packs (or reuses
 * pre-packed) per-(plane, chunk) key arrays, and streams row tiles as
 * linear key walks + table reads with zero per-read bit-gathering;
 * Simd is the Packed traversal with the per-chunk key walk executed
 * by the runtime-dispatched vector kernels of core/simd.h (AVX2
 * gathers / NEON lanes, scalar fallback) — rows are independent
 * vector lanes, so per-row accumulation order is unchanged and the
 * outputs remain bit-identical (FpArith::Fp16/Bf16 accumulate falls
 * back to the Packed scalar loop inside the backend, since only the
 * binary32 round-trip has a hardware vector equivalent).
 */
enum class LutGemmBackend
{
    Reference, ///< single-threaded scalar loop (differential oracle)
    Threaded,  ///< cache-blocked row tiles on a ThreadPool work queue
    Packed,    ///< packed-key layout + flat LUT arenas
    Simd,      ///< Packed layout + vectorized key walk (fastest)
};

/** Stable numeric code for JSON records ("gemm_backend" fields). */
int lutGemmBackendCode(LutGemmBackend backend);

/** Lower-case name ("reference", "threaded", "packed", "simd"). */
const char *lutGemmBackendName(LutGemmBackend backend);

/** Parse a backend name as printed by lutGemmBackendName(). */
bool parseLutGemmBackend(const std::string &name, LutGemmBackend *out);

/** Configuration of the functional LUT-GEMM kernel. */
struct LutGemmConfig
{
    int mu = 4;                            ///< LUT group size
    ActFormat actFormat = ActFormat::FP16; ///< activation storage format
    FpArith arith = FpArith::Fp32;         ///< FP adder/accum precision
    bool preAligned = false;               ///< FIGLUT-I integer path
    int alignFracBits = 24;                ///< aligned mantissa fraction
    bool useHalfLut = true;                ///< hFFLUT + decoder
    bool useGeneratorTree = true;          ///< tree generator vs direct

    LutGemmBackend backend = LutGemmBackend::Reference;
    int threads = 0;   ///< blocked backends: workers, <= 0 = hardware
    int blockRows = 64;///< blocked backends: rows per work item (M-tile)

    /**
     * Count operations by per-read increments inside the hot loops
     * instead of the default closed-form accounting. Both modes fill
     * LutGemmCounters with identical values (the closed forms are
     * proven against the instrumented counts by the differential
     * tests); instrumenting only pays the per-read cost, so it exists
     * for that proof and for debugging new traversals.
     */
    bool instrument = false;
};

/** Upper bound on LutGemmConfig::threads (guards typo'd counts). */
inline constexpr int kMaxLutGemmThreads = 1024;

/**
 * Validate the shape-independent kernel knobs: mu in [1, kMaxMu],
 * hFFLUT needs mu >= 2, blocked backends need blockRows >= 1, threads
 * <= kMaxLutGemmThreads. lutGemm() enforces exactly these checks
 * fatally per call; construction-time callers (Session, the serve
 * Engine) use the Status form so a serving loop can reject a bad
 * configuration without dying. Messages state the violated bound.
 */
Status validateLutGemmConfig(const LutGemmConfig &config);

/**
 * Operation counters filled in by the kernel (drive energy models).
 *
 * Counts report the work the selected backend actually performed: the
 * Threaded backend rebuilds each (column, group) LUT set once per row
 * block, so its lutGenerations/generatorAdds are ceil(M / blockRows)
 * TIMES the Reference backend's, while the Packed and Simd backends
 * build each set exactly once and match Reference. Hardware energy
 * models must
 * derive LUT-build counts analytically (as sim/engine_sim does), never
 * from Threaded-backend counters. Read/accumulate/scale/offset counts
 * are identical across backends, and independent of
 * LutGemmConfig::instrument (closed-form and per-read accounting
 * agree exactly).
 */
struct LutGemmCounters
{
    uint64_t lutGenerations = 0; ///< LUTs built (per chunk, batch, plane reuse excluded)
    uint64_t generatorAdds = 0;  ///< adds spent inside generators
    uint64_t lutReads = 0;       ///< RAC table reads
    uint64_t racAccumulates = 0; ///< RAC accumulate operations
    uint64_t scaleMuls = 0;      ///< alpha multiplies
    uint64_t offsetOps = 0;      ///< offset multiply-adds (VPU)
};

/**
 * Accumulate the closed-form operation counts of one lutGemm(weights,
 * x, config) call with a B-column activation matrix into `counters`,
 * without running the kernel. This is the exact accounting the fast
 * (non-instrumented) path applies after its loops: an analytic
 * function of the tensor shape, the group/chunk geometry, and the
 * backend's traversal (Threaded rebuilds LUT sets per row block).
 *
 * The shard layer uses it to keep counters execution-invariant: a
 * row-sharded run would otherwise rebuild each (column, group) LUT
 * set once per shard, inflating lutGenerations/generatorAdds by the
 * shard count. ShardedExecutor discards the per-shard counts and adds
 * this full-tensor closed form exactly once, so counters are
 * bit-identical to the unsharded call by construction.
 */
void addLutGemmClosedFormCounters(const BcqTensor &weights,
                                  const LutGemmConfig &config,
                                  std::size_t batch,
                                  LutGemmCounters &counters);

/**
 * Run the LUT-GEMM kernel.
 *
 * @param weights  BCQ tensor, M x N
 * @param x        activations, N x B (column b is one input vector)
 * @param config   kernel configuration
 * @param counters optional op counters (accumulated, not reset)
 * @param ctx      optional long-lived execution resources
 *                 (core/execution_context.h). With a context, the
 *                 blocked backends run on its persistent ThreadPool
 *                 and reuse its scratch/arena workspace across calls;
 *                 without one, pool and scratch are constructed per
 *                 call. Outputs are identical either way. A context
 *                 must not be shared by concurrent callers.
 * @return         output matrix, M x B (doubles holding format values)
 */
MatrixD lutGemm(const BcqTensor &weights, const MatrixD &x,
                const LutGemmConfig &config,
                LutGemmCounters *counters = nullptr,
                ExecutionContext *ctx = nullptr);

/**
 * Run the LUT-GEMM kernel with pre-packed weight keys (Packed and
 * Simd backends). packed must come from packLutKeys(weights, config.mu); the
 * pre-packing is validated against the tensor's shape. Use this for
 * repeated-inference scenarios: keys depend only on the weights, so
 * packing once amortizes the layout pass across every call (pair it
 * with an ExecutionContext to also amortize workers and arenas).
 */
MatrixD lutGemm(const BcqTensor &weights, const MatrixD &x,
                const LutGemmConfig &config, const PackedLutKeys &packed,
                LutGemmCounters *counters = nullptr,
                ExecutionContext *ctx = nullptr);

} // namespace figlut

#endif // FIGLUT_CORE_LUT_GEMM_H
