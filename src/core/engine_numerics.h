/**
 * @file
 * Functional (bit-exact) numerics of every engine in the paper's
 * accuracy evaluation (Table IV):
 *
 *  - GPU / FPE: dequantize weights to the activation format, multiply,
 *    FP32 accumulate — the cuBLAS-with-dequantization reference.
 *  - iFPU: pre-align activation mantissas per group, bit-serial signed
 *    integer sums per BCQ plane, scale recovery in FP32.
 *  - FIGNA: pre-aligned integer multiply against uniform codes.
 *  - FIGLUT-F / FIGLUT-I: see core/lut_gemm.h; FIGLUT-I is numerically
 *    identical to iFPU by construction (both sum exact integers per
 *    plane and fold in the same order), which the tests assert.
 *
 * All kernels return doubles that hold exactly-representable values of
 * the modeled datapath, so equality comparisons are meaningful.
 */

#ifndef FIGLUT_CORE_ENGINE_NUMERICS_H
#define FIGLUT_CORE_ENGINE_NUMERICS_H

#include <string>

#include "common/matrix.h"
#include "core/lut_gemm.h"
#include "quant/bcq.h"
#include "quant/rtn.h"

namespace figlut {

/** Engine identity used across accuracy and hardware evaluations. */
enum class EngineKind
{
    FPE,      ///< baseline: dequant + FP multiply-accumulate
    IFPU,     ///< bit-serial pre-aligned BCQ adder engine
    FIGNA,    ///< pre-aligned integer-multiply engine (uniform only)
    FIGLUT_F, ///< LUT engine, FP datapath
    FIGLUT_I, ///< LUT engine, pre-aligned integer datapath
};

/** All engines, in the paper's presentation order. */
inline constexpr EngineKind kAllEngines[] = {
    EngineKind::FPE, EngineKind::IFPU, EngineKind::FIGNA,
    EngineKind::FIGLUT_F, EngineKind::FIGLUT_I};

/** Human-readable engine name. */
std::string engineName(EngineKind kind);

/** Numerics settings shared by the engine kernels. */
struct NumericsConfig
{
    ActFormat actFormat = ActFormat::FP16;
    FpArith accum = FpArith::Fp32; ///< accumulate precision
    int alignFracBits = 24;        ///< pre-aligned datapath width
    int mu = 4;                    ///< LUT group size (FIGLUT only)

    // Host execution policy of the LUT-GEMM kernel (results are
    // backend-invariant). Only figlutGemm honours these; the scalar
    // FPE/iFPU/FIGNA kernels ignore them.
    LutGemmBackend backend = LutGemmBackend::Reference;
    int threads = 0;    ///< Threaded/Packed backend: workers, <= 0 = hw
    int blockRows = 64; ///< Threaded/Packed backend: rows per work item
    bool instrument = false; ///< per-read counters vs closed form
};

/** Double-precision oracle on already-dequantized weights. */
MatrixD oracleGemm(const MatrixD &weights, const MatrixD &x);

/**
 * GPU/FPE reference: weights dequantized into the activation format,
 * sequential FP multiply + accumulate in the configured precision.
 */
MatrixD fpReferenceGemm(const MatrixD &dequant_weights, const MatrixD &x,
                        const NumericsConfig &config);

/** iFPU kernel on BCQ weights. */
MatrixD ifpuGemm(const BcqTensor &weights, const MatrixD &x,
                 const NumericsConfig &config);

/** FIGNA kernel on uniform (RTN) weights. */
MatrixD fignaGemm(const RtnTensor &weights, const MatrixD &x,
                  const NumericsConfig &config);

/** FIGLUT kernel (variant selected by pre_aligned). */
MatrixD figlutGemm(const BcqTensor &weights, const MatrixD &x,
                   const NumericsConfig &config, bool pre_aligned,
                   LutGemmCounters *counters = nullptr);

/** Error summary between a test matrix and a reference. */
struct ErrorReport
{
    double maxAbs = 0.0;  ///< max |test - ref|
    double mse = 0.0;     ///< mean squared error
    double maxRel = 0.0;  ///< max |test - ref| / max(|ref|, eps)
    double refRms = 0.0;  ///< RMS magnitude of the reference
    bool identical = true;

    /** Normalized RMS error (RMSE / reference RMS). */
    double nrmse() const;
};

/** Compare element-wise; shapes must match. */
ErrorReport compareMatrices(const MatrixD &test, const MatrixD &ref);

} // namespace figlut

#endif // FIGLUT_CORE_ENGINE_NUMERICS_H
