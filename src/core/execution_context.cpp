#include "core/execution_context.h"

namespace figlut {

ExecutionContext::ExecutionContext(int threads, CpuSet affinity)
    : threads_(threads), affinity_(std::move(affinity))
{
}

ExecutionContext::~ExecutionContext() = default;

ThreadPool &
ExecutionContext::pool(int workers)
{
    const int want =
        resolveThreadCount(workers > 0 ? workers : threads_);
    if (!pool_ || pool_->threadCount() < want) {
        // Join the old workers before spawning the replacements so
        // thread_local worker scratch is released, not leaked.
        pool_.reset();
        pool_ = std::make_unique<ThreadPool>(want, affinity_);
        ++poolSpawns_;
    }
    return *pool_;
}

} // namespace figlut
