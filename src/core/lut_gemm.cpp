#include "core/lut_gemm.h"

#include <algorithm>
#include <mutex>
#include <optional>

#include "common/logging.h"
#include "core/execution_context.h"
#include "core/parallel.h"
#include "core/simd.h"

namespace figlut {

namespace {

/** Column range, chunk count, and flat chunk base of one scale group. */
struct GroupGeom
{
    std::size_t c0 = 0;       ///< first column
    std::size_t c1 = 0;       ///< one past last column
    std::size_t chunks = 0;   ///< mu-chunks in the group (tail padded)
    std::size_t chunkBase = 0;///< first global chunk index
};

/**
 * Flat LUT arena: contiguous chunk slabs with a fixed 2^mu stride.
 * Every slab stores the *decoded* full table — in half-LUT mode the
 * hFFLUT sign decode is applied once per entry at build time — so the
 * hot loop's read is a single branch-free index. The buffer is grown
 * once and reused across (batch, group) iterations instead of
 * reallocating per group.
 */
template <typename T>
struct LutArena
{
    std::vector<T> values;
    std::size_t stride = 0;

    void
    ensure(std::size_t chunks, std::size_t entryStride)
    {
        stride = entryStride;
        if (values.size() < chunks * entryStride)
            values.resize(chunks * entryStride);
    }

    T *chunk(std::size_t ch) { return values.data() + ch * stride; }
    const T *
    chunk(std::size_t ch) const
    {
        return values.data() + ch * stride;
    }
};

/**
 * Reusable per-worker scratch: LUT arenas, the mu-element chunk
 * staging slots, and the packed-backend tile accumulators. One
 * Scratch lives per worker thread (or per Reference call) so nothing
 * here is shared; reuse keeps the hot loops allocation-free.
 */
struct Scratch
{
    LutArena<double> fp;           ///< FP group arena
    LutArena<int64_t> ig;          ///< integer group arena
    std::vector<double> xs;        ///< mu activation slots of one chunk
    std::vector<int64_t> ms;       ///< mu mantissa slots of one chunk
    std::vector<double> groupVals; ///< group activations for preAlign
    std::vector<double> fpPsum;    ///< packed tile: per-row plane sums
    std::vector<int64_t> intPsum;  ///< packed tile: integer plane sums
    std::vector<double> rowAcc;    ///< packed tile: per-row group accum
    double sumx = 0.0;             ///< group sum(x) for the offset term
    int64_t sumMant = 0;           ///< integer-path mantissa sum
    double scale = 1.0;            ///< integer-path shared scale
};

/**
 * Packed-backend per-column tables: the LUT arenas of every chunk of
 * one activation column (indexed by global chunk), plus the per-group
 * VPU-side terms. Built exactly once per (batch column) and then read
 * by every row tile — unlike the Threaded backend, no per-tile LUT
 * rebuild happens.
 */
struct FpColumnTables
{
    LutArena<double> arena;
    std::vector<double> sumx; ///< per group
};

struct IntColumnTables
{
    LutArena<int64_t> arena;
    std::vector<int64_t> sumMant; ///< per group
    std::vector<double> scale;    ///< per group
};

/**
 * Everything one lutGemm call reuses across its (batch, group) and
 * column iterations: the submitting thread's scratch plus the packed
 * backend's column tables. Owned per call by default, or across calls
 * by an ExecutionContext so the arenas stop being reallocated under
 * repeated traffic.
 */
struct CallWorkspace
{
    Scratch scratch;
    FpColumnTables fp;
    IntColumnTables ig;
};

void
mergeCounters(LutGemmCounters &dst, const LutGemmCounters &src)
{
    dst.lutGenerations += src.lutGenerations;
    dst.generatorAdds += src.generatorAdds;
    dst.lutReads += src.lutReads;
    dst.racAccumulates += src.racAccumulates;
    dst.scaleMuls += src.scaleMuls;
    dst.offsetOps += src.offsetOps;
}

/** Key for (row, plane) over the chunk starting at c0 (tail padded 1). */
uint32_t
chunkKey(const BcqTensor &w, int plane, std::size_t r, std::size_t c0,
         std::size_t c_end, int mu)
{
    uint32_t key = 0;
    for (int j = 0; j < mu; ++j) {
        const std::size_t c = c0 + static_cast<std::size_t>(j);
        // Padding columns pair a zero activation with weight +1, which
        // contributes exactly zero in both FP and integer domains.
        const uint32_t bit =
            c < c_end
                ? w.planes[static_cast<std::size_t>(plane)](r, c)
                : 1u;
        key = (key << 1) | bit;
    }
    return key;
}

/**
 * Shared kernel state for all backends. Reference and Threaded
 * execute processRows() — the cache-blocked (M-tile x chunk)
 * traversal that rebuilds each (column, group) LUT arena per tile.
 * The Packed backend instead reads pre-packed [plane][chunk][row] key
 * arrays and per-column LUT arenas built once, via
 * accumulatePacked*().
 *
 * Bit-identity across backends holds because each output element
 * y(r, b) is touched only by the work item owning row r, and its
 * accumulation order (columns, then groups, then planes/chunks) and
 * every intermediate value are independent of the traversal: LUT
 * arena entries equal the (half-)LUT decoded reads of the Reference
 * tables entry for entry.
 *
 * The Instr template flag selects per-operation counter increments;
 * the fast path (Instr = false) never touches counters inside the
 * loops — the caller adds the closed-form totals afterwards.
 */
class LutGemmKernel
{
  public:
    LutGemmKernel(const BcqTensor &weights, const MatrixD &xq,
                  const LutGemmConfig &config)
        : w_(weights), xq_(xq), config_(config)
    {
        if (config_.useGeneratorTree && config_.mu >= 2)
            generator_.emplace(config_.mu, config_.arith);
        addsPerGeneration_ =
            generator_
                ? generator_->stats().treeAdds
                : static_cast<uint64_t>(lutEntries(config_.mu)) *
                      static_cast<uint64_t>(config_.mu - 1);

        // Group geometry, hoisted out of every per-(batch, group) and
        // per-row loop: computed once per kernel.
        const std::size_t groups = w_.groupsPerRow();
        geom_.reserve(groups);
        std::size_t base = 0;
        for (std::size_t g = 0; g < groups; ++g) {
            GroupGeom gg;
            gg.c0 = g * w_.groupSize;
            gg.c1 = std::min(w_.cols, gg.c0 + w_.groupSize);
            gg.chunks = (gg.c1 - gg.c0 +
                         static_cast<std::size_t>(config_.mu) - 1) /
                        static_cast<std::size_t>(config_.mu);
            gg.chunkBase = base;
            base += gg.chunks;
            geom_.push_back(gg);
        }
        totalChunks_ = base;
    }

    std::size_t groups() const { return geom_.size(); }
    std::size_t totalChunks() const { return totalChunks_; }
    uint64_t addsPerGeneration() const { return addsPerGeneration_; }

    template <bool Instr>
    void
    processRows(BlockRange rows, MatrixD &y, LutGemmCounters &cnt,
                Scratch &s) const
    {
        const std::size_t batch = xq_.cols();
        for (std::size_t b = 0; b < batch; ++b) {
            for (std::size_t g = 0; g < geom_.size(); ++g) {
                const GroupGeom &gg = geom_[g];
                if (!config_.preAligned) {
                    buildFpGroup<Instr>(b, gg, s, cnt);
                    accumulateFp<Instr>(rows, b, g, gg, s, y, cnt);
                } else {
                    buildIntGroup<Instr>(b, gg, s, cnt);
                    accumulateInt<Instr>(rows, b, g, gg, s, y, cnt);
                }
            }
        }
    }

    /** Build all LUT arenas + VPU terms of activation column b. */
    template <bool Instr>
    void
    buildFpColumn(std::size_t b, FpColumnTables &t, Scratch &s,
                  LutGemmCounters &cnt) const
    {
        t.arena.ensure(totalChunks_, lutEntries(config_.mu));
        t.sumx.assign(geom_.size(), 0.0);
        for (std::size_t g = 0; g < geom_.size(); ++g) {
            const GroupGeom &gg = geom_[g];
            for (std::size_t ch = 0; ch < gg.chunks; ++ch) {
                loadChunkValues(b, gg, ch, s.xs);
                fillFpChunk(s.xs.data(), t.arena.chunk(gg.chunkBase + ch));
                if constexpr (Instr) {
                    ++cnt.lutGenerations;
                    cnt.generatorAdds += addsPerGeneration_;
                }
            }
            if (w_.hasOffset) {
                double sx = 0.0;
                for (std::size_t c = gg.c0; c < gg.c1; ++c)
                    sx = fpAdd(sx, xq_(c, b), config_.arith);
                t.sumx[g] = sx;
            }
        }
    }

    template <bool Instr>
    void
    buildIntColumn(std::size_t b, IntColumnTables &t, Scratch &s,
                   LutGemmCounters &cnt) const
    {
        t.arena.ensure(totalChunks_, lutEntries(config_.mu));
        t.sumMant.assign(geom_.size(), 0);
        t.scale.assign(geom_.size(), 1.0);
        for (std::size_t g = 0; g < geom_.size(); ++g) {
            const GroupGeom &gg = geom_[g];
            const AlignedBlock block = alignGroup(b, gg, s);
            for (std::size_t ch = 0; ch < gg.chunks; ++ch) {
                loadChunkMantissas(block, ch, s.ms);
                fillIntChunk(s.ms.data(),
                             t.arena.chunk(gg.chunkBase + ch));
                if constexpr (Instr) {
                    ++cnt.lutGenerations;
                    cnt.generatorAdds += addsPerGeneration_;
                }
            }
            if (w_.hasOffset) {
                int64_t sm = 0;
                for (const auto mv : block.mantissas)
                    sm += mv;
                t.sumMant[g] = sm;
            }
            t.scale[g] = block.scale();
        }
    }

    /**
     * Packed FP accumulate over one row tile: per (group, plane,
     * chunk), a linear walk over the tile's pre-packed keys with one
     * branch-free arena read each. Per-row operation order is
     * identical to the Reference backend's (chunks, then planes, then
     * offset, then the y fold), so outputs are bit-identical.
     */
    template <bool Instr>
    void
    accumulatePackedFp(BlockRange rows, std::size_t b,
                       const PackedLutKeys &pk, const FpColumnTables &t,
                       MatrixD &y, LutGemmCounters &cnt, Scratch &s) const
    {
        const int q = w_.bits;
        const FpArith arith = config_.arith;
        const std::size_t tile = rows.size();
        s.fpPsum.resize(tile);
        s.rowAcc.resize(tile);
        double *psum = s.fpPsum.data();
        double *acc = s.rowAcc.data();
        for (std::size_t g = 0; g < geom_.size(); ++g) {
            const GroupGeom &gg = geom_[g];
            std::fill(acc, acc + tile, 0.0);
            for (int i = 0; i < q; ++i) {
                std::fill(psum, psum + tile, 0.0);
                for (std::size_t ch = 0; ch < gg.chunks; ++ch) {
                    const std::size_t chunk = gg.chunkBase + ch;
                    const uint32_t *keys =
                        pk.chunkKeys(i, chunk) + rows.begin;
                    const double *lut = t.arena.chunk(chunk);
                    for (std::size_t r = 0; r < tile; ++r) {
                        psum[r] = fpAdd(psum[r], lut[keys[r]], arith);
                        if constexpr (Instr) {
                            ++cnt.lutReads;
                            ++cnt.racAccumulates;
                        }
                    }
                }
                const auto &alpha =
                    w_.alphas[static_cast<std::size_t>(i)];
                for (std::size_t r = 0; r < tile; ++r) {
                    acc[r] = fpAdd(acc[r],
                                   fpRound(alpha(rows.begin + r, g) *
                                               psum[r],
                                           arith),
                                   arith);
                    if constexpr (Instr)
                        ++cnt.scaleMuls;
                }
            }
            if (w_.hasOffset) {
                for (std::size_t r = 0; r < tile; ++r) {
                    acc[r] = fpAdd(
                        acc[r],
                        fpRound(w_.offsets(rows.begin + r, g) * t.sumx[g],
                                arith),
                        arith);
                    if constexpr (Instr)
                        ++cnt.offsetOps;
                }
            }
            for (std::size_t r = 0; r < tile; ++r)
                y(rows.begin + r, b) =
                    fpAdd(y(rows.begin + r, b), acc[r], arith);
        }
    }

    template <bool Instr>
    void
    accumulatePackedInt(BlockRange rows, std::size_t b,
                        const PackedLutKeys &pk,
                        const IntColumnTables &t, MatrixD &y,
                        LutGemmCounters &cnt, Scratch &s) const
    {
        const int q = w_.bits;
        const FpArith arith = config_.arith;
        const std::size_t tile = rows.size();
        s.intPsum.resize(tile);
        s.rowAcc.resize(tile);
        int64_t *psum = s.intPsum.data();
        double *acc = s.rowAcc.data();
        for (std::size_t g = 0; g < geom_.size(); ++g) {
            const GroupGeom &gg = geom_[g];
            const double scale = t.scale[g];
            std::fill(acc, acc + tile, 0.0);
            for (int i = 0; i < q; ++i) {
                std::fill(psum, psum + tile, int64_t{0});
                for (std::size_t ch = 0; ch < gg.chunks; ++ch) {
                    const std::size_t chunk = gg.chunkBase + ch;
                    const uint32_t *keys =
                        pk.chunkKeys(i, chunk) + rows.begin;
                    const int64_t *lut = t.arena.chunk(chunk);
                    for (std::size_t r = 0; r < tile; ++r) {
                        psum[r] += lut[keys[r]];
                        if constexpr (Instr) {
                            ++cnt.lutReads;
                            ++cnt.racAccumulates;
                        }
                    }
                }
                const auto &alpha =
                    w_.alphas[static_cast<std::size_t>(i)];
                for (std::size_t r = 0; r < tile; ++r) {
                    acc[r] = fpAdd(
                        acc[r],
                        fpRound(alpha(rows.begin + r, g) *
                                    (static_cast<double>(psum[r]) *
                                     scale),
                                arith),
                        arith);
                    if constexpr (Instr)
                        ++cnt.scaleMuls;
                }
            }
            if (w_.hasOffset) {
                const double sumx =
                    static_cast<double>(t.sumMant[g]) * scale;
                for (std::size_t r = 0; r < tile; ++r) {
                    acc[r] = fpAdd(
                        acc[r],
                        fpRound(w_.offsets(rows.begin + r, g) * sumx,
                                arith),
                        arith);
                    if constexpr (Instr)
                        ++cnt.offsetOps;
                }
            }
            for (std::size_t r = 0; r < tile; ++r)
                y(rows.begin + r, b) =
                    fpAdd(y(rows.begin + r, b), acc[r], arith);
        }
    }

    /**
     * Simd variants of the packed accumulates: same traversal, same
     * per-row operation order, with the per-chunk key walk executed
     * by the dispatched vector kernels (core/simd.h). Rows are
     * independent lanes, so each row's psum sequence is exactly the
     * Packed one; the FpArith::Fp32 per-add rounding is the binary32
     * round-trip the kernels implement (equal to fpAdd's softfloat
     * RNE rounding — the 4-backend suite proves it), and Fp16/Bf16 —
     * whose per-add rounding has no hardware vector equivalent —
     * fall back to the scalar Packed loop entirely. The alpha /
     * offset / y-fold stages reuse the exact Packed scalar code:
     * they are O(groups) per row rather than O(chunks), and sharing
     * them keeps bit-identity trivially true where it is cheap.
     */
    void
    accumulateSimdFp(BlockRange rows, std::size_t b,
                     const PackedLutKeys &pk, const FpColumnTables &t,
                     MatrixD &y, Scratch &s,
                     const SimdKernels &simd) const
    {
        const FpArith arith = config_.arith;
        const auto accum = arith == FpArith::Fp32
                               ? simd.accumFpSpanFp32
                               : arith == FpArith::Exact
                                     ? simd.accumFpSpanExact
                                     : nullptr;
        if (accum == nullptr) {
            LutGemmCounters unused;
            accumulatePackedFp<false>(rows, b, pk, t, y, unused, s);
            return;
        }
        const int q = w_.bits;
        const std::size_t tile = rows.size();
        s.fpPsum.resize(tile);
        s.rowAcc.resize(tile);
        double *psum = s.fpPsum.data();
        double *acc = s.rowAcc.data();
        for (std::size_t g = 0; g < geom_.size(); ++g) {
            const GroupGeom &gg = geom_[g];
            std::fill(acc, acc + tile, 0.0);
            for (int i = 0; i < q; ++i) {
                std::fill(psum, psum + tile, 0.0);
                // One span call walks every chunk of the group: the
                // group's arena slabs are contiguous (stride
                // t.arena.stride) and the per-chunk key arrays of one
                // plane are pk.rows apart (packing.h layout note).
                accum(psum, t.arena.chunk(gg.chunkBase),
                      t.arena.stride,
                      pk.chunkKeys(i, gg.chunkBase) + rows.begin,
                      pk.rows, gg.chunks, tile);
                const auto &alpha =
                    w_.alphas[static_cast<std::size_t>(i)];
                for (std::size_t r = 0; r < tile; ++r)
                    acc[r] = fpAdd(acc[r],
                                   fpRound(alpha(rows.begin + r, g) *
                                               psum[r],
                                           arith),
                                   arith);
            }
            if (w_.hasOffset) {
                for (std::size_t r = 0; r < tile; ++r)
                    acc[r] = fpAdd(
                        acc[r],
                        fpRound(w_.offsets(rows.begin + r, g) *
                                    t.sumx[g],
                                arith),
                        arith);
            }
            for (std::size_t r = 0; r < tile; ++r)
                y(rows.begin + r, b) =
                    fpAdd(y(rows.begin + r, b), acc[r], arith);
        }
    }

    void
    accumulateSimdInt(BlockRange rows, std::size_t b,
                      const PackedLutKeys &pk, const IntColumnTables &t,
                      MatrixD &y, Scratch &s,
                      const SimdKernels &simd) const
    {
        const int q = w_.bits;
        const FpArith arith = config_.arith;
        const std::size_t tile = rows.size();
        s.intPsum.resize(tile);
        s.rowAcc.resize(tile);
        int64_t *psum = s.intPsum.data();
        double *acc = s.rowAcc.data();
        for (std::size_t g = 0; g < geom_.size(); ++g) {
            const GroupGeom &gg = geom_[g];
            const double scale = t.scale[g];
            std::fill(acc, acc + tile, 0.0);
            for (int i = 0; i < q; ++i) {
                std::fill(psum, psum + tile, int64_t{0});
                // One span call per (group, plane); see the FP variant
                // above for the stride facts.
                simd.accumIntSpan(psum, t.arena.chunk(gg.chunkBase),
                                  t.arena.stride,
                                  pk.chunkKeys(i, gg.chunkBase) +
                                      rows.begin,
                                  pk.rows, gg.chunks, tile);
                const auto &alpha =
                    w_.alphas[static_cast<std::size_t>(i)];
                for (std::size_t r = 0; r < tile; ++r)
                    acc[r] = fpAdd(
                        acc[r],
                        fpRound(alpha(rows.begin + r, g) *
                                    (static_cast<double>(psum[r]) *
                                     scale),
                                arith),
                        arith);
            }
            if (w_.hasOffset) {
                const double sumx =
                    static_cast<double>(t.sumMant[g]) * scale;
                for (std::size_t r = 0; r < tile; ++r)
                    acc[r] = fpAdd(
                        acc[r],
                        fpRound(w_.offsets(rows.begin + r, g) * sumx,
                                arith),
                        arith);
            }
            for (std::size_t r = 0; r < tile; ++r)
                y(rows.begin + r, b) =
                    fpAdd(y(rows.begin + r, b), acc[r], arith);
        }
    }

  private:
    /** Stage the padded mu-chunk of activations into s (reused). */
    void
    loadChunkValues(std::size_t b, const GroupGeom &gg, std::size_t ch,
                    std::vector<double> &xs) const
    {
        const int mu = config_.mu;
        xs.resize(static_cast<std::size_t>(mu));
        const std::size_t cBase =
            gg.c0 + ch * static_cast<std::size_t>(mu);
        for (int j = 0; j < mu; ++j) {
            const std::size_t c = cBase + static_cast<std::size_t>(j);
            xs[static_cast<std::size_t>(j)] =
                c < gg.c1 ? xq_(c, b) : 0.0;
        }
    }

    /** Stage the padded mu-chunk of aligned mantissas into s (reused). */
    void
    loadChunkMantissas(const AlignedBlock &block, std::size_t ch,
                       std::vector<int64_t> &ms) const
    {
        const int mu = config_.mu;
        ms.resize(static_cast<std::size_t>(mu));
        for (int j = 0; j < mu; ++j) {
            const std::size_t c = ch * static_cast<std::size_t>(mu) +
                                  static_cast<std::size_t>(j);
            ms[static_cast<std::size_t>(j)] =
                c < block.mantissas.size() ? block.mantissas[c] : 0;
        }
    }

    /** Pre-align one group's activations (integer path). */
    AlignedBlock
    alignGroup(std::size_t b, const GroupGeom &gg, Scratch &s) const
    {
        s.groupVals.resize(gg.c1 - gg.c0);
        for (std::size_t c = gg.c0; c < gg.c1; ++c)
            s.groupVals[c - gg.c0] = xq_(c, b);
        return preAlign(s.groupVals, config_.actFormat,
                        config_.alignFracBits);
    }

    /**
     * Fill one arena slab with the decoded full table for the chunk:
     * generator tree order when enabled, else direct enumeration with
     * the hFFLUT decode applied at build time in half-LUT mode. The
     * slab is bit-identical to the corresponding (half-)LUT reads.
     */
    void
    fillFpChunk(const double *xs, double *out) const
    {
        if (generator_) {
            generator_->generateFullInto(xs, out);
            return;
        }
        LutD::buildDirectInto(xs, config_.mu, config_.arith, out);
        if (config_.useHalfLut)
            expandHalfDecodeInPlace(out, config_.mu);
    }

    void
    fillIntChunk(const int64_t *ms, int64_t *out) const
    {
        if (generator_) {
            generator_->generateFullIntInto(ms, out);
            return;
        }
        LutI::buildDirectInto(ms, config_.mu, out);
        if (config_.useHalfLut)
            expandHalfDecodeInPlace(out, config_.mu);
    }

    template <bool Instr>
    void
    buildFpGroup(std::size_t b, const GroupGeom &gg, Scratch &s,
                 LutGemmCounters &cnt) const
    {
        s.fp.ensure(gg.chunks, lutEntries(config_.mu));
        for (std::size_t ch = 0; ch < gg.chunks; ++ch) {
            loadChunkValues(b, gg, ch, s.xs);
            fillFpChunk(s.xs.data(), s.fp.chunk(ch));
            if constexpr (Instr) {
                // Accumulated after the generation it accounts for:
                // the counters always reflect completed builds.
                ++cnt.lutGenerations;
                cnt.generatorAdds += addsPerGeneration_;
            }
        }
        // Offset needs sum(x) over the group (VPU side).
        s.sumx = 0.0;
        if (w_.hasOffset) {
            for (std::size_t c = gg.c0; c < gg.c1; ++c)
                s.sumx = fpAdd(s.sumx, xq_(c, b), config_.arith);
        }
    }

    template <bool Instr>
    void
    buildIntGroup(std::size_t b, const GroupGeom &gg, Scratch &s,
                  LutGemmCounters &cnt) const
    {
        const AlignedBlock block = alignGroup(b, gg, s);
        s.ig.ensure(gg.chunks, lutEntries(config_.mu));
        for (std::size_t ch = 0; ch < gg.chunks; ++ch) {
            loadChunkMantissas(block, ch, s.ms);
            fillIntChunk(s.ms.data(), s.ig.chunk(ch));
            if constexpr (Instr) {
                ++cnt.lutGenerations;
                cnt.generatorAdds += addsPerGeneration_;
            }
        }
        s.sumMant = 0;
        if (w_.hasOffset) {
            for (const auto mv : block.mantissas)
                s.sumMant += mv;
        }
        s.scale = block.scale();
    }

    template <bool Instr>
    void
    accumulateFp(BlockRange rows, std::size_t b, std::size_t g,
                 const GroupGeom &gg, const Scratch &s, MatrixD &y,
                 LutGemmCounters &cnt) const
    {
        const int mu = config_.mu;
        const int q = w_.bits;
        for (std::size_t r = rows.begin; r < rows.end; ++r) {
            double row_acc = 0.0;
            for (int i = 0; i < q; ++i) {
                double psum = 0.0;
                for (std::size_t ch = 0; ch < gg.chunks; ++ch) {
                    const uint32_t key =
                        chunkKey(w_, i, r, gg.c0 + ch * mu, gg.c1, mu);
                    psum = fpAdd(psum, s.fp.chunk(ch)[key],
                                 config_.arith);
                    if constexpr (Instr) {
                        ++cnt.lutReads;
                        ++cnt.racAccumulates;
                    }
                }
                const double alpha =
                    w_.alphas[static_cast<std::size_t>(i)](r, g);
                row_acc = fpAdd(row_acc,
                                fpRound(alpha * psum, config_.arith),
                                config_.arith);
                if constexpr (Instr)
                    ++cnt.scaleMuls;
            }
            if (w_.hasOffset) {
                row_acc = fpAdd(
                    row_acc,
                    fpRound(w_.offsets(r, g) * s.sumx, config_.arith),
                    config_.arith);
                if constexpr (Instr)
                    ++cnt.offsetOps;
            }
            y(r, b) = fpAdd(y(r, b), row_acc, config_.arith);
        }
    }

    template <bool Instr>
    void
    accumulateInt(BlockRange rows, std::size_t b, std::size_t g,
                  const GroupGeom &gg, const Scratch &s, MatrixD &y,
                  LutGemmCounters &cnt) const
    {
        const int mu = config_.mu;
        const int q = w_.bits;
        for (std::size_t r = rows.begin; r < rows.end; ++r) {
            double row_acc = 0.0;
            for (int i = 0; i < q; ++i) {
                int64_t psum = 0;
                for (std::size_t ch = 0; ch < gg.chunks; ++ch) {
                    const uint32_t key =
                        chunkKey(w_, i, r, gg.c0 + ch * mu, gg.c1, mu);
                    psum += s.ig.chunk(ch)[key];
                    if constexpr (Instr) {
                        ++cnt.lutReads;
                        ++cnt.racAccumulates;
                    }
                }
                const double alpha =
                    w_.alphas[static_cast<std::size_t>(i)](r, g);
                row_acc = fpAdd(
                    row_acc,
                    fpRound(alpha * (static_cast<double>(psum) *
                                     s.scale),
                            config_.arith),
                    config_.arith);
                if constexpr (Instr)
                    ++cnt.scaleMuls;
            }
            if (w_.hasOffset) {
                const double sumx =
                    static_cast<double>(s.sumMant) * s.scale;
                row_acc = fpAdd(
                    row_acc,
                    fpRound(w_.offsets(r, g) * sumx, config_.arith),
                    config_.arith);
                if constexpr (Instr)
                    ++cnt.offsetOps;
            }
            y(r, b) = fpAdd(y(r, b), row_acc, config_.arith);
        }
    }

    const BcqTensor &w_;
    const MatrixD &xq_;
    const LutGemmConfig &config_;
    std::optional<LutGenerator> generator_;
    uint64_t addsPerGeneration_ = 0;
    std::vector<GroupGeom> geom_;
    std::size_t totalChunks_ = 0;
};

/** Resolve the worker count, clamped to the number of row blocks. */
int
resolveWorkers(const LutGemmConfig &config, std::size_t m)
{
    const std::size_t blocks =
        (m + static_cast<std::size_t>(config.blockRows) - 1) /
        static_cast<std::size_t>(config.blockRows);
    return static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(resolveThreadCount(config.threads)),
        std::max<std::size_t>(blocks, 1)));
}

/**
 * The pool of one blocked-backend call: the context's persistent pool
 * when one is supplied, else a per-call pool in `local`. The per-call
 * default is deliberate for context-free callers: wait() and the
 * captured first exception are pool-global, so sharing a static pool
 * between concurrent lutGemm callers would entangle their completion
 * and error states (an ExecutionContext makes that single-client
 * contract explicit). The per-call pool clamps workers to the block
 * count — surplus threads would only idle-spin their spawn cost away —
 * while the context pool is sized by the thread knob alone so its size
 * stays stable across calls of different heights.
 */
ThreadPool &
acquirePool(ExecutionContext *ctx, const LutGemmConfig &config,
            std::size_t m, std::optional<ThreadPool> &local)
{
    if (ctx)
        return ctx->pool(config.threads);
    local.emplace(resolveWorkers(config, m));
    return *local;
}

/** Per-call workspace, or the context's persistent one. */
CallWorkspace &
acquireWorkspace(ExecutionContext *ctx,
                 std::optional<CallWorkspace> &local)
{
    if (ctx)
        return ctx->workspace<CallWorkspace>();
    local.emplace();
    return *local;
}

template <bool Instr>
void
runThreadedBackend(const LutGemmKernel &kernel,
                   const LutGemmConfig &config, std::size_t m,
                   MatrixD &y, LutGemmCounters &cnt,
                   ExecutionContext *ctx)
{
    std::optional<ThreadPool> localPool;
    ThreadPool &pool = acquirePool(ctx, config, m, localPool);
    std::mutex counterMutex;
    pool.parallelForBlocked(
        m, static_cast<std::size_t>(config.blockRows),
        [&](BlockRange rows) {
            // Rows partition the output: no two work items share an
            // element of y, so only the counter merge needs a lock.
            // The scratch (arenas included) persists per worker
            // thread across tiles.
            static thread_local Scratch s;
            if constexpr (Instr) {
                LutGemmCounters blockCnt;
                kernel.processRows<true>(rows, y, blockCnt, s);
                std::lock_guard<std::mutex> lock(counterMutex);
                mergeCounters(cnt, blockCnt);
            } else {
                LutGemmCounters unused;
                kernel.processRows<false>(rows, y, unused, s);
            }
        });
}

template <bool Instr>
void
runPackedBackend(const LutGemmKernel &kernel, const PackedLutKeys &pk,
                 const LutGemmConfig &config, std::size_t m,
                 std::size_t batch, MatrixD &y, LutGemmCounters &cnt,
                 ExecutionContext *ctx)
{
    std::optional<ThreadPool> localPool;
    ThreadPool &pool = acquirePool(ctx, config, m, localPool);
    std::mutex counterMutex;
    std::optional<CallWorkspace> localWs;
    CallWorkspace &ws = acquireWorkspace(ctx, localWs);
    FpColumnTables &fpTables = ws.fp;
    IntColumnTables &intTables = ws.ig;
    Scratch &buildScratch = ws.scratch;
    for (std::size_t b = 0; b < batch; ++b) {
        // Build this column's LUT arenas exactly once, on the
        // submitting thread — every row tile then only reads them.
        if (!config.preAligned)
            kernel.buildFpColumn<Instr>(b, fpTables, buildScratch, cnt);
        else
            kernel.buildIntColumn<Instr>(b, intTables, buildScratch,
                                         cnt);
        pool.parallelForBlocked(
            m, static_cast<std::size_t>(config.blockRows),
            [&, b](BlockRange rows) {
                static thread_local Scratch s;
                if constexpr (Instr) {
                    LutGemmCounters blockCnt;
                    if (!config.preAligned)
                        kernel.accumulatePackedFp<true>(
                            rows, b, pk, fpTables, y, blockCnt, s);
                    else
                        kernel.accumulatePackedInt<true>(
                            rows, b, pk, intTables, y, blockCnt, s);
                    std::lock_guard<std::mutex> lock(counterMutex);
                    mergeCounters(cnt, blockCnt);
                } else {
                    LutGemmCounters unused;
                    if (!config.preAligned)
                        kernel.accumulatePackedFp<false>(
                            rows, b, pk, fpTables, y, unused, s);
                    else
                        kernel.accumulatePackedInt<false>(
                            rows, b, pk, intTables, y, unused, s);
                }
            });
    }
}

/**
 * The Simd backend's runner: the Packed column/tile structure with
 * the vectorized accumulates. Only the uninstrumented path lives
 * here — instrumented Simd calls run the Packed loops with per-read
 * counters instead (identical outputs by the backend's contract), so
 * the counter-equivalence proof covers Simd without threading
 * counters through the vector kernels. The kernel table is resolved
 * once on the submitting thread and shared read-only by the workers.
 */
void
runSimdBackend(const LutGemmKernel &kernel, const PackedLutKeys &pk,
               const LutGemmConfig &config, std::size_t m,
               std::size_t batch, MatrixD &y, ExecutionContext *ctx)
{
    const SimdKernels &simd = simdKernels();
    std::optional<ThreadPool> localPool;
    ThreadPool &pool = acquirePool(ctx, config, m, localPool);
    std::optional<CallWorkspace> localWs;
    CallWorkspace &ws = acquireWorkspace(ctx, localWs);
    LutGemmCounters unused;
    for (std::size_t b = 0; b < batch; ++b) {
        if (!config.preAligned)
            kernel.buildFpColumn<false>(b, ws.fp, ws.scratch, unused);
        else
            kernel.buildIntColumn<false>(b, ws.ig, ws.scratch,
                                         unused);
        pool.parallelForBlocked(
            m, static_cast<std::size_t>(config.blockRows),
            [&, b](BlockRange rows) {
                static thread_local Scratch s;
                if (!config.preAligned)
                    kernel.accumulateSimdFp(rows, b, pk, ws.fp, y, s,
                                            simd);
                else
                    kernel.accumulateSimdInt(rows, b, pk, ws.ig, y, s,
                                             simd);
            });
    }
}

/**
 * Closed-form operation counts: every counter is an exact function of
 * the shapes and the backend's traversal, so the fast path derives
 * them after the loops instead of paying per-read increments. The
 * differential tests prove these equal the instrumented counts. The
 * math lives in the public addLutGemmClosedFormCounters() so the
 * shard layer can apply the identical accounting without a kernel;
 * the kernel's independently-derived geometry cross-checks it here.
 */
void
addClosedFormCounters(const BcqTensor &w, const LutGemmConfig &config,
                      std::size_t m, std::size_t batch,
                      const LutGemmKernel &kernel, LutGemmCounters &cnt)
{
    FIGLUT_ASSERT(m == w.rows, "closed-form counters row mismatch");
    LutGemmCounters before = cnt;
    addLutGemmClosedFormCounters(w, config, batch, cnt);
    // The standalone form recomputes the chunk geometry; a divergence
    // from the kernel's would silently skew every downstream energy
    // model, so re-derive one term and compare.
    const uint64_t reads = static_cast<uint64_t>(m) *
                           static_cast<uint64_t>(w.bits) *
                           static_cast<uint64_t>(kernel.totalChunks()) *
                           static_cast<uint64_t>(batch);
    FIGLUT_ASSERT(cnt.lutReads - before.lutReads == reads,
                  "closed-form counters disagree with kernel geometry");
}

MatrixD
lutGemmImpl(const BcqTensor &weights, const MatrixD &x,
            const LutGemmConfig &config, const PackedLutKeys *prepacked,
            LutGemmCounters *counters, ExecutionContext *ctx)
{
    if (const Status s = validateLutGemmConfig(config); !s.ok())
        fatal(s.message());
    if (x.rows() != weights.cols)
        fatal("LUT-GEMM shape mismatch: weights are ", weights.rows, "x",
              weights.cols, " but activations have ", x.rows(), " rows");
    if (prepacked) {
        if (config.backend != LutGemmBackend::Packed &&
            config.backend != LutGemmBackend::Simd)
            fatal("pre-packed LUT keys require the Packed or Simd "
                  "backend");
        if (prepacked->mu != config.mu ||
            prepacked->rows != weights.rows ||
            prepacked->cols != weights.cols ||
            prepacked->bits != weights.bits ||
            prepacked->groupSize != weights.groupSize)
            fatal("pre-packed LUT keys do not match the weights/config: ",
                  "packed (mu=", prepacked->mu, ", ", prepacked->rows,
                  "x", prepacked->cols, ", q=", prepacked->bits,
                  ", group=", prepacked->groupSize, ") vs (mu=",
                  config.mu, ", ", weights.rows, "x", weights.cols,
                  ", q=", weights.bits, ", group=", weights.groupSize,
                  ")");
    }

    const std::size_t m = weights.rows;
    const std::size_t n = weights.cols;
    const std::size_t batch = x.cols();

    LutGemmCounters local;
    LutGemmCounters &cnt = counters ? *counters : local;

    // Activations in their storage format, shared by every work item.
    MatrixD xq(n, batch);
    for (std::size_t i = 0; i < xq.size(); ++i)
        xq.at(i) = quantizeToFormat(x.at(i), config.actFormat);

    const LutGemmKernel kernel(weights, xq, config);
    MatrixD y(m, batch, 0.0);

    // Geometry cross-check: the packing pass derives the chunk layout
    // independently of the kernel, and a divergence would silently
    // misindex the arenas — fail loudly instead.
    if (prepacked && (prepacked->totalChunks != kernel.totalChunks() ||
                      prepacked->groups != kernel.groups()))
        fatal("pre-packed LUT keys disagree with the kernel chunk ",
              "geometry: packed ", prepacked->groups, " groups / ",
              prepacked->totalChunks, " chunks vs kernel ",
              kernel.groups(), " groups / ", kernel.totalChunks());

    switch (config.backend) {
      case LutGemmBackend::Reference: {
          std::optional<CallWorkspace> localWs;
          Scratch &s = acquireWorkspace(ctx, localWs).scratch;
          if (config.instrument) {
              kernel.processRows<true>(BlockRange{0, m}, y, cnt, s);
          } else {
              LutGemmCounters unused;
              kernel.processRows<false>(BlockRange{0, m}, y, unused, s);
          }
          break;
      }
      case LutGemmBackend::Threaded: {
          if (config.instrument)
              runThreadedBackend<true>(kernel, config, m, y, cnt, ctx);
          else
              runThreadedBackend<false>(kernel, config, m, y, cnt, ctx);
          break;
      }
      case LutGemmBackend::Packed: {
          PackedLutKeys localPack;
          const PackedLutKeys *pk = prepacked;
          if (!pk) {
              localPack = packLutKeys(weights, config.mu);
              pk = &localPack;
          }
          if (config.instrument)
              runPackedBackend<true>(kernel, *pk, config, m, batch, y,
                                     cnt, ctx);
          else
              runPackedBackend<false>(kernel, *pk, config, m, batch, y,
                                      cnt, ctx);
          break;
      }
      case LutGemmBackend::Simd: {
          PackedLutKeys localPack;
          const PackedLutKeys *pk = prepacked;
          if (!pk) {
              localPack = packLutKeys(weights, config.mu);
              pk = &localPack;
          }
          // Instrumented Simd runs the Packed loops (same outputs by
          // the backend contract) so the per-read counter path stays
          // scalar; the fast path uses the vector kernels and gets
          // the closed-form counts below, which are backend-invariant
          // between Packed and Simd (both build each LUT set once).
          if (config.instrument)
              runPackedBackend<true>(kernel, *pk, config, m, batch, y,
                                     cnt, ctx);
          else
              runSimdBackend(kernel, *pk, config, m, batch, y, ctx);
          break;
      }
    }

    if (!config.instrument)
        addClosedFormCounters(weights, config, m, batch, kernel, cnt);
    return y;
}

} // namespace

int
lutGemmBackendCode(LutGemmBackend backend)
{
    switch (backend) {
      case LutGemmBackend::Reference: return 0;
      case LutGemmBackend::Threaded: return 1;
      case LutGemmBackend::Packed: return 2;
      case LutGemmBackend::Simd: return 3;
    }
    return 0;
}

const char *
lutGemmBackendName(LutGemmBackend backend)
{
    switch (backend) {
      case LutGemmBackend::Reference: return "reference";
      case LutGemmBackend::Threaded: return "threaded";
      case LutGemmBackend::Packed: return "packed";
      case LutGemmBackend::Simd: return "simd";
    }
    return "reference";
}

bool
parseLutGemmBackend(const std::string &name, LutGemmBackend *out)
{
    if (name == "reference")
        *out = LutGemmBackend::Reference;
    else if (name == "threaded")
        *out = LutGemmBackend::Threaded;
    else if (name == "packed")
        *out = LutGemmBackend::Packed;
    else if (name == "simd")
        *out = LutGemmBackend::Simd;
    else
        return false;
    return true;
}

Status
validateLutGemmConfig(const LutGemmConfig &config)
{
    if (config.mu < 1 || config.mu > kMaxMu)
        return Status::invalidArgument("LUT-GEMM mu must be in [1, ",
                                       kMaxMu, "], got ", config.mu);
    if (config.useHalfLut && config.mu < 2)
        return Status::invalidArgument(
            "hFFLUT requires mu >= 2 (mu=1 tables have no half); ",
            "raise mu or set useHalfLut = false");
    if (config.backend != LutGemmBackend::Reference &&
        config.blockRows < 1)
        return Status::invalidArgument(
            "LUT-GEMM blocked backends need blockRows >= 1, got ",
            config.blockRows);
    if (config.threads > kMaxLutGemmThreads)
        return Status::invalidArgument(
            "LUT-GEMM threads must be <= ", kMaxLutGemmThreads,
            ", got ", config.threads, " (<= 0 selects the hardware ",
            "concurrency)");
    return Status::okStatus();
}

void
addLutGemmClosedFormCounters(const BcqTensor &weights,
                             const LutGemmConfig &config,
                             std::size_t batch,
                             LutGemmCounters &counters)
{
    // Chunk geometry, identical to the LutGemmKernel constructor: per
    // group, columns [c0, c1) split into ceil((c1 - c0) / mu) chunks.
    const std::size_t groups = weights.groupsPerRow();
    std::size_t totalChunks = 0;
    for (std::size_t g = 0; g < groups; ++g) {
        const std::size_t c0 = g * weights.groupSize;
        const std::size_t c1 =
            std::min(weights.cols, c0 + weights.groupSize);
        totalChunks +=
            (c1 - c0 + static_cast<std::size_t>(config.mu) - 1) /
            static_cast<std::size_t>(config.mu);
    }
    const uint64_t addsPerGeneration =
        (config.useGeneratorTree && config.mu >= 2)
            ? lutGeneratorAdderCount(config.mu).treeAdds
            : static_cast<uint64_t>(lutEntries(config.mu)) *
                  static_cast<uint64_t>(config.mu - 1);

    const auto rows64 = static_cast<uint64_t>(weights.rows);
    const auto batch64 = static_cast<uint64_t>(batch);
    const auto chunks64 = static_cast<uint64_t>(totalChunks);
    const auto groups64 = static_cast<uint64_t>(groups);
    const auto bits64 = static_cast<uint64_t>(weights.bits);

    // LUT-build passes over the (batch, group) table sets: Reference
    // and Packed build each set once; Threaded rebuilds per row block.
    uint64_t passes = 1;
    if (config.backend == LutGemmBackend::Threaded) {
        passes =
            (rows64 + static_cast<uint64_t>(config.blockRows) - 1) /
            static_cast<uint64_t>(config.blockRows);
    }
    const uint64_t builds = passes * batch64 * chunks64;
    counters.lutGenerations += builds;
    counters.generatorAdds += builds * addsPerGeneration;

    const uint64_t reads = rows64 * bits64 * chunks64 * batch64;
    counters.lutReads += reads;
    counters.racAccumulates += reads;
    counters.scaleMuls += rows64 * bits64 * groups64 * batch64;
    if (weights.hasOffset)
        counters.offsetOps += rows64 * groups64 * batch64;
}

MatrixD
lutGemm(const BcqTensor &weights, const MatrixD &x,
        const LutGemmConfig &config, LutGemmCounters *counters,
        ExecutionContext *ctx)
{
    return lutGemmImpl(weights, x, config, nullptr, counters, ctx);
}

MatrixD
lutGemm(const BcqTensor &weights, const MatrixD &x,
        const LutGemmConfig &config, const PackedLutKeys &packed,
        LutGemmCounters *counters, ExecutionContext *ctx)
{
    return lutGemmImpl(weights, x, config, &packed, counters, ctx);
}

} // namespace figlut
