#include "core/lut_gemm.h"

#include <cmath>
#include <optional>

#include "common/logging.h"

namespace figlut {

namespace {

/** Per-chunk LUT handles for one activation column of one group. */
struct FpChunkLuts
{
    std::vector<HalfLutD> half;
    std::vector<LutD> full;
    bool useHalf = false;

    double
    read(std::size_t chunk, uint32_t key) const
    {
        return useHalf ? half[chunk].value(key) : full[chunk].value(key);
    }
};

struct IntChunkLuts
{
    std::vector<HalfLutI> half;
    std::vector<LutI> full;
    bool useHalf = false;

    int64_t
    read(std::size_t chunk, uint32_t key) const
    {
        return useHalf ? half[chunk].value(key) : full[chunk].value(key);
    }
};

/** Extract the padded mu-chunk of activations [c0, c0+mu) within group. */
std::vector<double>
chunkValues(const MatrixD &x, std::size_t b, std::size_t c0,
            std::size_t c_end, int mu)
{
    std::vector<double> xs(static_cast<std::size_t>(mu), 0.0);
    for (int j = 0; j < mu; ++j) {
        const std::size_t c = c0 + static_cast<std::size_t>(j);
        if (c < c_end)
            xs[static_cast<std::size_t>(j)] = x(c, b);
    }
    return xs;
}

/** Key for (row, plane) over the chunk starting at c0 (tail padded 1). */
uint32_t
chunkKey(const BcqTensor &w, int plane, std::size_t r, std::size_t c0,
         std::size_t c_end, int mu)
{
    uint32_t key = 0;
    for (int j = 0; j < mu; ++j) {
        const std::size_t c = c0 + static_cast<std::size_t>(j);
        // Padding columns pair a zero activation with weight +1, which
        // contributes exactly zero in both FP and integer domains.
        const uint32_t bit =
            c < c_end
                ? w.planes[static_cast<std::size_t>(plane)](r, c)
                : 1u;
        key = (key << 1) | bit;
    }
    return key;
}

} // namespace

MatrixD
lutGemm(const BcqTensor &weights, const MatrixD &x,
        const LutGemmConfig &config, LutGemmCounters *counters)
{
    if (config.mu < 1 || config.mu > kMaxMu)
        fatal("LUT-GEMM mu must be in [1, ", kMaxMu, "], got ", config.mu);
    if (x.rows() != weights.cols)
        fatal("LUT-GEMM shape mismatch: weights are ", weights.rows, "x",
              weights.cols, " but activations have ", x.rows(), " rows");
    if (config.useHalfLut && config.mu < 2)
        fatal("hFFLUT requires mu >= 2 (mu=1 tables have no half)");

    const std::size_t m = weights.rows;
    const std::size_t n = weights.cols;
    const std::size_t batch = x.cols();
    const std::size_t groups = weights.groupsPerRow();
    const int mu = config.mu;
    const int q = weights.bits;

    LutGemmCounters local;
    LutGemmCounters &cnt = counters ? *counters : local;

    std::optional<LutGenerator> generator;
    if (config.useGeneratorTree && mu >= 2)
        generator.emplace(mu, config.arith);

    MatrixD y(m, batch, 0.0);

    for (std::size_t b = 0; b < batch; ++b) {
        // Activation column in its storage format.
        std::vector<double> xb(n);
        for (std::size_t c = 0; c < n; ++c)
            xb[c] = quantizeToFormat(x(c, b), config.actFormat);

        for (std::size_t g = 0; g < groups; ++g) {
            const std::size_t c0 = g * weights.groupSize;
            const std::size_t c1 = std::min(n, c0 + weights.groupSize);
            const std::size_t chunks = (c1 - c0 + mu - 1) / mu;

            if (!config.preAligned) {
                // ---- FIGLUT-F: FP tables, FP accumulation ----
                FpChunkLuts luts;
                luts.useHalf = config.useHalfLut;
                for (std::size_t ch = 0; ch < chunks; ++ch) {
                    const auto vals = chunkValues(
                        x, b, c0 + ch * mu, c1, mu);
                    // Values must first live in the activation format.
                    std::vector<double> fmt_vals(vals.size());
                    for (std::size_t j = 0; j < vals.size(); ++j)
                        fmt_vals[j] = quantizeToFormat(
                            vals[j], config.actFormat);
                    ++cnt.lutGenerations;
                    if (generator) {
                        cnt.generatorAdds += generator->stats().treeAdds;
                        auto h = generator->generateHalf(fmt_vals);
                        if (config.useHalfLut) {
                            luts.half.push_back(std::move(h));
                        } else {
                            // Mirror out to a full table.
                            std::vector<double> full(lutEntries(mu));
                            for (uint32_t k = 0; k < full.size(); ++k)
                                full[k] = h.value(k);
                            luts.full.emplace_back(mu, std::move(full));
                        }
                    } else {
                        cnt.generatorAdds +=
                            static_cast<uint64_t>(lutEntries(mu)) *
                            static_cast<uint64_t>(mu - 1);
                        auto fulllut =
                            LutD::buildDirect(fmt_vals, config.arith);
                        if (config.useHalfLut) {
                            luts.half.push_back(
                                HalfLutD::fromFull(fulllut));
                        } else {
                            luts.full.push_back(std::move(fulllut));
                        }
                    }
                }

                // Offset needs sum(x) over the group (VPU side).
                double sumx = 0.0;
                if (weights.hasOffset) {
                    for (std::size_t c = c0; c < c1; ++c)
                        sumx = fpAdd(sumx, xb[c], config.arith);
                }

                for (std::size_t r = 0; r < m; ++r) {
                    double row_acc = 0.0;
                    for (int i = 0; i < q; ++i) {
                        double psum = 0.0;
                        for (std::size_t ch = 0; ch < chunks; ++ch) {
                            const uint32_t key = chunkKey(
                                weights, i, r, c0 + ch * mu, c1, mu);
                            psum = fpAdd(psum, luts.read(ch, key),
                                         config.arith);
                            ++cnt.lutReads;
                            ++cnt.racAccumulates;
                        }
                        const double alpha =
                            weights.alphas[static_cast<std::size_t>(i)](
                                r, g);
                        row_acc = fpAdd(
                            row_acc,
                            fpRound(alpha * psum, config.arith),
                            config.arith);
                        ++cnt.scaleMuls;
                    }
                    if (weights.hasOffset) {
                        row_acc = fpAdd(
                            row_acc,
                            fpRound(weights.offsets(r, g) * sumx,
                                    config.arith),
                            config.arith);
                        ++cnt.offsetOps;
                    }
                    y(r, b) = fpAdd(y(r, b), row_acc, config.arith);
                }
            } else {
                // ---- FIGLUT-I: pre-aligned integer tables ----
                std::vector<double> group_vals(xb.begin() + c0,
                                               xb.begin() + c1);
                const AlignedBlock block = preAlign(
                    group_vals, config.actFormat, config.alignFracBits);

                IntChunkLuts luts;
                luts.useHalf = config.useHalfLut;
                for (std::size_t ch = 0; ch < chunks; ++ch) {
                    std::vector<int64_t> ms(
                        static_cast<std::size_t>(mu), 0);
                    for (int j = 0; j < mu; ++j) {
                        const std::size_t c = ch * mu +
                                              static_cast<std::size_t>(j);
                        if (c < block.mantissas.size())
                            ms[static_cast<std::size_t>(j)] =
                                block.mantissas[c];
                    }
                    ++cnt.lutGenerations;
                    if (generator) {
                        cnt.generatorAdds += generator->stats().treeAdds;
                        auto h = generator->generateHalfInt(ms);
                        if (config.useHalfLut) {
                            luts.half.push_back(std::move(h));
                        } else {
                            std::vector<int64_t> full(lutEntries(mu));
                            for (uint32_t k = 0; k < full.size(); ++k)
                                full[k] = h.value(k);
                            luts.full.emplace_back(mu, std::move(full));
                        }
                    } else {
                        cnt.generatorAdds +=
                            static_cast<uint64_t>(lutEntries(mu)) *
                            static_cast<uint64_t>(mu - 1);
                        auto fulllut = LutI::buildDirect(ms);
                        if (config.useHalfLut) {
                            luts.half.push_back(
                                HalfLutI::fromFull(fulllut));
                        } else {
                            luts.full.push_back(std::move(fulllut));
                        }
                    }
                }

                int64_t sum_mant = 0;
                if (weights.hasOffset) {
                    for (const auto mv : block.mantissas)
                        sum_mant += mv;
                }
                const double scale = block.scale();

                for (std::size_t r = 0; r < m; ++r) {
                    double row_acc = 0.0;
                    for (int i = 0; i < q; ++i) {
                        int64_t psum = 0;
                        for (std::size_t ch = 0; ch < chunks; ++ch) {
                            const uint32_t key = chunkKey(
                                weights, i, r, c0 + ch * mu, c1, mu);
                            psum += luts.read(ch, key);
                            ++cnt.lutReads;
                            ++cnt.racAccumulates;
                        }
                        const double alpha =
                            weights.alphas[static_cast<std::size_t>(i)](
                                r, g);
                        row_acc = fpAdd(
                            row_acc,
                            fpRound(alpha * (static_cast<double>(psum) *
                                             scale),
                                    config.arith),
                            config.arith);
                        ++cnt.scaleMuls;
                    }
                    if (weights.hasOffset) {
                        const double sumx =
                            static_cast<double>(sum_mant) * scale;
                        row_acc = fpAdd(
                            row_acc,
                            fpRound(weights.offsets(r, g) * sumx,
                                    config.arith),
                            config.arith);
                        ++cnt.offsetOps;
                    }
                    y(r, b) = fpAdd(y(r, b), row_acc, config.arith);
                }
            }
        }
    }
    return y;
}

} // namespace figlut
