#include "core/lut_gemm.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <optional>

#include "common/logging.h"
#include "core/parallel.h"

namespace figlut {

namespace {

/** Per-chunk LUT handles for one activation column of one group. */
struct FpChunkLuts
{
    std::vector<HalfLutD> half;
    std::vector<LutD> full;
    bool useHalf = false;

    double
    read(std::size_t chunk, uint32_t key) const
    {
        return useHalf ? half[chunk].value(key) : full[chunk].value(key);
    }
};

struct IntChunkLuts
{
    std::vector<HalfLutI> half;
    std::vector<LutI> full;
    bool useHalf = false;

    int64_t
    read(std::size_t chunk, uint32_t key) const
    {
        return useHalf ? half[chunk].value(key) : full[chunk].value(key);
    }
};

/** Extract the padded mu-chunk of activations [c0, c0+mu) within group. */
std::vector<double>
chunkValues(const MatrixD &x, std::size_t b, std::size_t c0,
            std::size_t c_end, int mu)
{
    std::vector<double> xs(static_cast<std::size_t>(mu), 0.0);
    for (int j = 0; j < mu; ++j) {
        const std::size_t c = c0 + static_cast<std::size_t>(j);
        if (c < c_end)
            xs[static_cast<std::size_t>(j)] = x(c, b);
    }
    return xs;
}

/** Key for (row, plane) over the chunk starting at c0 (tail padded 1). */
uint32_t
chunkKey(const BcqTensor &w, int plane, std::size_t r, std::size_t c0,
         std::size_t c_end, int mu)
{
    uint32_t key = 0;
    for (int j = 0; j < mu; ++j) {
        const std::size_t c = c0 + static_cast<std::size_t>(j);
        // Padding columns pair a zero activation with weight +1, which
        // contributes exactly zero in both FP and integer domains.
        const uint32_t bit =
            c < c_end
                ? w.planes[static_cast<std::size_t>(plane)](r, c)
                : 1u;
        key = (key << 1) | bit;
    }
    return key;
}

/** FP-path tables and the group activation sum for the offset term. */
struct FpGroupLuts
{
    FpChunkLuts luts;
    double sumx = 0.0;
};

/** Integer-path tables plus the shared pre-alignment scale. */
struct IntGroupLuts
{
    IntChunkLuts luts;
    int64_t sumMant = 0;
    double scale = 1.0;
};

/**
 * Shared kernel state: both backends execute processRows(), which
 * walks one M-tile through every (batch column, group) pair, building
 * each LUT set once and reusing it across all rows of the tile before
 * moving on — the cache-blocked (M-tile x chunk) traversal. The
 * Reference backend calls it with the full row range; the Threaded
 * backend dispatches one call per blockRows-sized tile.
 *
 * Bit-identity across backends holds because each output element
 * y(r, b) is touched only by the work item owning row r, and its
 * accumulation order (columns, then groups, then planes/chunks) and
 * every intermediate value are independent of the tiling.
 */
class LutGemmKernel
{
  public:
    LutGemmKernel(const BcqTensor &weights, const MatrixD &xq,
                  const LutGemmConfig &config)
        : w_(weights), xq_(xq), config_(config)
    {
        if (config_.useGeneratorTree && config_.mu >= 2)
            generator_.emplace(config_.mu, config_.arith);
    }

    void
    processRows(BlockRange rows, MatrixD &y, LutGemmCounters &cnt) const
    {
        const std::size_t batch = xq_.cols();
        const std::size_t groups = w_.groupsPerRow();
        for (std::size_t b = 0; b < batch; ++b) {
            for (std::size_t g = 0; g < groups; ++g) {
                if (!config_.preAligned) {
                    const auto group = buildFpGroup(b, g, cnt);
                    accumulateFp(rows, b, g, group, y, cnt);
                } else {
                    const auto group = buildIntGroup(b, g, cnt);
                    accumulateInt(rows, b, g, group, y, cnt);
                }
            }
        }
    }

  private:
    /** Column range [c0, c1) and chunk count of group g. */
    void
    groupExtent(std::size_t g, std::size_t &c0, std::size_t &c1,
                std::size_t &chunks) const
    {
        c0 = g * w_.groupSize;
        c1 = std::min(w_.cols, c0 + w_.groupSize);
        chunks = (c1 - c0 + config_.mu - 1) /
                 static_cast<std::size_t>(config_.mu);
    }

    FpGroupLuts
    buildFpGroup(std::size_t b, std::size_t g, LutGemmCounters &cnt) const
    {
        const int mu = config_.mu;
        std::size_t c0 = 0, c1 = 0, chunks = 0;
        groupExtent(g, c0, c1, chunks);

        FpGroupLuts group;
        group.luts.useHalf = config_.useHalfLut;
        for (std::size_t ch = 0; ch < chunks; ++ch) {
            const auto vals = chunkValues(xq_, b, c0 + ch * mu, c1, mu);
            ++cnt.lutGenerations;
            if (generator_) {
                cnt.generatorAdds += generator_->stats().treeAdds;
                auto h = generator_->generateHalf(vals);
                if (config_.useHalfLut) {
                    group.luts.half.push_back(std::move(h));
                } else {
                    // Mirror out to a full table.
                    std::vector<double> full(lutEntries(mu));
                    for (uint32_t k = 0; k < full.size(); ++k)
                        full[k] = h.value(k);
                    group.luts.full.emplace_back(mu, std::move(full));
                }
            } else {
                cnt.generatorAdds +=
                    static_cast<uint64_t>(lutEntries(mu)) *
                    static_cast<uint64_t>(mu - 1);
                auto fulllut = LutD::buildDirect(vals, config_.arith);
                if (config_.useHalfLut) {
                    group.luts.half.push_back(HalfLutD::fromFull(fulllut));
                } else {
                    group.luts.full.push_back(std::move(fulllut));
                }
            }
        }

        // Offset needs sum(x) over the group (VPU side).
        if (w_.hasOffset) {
            for (std::size_t c = c0; c < c1; ++c)
                group.sumx = fpAdd(group.sumx, xq_(c, b), config_.arith);
        }
        return group;
    }

    IntGroupLuts
    buildIntGroup(std::size_t b, std::size_t g, LutGemmCounters &cnt) const
    {
        const int mu = config_.mu;
        std::size_t c0 = 0, c1 = 0, chunks = 0;
        groupExtent(g, c0, c1, chunks);

        std::vector<double> group_vals(c1 - c0);
        for (std::size_t c = c0; c < c1; ++c)
            group_vals[c - c0] = xq_(c, b);
        const AlignedBlock block = preAlign(
            group_vals, config_.actFormat, config_.alignFracBits);

        IntGroupLuts group;
        group.luts.useHalf = config_.useHalfLut;
        for (std::size_t ch = 0; ch < chunks; ++ch) {
            std::vector<int64_t> ms(static_cast<std::size_t>(mu), 0);
            for (int j = 0; j < mu; ++j) {
                const std::size_t c = ch * mu + static_cast<std::size_t>(j);
                if (c < block.mantissas.size())
                    ms[static_cast<std::size_t>(j)] = block.mantissas[c];
            }
            ++cnt.lutGenerations;
            if (generator_) {
                cnt.generatorAdds += generator_->stats().treeAdds;
                auto h = generator_->generateHalfInt(ms);
                if (config_.useHalfLut) {
                    group.luts.half.push_back(std::move(h));
                } else {
                    std::vector<int64_t> full(lutEntries(mu));
                    for (uint32_t k = 0; k < full.size(); ++k)
                        full[k] = h.value(k);
                    group.luts.full.emplace_back(mu, std::move(full));
                }
            } else {
                cnt.generatorAdds +=
                    static_cast<uint64_t>(lutEntries(mu)) *
                    static_cast<uint64_t>(mu - 1);
                auto fulllut = LutI::buildDirect(ms);
                if (config_.useHalfLut) {
                    group.luts.half.push_back(HalfLutI::fromFull(fulllut));
                } else {
                    group.luts.full.push_back(std::move(fulllut));
                }
            }
        }

        if (w_.hasOffset) {
            for (const auto mv : block.mantissas)
                group.sumMant += mv;
        }
        group.scale = block.scale();
        return group;
    }

    void
    accumulateFp(BlockRange rows, std::size_t b, std::size_t g,
                 const FpGroupLuts &group, MatrixD &y,
                 LutGemmCounters &cnt) const
    {
        const int mu = config_.mu;
        const int q = w_.bits;
        std::size_t c0 = 0, c1 = 0, chunks = 0;
        groupExtent(g, c0, c1, chunks);

        for (std::size_t r = rows.begin; r < rows.end; ++r) {
            double row_acc = 0.0;
            for (int i = 0; i < q; ++i) {
                double psum = 0.0;
                for (std::size_t ch = 0; ch < chunks; ++ch) {
                    const uint32_t key =
                        chunkKey(w_, i, r, c0 + ch * mu, c1, mu);
                    psum = fpAdd(psum, group.luts.read(ch, key),
                                 config_.arith);
                    ++cnt.lutReads;
                    ++cnt.racAccumulates;
                }
                const double alpha =
                    w_.alphas[static_cast<std::size_t>(i)](r, g);
                row_acc = fpAdd(row_acc,
                                fpRound(alpha * psum, config_.arith),
                                config_.arith);
                ++cnt.scaleMuls;
            }
            if (w_.hasOffset) {
                row_acc = fpAdd(
                    row_acc,
                    fpRound(w_.offsets(r, g) * group.sumx, config_.arith),
                    config_.arith);
                ++cnt.offsetOps;
            }
            y(r, b) = fpAdd(y(r, b), row_acc, config_.arith);
        }
    }

    void
    accumulateInt(BlockRange rows, std::size_t b, std::size_t g,
                  const IntGroupLuts &group, MatrixD &y,
                  LutGemmCounters &cnt) const
    {
        const int mu = config_.mu;
        const int q = w_.bits;
        std::size_t c0 = 0, c1 = 0, chunks = 0;
        groupExtent(g, c0, c1, chunks);

        for (std::size_t r = rows.begin; r < rows.end; ++r) {
            double row_acc = 0.0;
            for (int i = 0; i < q; ++i) {
                int64_t psum = 0;
                for (std::size_t ch = 0; ch < chunks; ++ch) {
                    const uint32_t key =
                        chunkKey(w_, i, r, c0 + ch * mu, c1, mu);
                    psum += group.luts.read(ch, key);
                    ++cnt.lutReads;
                    ++cnt.racAccumulates;
                }
                const double alpha =
                    w_.alphas[static_cast<std::size_t>(i)](r, g);
                row_acc = fpAdd(
                    row_acc,
                    fpRound(alpha * (static_cast<double>(psum) *
                                     group.scale),
                            config_.arith),
                    config_.arith);
                ++cnt.scaleMuls;
            }
            if (w_.hasOffset) {
                const double sumx =
                    static_cast<double>(group.sumMant) * group.scale;
                row_acc = fpAdd(
                    row_acc,
                    fpRound(w_.offsets(r, g) * sumx, config_.arith),
                    config_.arith);
                ++cnt.offsetOps;
            }
            y(r, b) = fpAdd(y(r, b), row_acc, config_.arith);
        }
    }

    const BcqTensor &w_;
    const MatrixD &xq_;
    const LutGemmConfig &config_;
    std::optional<LutGenerator> generator_;
};

} // namespace

MatrixD
lutGemm(const BcqTensor &weights, const MatrixD &x,
        const LutGemmConfig &config, LutGemmCounters *counters)
{
    if (config.mu < 1 || config.mu > kMaxMu)
        fatal("LUT-GEMM mu must be in [1, ", kMaxMu, "], got ", config.mu);
    if (x.rows() != weights.cols)
        fatal("LUT-GEMM shape mismatch: weights are ", weights.rows, "x",
              weights.cols, " but activations have ", x.rows(), " rows");
    if (config.useHalfLut && config.mu < 2)
        fatal("hFFLUT requires mu >= 2 (mu=1 tables have no half)");
    if (config.backend == LutGemmBackend::Threaded && config.blockRows < 1)
        fatal("LUT-GEMM threaded backend needs blockRows >= 1, got ",
              config.blockRows);
    if (config.threads > kMaxLutGemmThreads)
        fatal("LUT-GEMM threads must be <= ", kMaxLutGemmThreads,
              ", got ", config.threads);

    const std::size_t m = weights.rows;
    const std::size_t n = weights.cols;
    const std::size_t batch = x.cols();

    LutGemmCounters local;
    LutGemmCounters &cnt = counters ? *counters : local;

    // Activations in their storage format, shared by every work item.
    MatrixD xq(n, batch);
    for (std::size_t i = 0; i < xq.size(); ++i)
        xq.at(i) = quantizeToFormat(x.at(i), config.actFormat);

    const LutGemmKernel kernel(weights, xq, config);
    MatrixD y(m, batch, 0.0);

    if (config.backend == LutGemmBackend::Reference) {
        kernel.processRows(BlockRange{0, m}, y, cnt);
        return y;
    }

    // The pool is per-call on purpose: wait() and the captured first
    // exception are pool-global, so sharing a static pool between
    // concurrent lutGemm callers would entangle their completion and
    // error states. Spawn cost is microseconds against the row work a
    // threaded call is worth dispatching in the first place. Workers
    // beyond one per block would only idle, so clamp.
    const std::size_t blocks =
        (m + static_cast<std::size_t>(config.blockRows) - 1) /
        static_cast<std::size_t>(config.blockRows);
    const int workers = static_cast<int>(
        std::min<std::size_t>(
            static_cast<std::size_t>(resolveThreadCount(config.threads)),
            std::max<std::size_t>(blocks, 1)));
    ThreadPool pool(workers);
    std::mutex counterMutex;
    pool.parallelForBlocked(
        m, static_cast<std::size_t>(config.blockRows),
        [&](BlockRange rows) {
            // Rows partition the output: no two work items share an
            // element of y, so only the counter merge needs a lock.
            LutGemmCounters blockCnt;
            kernel.processRows(rows, y, blockCnt);
            std::lock_guard<std::mutex> lock(counterMutex);
            cnt.lutGenerations += blockCnt.lutGenerations;
            cnt.generatorAdds += blockCnt.generatorAdds;
            cnt.lutReads += blockCnt.lutReads;
            cnt.racAccumulates += blockCnt.racAccumulates;
            cnt.scaleMuls += blockCnt.scaleMuls;
            cnt.offsetOps += blockCnt.offsetOps;
        });
    return y;
}

} // namespace figlut
