/**
 * @file
 * LUT key encoding (paper Table II).
 *
 * A key is the mu-bit pattern of binary weights covering mu consecutive
 * activations. The *first* activation of the group maps to the key's
 * most significant bit; bit value 1 encodes weight +1 and bit value 0
 * encodes weight -1, so key b'000 reads -x1-x2-x3 and key b'111 reads
 * +x1+x2+x3, exactly as in Table II.
 */

#ifndef FIGLUT_CORE_LUT_KEY_H
#define FIGLUT_CORE_LUT_KEY_H

#include <cstdint>

#include "common/logging.h"

namespace figlut {

/** Maximum supported LUT input-group size (2^mu table entries). */
inline constexpr int kMaxMu = 10;

/** Number of table entries for a given mu. */
constexpr uint32_t
lutEntries(int mu)
{
    return 1u << mu;
}

/**
 * Build a key from plane bits.
 *
 * @param bits  pointer to mu values in {0, 1} (1 => weight +1), ordered
 *              by ascending activation index
 * @param mu    group size
 */
inline uint32_t
makeKey(const uint8_t *bits, int mu)
{
    FIGLUT_ASSERT(mu >= 1 && mu <= kMaxMu, "mu out of range: ", mu);
    uint32_t key = 0;
    for (int j = 0; j < mu; ++j) {
        FIGLUT_ASSERT(bits[j] <= 1, "plane bit must be 0/1");
        key = (key << 1) | bits[j];
    }
    return key;
}

/** Sign (+1/-1) that key assigns to the j-th activation of the group. */
inline int
keySign(uint32_t key, int j, int mu)
{
    FIGLUT_ASSERT(j >= 0 && j < mu, "key position out of range");
    return ((key >> (mu - 1 - j)) & 1u) ? 1 : -1;
}

/** Bitwise complement of a key within mu bits (sign flip of all). */
inline uint32_t
complementKey(uint32_t key, int mu)
{
    return (~key) & (lutEntries(mu) - 1u);
}

} // namespace figlut

#endif // FIGLUT_CORE_LUT_KEY_H
