/**
 * @file
 * Functional model of the full FFLUT: all 2^mu signed combinations of a
 * group of mu activations (paper Section III-A, Table II).
 *
 * Two value domains are provided:
 *  - LutD: double/FP entries (FIGLUT-F and accuracy references). Each
 *    addition can optionally be rounded to a narrow FP format to model
 *    the physical adder width.
 *  - LutI: int64 entries over pre-aligned mantissas (FIGLUT-I); integer
 *    arithmetic is exact, so this path is bit-reproducible.
 */

#ifndef FIGLUT_CORE_LUT_H
#define FIGLUT_CORE_LUT_H

#include <cstdint>
#include <vector>

#include "core/lut_key.h"
#include "numerics/fp_format.h"

namespace figlut {

/** Arithmetic mode for FP LUT construction and accumulation. */
enum class FpArith
{
    Exact,  ///< double precision throughout (oracle)
    Fp32,   ///< round every add to binary32 (FIGLUT-F hardware)
    Fp16,   ///< round every add to binary16 (stress/ablation)
    Bf16,   ///< round every add to bfloat16 (stress/ablation)
};

/** Apply one FP addition in the given arithmetic mode. */
double fpAdd(double a, double b, FpArith mode);

/** Round a value into the representation used by the mode. */
double fpRound(double v, FpArith mode);

/** Full look-up table over doubles. */
class LutD
{
  public:
    /** Build by direct enumeration (mu-1 adds per entry). */
    static LutD buildDirect(const std::vector<double> &xs, FpArith mode);

    /**
     * Direct enumeration into caller-owned storage: writes the 2^mu
     * entries to out with no allocation. Backs the flat LUT arenas of
     * the LUT-GEMM kernel; values are identical to buildDirect().
     */
    static void buildDirectInto(const double *xs, int mu, FpArith mode,
                                double *out);

    int mu() const { return mu_; }
    uint32_t entries() const { return lutEntries(mu_); }

    /** Entry lookup; key per Table II. */
    double
    value(uint32_t key) const
    {
        FIGLUT_ASSERT(key < values_.size(), "LUT key out of range");
        return values_[key];
    }

    const std::vector<double> &raw() const { return values_; }

    /** Construct from precomputed entries (used by the generator). */
    LutD(int mu, std::vector<double> values);

  private:
    int mu_;
    std::vector<double> values_;
};

/** Full look-up table over pre-aligned integer mantissas. */
class LutI
{
  public:
    /** Build by direct enumeration over integer mantissas (exact). */
    static LutI buildDirect(const std::vector<int64_t> &xs);

    /** Direct enumeration into caller-owned storage (2^mu entries). */
    static void buildDirectInto(const int64_t *xs, int mu, int64_t *out);

    int mu() const { return mu_; }
    uint32_t entries() const { return lutEntries(mu_); }

    int64_t
    value(uint32_t key) const
    {
        FIGLUT_ASSERT(key < values_.size(), "LUT key out of range");
        return values_[key];
    }

    const std::vector<int64_t> &raw() const { return values_; }

    LutI(int mu, std::vector<int64_t> values);

  private:
    int mu_;
    std::vector<int64_t> values_;
};

} // namespace figlut

#endif // FIGLUT_CORE_LUT_H
