/**
 * @file
 * Long-lived execution resources for the functional kernels.
 *
 * Every lutGemm() call that runs a blocked backend needs a ThreadPool
 * and a set of scratch buffers (LUT arenas, column tables, staging
 * slots). Constructing those per call is correct but wasteful under
 * repeated traffic: worker spawn/join and arena reallocation dominate
 * small GEMMs. An ExecutionContext owns both across calls — the
 * serving-loop discipline the runtime layer (runtime/session.h) is
 * built on. Kernels accept an optional ExecutionContext*; with none
 * supplied they fall back to per-call construction, so one-shot
 * callers are unaffected.
 *
 * Ownership rules (see DESIGN.md):
 *  - An ExecutionContext is NOT thread-safe: one context serves one
 *    client thread. ThreadPool::wait() and the captured first
 *    exception are pool-global, so two concurrent kernels sharing a
 *    pool would entangle their completion and error states. Clients
 *    that dispatch kernels from several threads create one context
 *    per thread.
 *  - The context must outlive every kernel call it is passed to; the
 *    kernels never retain it beyond the call.
 *  - The workspace slot holds one kernel-defined scratch type at a
 *    time. Switching types destroys the previous workspace (buffers
 *    regrow on the next call); alternating kernels that want distinct
 *    scratch should use distinct contexts.
 */

#ifndef FIGLUT_CORE_EXECUTION_CONTEXT_H
#define FIGLUT_CORE_EXECUTION_CONTEXT_H

#include <cstdint>
#include <memory>
#include <typeinfo>

#include "core/parallel.h"

namespace figlut {

/** Reusable ThreadPool + kernel workspace for repeated kernel calls. */
class ExecutionContext
{
  public:
    /**
     * @param threads default worker budget for pool() requests that do
     *                not name a count; <= 0 = hardware concurrency.
     * @param affinity optional CPU set every spawned pool worker pins
     *                 to (empty = unpinned). Used by the shard layer
     *                 to keep a worker group on one NUMA node; pinning
     *                 failures are silent and never affect results.
     */
    explicit ExecutionContext(int threads = 0, CpuSet affinity = {});
    ~ExecutionContext();

    ExecutionContext(const ExecutionContext &) = delete;
    ExecutionContext &operator=(const ExecutionContext &) = delete;

    /** Configured default worker budget (<= 0 = hardware). */
    int threads() const { return threads_; }

    /** CPU set pool workers pin to (empty = unpinned). */
    const CpuSet &affinity() const { return affinity_; }

    /**
     * The owned pool, spawned lazily with at least `workers` threads
     * (<= 0 selects the context's configured budget). A live pool
     * that is already large enough is reused as-is — surplus workers
     * idle harmlessly on the queue — while a larger request joins the
     * old pool and spawns a replacement, so the pool size ratchets up
     * to the largest demand seen.
     */
    ThreadPool &pool(int workers = 0);

    /** Whether a pool has been spawned and is still alive. */
    bool hasPool() const { return pool_ != nullptr; }

    /** Workers in the live pool (0 = none spawned yet). */
    int poolThreads() const { return pool_ ? pool_->threadCount() : 0; }

    /** Times a pool has been spawned (reuse telemetry for tests/bench). */
    uint64_t poolSpawns() const { return poolSpawns_; }

    /**
     * Lazily-created reusable workspace of type T, default-constructed
     * on first use and then returned by reference on every subsequent
     * call with the same T. The slot is keyed by typeid: requesting a
     * different type destroys the previous workspace first. T must be
     * default-constructible; the kernels keep their scratch structs
     * internal and instantiate this in their own translation unit.
     */
    template <typename T>
    T &
    workspace()
    {
        if (slot_.ptr == nullptr || *slot_.type != typeid(T)) {
            slot_.reset();
            slot_.ptr = new T();
            slot_.type = &typeid(T);
            slot_.destroy = [](void *p) { delete static_cast<T *>(p); };
        }
        return *static_cast<T *>(slot_.ptr);
    }

  private:
    /** Type-erased single-occupancy workspace slot. */
    struct Slot
    {
        void *ptr = nullptr;
        void (*destroy)(void *) = nullptr;
        const std::type_info *type = nullptr;

        void
        reset()
        {
            if (ptr != nullptr)
                destroy(ptr);
            ptr = nullptr;
            destroy = nullptr;
            type = nullptr;
        }

        ~Slot() { reset(); }
    };

    int threads_;
    CpuSet affinity_;
    std::unique_ptr<ThreadPool> pool_;
    uint64_t poolSpawns_ = 0;
    Slot slot_;
};

} // namespace figlut

#endif // FIGLUT_CORE_EXECUTION_CONTEXT_H
