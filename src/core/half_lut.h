/**
 * @file
 * hFFLUT: half-size LUT exploiting vertical symmetry (paper Section
 * III-D, Fig. 10).
 *
 * Every table entry has a mirror with all weight signs flipped, i.e.
 * value(key) == -value(complement(key)). The hFFLUT stores only the
 * entries whose key MSB is 1 (patterns starting with +x1); the decoder
 * uses the MSB as a select: for MSB=0 it reads the complemented low key
 * and flips the sign of the result.
 */

#ifndef FIGLUT_CORE_HALF_LUT_H
#define FIGLUT_CORE_HALF_LUT_H

#include <cstdint>
#include <vector>

#include "core/lut.h"

namespace figlut {

/** Half-table over doubles with the MSB sign decoder. */
class HalfLutD
{
  public:
    /** Build directly from the mu activations (only 2^(mu-1) entries). */
    static HalfLutD buildDirect(const std::vector<double> &xs,
                                FpArith mode);

    /** Build from a full LUT (must satisfy the symmetry exactly). */
    static HalfLutD fromFull(const LutD &full);

    int mu() const { return mu_; }
    uint32_t storedEntries() const { return lutEntries(mu_ - 1); }

    /**
     * Decoded lookup for any full-width key: hFFLUT read + conditional
     * sign flip (the Fig. 10(b) decoder).
     */
    double value(uint32_t key) const;

    /** Raw stored entry (index = key low bits, MSB implied 1). */
    double
    stored(uint32_t idx) const
    {
        FIGLUT_ASSERT(idx < half_.size(), "hFFLUT index out of range");
        return half_[idx];
    }

  private:
    HalfLutD(int mu, std::vector<double> half);

    int mu_;
    std::vector<double> half_;
};

/** Half-table over pre-aligned integer mantissas. */
class HalfLutI
{
  public:
    static HalfLutI buildDirect(const std::vector<int64_t> &xs);
    static HalfLutI fromFull(const LutI &full);

    int mu() const { return mu_; }
    uint32_t storedEntries() const { return lutEntries(mu_ - 1); }

    int64_t value(uint32_t key) const;

    int64_t
    stored(uint32_t idx) const
    {
        FIGLUT_ASSERT(idx < half_.size(), "hFFLUT index out of range");
        return half_[idx];
    }

  private:
    HalfLutI(int mu, std::vector<int64_t> half);

    int mu_;
    std::vector<int64_t> half_;
};

/**
 * In-place decode expansion for the flat LUT arenas: buf holds 2^mu
 * entries whose upper half (keys with MSB = 1) is authoritative, and
 * every MSB = 0 entry is rewritten to what the hFFLUT decoder would
 * return for that key, -buf[complement(key)]. After this pass a plain
 * buf[key] read is bit-identical to HalfLut{D,I}::value(key) on a half
 * table taken from the same upper entries — the per-read sign-decode
 * branch hoisted to build time.
 */
void expandHalfDecodeInPlace(double *buf, int mu);
void expandHalfDecodeInPlace(int64_t *buf, int mu);

} // namespace figlut

#endif // FIGLUT_CORE_HALF_LUT_H
