/**
 * @file
 * Runtime-dispatched SIMD kernels for the LUT-GEMM hot loops and the
 * reference vector stage.
 *
 * The Simd LUT-GEMM backend and the vectorized reference_ops paths do
 * not branch on the ISA themselves: they fetch a SimdKernels table
 * once per call and invoke function pointers. The table is selected
 * at runtime from what the binary was compiled with (compile-time
 * guards: the AVX2/NEON translation units are only built when CMake
 * enables them) intersected with what the host CPU executes (CPUID /
 * mandatory-NEON detection), optionally narrowed by the FIGLUT_SIMD
 * environment variable or the programmatic override below.
 *
 * Bit-identity contract: every kernel's per-element arithmetic and
 * accumulation order is fixed by the scalar implementation in
 * simd.cpp, and each ISA implementation reproduces it exactly —
 * vector lanes only evaluate independent elements (or the fixed
 * kSimdReduceLanes-strided partial sums) in the same order, with the
 * same IEEE-754 double operations and the same round-to-binary32 step
 * where the contract calls for one. The build disables FP contraction
 * (-ffp-contract=off) so no path fuses a multiply-add the others
 * split. The differential suites in tests/core/test_simd_gemm.cpp and
 * tests/runtime/test_reference_ops.cpp pin every ISA against the
 * scalar table.
 */

#ifndef FIGLUT_CORE_SIMD_H
#define FIGLUT_CORE_SIMD_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace figlut {

/** Instruction sets a SimdKernels table can be implemented with. */
enum class SimdIsa
{
    Scalar, ///< portable C++ (the bit-identity reference)
    Avx2,   ///< x86-64 AVX2 gather kernels
    Neon,   ///< aarch64 NEON kernels
};

/** Stable numeric code for JSON records ("simd_isa" fields). */
int simdIsaCode(SimdIsa isa);

/** Lower-case name ("scalar", "avx2", "neon"). */
const char *simdIsaName(SimdIsa isa);

/** Parse a name as accepted by FIGLUT_SIMD ("auto" is not an ISA). */
bool parseSimdIsa(const std::string &name, SimdIsa *out);

/** True when this binary contains kernels for the ISA. */
bool simdIsaCompiled(SimdIsa isa);

/** True when the ISA is compiled in AND the host CPU executes it. */
bool simdIsaSupported(SimdIsa isa);

/** Best supported ISA, ignoring every override. */
SimdIsa detectSimdIsa();

/**
 * The ISA the dispatcher will actually use: the programmatic override
 * if one is set, else the FIGLUT_SIMD environment variable
 * (scalar|avx2|neon|auto, read once), else detectSimdIsa(). Requests
 * for an unsupported ISA are clamped down to Scalar — dispatch can
 * never select code the binary lacks or the CPU rejects, which is
 * what keeps the scalar fallback a guarantee rather than a
 * convention.
 */
SimdIsa activeSimdIsa();

/**
 * Force the dispatcher to an ISA (clamped to supported ones; returns
 * the ISA actually selected). Takes precedence over FIGLUT_SIMD.
 * Intended for tests and benchmarks that compare ISAs in-process; not
 * thread-safe against concurrently running kernels.
 */
SimdIsa setSimdIsaOverride(SimdIsa isa);

/** Drop the programmatic override (environment selection returns). */
void clearSimdIsaOverride();

/**
 * Piecewise-linear GELU table (the LUT-segmented transcendental idiom
 * of the PIM VPU): `segments` uniform segments over [lo, hi], knot
 * values plus per-segment slopes. Inputs above hi use the identity
 * tail (GELU(x) -> x), inputs below lo clamp to value[0] (GELU -> 0).
 */
struct GeluLutTable
{
    std::vector<double> value; ///< segments + 1 knot values
    std::vector<double> slope; ///< per-segment linear slope
    double lo = 0.0;
    double hi = 0.0;
    double step = 0.0;
    double invStep = 0.0;
    int segments = 0;
};

/** Logical lanes of the fixed strided-reduction contract. */
inline constexpr std::size_t kSimdReduceLanes = 4;

/**
 * The dispatch table. All kernels follow the scalar implementations
 * bit for bit (see the file comment); `n` may be any length including
 * 0 — ISA implementations handle the sub-vector tail with the scalar
 * ops in the contract's order.
 */
struct SimdKernels
{
    SimdIsa isa = SimdIsa::Scalar;

    /**
     * RAC accumulate over one group's whole chunk span in
     * FpArith::Fp32, the paper's accumulate precision. For every row
     * r < n, chunks are walked in order with the partial sum held in
     * a register:
     *
     *   psum[r] = roundToBinary32(
     *       psum[r] + lut[c * lutStride + keys[c * keyStride + r]])
     *   for c = 0, 1, ..., chunks-1
     *
     * The per-add rounding is the IEEE double->float->double
     * round-trip, which equals the softfloat RNE rounding fpAdd()
     * applies (proven by the 4-backend differential suite). Spanning
     * all chunks per call — rather than one kernel call per chunk —
     * is what lets every ISA keep the accumulator out of memory for
     * the whole walk; per-row accumulation order is chunk-sequential
     * either way, so outputs cannot differ.
     */
    void (*accumFpSpanFp32)(double *psum, const double *lut,
                            std::size_t lutStride,
                            const std::uint32_t *keys,
                            std::size_t keyStride, std::size_t chunks,
                            std::size_t n);

    /** The same span walk with plain double adds (FpArith::Exact). */
    void (*accumFpSpanExact)(double *psum, const double *lut,
                             std::size_t lutStride,
                             const std::uint32_t *keys,
                             std::size_t keyStride, std::size_t chunks,
                             std::size_t n);

    /** The same span walk with exact int64 adds — the FIGLUT-I RAC. */
    void (*accumIntSpan)(std::int64_t *psum, const std::int64_t *lut,
                         std::size_t lutStride,
                         const std::uint32_t *keys,
                         std::size_t keyStride, std::size_t chunks,
                         std::size_t n);

    /** out[i] = a[i] + b[i]. */
    void (*addFlat)(double *out, const double *a, const double *b,
                    std::size_t n);

    /** v[i] = v[i] / denom (true division, not reciprocal multiply). */
    void (*divFlat)(double *v, double denom, std::size_t n);

    /**
     * max over v[0..n) (n >= 1). Exactly the sequential fold for
     * finite inputs; when +0 and -0 compete the returned zero's sign
     * may differ per ISA, which callers must not depend on (the
     * softmax shift x - max is unaffected).
     */
    double (*maxFlat)(const double *v, std::size_t n);

    /**
     * Sum of v[0..n) in the fixed kSimdReduceLanes-strided order:
     * lane l accumulates v[l], v[l + 4], ... sequentially, and the
     * lanes combine as ((l0 + l1) + l2) + l3. Same value on every
     * ISA by construction.
     */
    double (*sumLanes)(const double *v, std::size_t n);

    /** Sum of (v[i] - mean)^2 in the same strided-lane order. */
    double (*sumSqDevLanes)(const double *v, double mean, std::size_t n);

    /** out[i] = (v[i] - mean) * invStd. */
    void (*normalizeFlat)(double *out, const double *v, double mean,
                          double invStd, std::size_t n);

    /**
     * Piecewise-linear GELU: identity above table.hi, clamped-PWL
     * interpolation elsewhere. Bit-identical across ISAs; the
     * approximation error vs the exact tanh GELU is bounded by the
     * table resolution (see DESIGN.md).
     */
    void (*geluLutFlat)(double *out, const double *v, std::size_t n,
                        const GeluLutTable &table);
};

/** Kernels of the active ISA (see activeSimdIsa()). */
const SimdKernels &simdKernels();

/**
 * Kernels of a specific ISA; falls back to the scalar table when the
 * ISA is not supported in this binary/host.
 */
const SimdKernels &simdKernelsFor(SimdIsa isa);

} // namespace figlut

#endif // FIGLUT_CORE_SIMD_H
