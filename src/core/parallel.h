/**
 * @file
 * Host-side work-queue parallelism for the functional kernels.
 *
 * The simulator's hot loops (LUT-GEMM over large M) are embarrassingly
 * parallel across output rows. ThreadPool provides a small std::thread
 * work queue; parallelForBlocked() carves an index space into
 * fixed-size block work items (the M-tiles of the blocked LUT-GEMM
 * traversal) and executes them across the pool.
 *
 * Tasks that throw are captured: the first exception is rethrown from
 * wait() on the submitting thread, so fatal()/panic() behave the same
 * as in serial code.
 */

#ifndef FIGLUT_CORE_PARALLEL_H
#define FIGLUT_CORE_PARALLEL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace figlut {

/** Half-open index range [begin, end) processed by one work item. */
struct BlockRange
{
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t size() const { return end - begin; }
};

/**
 * Resolve a thread-count knob: values >= 1 are taken as-is, anything
 * else (0 or negative = "auto") maps to the hardware concurrency,
 * never less than 1.
 */
int resolveThreadCount(int requested);

/**
 * An explicit CPU set for thread pinning (logical CPU ids as exposed
 * by the OS). Empty = no pinning requested.
 */
using CpuSet = std::vector<int>;

/**
 * Pin the calling thread to `cpus`. Returns true when the affinity
 * mask was applied; an empty set, a non-Linux platform, or a rejected
 * syscall all return false and leave the thread unpinned — pinning is
 * strictly an optimization and never affects results.
 */
bool applyThreadAffinity(const CpuSet &cpus);

/** Fixed-size pool of worker threads draining a FIFO work queue. */
class ThreadPool
{
  public:
    /**
     * Spawn workers; threads <= 0 selects resolveThreadCount(0). A
     * non-empty `affinity` pins every worker to that CPU set (one
     * worker group = one set; per-NUMA-node placement is composed by
     * ShardedExecutor from several pools).
     */
    explicit ThreadPool(int threads = 0, CpuSet affinity = {});

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threadCount() const { return static_cast<int>(workers_.size()); }

    /** The CPU set every worker was asked to pin to (may be empty). */
    const CpuSet &affinity() const { return affinity_; }

    /** Enqueue one work item. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted item has finished. Rethrows the
     * first exception raised by a task (later ones are dropped).
     */
    void wait();

    /**
     * Split [0, total) into ceil(total / blockSize) block work items
     * and run fn on each across the pool; returns when all are done
     * (including items submitted, throws forwarded like wait()).
     */
    void parallelForBlocked(std::size_t total, std::size_t blockSize,
                            const std::function<void(BlockRange)> &fn);

  private:
    void workerLoop();

    CpuSet affinity_;
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mutex_;
    std::condition_variable taskReady_;
    std::condition_variable allDone_;
    std::size_t inFlight_ = 0; ///< queued + currently executing
    std::exception_ptr firstError_;
    bool stopping_ = false;
};

} // namespace figlut

#endif // FIGLUT_CORE_PARALLEL_H
