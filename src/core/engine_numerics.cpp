#include "core/engine_numerics.h"

#include <cmath>

#include "common/logging.h"

namespace figlut {

std::string
engineName(EngineKind kind)
{
    switch (kind) {
      case EngineKind::FPE: return "FPE";
      case EngineKind::IFPU: return "iFPU";
      case EngineKind::FIGNA: return "FIGNA";
      case EngineKind::FIGLUT_F: return "FIGLUT-F";
      case EngineKind::FIGLUT_I: return "FIGLUT-I";
    }
    panic("unknown EngineKind value ", static_cast<int>(kind));
}

MatrixD
oracleGemm(const MatrixD &weights, const MatrixD &x)
{
    FIGLUT_ASSERT(weights.cols() == x.rows(), "oracle shape mismatch");
    MatrixD y(weights.rows(), x.cols(), 0.0);
    for (std::size_t r = 0; r < weights.rows(); ++r)
        for (std::size_t b = 0; b < x.cols(); ++b) {
            double acc = 0.0;
            for (std::size_t c = 0; c < weights.cols(); ++c)
                acc += weights(r, c) * x(c, b);
            y(r, b) = acc;
        }
    return y;
}

MatrixD
fpReferenceGemm(const MatrixD &dequant_weights, const MatrixD &x,
                const NumericsConfig &config)
{
    FIGLUT_ASSERT(dequant_weights.cols() == x.rows(),
                  "reference GEMM shape mismatch");
    const std::size_t m = dequant_weights.rows();
    const std::size_t n = dequant_weights.cols();
    const std::size_t batch = x.cols();

    MatrixD y(m, batch, 0.0);
    for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t r = 0; r < m; ++r) {
            double acc = 0.0;
            for (std::size_t c = 0; c < n; ++c) {
                // Weights live in the activation format after
                // dequantization (this is what FP-FP GPU kernels do).
                const double w = quantizeToFormat(
                    dequant_weights(r, c), config.actFormat);
                const double a = quantizeToFormat(
                    x(c, b), config.actFormat);
                // Product exact in double; one rounding into the
                // accumulate precision models the FMA datapath.
                acc = fpAdd(acc, fpRound(w * a, config.accum),
                            config.accum);
            }
            y(r, b) = acc;
        }
    }
    return y;
}

MatrixD
ifpuGemm(const BcqTensor &weights, const MatrixD &x,
         const NumericsConfig &config)
{
    FIGLUT_ASSERT(weights.cols == x.rows(), "iFPU shape mismatch");
    const std::size_t m = weights.rows;
    const std::size_t n = weights.cols;
    const std::size_t batch = x.cols();
    const std::size_t groups = weights.groupsPerRow();

    MatrixD y(m, batch, 0.0);
    for (std::size_t b = 0; b < batch; ++b) {
        std::vector<double> xb(n);
        for (std::size_t c = 0; c < n; ++c)
            xb[c] = quantizeToFormat(x(c, b), config.actFormat);

        for (std::size_t g = 0; g < groups; ++g) {
            const std::size_t c0 = g * weights.groupSize;
            const std::size_t c1 = std::min(n, c0 + weights.groupSize);

            std::vector<double> group_vals(xb.begin() + c0,
                                           xb.begin() + c1);
            const AlignedBlock block = preAlign(
                group_vals, config.actFormat, config.alignFracBits);
            const double scale = block.scale();

            int64_t sum_mant = 0;
            if (weights.hasOffset) {
                for (const auto mv : block.mantissas)
                    sum_mant += mv;
            }

            for (std::size_t r = 0; r < m; ++r) {
                double row_acc = 0.0;
                for (int i = 0; i < weights.bits; ++i) {
                    // Bit-serial signed add/subtract of mantissas.
                    int64_t psum = 0;
                    for (std::size_t c = c0; c < c1; ++c) {
                        const int64_t mv = block.mantissas[c - c0];
                        psum += weights.planes[
                                    static_cast<std::size_t>(i)](r, c)
                                    ? mv : -mv;
                    }
                    const double alpha =
                        weights.alphas[static_cast<std::size_t>(i)](r, g);
                    row_acc = fpAdd(
                        row_acc,
                        fpRound(alpha *
                                    (static_cast<double>(psum) * scale),
                                config.accum),
                        config.accum);
                }
                if (weights.hasOffset) {
                    const double sumx =
                        static_cast<double>(sum_mant) * scale;
                    row_acc = fpAdd(
                        row_acc,
                        fpRound(weights.offsets(r, g) * sumx,
                                config.accum),
                        config.accum);
                }
                y(r, b) = fpAdd(y(r, b), row_acc, config.accum);
            }
        }
    }
    return y;
}

MatrixD
fignaGemm(const RtnTensor &weights, const MatrixD &x,
          const NumericsConfig &config)
{
    FIGLUT_ASSERT(weights.cols == x.rows(), "FIGNA shape mismatch");
    const std::size_t m = weights.rows;
    const std::size_t n = weights.cols;
    const std::size_t batch = x.cols();
    const std::size_t groups = weights.groupsPerRow();

    MatrixD y(m, batch, 0.0);
    for (std::size_t b = 0; b < batch; ++b) {
        std::vector<double> xb(n);
        for (std::size_t c = 0; c < n; ++c)
            xb[c] = quantizeToFormat(x(c, b), config.actFormat);

        for (std::size_t g = 0; g < groups; ++g) {
            const std::size_t c0 = g * weights.groupSize;
            const std::size_t c1 = std::min(n, c0 + weights.groupSize);

            std::vector<double> group_vals(xb.begin() + c0,
                                           xb.begin() + c1);
            const AlignedBlock block = preAlign(
                group_vals, config.actFormat, config.alignFracBits);
            const double scale = block.scale();

            for (std::size_t r = 0; r < m; ++r) {
                // Integer multiply between aligned mantissas and
                // zero-centred codes, exact integer accumulation.
                __int128 acc = 0;
                const int32_t zp = weights.zeroPoints(r, g);
                for (std::size_t c = c0; c < c1; ++c) {
                    const int32_t code = weights.codes(r, c);
                    acc += static_cast<__int128>(
                               block.mantissas[c - c0]) *
                           (code - zp);
                }
                const double partial = fpRound(
                    weights.scales(r, g) *
                        (static_cast<double>(acc) * scale),
                    config.accum);
                y(r, b) = fpAdd(y(r, b), partial, config.accum);
            }
        }
    }
    return y;
}

MatrixD
figlutGemm(const BcqTensor &weights, const MatrixD &x,
           const NumericsConfig &config, bool pre_aligned,
           LutGemmCounters *counters)
{
    LutGemmConfig cfg;
    cfg.mu = config.mu;
    cfg.actFormat = config.actFormat;
    cfg.arith = config.accum;
    cfg.preAligned = pre_aligned;
    cfg.alignFracBits = config.alignFracBits;
    cfg.backend = config.backend;
    cfg.threads = config.threads;
    cfg.blockRows = config.blockRows;
    cfg.instrument = config.instrument;
    return lutGemm(weights, x, cfg, counters);
}

double
ErrorReport::nrmse() const
{
    return refRms > 0.0 ? std::sqrt(mse) / refRms : std::sqrt(mse);
}

ErrorReport
compareMatrices(const MatrixD &test, const MatrixD &ref)
{
    FIGLUT_ASSERT(test.rows() == ref.rows() && test.cols() == ref.cols(),
                  "compareMatrices shape mismatch");
    ErrorReport report;
    double sq = 0.0;
    double ref_sq = 0.0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        const double t = test.at(i);
        const double r = ref.at(i);
        const double d = std::fabs(t - r);
        report.maxAbs = std::max(report.maxAbs, d);
        sq += d * d;
        ref_sq += r * r;
        const double denom = std::max(std::fabs(r), 1e-30);
        report.maxRel = std::max(report.maxRel, d / denom);
        if (d != 0.0)
            report.identical = false;
    }
    const auto count = static_cast<double>(ref.size());
    report.mse = count > 0 ? sq / count : 0.0;
    report.refRms = count > 0 ? std::sqrt(ref_sq / count) : 0.0;
    return report;
}

} // namespace figlut
