#include "core/parallel.h"

#include <algorithm>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/logging.h"

namespace figlut {

int
resolveThreadCount(int requested)
{
    if (requested >= 1)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

bool
applyThreadAffinity(const CpuSet &cpus)
{
    if (cpus.empty())
        return false;
#if defined(__linux__)
    cpu_set_t mask;
    CPU_ZERO(&mask);
    bool any = false;
    for (const int cpu : cpus) {
        if (cpu >= 0 && cpu < CPU_SETSIZE) {
            CPU_SET(cpu, &mask);
            any = true;
        }
    }
    if (!any)
        return false;
    return pthread_setaffinity_np(pthread_self(), sizeof(mask), &mask) ==
           0;
#else
    return false; // pinning unsupported: run unpinned, results unchanged
#endif
}

ThreadPool::ThreadPool(int threads, CpuSet affinity)
    : affinity_(std::move(affinity))
{
    const int n = resolveThreadCount(threads);
    workers_.reserve(static_cast<std::size_t>(n));
    try {
        for (int i = 0; i < n; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    } catch (...) {
        // Thread spawn failed: join the workers that did start, or
        // their joinable destructors would std::terminate the process.
        {
            std::unique_lock<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        taskReady_.notify_all();
        for (auto &w : workers_)
            w.join();
        throw;
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    taskReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    FIGLUT_ASSERT(task != nullptr, "null task submitted to ThreadPool");
    {
        std::unique_lock<std::mutex> lock(mutex_);
        FIGLUT_ASSERT(!stopping_, "submit after ThreadPool shutdown");
        queue_.push_back(std::move(task));
        ++inFlight_;
    }
    taskReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
    if (firstError_) {
        auto err = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(err);
    }
}

void
ThreadPool::parallelForBlocked(std::size_t total, std::size_t blockSize,
                               const std::function<void(BlockRange)> &fn)
{
    FIGLUT_ASSERT(blockSize > 0, "parallelForBlocked needs blockSize > 0");
    for (std::size_t begin = 0; begin < total; begin += blockSize) {
        const BlockRange range{begin, std::min(total, begin + blockSize)};
        submit([fn, range] { fn(range); });
    }
    wait();
}

void
ThreadPool::workerLoop()
{
    applyThreadAffinity(affinity_);
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            taskReady_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                // stopping_ with an empty queue: drain complete.
                return;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            task();
        } catch (...) {
            std::unique_lock<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --inFlight_;
        }
        allDone_.notify_all();
    }
}

} // namespace figlut
