/**
 * @file
 * NEON (aarch64) implementations of the SimdKernels table.
 *
 * NEON is architecturally mandatory on aarch64, so unlike the AVX2
 * translation unit this one needs no extra -m flag — CMake only adds
 * it when targeting aarch64, and the dispatcher treats compiled-in as
 * executable. Lanes are 2 x double wide; the 4-logical-lane reduction
 * contract is implemented as two vector accumulators, and the
 * FpArith::Fp32 rounding is the FCVTN/FCVTL double<->float round-trip
 * (IEEE round-to-nearest-even, matching the softfloat rounding). The
 * piecewise-linear GELU kernel reuses the scalar implementation —
 * there is no NEON gather to vectorize the table reads with.
 */

#include "core/simd.h"

#if !defined(__aarch64__)
#error "simd_neon.cpp is aarch64-only"
#endif

#include <arm_neon.h>

namespace figlut {
namespace simd_detail {

// Scalar contract implementations (simd.cpp) reused for table-lookup
// kernels that NEON cannot accelerate.
void geluLutFlatScalar(double *out, const double *v, std::size_t n,
                       const GeluLutTable &t);

namespace {

/**
 * The span kernels keep two 2-lane vectors (4 rows) of partial sums
 * in registers across the whole chunk walk; LUT reads are staged
 * through a small array since NEON has no gather. Per-row order is
 * chunk-sequential exactly as in the scalar contract.
 */

void
accumFpSpanFp32Neon(double *psum, const double *lut,
                    std::size_t lutStride, const std::uint32_t *keys,
                    std::size_t keyStride, std::size_t chunks,
                    std::size_t n)
{
    std::size_t r = 0;
    for (; r + 4 <= n; r += 4) {
        float64x2_t p0 = vld1q_f64(psum + r);
        float64x2_t p1 = vld1q_f64(psum + r + 2);
        const double *l = lut;
        const std::uint32_t *k = keys + r;
        for (std::size_t c = 0; c < chunks; ++c) {
            const double s0[2] = {l[k[0]], l[k[1]]};
            const double s1[2] = {l[k[2]], l[k[3]]};
            p0 = vaddq_f64(p0, vld1q_f64(s0));
            p1 = vaddq_f64(p1, vld1q_f64(s1));
            p0 = vcvt_f64_f32(vcvt_f32_f64(p0));
            p1 = vcvt_f64_f32(vcvt_f32_f64(p1));
            l += lutStride;
            k += keyStride;
        }
        vst1q_f64(psum + r, p0);
        vst1q_f64(psum + r + 2, p1);
    }
    for (; r < n; ++r) {
        double p = psum[r];
        const double *l = lut;
        const std::uint32_t *k = keys + r;
        for (std::size_t c = 0; c < chunks; ++c) {
            p = static_cast<double>(static_cast<float>(p + l[*k]));
            l += lutStride;
            k += keyStride;
        }
        psum[r] = p;
    }
}

void
accumFpSpanExactNeon(double *psum, const double *lut,
                     std::size_t lutStride, const std::uint32_t *keys,
                     std::size_t keyStride, std::size_t chunks,
                     std::size_t n)
{
    std::size_t r = 0;
    for (; r + 4 <= n; r += 4) {
        float64x2_t p0 = vld1q_f64(psum + r);
        float64x2_t p1 = vld1q_f64(psum + r + 2);
        const double *l = lut;
        const std::uint32_t *k = keys + r;
        for (std::size_t c = 0; c < chunks; ++c) {
            const double s0[2] = {l[k[0]], l[k[1]]};
            const double s1[2] = {l[k[2]], l[k[3]]};
            p0 = vaddq_f64(p0, vld1q_f64(s0));
            p1 = vaddq_f64(p1, vld1q_f64(s1));
            l += lutStride;
            k += keyStride;
        }
        vst1q_f64(psum + r, p0);
        vst1q_f64(psum + r + 2, p1);
    }
    for (; r < n; ++r) {
        double p = psum[r];
        const double *l = lut;
        const std::uint32_t *k = keys + r;
        for (std::size_t c = 0; c < chunks; ++c) {
            p = p + l[*k];
            l += lutStride;
            k += keyStride;
        }
        psum[r] = p;
    }
}

void
accumIntSpanNeon(std::int64_t *psum, const std::int64_t *lut,
                 std::size_t lutStride, const std::uint32_t *keys,
                 std::size_t keyStride, std::size_t chunks,
                 std::size_t n)
{
    std::size_t r = 0;
    for (; r + 4 <= n; r += 4) {
        int64x2_t p0 = vld1q_s64(psum + r);
        int64x2_t p1 = vld1q_s64(psum + r + 2);
        const std::int64_t *l = lut;
        const std::uint32_t *k = keys + r;
        for (std::size_t c = 0; c < chunks; ++c) {
            const std::int64_t s0[2] = {l[k[0]], l[k[1]]};
            const std::int64_t s1[2] = {l[k[2]], l[k[3]]};
            p0 = vaddq_s64(p0, vld1q_s64(s0));
            p1 = vaddq_s64(p1, vld1q_s64(s1));
            l += lutStride;
            k += keyStride;
        }
        vst1q_s64(psum + r, p0);
        vst1q_s64(psum + r + 2, p1);
    }
    for (; r < n; ++r) {
        std::int64_t p = psum[r];
        const std::int64_t *l = lut;
        const std::uint32_t *k = keys + r;
        for (std::size_t c = 0; c < chunks; ++c) {
            p += l[*k];
            l += lutStride;
            k += keyStride;
        }
        psum[r] = p;
    }
}

void
addFlatNeon(double *out, const double *a, const double *b,
            std::size_t n)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_f64(out + i,
                  vaddq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
    for (; i < n; ++i)
        out[i] = a[i] + b[i];
}

void
divFlatNeon(double *v, double denom, std::size_t n)
{
    const float64x2_t d = vdupq_n_f64(denom);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_f64(v + i, vdivq_f64(vld1q_f64(v + i), d));
    for (; i < n; ++i)
        v[i] = v[i] / denom;
}

double
maxFlatNeon(const double *v, std::size_t n)
{
    double mx;
    std::size_t i;
    if (n >= 2) {
        float64x2_t acc = vld1q_f64(v);
        for (i = 2; i + 2 <= n; i += 2)
            acc = vmaxq_f64(acc, vld1q_f64(v + i));
        const double l0 = vgetq_lane_f64(acc, 0);
        const double l1 = vgetq_lane_f64(acc, 1);
        mx = l0 < l1 ? l1 : l0;
    } else {
        mx = v[0];
        i = 1;
    }
    for (; i < n; ++i)
        mx = mx < v[i] ? v[i] : mx;
    return mx;
}

double
sumLanesNeon(const double *v, std::size_t n)
{
    float64x2_t acc01 = vdupq_n_f64(0.0);
    float64x2_t acc23 = vdupq_n_f64(0.0);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        acc01 = vaddq_f64(acc01, vld1q_f64(v + i));
        acc23 = vaddq_f64(acc23, vld1q_f64(v + i + 2));
    }
    double lane[4] = {vgetq_lane_f64(acc01, 0),
                      vgetq_lane_f64(acc01, 1),
                      vgetq_lane_f64(acc23, 0),
                      vgetq_lane_f64(acc23, 1)};
    for (std::size_t l = 0; i < n; ++i, ++l)
        lane[l] += v[i];
    return ((lane[0] + lane[1]) + lane[2]) + lane[3];
}

double
sumSqDevLanesNeon(const double *v, double mean, std::size_t n)
{
    const float64x2_t m = vdupq_n_f64(mean);
    float64x2_t acc01 = vdupq_n_f64(0.0);
    float64x2_t acc23 = vdupq_n_f64(0.0);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float64x2_t d0 = vsubq_f64(vld1q_f64(v + i), m);
        const float64x2_t d1 = vsubq_f64(vld1q_f64(v + i + 2), m);
        acc01 = vaddq_f64(acc01, vmulq_f64(d0, d0));
        acc23 = vaddq_f64(acc23, vmulq_f64(d1, d1));
    }
    double lane[4] = {vgetq_lane_f64(acc01, 0),
                      vgetq_lane_f64(acc01, 1),
                      vgetq_lane_f64(acc23, 0),
                      vgetq_lane_f64(acc23, 1)};
    for (std::size_t l = 0; i < n; ++i, ++l) {
        const double d = v[i] - mean;
        lane[l] += d * d;
    }
    return ((lane[0] + lane[1]) + lane[2]) + lane[3];
}

void
normalizeFlatNeon(double *out, const double *v, double mean,
                  double invStd, std::size_t n)
{
    const float64x2_t m = vdupq_n_f64(mean);
    const float64x2_t s = vdupq_n_f64(invStd);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_f64(out + i,
                  vmulq_f64(vsubq_f64(vld1q_f64(v + i), m), s));
    for (; i < n; ++i)
        out[i] = (v[i] - mean) * invStd;
}

const SimdKernels kNeonKernels = {
    SimdIsa::Neon,        accumFpSpanFp32Neon,
    accumFpSpanExactNeon, accumIntSpanNeon,
    addFlatNeon,          divFlatNeon,
    maxFlatNeon,          sumLanesNeon,
    sumSqDevLanesNeon,    normalizeFlatNeon,
    geluLutFlatScalar,
};

} // namespace

const SimdKernels &
neonKernels()
{
    return kNeonKernels;
}

} // namespace simd_detail
} // namespace figlut
