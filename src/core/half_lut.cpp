#include "core/half_lut.h"

#include <cmath>

#include "common/logging.h"

namespace figlut {

namespace {

/**
 * The decoder's select logic, shared by both domains.
 *
 * @return pair {index into the stored half, sign to apply}
 */
inline std::pair<uint32_t, int>
decodeKey(uint32_t key, int mu)
{
    const uint32_t half_mask = lutEntries(mu - 1) - 1u;
    const bool msb = (key >> (mu - 1)) & 1u;
    if (msb)
        return {key & half_mask, +1};
    // MSB = 0: mirror entry, sign flipped.
    return {complementKey(key, mu) & half_mask, -1};
}

} // namespace

HalfLutD::HalfLutD(int mu, std::vector<double> half)
    : mu_(mu), half_(std::move(half))
{
    FIGLUT_ASSERT(mu_ >= 2 && mu_ <= kMaxMu,
                  "hFFLUT needs mu in [2, ", kMaxMu, "], got ", mu_);
    FIGLUT_ASSERT(half_.size() == lutEntries(mu_ - 1),
                  "hFFLUT entry count mismatch");
}

HalfLutD
HalfLutD::buildDirect(const std::vector<double> &xs, FpArith mode)
{
    const int mu = static_cast<int>(xs.size());
    FIGLUT_ASSERT(mu >= 2, "hFFLUT needs at least mu=2");

    const uint32_t n = lutEntries(mu - 1);
    std::vector<double> half(n, 0.0);
    for (uint32_t low = 0; low < n; ++low) {
        const uint32_t key = (1u << (mu - 1)) | low; // MSB forced to 1
        double acc = fpRound(xs[0], mode);           // +x1 by symmetry
        for (int j = 1; j < mu; ++j)
            acc = fpAdd(acc, keySign(key, j, mu) * xs[j], mode);
        half[low] = acc;
    }
    return HalfLutD(mu, std::move(half));
}

HalfLutD
HalfLutD::fromFull(const LutD &full)
{
    const int mu = full.mu();
    FIGLUT_ASSERT(mu >= 2, "hFFLUT needs at least mu=2");
    const uint32_t n = lutEntries(mu - 1);
    std::vector<double> half(n, 0.0);
    for (uint32_t low = 0; low < n; ++low)
        half[low] = full.value((1u << (mu - 1)) | low);
    return HalfLutD(mu, std::move(half));
}

double
HalfLutD::value(uint32_t key) const
{
    FIGLUT_ASSERT(key < lutEntries(mu_), "hFFLUT key out of range");
    const auto [idx, sign] = decodeKey(key, mu_);
    const double v = half_[idx];
    // Sign flip is exact in IEEE arithmetic (sign-bit toggle).
    return sign > 0 ? v : -v;
}

HalfLutI::HalfLutI(int mu, std::vector<int64_t> half)
    : mu_(mu), half_(std::move(half))
{
    FIGLUT_ASSERT(mu_ >= 2 && mu_ <= kMaxMu,
                  "hFFLUT needs mu in [2, ", kMaxMu, "], got ", mu_);
    FIGLUT_ASSERT(half_.size() == lutEntries(mu_ - 1),
                  "hFFLUT entry count mismatch");
}

HalfLutI
HalfLutI::buildDirect(const std::vector<int64_t> &xs)
{
    const int mu = static_cast<int>(xs.size());
    FIGLUT_ASSERT(mu >= 2, "hFFLUT needs at least mu=2");

    const uint32_t n = lutEntries(mu - 1);
    std::vector<int64_t> half(n, 0);
    for (uint32_t low = 0; low < n; ++low) {
        const uint32_t key = (1u << (mu - 1)) | low;
        int64_t acc = 0;
        for (int j = 0; j < mu; ++j)
            acc += keySign(key, j, mu) * xs[static_cast<std::size_t>(j)];
        half[low] = acc;
    }
    return HalfLutI(mu, std::move(half));
}

HalfLutI
HalfLutI::fromFull(const LutI &full)
{
    const int mu = full.mu();
    FIGLUT_ASSERT(mu >= 2, "hFFLUT needs at least mu=2");
    const uint32_t n = lutEntries(mu - 1);
    std::vector<int64_t> half(n, 0);
    for (uint32_t low = 0; low < n; ++low)
        half[low] = full.value((1u << (mu - 1)) | low);
    return HalfLutI(mu, std::move(half));
}

int64_t
HalfLutI::value(uint32_t key) const
{
    FIGLUT_ASSERT(key < lutEntries(mu_), "hFFLUT key out of range");
    const auto [idx, sign] = decodeKey(key, mu_);
    return sign > 0 ? half_[idx] : -half_[idx];
}

namespace {

/**
 * Shared expansion: every MSB = 0 key reads from its (MSB = 1)
 * complement, negated — writes only touch the lower half, reads only
 * the upper, so in-place is safe.
 */
template <typename T>
void
expandHalfDecodeInPlaceImpl(T *buf, int mu)
{
    FIGLUT_ASSERT(mu >= 2 && mu <= kMaxMu,
                  "hFFLUT expansion needs mu in [2, ", kMaxMu, "], got ",
                  mu);
    const uint32_t halfEntries = lutEntries(mu - 1);
    for (uint32_t key = 0; key < halfEntries; ++key)
        buf[key] = -buf[complementKey(key, mu)];
}

} // namespace

void
expandHalfDecodeInPlace(double *buf, int mu)
{
    expandHalfDecodeInPlaceImpl(buf, mu);
}

void
expandHalfDecodeInPlace(int64_t *buf, int mu)
{
    expandHalfDecodeInPlaceImpl(buf, mu);
}

} // namespace figlut
