/**
 * @file
 * AVX2 implementations of the SimdKernels table.
 *
 * This translation unit is compiled with -mavx2 (file-level flag set
 * by src/CMakeLists.txt when FIGLUT_SIMD_AVX2 is ON) while the rest
 * of the library stays on the baseline ISA; nothing here runs unless
 * the runtime dispatcher confirmed CPUID AVX2 support, so the binary
 * remains safe on non-AVX2 hosts.
 *
 * Every kernel reproduces the scalar contract of simd.cpp bit for
 * bit: vector lanes hold independent rows/elements (or the fixed
 * strided reduction lanes), the FpArith::Fp32 rounding is the
 * VCVTPD2PS/VCVTPS2PD round-trip (IEEE round-to-nearest-even to
 * binary32, the same rounding the softfloat path applies), and no
 * multiply-add is fused (-ffp-contract=off build-wide, and only
 * explicit mul/add intrinsics here).
 */

#include "core/simd.h"

#if !defined(__AVX2__)
#error "simd_avx2.cpp must be compiled with -mavx2"
#endif

#include <immintrin.h>

namespace figlut {
namespace simd_detail {

namespace {

/**
 * The span kernels keep two row-vectors (8 rows) of partial sums in
 * registers across the whole chunk walk: the two accumulation chains
 * are independent, so the gather/convert latency of one overlaps the
 * other, and psum traffic drops from per-chunk load+store to one
 * load+store per span. Per-row accumulation order is chunk-sequential
 * exactly as in the scalar contract.
 */

void
accumFpSpanFp32Avx2(double *psum, const double *lut,
                    std::size_t lutStride, const std::uint32_t *keys,
                    std::size_t keyStride, std::size_t chunks,
                    std::size_t n)
{
    std::size_t r = 0;
    for (; r + 8 <= n; r += 8) {
        __m256d p0 = _mm256_loadu_pd(psum + r);
        __m256d p1 = _mm256_loadu_pd(psum + r + 4);
        const double *l = lut;
        const std::uint32_t *k = keys + r;
        for (std::size_t c = 0; c < chunks; ++c) {
            const __m128i k0 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(k));
            const __m128i k1 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(k + 4));
            p0 = _mm256_add_pd(p0, _mm256_i32gather_pd(l, k0, 8));
            p1 = _mm256_add_pd(p1, _mm256_i32gather_pd(l, k1, 8));
            p0 = _mm256_cvtps_pd(_mm256_cvtpd_ps(p0));
            p1 = _mm256_cvtps_pd(_mm256_cvtpd_ps(p1));
            l += lutStride;
            k += keyStride;
        }
        _mm256_storeu_pd(psum + r, p0);
        _mm256_storeu_pd(psum + r + 4, p1);
    }
    for (; r + 4 <= n; r += 4) {
        __m256d p0 = _mm256_loadu_pd(psum + r);
        const double *l = lut;
        const std::uint32_t *k = keys + r;
        for (std::size_t c = 0; c < chunks; ++c) {
            const __m128i k0 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(k));
            p0 = _mm256_add_pd(p0, _mm256_i32gather_pd(l, k0, 8));
            p0 = _mm256_cvtps_pd(_mm256_cvtpd_ps(p0));
            l += lutStride;
            k += keyStride;
        }
        _mm256_storeu_pd(psum + r, p0);
    }
    for (; r < n; ++r) {
        double p = psum[r];
        const double *l = lut;
        const std::uint32_t *k = keys + r;
        for (std::size_t c = 0; c < chunks; ++c) {
            p = static_cast<double>(static_cast<float>(p + l[*k]));
            l += lutStride;
            k += keyStride;
        }
        psum[r] = p;
    }
}

void
accumFpSpanExactAvx2(double *psum, const double *lut,
                     std::size_t lutStride, const std::uint32_t *keys,
                     std::size_t keyStride, std::size_t chunks,
                     std::size_t n)
{
    std::size_t r = 0;
    for (; r + 8 <= n; r += 8) {
        __m256d p0 = _mm256_loadu_pd(psum + r);
        __m256d p1 = _mm256_loadu_pd(psum + r + 4);
        const double *l = lut;
        const std::uint32_t *k = keys + r;
        for (std::size_t c = 0; c < chunks; ++c) {
            const __m128i k0 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(k));
            const __m128i k1 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(k + 4));
            p0 = _mm256_add_pd(p0, _mm256_i32gather_pd(l, k0, 8));
            p1 = _mm256_add_pd(p1, _mm256_i32gather_pd(l, k1, 8));
            l += lutStride;
            k += keyStride;
        }
        _mm256_storeu_pd(psum + r, p0);
        _mm256_storeu_pd(psum + r + 4, p1);
    }
    for (; r + 4 <= n; r += 4) {
        __m256d p0 = _mm256_loadu_pd(psum + r);
        const double *l = lut;
        const std::uint32_t *k = keys + r;
        for (std::size_t c = 0; c < chunks; ++c) {
            const __m128i k0 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(k));
            p0 = _mm256_add_pd(p0, _mm256_i32gather_pd(l, k0, 8));
            l += lutStride;
            k += keyStride;
        }
        _mm256_storeu_pd(psum + r, p0);
    }
    for (; r < n; ++r) {
        double p = psum[r];
        const double *l = lut;
        const std::uint32_t *k = keys + r;
        for (std::size_t c = 0; c < chunks; ++c) {
            p = p + l[*k];
            l += lutStride;
            k += keyStride;
        }
        psum[r] = p;
    }
}

void
accumIntSpanAvx2(std::int64_t *psum, const std::int64_t *lut,
                 std::size_t lutStride, const std::uint32_t *keys,
                 std::size_t keyStride, std::size_t chunks,
                 std::size_t n)
{
    const long long *lutLL = reinterpret_cast<const long long *>(lut);
    std::size_t r = 0;
    for (; r + 8 <= n; r += 8) {
        __m256i p0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(psum + r));
        __m256i p1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(psum + r + 4));
        const long long *l = lutLL;
        const std::uint32_t *k = keys + r;
        for (std::size_t c = 0; c < chunks; ++c) {
            const __m128i k0 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(k));
            const __m128i k1 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(k + 4));
            p0 = _mm256_add_epi64(p0,
                                  _mm256_i32gather_epi64(l, k0, 8));
            p1 = _mm256_add_epi64(p1,
                                  _mm256_i32gather_epi64(l, k1, 8));
            l += lutStride;
            k += keyStride;
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(psum + r), p0);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(psum + r + 4),
                            p1);
    }
    for (; r + 4 <= n; r += 4) {
        __m256i p0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(psum + r));
        const long long *l = lutLL;
        const std::uint32_t *k = keys + r;
        for (std::size_t c = 0; c < chunks; ++c) {
            const __m128i k0 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(k));
            p0 = _mm256_add_epi64(p0,
                                  _mm256_i32gather_epi64(l, k0, 8));
            l += lutStride;
            k += keyStride;
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(psum + r), p0);
    }
    for (; r < n; ++r) {
        std::int64_t p = psum[r];
        const std::int64_t *l = lut;
        const std::uint32_t *k = keys + r;
        for (std::size_t c = 0; c < chunks; ++c) {
            p += l[*k];
            l += lutStride;
            k += keyStride;
        }
        psum[r] = p;
    }
}

void
addFlatAvx2(double *out, const double *a, const double *b,
            std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(out + i,
                         _mm256_add_pd(_mm256_loadu_pd(a + i),
                                       _mm256_loadu_pd(b + i)));
    for (; i < n; ++i)
        out[i] = a[i] + b[i];
}

void
divFlatAvx2(double *v, double denom, std::size_t n)
{
    const __m256d d = _mm256_set1_pd(denom);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(v + i,
                         _mm256_div_pd(_mm256_loadu_pd(v + i), d));
    for (; i < n; ++i)
        v[i] = v[i] / denom;
}

double
maxFlatAvx2(const double *v, std::size_t n)
{
    double mx;
    std::size_t i;
    if (n >= 4) {
        __m256d acc = _mm256_loadu_pd(v);
        for (i = 4; i + 4 <= n; i += 4)
            acc = _mm256_max_pd(acc, _mm256_loadu_pd(v + i));
        double lane[4];
        _mm256_storeu_pd(lane, acc);
        mx = lane[0];
        for (int l = 1; l < 4; ++l)
            mx = mx < lane[l] ? lane[l] : mx;
    } else {
        mx = v[0];
        i = 1;
    }
    for (; i < n; ++i)
        mx = mx < v[i] ? v[i] : mx;
    return mx;
}

double
sumLanesAvx2(const double *v, std::size_t n)
{
    __m256d acc = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        acc = _mm256_add_pd(acc, _mm256_loadu_pd(v + i));
    double lane[4];
    _mm256_storeu_pd(lane, acc);
    for (std::size_t l = 0; i < n; ++i, ++l)
        lane[l] += v[i];
    return ((lane[0] + lane[1]) + lane[2]) + lane[3];
}

double
sumSqDevLanesAvx2(const double *v, double mean, std::size_t n)
{
    const __m256d m = _mm256_set1_pd(mean);
    __m256d acc = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(v + i), m);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
    }
    double lane[4];
    _mm256_storeu_pd(lane, acc);
    for (std::size_t l = 0; i < n; ++i, ++l) {
        const double d = v[i] - mean;
        lane[l] += d * d;
    }
    return ((lane[0] + lane[1]) + lane[2]) + lane[3];
}

void
normalizeFlatAvx2(double *out, const double *v, double mean,
                  double invStd, std::size_t n)
{
    const __m256d m = _mm256_set1_pd(mean);
    const __m256d s = _mm256_set1_pd(invStd);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(
            out + i,
            _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(v + i), m),
                          s));
    for (; i < n; ++i)
        out[i] = (v[i] - mean) * invStd;
}

void
geluLutFlatAvx2(double *out, const double *v, std::size_t n,
                const GeluLutTable &t)
{
    const __m256d lo = _mm256_set1_pd(t.lo);
    const __m256d hi = _mm256_set1_pd(t.hi);
    const __m256d invStep = _mm256_set1_pd(t.invStep);
    const __m256d step = _mm256_set1_pd(t.step);
    const __m128i maxIdx = _mm_set1_epi32(t.segments - 1);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d x = _mm256_loadu_pd(v + i);
        // Same predicates as the scalar clamp: max(x, lo) keeps x
        // when x > lo (NaN clamps to lo), min keeps cx when cx < hi.
        const __m256d cx =
            _mm256_min_pd(_mm256_max_pd(x, lo), hi);
        const __m256d ti =
            _mm256_mul_pd(_mm256_sub_pd(cx, lo), invStep);
        __m128i idx = _mm256_cvttpd_epi32(ti);
        idx = _mm_min_epi32(idx, maxIdx);
        const __m256d x0 = _mm256_add_pd(
            lo, _mm256_mul_pd(_mm256_cvtepi32_pd(idx), step));
        const __m256d val = _mm256_i32gather_pd(t.value.data(), idx, 8);
        const __m256d slp = _mm256_i32gather_pd(t.slope.data(), idx, 8);
        const __m256d pwl = _mm256_add_pd(
            val, _mm256_mul_pd(_mm256_sub_pd(cx, x0), slp));
        const __m256d tail = _mm256_cmp_pd(x, hi, _CMP_GT_OQ);
        _mm256_storeu_pd(out + i, _mm256_blendv_pd(pwl, x, tail));
    }
    for (; i < n; ++i) {
        const double x = v[i];
        double cx = x > t.lo ? x : t.lo;
        cx = cx < t.hi ? cx : t.hi;
        int idx = static_cast<int>((cx - t.lo) * t.invStep);
        idx = idx < t.segments ? idx : t.segments - 1;
        const double x0 = t.lo + static_cast<double>(idx) * t.step;
        const double pwl =
            t.value[static_cast<std::size_t>(idx)] +
            (cx - x0) * t.slope[static_cast<std::size_t>(idx)];
        out[i] = x > t.hi ? x : pwl;
    }
}

const SimdKernels kAvx2Kernels = {
    SimdIsa::Avx2,        accumFpSpanFp32Avx2,
    accumFpSpanExactAvx2, accumIntSpanAvx2,
    addFlatAvx2,          divFlatAvx2,
    maxFlatAvx2,          sumLanesAvx2,
    sumSqDevLanesAvx2,    normalizeFlatAvx2,
    geluLutFlatAvx2,
};

} // namespace

const SimdKernels &
avx2Kernels()
{
    return kAvx2Kernels;
}

} // namespace simd_detail
} // namespace figlut
