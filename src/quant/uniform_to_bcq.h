/**
 * @file
 * Exact conversion from uniform (RTN-style) quantization to BCQ with
 * offset — the paper's Fig. 1 construction.
 *
 * A q-bit uniform code u in [0, 2^q) with scale s and zero point zp
 * represents w = s * (u - zp). Writing u in binary digits c_i and
 * substituting c_i = (b_i + 1) / 2 with b_i in {-1, +1} yields
 *
 *     w = sum_i (s * 2^(i-1)) * b_i  +  s * ((2^q - 1) / 2 - zp)
 *
 * i.e. BCQ planes are the binary digits of the code, alpha_i = s*2^i/2,
 * and the offset absorbs the zero point. The conversion is exact at the
 * code level, which is what lets one BCQ engine execute uniformly
 * quantized models.
 */

#ifndef FIGLUT_QUANT_UNIFORM_TO_BCQ_H
#define FIGLUT_QUANT_UNIFORM_TO_BCQ_H

#include "quant/bcq.h"
#include "quant/rtn.h"

namespace figlut {

/** Convert an RTN tensor to the equivalent BCQ-with-offset tensor. */
BcqTensor uniformToBcq(const RtnTensor &rtn);

/**
 * Recover the uniform code at (r, c) from a converted tensor
 * (digit-reassembly; exact inverse of uniformToBcq's plane mapping).
 */
uint8_t bcqToUniformCode(const BcqTensor &bcq, std::size_t r,
                         std::size_t c);

} // namespace figlut

#endif // FIGLUT_QUANT_UNIFORM_TO_BCQ_H
