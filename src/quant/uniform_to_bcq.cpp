#include "quant/uniform_to_bcq.h"

#include <cmath>

#include "common/logging.h"

namespace figlut {

BcqTensor
uniformToBcq(const RtnTensor &rtn)
{
    BcqTensor t;
    t.rows = rtn.rows;
    t.cols = rtn.cols;
    t.bits = rtn.bits;
    t.groupSize = rtn.groupSize;
    t.hasOffset = true;

    const std::size_t groups = rtn.groupsPerRow();
    t.planes.assign(static_cast<std::size_t>(t.bits),
                    Matrix<uint8_t>(t.rows, t.cols, 0));
    t.alphas.assign(static_cast<std::size_t>(t.bits),
                    Matrix<double>(t.rows, groups, 0.0));
    t.offsets = Matrix<double>(t.rows, groups, 0.0);

    const double levels = static_cast<double>((1 << t.bits) - 1);
    for (std::size_t r = 0; r < t.rows; ++r) {
        for (std::size_t g = 0; g < groups; ++g) {
            const double s = rtn.scales(r, g);
            const double zp = rtn.zeroPoints(r, g);
            for (int i = 0; i < t.bits; ++i) {
                // alpha_i = s * 2^i / 2
                t.alphas[static_cast<std::size_t>(i)](r, g) =
                    s * std::ldexp(1.0, i - 1);
            }
            t.offsets(r, g) = s * (levels / 2.0 - zp);
        }
    }

    for (std::size_t r = 0; r < t.rows; ++r) {
        for (std::size_t c = 0; c < t.cols; ++c) {
            const uint8_t code = rtn.codes(r, c);
            for (int i = 0; i < t.bits; ++i) {
                t.planes[static_cast<std::size_t>(i)](r, c) =
                    static_cast<uint8_t>((code >> i) & 1);
            }
        }
    }
    return t;
}

uint8_t
bcqToUniformCode(const BcqTensor &bcq, std::size_t r, std::size_t c)
{
    FIGLUT_ASSERT(bcq.hasOffset,
                  "only offset-form BCQ tensors encode uniform codes");
    unsigned code = 0;
    for (int i = 0; i < bcq.bits; ++i)
        code |= static_cast<unsigned>(
                    bcq.planes[static_cast<std::size_t>(i)](r, c)) << i;
    return static_cast<uint8_t>(code);
}

} // namespace figlut
