/**
 * @file
 * Sensitivity-driven mixed-precision bit allocation.
 *
 * ShiftAddLLM (the quantizer FIGLUT's Fig. 17 rides on) assigns each
 * layer 2 or 3 bits based on its quantization sensitivity so that the
 * *average* bit width hits a target like 2.4. The accelerator is
 * bit-serial, so a fractional average translates directly into average
 * cycles/energy. This module implements the allocation: given per-layer
 * sensitivity scores and sizes, pick per-layer integer bit widths that
 * reach a target average while minimizing total weighted error.
 */

#ifndef FIGLUT_QUANT_MIXED_PRECISION_H
#define FIGLUT_QUANT_MIXED_PRECISION_H

#include <cstdint>
#include <string>
#include <vector>

namespace figlut {

/** One quantizable layer in the allocation problem. */
struct LayerBudgetItem
{
    std::string name;
    std::size_t paramCount = 0; ///< number of weights in the layer
    /**
     * Expected quantization error *reduction* per extra bit, weighted
     * by importance (higher = more sensitive = give bits first).
     */
    double sensitivity = 0.0;
};

/** Result of the allocation. */
struct MixedPrecisionPlan
{
    std::vector<int> bitsPerLayer;  ///< aligned with the input layers
    double avgBits = 0.0;           ///< parameter-weighted average
    int minBits = 0;
    int maxBits = 0;
};

/** Configuration of the allocator. */
struct MixedPrecisionConfig
{
    double targetAvgBits = 2.4;
    int minBits = 2;
    int maxBits = 4;
};

/**
 * Allocate per-layer bit widths.
 *
 * Every layer starts at minBits; extra bits are granted greedily to the
 * most sensitive remaining layer (sensitivity per parameter) until the
 * parameter-weighted average reaches the target. Deterministic: ties
 * break on layer order.
 */
MixedPrecisionPlan allocateBits(const std::vector<LayerBudgetItem> &layers,
                                const MixedPrecisionConfig &config);

/** Parameter-weighted average bit width of an explicit assignment. */
double averageBits(const std::vector<LayerBudgetItem> &layers,
                   const std::vector<int> &bits);

} // namespace figlut

#endif // FIGLUT_QUANT_MIXED_PRECISION_H
