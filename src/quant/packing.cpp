#include "quant/packing.h"

#include <algorithm>

#include "common/logging.h"

namespace figlut {

int
PackedPlane::bit(std::size_t r, std::size_t c) const
{
    FIGLUT_ASSERT(r < rows && c < cols, "packed plane index out of range");
    const std::size_t word = r * wordsPerRow + c / 64;
    return static_cast<int>((words[word] >> (c % 64)) & 1u);
}

std::size_t
PackedBcq::planeBytes() const
{
    std::size_t bytes = 0;
    for (const auto &p : planes)
        bytes += p.words.size() * sizeof(uint64_t);
    return bytes;
}

PackedBcq
packBcq(const BcqTensor &tensor)
{
    PackedBcq out;
    out.bits = tensor.bits;
    out.planes.reserve(static_cast<std::size_t>(tensor.bits));
    for (int i = 0; i < tensor.bits; ++i) {
        const auto &plane = tensor.planes[static_cast<std::size_t>(i)];
        PackedPlane p;
        p.rows = plane.rows();
        p.cols = plane.cols();
        p.wordsPerRow = (plane.cols() + 63) / 64;
        p.words.assign(p.rows * p.wordsPerRow, 0);
        for (std::size_t r = 0; r < p.rows; ++r) {
            for (std::size_t c = 0; c < p.cols; ++c) {
                if (plane(r, c))
                    p.words[r * p.wordsPerRow + c / 64] |=
                        uint64_t(1) << (c % 64);
            }
        }
        out.planes.push_back(std::move(p));
    }
    return out;
}

std::vector<Matrix<uint8_t>>
unpackBcq(const PackedBcq &packed)
{
    std::vector<Matrix<uint8_t>> planes;
    planes.reserve(packed.planes.size());
    for (const auto &p : packed.planes) {
        Matrix<uint8_t> m(p.rows, p.cols, 0);
        for (std::size_t r = 0; r < p.rows; ++r)
            for (std::size_t c = 0; c < p.cols; ++c)
                m(r, c) = static_cast<uint8_t>(p.bit(r, c));
        planes.push_back(std::move(m));
    }
    return planes;
}

uint32_t
PackedLutKeys::key(int plane, std::size_t chunk, std::size_t r) const
{
    FIGLUT_ASSERT(plane >= 0 && plane < bits && chunk < totalChunks &&
                      r < rows,
                  "packed key index out of range");
    return chunkKeys(plane, chunk)[r];
}

PackedLutKeys
packLutKeys(const BcqTensor &tensor, int mu)
{
    if (mu < 1 || mu > kMaxMu)
        fatal("packLutKeys mu must be in [1, ", kMaxMu, "], got ", mu);
    if (tensor.groupSize == 0)
        fatal("packLutKeys needs a normalized (non-zero) group size");

    PackedLutKeys out;
    out.mu = mu;
    out.bits = tensor.bits;
    out.rows = tensor.rows;
    out.cols = tensor.cols;
    out.groupSize = tensor.groupSize;
    out.groups = tensor.groupsPerRow();

    out.groupChunkStart.reserve(out.groups + 1);
    out.groupChunkStart.push_back(0);
    for (std::size_t g = 0; g < out.groups; ++g) {
        const std::size_t c0 = g * tensor.groupSize;
        const std::size_t c1 =
            std::min(tensor.cols, c0 + tensor.groupSize);
        const std::size_t chunks =
            (c1 - c0 + static_cast<std::size_t>(mu) - 1) /
            static_cast<std::size_t>(mu);
        out.groupChunkStart.push_back(out.groupChunkStart.back() + chunks);
    }
    out.totalChunks = out.groupChunkStart.back();

    out.keys.resize(static_cast<std::size_t>(tensor.bits) *
                    out.totalChunks * tensor.rows);
    uint32_t *dst = out.keys.data();
    for (int i = 0; i < tensor.bits; ++i) {
        const auto &plane = tensor.planes[static_cast<std::size_t>(i)];
        for (std::size_t g = 0; g < out.groups; ++g) {
            const std::size_t c0 = g * tensor.groupSize;
            const std::size_t c1 =
                std::min(tensor.cols, c0 + tensor.groupSize);
            for (std::size_t ch = 0; ch < out.chunksInGroup(g); ++ch) {
                const std::size_t cBase =
                    c0 + ch * static_cast<std::size_t>(mu);
                for (std::size_t r = 0; r < tensor.rows; ++r) {
                    const uint8_t *bits = plane.rowPtr(r);
                    uint32_t key = 0;
                    for (int j = 0; j < mu; ++j) {
                        const std::size_t c =
                            cBase + static_cast<std::size_t>(j);
                        // Tail padding encodes weight +1 against a zero
                        // activation: contributes exactly zero.
                        key = (key << 1) | (c < c1 ? bits[c] : 1u);
                    }
                    *dst++ = key;
                }
            }
        }
    }
    return out;
}

std::size_t
bcqWeightBytes(std::size_t rows, std::size_t cols, int bits,
               std::size_t group_size, bool has_offset)
{
    if (group_size == 0)
        group_size = cols;
    const std::size_t groups = (cols + group_size - 1) / group_size;
    const std::size_t plane_bits =
        static_cast<std::size_t>(bits) * rows * cols;
    std::size_t meta_entries =
        static_cast<std::size_t>(bits) * rows * groups;
    if (has_offset)
        meta_entries += rows * groups;
    return (plane_bits + 7) / 8 + meta_entries * 2;
}

std::size_t
activationBytes(std::size_t rows, std::size_t cols, int storage_bits)
{
    return (rows * cols * static_cast<std::size_t>(storage_bits) + 7) / 8;
}

} // namespace figlut
