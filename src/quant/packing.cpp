#include "quant/packing.h"

#include "common/logging.h"

namespace figlut {

int
PackedPlane::bit(std::size_t r, std::size_t c) const
{
    FIGLUT_ASSERT(r < rows && c < cols, "packed plane index out of range");
    const std::size_t word = r * wordsPerRow + c / 64;
    return static_cast<int>((words[word] >> (c % 64)) & 1u);
}

std::size_t
PackedBcq::planeBytes() const
{
    std::size_t bytes = 0;
    for (const auto &p : planes)
        bytes += p.words.size() * sizeof(uint64_t);
    return bytes;
}

PackedBcq
packBcq(const BcqTensor &tensor)
{
    PackedBcq out;
    out.bits = tensor.bits;
    out.planes.reserve(static_cast<std::size_t>(tensor.bits));
    for (int i = 0; i < tensor.bits; ++i) {
        const auto &plane = tensor.planes[static_cast<std::size_t>(i)];
        PackedPlane p;
        p.rows = plane.rows();
        p.cols = plane.cols();
        p.wordsPerRow = (plane.cols() + 63) / 64;
        p.words.assign(p.rows * p.wordsPerRow, 0);
        for (std::size_t r = 0; r < p.rows; ++r) {
            for (std::size_t c = 0; c < p.cols; ++c) {
                if (plane(r, c))
                    p.words[r * p.wordsPerRow + c / 64] |=
                        uint64_t(1) << (c % 64);
            }
        }
        out.planes.push_back(std::move(p));
    }
    return out;
}

std::vector<Matrix<uint8_t>>
unpackBcq(const PackedBcq &packed)
{
    std::vector<Matrix<uint8_t>> planes;
    planes.reserve(packed.planes.size());
    for (const auto &p : packed.planes) {
        Matrix<uint8_t> m(p.rows, p.cols, 0);
        for (std::size_t r = 0; r < p.rows; ++r)
            for (std::size_t c = 0; c < p.cols; ++c)
                m(r, c) = static_cast<uint8_t>(p.bit(r, c));
        planes.push_back(std::move(m));
    }
    return planes;
}

std::size_t
bcqWeightBytes(std::size_t rows, std::size_t cols, int bits,
               std::size_t group_size, bool has_offset)
{
    if (group_size == 0)
        group_size = cols;
    const std::size_t groups = (cols + group_size - 1) / group_size;
    const std::size_t plane_bits =
        static_cast<std::size_t>(bits) * rows * cols;
    std::size_t meta_entries =
        static_cast<std::size_t>(bits) * rows * groups;
    if (has_offset)
        meta_entries += rows * groups;
    return (plane_bits + 7) / 8 + meta_entries * 2;
}

std::size_t
activationBytes(std::size_t rows, std::size_t cols, int storage_bits)
{
    return (rows * cols * static_cast<std::size_t>(storage_bits) + 7) / 8;
}

} // namespace figlut
