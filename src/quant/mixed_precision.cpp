#include "quant/mixed_precision.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace figlut {

double
averageBits(const std::vector<LayerBudgetItem> &layers,
            const std::vector<int> &bits)
{
    FIGLUT_ASSERT(layers.size() == bits.size(),
                  "averageBits: layer/bits length mismatch");
    double weighted = 0.0;
    double total = 0.0;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        weighted += static_cast<double>(layers[i].paramCount) * bits[i];
        total += static_cast<double>(layers[i].paramCount);
    }
    return total > 0.0 ? weighted / total : 0.0;
}

MixedPrecisionPlan
allocateBits(const std::vector<LayerBudgetItem> &layers,
             const MixedPrecisionConfig &config)
{
    if (layers.empty())
        fatal("mixed-precision allocation needs at least one layer");
    if (config.minBits < 1 || config.maxBits > 8 ||
        config.minBits > config.maxBits) {
        fatal("invalid mixed-precision bit range [", config.minBits, ", ",
              config.maxBits, "]");
    }
    if (config.targetAvgBits < config.minBits ||
        config.targetAvgBits > config.maxBits) {
        fatal("target average bits ", config.targetAvgBits,
              " outside the allowed range [", config.minBits, ", ",
              config.maxBits, "]");
    }

    MixedPrecisionPlan plan;
    plan.bitsPerLayer.assign(layers.size(), config.minBits);
    plan.minBits = config.minBits;
    plan.maxBits = config.maxBits;

    std::size_t total_params = 0;
    for (const auto &layer : layers) {
        if (layer.paramCount == 0)
            fatal("layer '", layer.name, "' has zero parameters");
        total_params += layer.paramCount;
    }

    // Bit budget above the floor that the target average allows.
    const double budget_bits =
        (config.targetAvgBits - config.minBits) *
        static_cast<double>(total_params);

    // Greedy: repeatedly upgrade the layer with the best sensitivity
    // per parameter that still fits in the remaining budget.
    struct Candidate
    {
        double gainPerParam;
        std::size_t index;

        bool
        operator<(const Candidate &other) const
        {
            // max-heap on gain; tie-break on lower index for
            // determinism.
            if (gainPerParam != other.gainPerParam)
                return gainPerParam < other.gainPerParam;
            return index > other.index;
        }
    };

    std::priority_queue<Candidate> heap;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        heap.push({layers[i].sensitivity /
                       static_cast<double>(layers[i].paramCount),
                   i});
    }

    double spent = 0.0;
    while (!heap.empty()) {
        const auto cand = heap.top();
        heap.pop();
        const std::size_t i = cand.index;
        if (plan.bitsPerLayer[i] >= config.maxBits)
            continue;
        const double cost = static_cast<double>(layers[i].paramCount);
        if (spent + cost > budget_bits + 1e-9)
            continue; // does not fit; try smaller layers
        ++plan.bitsPerLayer[i];
        spent += cost;
        // Diminishing returns: each further bit halves the gain.
        heap.push({cand.gainPerParam * 0.5, i});
    }

    plan.avgBits = averageBits(layers, plan.bitsPerLayer);
    return plan;
}

} // namespace figlut
