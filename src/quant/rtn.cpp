#include "quant/rtn.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace figlut {

std::size_t
RtnTensor::groupsPerRow() const
{
    return (cols + groupSize - 1) / groupSize;
}

double
RtnTensor::dequant(std::size_t r, std::size_t c) const
{
    const std::size_t g = groupOfCol(c);
    return scales(r, g) *
           (static_cast<double>(codes(r, c)) - zeroPoints(r, g));
}

MatrixD
RtnTensor::dequantAll() const
{
    MatrixD out(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            out(r, c) = dequant(r, c);
    return out;
}

RtnTensor
quantizeRtn(const MatrixD &weights, const RtnConfig &config)
{
    if (config.bits < 1 || config.bits > 8)
        fatal("RTN bit width must be in [1, 8], got ", config.bits);
    if (weights.rows() == 0 || weights.cols() == 0)
        fatal("cannot quantize an empty weight matrix");

    RtnTensor t;
    t.rows = weights.rows();
    t.cols = weights.cols();
    t.bits = config.bits;
    t.groupSize = config.groupSize == 0 ? t.cols : config.groupSize;
    if (t.groupSize > t.cols)
        t.groupSize = t.cols;

    const std::size_t groups = t.groupsPerRow();
    const int qmax = (1 << config.bits) - 1;

    t.codes = Matrix<uint8_t>(t.rows, t.cols);
    t.scales = Matrix<double>(t.rows, groups, 0.0);
    t.zeroPoints = Matrix<int32_t>(t.rows, groups, 0);

    for (std::size_t r = 0; r < t.rows; ++r) {
        for (std::size_t g = 0; g < groups; ++g) {
            const std::size_t c0 = g * t.groupSize;
            const std::size_t c1 = std::min(t.cols, c0 + t.groupSize);

            double lo = weights(r, c0);
            double hi = weights(r, c0);
            for (std::size_t c = c0; c < c1; ++c) {
                lo = std::min(lo, weights(r, c));
                hi = std::max(hi, weights(r, c));
            }

            double scale = 0.0;
            int32_t zp = 0;
            if (config.symmetric) {
                const double amax = std::max(std::fabs(lo), std::fabs(hi));
                // Codes are re-centred on the mid code.
                zp = qmax / 2;
                scale = amax > 0.0
                            ? amax / std::max(qmax - zp, zp)
                            : 1.0;
            } else {
                scale = (hi - lo) / qmax;
                if (scale <= 0.0) {
                    // Constant group: make code 1 reproduce the value
                    // exactly (scale may be negative; the affine
                    // dequant form does not care). All-zero groups
                    // keep scale 1 so code 0 decodes to 0.
                    scale = lo != 0.0 ? lo : 1.0;
                    zp = 0;
                } else {
                    zp = static_cast<int32_t>(std::lround(-lo / scale));
                    zp = std::clamp(zp, 0, qmax);
                }
            }

            t.scales(r, g) = scale;
            t.zeroPoints(r, g) = zp;

            for (std::size_t c = c0; c < c1; ++c) {
                const double q =
                    std::lround(weights(r, c) / scale) + zp;
                const auto code = static_cast<uint8_t>(
                    std::clamp<long>(static_cast<long>(q), 0, qmax));
                t.codes(r, c) = code;
            }
        }
    }
    return t;
}

double
rtnMse(const MatrixD &weights, const RtnTensor &tensor)
{
    FIGLUT_ASSERT(weights.rows() == tensor.rows &&
                  weights.cols() == tensor.cols,
                  "RTN MSE shape mismatch");
    double acc = 0.0;
    for (std::size_t r = 0; r < tensor.rows; ++r) {
        for (std::size_t c = 0; c < tensor.cols; ++c) {
            const double d = weights(r, c) - tensor.dequant(r, c);
            acc += d * d;
        }
    }
    return acc / static_cast<double>(weights.size());
}

} // namespace figlut
