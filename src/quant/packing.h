/**
 * @file
 * Bit-plane packing and memory footprint accounting.
 *
 * The simulator charges DRAM/SRAM traffic for weights in their packed
 * bit-serial layout: plane-major, row-major within a plane, 64 columns
 * per word. The packed form is also what the detailed systolic model
 * streams into the PE array.
 */

#ifndef FIGLUT_QUANT_PACKING_H
#define FIGLUT_QUANT_PACKING_H

#include <cstdint>
#include <vector>

#include "quant/bcq.h"

namespace figlut {

/** One packed bit plane: rows x ceil(cols/64) words. */
struct PackedPlane
{
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::size_t wordsPerRow = 0;
    std::vector<uint64_t> words; ///< row-major

    /** Bit at (r, c) (1 => +1). */
    int bit(std::size_t r, std::size_t c) const;
};

/** All planes of a BCQ tensor in packed form. */
struct PackedBcq
{
    int bits = 0;
    std::vector<PackedPlane> planes;

    /** Total packed plane payload in bytes (excludes scales/offsets). */
    std::size_t planeBytes() const;
};

/** Pack all bit planes of a BCQ tensor. */
PackedBcq packBcq(const BcqTensor &tensor);

/** Unpack back to {0,1} matrices (for round-trip verification). */
std::vector<Matrix<uint8_t>> unpackBcq(const PackedBcq &packed);

/**
 * Memory footprint helpers (bytes) used by the traffic model.
 * Scale/offset metadata is charged at 16-bit per entry, matching the
 * FP16 scale storage used by LUT-GEMM-style kernels.
 */
std::size_t bcqWeightBytes(std::size_t rows, std::size_t cols, int bits,
                           std::size_t group_size, bool has_offset);

/** Activation footprint in bytes for a rows x cols FP tile. */
std::size_t activationBytes(std::size_t rows, std::size_t cols,
                            int storage_bits);

} // namespace figlut

#endif // FIGLUT_QUANT_PACKING_H
