/**
 * @file
 * Bit-plane packing and memory footprint accounting.
 *
 * The simulator charges DRAM/SRAM traffic for weights in their packed
 * bit-serial layout: plane-major, row-major within a plane, 64 columns
 * per word. The packed form is also what the detailed systolic model
 * streams into the PE array.
 *
 * The LUT-GEMM hot path consumes weights through a second packed form,
 * PackedLutKeys: the mu-bit LUT read keys of every (plane, chunk, row)
 * materialized once per weight tensor, so the kernel's accumulate loop
 * is a linear key walk plus a table read instead of per-read
 * bit-gathering from the {0,1} planes.
 */

#ifndef FIGLUT_QUANT_PACKING_H
#define FIGLUT_QUANT_PACKING_H

#include <cstdint>
#include <vector>

#include "core/lut_key.h"
#include "quant/bcq.h"

namespace figlut {

/** One packed bit plane: rows x ceil(cols/64) words. */
struct PackedPlane
{
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::size_t wordsPerRow = 0;
    std::vector<uint64_t> words; ///< row-major

    /** Bit at (r, c) (1 => +1). */
    int bit(std::size_t r, std::size_t c) const;
};

/** All planes of a BCQ tensor in packed form. */
struct PackedBcq
{
    int bits = 0;
    std::vector<PackedPlane> planes;

    /** Total packed plane payload in bytes (excludes scales/offsets). */
    std::size_t planeBytes() const;
};

/** Pack all bit planes of a BCQ tensor. */
PackedBcq packBcq(const BcqTensor &tensor);

/**
 * Pre-packed LUT read keys of a BCQ tensor for one LUT group size mu.
 *
 * Activations are chunked into mu-element LUT groups *within* each
 * scale group (a chunk never straddles a group boundary); tail chunks
 * are padded with key bit 1, which pairs a zero activation with weight
 * +1 and contributes exactly zero. Keys depend only on the weights, so
 * this is a one-time pass per (tensor, mu): build it with
 * packLutKeys() and hand it to the lutGemm() overload below to reuse
 * across repeated-inference calls.
 *
 * Layout: keys[(plane * totalChunks + chunk) * rows + row], i.e.
 * [plane][chunk][row] with the row index innermost — for a fixed
 * (plane, chunk) the keys of consecutive output rows are contiguous,
 * which is the walk order of the packed kernel's accumulate loop.
 */
struct PackedLutKeys
{
    int mu = 0;                ///< LUT group size the keys encode
    int bits = 0;              ///< bit planes q
    std::size_t rows = 0;      ///< output features (M)
    std::size_t cols = 0;      ///< input features (N)
    std::size_t groupSize = 0; ///< columns per scale group
    std::size_t groups = 0;    ///< scale groups per row
    std::size_t totalChunks = 0; ///< sum of per-group chunk counts

    /** First global chunk index of each group; size groups + 1. */
    std::vector<std::size_t> groupChunkStart;
    /** [plane][chunk][row] (see layout note above). */
    std::vector<uint32_t> keys;

    /** Chunk count of group g. */
    std::size_t
    chunksInGroup(std::size_t g) const
    {
        return groupChunkStart[g + 1] - groupChunkStart[g];
    }

    /** Contiguous per-row keys of one (plane, global chunk). */
    const uint32_t *
    chunkKeys(int plane, std::size_t chunk) const
    {
        return keys.data() +
               (static_cast<std::size_t>(plane) * totalChunks + chunk) *
                   rows;
    }

    /** Single key lookup (bounds-checked). */
    uint32_t key(int plane, std::size_t chunk, std::size_t r) const;

    /** Payload size of the materialized keys in bytes. */
    std::size_t keyBytes() const { return keys.size() * sizeof(uint32_t); }
};

/**
 * Materialize every chunk key of a BCQ tensor for LUT group size mu.
 * One linear pass over the bit planes; the tensor must have a
 * normalized (non-zero) groupSize, as produced by quantizeBcq().
 */
PackedLutKeys packLutKeys(const BcqTensor &tensor, int mu);

/** Unpack back to {0,1} matrices (for round-trip verification). */
std::vector<Matrix<uint8_t>> unpackBcq(const PackedBcq &packed);

/**
 * Memory footprint helpers (bytes) used by the traffic model.
 * Scale/offset metadata is charged at 16-bit per entry, matching the
 * FP16 scale storage used by LUT-GEMM-style kernels.
 */
std::size_t bcqWeightBytes(std::size_t rows, std::size_t cols, int bits,
                           std::size_t group_size, bool has_offset);

/** Activation footprint in bytes for a rows x cols FP tile. */
std::size_t activationBytes(std::size_t rows, std::size_t cols,
                            int storage_bits);

} // namespace figlut

#endif // FIGLUT_QUANT_PACKING_H
