#include "quant/bcq.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace figlut {

namespace {

/**
 * Solve a small dense symmetric system A x = b in place with Gaussian
 * elimination and partial pivoting. A tiny ridge term keeps degenerate
 * code matrices (e.g. two identical planes) solvable.
 */
std::vector<double>
solveSmallSystem(std::vector<std::vector<double>> a, std::vector<double> b)
{
    const std::size_t n = b.size();
    for (std::size_t i = 0; i < n; ++i)
        a[i][i] += 1e-9;

    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r)
            if (std::fabs(a[r][col]) > std::fabs(a[pivot][col]))
                pivot = r;
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);

        const double d = a[col][col];
        FIGLUT_ASSERT(d != 0.0, "singular system in BCQ solve");
        for (std::size_t r = col + 1; r < n; ++r) {
            const double f = a[r][col] / d;
            if (f == 0.0)
                continue;
            for (std::size_t c = col; c < n; ++c)
                a[r][c] -= f * a[col][c];
            b[r] -= f * b[col];
        }
    }
    std::vector<double> x(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
        double acc = b[i];
        for (std::size_t c = i + 1; c < n; ++c)
            acc -= a[i][c] * x[c];
        x[i] = acc / a[i][i];
    }
    return x;
}

/** Working state for one (row, group) segment. */
struct Segment
{
    std::vector<double> w;                ///< original weights
    std::vector<std::vector<int8_t>> b;   ///< b[i][e] in {-1, +1}
    std::vector<double> alpha;            ///< per plane
    double z = 0.0;
    bool useOffset = false;

    double
    reconstruct(std::size_t e) const
    {
        double acc = z;
        for (std::size_t i = 0; i < alpha.size(); ++i)
            acc += alpha[i] * b[i][e];
        return acc;
    }

    double
    mse() const
    {
        double acc = 0.0;
        for (std::size_t e = 0; e < w.size(); ++e) {
            const double d = w[e] - reconstruct(e);
            acc += d * d;
        }
        return acc / static_cast<double>(w.size());
    }
};

/** Greedy residual initialization (sign of residual, mean |residual|). */
void
greedyInit(Segment &seg, int bits)
{
    const std::size_t len = seg.w.size();
    std::vector<double> residual = seg.w;

    if (seg.useOffset) {
        double mean = 0.0;
        for (double v : residual)
            mean += v;
        mean /= static_cast<double>(len);
        seg.z = mean;
        for (double &v : residual)
            v -= mean;
    }

    seg.b.assign(bits, std::vector<int8_t>(len, 1));
    seg.alpha.assign(bits, 0.0);
    for (int i = 0; i < bits; ++i) {
        double mean_abs = 0.0;
        for (std::size_t e = 0; e < len; ++e) {
            seg.b[i][e] = residual[e] >= 0.0 ? 1 : -1;
            mean_abs += std::fabs(residual[e]);
        }
        mean_abs /= static_cast<double>(len);
        seg.alpha[i] = mean_abs;
        for (std::size_t e = 0; e < len; ++e)
            residual[e] -= seg.alpha[i] * seg.b[i][e];
    }
}

/** Least-squares update of (alpha, z) for fixed codes. */
void
refitScales(Segment &seg)
{
    const int q = static_cast<int>(seg.alpha.size());
    const int dim = q + (seg.useOffset ? 1 : 0);
    const std::size_t len = seg.w.size();

    std::vector<std::vector<double>> gram(
        dim, std::vector<double>(dim, 0.0));
    std::vector<double> rhs(dim, 0.0);

    auto basis = [&](int i, std::size_t e) -> double {
        return i < q ? static_cast<double>(seg.b[i][e]) : 1.0;
    };
    for (int i = 0; i < dim; ++i) {
        for (int j = i; j < dim; ++j) {
            double acc = 0.0;
            for (std::size_t e = 0; e < len; ++e)
                acc += basis(i, e) * basis(j, e);
            gram[i][j] = acc;
            gram[j][i] = acc;
        }
        double acc = 0.0;
        for (std::size_t e = 0; e < len; ++e)
            acc += basis(i, e) * seg.w[e];
        rhs[i] = acc;
    }

    const auto x = solveSmallSystem(gram, rhs);
    for (int i = 0; i < q; ++i)
        seg.alpha[i] = x[i];
    if (seg.useOffset)
        seg.z = x[q];
}

/** Optimal per-element code re-selection for fixed (alpha, z). */
void
reselectCodes(Segment &seg)
{
    const int q = static_cast<int>(seg.alpha.size());
    const std::size_t len = seg.w.size();
    const int patterns = 1 << q;

    // Precompute the 2^q achievable levels.
    std::vector<double> level(patterns, 0.0);
    for (int p = 0; p < patterns; ++p) {
        double acc = seg.z;
        for (int i = 0; i < q; ++i)
            acc += (p >> i) & 1 ? seg.alpha[i] : -seg.alpha[i];
        level[p] = acc;
    }

    for (std::size_t e = 0; e < len; ++e) {
        int best = 0;
        double best_err = std::fabs(seg.w[e] - level[0]);
        for (int p = 1; p < patterns; ++p) {
            const double err = std::fabs(seg.w[e] - level[p]);
            if (err < best_err) {
                best_err = err;
                best = p;
            }
        }
        for (int i = 0; i < q; ++i)
            seg.b[i][e] = (best >> i) & 1 ? 1 : -1;
    }
}

} // namespace

std::size_t
BcqTensor::groupsPerRow() const
{
    return (cols + groupSize - 1) / groupSize;
}

int8_t
BcqTensor::sign(int plane, std::size_t r, std::size_t c) const
{
    FIGLUT_ASSERT(plane >= 0 && plane < bits, "plane ", plane,
                  " out of range for ", bits, "-bit BCQ tensor");
    return planes[static_cast<std::size_t>(plane)](r, c) ? 1 : -1;
}

double
BcqTensor::dequant(std::size_t r, std::size_t c) const
{
    const std::size_t g = groupOfCol(c);
    double acc = offsets(r, g);
    for (int i = 0; i < bits; ++i)
        acc += alphas[static_cast<std::size_t>(i)](r, g) * sign(i, r, c);
    return acc;
}

MatrixD
BcqTensor::dequantAll() const
{
    MatrixD out(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            out(r, c) = dequant(r, c);
    return out;
}

std::size_t
BcqTensor::storageBits(int scale_bits) const
{
    const std::size_t plane_bits =
        static_cast<std::size_t>(bits) * rows * cols;
    const std::size_t scale_count =
        static_cast<std::size_t>(bits) * rows * groupsPerRow();
    const std::size_t offset_count =
        hasOffset ? rows * groupsPerRow() : 0;
    return plane_bits +
           (scale_count + offset_count) * static_cast<std::size_t>(
               scale_bits);
}

BcqTensor
quantizeBcq(const MatrixD &weights, const BcqConfig &config)
{
    if (config.bits < 1 || config.bits > 8)
        fatal("BCQ bit width must be in [1, 8], got ", config.bits);
    if (weights.rows() == 0 || weights.cols() == 0)
        fatal("cannot quantize an empty weight matrix");

    BcqTensor t;
    t.rows = weights.rows();
    t.cols = weights.cols();
    t.bits = config.bits;
    t.groupSize = config.groupSize == 0 ? t.cols : config.groupSize;
    if (t.groupSize > t.cols)
        t.groupSize = t.cols;
    t.hasOffset = config.useOffset;

    const std::size_t groups = t.groupsPerRow();
    t.planes.assign(static_cast<std::size_t>(t.bits),
                    Matrix<uint8_t>(t.rows, t.cols, 0));
    t.alphas.assign(static_cast<std::size_t>(t.bits),
                    Matrix<double>(t.rows, groups, 0.0));
    t.offsets = Matrix<double>(t.rows, groups, 0.0);

    for (std::size_t r = 0; r < t.rows; ++r) {
        for (std::size_t g = 0; g < groups; ++g) {
            const std::size_t c0 = g * t.groupSize;
            const std::size_t c1 = std::min(t.cols, c0 + t.groupSize);

            Segment seg;
            seg.useOffset = config.useOffset;
            seg.w.assign(weights.rowPtr(r) + c0, weights.rowPtr(r) + c1);

            greedyInit(seg, t.bits);
            double prev = seg.mse();
            for (int it = 0; it < config.iterations; ++it) {
                refitScales(seg);
                reselectCodes(seg);
                const double cur = seg.mse();
                // Alternating steps each minimize their subproblem, so
                // the error cannot rise; stop when converged.
                if (cur >= prev - 1e-15)
                    break;
                prev = cur;
            }
            // A final scale refit for the final codes.
            refitScales(seg);

            for (int i = 0; i < t.bits; ++i) {
                t.alphas[static_cast<std::size_t>(i)](r, g) = seg.alpha[
                    static_cast<std::size_t>(i)];
                for (std::size_t c = c0; c < c1; ++c) {
                    t.planes[static_cast<std::size_t>(i)](r, c) =
                        seg.b[static_cast<std::size_t>(i)][c - c0] > 0
                            ? 1 : 0;
                }
            }
            t.offsets(r, g) = seg.z;
        }
    }
    return t;
}

double
bcqMse(const MatrixD &weights, const BcqTensor &tensor)
{
    FIGLUT_ASSERT(weights.rows() == tensor.rows &&
                  weights.cols() == tensor.cols,
                  "BCQ MSE shape mismatch");
    double acc = 0.0;
    for (std::size_t r = 0; r < tensor.rows; ++r) {
        for (std::size_t c = 0; c < tensor.cols; ++c) {
            const double d = weights(r, c) - tensor.dequant(r, c);
            acc += d * d;
        }
    }
    return acc / static_cast<double>(weights.size());
}

} // namespace figlut
