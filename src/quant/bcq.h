/**
 * @file
 * Binary-coding quantization (BCQ).
 *
 * A real weight w is approximated as w ~= sum_i alpha_i * b_i (+ z),
 * with b_i in {-1, +1} (Xu et al., "Alternating Multi-bit Quantization").
 * The offset term z is the extension from LUT-GEMM (Park et al.) that
 * lets the same format represent uniform quantization exactly, which is
 * what allows FIGLUT to serve both uniform and non-uniform models on one
 * datapath (paper Section II-B, Fig. 1).
 *
 * Storage layout: q bit-planes, each a {0,1} matrix (1 => +1), with
 * per-(row, group) scale factors alpha_i and offsets z. This mirrors the
 * bit-serial execution order of the accelerator (Fig. 5b): plane-major
 * within a weight tile.
 */

#ifndef FIGLUT_QUANT_BCQ_H
#define FIGLUT_QUANT_BCQ_H

#include <cstdint>
#include <vector>

#include "common/matrix.h"

namespace figlut {

/** A BCQ-quantized weight matrix. */
struct BcqTensor
{
    std::size_t rows = 0;      ///< output features (M)
    std::size_t cols = 0;      ///< input features (N)
    int bits = 0;              ///< number of bit planes q
    std::size_t groupSize = 0; ///< columns per scale group
    bool hasOffset = false;    ///< offset term present

    /** planes[i](r, c) in {0, 1}; 1 encodes b = +1, 0 encodes b = -1. */
    std::vector<Matrix<uint8_t>> planes;
    /** alphas[i](r, g): scale of plane i for row r, column group g. */
    std::vector<Matrix<double>> alphas;
    /** offsets(r, g): z term (all zeros when !hasOffset). */
    Matrix<double> offsets;

    std::size_t groupsPerRow() const;
    std::size_t groupOfCol(std::size_t c) const { return c / groupSize; }

    /** Sign of plane i at (r, c): +1 or -1. */
    int8_t sign(int plane, std::size_t r, std::size_t c) const;

    /** Dequantized value at (r, c). */
    double dequant(std::size_t r, std::size_t c) const;

    /** Full dequantized matrix. */
    MatrixD dequantAll() const;

    /** Weight memory footprint in bits (planes + scales + offsets). */
    std::size_t storageBits(int scale_bits = 16) const;
};

/** Configuration for BCQ quantization. */
struct BcqConfig
{
    int bits = 3;
    /** 0 means one group per full row. */
    std::size_t groupSize = 0;
    /** Fit an offset term z per (row, group). */
    bool useOffset = false;
    /** Alternating-optimization refinement rounds (0 = greedy only). */
    int iterations = 12;
};

/**
 * Quantize a weight matrix to BCQ.
 *
 * Greedy residual initialization followed by alternating optimization:
 * closed-form least squares for (alpha, z) given the binary codes, then
 * exhaustive per-element code re-selection given (alpha, z). Monotone
 * non-increasing reconstruction error per round.
 */
BcqTensor quantizeBcq(const MatrixD &weights, const BcqConfig &config);

/** Mean squared reconstruction error of a BCQ tensor vs the original. */
double bcqMse(const MatrixD &weights, const BcqTensor &tensor);

} // namespace figlut

#endif // FIGLUT_QUANT_BCQ_H
