/**
 * @file
 * Round-to-nearest (RTN) uniform weight quantization.
 *
 * This is the uniform-quantization substrate the paper's accuracy
 * experiments build on (Table IV quantizes OPT weights with RTN at
 * 4 bits). Quantization is asymmetric (scale + integer zero point) and
 * can be applied per row or per contiguous group of columns within a
 * row, matching common weight-only quantization practice.
 */

#ifndef FIGLUT_QUANT_RTN_H
#define FIGLUT_QUANT_RTN_H

#include <cstdint>
#include <vector>

#include "common/matrix.h"

namespace figlut {

/** A uniformly quantized weight matrix (codes + per-group scale/zero). */
struct RtnTensor
{
    std::size_t rows = 0;       ///< output features (M)
    std::size_t cols = 0;       ///< input features (N)
    int bits = 0;               ///< code width q
    std::size_t groupSize = 0;  ///< columns per quantization group

    /** Unsigned codes in [0, 2^bits). */
    Matrix<uint8_t> codes;
    /** Scale per (row, group). */
    Matrix<double> scales;
    /** Integer zero point per (row, group). */
    Matrix<int32_t> zeroPoints;

    std::size_t groupsPerRow() const;
    std::size_t groupOfCol(std::size_t c) const { return c / groupSize; }

    /** Dequantized value at (r, c): scale * (code - zeroPoint). */
    double dequant(std::size_t r, std::size_t c) const;

    /** Full dequantized matrix. */
    MatrixD dequantAll() const;
};

/** Configuration for RTN quantization. */
struct RtnConfig
{
    int bits = 4;
    /** 0 means one group per full row. */
    std::size_t groupSize = 0;
    /** Symmetric mode forces zeroPoint = (2^bits - 1) / 2. */
    bool symmetric = false;
};

/**
 * Quantize a weight matrix with round-to-nearest uniform quantization.
 *
 * Scales are chosen per group from the min/max range (asymmetric) or
 * the absolute maximum (symmetric). Degenerate all-equal groups get a
 * scale that reproduces the constant exactly.
 */
RtnTensor quantizeRtn(const MatrixD &weights, const RtnConfig &config);

/** Mean squared reconstruction error of an RTN tensor vs the original. */
double rtnMse(const MatrixD &weights, const RtnTensor &tensor);

} // namespace figlut

#endif // FIGLUT_QUANT_RTN_H
