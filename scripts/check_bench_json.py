#!/usr/bin/env python3
"""Validate BENCH_*.json perf records produced by bench binaries.

Usage: check_bench_json.py FILE [FILE...]

Every file must be a non-empty JSON array of records. Each record
needs a non-empty string "name" and at least one finite, positive
rate/latency field ("ns_per_iter", "tokens_per_s", or — for the
STREAM calibration records — "mem_bw_bytes_per_s"). Records from
the serving_load harness (name starts with "serving_load/")
additionally carry the full latency/SLO metric set and the config
echoes that make a perf trajectory interpretable (including the
numeric "gemm_backend" and "simd_isa" codes). STREAM records (name
starts with "stream/") must carry a finite positive
"mem_bw_bytes_per_s"; any record's optional "mem_bw_bytes_per_s" /
"roofline_frac" pair must be positive-finite and consistent.

Exits nonzero with a per-file message on the first malformed file, so
CI's bench/load smoke steps fail loudly instead of uploading garbage
artifacts. No third-party dependencies: stdlib json only.
"""

import json
import math
import sys

SERVING_LOAD_KEYS = (
    "requests",
    "seed",
    "rate_per_s",
    "max_batch",
    "max_queue",
    "slo_ttft_ms",
    "slo_itl_ms",
    "ttft_ms_p50",
    "ttft_ms_p95",
    "ttft_ms_p99",
    "itl_ms_p50",
    "itl_ms_p95",
    "itl_ms_p99",
    "shed_rate",
    "evict_rate",
    "deadline_miss_rate",
    "kv_budget_mb",
    "kv_block_tokens",
    "prefill_chunk_tokens",
    "fault_every",
    "deadline_ms",
    "prefill_tokens",
    "decode_tokens",
    "queue_ms_p50",
    "queue_depth_mean",
    "queue_depth_max",
    "goodput_tok_per_s",
    "ms_per_step_mean",
    "sim_prefill_tokens",
    "sim_decode_tokens",
    "sim_queue_ms_p50",
    "sim_ttft_ms_p50",
    "sim_itl_ms_p50",
    "sim_shed_rate",
    "sim_evict_rate",
    "sim_deadline_miss_rate",
    "sim_tokens_per_s",
    "sim_goodput_tok_per_s",
    "sim_ms_per_step_mean",
    "gemm_backend",
    "simd_isa",
    "shards",
    "numa_nodes",
)


def is_finite_number(value):
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def check_record(index, record):
    """Return a list of problems with one record (empty = OK)."""
    problems = []
    if not isinstance(record, dict):
        return ["record %d is not an object" % index]
    name = record.get("name")
    if not isinstance(name, str) or not name:
        problems.append("record %d has no non-empty name" % index)
        name = "<record %d>" % index

    ns = record.get("ns_per_iter")
    tok = record.get("tokens_per_s")
    bw = record.get("mem_bw_bytes_per_s")
    has_rate = (
        (is_finite_number(ns) and ns > 0)
        or (is_finite_number(tok) and tok > 0)
        or (is_finite_number(bw) and bw > 0)
    )
    if not has_rate:
        problems.append(
            "%s: needs a finite positive ns_per_iter, tokens_per_s,"
            " or mem_bw_bytes_per_s" % name
        )

    for key, value in record.items():
        if key == "name":
            continue
        if not is_finite_number(value):
            problems.append(
                "%s: field %r is not a finite number: %r"
                % (name, key, value)
            )

    if name.startswith("serving_load/"):
        for key in SERVING_LOAD_KEYS:
            if not is_finite_number(record.get(key)):
                problems.append(
                    "%s: missing serving_load metric %r" % (name, key)
                )
        # Shard-sweep consistency: the resolved worker-group count is
        # echoed in the record AND (for counts > 1) in the record name
        # ("...-s<N>"); a mismatch means the harness labeled a sweep
        # point with the wrong configuration. Unsuffixed records must
        # be the unsharded baseline.
        shards = record.get("shards")
        if is_finite_number(shards) and shards < 1:
            problems.append(
                "%s: shards must be >= 1, got %r" % (name, shards)
            )
        nodes = record.get("numa_nodes")
        if is_finite_number(nodes) and nodes < 1:
            problems.append(
                "%s: numa_nodes must be >= 1, got %r" % (name, nodes)
            )
        tail = name.rsplit("-s", 1)
        suffix = (
            int(tail[1])
            if len(tail) == 2 and tail[1].isdigit()
            else None
        )
        if is_finite_number(shards):
            if suffix is not None and shards != suffix:
                problems.append(
                    "%s: name suffix -s%d disagrees with shards %r"
                    % (name, suffix, shards)
                )
            if suffix is None and shards != 1:
                problems.append(
                    "%s: sharded record (shards=%r) missing the -s<N>"
                    " name suffix" % (name, shards)
                )

    if name.startswith("serving_load/longdoc-"):
        # Long-document prefill sanity: every request computes a long
        # prompt before its first token, so median TTFT must strictly
        # exceed both the pre-compute queue wait and the per-token
        # decode latency — in the measured run and the simulated
        # replay alike. Flat TTFT here means prefill went synthetic
        # (free) again.
        for prefix in ("", "sim_"):
            ttft = record.get(prefix + "ttft_ms_p50")
            itl = record.get(prefix + "itl_ms_p50")
            queue = record.get(prefix + "queue_ms_p50")
            prefill = record.get(prefix + "prefill_tokens")
            if not (is_finite_number(prefill) and prefill > 0):
                problems.append(
                    "%s: longdoc record prefilled no tokens (%s)"
                    % (name, prefix + "prefill_tokens")
                )
            if (
                is_finite_number(ttft)
                and is_finite_number(itl)
                and not ttft > itl
            ):
                problems.append(
                    "%s: %sttft_ms_p50 %r not above %sitl_ms_p50 %r"
                    % (name, prefix, ttft, prefix, itl)
                )
            if (
                is_finite_number(ttft)
                and is_finite_number(queue)
                and not ttft > queue
            ):
                problems.append(
                    "%s: %sttft_ms_p50 %r not above %squeue_ms_p50 %r"
                    % (name, prefix, ttft, prefix, queue)
                )

    if name.startswith("stream/") and not (
        is_finite_number(bw) and bw > 0
    ):
        problems.append(
            "%s: stream record needs a finite positive"
            " mem_bw_bytes_per_s" % name
        )

    # The roofline pair travels together: a fraction without a
    # measured ceiling (or vice versa on records that report LUT read
    # rates) is a harness bug, and both must be positive. The fraction
    # must also agree with lut_reads_per_s * 12 bytes / ceiling when
    # the read rate is present.
    frac = record.get("roofline_frac")
    if frac is not None or (bw is not None and not name.startswith("stream/")):
        if not (is_finite_number(bw) and bw > 0):
            problems.append(
                "%s: roofline_frac needs a positive"
                " mem_bw_bytes_per_s" % name
            )
        if not (is_finite_number(frac) and frac > 0):
            problems.append(
                "%s: mem_bw_bytes_per_s needs a positive"
                " roofline_frac" % name
            )
        reads = record.get("lut_reads_per_s")
        if (
            is_finite_number(frac)
            and is_finite_number(bw)
            and bw > 0
            and is_finite_number(reads)
            and reads > 0
        ):
            # 1e-4 relative: every operand was independently rounded
            # to the writer's 6 significant digits.
            expected = reads * 12.0 / bw
            if abs(frac - expected) > 1e-4 * max(1.0, abs(expected)):
                problems.append(
                    "%s: roofline_frac %r inconsistent with"
                    " lut_reads_per_s * 12 / mem_bw_bytes_per_s (%r)"
                    % (name, frac, expected)
                )
    return problems


def check_file(path):
    """Return a list of problems with one file (empty = OK)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as err:
        return ["cannot read: %s" % err]
    except json.JSONDecodeError as err:
        return ["malformed JSON: %s" % err]
    if not isinstance(data, list):
        return ["top level is not a JSON array"]
    if not data:
        return ["record array is empty"]

    problems = []
    names = set()
    for index, record in enumerate(data):
        problems.extend(check_record(index, record))
        if isinstance(record, dict):
            name = record.get("name")
            if isinstance(name, str):
                if name in names:
                    problems.append("duplicate record name %r" % name)
                names.add(name)
    return problems


def main(argv):
    if len(argv) < 2:
        print(
            "usage: check_bench_json.py FILE [FILE...]",
            file=sys.stderr,
        )
        return 2
    failed = False
    for path in argv[1:]:
        problems = check_file(path)
        if problems:
            failed = True
            for problem in problems:
                print("%s: %s" % (path, problem), file=sys.stderr)
        else:
            with open(path, "r", encoding="utf-8") as handle:
                count = len(json.load(handle))
            print("%s: OK (%d records)" % (path, count))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
