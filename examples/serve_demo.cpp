/**
 * @file
 * Request-level serving demo: a serve::Engine admitting, batching, and
 * retiring independent requests over one shared quantized model —
 * continuous batching with ragged token budgets, recoverable
 * (Status-based) rejection of over-capacity traffic, and per-request
 * stats (including why each request ended) at retirement.
 *
 * The second half re-runs the traffic against a KV-budget-governed
 * engine: a paged KV arena too small for the whole batch, so the
 * degradation policy load-sheds the newest requests mid-flight and
 * every non-completed request retires with a definite terminal
 * status instead of an abort.
 *
 * Build & run:  ./build/examples/serve_demo [requests] [maxBatch]
 * Defaults: 6 requests into a 3-slot batch, so traffic queues, joins
 * mid-flight as budgets retire, and one submit is load-shed.
 */

#include <cstdlib>
#include <iostream>

#include "figlut/figlut.h"

using namespace figlut;

int
main(int argc, char **argv)
{
    const std::size_t requests =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 6;
    const std::size_t maxBatch =
        argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 3;

    std::cout << "FIGLUT serve demo\n=================\n\n";

    // 1. One shared model: quantize + pack once, serve everyone.
    OptConfig tiny;
    tiny.name = "OPT-tiny";
    tiny.hidden = 128;
    tiny.layers = 2;
    tiny.heads = 4;
    tiny.ffn = 512;

    serve::EngineOptions opts;
    opts.model.weightBits = 3;
    opts.model.bcqIterations = 1;
    opts.maxBatch = maxBatch;
    // Queue sized one short of the traffic, so the last submit is
    // load-shed with a ResourceExhausted status (not a crash).
    opts.maxQueue =
        requests > maxBatch + 1 ? requests - maxBatch - 1 : 0;

    auto created = serve::Engine::create(tiny, opts);
    if (!created.ok()) {
        std::cerr << "engine rejected: " << created.status().toString()
                  << "\n";
        return 1;
    }
    serve::Engine &engine = *created.value();
    std::cout << "engine over " << tiny.name << ": "
              << engine.model().storageBytes() / 1024
              << " KiB quantized weights + "
              << engine.model().packedKeyBytes() / 1024
              << " KiB packed keys, shared by every request; maxBatch "
              << opts.maxBatch << "\n\n";

    // 2. Submit independent requests with ragged token budgets. The
    //    first maxBatch go live immediately, the rest queue.
    std::vector<serve::RequestId> ids;
    for (std::size_t i = 0; i < requests; ++i) {
        serve::RequestOptions req;
        req.maxTokens = 2 + i % 4; // ragged budgets: 2..5 tokens
        req.seed = 42 + i;
        auto id = engine.submit(req);
        if (!id.ok()) {
            std::cout << "request " << i
                      << " rejected: " << id.status().toString() << "\n";
            continue;
        }
        ids.push_back(id.value());
    }
    std::cout << ids.size() << " requests submitted: "
              << engine.liveRequests() << " live, "
              << engine.queuedRequests() << " queued\n";

    // A misconfigured client is rejected with a Status, not a crash.
    {
        serve::EngineOptions bad = opts;
        bad.exec.threads = kMaxLutGemmThreads + 1;
        const auto r = serve::Engine::create(tiny, bad);
        std::cout << "bad client config -> " << r.status().toString()
                  << "\n\n";
    }

    // 3. The serving loop: one fused decode step per turn. Every live
    //    request's hidden column rides the same per-layer GEMM call.
    std::size_t step = 0;
    while (engine.liveRequests() > 0 || engine.queuedRequests() > 0) {
        const auto tasks = engine.workloadTasks();
        auto stats = engine.step();
        if (!stats.ok()) {
            std::cerr << "step failed: " << stats.status().toString()
                      << "\n";
            return 1;
        }
        ++step;
        std::cout << "step " << step << ": " << stats.value().liveRequests
                  << " live (" << stats.value().admitted << " admitted, "
                  << stats.value().retired << " retired), "
                  << stats.value().gemmCalls << " fused GEMMs over "
                  << tasks.size() << " scored kernels, "
                  << stats.value().counters.lutReads << " LUT reads\n";
    }

    // 4. Retirement report: every request kept its own KV history and
    //    an exact share of the fused kernel counters. Wait and decode
    //    are separate clocks — "wait (ms)" is submit until the first
    //    decoding step began (queue + admitted-but-idle time), "ttft
    //    (ms)" is submit until the first token landed, and "decode
    //    (ms)" is only the request's share of fused GEMM steps.
    TextTable table({"request", "state", "why", "tokens", "kv len",
                     "queued steps", "LUT reads", "wait (ms)",
                     "ttft (ms)", "decode (ms)"});
    for (const auto id : ids) {
        const auto snap = engine.poll(id);
        if (!snap.ok())
            continue;
        const auto &s = snap.value();
        table.addRow({std::to_string(s.id),
                      serve::requestStateName(s.state),
                      s.terminal.ok()
                          ? "completed"
                          : statusCodeName(s.terminal.code()),
                      std::to_string(s.stats.tokensDecoded),
                      std::to_string(s.kvLength),
                      std::to_string(s.stats.queuedSteps),
                      std::to_string(s.stats.counters.lutReads),
                      TextTable::num(s.stats.queueSeconds * 1e3, 2),
                      TextTable::num(s.stats.ttftSeconds * 1e3, 2),
                      TextTable::num(s.stats.decodeSeconds * 1e3, 2)});
    }
    std::cout << "\n" << table.render();
    std::cout << "\n" << step << " fused steps served "
              << ids.size() << " requests; a lock-step Session would "
                 "have run every sequence to the longest budget.\n";

    // 5. Memory-governed admission: the same traffic against an arena
    //    whose byte budget holds roughly one request's KV, so the
    //    budget — not a crash — decides who decodes. Every dropped
    //    request carries a definite terminal status.
    const std::size_t blockTokens = 4;
    const std::size_t blockBytes =
        blockTokens * 2 * tiny.hidden * sizeof(double);
    serve::EngineOptions tight = opts;
    tight.kvBlockTokens = blockTokens;
    // Two blocks per layer: enough for one ~8-token context per
    // layer, far short of the whole batch.
    tight.kvBudgetBytes = 2 * tiny.layers * blockBytes;
    tight.policy = serve::DegradationPolicy::ShedNewest;

    auto governed = serve::Engine::create(tiny, tight);
    if (!governed.ok()) {
        std::cerr << "governed engine rejected: "
                  << governed.status().toString() << "\n";
        return 1;
    }
    serve::Engine &small = *governed.value();
    std::cout << "\nKV-governed engine: budget "
              << tight.kvBudgetBytes / 1024 << " KiB ("
              << small.arena().budgetBlocks() << " blocks of "
              << blockTokens << " tokens), policy "
              << serve::degradationPolicyName(tight.policy) << "\n";

    std::vector<serve::RequestId> governedIds;
    for (std::size_t i = 0; i < requests; ++i) {
        serve::RequestOptions req;
        req.maxTokens = 2 + i % 4;
        req.promptTokens = 4;
        req.seed = 42 + i;
        const auto id = small.submit(req);
        if (id.ok())
            governedIds.push_back(id.value());
        else
            std::cout << "request " << i << " rejected at submit: "
                      << id.status().toString() << "\n";
    }
    while (small.liveRequests() > 0 || small.queuedRequests() > 0) {
        const auto stats = small.step();
        if (!stats.ok()) {
            std::cerr << "governed step failed: "
                      << stats.status().toString() << "\n";
            return 1;
        }
        for (const auto id : stats.value().shedIds)
            std::cout << "  step shed request " << id
                      << " (KV budget exhausted)\n";
    }
    TextTable outcomeTable({"request", "state", "why", "tokens"});
    for (const auto id : governedIds) {
        const auto snap = small.poll(id);
        if (!snap.ok())
            continue;
        const auto &s = snap.value();
        outcomeTable.addRow(
            {std::to_string(s.id), serve::requestStateName(s.state),
             s.terminal.ok() ? "completed"
                             : statusCodeName(s.terminal.code()),
             std::to_string(s.stats.tokensDecoded)});
    }
    std::cout << "\n" << outcomeTable.render();
    std::cout << "\npeak arena usage "
              << small.arena().peakBytes() / 1024 << " KiB of "
              << tight.kvBudgetBytes / 1024
              << " KiB budget; survivors decoded to their budgets, "
                 "everyone else ended with an explicit status.\n";
    return 0;
}
