/**
 * @file
 * OPT decode-step inference through the runtime Session: quantize +
 * pack a (layer-truncated) OPT variant once, run real numeric decode
 * steps with reused execution resources, then score the identical
 * layer graph on every modeled engine — the scenario behind the
 * paper's Table V, with the numeric and analytic views guaranteed to
 * describe the same workload.
 *
 * Usage: opt_inference [model] [batch] [weight_bits] [layers] [steps]
 *   e.g. ./build/examples/opt_inference OPT-125M 4 4 2 3
 * layers = 0 materializes the full model (minutes of one-time
 * quantization for the larger variants).
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "figlut/figlut.h"

using namespace figlut;

int
main(int argc, char **argv)
{
    const std::string model_name = argc > 1 ? argv[1] : "OPT-125M";
    const std::size_t batch =
        argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;
    const int bits = argc > 3 ? std::atoi(argv[3]) : 4;
    const std::size_t layers =
        argc > 4 ? static_cast<std::size_t>(std::atoi(argv[4])) : 2;
    const int steps = argc > 5 ? std::atoi(argv[5]) : 3;

    const auto &model = optByName(model_name);
    SessionOptions opts;
    opts.batch = batch;
    opts.contextLen = 512;
    opts.quant.weightBits = bits;
    opts.quant.bcqIterations = 1;
    opts.quant.maxLayers = layers;

    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    Session session(model, opts);
    const auto t1 = Clock::now();
    const auto &cfg = session.model().config();

    std::cout << "Session: " << cfg.name << ", " << cfg.layers << "/"
              << model.layers << " layers, batch " << batch << ", Q"
              << bits << " weights\n"
              << "one-time quantize+pack: "
              << TextTable::num(
                     std::chrono::duration<double>(t1 - t0).count(), 2)
              << " s, " << session.model().storageBytes() / 1024
              << " KiB weights + "
              << session.model().packedKeyBytes() / 1024
              << " KiB packed keys\n\n";

    // Numeric decode steps: packed LUT-GEMM kernels on the session's
    // persistent ExecutionContext, KV cache growing per step.
    Rng rng(Rng::kDefaultSeed);
    MatrixD hidden = session.makeInput(rng);
    LutGemmCounters total;
    const auto t2 = Clock::now();
    for (int step = 0; step < steps; ++step) {
        auto r = session.runDecodeStep(hidden);
        hidden = std::move(r.hidden);
        total = r.counters;
    }
    const auto t3 = Clock::now();
    const double secs = std::max(
        std::chrono::duration<double>(t3 - t2).count(), 1e-9);
    std::cout << steps << " decode steps (host, "
              << session.context().poolThreads() << " workers): "
              << TextTable::num(secs * 1e3 / std::max(steps, 1), 2)
              << " ms/step, "
              << TextTable::num(
                     static_cast<double>(batch) * std::max(steps, 0) /
                         secs,
                     1)
              << " tokens/s, " << total.lutReads
              << " LUT reads in the last step\n\n";

    // The same layer graph on the modeled accelerators (Table V).
    const auto tasks = session.workloadTasks();
    TextTable table({"engine", "latency (ms)", "energy (mJ)",
                     "power (W)", "eff TOPS", "TOPS/W",
                     "GEMM/VPU cycles"});
    for (const auto e : kAllEngines) {
        HwConfig hw;
        hw.engine = e;
        if (bits > 4)
            hw.fixedWeightBits = 8;
        const Accelerator acc(hw);
        const auto r = acc.runWorkload(tasks);
        table.addRow(
            {engineName(e), TextTable::num(r.seconds * 1e3, 2),
             TextTable::num(r.energy.totalJoules() * 1e3, 2),
             TextTable::num(r.powerW, 3),
             TextTable::num(r.effTops, 3),
             TextTable::num(r.topsPerWatt, 2),
             TextTable::num(r.gemmCycles / std::max(1.0, r.vpuCycles),
                            1)});
    }
    std::cout << table.render();
    std::cout << "\n" << tasks.size()
              << " kernels/step; GEMMs dominate (last column), so "
                 "weight-GEMM efficiency sets system efficiency — "
                 "the paper's premise.\n";
    return 0;
}
