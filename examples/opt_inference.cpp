/**
 * @file
 * OPT-6.7B decode-step simulation: runs a full transformer decode
 * step (all 32 layers: GEMMs + attention/layernorm/GELU on the VPU)
 * on every engine and prints latency, energy and efficiency — the
 * scenario behind the paper's Table V.
 *
 * Usage: opt_inference [model] [batch] [weight_bits]
 *   e.g. ./build/examples/opt_inference OPT-6.7B 32 4
 */

#include <cstdlib>
#include <iostream>

#include "figlut/figlut.h"

using namespace figlut;

int
main(int argc, char **argv)
{
    const std::string model_name = argc > 1 ? argv[1] : "OPT-6.7B";
    const std::size_t batch =
        argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 32;
    const int bits = argc > 3 ? std::atoi(argv[3]) : 4;

    const auto &model = optByName(model_name);
    std::cout << "Decode step: " << model.name << ", batch " << batch
              << ", Q" << bits << " weights, " << model.layers
              << " layers\n"
              << "GEMM params: "
              << TextTable::num(model.gemmParams() / 1e9, 2) << "B ("
              << TextTable::num(
                     model.gemmParams() * bits / 8.0 / 1e9, 2)
              << " GB quantized)\n\n";

    WorkloadOptions opts;
    opts.batch = batch;
    opts.weightBits = bits;
    opts.contextLen = 512;
    const auto tasks = decodeStepWorkload(model, opts);

    TextTable table({"engine", "latency (ms)", "energy (mJ)",
                     "power (W)", "eff TOPS", "TOPS/W",
                     "GEMM/VPU cycles"});
    for (const auto e : kAllEngines) {
        HwConfig hw;
        hw.engine = e;
        if (bits > 4)
            hw.fixedWeightBits = 8;
        Accelerator acc(hw);
        const auto r = acc.runWorkload(tasks);
        table.addRow(
            {engineName(e), TextTable::num(r.seconds * 1e3, 2),
             TextTable::num(r.energy.totalJoules() * 1e3, 2),
             TextTable::num(r.powerW, 3),
             TextTable::num(r.effTops, 3),
             TextTable::num(r.topsPerWatt, 2),
             TextTable::num(r.gemmCycles / std::max(1.0, r.vpuCycles),
                            1)});
    }
    std::cout << table.render();
    std::cout << "\nGEMMs dominate the step (last column), so "
                 "weight-GEMM efficiency sets system efficiency — "
                 "the paper's premise.\n";
    return 0;
}
