/**
 * @file
 * Quickstart: the three-line path from an OPT-style architecture to a
 * real numeric decode step — build a Session (quantize + pack once),
 * feed it hidden states, and score the identical layer graph on the
 * modeled accelerator.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "figlut/figlut.h"

using namespace figlut;

int
main()
{
    std::cout << "FIGLUT quickstart\n=================\n\n";

    // 1. A small OPT-style decoder, quantized to 3-bit BCQ with an
    //    offset term and LUT-key-packed — all one-time work done by
    //    the Session constructor.
    OptConfig tiny;
    tiny.name = "OPT-tiny";
    tiny.hidden = 128;
    tiny.layers = 2;
    tiny.heads = 4;
    tiny.ffn = 512;

    SessionOptions opts;
    opts.batch = 4;
    opts.quant.weightBits = 3;
    opts.quant.useOffset = true;
    Session session(tiny, opts);

    const double fp16Bytes = session.model().config().layers *
                             (4.0 * tiny.hidden * tiny.hidden +
                              2.0 * tiny.hidden * tiny.ffn) *
                             2.0;
    std::cout << "built " << tiny.name << " (" << tiny.layers
              << " layers, hidden " << tiny.hidden << "): "
              << session.model().storageBytes() << " bytes quantized vs "
              << static_cast<std::size_t>(fp16Bytes) << " bytes FP16 ("
              << TextTable::ratio(fp16Bytes /
                                  session.model().storageBytes())
              << " compression)\n\n";

    // 2. Run decode steps for real: GEMMs through the packed LUT
    //    kernel on the session's persistent ExecutionContext, vector
    //    ops as reference kernels, KV cache growing per step.
    Rng rng(Rng::kDefaultSeed);
    MatrixD hidden = session.makeInput(rng);
    for (int step = 0; step < 3; ++step) {
        const auto r = session.runDecodeStep(hidden);
        hidden = r.hidden;
        std::cout << "step " << step << ": " << r.gemmCalls
                  << " weight GEMMs, " << r.counters.lutReads
                  << " LUT reads (each retiring mu="
                  << session.options().quant.mu
                  << " binary MACs), KV length " << session.kvLength()
                  << "\n";
    }

    // 3. What would the step we just executed cost on the modeled
    //    hardware? simulate() scores the same layer graph the session
    //    ran, via the analytic accelerator model.
    HwConfig hw;
    hw.engine = EngineKind::FIGLUT_I;
    const auto sim = session.simulate(hw);
    std::cout << "\nsimulated on " << hw.describe() << ": "
              << TextTable::num(sim.seconds * 1e3, 3) << " ms/step, "
              << TextTable::num(sim.energy.totalJoules() * 1e3, 3)
              << " mJ, " << TextTable::num(sim.topsPerWatt, 2)
              << " TOPS/W\n";
    return 0;
}
