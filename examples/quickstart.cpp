/**
 * @file
 * Quickstart: quantize a weight matrix to BCQ, run the LUT-based
 * FP-INT GEMM, and check the result against a dequantized reference —
 * the minimal end-to-end use of the library.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "figlut/figlut.h"

using namespace figlut;

int
main()
{
    std::cout << "FIGLUT quickstart\n=================\n\n";

    // 1. Some "model" weights and FP16 activations.
    Rng rng(Rng::kDefaultSeed);
    const std::size_t out_features = 64, in_features = 128, batch = 4;
    const MatrixD weights =
        syntheticWeights(out_features, in_features, rng);
    const MatrixD activations =
        syntheticActivations(in_features, batch, rng);

    // 2. Quantize to 3-bit BCQ with an offset term (the format that
    //    also represents uniform quantization exactly).
    BcqConfig qcfg;
    qcfg.bits = 3;
    qcfg.useOffset = true;
    const BcqTensor bcq = quantizeBcq(weights, qcfg);
    std::cout << "quantized " << out_features << "x" << in_features
              << " weights to " << qcfg.bits << "-bit BCQ, "
              << "storage = " << bcq.storageBits() / 8 << " bytes vs "
              << out_features * in_features * 2 << " bytes FP16 ("
              << TextTable::ratio(
                     double(out_features * in_features * 2) /
                     (bcq.storageBits() / 8.0))
              << " compression)\n";

    // 3. Run the LUT-based GEMM exactly as FIGLUT-I executes it:
    //    pre-aligned integer tables, mu=4, hFFLUT + generator tree.
    LutGemmConfig gcfg;
    gcfg.mu = 4;
    gcfg.preAligned = true;
    LutGemmCounters counters;
    const MatrixD y = lutGemm(bcq, activations, gcfg, &counters);

    // 4. Compare with the FP64 oracle on the dequantized weights.
    MatrixD xq(in_features, batch);
    for (std::size_t i = 0; i < xq.size(); ++i)
        xq.at(i) = quantizeToFormat(activations.at(i), ActFormat::FP16);
    const auto err = compareMatrices(y, oracleGemm(bcq.dequantAll(), xq));

    std::cout << "LUT-GEMM result NRMSE vs oracle: "
              << TextTable::num(err.nrmse() * 1e6, 3) << "e-6\n"
              << "LUT reads: " << counters.lutReads
              << " (each retiring mu=" << gcfg.mu << " binary MACs)\n"
              << "generator adds: " << counters.generatorAdds
              << " (vs " << counters.lutReads * (gcfg.mu - 1)
              << " adds without tables)\n\n";

    // 5. What would this cost on the modeled hardware?
    HwConfig hw;
    hw.engine = EngineKind::FIGLUT_I;
    GemmShape shape;
    shape.m = out_features;
    shape.n = in_features;
    shape.batch = batch;
    shape.weightBits = qcfg.bits;
    const auto sim = simulateGemm(hw, shape);
    std::cout << "simulated on " << hw.describe() << ": "
              << sim.timing.totalCycles << " cycles, "
              << TextTable::num(sim.energy.totalJoules() * 1e9, 2)
              << " nJ, " << TextTable::num(sim.topsPerWatt, 2)
              << " TOPS/W\n";
    return 0;
}
