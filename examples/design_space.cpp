/**
 * @file
 * Design-space exploration: sweeps the LUT group size (mu) and the
 * RACs-per-LUT fan-out (k) and prints the PE power surface that led
 * the paper to pick mu = 4, k = 32 (Sections III-C, Figs. 8/9).
 *
 * Usage: ./build/examples/design_space
 */

#include <iostream>

#include "figlut/figlut.h"

using namespace figlut;

int
main()
{
    std::cout << "FIGLUT design-space exploration (relative PE power, "
                 "FP-adder baseline = 1.0)\n\n";

    const auto &tech = TechParams::default28nm();
    const std::vector<int> mus = {2, 3, 4, 5, 6};
    const std::vector<int> ks = {1, 2, 4, 8, 16, 32, 64, 128, 256};

    std::vector<std::string> header = {"k \\ mu"};
    for (const int mu : mus)
        header.push_back("mu=" + std::to_string(mu));
    TextTable table(std::move(header));

    double best = 1e300;
    int best_mu = 0, best_k = 0;
    for (const int k : ks) {
        std::vector<std::string> row = {std::to_string(k)};
        for (const int mu : mus) {
            LutConfig cfg;
            cfg.mu = mu;
            cfg.valueBits = 32;
            cfg.fanout = k;
            const double rel =
                relativeReadPower(LutImpl::HFFLUT, cfg, 24, tech);
            if (rel < best) {
                best = rel;
                best_mu = mu;
                best_k = k;
            }
            row.push_back(TextTable::num(rel, 3));
        }
        table.addRow(row);
    }
    std::cout << table.render();

    std::cout << "\nminimum of the swept surface: mu=" << best_mu
              << ", k=" << best_k << " at "
              << TextTable::num(best, 3) << "x the FP-adder baseline\n"
              << "paper design point: mu=4, k=32 (the per-RAC optimum "
                 "under the fan-out model;\nlarger mu/k keep shaving "
                 "the shared-table term but the paper bounds mu by "
                 "generator and\ntable-rebuild cost, which dominate "
                 "beyond mu=4 — see bench_fig11)\n\n";

    // Show why mu=8 is rejected despite the sharing win: table size
    // and generation cost explode.
    TextTable gen({"mu", "hFFLUT entries", "generator adds/build",
                   "relative table power (k=32)"});
    for (const int mu : {2, 4, 6, 8}) {
        LutConfig cfg;
        cfg.mu = mu;
        cfg.valueBits = 32;
        cfg.fanout = 32;
        const auto s = lutGeneratorAdderCount(mu);
        gen.addRow({std::to_string(mu),
                    std::to_string(lutEntries(mu - 1)),
                    std::to_string(s.treeAdds),
                    TextTable::num(
                        lutPower(LutImpl::HFFLUT, cfg, tech).total() /
                            lutPower(LutImpl::HFFLUT,
                                     LutConfig{4, 32, 32}, tech)
                                .total(),
                        2)});
    }
    std::cout << gen.render();
    return 0;
}
