/**
 * @file
 * Mixed-precision pipeline: per-layer sensitivity analysis drives a
 * fractional average bit width (ShiftAddLLM-style "Q2.4"), which the
 * bit-serial FIGLUT hardware executes directly — the scenario behind
 * the paper's Fig. 17.
 *
 * Usage: ./build/examples/mixed_precision [target_avg_bits]
 */

#include <cstdlib>
#include <iostream>

#include "figlut/figlut.h"

using namespace figlut;

int
main(int argc, char **argv)
{
    const double target = argc > 1 ? std::atof(argv[1]) : 2.4;
    const auto &model = optByName("OPT-6.7B");
    std::cout << "Mixed-precision allocation for " << model.name
              << ", target average " << target << " bits\n\n";

    // 1. Estimate per-layer sensitivity: quantization error reduction
    //    per extra bit, measured with the real BCQ quantizer on
    //    synthetic per-layer weights (layer scale varies).
    Rng rng(Rng::kDefaultSeed);
    const auto shapes = layerGemms(model, 32, 2);
    const char *names[] = {"qkv", "attn_out", "fc1", "fc2"};

    std::vector<LayerBudgetItem> items;
    for (std::size_t i = 0; i < shapes.size(); ++i) {
        const auto w = syntheticWeights(64, 512, rng, 0.02,
                                        0.3 + 0.2 * double(i));
        BcqConfig b2;
        b2.bits = 2;
        b2.useOffset = true;
        BcqConfig b3 = b2;
        b3.bits = 3;
        const double gain = bcqMse(w, quantizeBcq(w, b2)) -
                            bcqMse(w, quantizeBcq(w, b3));
        items.push_back({names[i], shapes[i].m * shapes[i].n,
                         gain * double(shapes[i].m * shapes[i].n)});
    }

    // 2. Allocate bits to the target average.
    MixedPrecisionConfig mcfg;
    mcfg.targetAvgBits = target;
    mcfg.minBits = 2;
    mcfg.maxBits = 4;
    const auto plan = allocateBits(items, mcfg);

    TextTable table({"layer", "params", "sensitivity", "bits"});
    for (std::size_t i = 0; i < items.size(); ++i)
        table.addRow({items[i].name,
                      std::to_string(items[i].paramCount),
                      TextTable::num(items[i].sensitivity, 1),
                      std::to_string(plan.bitsPerLayer[i])});
    std::cout << table.render();
    std::cout << "achieved average: "
              << TextTable::num(plan.avgBits, 3) << " bits\n\n";

    // 3. Execute the plan on FIGLUT (bit-serial: fractional average
    //    bits -> proportional cycles/energy) and compare with uniform
    //    Q3 on FIGNA, the paper's headline comparison.
    HwConfig figlut;
    figlut.engine = EngineKind::FIGLUT_I;
    HwConfig figna;
    figna.engine = EngineKind::FIGNA;

    double fig_ops = 0.0, fig_j = 0.0, figna_ops = 0.0, figna_j = 0.0;
    for (std::size_t i = 0; i < shapes.size(); ++i) {
        GemmShape s = shapes[i];
        s.weightBits = plan.bitsPerLayer[i];
        const auto r = simulateGemm(figlut, s);
        fig_ops += s.ops() * double(model.layers);
        fig_j += r.energy.totalJoules() * double(model.layers);

        GemmShape s3 = shapes[i];
        s3.weightBits = 3;
        const auto rn = simulateGemm(figna, s3);
        figna_ops += s3.ops() * double(model.layers);
        figna_j += rn.energy.totalJoules() * double(model.layers);
    }
    const double fig_tw = fig_ops / fig_j / 1e12;
    const double figna_tw = figna_ops / figna_j / 1e12;
    std::cout << "FIGLUT-Q" << target << ": "
              << TextTable::num(fig_tw, 2) << " TOPS/W\n"
              << "FIGNA-Q3:   " << TextTable::num(figna_tw, 2)
              << " TOPS/W\n"
              << "advantage:  " << TextTable::ratio(fig_tw / figna_tw)
              << "  (paper: 1.98x at Q2.4, with 20% smaller weights)\n";
    return 0;
}
