/**
 * @file
 * Standalone STREAM bandwidth calibration driver (see stream_util.h).
 * Prints the copy/scale/add/triad rates and the best-of ceiling, and
 * with --json writes BENCH_stream-style records ("stream/copy", ...)
 * whose mem_bw_bytes_per_s fields scripts/check_bench_json.py
 * validates — CI runs `bench_stream --smoke --json BENCH_stream.json`
 * and uploads the artifact next to BENCH_kernels.json so roofline
 * fractions in the perf trajectory stay anchored to a measured
 * ceiling, not a datasheet number.
 *
 * Flags:
 *   --elements N   doubles per array (default 1 << 24 = 128 MiB each)
 *   --reps R       repetitions per kernel, best-of (default 5)
 *   --smoke        CI sizing: 1 << 21 elements, 3 reps
 *   --json PATH    machine-readable records
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "stream_util.h"

int
main(int argc, char **argv)
{
    std::size_t elements = std::size_t{1} << 24;
    int reps = 5;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--elements") == 0 && i + 1 < argc) {
            elements = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            elements = std::size_t{1} << 21;
            reps = 3;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--elements N] [--reps R] [--smoke] "
                         "[--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    if (elements == 0 || reps <= 0) {
        std::fprintf(stderr, "elements and reps must be positive\n");
        return 2;
    }

    figlut::bench::banner("STREAM",
                          "memory-bandwidth roofline calibration");
    std::printf("arrays: 3 x %zu doubles (%.1f MiB each), best of %d\n",
                elements,
                static_cast<double>(elements) * 8.0 / (1024.0 * 1024.0),
                reps);

    const auto bw = figlut::bench::measureStreamBandwidth(elements, reps);
    const auto gb = [](double v) { return v / 1e9; };
    std::printf("copy : %8.2f GB/s\n", gb(bw.copy));
    std::printf("scale: %8.2f GB/s\n", gb(bw.scale));
    std::printf("add  : %8.2f GB/s\n", gb(bw.add));
    std::printf("triad: %8.2f GB/s\n", gb(bw.triad));
    std::printf("best : %8.2f GB/s (roofline ceiling)\n", gb(bw.best()));
    if (bw.best() <= 0.0) {
        std::fprintf(stderr, "no kernel produced a positive rate\n");
        return 1;
    }

    // Cross-pool combine seam (b_eff style): the latency + bandwidth
    // pair sim::InterconnectConfig prices sharded GEMM combines with
    // (see BUILDING.md "Comm-model calibration").
    const auto xpool =
        figlut::bench::measureInterconnect(elements, reps);
    std::printf("xpool: %8.2f GB/s, handoff %.2f us (%d NUMA node%s)\n",
                gb(xpool.bandwidthBytesPerS), xpool.latencyS * 1e6,
                xpool.numaNodes, xpool.numaNodes == 1 ? "" : "s");
    if (xpool.bandwidthBytesPerS <= 0.0) {
        std::fprintf(stderr, "cross-pool copy produced no rate\n");
        return 1;
    }

    if (!json_path.empty()) {
        std::vector<figlut::bench::JsonBenchRecord> records;
        const std::pair<const char *, double> rows[] = {
            {"stream/copy", bw.copy},
            {"stream/scale", bw.scale},
            {"stream/add", bw.add},
            {"stream/triad", bw.triad},
            {"stream/best", bw.best()},
        };
        for (const auto &[name, rate] : rows) {
            figlut::bench::JsonBenchRecord rec;
            rec.name = name;
            rec.extra.emplace_back("mem_bw_bytes_per_s", rate);
            records.push_back(std::move(rec));
        }
        figlut::bench::JsonBenchRecord rec;
        rec.name = "stream/xpool";
        rec.extra.emplace_back("mem_bw_bytes_per_s",
                               xpool.bandwidthBytesPerS);
        rec.extra.emplace_back("xpool_latency_s", xpool.latencyS);
        rec.extra.emplace_back("numa_nodes",
                               static_cast<double>(xpool.numaNodes));
        records.push_back(std::move(rec));
        figlut::bench::writeBenchJson(json_path, records);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
