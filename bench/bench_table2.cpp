/**
 * @file
 * Table II reproduction: the mu=3 look-up table — binary patterns,
 * keys, and the precomputed value expressions/results.
 */

#include <iostream>

#include "bench_util.h"
#include "figlut/figlut.h"

using namespace figlut;

int
main()
{
    bench::banner("Table II", "Example look-up table for mu = 3");

    const std::vector<double> xs = {1.0, 10.0, 100.0};
    std::cout << "activations: x1=" << xs[0] << " x2=" << xs[1]
              << " x3=" << xs[2] << "\n\n";

    const auto lut = LutD::buildDirect(xs, FpArith::Exact);
    const auto half = HalfLutD::buildDirect(xs, FpArith::Exact);

    TextTable table({"Binary Pattern", "Key", "Expression", "Value",
                     "hFFLUT decode"});
    auto csv = bench::openCsv("table2.csv",
                              {"key", "pattern", "value", "hfflut"});

    for (uint32_t key = 0; key < lut.entries(); ++key) {
        std::string pattern = "{";
        std::string expr;
        for (int j = 0; j < 3; ++j) {
            const int s = keySign(key, j, 3);
            pattern += (s > 0 ? "+1" : "-1");
            pattern += j < 2 ? "," : "}";
            expr += (s > 0 ? "+x" : "-x") + std::to_string(j + 1);
        }
        table.addRow({pattern, std::to_string(key), expr,
                      TextTable::num(lut.value(key), 0),
                      TextTable::num(half.value(key), 0)});
        csv->addRow({std::to_string(key), pattern,
                     TextTable::num(lut.value(key), 0),
                     TextTable::num(half.value(key), 0)});
    }
    std::cout << table.render();

    std::cout << "\nhFFLUT stores only " << half.storedEntries()
              << " of " << lut.entries()
              << " entries; the decoder reproduces the rest by sign "
                 "symmetry (all rows above match).\n";
    return 0;
}
