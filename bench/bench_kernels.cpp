/**
 * @file
 * Host-side microbenchmarks (google-benchmark): functional kernel
 * costs of the library itself — LUT construction (direct vs tree
 * generator), hFFLUT decode, LUT-GEMM vs the dequantize+FP reference,
 * and the quantizers. These measure the *simulator's* software speed,
 * not modeled hardware.
 *
 * Besides the stock google-benchmark CLI, `--json <path>` writes a
 * machine-readable {name, ns_per_iter, lut_reads_per_s} array for
 * perf-trajectory recording (see bench_util.h); CI's Release bench
 * smoke step relies on it.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "figlut/figlut.h"
#include "stream_util.h"

using namespace figlut;

namespace {

BcqTensor
benchTensor(std::size_t m, std::size_t n, int bits)
{
    Rng rng(Rng::kDefaultSeed);
    const auto w = syntheticWeights(m, n, rng);
    BcqConfig cfg;
    cfg.bits = bits;
    cfg.useOffset = true;
    cfg.iterations = 2;
    return quantizeBcq(w, cfg);
}

/**
 * Attach the RAC read-rate counter: reads per lutGemm call times the
 * iteration count, reported as a rate ("lut_reads_per_s" in console
 * output and in the --json records). The per-call read count is the
 * kernel's own closed-form accounting.
 */
void
setLutReadRate(benchmark::State &state, const LutGemmCounters &perCall)
{
    state.counters["lut_reads_per_s"] = benchmark::Counter(
        static_cast<double>(perCall.lutReads) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

void
BM_LutBuildDirect(benchmark::State &state)
{
    const int mu = static_cast<int>(state.range(0));
    Rng rng(1);
    const auto xs = rng.normalVector(static_cast<std::size_t>(mu));
    for (auto _ : state) {
        auto lut = LutD::buildDirect(xs, FpArith::Fp32);
        benchmark::DoNotOptimize(lut.raw().data());
    }
    state.SetItemsProcessed(state.iterations() << mu);
}
BENCHMARK(BM_LutBuildDirect)->Arg(2)->Arg(4)->Arg(8);

void
BM_LutBuildGenerator(benchmark::State &state)
{
    const int mu = static_cast<int>(state.range(0));
    Rng rng(2);
    const auto xs = rng.normalVector(static_cast<std::size_t>(mu));
    const LutGenerator gen(mu, FpArith::Fp32);
    for (auto _ : state) {
        auto half = gen.generateHalf(xs);
        benchmark::DoNotOptimize(half.stored(0));
    }
    state.SetItemsProcessed(state.iterations() << (mu - 1));
}
BENCHMARK(BM_LutBuildGenerator)->Arg(2)->Arg(4)->Arg(8);

void
BM_HalfLutDecode(benchmark::State &state)
{
    Rng rng(3);
    const auto xs = rng.normalVector(4);
    const auto half = HalfLutD::buildDirect(xs, FpArith::Fp32);
    uint32_t key = 0;
    double acc = 0.0;
    for (auto _ : state) {
        acc += half.value(key);
        key = (key + 7) & 15u;
    }
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HalfLutDecode);

void
BM_LutGemm(benchmark::State &state)
{
    const auto bits = static_cast<int>(state.range(0));
    const auto tensor = benchTensor(128, 256, bits);
    Rng rng(4);
    const auto x = syntheticActivations(256, 4, rng);
    LutGemmConfig cfg;
    cfg.preAligned = true;
    LutGemmCounters perCall;
    (void)lutGemm(tensor, x, cfg, &perCall);
    for (auto _ : state) {
        auto y = lutGemm(tensor, x, cfg);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * 128 * 256 * 4 * bits);
    setLutReadRate(state, perCall);
}
BENCHMARK(BM_LutGemm)->Arg(2)->Arg(4);

/**
 * Threaded LUT-GEMM on a large shape. Arg 0 runs the Reference
 * backend as the baseline; Arg t >= 1 runs the Threaded backend with
 * t workers. The speedup at t threads is the items_per_second ratio
 * against the Arg(0) row (>= 2x expected at 4 threads on >= 4 cores);
 * outputs are bit-identical across all rows by construction.
 */
void
BM_LutGemmThreaded(benchmark::State &state)
{
    const int threads = static_cast<int>(state.range(0));
    const std::size_t m = 1024, n = 1024, batch = 8;
    const auto tensor = benchTensor(m, n, 4);
    Rng rng(8);
    const auto x = syntheticActivations(n, batch, rng);
    LutGemmConfig cfg;
    cfg.preAligned = true;
    cfg.backend = threads == 0 ? LutGemmBackend::Reference
                               : LutGemmBackend::Threaded;
    cfg.threads = threads;
    cfg.blockRows = 64;
    LutGemmCounters perCall;
    (void)lutGemm(tensor, x, cfg, &perCall);
    for (auto _ : state) {
        auto y = lutGemm(tensor, x, cfg);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * m * n * batch));
    setLutReadRate(state, perCall);
}
BENCHMARK(BM_LutGemmThreaded)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Packed-key LUT-GEMM on the same 1024x1024x8 shape as
 * BM_LutGemmThreaded, with the one-time key packing amortized via the
 * pre-packed overload (the repeated-inference scenario). Compare the
 * Arg(t) row against BM_LutGemmThreaded/t at equal thread count for
 * the packed-layout speedup (>= 2x expected); outputs are
 * bit-identical across all backends by construction.
 */
void
BM_LutGemmPacked(benchmark::State &state)
{
    const int threads = static_cast<int>(state.range(0));
    const std::size_t m = 1024, n = 1024, batch = 8;
    const auto tensor = benchTensor(m, n, 4);
    Rng rng(8);
    const auto x = syntheticActivations(n, batch, rng);
    LutGemmConfig cfg;
    cfg.preAligned = true;
    cfg.backend = LutGemmBackend::Packed;
    cfg.threads = threads;
    cfg.blockRows = 64;
    const auto packed = packLutKeys(tensor, cfg.mu);
    LutGemmCounters perCall;
    (void)lutGemm(tensor, x, cfg, packed, &perCall);
    for (auto _ : state) {
        auto y = lutGemm(tensor, x, cfg, packed);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * m * n * batch));
    setLutReadRate(state, perCall);
}
BENCHMARK(BM_LutGemmPacked)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * SIMD LUT-GEMM on the same 1024x1024x8 shape and pre-packed keys as
 * BM_LutGemmPacked. Compare the Arg(t) row against BM_LutGemmPacked/t
 * at equal thread count for the vectorized key-walk speedup (>= 1.5x
 * expected on an AVX2 host; on hosts where dispatch falls back to the
 * scalar table the ratio is ~1x and the outputs stay bit-identical by
 * construction). "simd_isa" tags each --json record with the
 * dispatched ISA code (0 scalar, 1 AVX2, 2 NEON).
 */
void
BM_LutGemmSimd(benchmark::State &state)
{
    const int threads = static_cast<int>(state.range(0));
    const std::size_t m = 1024, n = 1024, batch = 8;
    const auto tensor = benchTensor(m, n, 4);
    Rng rng(8);
    const auto x = syntheticActivations(n, batch, rng);
    LutGemmConfig cfg;
    cfg.preAligned = true;
    cfg.backend = LutGemmBackend::Simd;
    cfg.threads = threads;
    cfg.blockRows = 64;
    const auto packed = packLutKeys(tensor, cfg.mu);
    LutGemmCounters perCall;
    (void)lutGemm(tensor, x, cfg, packed, &perCall);
    for (auto _ : state) {
        auto y = lutGemm(tensor, x, cfg, packed);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * m * n * batch));
    state.counters["simd_isa"] = benchmark::Counter(
        static_cast<double>(simdIsaCode(activeSimdIsa())));
    state.counters["threads"] = benchmark::Counter(
        static_cast<double>(resolveThreadCount(threads)));
    setLutReadRate(state, perCall);
}
BENCHMARK(BM_LutGemmSimd)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Repeated small GEMMs, the serving-traffic shape where per-call
 * setup dominates: 256x256, batch 8, Q4, Packed backend with
 * pre-packed keys at 4 requested workers. Arg 0 constructs the
 * ThreadPool and scratch arenas inside every call (the no-context
 * fallback); Arg 1 reuses one ExecutionContext across all calls. The
 * Arg(1)/Arg(0) items_per_second ratio is the amortized-setup win;
 * outputs are bit-identical by construction.
 */
void
BM_LutGemmSmallRepeated(benchmark::State &state)
{
    const bool shared = state.range(0) != 0;
    const std::size_t m = 256, n = 256, batch = 8;
    const auto tensor = benchTensor(m, n, 4);
    Rng rng(10);
    const auto x = syntheticActivations(n, batch, rng);
    LutGemmConfig cfg;
    cfg.preAligned = true;
    cfg.backend = LutGemmBackend::Packed;
    cfg.threads = 4;
    cfg.blockRows = 64;
    const auto packed = packLutKeys(tensor, cfg.mu);
    ExecutionContext ctx(cfg.threads);
    LutGemmCounters perCall;
    (void)lutGemm(tensor, x, cfg, packed, &perCall,
                  shared ? &ctx : nullptr);
    for (auto _ : state) {
        auto y = lutGemm(tensor, x, cfg, packed, nullptr,
                         shared ? &ctx : nullptr);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * m * n * batch));
    setLutReadRate(state, perCall);
}
BENCHMARK(BM_LutGemmSmallRepeated)
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/**
 * Full numeric decode step through the runtime Session on a small
 * OPT-style decoder: 4 weight GEMMs per layer through the packed
 * kernel (pre-packed keys, shared ExecutionContext) plus the
 * reference vector ops. The KV cache is reset every iteration so each
 * measurement is a first decode step; "tokens_per_s" (batch tokens
 * per step) seeds the end-to-end perf trajectory in the --json
 * records.
 */
void
BM_DecodeStepSession(benchmark::State &state)
{
    OptConfig model;
    model.name = "OPT-bench";
    model.hidden = 256;
    model.layers = 2;
    model.heads = 4;
    model.ffn = 1024;
    SessionOptions opts;
    opts.batch = 4;
    opts.quant.weightBits = 4;
    opts.quant.bcqIterations = 1;
    Session session(model, opts);
    Rng rng(11);
    const MatrixD input = session.makeInput(rng);
    LutGemmCounters perStep;
    for (auto _ : state) {
        session.resetKv();
        auto r = session.runDecodeStep(input);
        benchmark::DoNotOptimize(r.hidden.data());
        perStep = r.counters;
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * opts.batch));
    state.counters["tokens_per_s"] = benchmark::Counter(
        static_cast<double>(opts.batch) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
    setLutReadRate(state, perStep);
}
BENCHMARK(BM_DecodeStepSession)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Fused serving step through serve::Engine: `live` concurrent
 * unbounded requests decode one token each per step, so every layer
 * GEMM runs once over the whole live batch (shared packed keys, one
 * ExecutionContext). KV caches are reset each iteration so every
 * measurement is a first decode step, like BM_DecodeStepSession.
 *
 * "tokens_per_s" is the fused throughput (live tokens per step); the
 * continuous-batching win is BM_EngineStep/N tokens_per_s against
 * BM_EngineStep/1 — N single-request steps run the same kernels N
 * times, so the fused rate must beat the N-sequential rate whenever
 * the fused step costs less than N single steps. "live_requests" tags
 * each --json record with N so the BENCH trajectory can plot
 * throughput vs concurrency.
 */
void
BM_EngineStep(benchmark::State &state)
{
    const auto live = static_cast<std::size_t>(state.range(0));
    OptConfig model;
    model.name = "OPT-bench";
    model.hidden = 256;
    model.layers = 2;
    model.heads = 4;
    model.ffn = 1024;
    serve::EngineOptions opts;
    opts.maxBatch = live;
    opts.model.weightBits = 4;
    opts.model.bcqIterations = 1;
    auto created = serve::Engine::create(model, opts);
    auto &engine = *created.value();

    std::vector<serve::RequestId> ids;
    for (std::size_t i = 0; i < live; ++i) {
        serve::RequestOptions req;
        req.maxTokens = 0; // unbounded: the bench drives the lifetime
        req.seed = 1000 + i;
        ids.push_back(engine.submit(req).value());
    }
    LutGemmCounters perStep;
    double decodeSeconds = 0.0;
    for (auto _ : state) {
        for (const auto id : ids)
            (void)engine.resetKv(id);
        auto stats = engine.step();
        benchmark::DoNotOptimize(stats.value().counters.lutReads);
        perStep = stats.value().counters;
        decodeSeconds += stats.value().seconds;
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * live));
    state.counters["tokens_per_s"] = benchmark::Counter(
        static_cast<double>(live) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
    // Wall tokens_per_s above includes the per-iteration resetKv
    // bookkeeping; this one divides by the engine's own per-step
    // decode timing hook, so it is the pure fused-decode rate.
    if (decodeSeconds > 0.0)
        state.counters["decode_tokens_per_s"] = benchmark::Counter(
            static_cast<double>(live) *
            static_cast<double>(state.iterations()) / decodeSeconds);
    state.counters["live_requests"] =
        benchmark::Counter(static_cast<double>(live));
    // The engine's fused GEMMs run on its ExecutionContext at the
    // default worker count; echo it so a trajectory point is
    // interpretable on hosts of different widths.
    state.counters["threads"] = benchmark::Counter(
        static_cast<double>(resolveThreadCount(opts.exec.threads)));
    setLutReadRate(state, perStep);
}
BENCHMARK(BM_EngineStep)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Small-shape packed smoke: one fast configuration for CI's Release
 * bench step (--json artifact), so the perf harness cannot rot.
 */
void
BM_LutGemmPackedSmoke(benchmark::State &state)
{
    const auto tensor = benchTensor(128, 256, 4);
    Rng rng(9);
    const auto x = syntheticActivations(256, 4, rng);
    LutGemmConfig cfg;
    cfg.preAligned = true;
    cfg.backend = LutGemmBackend::Packed;
    cfg.threads = 1;
    const auto packed = packLutKeys(tensor, cfg.mu);
    LutGemmCounters perCall;
    (void)lutGemm(tensor, x, cfg, packed, &perCall);
    for (auto _ : state) {
        auto y = lutGemm(tensor, x, cfg, packed);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * 128 * 256 * 4);
    setLutReadRate(state, perCall);
}
BENCHMARK(BM_LutGemmPackedSmoke);

void
BM_ReferenceGemm(benchmark::State &state)
{
    const auto tensor = benchTensor(128, 256, 4);
    const auto dequant = tensor.dequantAll();
    Rng rng(5);
    const auto x = syntheticActivations(256, 4, rng);
    NumericsConfig nc;
    for (auto _ : state) {
        auto y = fpReferenceGemm(dequant, x, nc);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * 128 * 256 * 4);
}
BENCHMARK(BM_ReferenceGemm);

void
BM_QuantizeBcq(benchmark::State &state)
{
    Rng rng(6);
    const auto w = syntheticWeights(64, 256, rng);
    BcqConfig cfg;
    cfg.bits = static_cast<int>(state.range(0));
    cfg.useOffset = true;
    cfg.iterations = 4;
    for (auto _ : state) {
        auto t = quantizeBcq(w, cfg);
        benchmark::DoNotOptimize(t.planes.front().data());
    }
    state.SetItemsProcessed(state.iterations() * 64 * 256);
}
BENCHMARK(BM_QuantizeBcq)->Arg(2)->Arg(4);

void
BM_SimulateGemm(benchmark::State &state)
{
    HwConfig hw;
    hw.engine = EngineKind::FIGLUT_I;
    GemmShape s;
    s.m = 16384;
    s.n = 4096;
    s.batch = 32;
    s.weightBits = 4;
    for (auto _ : state) {
        auto r = simulateGemm(hw, s);
        benchmark::DoNotOptimize(r.topsPerWatt);
    }
}
BENCHMARK(BM_SimulateGemm);

void
BM_DetailedSystolicTile(benchmark::State &state)
{
    Rng rng(7);
    SystolicSim sim({16, 16});
    Matrix<int32_t> w(16, 16), x(16, 8);
    for (auto &v : w)
        v = static_cast<int32_t>(rng.uniformInt(-8, 7));
    for (auto &v : x)
        v = static_cast<int32_t>(rng.uniformInt(-100, 100));
    for (auto _ : state) {
        auto run = sim.runTile(w, x);
        benchmark::DoNotOptimize(run.outputs.data());
    }
    state.SetItemsProcessed(state.iterations() * 16 * 16 * 8);
}
BENCHMARK(BM_DetailedSystolicTile);

/**
 * Console reporter that additionally captures every per-iteration run
 * into JsonBenchRecords for the --json output mode.
 */
class JsonCaptureReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        // Only plain iteration runs are recorded (no aggregates). No
        // error filter: these benchmarks never SkipWithError, and the
        // error field's API changed across google-benchmark versions.
        for (const auto &run : runs) {
            if (run.run_type != Run::RT_Iteration)
                continue;
            figlut::bench::JsonBenchRecord rec;
            rec.name = run.benchmark_name();
            rec.nsPerIter =
                run.iterations > 0
                    ? run.real_accumulated_time * 1e9 /
                          static_cast<double>(run.iterations)
                    : run.real_accumulated_time * 1e9;
            const auto it = run.counters.find("lut_reads_per_s");
            if (it != run.counters.end())
                rec.lutReadsPerS = it->second.value;
            const auto tok = run.counters.find("tokens_per_s");
            if (tok != run.counters.end())
                rec.tokensPerS = tok->second.value;
            const auto liveIt = run.counters.find("live_requests");
            if (liveIt != run.counters.end())
                rec.liveRequests = liveIt->second.value;
            // Any counter outside the fixed record fields rides along
            // in the flat extras (e.g. decode_tokens_per_s).
            for (const auto &[name, counter] : run.counters) {
                if (name == "lut_reads_per_s" ||
                    name == "tokens_per_s" || name == "live_requests")
                    continue;
                rec.extra.emplace_back(name, counter.value);
            }
            records_.push_back(std::move(rec));
        }
        ConsoleReporter::ReportRuns(runs);
    }

    const std::vector<figlut::bench::JsonBenchRecord> &
    records() const
    {
        return records_;
    }

  private:
    std::vector<figlut::bench::JsonBenchRecord> records_;
};

} // namespace

int
main(int argc, char **argv)
{
    // Peel our own --json <path> flag off before handing the argv to
    // google-benchmark, which rejects flags it does not know.
    std::string json_path;
    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            args.push_back(argv[i]);
        }
    }
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
        return 1;

    if (json_path.empty()) {
        benchmark::RunSpecifiedBenchmarks();
    } else {
        JsonCaptureReporter reporter;
        benchmark::RunSpecifiedBenchmarks(&reporter);
        // Calibrate the roofline ceiling once (CI smoke sizing) and
        // stamp every record that reports a LUT read rate with the
        // measured bandwidth and its roofline fraction: a RAC read
        // moves kLutReadBytes, so frac = reads/s * bytes-per-read
        // divided by the best STREAM rate. bench_stream is the
        // full-size standalone calibration.
        const auto bw = figlut::bench::measureStreamBandwidth(
            std::size_t{1} << 21, 3);
        auto records = reporter.records();
        for (auto &rec : records) {
            if (rec.lutReadsPerS <= 0.0 || bw.best() <= 0.0)
                continue;
            rec.extra.emplace_back("mem_bw_bytes_per_s", bw.best());
            rec.extra.emplace_back(
                "roofline_frac", rec.lutReadsPerS *
                                     figlut::bench::kLutReadBytes /
                                     bw.best());
        }
        figlut::bench::writeBenchJson(json_path, records);
    }
    benchmark::Shutdown();
    return 0;
}
