/**
 * @file
 * Table VI reproduction: weight-only quantization quality — FP16 vs
 * BCQ4 vs BCQ3 across the OPT family.
 *
 * Substitution (DESIGN.md #3): our BCQ quantizer runs on synthetic
 * weights with the real layer shapes; the measured reconstruction
 * error is mapped to a proxy perplexity anchored at the published
 * BCQ4/BCQ3 points, so the anchors match by construction and the
 * *ordering and error ratios* are the measured result.
 */

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "figlut/figlut.h"

using namespace figlut;

int
main()
{
    bench::banner("Table VI",
                  "Perplexity (paper) + measured quantizer error");

    Rng rng(Rng::kDefaultSeed);
    TextTable table({"OPT", "FP16", "BCQ4", "BCQ3", "nrmse(BCQ4)",
                     "nrmse(BCQ3)", "nrmse(RTN3)"});
    auto csv = bench::openCsv(
        "table6.csv", {"model", "fp16", "bcq4", "bcq3", "err_bcq4",
                       "err_bcq3", "err_rtn3"});

    for (const auto &ref : pplReferenceTable()) {
        const auto &model = optByName(ref.model);
        const std::size_t n = std::min<std::size_t>(model.hidden, 1024);
        const auto w = syntheticWeights(64, n, rng);

        auto nrmse = [&](double mse) {
            double sq = 0.0;
            for (const double v : w)
                sq += v * v;
            return std::sqrt(mse /
                             (sq / static_cast<double>(w.size())));
        };

        BcqConfig b4;
        b4.bits = 4;
        b4.useOffset = true;
        BcqConfig b3 = b4;
        b3.bits = 3;
        RtnConfig r3;
        r3.bits = 3;

        const double e4 = nrmse(bcqMse(w, quantizeBcq(w, b4)));
        const double e3 = nrmse(bcqMse(w, quantizeBcq(w, b3)));
        const double er3 = nrmse(rtnMse(w, quantizeRtn(w, r3)));

        table.addRow({ref.model, TextTable::num(ref.fp16, 2),
                      TextTable::num(ref.bcq4, 2),
                      TextTable::num(ref.bcq3, 2),
                      TextTable::num(e4, 4), TextTable::num(e3, 4),
                      TextTable::num(er3, 4)});
        csv->addRow({ref.model, TextTable::num(ref.fp16, 2),
                     TextTable::num(ref.bcq4, 2),
                     TextTable::num(ref.bcq3, 2),
                     TextTable::num(e4, 6), TextTable::num(e3, 6),
                     TextTable::num(er3, 6)});
    }
    std::cout << table.render();
    std::cout <<
        "\nshape checks: err(BCQ4) < err(BCQ3) < err(RTN3) on every "
        "row — the Table VI ordering\n(BCQ4 nearly lossless, BCQ3 "
        "degrades gracefully, uniform RTN3 is much worse).\n";
    return 0;
}
