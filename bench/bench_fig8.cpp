/**
 * @file
 * Fig. 8 reproduction: PE power relative to the FP-adder baseline for
 * mu = 2 and mu = 4 as the number of RACs per LUT (k) grows.
 */

#include <iostream>

#include "bench_util.h"
#include "figlut/figlut.h"

using namespace figlut;

int
main()
{
    bench::banner("Fig. 8",
                  "Relative PE power vs RACs-per-LUT (k) for mu=2,4");

    const auto &tech = TechParams::default28nm();
    TextTable table({"k", "mu=2 (rel)", "mu=4 (rel)"});
    auto csv = bench::openCsv("fig8.csv", {"k", "mu2", "mu4"});

    for (const int k : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
        std::vector<double> rel;
        for (const int mu : {2, 4}) {
            LutConfig cfg;
            cfg.mu = mu;
            cfg.valueBits = 32;
            cfg.fanout = k;
            rel.push_back(
                relativeReadPower(LutImpl::FFLUT, cfg, 24, tech));
        }
        table.addRow({std::to_string(k), TextTable::num(rel[0], 3),
                      TextTable::num(rel[1], 3)});
        csv->addRow({std::to_string(k), TextTable::num(rel[0], 5),
                     TextTable::num(rel[1], 5)});
    }
    std::cout << table.render();

    std::cout <<
        "\nshape checks (paper):\n"
        "  - k=1: mu=4 costs more than mu=2 (bigger unshared table)\n"
        "  - sharing drives both below the baseline; mu=4 wins at "
        "large k\n"
        "  - the paper's design point (mu=4, large k) is the minimum\n";
    return 0;
}
