/**
 * @file
 * Fig. 6 reproduction: read power of RFLUT and FFLUT relative to an
 * FP-adder baseline at equal throughput, across mu in {2, 4, 8}.
 * (The RFLUT mu=2 macro is below the compiler's minimum size in the
 * paper and is reported as n/a here too.)
 */

#include <iostream>

#include "bench_util.h"
#include "figlut/figlut.h"

using namespace figlut;

int
main()
{
    bench::banner("Fig. 6",
                  "RFLUT/FFLUT power vs FP adder baseline across mu");

    const auto &tech = TechParams::default28nm();
    TextTable table({"mu", "RFLUT (rel)", "FFLUT (rel)"});
    auto csv = bench::openCsv("fig6.csv", {"mu", "rflut", "fflut"});

    for (const int mu : {2, 4, 8}) {
        LutConfig cfg;
        cfg.mu = mu;
        cfg.valueBits = 32;
        cfg.fanout = 1;
        const double fflut =
            relativeReadPower(LutImpl::FFLUT, cfg, 24, tech);
        std::string rflut = "n/a (macro too small)";
        std::string rflut_csv = "";
        if (mu >= 4) {
            const double v =
                relativeReadPower(LutImpl::RFLUT, cfg, 24, tech);
            rflut = TextTable::ratio(v, 2);
            rflut_csv = TextTable::num(v, 4);
        }
        table.addRow({std::to_string(mu), rflut,
                      TextTable::ratio(fflut, 2)});
        csv->addRow({std::to_string(mu), rflut_csv,
                     TextTable::num(fflut, 4)});
    }
    std::cout << table.render();

    std::cout <<
        "\nshape checks (paper):\n"
        "  - RFLUT > 1.0 baseline everywhere (unsuitable)\n"
        "  - RFLUT mu=4 total > mu=8 total (2x reads, fixed periphery)\n"
        "  - FFLUT < 1.0 for mu in {2,4}; mu=8 blows up (excluded)\n";
    return 0;
}
