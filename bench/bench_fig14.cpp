/**
 * @file
 * Fig. 14 reproduction: MPU area breakdown (arithmetic logic vs
 * flip-flops) for the six input-format variants, normalized to the
 * FPE total of each variant.
 */

#include <iostream>

#include "bench_util.h"
#include "figlut/figlut.h"

using namespace figlut;

int
main()
{
    bench::banner("Fig. 14",
                  "MPU area breakdown (arith vs flip-flop), "
                  "normalized to FPE");

    const auto &tech = TechParams::default28nm();
    auto csv = bench::openCsv(
        "fig14.csv",
        {"variant", "engine", "arith_rel", "ff_rel", "total_rel"});

    for (const int q : {4, 8}) {
        for (const auto fmt : kAllActFormats) {
            const std::string variant =
                actFormatName(fmt) + "-Q" + std::to_string(q);
            std::cout << "\n--- " << variant << " ---\n";

            MpuConfig base_cfg;
            base_cfg.engine = EngineKind::FPE;
            base_cfg.actFormat = fmt;
            base_cfg.weightBits = q;
            const double base = mpuArea(base_cfg, tech).totalUm2();

            TextTable table(
                {"engine", "arithmetic", "flip-flop", "total"});
            for (const auto e : kAllEngines) {
                MpuConfig cfg = base_cfg;
                cfg.engine = e;
                const auto a = mpuArea(cfg, tech);
                table.addRow({engineName(e),
                              TextTable::num(a.arithmeticUm2 / base, 3),
                              TextTable::num(a.flipFlopUm2 / base, 3),
                              TextTable::num(a.totalUm2() / base, 3)});
                csv->addRow({variant, engineName(e),
                             TextTable::num(a.arithmeticUm2 / base, 5),
                             TextTable::num(a.flipFlopUm2 / base, 5),
                             TextTable::num(a.totalUm2() / base, 5)});
            }
            std::cout << table.render();
        }
    }
    std::cout <<
        "\nshape checks (paper): FP engines (FPE, FIGLUT-F) are "
        "arithmetic-heavy;\nFIGLUT-F < FPE (adds instead of "
        "multiplies); FIGNA's arithmetic grows faster than FPE's "
        "from Q4 to Q8;\niFPU carries the most flip-flop area; FIGLUT "
        "has the least (shallow 15-stage pipeline).\n";
    return 0;
}
