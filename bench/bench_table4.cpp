/**
 * @file
 * Table IV reproduction: numerical accuracy of the GEMM engines on
 * RTN-4bit weights across the OPT family.
 *
 * Substitution (DESIGN.md #2): we cannot run OPT on WikiText-2, so
 * the engines execute bit-exact numerics on synthetic layers with the
 * real model dimensions. The published perplexities are printed as
 * reference; our measured columns show each engine's deviation from
 * the FP64 oracle, demonstrating the table's content — FIGLUT-F
 * matches the GPU-class reference and FIGLUT-I adds only
 * pre-alignment rounding noise.
 */

#include <iostream>

#include "bench_util.h"
#include "figlut/figlut.h"

using namespace figlut;

int
main()
{
    bench::banner("Table IV",
                  "Engine numerics on RTN-4bit OPT layers "
                  "(published ppl + measured NRMSE)");

    Rng rng(Rng::kDefaultSeed);
    std::cout << "seed: " << rng.seed() << "\n\n";

    TextTable table({"OPT", "ppl (paper, all engines)",
                     "GPU nrmse", "FIGLUT-F nrmse", "FIGLUT-I nrmse",
                     "F==GPU class", "I ppl (paper)"});
    auto csv = bench::openCsv(
        "table4.csv", {"model", "ppl_paper", "gpu_nrmse", "ff_nrmse",
                       "fi_nrmse"});

    for (const auto &ref : pplReferenceTable()) {
        const auto &model = optByName(ref.model);
        // One attention-out projection (h x h) at real width; batch 4
        // keeps the functional run fast while exercising real dims.
        const std::size_t n = std::min<std::size_t>(model.hidden, 2048);
        const std::size_t m = std::min<std::size_t>(model.hidden, 1024);
        const auto weights = syntheticWeights(m, n, rng);
        const auto x = syntheticActivations(n, 4, rng);

        RtnConfig rcfg;
        rcfg.bits = 4;
        const auto rtn = quantizeRtn(weights, rcfg);
        const auto bcq = uniformToBcq(rtn);

        NumericsConfig nc;
        MatrixD xq(x.rows(), x.cols());
        for (std::size_t i = 0; i < xq.size(); ++i)
            xq.at(i) = quantizeToFormat(x.at(i), ActFormat::FP16);
        const auto oracle = oracleGemm(rtn.dequantAll(), xq);

        const double e_gpu =
            compareMatrices(fpReferenceGemm(rtn.dequantAll(), x, nc),
                            oracle)
                .nrmse();
        const double e_ff =
            compareMatrices(figlutGemm(bcq, x, nc, false), oracle)
                .nrmse();
        const double e_fi =
            compareMatrices(figlutGemm(bcq, x, nc, true), oracle)
                .nrmse();

        const bool same_class = e_ff < 2.0 * e_gpu + 1e-9;
        table.addRow({ref.model, TextTable::num(ref.rtn4, 2),
                      TextTable::num(e_gpu * 1e6, 2) + "e-6",
                      TextTable::num(e_ff * 1e6, 2) + "e-6",
                      TextTable::num(e_fi * 1e6, 2) + "e-6",
                      same_class ? "yes" : "NO",
                      TextTable::num(
                          tableIvPerplexity(ref.model, "FIGLUT-I"),
                          2)});
        csv->addRow({ref.model, TextTable::num(ref.rtn4, 2),
                     TextTable::num(e_gpu, 9), TextTable::num(e_ff, 9),
                     TextTable::num(e_fi, 9)});
    }
    std::cout << table.render();
    std::cout <<
        "\npaper row: GPU == FIGLUT-F everywhere; FIGLUT-I identical "
        "except OPT-13B (20.93 -> 20.89).\n"
        "our reproduction: all three engines sit in the same error "
        "class vs the FP64 oracle;\nFIGLUT-I's extra error is "
        "pre-alignment rounding only (see the NarrowAlignment test "
        "for the knob).\n";
    return 0;
}
