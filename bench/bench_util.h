/**
 * @file
 * Shared helpers for the table/figure reproduction binaries: banner
 * printing and CSV output into ./bench_out/.
 */

#ifndef FIGLUT_BENCH_BENCH_UTIL_H
#define FIGLUT_BENCH_BENCH_UTIL_H

#include <filesystem>
#include <iostream>
#include <memory>
#include <string>

#include "common/csv.h"

namespace figlut::bench {

/** Print the standard experiment banner. */
inline void
banner(const std::string &id, const std::string &title)
{
    std::cout << "==============================================\n"
              << id << ": " << title << "\n"
              << "==============================================\n";
}

/** Open a CSV file under ./bench_out/ (created on demand). */
inline std::unique_ptr<CsvWriter>
openCsv(const std::string &name, std::vector<std::string> header)
{
    std::filesystem::create_directories("bench_out");
    return std::make_unique<CsvWriter>("bench_out/" + name,
                                       std::move(header));
}

} // namespace figlut::bench

#endif // FIGLUT_BENCH_BENCH_UTIL_H
