/**
 * @file
 * Shared helpers for the table/figure reproduction binaries: banner
 * printing, CSV output into ./bench_out/, and the machine-readable
 * JSON records behind bench_kernels' --json mode (used by CI and by
 * BENCH_*.json perf trajectories).
 */

#ifndef FIGLUT_BENCH_BENCH_UTIL_H
#define FIGLUT_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/csv.h"
#include "common/logging.h"

namespace figlut::bench {

/** Print the standard experiment banner. */
inline void
banner(const std::string &id, const std::string &title)
{
    std::cout << "==============================================\n"
              << id << ": " << title << "\n"
              << "==============================================\n";
}

/** Open a CSV file under ./bench_out/ (created on demand). */
inline std::unique_ptr<CsvWriter>
openCsv(const std::string &name, std::vector<std::string> header)
{
    std::filesystem::create_directories("bench_out");
    return std::make_unique<CsvWriter>("bench_out/" + name,
                                       std::move(header));
}

/** One benchmark measurement for the --json output mode. */
struct JsonBenchRecord
{
    std::string name;          ///< full benchmark name (args included)
    double nsPerIter = 0.0;    ///< wall-clock nanoseconds per iteration
    double lutReadsPerS = 0.0; ///< RAC table reads per second (0 = n/a)
    double tokensPerS = 0.0;   ///< decoded tokens per second (0 = n/a)
    double liveRequests = 0.0; ///< serve-engine live batch (0 = n/a)
    /**
     * Additional numeric fields, emitted flat into the record after
     * the fixed keys (latency percentiles, config echoes, ...). Keys
     * must be unique and must not collide with the fixed keys;
     * scripts/check_bench_json.py validates the result.
     */
    std::vector<std::pair<std::string, double>> extra;
};

/** Minimal JSON string escaping (quotes, backslashes, control chars). */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Write benchmark records as a JSON array of {name, ns_per_iter,
 * lut_reads_per_s, tokens_per_s, live_requests, ...extra} objects to
 * path.
 */
inline void
writeBenchJson(const std::string &path,
               const std::vector<JsonBenchRecord> &records)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open bench JSON output file: ", path);
    out << "[\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const auto &r = records[i];
        out << "  {\"name\": \"" << jsonEscape(r.name)
            << "\", \"ns_per_iter\": " << r.nsPerIter
            << ", \"lut_reads_per_s\": " << r.lutReadsPerS
            << ", \"tokens_per_s\": " << r.tokensPerS
            << ", \"live_requests\": " << r.liveRequests;
        for (const auto &[key, value] : r.extra)
            out << ", \"" << jsonEscape(key) << "\": " << value;
        out << "}" << (i + 1 < records.size() ? "," : "") << "\n";
    }
    out << "]\n";
    if (!out.flush())
        fatal("failed writing bench JSON output file: ", path);
}

} // namespace figlut::bench

#endif // FIGLUT_BENCH_BENCH_UTIL_H
