/**
 * @file
 * Load-run drivers of the serving harness: the same arrival trace
 * executed two ways, producing structurally identical LoadRun records
 * (load/latency.h) so every percentile/SLO metric downstream is
 * computed by one code path.
 *
 *  - runMeasured(): a real serve::Engine on the host. A submitter
 *    thread releases each trace arrival at its wall-clock time while
 *    the caller's thread spins the engine's step loop; both serialize
 *    on one mutex (the engine is single-client by contract). Token
 *    completions are stamped through the StepStats::decodedIds hook,
 *    queue wait and TTFT come from the engine's own per-request
 *    timing hooks.
 *  - runSimulated(): sim::replayTrace() — the same schedule in
 *    virtual time, each fused step priced by sim::Accelerator.
 */

#ifndef FIGLUT_BENCH_LOAD_DRIVER_H
#define FIGLUT_BENCH_LOAD_DRIVER_H

#include <vector>

#include "load/latency.h"
#include "load/trace.h"
#include "model/opt_family.h"
#include "serve/engine.h"
#include "sim/engine_config.h"

namespace figlut::bench {

/** Everything a load run needs besides the trace itself. */
struct LoadConfig
{
    /** The served (and replayed) model architecture. */
    OptConfig model;
    /** Engine knobs: quantization, exec backend, maxBatch/maxQueue,
     *  KV budget, degradation policy, fault injector, prefill
     *  chunking. The scheduling knobs (kvBudgetBytes, kvBlockTokens,
     *  prefillChunkTokens, policy, faults) are forwarded verbatim to
     *  the simulated replay so both drivers run the identical
     *  admission/prefill/eviction schedule. */
    serve::EngineOptions engine;
    /** Per-request deadline in seconds applied to every trace
     *  request; 0 = no deadline. */
    double deadlineS = 0.0;
    /** The accelerator model the simulated run prices steps on. */
    HwConfig hw;
};

/** Drive a real engine with the trace; wall-clock latencies. */
LoadRun runMeasured(const LoadConfig &config,
                    const std::vector<TraceRequest> &trace);

/** Replay the trace on the simulator; virtual-time latencies. */
LoadRun runSimulated(const LoadConfig &config,
                     const std::vector<TraceRequest> &trace);

} // namespace figlut::bench

#endif // FIGLUT_BENCH_LOAD_DRIVER_H
