#include "load/driver.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/logging.h"
#include "sim/trace_replay.h"

namespace figlut::bench {

LoadRun
runMeasured(const LoadConfig &config,
            const std::vector<TraceRequest> &trace)
{
    serve::SteadyClock clock;
    serve::EngineOptions options = config.engine;
    options.clock = &clock;
    auto created = serve::Engine::create(config.model, options);
    if (!created.ok())
        fatal("runMeasured cannot build the engine: ",
              created.status().toString());
    serve::Engine &engine = *created.value();

    LoadRun run;
    run.requests.resize(trace.size());
    std::unordered_map<serve::RequestId, std::size_t> indexOf;
    indexOf.reserve(trace.size());

    std::mutex mu;
    std::atomic<bool> submitterDone{false};
    const double startS = clock.now();

    // The submitter releases each arrival at its trace time; the step
    // loop below owns the engine between arrivals. Everything engine-
    // touching happens under the one mutex (single-client contract).
    std::thread submitter([&] {
        for (std::size_t i = 0; i < trace.size(); ++i) {
            const double targetS = startS + trace[i].arrivalS;
            while (clock.now() < targetS)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
            serve::RequestOptions request;
            request.maxTokens = trace[i].outputTokens;
            request.promptTokens = trace[i].promptTokens;
            request.seed = trace[i].seed;
            request.deadlineS = config.deadlineS;
            std::lock_guard<std::mutex> lock(mu);
            RequestOutcome &outcome = run.requests[i];
            outcome.arrivalS = targetS;
            outcome.promptTokens = trace[i].promptTokens;
            outcome.outputTokens = trace[i].outputTokens;
            const auto id = engine.submit(request);
            if (id.ok())
                indexOf.emplace(id.value(), i);
            else
                outcome.shed = true;
        }
        submitterDone.store(true, std::memory_order_release);
    });

    // Step whenever there is work; drain after the last arrival.
    while (true) {
        std::unique_lock<std::mutex> lock(mu);
        if (engine.liveRequests() == 0 &&
            engine.queuedRequests() == 0) {
            const bool done =
                submitterDone.load(std::memory_order_acquire);
            lock.unlock();
            if (done)
                break;
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
            continue;
        }
        const auto stats = engine.step();
        if (!stats.ok())
            fatal("runMeasured step failed: ",
                  stats.status().toString());
        const double nowS = clock.now();
        const serve::StepStats &step = stats.value();
        // Governance outcomes first: an evicted request restarts from
        // scratch (its recorded tokens are discarded, like the
        // engine's own resetKv), shed/deadline drops are terminal.
        for (const serve::RequestId id : step.evictedIds) {
            RequestOutcome &outcome = run.requests[indexOf.at(id)];
            outcome.tokenTimesS.clear();
            outcome.evictions += 1;
        }
        for (const serve::RequestId id : step.shedIds) {
            RequestOutcome &outcome = run.requests[indexOf.at(id)];
            outcome.tokenTimesS.clear();
            outcome.shed = true;
        }
        for (const serve::RequestId id : step.deadlineIds) {
            RequestOutcome &outcome = run.requests[indexOf.at(id)];
            outcome.tokenTimesS.clear();
            outcome.deadlineMiss = true;
        }
        for (const serve::RequestId id : step.decodedIds)
            run.requests[indexOf.at(id)].tokenTimesS.push_back(nowS);
        // Governance-only steps (every working column shed/evicted/
        // expired) do nothing and are not recorded, matching the
        // replay. Pure-prefill steps are real work and are recorded.
        if (step.prefillTokens + step.decodeTokens > 0) {
            run.prefillTokens += step.prefillTokens;
            run.decodeTokens += step.decodeTokens;
            run.queueDepth.push_back(step.queueDepth);
            run.stepSeconds.push_back(step.seconds);
        }
    }
    submitter.join();

    // Queue wait and TTFT from the engine's own timing hooks.
    for (const auto &[id, i] : indexOf) {
        const auto snapshot = engine.poll(id);
        if (!snapshot.ok())
            continue;
        run.requests[i].queueS = snapshot.value().stats.queueSeconds;
        run.requests[i].ttftS = snapshot.value().stats.ttftSeconds;
    }
    return run;
}

LoadRun
runSimulated(const LoadConfig &config,
             const std::vector<TraceRequest> &trace)
{
    std::vector<ReplayRequest> replay;
    replay.reserve(trace.size());
    for (const TraceRequest &request : trace)
        replay.push_back(ReplayRequest{request.arrivalS,
                                       request.promptTokens,
                                       request.outputTokens,
                                       config.deadlineS});
    ReplayOptions options;
    options.maxBatch = config.engine.maxBatch;
    options.maxQueue = config.engine.maxQueue;
    options.weightBits = config.engine.model.weightBits;
    options.includeVector = config.engine.includeVector;
    // Resolve exactly as the engine does, so a simulated job prices
    // the same per-GEMM combines the measured job pays.
    options.shards = resolveShardCount(config.engine.exec.shards);
    options.groupSize = config.engine.model.groupSize;
    options.hasOffset = config.engine.model.useOffset;
    options.kvBudgetBytes = config.engine.kvBudgetBytes;
    options.kvBlockTokens = config.engine.kvBlockTokens;
    options.prefillChunkTokens = config.engine.prefillChunkTokens;
    options.policy = config.engine.policy;
    options.faults = config.engine.faults;
    const ReplayResult result =
        replayTrace(config.model, config.hw, options, replay);

    LoadRun run;
    run.requests.resize(result.requests.size());
    for (std::size_t i = 0; i < result.requests.size(); ++i) {
        const ReplayRequestResult &r = result.requests[i];
        RequestOutcome &outcome = run.requests[i];
        outcome.arrivalS = r.arrivalS;
        outcome.promptTokens = r.promptTokens;
        outcome.outputTokens = r.outputTokens;
        outcome.shed = r.shed;
        outcome.deadlineMiss = r.deadlineMiss;
        outcome.evictions = r.evictions;
        outcome.queueS = r.queueS;
        outcome.tokenTimesS = r.tokenTimesS;
        if (!r.tokenTimesS.empty())
            outcome.ttftS = r.tokenTimesS.front() - r.arrivalS;
    }
    run.queueDepth = result.queueDepth;
    run.stepSeconds = result.stepSeconds;
    run.prefillTokens = result.prefillTokens;
    run.decodeTokens = result.decodeTokens;
    return run;
}

} // namespace figlut::bench
