#include "load/latency.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace figlut::bench {

void
PercentileEstimator::add(double x)
{
    samples_.push_back(x);
    dirty_ = true;
}

double
PercentileEstimator::percentile(double p) const
{
    FIGLUT_ASSERT(p > 0.0 && p <= 100.0,
                  "percentile p must be in (0, 100], got ", p);
    if (samples_.empty())
        return 0.0;
    if (dirty_ || sorted_.size() != samples_.size()) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        dirty_ = false;
    }
    const auto n = static_cast<double>(sorted_.size());
    const auto rank =
        static_cast<std::size_t>(std::ceil(p / 100.0 * n));
    return sorted_[std::max<std::size_t>(rank, 1) - 1];
}

double
PercentileEstimator::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (const double x : samples_)
        sum += x;
    return sum / static_cast<double>(samples_.size());
}

double
PercentileEstimator::min() const
{
    if (samples_.empty())
        return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double
PercentileEstimator::max() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

LatencySummary
summarizeLatency(const PercentileEstimator &samples)
{
    LatencySummary s;
    s.count = samples.count();
    s.mean = samples.mean();
    s.p50 = samples.percentile(50.0);
    s.p95 = samples.percentile(95.0);
    s.p99 = samples.percentile(99.0);
    s.max = samples.max();
    return s;
}

namespace {

/** Mean inter-token gap of a completed request (0 for one token). */
double
meanItlS(const RequestOutcome &outcome)
{
    if (outcome.tokens() < 2)
        return 0.0;
    return (outcome.tokenTimesS.back() - outcome.tokenTimesS.front()) /
           static_cast<double>(outcome.tokens() - 1);
}

} // namespace

bool
meetsSlo(const RequestOutcome &outcome, const SloSpec &slo)
{
    if (!outcome.completed())
        return false;
    if (outcome.ttftS * 1e3 > slo.ttftMs)
        return false;
    return outcome.tokens() < 2 || meanItlS(outcome) * 1e3 <= slo.itlMs;
}

LoadSummary
summarizeRun(const LoadRun &run, const SloSpec &slo)
{
    LoadSummary summary;
    summary.requests = run.requests.size();

    PercentileEstimator ttft, itl, queueWait;
    double firstArrival = 0.0, lastToken = 0.0;
    bool any = false;
    std::size_t tokens = 0, goodTokens = 0;
    for (const RequestOutcome &outcome : run.requests) {
        summary.evictions += outcome.evictions;
        if (outcome.shed) {
            ++summary.shed;
            continue;
        }
        if (outcome.deadlineMiss) {
            ++summary.deadlineMissed;
            continue;
        }
        if (!outcome.completed())
            continue;
        ++summary.completed;
        ttft.add(outcome.ttftS * 1e3);
        queueWait.add(outcome.queueS * 1e3);
        for (std::size_t t = 1; t < outcome.tokens(); ++t)
            itl.add((outcome.tokenTimesS[t] -
                     outcome.tokenTimesS[t - 1]) *
                    1e3);
        if (!any || outcome.arrivalS < firstArrival)
            firstArrival = outcome.arrivalS;
        lastToken = std::max(lastToken, outcome.tokenTimesS.back());
        any = true;
        tokens += outcome.tokens();
        if (meetsSlo(outcome, slo)) {
            ++summary.sloMet;
            goodTokens += outcome.tokens();
        }
    }
    if (summary.requests > 0) {
        const auto n = static_cast<double>(summary.requests);
        summary.shedRate = static_cast<double>(summary.shed) / n;
        summary.deadlineMissRate =
            static_cast<double>(summary.deadlineMissed) / n;
        summary.evictRate =
            static_cast<double>(summary.evictions) / n;
    }
    summary.ttftMs = summarizeLatency(ttft);
    summary.itlMs = summarizeLatency(itl);
    summary.queueMs = summarizeLatency(queueWait);
    summary.prefillTokens = run.prefillTokens;
    summary.decodeTokens = run.decodeTokens;
    if (any && lastToken > firstArrival) {
        summary.makespanS = lastToken - firstArrival;
        summary.tokensPerS =
            static_cast<double>(tokens) / summary.makespanS;
        summary.goodputTokPerS =
            static_cast<double>(goodTokens) / summary.makespanS;
    }

    if (!run.queueDepth.empty()) {
        double sum = 0.0;
        for (const std::size_t d : run.queueDepth) {
            sum += static_cast<double>(d);
            summary.queueDepthMax = std::max(
                summary.queueDepthMax, static_cast<double>(d));
        }
        summary.queueDepthMean =
            sum / static_cast<double>(run.queueDepth.size());
    }
    if (!run.stepSeconds.empty()) {
        double sum = 0.0;
        for (const double s : run.stepSeconds)
            sum += s;
        summary.msPerStepMean =
            sum * 1e3 / static_cast<double>(run.stepSeconds.size());
    }
    return summary;
}

} // namespace figlut::bench
