/**
 * @file
 * Latency accounting of the serving load harness: an exact
 * (nearest-rank) percentile estimator, per-request outcome records
 * shared by the measured and simulated drivers, and SLO/goodput
 * summarization.
 *
 * The estimator stores every sample and reports nearest-rank
 * percentiles (rank = ceil(p/100 * n)), so p50/p95/p99 are exact
 * order statistics — no interpolation, no sketching — which is what
 * lets the tests pin them on known distributions. Harness-scale
 * sample counts (thousands) make the O(n log n) sort-on-demand cost
 * irrelevant.
 */

#ifndef FIGLUT_BENCH_LOAD_LATENCY_H
#define FIGLUT_BENCH_LOAD_LATENCY_H

#include <cstddef>
#include <vector>

namespace figlut::bench {

/** Exact sample-storing percentile estimator. */
class PercentileEstimator
{
  public:
    /** Fold one sample in. */
    void add(double x);

    std::size_t count() const { return samples_.size(); }

    /**
     * Nearest-rank percentile for p in (0, 100]: the smallest sample
     * with at least ceil(p/100 * n) samples <= it. Exact on any
     * sample set; 0 when empty.
     */
    double percentile(double p) const;

    double mean() const;
    double min() const;
    double max() const;

  private:
    std::vector<double> samples_;
    /** Sorted view, rebuilt lazily (mutable cache of samples_). */
    mutable std::vector<double> sorted_;
    mutable bool dirty_ = false;
};

/** The percentile set every latency metric reports. */
struct LatencySummary
{
    std::size_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/** Summarize an estimator into the standard percentile set. */
LatencySummary summarizeLatency(const PercentileEstimator &samples);

/**
 * Outcome of one trace request after a load run — produced
 * identically by the measured (serve::Engine, wall clock) and
 * simulated (sim::replayTrace, virtual clock) drivers so every
 * downstream metric is computed by the same code.
 */
struct RequestOutcome
{
    double arrivalS = 0.0;
    std::size_t promptTokens = 0;
    std::size_t outputTokens = 0;
    /** Dropped terminally under capacity pressure: rejected at
     *  submit (queue full) or shed mid-flight by the KV budget. */
    bool shed = false;
    /** Dropped terminally past its deadline. */
    bool deadlineMiss = false;
    /** Times the request was evicted and re-queued; its token times
     *  only reflect the final, surviving life. */
    std::size_t evictions = 0;
    /** Submit to the start of the first step that worked on this
     *  request (prefill or decode). */
    double queueS = 0.0;
    /** Submit to the first token: queue wait + every prefill step +
     *  the first decode step. Strictly exceeds queueS for any
     *  non-empty prompt. */
    double ttftS = 0.0;
    /** Completion time of each decoded token (absolute seconds). */
    std::vector<double> tokenTimesS;

    std::size_t tokens() const { return tokenTimesS.size(); }
    bool completed() const
    {
        return !shed && !deadlineMiss && tokens() > 0;
    }
};

/** One full load run: per-request outcomes + per-step series. */
struct LoadRun
{
    std::vector<RequestOutcome> requests; ///< trace order
    std::vector<std::size_t> queueDepth;  ///< per step, after admission
    std::vector<double> stepSeconds;      ///< per step duration
    /** Prompt tokens prefilled across all steps (eviction re-prefills
     *  counted again — recompute is real work). */
    std::size_t prefillTokens = 0;
    /** Decode tokens completed across all steps. */
    std::size_t decodeTokens = 0;
};

/** Latency SLO the goodput accounting scores requests against. */
struct SloSpec
{
    double ttftMs = 200.0; ///< time-to-first-token bound
    double itlMs = 50.0;   ///< mean inter-token latency bound
};

/**
 * Whether a completed request met the SLO: TTFT within ttftMs and
 * mean inter-token gap within itlMs (single-token requests meet the
 * ITL bound vacuously). Shed or token-less requests never do.
 */
bool meetsSlo(const RequestOutcome &outcome, const SloSpec &slo);

/** Aggregate metrics of one load run. */
struct LoadSummary
{
    std::size_t requests = 0;
    std::size_t shed = 0;
    std::size_t deadlineMissed = 0;
    std::size_t evictions = 0; ///< total evict/re-queue cycles
    std::size_t completed = 0;
    std::size_t sloMet = 0;
    double shedRate = 0.0;         ///< shed / requests
    double deadlineMissRate = 0.0; ///< deadlineMissed / requests
    double evictRate = 0.0;        ///< evictions / requests
    LatencySummary ttftMs;  ///< across completed requests
    LatencySummary itlMs;   ///< across all inter-token gaps
    /** Pre-compute wait (queueS) across completed requests; the gap
     *  between this and ttftMs is the prefill cost long prompts pay. */
    LatencySummary queueMs;
    /** Prompt tokens prefilled across the run (LoadRun passthrough). */
    std::size_t prefillTokens = 0;
    /** Decode tokens completed across the run. */
    std::size_t decodeTokens = 0;
    /** First arrival to last token completion. */
    double makespanS = 0.0;
    /** Decoded tokens / makespan. */
    double tokensPerS = 0.0;
    /** Tokens of SLO-meeting requests / makespan. */
    double goodputTokPerS = 0.0;
    double queueDepthMean = 0.0;
    double queueDepthMax = 0.0;
    double msPerStepMean = 0.0;
};

/** Compute every aggregate metric of a run under the given SLO. */
LoadSummary summarizeRun(const LoadRun &run, const SloSpec &slo);

} // namespace figlut::bench

#endif // FIGLUT_BENCH_LOAD_LATENCY_H
