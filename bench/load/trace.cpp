#include "load/trace.h"

#include <cmath>

#include "common/logging.h"

namespace figlut::bench {

namespace {

/** Exponential gap with the given rate (inverse-CDF of uniform()). */
double
exponentialGap(Rng &rng, double ratePerS)
{
    // uniform() is in [0, 1), so 1 - u is in (0, 1] and the log is
    // finite; the gap is strictly positive.
    return -std::log(1.0 - rng.uniform()) / ratePerS;
}

std::size_t
drawLength(Rng &rng, const LengthRange &range)
{
    FIGLUT_ASSERT(range.lo <= range.hi, "length range [", range.lo,
                  ", ", range.hi, "] is inverted");
    return static_cast<std::size_t>(
        rng.uniformInt(static_cast<int64_t>(range.lo),
                       static_cast<int64_t>(range.hi)));
}

} // namespace

std::vector<TraceRequest>
generateTrace(const ScenarioSpec &scenario, std::size_t count,
              std::uint64_t seed)
{
    FIGLUT_ASSERT(scenario.ratePerS > 0.0, "scenario \"", scenario.name,
                  "\" needs a positive ratePerS, got ",
                  scenario.ratePerS);
    FIGLUT_ASSERT(scenario.output.lo >= 1 &&
                      scenario.longOutput.lo >= 1,
                  "scenario \"", scenario.name,
                  "\" output ranges must start at >= 1 token");
    FIGLUT_ASSERT(scenario.arrivals != ArrivalKind::Bursty ||
                      scenario.burstSize >= 1,
                  "bursty scenario \"", scenario.name,
                  "\" needs burstSize >= 1");

    Rng rng(seed);
    std::vector<TraceRequest> trace;
    trace.reserve(count);

    // Arrival times first (one stream), then lengths (same stream),
    // so the two draws cannot interleave differently across arrival
    // kinds.
    double t = 0.0;
    while (trace.size() < count) {
        if (scenario.arrivals == ArrivalKind::Poisson) {
            t += exponentialGap(rng, scenario.ratePerS);
            trace.push_back(TraceRequest{t, 0, 1, 0});
        } else {
            // Burst epochs keep the configured *mean* rate: epochs at
            // ratePerS / burstSize, burstSize sends per epoch.
            t += exponentialGap(rng, scenario.ratePerS /
                                         static_cast<double>(
                                             scenario.burstSize));
            for (std::size_t i = 0;
                 i < scenario.burstSize && trace.size() < count; ++i)
                trace.push_back(TraceRequest{
                    t + static_cast<double>(i) * scenario.burstJitterS,
                    0, 1, 0});
        }
    }

    // A tiny epoch gap can start a burst inside the previous burst's
    // jitter window; clamp so the trace is sorted (replay requires it).
    for (std::size_t i = 1; i < trace.size(); ++i)
        if (trace[i].arrivalS < trace[i - 1].arrivalS)
            trace[i].arrivalS = trace[i - 1].arrivalS;

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const bool isLong = scenario.longFraction > 0.0 &&
                            rng.uniform() < scenario.longFraction;
        trace[i].promptTokens = drawLength(
            rng, isLong ? scenario.longPrompt : scenario.prompt);
        trace[i].outputTokens = drawLength(
            rng, isLong ? scenario.longOutput : scenario.output);
        trace[i].seed = rng.next();
    }
    return trace;
}

const std::vector<ScenarioSpec> &
builtinScenarios()
{
    static const std::vector<ScenarioSpec> scenarios = [] {
        std::vector<ScenarioSpec> s(3);
        s[0].name = "poisson-short-chat";
        s[0].arrivals = ArrivalKind::Poisson;
        s[0].ratePerS = 32.0;
        s[0].prompt = {8, 32};
        s[0].output = {4, 16};

        s[1].name = "bursty-short-chat";
        s[1].arrivals = ArrivalKind::Bursty;
        s[1].ratePerS = 32.0;
        s[1].burstSize = 8;
        s[1].prompt = {8, 32};
        s[1].output = {4, 16};

        s[2].name = "mixed-long-doc";
        s[2].arrivals = ArrivalKind::Poisson;
        s[2].ratePerS = 16.0;
        s[2].prompt = {8, 32};
        s[2].output = {4, 16};
        s[2].longFraction = 0.3;
        s[2].longPrompt = {96, 160};
        s[2].longOutput = {24, 48};
        return s;
    }();
    return scenarios;
}

const ScenarioSpec &
overloadScenario()
{
    static const ScenarioSpec scenario = [] {
        ScenarioSpec s;
        s.name = "overload";
        s.arrivals = ArrivalKind::Bursty;
        s.ratePerS = 48.0;
        s.burstSize = 8;
        s.prompt = {16, 48};
        s.output = {8, 24};
        s.longFraction = 0.25;
        s.longPrompt = {64, 128};
        s.longOutput = {16, 32};
        return s;
    }();
    return scenario;
}

const ScenarioSpec *
scenarioByName(const std::string &name)
{
    for (const ScenarioSpec &s : builtinScenarios())
        if (s.name == name)
            return &s;
    if (name == overloadScenario().name)
        return &overloadScenario();
    return nullptr;
}

} // namespace figlut::bench
