/**
 * @file
 * Seeded arrival-trace generation for the serving load harness.
 *
 * A trace is a sorted sequence of request arrivals with prompt/output
 * token lengths, fully determined by (scenario, count, seed) — the
 * same trace drives the measured serve::Engine run and the simulated
 * sim::replayTrace() run, which is what makes the measured-vs-
 * simulated latency comparison apples-to-apples.
 *
 * Two arrival processes:
 *  - Poisson: independent exponential inter-arrival gaps at ratePerS.
 *  - Bursty: burst epochs arrive as a Poisson process at
 *    ratePerS / burstSize, and each epoch releases burstSize requests
 *    spaced burstJitterS apart — same mean rate, heavy short-range
 *    clustering (the queue/shed stress case).
 *
 * Lengths are uniform over inclusive ranges; a scenario with
 * longFraction > 0 mixes a second (long-document) range in with that
 * probability per request — the "mixed" traffic class.
 */

#ifndef FIGLUT_BENCH_LOAD_TRACE_H
#define FIGLUT_BENCH_LOAD_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace figlut::bench {

/** One generated arrival. */
struct TraceRequest
{
    double arrivalS = 0.0;        ///< seconds from trace start, sorted
    std::size_t promptTokens = 0; ///< synthetic prompt KV length
    std::size_t outputTokens = 1; ///< decode budget, always >= 1
    std::uint64_t seed = 0;       ///< per-request synthetic-input seed
};

/** How arrivals are spaced in time. */
enum class ArrivalKind
{
    Poisson, ///< independent exponential gaps
    Bursty,  ///< Poisson burst epochs of burstSize back-to-back sends
};

/** Inclusive token-count range, drawn uniformly. */
struct LengthRange
{
    std::size_t lo = 1;
    std::size_t hi = 1;
};

/** A named traffic scenario: arrival process + length distributions. */
struct ScenarioSpec
{
    std::string name;
    ArrivalKind arrivals = ArrivalKind::Poisson;
    /** Mean request rate in requests/second (both arrival kinds). */
    double ratePerS = 32.0;
    /** Bursty only: requests released per burst epoch. */
    std::size_t burstSize = 8;
    /** Bursty only: spacing between requests inside one burst. */
    double burstJitterS = 5e-4;
    LengthRange prompt{8, 32};
    LengthRange output{4, 16};
    /** Probability a request draws from the long ranges instead. */
    double longFraction = 0.0;
    LengthRange longPrompt{96, 160};
    LengthRange longOutput{24, 48};
};

/**
 * Generate `count` arrivals for the scenario, deterministic in
 * (scenario, count, seed). Arrivals are sorted (nondecreasing), every
 * outputTokens >= 1, and each request carries its own derived seed.
 */
std::vector<TraceRequest> generateTrace(const ScenarioSpec &scenario,
                                        std::size_t count,
                                        std::uint64_t seed);

/**
 * The built-in scenario set the harness (and CI's load smoke) sweeps:
 * poisson-short-chat, bursty-short-chat, mixed-long-doc. The overload
 * scenario is deliberately *not* in this sweep — it is its own mode
 * (a KV-budget pressure sweep), selected by name.
 */
const std::vector<ScenarioSpec> &builtinScenarios();

/**
 * The memory-governance stress scenario: bursty arrivals with a long
 * tail, run by the harness as a KV-budget sweep (see the `overload`
 * scenario of bench/serving_load) instead of a plain latency run.
 */
const ScenarioSpec &overloadScenario();

/** Built-in or overload scenario by name; nullptr when unknown. */
const ScenarioSpec *scenarioByName(const std::string &name);

} // namespace figlut::bench

#endif // FIGLUT_BENCH_LOAD_TRACE_H
