/**
 * @file
 * Table III reproduction: relative power of the LUT array, read mux
 * and decoder for FFLUT vs hFFLUT (mu = 4, 32-bit entries),
 * normalized to the FFLUT LUT (FF array) power.
 */

#include <iostream>

#include "bench_util.h"
#include "figlut/figlut.h"

using namespace figlut;

int
main()
{
    bench::banner("Table III",
                  "Relative power: LUT vs MUX vs decoder "
                  "(FFLUT / hFFLUT, mu=4)");

    const auto &tech = TechParams::default28nm();
    LutConfig cfg;
    cfg.mu = 4;
    cfg.valueBits = 32;
    cfg.fanout = 1;

    const auto full = lutPower(LutImpl::FFLUT, cfg, tech);
    const auto half = lutPower(LutImpl::HFFLUT, cfg, tech);
    const double base = full.holdFj; // normalize by FFLUT's LUT power

    TextTable table({"Impl", "LUT", "MUX", "Decoder", "MUX+Decoder"});
    auto csv = bench::openCsv(
        "table3.csv", {"impl", "lut", "mux", "decoder", "mux_decoder"});

    auto add = [&](const char *name, const LutPowerBreakdown &p) {
        table.addRow({name, TextTable::num(p.holdFj / base, 3),
                      TextTable::num(p.readFj / base, 3),
                      TextTable::num(p.decoderFj / base, 3),
                      TextTable::num((p.readFj + p.decoderFj) / base,
                                     3)});
        csv->addRow({name, TextTable::num(p.holdFj / base, 5),
                     TextTable::num(p.readFj / base, 5),
                     TextTable::num(p.decoderFj / base, 5),
                     TextTable::num((p.readFj + p.decoderFj) / base,
                                    5)});
    };
    add("FFLUT", full);
    add("hFFLUT", half);
    std::cout << table.render();

    std::cout << "\npaper reference: FFLUT 1.000/0.003/0.000/0.003; "
                 "hFFLUT 0.494/0.002/0.003/0.005\n"
              << "claim check: hFFLUT halves LUT power ("
              << TextTable::num(half.holdFj / base, 3)
              << ") while decode overhead stays trivial ("
              << TextTable::num((half.readFj + half.decoderFj) / base, 3)
              << ")\n";
    return 0;
}
