/**
 * @file
 * Fig. 2 / Section II-C motivation: bank conflicts in banked
 * shared-memory LUTs (GPU LUT-GEMM) vs the conflict-free FFLUT.
 * Measures the read-phase serialization factor for random weight
 * patterns across bank counts and table sizes.
 */

#include <iostream>

#include "bench_util.h"
#include "figlut/figlut.h"

using namespace figlut;

int
main()
{
    bench::banner("Fig. 2 (motivation)",
                  "Banked-LUT serialization vs conflict-free FFLUT");

    Rng rng(Rng::kDefaultSeed);
    const std::size_t batches = 20000;

    TextTable table({"mu", "banks", "threads", "mean slowdown",
                     "worst batch", "FFLUT"});
    auto csv = bench::openCsv(
        "bank_conflict.csv",
        {"mu", "banks", "threads", "slowdown", "worst"});

    for (const int mu : {2, 4, 8}) {
        for (const int banks : {8, 16, 32}) {
            BankedLutConfig cfg;
            cfg.mu = mu;
            cfg.banks = banks;
            cfg.threads = 32;
            const auto stats = simulateRandomReads(rng, cfg, batches);
            table.addRow({std::to_string(mu), std::to_string(banks),
                          std::to_string(cfg.threads),
                          TextTable::ratio(stats.slowdown(), 2),
                          std::to_string(stats.worstBatch), "1.00x"});
            csv->addRow({std::to_string(mu), std::to_string(banks),
                         std::to_string(cfg.threads),
                         TextTable::num(stats.slowdown(), 4),
                         std::to_string(stats.worstBatch)});
        }
    }
    std::cout << table.render();

    // Construction phase: conflict-free by layout, as the paper notes.
    BankedLutConfig cfg;
    const auto ctor = simulateConstructionWrites(cfg, batches);
    std::cout << "\nLUT construction phase slowdown: "
              << TextTable::ratio(ctor.slowdown(), 2)
              << " (conflict-free by layout, matching the paper)\n"
              << "LUT read phase with random weight keys serializes "
                 "2-4x on banked memory;\nthe FFLUT's per-RAC mux "
                 "trees read concurrently every cycle (1.00x) — the "
                 "architectural\nmotivation for Section III-C.\n";
    return 0;
}
