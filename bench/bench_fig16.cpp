/**
 * @file
 * Fig. 16 reproduction: TOPS/W of the engines for sub-4-bit weights
 * (Q2/Q3/Q4) across the OPT family, normalized to FPE.
 */

#include <iostream>

#include "bench_util.h"
#include "figlut/figlut.h"

using namespace figlut;

namespace {

double
topsPerWattFor(EngineKind e, int q, const OptConfig &model)
{
    HwConfig hw;
    hw.engine = e;
    double ops = 0.0, joules = 0.0;
    for (const auto &shape : decodeStepGemms(model, 32, q)) {
        const auto r = simulateGemm(hw, shape);
        ops += shape.ops();
        joules += r.energy.totalJoules();
    }
    return ops / joules / 1e12;
}

} // namespace

int
main()
{
    bench::banner("Fig. 16",
                  "TOPS/W for Q2/Q3/Q4 across OPT models, "
                  "normalized to FPE");

    auto csv = bench::openCsv(
        "fig16.csv", {"q", "model", "engine", "rel_tops_w"});

    double q3_figlut_over_figna = 0.0;
    for (const int q : {2, 3, 4}) {
        std::cout << "\n--- Q" << q << " ---\n";
        TextTable table({"model", "FPE", "iFPU", "FIGNA", "FIGLUT-F",
                         "FIGLUT-I"});
        for (const auto &model : optFamily()) {
            const double base =
                topsPerWattFor(EngineKind::FPE, q, model);
            std::vector<std::string> row = {model.name};
            double figna = 0.0, figlut = 0.0;
            for (const auto e : kAllEngines) {
                const double rel = topsPerWattFor(e, q, model) / base;
                if (e == EngineKind::FIGNA)
                    figna = rel;
                if (e == EngineKind::FIGLUT_I)
                    figlut = rel;
                row.push_back(TextTable::ratio(rel, 2));
                csv->addRow({std::to_string(q), model.name,
                             engineName(e), TextTable::num(rel, 4)});
            }
            if (q == 3 && model.name == "OPT-6.7B")
                q3_figlut_over_figna = figlut / figna;
            table.addRow(row);
        }
        std::cout << table.render();
    }

    std::cout << "\nheadline check (paper): FIGLUT-Q3 is 59% more "
                 "efficient than FIGNA-Q3 on OPT-6.7B; measured: +"
              << TextTable::num(100.0 * (q3_figlut_over_figna - 1.0), 0)
              << "%\n"
              << "FIGLUT-I tops every column; the advantage widens as "
                 "q shrinks (Q2 strongest), as in the paper.\n";
    return 0;
}
