/**
 * @file
 * Fig. 17 reproduction: TOPS/W vs perplexity for mixed-precision
 * OPT-6.7B inference — FIGLUT with ShiftAddLLM-style BCQ at
 * Q2/Q2.4/Q3/Q4 against FIGNA with OPTQ-style uniform quantization at
 * Q2/Q3/Q4.
 *
 * Perplexity is the proxy of DESIGN.md #3: our quantizers' measured
 * error mapped through a power law anchored at the published BCQ4 and
 * BCQ3 points (the uniform curve uses the same map, so its blow-up at
 * 2 bits is a measured property of RTN error, not an assumption).
 */

#include <cmath>
#include <iostream>
#include <sstream>

#include "bench_util.h"
#include "figlut/figlut.h"

using namespace figlut;

namespace {

struct QuantErr
{
    double bcq[9] = {};
    double rtn[9] = {};
};

/** Measure quantizer NRMSE at each bit width on OPT-6.7B-like rows. */
QuantErr
measureErrors(Rng &rng)
{
    QuantErr err;
    const auto w = syntheticWeights(64, 1024, rng);
    double wsq = 0.0;
    for (const double v : w)
        wsq += v * v;
    const double rms = std::sqrt(wsq / static_cast<double>(w.size()));
    for (int q = 2; q <= 4; ++q) {
        BcqConfig b;
        b.bits = q;
        b.useOffset = true;
        err.bcq[q] = std::sqrt(bcqMse(w, quantizeBcq(w, b))) / rms;
        RtnConfig r;
        r.bits = q;
        err.rtn[q] = std::sqrt(rtnMse(w, quantizeRtn(w, r))) / rms;
    }
    return err;
}

/** TOPS/W of a (possibly fractional) precision via layer mixing. */
double
topsPerWatt(EngineKind e, double bits, const OptConfig &model)
{
    HwConfig hw;
    hw.engine = e;
    const int lo = static_cast<int>(bits);
    const int hi = lo + (bits > lo ? 1 : 0);
    const double frac_hi = bits - lo;

    double ops = 0.0, joules = 0.0;
    for (const int q : {lo, hi}) {
        if (q == lo && frac_hi >= 1.0)
            continue;
        const double share = q == lo ? 1.0 - frac_hi : frac_hi;
        if (share <= 0.0)
            continue;
        for (const auto &shape : decodeStepGemms(model, 32, q)) {
            ops += share * shape.ops();
            joules +=
                share * simulateGemm(hw, shape).energy.totalJoules();
        }
    }
    return ops / joules / 1e12;
}

} // namespace

int
main()
{
    bench::banner("Fig. 17",
                  "TOPS/W and perplexity, mixed-precision OPT-6.7B");

    Rng rng(Rng::kDefaultSeed);
    const auto &model = optByName("OPT-6.7B");
    const auto &ref = pplReference(model.name);
    const auto err = measureErrors(rng);

    // Proxy anchored at the published BCQ4/BCQ3 points.
    const PplProxy proxy(ref.fp16, err.bcq[4], ref.bcq4, err.bcq[3],
                         ref.bcq3);

    TextTable table(
        {"config", "avg bits", "TOPS/W", "proxy ppl", "note"});
    auto csv = bench::openCsv(
        "fig17.csv", {"engine", "bits", "tops_w", "ppl"});

    double figna_q3_topsw = 0.0, figlut_q24_topsw = 0.0;

    // FIGNA with uniform (OPTQ-style) quantization at 2/3/4 bits.
    for (const int q : {2, 3, 4}) {
        const double tw =
            topsPerWatt(EngineKind::FIGNA,
                        static_cast<double>(q), model);
        if (q == 3)
            figna_q3_topsw = tw;
        const double ppl = proxy.predict(err.rtn[q]);
        table.addRow({"FIGNA-Q" + std::to_string(q),
                      std::to_string(q), TextTable::num(tw, 2),
                      TextTable::num(ppl, 2),
                      q == 2 ? "uniform 2-bit collapses" : ""});
        csv->addRow({"FIGNA", std::to_string(q), TextTable::num(tw, 4),
                     TextTable::num(ppl, 3)});
    }
    table.addRule();

    // FIGLUT with BCQ at 2 / 2.4 / 3 / 4 average bits.
    for (const double bits : {2.0, 2.4, 3.0, 4.0}) {
        const double tw =
            topsPerWatt(EngineKind::FIGLUT_I, bits, model);
        // Mixed-precision error interpolates between plane counts.
        const int lo = static_cast<int>(bits);
        const double frac = bits - lo;
        const double e =
            frac > 0.0
                ? (1.0 - frac) * err.bcq[lo] + frac * err.bcq[lo + 1]
                : err.bcq[lo];
        const double ppl = proxy.predict(e);
        if (bits == 2.4)
            figlut_q24_topsw = tw;
        std::ostringstream name;
        name << "FIGLUT-Q" << bits;
        table.addRow({name.str(), TextTable::num(bits, 1),
                      TextTable::num(tw, 2), TextTable::num(ppl, 2),
                      bits == 2.4 ? "ShiftAddLLM mixed precision"
                                  : ""});
        csv->addRow({"FIGLUT", TextTable::num(bits, 1),
                     TextTable::num(tw, 4), TextTable::num(ppl, 3)});
    }
    std::cout << table.render();

    std::cout << "\nheadline checks (paper):\n"
              << "  FIGLUT-Q2.4 vs FIGNA-Q3 TOPS/W: 1.98x -> "
              << TextTable::ratio(figlut_q24_topsw / figna_q3_topsw)
              << " (at comparable proxy perplexity, 20% smaller "
                 "weights)\n"
              << "  FIGLUT 2-bit BCQ keeps perplexity stable while "
                 "uniform 2-bit collapses.\n";
    return 0;
}
