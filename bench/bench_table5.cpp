/**
 * @file
 * Table V reproduction: throughput, power and energy efficiency of
 * the accelerators on OPT-6.7B decode (batch 32, FP16-Q4).
 *
 * GPU rows (A100/H100/LUT-GEMM) are quoted from the paper — they are
 * empirical measurements we cannot reproduce offline (DESIGN.md #4).
 * Accelerator rows are simulated. Absolute numbers differ from the
 * paper (analytic 28nm model vs synthesis); the ordering and ratios
 * are the reproduced result.
 */

#include <iostream>

#include "bench_util.h"
#include "figlut/figlut.h"

using namespace figlut;

int
main()
{
    bench::banner("Table V",
                  "Hardware comparison on OPT-6.7B (batch 32, "
                  "FP16-Q4)");

    const auto &model = optByName("OPT-6.7B");
    WorkloadOptions opts;
    opts.batch = 32;
    opts.weightBits = 4;
    opts.contextLen = 512;

    TextTable table({"Hardware", "Format", "TOPS", "Power (W)",
                     "TOPS/W", "source"});
    auto csv = bench::openCsv(
        "table5.csv",
        {"hardware", "tops", "power_w", "tops_per_w", "source"});

    // Paper-quoted GPU rows.
    struct QuotedRow
    {
        const char *name;
        const char *fmt;
        double tops, watts, topsw;
    };
    const QuotedRow quoted[] = {
        {"A100 (paper)", "FP16-FP16", 40.27, 192.0, 0.21},
        {"A100+LUT-GEMM (paper)", "FP16-Q4", 1.85, 208.0, 0.01},
        {"H100 (paper)", "FP16-FP16", 62.08, 279.0, 0.22},
        {"iFPU (paper)", "FP16-Q4", 0.14, 0.67, 0.21},
        {"FIGNA (paper)", "FP16-Q4", 0.14, 0.41, 0.33},
        {"FIGLUT (paper)", "FP16-Q4", 0.14, 0.29, 0.47},
    };
    for (const auto &row : quoted) {
        table.addRow({row.name, row.fmt, TextTable::num(row.tops, 2),
                      TextTable::num(row.watts, 2),
                      TextTable::num(row.topsw, 2), "quoted"});
        csv->addRow({row.name, TextTable::num(row.tops, 2),
                     TextTable::num(row.watts, 2),
                     TextTable::num(row.topsw, 2), "quoted"});
    }
    table.addRule();

    double figna_topsw = 0.0, figlut_topsw = 0.0, ifpu_topsw = 0.0;
    for (const auto e : {EngineKind::IFPU, EngineKind::FIGNA,
                         EngineKind::FIGLUT_I}) {
        HwConfig hw;
        hw.engine = e;
        Accelerator acc(hw);
        const auto r = acc.runWorkload(decodeStepWorkload(model, opts));
        if (e == EngineKind::FIGNA)
            figna_topsw = r.topsPerWatt;
        if (e == EngineKind::FIGLUT_I)
            figlut_topsw = r.topsPerWatt;
        if (e == EngineKind::IFPU)
            ifpu_topsw = r.topsPerWatt;
        table.addRow({engineName(e) + " (sim)", "FP16-Q4",
                      TextTable::num(r.effTops, 3),
                      TextTable::num(r.powerW, 3),
                      TextTable::num(r.topsPerWatt, 2), "simulated"});
        csv->addRow({engineName(e), TextTable::num(r.effTops, 4),
                     TextTable::num(r.powerW, 4),
                     TextTable::num(r.topsPerWatt, 4), "simulated"});
    }
    std::cout << table.render();

    std::cout << "\nratio checks (paper -> measured):\n"
              << "  FIGLUT/FIGNA TOPS/W: 1.42x -> "
              << TextTable::ratio(figlut_topsw / figna_topsw) << "\n"
              << "  FIGNA/iFPU  TOPS/W: 1.57x -> "
              << TextTable::ratio(figna_topsw / ifpu_topsw) << "\n"
              << "ordering FIGLUT > FIGNA > iFPU: "
              << ((figlut_topsw > figna_topsw &&
                   figna_topsw > ifpu_topsw)
                      ? "reproduced"
                      : "NOT reproduced")
              << "\n";
    return 0;
}
