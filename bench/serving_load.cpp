/**
 * @file
 * Trace-driven serving load harness: seeded Poisson/bursty arrival
 * traces with prompt/output-length distributions, driven through a
 * real serve::Engine (submitter thread + step loop) AND replayed on
 * sim::Accelerator in virtual time — TTFT and inter-token latency
 * p50/p95/p99, queue depth, shed/evict/deadline-miss rates, and
 * goodput under a configurable SLO, measured and simulated side by
 * side per scenario.
 *
 * The `overload` scenario is the memory-governance stress mode: the
 * harness computes the trace's peak KV block demand and sweeps the
 * engine's kvBudgetBytes through {100%, 60%, 35%} of it (records
 * overload-b100/-b60/-b35), reporting how the degradation policy
 * (load-shed or evict-and-requeue), deadlines, and injected
 * allocation faults reshape the outcome mix. Both drivers run the
 * same budget/policy/injector, so the shed/evict/deadline schedules
 * stay measured-vs-simulated comparable.
 *
 * The `longdoc-ttft` pseudo-scenario is the honest-TTFT drill: three
 * runs at pinned prompt lengths (longdoc-p16/-p64/-p160) whose
 * records must show median TTFT strictly above both the queue wait
 * and the per-token latency, growing with prompt length, in the
 * measured and simulated columns alike (check_bench_json.py enforces
 * it). Pairs with --prefill-chunk, which bounds the prompt tokens
 * one fused step may compute (EngineOptions::prefillChunkTokens,
 * forwarded to the replay).
 *
 * Outputs:
 *  - console tables (one row per scenario per source),
 *  - --json <path>: BENCH_serving_load-style records via bench_util.h
 *    (one record per scenario, measured metrics + sim_* counterparts
 *    + config echoes; schema-checked by scripts/check_bench_json.py),
 *  - --csv <path>: per-request log (measured + simulated latencies),
 *  - --queue-csv <path>: per-step queue-depth/duration time series.
 *
 * Run `serving_load --help` for every flag. `--smoke` is the CI
 * preset: a short deterministic trace (fixed seed) over all three
 * built-in scenarios on a tiny model, ~seconds of wall clock.
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "figlut/figlut.h"
#include "load/driver.h"
#include "load/latency.h"
#include "load/trace.h"

using namespace figlut;
using namespace figlut::bench;

namespace {

struct CliOptions
{
    std::string scenario = "all";
    std::size_t requests = 48;
    double ratePerS = 0.0; ///< 0 = scenario default
    std::uint64_t seed = 42;
    std::size_t maxBatch = 8;
    std::size_t maxQueue = 16;
    std::size_t hidden = 128;
    std::size_t layers = 2;
    std::size_t heads = 4;
    std::size_t ffn = 512;
    int weightBits = 4;
    int threads = 0;
    /** Shard counts to sweep (each value one job per scenario; 0 =
     *  auto: FIGLUT_SHARDS, else unsharded). */
    std::vector<int> shards = {0};
    LutGemmBackend backend = LutGemmBackend::Simd;
    double kvBudgetMb = 0.0; ///< 0 = unbounded (non-overload runs)
    std::size_t blockTokens = 16;
    std::size_t prefillChunk = 0; ///< per-step prefill budget (0 = all)
    std::string policy = "shed-newest";
    double deadlineMs = 0.0; ///< 0 = no deadline
    std::size_t faultEvery = 0; ///< 0 = no injected faults
    SloSpec slo;
    std::string jsonPath = "bench_out/BENCH_serving_load.json";
    std::string csvName = "serving_load_requests.csv";
    std::string queueCsvName = "serving_load_queue.csv";
};

void
printUsage()
{
    std::cout
        << "serving_load: trace-driven serving latency harness\n"
           "  --scenario NAME   poisson-short-chat | bursty-short-chat"
           " | mixed-long-doc | overload | longdoc-ttft | all\n"
           "                    (default all; overload = KV-budget "
           "pressure sweep, longdoc-ttft =\n"
           "                    pinned-prompt-length prefill sweep; "
           "neither is in all)\n"
           "  --requests N      arrivals per scenario (default 48)\n"
           "  --rate R          mean arrivals/s (0 = scenario default)\n"
           "  --seed S          trace seed (default 42)\n"
           "  --max-batch N     engine fused-batch bound (default 8)\n"
           "  --max-queue N     engine wait-queue bound (default 16)\n"
           "  --hidden/--layers/--heads/--ffn  model shape "
           "(default 128/2/4/512)\n"
           "  --weight-bits Q   quantized weight width (default 4)\n"
           "  --threads T       GEMM workers (0 = hw concurrency)\n"
           "  --shards LIST     comma-separated worker-group counts to "
           "sweep, e.g. 1,2,4\n"
           "                    (default 0 = auto: FIGLUT_SHARDS, else "
           "unsharded; counts > 1\n"
           "                    suffix the record name with -s<N>)\n"
           "  --backend B       reference | threaded | packed | simd "
           "(default simd)\n"
           "  --kv-budget-mb X  KV arena byte budget in MiB (0 = "
           "unbounded; overload\n"
           "                    sweeps its own computed budgets)\n"
           "  --block-tokens B  KV arena paging granularity "
           "(default 16)\n"
           "  --prefill-chunk N per-step prompt-prefill token budget "
           "across the batch\n"
           "                    (0 = whole remaining prompts in one "
           "step)\n"
           "  --policy P        shed-newest | evict-idle "
           "(default shed-newest)\n"
           "  --deadline-ms X   per-request deadline (0 = none)\n"
           "  --fault-every N   fail every Nth KV block allocation "
           "(0 = none)\n"
           "  --slo-ttft-ms X   TTFT bound of the goodput SLO "
           "(default 200)\n"
           "  --slo-itl-ms X    mean-ITL bound of the goodput SLO "
           "(default 50)\n"
           "  --json PATH       bench-record output "
           "(default bench_out/BENCH_serving_load.json)\n"
           "  --csv NAME        per-request log under bench_out/ "
           "(default serving_load_requests.csv)\n"
           "  --queue-csv NAME  per-step queue series under bench_out/"
           " (default serving_load_queue.csv)\n"
           "  --smoke           CI preset: tiny model, 10 requests per"
           " scenario, high rate\n";
}

bool
parseArgs(int argc, char **argv, CliOptions &cli)
{
    const auto needValue = [&](int i) {
        if (i + 1 < argc)
            return true;
        std::cerr << "missing value for " << argv[i] << "\n";
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--help" || flag == "-h") {
            printUsage();
            std::exit(0);
        } else if (flag == "--smoke") {
            cli.requests = 10;
            cli.ratePerS = 200.0;
            cli.hidden = 64;
            cli.layers = 1;
            cli.heads = 2;
            cli.ffn = 256;
            cli.maxBatch = 4;
            cli.maxQueue = 8;
            cli.weightBits = 2;
        } else if (!needValue(i)) {
            return false;
        } else if (flag == "--scenario") {
            cli.scenario = argv[++i];
        } else if (flag == "--requests") {
            cli.requests =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (flag == "--rate") {
            cli.ratePerS = std::atof(argv[++i]);
        } else if (flag == "--seed") {
            cli.seed =
                static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (flag == "--max-batch") {
            cli.maxBatch =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (flag == "--max-queue") {
            cli.maxQueue =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (flag == "--hidden") {
            cli.hidden =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (flag == "--layers") {
            cli.layers =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (flag == "--heads") {
            cli.heads =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (flag == "--ffn") {
            cli.ffn = static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (flag == "--weight-bits") {
            cli.weightBits = std::atoi(argv[++i]);
        } else if (flag == "--threads") {
            cli.threads = std::atoi(argv[++i]);
        } else if (flag == "--shards") {
            cli.shards.clear();
            std::string list = argv[++i];
            for (std::size_t pos = 0; pos <= list.size();) {
                std::size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                const std::string item = list.substr(pos, comma - pos);
                if (item.empty() || item.find_first_not_of("0123456789") !=
                                        std::string::npos) {
                    std::cerr << "bad --shards entry: '" << item
                              << "' (want e.g. 1,2,4)\n";
                    return false;
                }
                cli.shards.push_back(std::atoi(item.c_str()));
                pos = comma + 1;
            }
        } else if (flag == "--backend") {
            if (!parseLutGemmBackend(argv[++i], &cli.backend)) {
                std::cerr << "unknown backend: " << argv[i]
                          << " (want reference | threaded | packed |"
                             " simd)\n";
                return false;
            }
        } else if (flag == "--kv-budget-mb") {
            cli.kvBudgetMb = std::atof(argv[++i]);
        } else if (flag == "--block-tokens") {
            cli.blockTokens =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (flag == "--prefill-chunk") {
            cli.prefillChunk =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (flag == "--policy") {
            cli.policy = argv[++i];
        } else if (flag == "--deadline-ms") {
            cli.deadlineMs = std::atof(argv[++i]);
        } else if (flag == "--fault-every") {
            cli.faultEvery =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (flag == "--slo-ttft-ms") {
            cli.slo.ttftMs = std::atof(argv[++i]);
        } else if (flag == "--slo-itl-ms") {
            cli.slo.itlMs = std::atof(argv[++i]);
        } else if (flag == "--json") {
            cli.jsonPath = argv[++i];
        } else if (flag == "--csv") {
            cli.csvName = argv[++i];
        } else if (flag == "--queue-csv") {
            cli.queueCsvName = argv[++i];
        } else {
            std::cerr << "unknown flag: " << flag << "\n";
            printUsage();
            return false;
        }
    }
    return true;
}

std::string
pct(const LatencySummary &s)
{
    return TextTable::num(s.p50, 2) + " / " + TextTable::num(s.p95, 2) +
           " / " + TextTable::num(s.p99, 2);
}

void
addSummaryRow(TextTable &table, const std::string &scenario,
              const std::string &source, const LoadSummary &summary)
{
    table.addRow({scenario, source, pct(summary.ttftMs),
                  pct(summary.itlMs),
                  TextTable::num(summary.shedRate * 100.0, 1),
                  TextTable::num(summary.evictRate * 100.0, 1),
                  TextTable::num(summary.deadlineMissRate * 100.0, 1),
                  TextTable::num(summary.queueDepthMean, 2) + " / " +
                      TextTable::num(summary.queueDepthMax, 0),
                  TextTable::num(summary.tokensPerS, 1),
                  TextTable::num(summary.goodputTokPerS, 1)});
}

double
meanItlMs(const RequestOutcome &outcome)
{
    if (outcome.tokens() < 2)
        return 0.0;
    return (outcome.tokenTimesS.back() - outcome.tokenTimesS.front()) *
           1e3 / static_cast<double>(outcome.tokens() - 1);
}

/** One harness run: a scenario at one KV budget, under one record
 *  name (the overload sweep expands to three of these). */
struct SweepJob
{
    ScenarioSpec scenario;
    std::string label; ///< record suffix ("overload-b60", ...)
    std::size_t kvBudgetBytes = 0;
    /** ExecOptions::shards of this job (0 = auto). */
    int shards = 0;
};

/**
 * Peak concurrent KV block demand of the trace: the maxBatch largest
 * per-request block footprints (prompt + full decode budget, rounded
 * up to whole blocks, across every layer) summed — the budget a run
 * would need for the worst admissible batch to fit with no
 * degradation at all.
 */
std::size_t
peakDemandBlocks(const std::vector<TraceRequest> &trace,
                 std::size_t blockTokens, std::size_t layers,
                 std::size_t maxBatch)
{
    std::vector<std::size_t> perRequest;
    perRequest.reserve(trace.size());
    for (const TraceRequest &r : trace) {
        const std::size_t tokens = r.promptTokens + r.outputTokens;
        perRequest.push_back(
            (tokens + blockTokens - 1) / blockTokens * layers);
    }
    std::sort(perRequest.begin(), perRequest.end(),
              std::greater<std::size_t>());
    std::size_t blocks = 0;
    for (std::size_t i = 0; i < perRequest.size() && i < maxBatch; ++i)
        blocks += perRequest[i];
    return blocks;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    if (!parseArgs(argc, argv, cli))
        return 1;

    serve::DegradationPolicy policy;
    if (cli.policy == "shed-newest") {
        policy = serve::DegradationPolicy::ShedNewest;
    } else if (cli.policy == "evict-idle") {
        policy = serve::DegradationPolicy::EvictLongestIdle;
    } else {
        std::cerr << "unknown policy: " << cli.policy
                  << " (want shed-newest or evict-idle)\n";
        return 1;
    }

    std::vector<ScenarioSpec> scenarios;
    if (cli.scenario == "all") {
        scenarios = builtinScenarios();
    } else if (cli.scenario == "longdoc-ttft") {
        // The prefill-cost sweep: pinned prompt lengths isolate the
        // prompt-compute contribution to TTFT — across these records
        // TTFT must grow with the prompt while queue wait and ITL stay
        // comparable (scripts/check_bench_json.py checks the ordering
        // on each record).
        for (const std::size_t prompt :
             {std::size_t{16}, std::size_t{64}, std::size_t{160}}) {
            ScenarioSpec spec;
            spec.name = "longdoc-p" + std::to_string(prompt);
            spec.arrivals = ArrivalKind::Poisson;
            spec.ratePerS = 24.0;
            spec.prompt = {prompt, prompt};
            spec.output = {8, 16};
            scenarios.push_back(std::move(spec));
        }
    } else {
        const ScenarioSpec *spec = scenarioByName(cli.scenario);
        if (spec == nullptr) {
            std::cerr << "unknown scenario: " << cli.scenario << "\n";
            return 1;
        }
        scenarios.push_back(*spec);
    }

    LoadConfig config;
    config.model.name = "OPT-load";
    config.model.hidden = cli.hidden;
    config.model.layers = cli.layers;
    config.model.heads = cli.heads;
    config.model.ffn = cli.ffn;
    config.engine.model.weightBits = cli.weightBits;
    config.engine.model.bcqIterations = 1;
    config.engine.exec.threads = cli.threads;
    config.engine.exec.backend = cli.backend;
    config.engine.maxBatch = cli.maxBatch;
    config.engine.maxQueue = cli.maxQueue;
    config.engine.kvBlockTokens = cli.blockTokens;
    config.engine.prefillChunkTokens = cli.prefillChunk;
    config.engine.policy = policy;
    config.deadlineS = cli.deadlineMs / 1e3;
    config.hw.engine = EngineKind::FIGLUT_I;

    std::cout << "gemm backend: " << lutGemmBackendName(cli.backend)
              << ", simd isa: " << simdIsaName(activeSimdIsa())
              << "\n";

    // One pure injector shared by the engine and the replay, so both
    // see the identical fault/skew schedule (see FaultInjector).
    CountingFaultInjector injector(cli.faultEvery, 0.0);
    if (cli.faultEvery > 0)
        config.engine.faults = &injector;

    const std::size_t blockBytes =
        cli.blockTokens * 2 * cli.hidden * sizeof(double);
    const std::size_t budgetFloor = blockBytes * cli.layers;

    // Expand scenarios into runnable jobs: the overload scenario
    // becomes a budget sweep at {100%, 60%, 35%} of the trace's peak
    // block demand; everything else runs once at --kv-budget-mb.
    std::vector<SweepJob> jobs;
    for (const ScenarioSpec &base : scenarios) {
        ScenarioSpec scenario = base;
        if (cli.ratePerS > 0.0)
            scenario.ratePerS = cli.ratePerS;
        if (scenario.name == overloadScenario().name) {
            const auto trace =
                generateTrace(scenario, cli.requests, cli.seed);
            const std::size_t peak = peakDemandBlocks(
                trace, cli.blockTokens, cli.layers, cli.maxBatch);
            const struct
            {
                double fraction;
                const char *tag;
            } points[] = {{1.0, "b100"}, {0.6, "b60"}, {0.35, "b35"}};
            for (const auto &point : points) {
                const auto blocks = static_cast<std::size_t>(
                    std::llround(point.fraction *
                                 static_cast<double>(peak)));
                SweepJob job;
                job.scenario = scenario;
                job.label = scenario.name + "-" + point.tag;
                job.kvBudgetBytes =
                    std::max(budgetFloor, blocks * blockBytes);
                jobs.push_back(std::move(job));
            }
        } else {
            SweepJob job;
            job.scenario = scenario;
            job.label = scenario.name;
            job.kvBudgetBytes = static_cast<std::size_t>(
                cli.kvBudgetMb * 1024.0 * 1024.0);
            if (job.kvBudgetBytes > 0)
                job.kvBudgetBytes =
                    std::max(budgetFloor, job.kvBudgetBytes);
            jobs.push_back(std::move(job));
        }
    }

    // Cross with the shard sweep: one job per (scenario, shard count).
    // Resolved counts > 1 suffix the record name (-s2, -s4, ...) so a
    // sweep's records coexist in one artifact; the unsharded record
    // keeps its unsuffixed name for trajectory continuity.
    {
        std::vector<SweepJob> crossed;
        crossed.reserve(jobs.size() * cli.shards.size());
        for (const SweepJob &base : jobs) {
            for (const int shards : cli.shards) {
                SweepJob job = base;
                job.shards = shards;
                const int resolved = resolveShardCount(shards);
                if (resolved > 1)
                    job.label += "-s" + std::to_string(resolved);
                crossed.push_back(std::move(job));
            }
        }
        jobs = std::move(crossed);
    }

    banner("serving_load",
           "trace-driven serving latency vs the simulated accelerator");
    std::cout << "model " << cli.hidden << "x" << cli.layers << "L q"
              << cli.weightBits << ", maxBatch " << cli.maxBatch
              << ", maxQueue " << cli.maxQueue << ", seed " << cli.seed
              << ", SLO ttft<=" << cli.slo.ttftMs << "ms itl<="
              << cli.slo.itlMs << "ms\n"
              << "governance: policy "
              << serve::degradationPolicyName(policy)
              << ", blockTokens " << cli.blockTokens
              << ", prefillChunk " << cli.prefillChunk << ", deadline "
              << cli.deadlineMs << "ms, fault-every " << cli.faultEvery
              << "\n\n";

    auto requestCsv =
        openCsv(cli.csvName,
                {"scenario", "source", "request", "arrival_s",
                 "prompt_tokens", "output_tokens", "shed",
                 "deadline_miss", "evictions", "queue_ms", "ttft_ms",
                 "mean_itl_ms", "tokens", "slo_met"});
    auto queueCsv = openCsv(cli.queueCsvName,
                            {"scenario", "source", "step",
                             "queue_depth", "step_ms"});

    TextTable table({"scenario", "source", "ttft ms p50/p95/p99",
                     "itl ms p50/p95/p99", "shed %", "evict %",
                     "dl-miss %", "queue mean / max", "tok/s",
                     "goodput tok/s"});
    std::vector<JsonBenchRecord> records;

    const int numaNodes =
        static_cast<int>(detectNumaTopology().nodeCount());

    for (const SweepJob &job : jobs) {
        const ScenarioSpec &scenario = job.scenario;
        config.engine.kvBudgetBytes = job.kvBudgetBytes;
        config.engine.exec.shards = job.shards;
        const int resolvedShards = resolveShardCount(job.shards);
        const auto trace =
            generateTrace(scenario, cli.requests, cli.seed);

        const LoadRun measured = runMeasured(config, trace);
        const LoadRun simulated = runSimulated(config, trace);
        const LoadSummary m = summarizeRun(measured, cli.slo);
        const LoadSummary s = summarizeRun(simulated, cli.slo);

        addSummaryRow(table, job.label, "measured", m);
        addSummaryRow(table, job.label, "simulated", s);

        for (const auto &[source, run] :
             std::vector<std::pair<std::string, const LoadRun *>>{
                 {"measured", &measured}, {"simulated", &simulated}}) {
            for (std::size_t i = 0; i < run->requests.size(); ++i) {
                const RequestOutcome &o = run->requests[i];
                requestCsv->addRow(
                    {job.label, source, std::to_string(i),
                     TextTable::num(o.arrivalS, 6),
                     std::to_string(o.promptTokens),
                     std::to_string(o.outputTokens),
                     o.shed ? "1" : "0", o.deadlineMiss ? "1" : "0",
                     std::to_string(o.evictions),
                     TextTable::num(o.queueS * 1e3, 3),
                     TextTable::num(o.ttftS * 1e3, 3),
                     TextTable::num(meanItlMs(o), 3),
                     std::to_string(o.tokens()),
                     meetsSlo(o, cli.slo) ? "1" : "0"});
            }
            for (std::size_t step = 0; step < run->queueDepth.size();
                 ++step)
                queueCsv->addRow(
                    {job.label, source, std::to_string(step),
                     std::to_string(run->queueDepth[step]),
                     TextTable::num(run->stepSeconds[step] * 1e3, 4)});
        }

        JsonBenchRecord record;
        record.name = "serving_load/" + job.label;
        record.nsPerIter = m.msPerStepMean * 1e6;
        record.tokensPerS = m.tokensPerS;
        record.extra = {
            {"requests", static_cast<double>(cli.requests)},
            {"seed", static_cast<double>(cli.seed)},
            {"rate_per_s", scenario.ratePerS},
            {"max_batch", static_cast<double>(cli.maxBatch)},
            {"max_queue", static_cast<double>(cli.maxQueue)},
            {"hidden", static_cast<double>(cli.hidden)},
            {"layers", static_cast<double>(cli.layers)},
            {"weight_bits", static_cast<double>(cli.weightBits)},
            // Numeric codes (the record schema is all-numbers): see
            // lutGemmBackendCode() and simdIsaCode().
            {"gemm_backend",
             static_cast<double>(lutGemmBackendCode(cli.backend))},
            {"simd_isa",
             static_cast<double>(simdIsaCode(activeSimdIsa()))},
            {"shards", static_cast<double>(resolvedShards)},
            {"numa_nodes", static_cast<double>(numaNodes)},
            {"slo_ttft_ms", cli.slo.ttftMs},
            {"slo_itl_ms", cli.slo.itlMs},
            {"kv_budget_mb", static_cast<double>(job.kvBudgetBytes) /
                                 (1024.0 * 1024.0)},
            {"kv_block_tokens", static_cast<double>(cli.blockTokens)},
            {"prefill_chunk_tokens",
             static_cast<double>(cli.prefillChunk)},
            {"fault_every", static_cast<double>(cli.faultEvery)},
            {"deadline_ms", cli.deadlineMs},
            {"prefill_tokens", static_cast<double>(m.prefillTokens)},
            {"decode_tokens", static_cast<double>(m.decodeTokens)},
            {"queue_ms_p50", m.queueMs.p50},
            {"ttft_ms_p50", m.ttftMs.p50},
            {"ttft_ms_p95", m.ttftMs.p95},
            {"ttft_ms_p99", m.ttftMs.p99},
            {"itl_ms_p50", m.itlMs.p50},
            {"itl_ms_p95", m.itlMs.p95},
            {"itl_ms_p99", m.itlMs.p99},
            {"shed_rate", m.shedRate},
            {"evict_rate", m.evictRate},
            {"deadline_miss_rate", m.deadlineMissRate},
            {"queue_depth_mean", m.queueDepthMean},
            {"queue_depth_max", m.queueDepthMax},
            {"goodput_tok_per_s", m.goodputTokPerS},
            {"ms_per_step_mean", m.msPerStepMean},
            {"sim_prefill_tokens",
             static_cast<double>(s.prefillTokens)},
            {"sim_decode_tokens", static_cast<double>(s.decodeTokens)},
            {"sim_queue_ms_p50", s.queueMs.p50},
            {"sim_ttft_ms_p50", s.ttftMs.p50},
            {"sim_ttft_ms_p95", s.ttftMs.p95},
            {"sim_ttft_ms_p99", s.ttftMs.p99},
            {"sim_itl_ms_p50", s.itlMs.p50},
            {"sim_itl_ms_p95", s.itlMs.p95},
            {"sim_itl_ms_p99", s.itlMs.p99},
            {"sim_shed_rate", s.shedRate},
            {"sim_evict_rate", s.evictRate},
            {"sim_deadline_miss_rate", s.deadlineMissRate},
            {"sim_tokens_per_s", s.tokensPerS},
            {"sim_goodput_tok_per_s", s.goodputTokPerS},
            {"sim_ms_per_step_mean", s.msPerStepMean},
        };
        records.push_back(std::move(record));

        std::cout << job.label << ": " << trace.size()
                  << " arrivals, shards " << resolvedShards
                  << " (" << numaNodes << " NUMA node"
                  << (numaNodes == 1 ? "" : "s") << "), budget "
                  << (job.kvBudgetBytes == 0
                          ? std::string("unbounded")
                          : TextTable::num(
                                static_cast<double>(job.kvBudgetBytes) /
                                    (1024.0 * 1024.0),
                                2) + " MiB")
                  << ", measured " << measured.stepSeconds.size()
                  << " steps / simulated "
                  << simulated.stepSeconds.size() << " steps\n";
    }

    std::cout << "\n" << table.render() << "\n";
    std::cout << "measured = serve::Engine on this host (wall clock); "
                 "simulated = sim::Accelerator replay of the same "
                 "trace\n(identical scheduling by construction — the "
                 "absolute gap is host-vs-modeled-hardware speed; the "
                 "queueing shape is the cross-validation).\n";

    writeBenchJson(cli.jsonPath, records);
    std::cout << "\nwrote " << records.size() << " records to "
              << cli.jsonPath << ", per-request log to bench_out/"
              << cli.csvName << ", queue series to bench_out/"
              << cli.queueCsvName << "\n";
    return 0;
}
