/**
 * @file
 * Fig. 11 reproduction: LUT generator adder accounting. For mu = 4
 * the two-step tree needs 14 additions against the straightforward
 * 24 — the paper's 42% reduction — and the saving grows with mu.
 * Also verifies the generated tables bit-match direct enumeration.
 */

#include <iostream>

#include "bench_util.h"
#include "figlut/figlut.h"

using namespace figlut;

int
main()
{
    bench::banner("Fig. 11", "LUT generator adder counts vs naive");

    TextTable table({"mu", "upper", "lower", "combine", "tree total",
                     "naive", "saving"});
    auto csv = bench::openCsv(
        "fig11.csv", {"mu", "tree_adds", "naive_adds", "saving"});

    for (int mu = 2; mu <= 8; ++mu) {
        const auto s = lutGeneratorAdderCount(mu);
        table.addRow({std::to_string(mu), std::to_string(s.upperAdds),
                      std::to_string(s.lowerAdds),
                      std::to_string(s.combineAdds),
                      std::to_string(s.treeAdds),
                      std::to_string(s.naiveAdds),
                      TextTable::pct(s.savingRatio, 1)});
        csv->addRow({std::to_string(mu), std::to_string(s.treeAdds),
                     std::to_string(s.naiveAdds),
                     TextTable::num(s.savingRatio, 4)});
    }
    std::cout << table.render();

    // Functional spot check: tree output == direct enumeration.
    Rng rng(Rng::kDefaultSeed);
    const LutGenerator gen(4, FpArith::Exact);
    const auto xs = rng.normalVector(4);
    const auto tree = gen.generateHalf(xs);
    const auto direct = HalfLutD::buildDirect(xs, FpArith::Exact);
    bool equal = true;
    for (uint32_t key = 0; key < 16; ++key)
        equal &= tree.value(key) == direct.value(key);

    const auto s4 = lutGeneratorAdderCount(4);
    std::cout << "\nmu=4: " << s4.treeAdds << " adds vs naive "
              << s4.naiveAdds << " -> " << TextTable::pct(s4.savingRatio)
              << " saving (paper: 14 vs 24, 42%)\n"
              << "tree == direct enumeration: "
              << (equal ? "yes" : "NO") << "\n"
              << "break-even vs k straightforward RAC adders: the "
                 "generator wins for k > 4 (14 < 5*3)\n";
    return equal ? 0 : 1;
}
