/**
 * @file
 * Fig. 13 reproduction: area efficiency (TOPS/mm^2) of the five
 * engines for Q4 and Q8 weights across the OPT family and the three
 * activation formats, normalized to FPE.
 */

#include <iostream>

#include "bench_util.h"
#include "figlut/figlut.h"

using namespace figlut;

namespace {

double
topsPerMm2For(EngineKind e, ActFormat fmt, int q, const OptConfig &model)
{
    HwConfig hw;
    hw.engine = e;
    hw.actFormat = fmt;
    hw.fixedWeightBits = q <= 4 ? 4 : 8;
    // One decode step's worth of weight GEMMs, batch 32.
    double ops = 0.0, seconds = 0.0;
    for (const auto &shape : decodeStepGemms(model, 32, q)) {
        const auto r = simulateGemm(hw, shape);
        ops += shape.ops();
        seconds += r.timing.seconds;
    }
    const double tops = ops / seconds / 1e12;
    MpuConfig mpu;
    mpu.engine = e;
    mpu.actFormat = fmt;
    mpu.weightBits = q <= 4 ? 4 : 8;
    return tops / engineTotalAreaMm2(mpu, hw.tech);
}

} // namespace

int
main()
{
    bench::banner("Fig. 13",
                  "TOPS/mm^2 normalized to FPE (Q4 and Q8)");

    auto csv = bench::openCsv(
        "fig13.csv", {"format", "q", "model", "engine", "rel_tops_mm2"});

    for (const int q : {4, 8}) {
        for (const auto fmt : kAllActFormats) {
            std::cout << "\n--- " << actFormatName(fmt) << "-Q" << q
                      << " ---\n";
            TextTable table({"model", "FPE", "iFPU", "FIGNA",
                             "FIGLUT-F", "FIGLUT-I"});
            for (const auto &model : optFamily()) {
                const double base =
                    topsPerMm2For(EngineKind::FPE, fmt, q, model);
                std::vector<std::string> row = {model.name};
                for (const auto e : kAllEngines) {
                    const double rel =
                        topsPerMm2For(e, fmt, q, model) / base;
                    row.push_back(TextTable::ratio(rel, 2));
                    csv->addRow({actFormatName(fmt), std::to_string(q),
                                 model.name, engineName(e),
                                 TextTable::num(rel, 4)});
                }
                table.addRow(row);
            }
            std::cout << table.render();
        }
    }
    std::cout <<
        "\nshape checks (paper): FIGLUT-I leads for sub-4-bit-era Q4 "
        "(up to ~1.5x FIGNA);\nbit-serial engines lose ground at Q8 "
        "(2x cycles); the FIGNA/FIGLUT-I gap narrows for FP32-Q8.\n";
    return 0;
}
