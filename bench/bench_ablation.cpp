/**
 * @file
 * Ablation bench for the design choices DESIGN.md calls out:
 *   (a) LUT implementation: hFFLUT (paper) vs FFLUT vs RFLUT at the
 *       full-engine level (not just the isolated Fig. 6 comparison);
 *   (b) the LUT generator tree vs naive generation (adder energy);
 *   (c) the LUT group size mu under the fixed k = 32 sharing.
 * Workload: one OPT-6.7B FC1 layer, batch 32, Q4.
 */

#include <iostream>

#include "bench_util.h"
#include "figlut/figlut.h"

using namespace figlut;

namespace {

GemmShape
layer()
{
    GemmShape s;
    s.m = 16384;
    s.n = 4096;
    s.batch = 32;
    s.weightBits = 4;
    return s;
}

} // namespace

int
main()
{
    bench::banner("Ablation",
                  "hFFLUT/FFLUT/RFLUT, generator tree, mu sweep "
                  "(OPT-6.7B FC1, Q4)");

    auto csv = bench::openCsv(
        "ablation.csv", {"knob", "setting", "tops_w", "lut_fj_share"});

    // ---- (a) LUT implementation ----
    std::cout << "\n(a) LUT implementation at engine level\n";
    TextTable impl_table({"LUT impl", "TOPS/W", "LUT energy share",
                          "vs hFFLUT"});
    double hfflut_tw = 0.0;
    for (const auto impl :
         {LutImpl::HFFLUT, LutImpl::FFLUT, LutImpl::RFLUT}) {
        HwConfig hw;
        hw.engine = EngineKind::FIGLUT_I;
        hw.lutImpl = impl;
        const auto r = simulateGemm(hw, layer());
        if (impl == LutImpl::HFFLUT)
            hfflut_tw = r.topsPerWatt;
        const char *name = impl == LutImpl::HFFLUT   ? "hFFLUT"
                           : impl == LutImpl::FFLUT ? "FFLUT"
                                                    : "RFLUT";
        impl_table.addRow(
            {name, TextTable::num(r.topsPerWatt, 2),
             TextTable::pct(r.energy.lutFj / r.energy.totalFj(), 1),
             TextTable::ratio(r.topsPerWatt / hfflut_tw, 2)});
        csv->addRow({"lut_impl", name,
                     TextTable::num(r.topsPerWatt, 4),
                     TextTable::num(
                         r.energy.lutFj / r.energy.totalFj(), 4)});
    }
    std::cout << impl_table.render();

    // ---- (b) generator tree vs naive ----
    std::cout << "\n(b) LUT generation: tree vs naive adder counts\n";
    {
        HwConfig hw;
        hw.engine = EngineKind::FIGLUT_I;
        const auto p = gemmOpProfile(hw, layer());
        const auto stats = lutGeneratorAdderCount(hw.mu);
        const double tree_adds = p.generatorAdds;
        const double naive_adds =
            p.lutBuilds * static_cast<double>(stats.naiveAdds);
        const double add_fj = hw.tech.intAddEnergy(p.lutValueBits);
        TextTable gen_table({"generator", "adds per layer",
                             "energy (uJ)"});
        gen_table.addRow({"two-step tree (paper)",
                          TextTable::num(tree_adds / 1e6, 2) + "M",
                          TextTable::num(tree_adds * add_fj * 1e-9,
                                         2)});
        gen_table.addRow({"naive enumeration",
                          TextTable::num(naive_adds / 1e6, 2) + "M",
                          TextTable::num(naive_adds * add_fj * 1e-9,
                                         2)});
        std::cout << gen_table.render();
        std::cout << "saving: "
                  << TextTable::pct(1.0 - tree_adds / naive_adds, 1)
                  << " of generation adds (paper: 42%)\n";
        csv->addRow({"generator", "tree",
                     TextTable::num(tree_adds, 0), ""});
        csv->addRow({"generator", "naive",
                     TextTable::num(naive_adds, 0), ""});
    }

    // ---- (c) mu sweep at k = 32 ----
    std::cout << "\n(c) LUT group size mu (k = 32, hFFLUT)\n";
    TextTable mu_table({"mu", "TOPS/W", "LUT share", "generator share"});
    for (const int mu : {2, 3, 4, 5, 6}) {
        HwConfig hw;
        hw.engine = EngineKind::FIGLUT_I;
        hw.mu = mu;
        const auto r = simulateGemm(hw, layer());
        mu_table.addRow(
            {std::to_string(mu), TextTable::num(r.topsPerWatt, 2),
             TextTable::pct(r.energy.lutFj / r.energy.totalFj(), 1),
             TextTable::pct(
                 r.energy.generatorFj / r.energy.totalFj(), 1)});
        csv->addRow({"mu", std::to_string(mu),
                     TextTable::num(r.topsPerWatt, 4),
                     TextTable::num(
                         r.energy.lutFj / r.energy.totalFj(), 4)});
    }
    std::cout << mu_table.render();
    std::cout <<
        "\nreadings: hFFLUT halves the LUT share vs FFLUT; RFLUT is "
        "ruinous (per-read macro energy);\nthe generator tree saves "
        "~42% of generation adds; mu>4 keeps shaving RAC energy but "
        "the\ntable+generator share grows — mu=4 is the knee, as the "
        "paper concludes.\n";
    return 0;
}
