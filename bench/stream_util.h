/**
 * @file
 * Minimal STREAM-style memory-bandwidth microbenchmark (McCalpin's
 * copy/scale/add/triad kernels over double arrays) used to calibrate
 * the roofline ceiling the LUT-GEMM records are scored against: a RAC
 * read moves ~12 bytes (4-byte packed key + 8-byte table entry), so
 * `roofline_frac = lut_reads_per_s * 12 / mem_bw_bytes_per_s` says how
 * close the software kernel runs to the machine's measured memory
 * bandwidth. bench_stream.cpp is the standalone driver; bench_kernels
 * --json measures the ceiling once per run to stamp its records.
 */

#ifndef FIGLUT_BENCH_STREAM_UTIL_H
#define FIGLUT_BENCH_STREAM_UTIL_H

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "core/parallel.h"
#include "shard/numa.h"

namespace figlut::bench {

/** Bytes a RAC table read moves: packed key (4) + LUT entry (8). */
inline constexpr double kLutReadBytes = 12.0;

/** Best observed rate of each STREAM kernel, in bytes per second. */
struct StreamBandwidth
{
    double copy = 0.0;  ///< c[i] = a[i]            (2 x 8 bytes/elem)
    double scale = 0.0; ///< b[i] = s * c[i]        (2 x 8 bytes/elem)
    double add = 0.0;   ///< c[i] = a[i] + b[i]     (3 x 8 bytes/elem)
    double triad = 0.0; ///< a[i] = b[i] + s * c[i] (3 x 8 bytes/elem)

    /** The roofline ceiling: the best rate any kernel achieved. */
    double
    best() const
    {
        double b = copy;
        if (scale > b)
            b = scale;
        if (add > b)
            b = add;
        if (triad > b)
            b = triad;
        return b;
    }
};

namespace stream_detail {

inline double
seconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Best-of-reps wrapper: returns bytes/s of the fastest repetition. */
template <typename Kernel>
double
bestRate(Kernel &&kernel, double bytes, int reps)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        const double t0 = seconds();
        kernel();
        const double dt = seconds() - t0;
        if (dt > 0.0 && bytes / dt > best)
            best = bytes / dt;
    }
    return best;
}

} // namespace stream_detail

/**
 * Run the four STREAM kernels best-of-`reps` over three
 * `elements`-double arrays (per STREAM convention each array should
 * comfortably exceed the last-level cache; 1 << 24 elements = 128 MiB
 * per array is the standalone default, CI smoke uses less). The
 * arrays are touched once before timing so page faults are excluded.
 */
inline StreamBandwidth
measureStreamBandwidth(std::size_t elements, int reps)
{
    std::vector<double> a(elements, 1.0), b(elements, 2.0),
        c(elements, 0.0);
    const double scalar = 3.0;
    const double two = 2.0 * 8.0 * static_cast<double>(elements);
    const double three = 3.0 * 8.0 * static_cast<double>(elements);

    StreamBandwidth bw;
    bw.copy = stream_detail::bestRate(
        [&] {
            for (std::size_t i = 0; i < elements; ++i)
                c[i] = a[i];
        },
        two, reps);
    bw.scale = stream_detail::bestRate(
        [&] {
            for (std::size_t i = 0; i < elements; ++i)
                b[i] = scalar * c[i];
        },
        two, reps);
    bw.add = stream_detail::bestRate(
        [&] {
            for (std::size_t i = 0; i < elements; ++i)
                c[i] = a[i] + b[i];
        },
        three, reps);
    bw.triad = stream_detail::bestRate(
        [&] {
            for (std::size_t i = 0; i < elements; ++i)
                a[i] = b[i] + scalar * c[i];
        },
        three, reps);

    // Consume the final array states so no kernel's stores are dead.
    double sink = 0.0;
    for (std::size_t i = 0; i < elements; i += 4096)
        sink += a[i] + b[i] + c[i];
    volatile double keep = sink;
    (void)keep;
    return bw;
}

/**
 * Cross-pool interconnect measurement, HPCC b_eff style: the two
 * parameters sim::InterconnectConfig prices a sharded combine with.
 * Latency is the best-observed half round trip of a mutex + condition
 * variable handoff between a thread pinned to the first NUMA node and
 * one pinned to the last — exactly the signaling mechanism
 * ShardedExecutor's combine uses, so the calibration times the real
 * seam, not an idealized message. Bandwidth is the best cross-pool
 * copy rate of a remote-first-touched array into a local one. On a
 * single-node host both threads land in the same pool and the numbers
 * degrade gracefully to in-pool costs (nodes = 1 says so).
 */
struct InterconnectMeasurement
{
    /** Best half-round-trip handoff latency, seconds. */
    double latencyS = 0.0;
    /** Best cross-pool copy rate, bytes per second. */
    double bandwidthBytesPerS = 0.0;
    /** NUMA nodes the measurement spanned (1 = same-pool fallback). */
    int numaNodes = 1;
};

/**
 * Measure the combine seam over `elements`-double buffers, best of
 * `reps` copies and of a fixed burst of handoff round trips. Spawns
 * two pinned threads; the calling thread's affinity is untouched.
 */
inline InterconnectMeasurement
measureInterconnect(std::size_t elements, int reps)
{
    InterconnectMeasurement m;
    const NumaTopology topo = detectNumaTopology();
    m.numaNodes = static_cast<int>(topo.nodeCount());
    const CpuSet local =
        topo.nodes.empty() ? CpuSet{} : topo.nodes.front().cpus;
    const CpuSet remote =
        topo.nodes.empty() ? CpuSet{} : topo.nodes.back().cpus;

    std::mutex mu;
    std::condition_variable cv;
    int turn = 0; // 0 = ping side (measurer), 1 = pong side (remote)
    bool stop = false;
    std::vector<double> src; // filled (first-touched) by the remote
    bool srcReady = false;

    std::thread pong([&] {
        applyThreadAffinity(remote);
        {
            std::vector<double> filled(elements, 1.0);
            std::unique_lock<std::mutex> lock(mu);
            src = std::move(filled);
            srcReady = true;
            cv.notify_all();
        }
        std::unique_lock<std::mutex> lock(mu);
        while (true) {
            cv.wait(lock, [&] { return turn == 1 || stop; });
            if (stop)
                return;
            turn = 0;
            cv.notify_all();
        }
    });

    std::thread ping([&] {
        applyThreadAffinity(local);
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [&] { return srcReady; });
        }
        // Handoff latency: best half round trip over a short burst
        // (with warmup), timed around the exact wait/notify pair the
        // sharded combine synchronizes with.
        const int kWarmup = 64, kRounds = 2048;
        double bestRoundS = 0.0;
        for (int r = 0; r < kWarmup + kRounds; ++r) {
            const double t0 = stream_detail::seconds();
            {
                std::unique_lock<std::mutex> lock(mu);
                turn = 1;
                cv.notify_all();
                cv.wait(lock, [&] { return turn == 0; });
            }
            const double dt = stream_detail::seconds() - t0;
            if (r >= kWarmup && dt > 0.0 &&
                (bestRoundS == 0.0 || dt < bestRoundS))
                bestRoundS = dt;
        }
        m.latencyS = bestRoundS / 2.0;

        // Cross-pool bandwidth: copy the remote-touched array into a
        // locally-touched one (one read + one write per element).
        std::vector<double> dst(elements, 0.0);
        const double bytes = 2.0 * 8.0 * static_cast<double>(elements);
        m.bandwidthBytesPerS = stream_detail::bestRate(
            [&] {
                for (std::size_t i = 0; i < elements; ++i)
                    dst[i] = src[i];
            },
            bytes, reps);
        double sink = 0.0;
        for (std::size_t i = 0; i < elements; i += 4096)
            sink += dst[i];
        volatile double keep = sink;
        (void)keep;
    });

    ping.join();
    {
        std::unique_lock<std::mutex> lock(mu);
        stop = true;
        cv.notify_all();
    }
    pong.join();
    return m;
}

} // namespace figlut::bench

#endif // FIGLUT_BENCH_STREAM_UTIL_H
