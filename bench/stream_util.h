/**
 * @file
 * Minimal STREAM-style memory-bandwidth microbenchmark (McCalpin's
 * copy/scale/add/triad kernels over double arrays) used to calibrate
 * the roofline ceiling the LUT-GEMM records are scored against: a RAC
 * read moves ~12 bytes (4-byte packed key + 8-byte table entry), so
 * `roofline_frac = lut_reads_per_s * 12 / mem_bw_bytes_per_s` says how
 * close the software kernel runs to the machine's measured memory
 * bandwidth. bench_stream.cpp is the standalone driver; bench_kernels
 * --json measures the ceiling once per run to stamp its records.
 */

#ifndef FIGLUT_BENCH_STREAM_UTIL_H
#define FIGLUT_BENCH_STREAM_UTIL_H

#include <chrono>
#include <cstddef>
#include <vector>

namespace figlut::bench {

/** Bytes a RAC table read moves: packed key (4) + LUT entry (8). */
inline constexpr double kLutReadBytes = 12.0;

/** Best observed rate of each STREAM kernel, in bytes per second. */
struct StreamBandwidth
{
    double copy = 0.0;  ///< c[i] = a[i]            (2 x 8 bytes/elem)
    double scale = 0.0; ///< b[i] = s * c[i]        (2 x 8 bytes/elem)
    double add = 0.0;   ///< c[i] = a[i] + b[i]     (3 x 8 bytes/elem)
    double triad = 0.0; ///< a[i] = b[i] + s * c[i] (3 x 8 bytes/elem)

    /** The roofline ceiling: the best rate any kernel achieved. */
    double
    best() const
    {
        double b = copy;
        if (scale > b)
            b = scale;
        if (add > b)
            b = add;
        if (triad > b)
            b = triad;
        return b;
    }
};

namespace stream_detail {

inline double
seconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Best-of-reps wrapper: returns bytes/s of the fastest repetition. */
template <typename Kernel>
double
bestRate(Kernel &&kernel, double bytes, int reps)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        const double t0 = seconds();
        kernel();
        const double dt = seconds() - t0;
        if (dt > 0.0 && bytes / dt > best)
            best = bytes / dt;
    }
    return best;
}

} // namespace stream_detail

/**
 * Run the four STREAM kernels best-of-`reps` over three
 * `elements`-double arrays (per STREAM convention each array should
 * comfortably exceed the last-level cache; 1 << 24 elements = 128 MiB
 * per array is the standalone default, CI smoke uses less). The
 * arrays are touched once before timing so page faults are excluded.
 */
inline StreamBandwidth
measureStreamBandwidth(std::size_t elements, int reps)
{
    std::vector<double> a(elements, 1.0), b(elements, 2.0),
        c(elements, 0.0);
    const double scalar = 3.0;
    const double two = 2.0 * 8.0 * static_cast<double>(elements);
    const double three = 3.0 * 8.0 * static_cast<double>(elements);

    StreamBandwidth bw;
    bw.copy = stream_detail::bestRate(
        [&] {
            for (std::size_t i = 0; i < elements; ++i)
                c[i] = a[i];
        },
        two, reps);
    bw.scale = stream_detail::bestRate(
        [&] {
            for (std::size_t i = 0; i < elements; ++i)
                b[i] = scalar * c[i];
        },
        two, reps);
    bw.add = stream_detail::bestRate(
        [&] {
            for (std::size_t i = 0; i < elements; ++i)
                c[i] = a[i] + b[i];
        },
        three, reps);
    bw.triad = stream_detail::bestRate(
        [&] {
            for (std::size_t i = 0; i < elements; ++i)
                a[i] = b[i] + scalar * c[i];
        },
        three, reps);

    // Consume the final array states so no kernel's stores are dead.
    double sink = 0.0;
    for (std::size_t i = 0; i < elements; i += 4096)
        sink += a[i] + b[i] + c[i];
    volatile double keep = sink;
    (void)keep;
    return bw;
}

} // namespace figlut::bench

#endif // FIGLUT_BENCH_STREAM_UTIL_H
