/**
 * @file
 * Fig. 9 reproduction: P_RAC and P_PE as a function of the LUT
 * fan-out k, normalized to the k = 1 values. The per-RAC power is
 * U-shaped with its minimum at k = 32, the paper's chosen design
 * point.
 */

#include <iostream>

#include "bench_util.h"
#include "figlut/figlut.h"

using namespace figlut;

int
main()
{
    bench::banner("Fig. 9", "P_RAC and P_PE vs LUT fan-out k (mu=4)");

    const auto &tech = TechParams::default28nm();
    auto pe_at = [&](int k) {
        LutConfig cfg;
        cfg.mu = 4;
        cfg.valueBits = 32;
        cfg.fanout = k;
        return pePower(LutImpl::HFFLUT, cfg, /*integer_path=*/true,
                       /*rac_bits=*/26, tech);
    };
    const auto base = pe_at(1);

    TextTable table({"k", "P_PE (norm)", "P_RAC (norm)"});
    auto csv = bench::openCsv("fig9.csv", {"k", "p_pe", "p_rac"});

    int best_k = 1;
    double best_rac = 1e300;
    for (const int k : {1, 2, 4, 8, 16, 32, 64, 128, 256, 512}) {
        const auto pe = pe_at(k);
        if (pe.perRacFj < best_rac) {
            best_rac = pe.perRacFj;
            best_k = k;
        }
        table.addRow({std::to_string(k),
                      TextTable::num(pe.totalFj / base.totalFj, 3),
                      TextTable::num(pe.perRacFj / base.perRacFj, 3)});
        csv->addRow({std::to_string(k),
                     TextTable::num(pe.totalFj / base.totalFj, 5),
                     TextTable::num(pe.perRacFj / base.perRacFj, 5)});
    }
    std::cout << table.render();

    std::cout << "\nmeasured P_RAC minimum at k = " << best_k
              << " (paper: k = 32)\n"
              << "P_PE grows monotonically with k; P_RAC first falls "
                 "(LUT amortized) then rises (fan-out overhead)\n";
    return 0;
}
