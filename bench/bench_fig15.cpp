/**
 * @file
 * Fig. 15 reproduction: energy breakdown of the engines on OPT-6.7B
 * across weight precisions Q1..Q4 and Q8, normalized to FPE at each
 * precision. Fixed-precision engines pad sub-4-bit weights to Q4;
 * Q8 uses the widened FPE/FIGNA datapaths.
 */

#include <iostream>

#include "bench_util.h"
#include "figlut/figlut.h"

using namespace figlut;

int
main()
{
    bench::banner("Fig. 15",
                  "Energy breakdown on OPT-6.7B, Q1..Q8, "
                  "normalized to FPE");

    const auto &model = optByName("OPT-6.7B");
    auto csv = bench::openCsv(
        "fig15.csv", {"q", "engine", "compute_rel", "sram_rel",
                      "dram_rel", "total_rel"});

    for (const int q : {1, 2, 3, 4, 8}) {
        std::cout << "\n--- Q" << q << " ---\n";
        const int fixed = q <= 4 ? 4 : 8;

        auto energy_for = [&](EngineKind e) {
            HwConfig hw;
            hw.engine = e;
            hw.fixedWeightBits = fixed;
            EnergyBreakdown total;
            for (const auto &shape : decodeStepGemms(model, 32, q))
                total.merge(simulateGemm(hw, shape).energy);
            return total;
        };

        const auto base = energy_for(EngineKind::FPE).totalFj();
        TextTable table({"engine", "compute", "sram", "dram", "total"});
        for (const auto e : kAllEngines) {
            const auto en = energy_for(e);
            table.addRow({engineName(e),
                          TextTable::num(en.computeFj() / base, 3),
                          TextTable::num(en.sramFj / base, 3),
                          TextTable::num(en.dramFj / base, 3),
                          TextTable::num(en.totalFj() / base, 3)});
            csv->addRow({std::to_string(q), engineName(e),
                         TextTable::num(en.computeFj() / base, 5),
                         TextTable::num(en.sramFj / base, 5),
                         TextTable::num(en.dramFj / base, 5),
                         TextTable::num(en.totalFj() / base, 5)});
        }
        std::cout << table.render();
    }
    std::cout <<
        "\nshape checks (paper): bit-serial engines (iFPU/FIGLUT) "
        "shrink with q — fewer plane passes and\nless weight traffic "
        "— while FPE/FIGNA are flat below Q4 (padding); FIGLUT-I has "
        "the lowest total\nat every precision; iFPU pays a flip-flop "
        "energy penalty over FIGNA.\n";
    return 0;
}
