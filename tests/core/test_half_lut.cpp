/** @file Tests for the hFFLUT (half LUT + sign decoder). */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/half_lut.h"

namespace figlut {
namespace {

/** Property: decoded hFFLUT equals the full table for every key. */
class HalfLutMuSweep : public ::testing::TestWithParam<int>
{};

TEST_P(HalfLutMuSweep, MatchesFullTableDouble)
{
    const int mu = GetParam();
    Rng rng(101 + static_cast<uint64_t>(mu));
    const auto xs = rng.normalVector(static_cast<std::size_t>(mu));
    const auto full = LutD::buildDirect(xs, FpArith::Exact);
    const auto half = HalfLutD::buildDirect(xs, FpArith::Exact);
    for (uint32_t key = 0; key < full.entries(); ++key)
        EXPECT_DOUBLE_EQ(half.value(key), full.value(key))
            << "mu=" << mu << " key=" << key;
}

TEST_P(HalfLutMuSweep, MatchesFullTableInteger)
{
    const int mu = GetParam();
    Rng rng(201 + static_cast<uint64_t>(mu));
    std::vector<int64_t> xs(static_cast<std::size_t>(mu));
    for (auto &x : xs)
        x = rng.uniformInt(-100000, 100000);
    const auto full = LutI::buildDirect(xs);
    const auto half = HalfLutI::buildDirect(xs);
    for (uint32_t key = 0; key < full.entries(); ++key)
        EXPECT_EQ(half.value(key), full.value(key))
            << "mu=" << mu << " key=" << key;
}

TEST_P(HalfLutMuSweep, FromFullAgreesWithDirect)
{
    const int mu = GetParam();
    Rng rng(301 + static_cast<uint64_t>(mu));
    const auto xs = rng.normalVector(static_cast<std::size_t>(mu));
    const auto full = LutD::buildDirect(xs, FpArith::Exact);
    const auto a = HalfLutD::fromFull(full);
    const auto b = HalfLutD::buildDirect(xs, FpArith::Exact);
    for (uint32_t key = 0; key < full.entries(); ++key)
        EXPECT_DOUBLE_EQ(a.value(key), b.value(key));
}

INSTANTIATE_TEST_SUITE_P(Mu, HalfLutMuSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8));

TEST(HalfLut, StoresExactlyHalf)
{
    Rng rng(111);
    const auto xs = rng.normalVector(4);
    const auto half = HalfLutD::buildDirect(xs, FpArith::Exact);
    EXPECT_EQ(half.storedEntries(), 8u);
    // Stored entries are the MSB=1 keys.
    const auto full = LutD::buildDirect(xs, FpArith::Exact);
    for (uint32_t low = 0; low < 8; ++low)
        EXPECT_DOUBLE_EQ(half.stored(low), full.value(8u | low));
}

TEST(HalfLut, DecoderUsesExactNegation)
{
    // Even in rounded FP modes the mirror entry is the exact negation
    // (sign-bit flip), so symmetry is bit-perfect.
    Rng rng(112);
    const auto xs = rng.normalVector(4);
    const auto half = HalfLutD::buildDirect(xs, FpArith::Fp16);
    for (uint32_t key = 0; key < 16; ++key)
        EXPECT_EQ(half.value(key), -half.value(complementKey(key, 4)));
}

TEST(HalfLut, SignedZeroSafety)
{
    // All-zero activations: every entry reads 0 (sign may differ but
    // value compares equal).
    const auto half = HalfLutD::buildDirect({0.0, 0.0, 0.0},
                                            FpArith::Exact);
    for (uint32_t key = 0; key < 8; ++key)
        EXPECT_EQ(half.value(key), 0.0);
}

TEST(HalfLut, MuOneRejected)
{
    EXPECT_THROW(HalfLutD::buildDirect({1.0}, FpArith::Exact),
                 PanicError);
    EXPECT_THROW(HalfLutI::buildDirect({1}), PanicError);
}

TEST(HalfLut, OutOfRangeKeyPanics)
{
    Rng rng(113);
    const auto xs = rng.normalVector(3);
    const auto half = HalfLutD::buildDirect(xs, FpArith::Exact);
    EXPECT_THROW(half.value(8), PanicError);
    EXPECT_THROW(half.stored(4), PanicError);
}

} // namespace
} // namespace figlut
