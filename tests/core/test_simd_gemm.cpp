/**
 * @file
 * Differential tests for the Simd LUT-GEMM backend and the runtime
 * ISA dispatcher: 4-backend bit-identity (Reference / Threaded /
 * Packed / Simd) over randomized shapes and configs, cross-ISA
 * bit-identity under forced dispatch, counter equivalence, pre-packed
 * key reuse, and the guarantee that dispatch never selects an ISA the
 * binary was not compiled with (the CI scalar-build leg runs these
 * same tests with FIGLUT_SIMD_AVX2=OFF).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine_numerics.h"
#include "core/execution_context.h"
#include "core/lut_gemm.h"
#include "core/simd.h"
#include "model/synthetic.h"
#include "quant/packing.h"

namespace figlut {
namespace {

struct GemmCase
{
    BcqTensor weights;
    MatrixD x;
};

GemmCase
makeCase(std::size_t m, std::size_t n, std::size_t batch, int bits,
         std::size_t group, bool offset, uint64_t seed)
{
    Rng rng(seed);
    GemmCase tc;
    const auto w = syntheticWeights(m, n, rng);
    BcqConfig cfg;
    cfg.bits = bits;
    cfg.groupSize = group;
    cfg.useOffset = offset;
    cfg.iterations = 3;
    tc.weights = quantizeBcq(w, cfg);
    tc.x = syntheticActivations(n, batch, rng);
    return tc;
}

MatrixD
runBackend(const GemmCase &tc, LutGemmConfig cfg, LutGemmBackend backend,
           LutGemmCounters *counters = nullptr)
{
    cfg.backend = backend;
    return lutGemm(tc.weights, tc.x, cfg, counters);
}

void
expectCountersEqual(const LutGemmCounters &a, const LutGemmCounters &b,
                    const std::string &what)
{
    EXPECT_EQ(a.lutGenerations, b.lutGenerations) << what;
    EXPECT_EQ(a.generatorAdds, b.generatorAdds) << what;
    EXPECT_EQ(a.lutReads, b.lutReads) << what;
    EXPECT_EQ(a.racAccumulates, b.racAccumulates) << what;
    EXPECT_EQ(a.scaleMuls, b.scaleMuls) << what;
    EXPECT_EQ(a.offsetOps, b.offsetOps) << what;
}

/** Restore the dispatcher's environment selection on scope exit. */
struct IsaOverrideGuard
{
    explicit IsaOverrideGuard(SimdIsa isa) { setSimdIsaOverride(isa); }
    ~IsaOverrideGuard() { clearSimdIsaOverride(); }
};

// ----------------------------------------------------- dispatch layer

TEST(SimdDispatch, NamesCodesAndParsingRoundTrip)
{
    for (const auto isa :
         {SimdIsa::Scalar, SimdIsa::Avx2, SimdIsa::Neon}) {
        SimdIsa parsed = SimdIsa::Scalar;
        EXPECT_TRUE(parseSimdIsa(simdIsaName(isa), &parsed));
        EXPECT_EQ(parsed, isa);
    }
    EXPECT_EQ(simdIsaCode(SimdIsa::Scalar), 0);
    EXPECT_EQ(simdIsaCode(SimdIsa::Avx2), 1);
    EXPECT_EQ(simdIsaCode(SimdIsa::Neon), 2);
    SimdIsa parsed = SimdIsa::Scalar;
    EXPECT_FALSE(parseSimdIsa("sse2", &parsed));
    EXPECT_FALSE(parseSimdIsa("auto", &parsed));
    EXPECT_FALSE(parseSimdIsa("", &parsed));
}

TEST(SimdDispatch, ActiveIsaIsAlwaysSupported)
{
    EXPECT_TRUE(simdIsaSupported(activeSimdIsa()));
    EXPECT_TRUE(simdIsaSupported(detectSimdIsa()));
    EXPECT_TRUE(simdIsaSupported(SimdIsa::Scalar));
    // Supported implies compiled-in by definition.
    for (const auto isa : {SimdIsa::Avx2, SimdIsa::Neon}) {
        if (simdIsaSupported(isa)) {
            EXPECT_TRUE(simdIsaCompiled(isa));
        }
    }
}

/**
 * The compile-guard contract CI's scalar-build leg exercises: when
 * the AVX2/NEON kernels are not compiled in (FIGLUT_SIMD_*=OFF or a
 * foreign architecture), even a forced override must clamp to Scalar
 * — dispatch can never select code the binary lacks.
 */
TEST(SimdDispatch, OverrideClampsToCompiledIsas)
{
    for (const auto isa : {SimdIsa::Avx2, SimdIsa::Neon}) {
        const SimdIsa got = setSimdIsaOverride(isa);
        if (!simdIsaCompiled(isa)) {
            EXPECT_EQ(got, SimdIsa::Scalar) << simdIsaName(isa);
            EXPECT_NE(activeSimdIsa(), isa) << simdIsaName(isa);
        } else if (simdIsaSupported(isa)) {
            EXPECT_EQ(got, isa) << simdIsaName(isa);
            EXPECT_EQ(activeSimdIsa(), isa) << simdIsaName(isa);
        } else {
            EXPECT_EQ(got, SimdIsa::Scalar) << simdIsaName(isa);
        }
        clearSimdIsaOverride();
    }
    // The kernel table always reports the ISA it was selected for.
    EXPECT_EQ(simdKernels().isa, activeSimdIsa());
    EXPECT_EQ(simdKernelsFor(SimdIsa::Scalar).isa, SimdIsa::Scalar);
}

// ------------------------------------------------- 4-backend identity

/**
 * The ISSUE's randomized 4-backend differential suite: odd shapes,
 * tail chunks, mu in [1, kMaxMu], offset/half-LUT/generator on/off,
 * both numeric paths, and every FpArith accumulate mode (Fp16/Bf16
 * exercise the Simd backend's scalar-arith fallback) — Reference,
 * Threaded, Packed and Simd must agree bit for bit.
 */
TEST(SimdGemm, RandomizedFourBackendBitIdentity)
{
    Rng shapes(2001);
    const FpArith ariths[] = {FpArith::Fp32, FpArith::Exact,
                              FpArith::Fp16, FpArith::Bf16};
    for (int trial = 0; trial < 16; ++trial) {
        const auto m = static_cast<std::size_t>(shapes.uniformInt(1, 60));
        const auto n = static_cast<std::size_t>(shapes.uniformInt(1, 80));
        const auto batch =
            static_cast<std::size_t>(shapes.uniformInt(1, 5));
        const int bits = static_cast<int>(shapes.uniformInt(1, 4));
        const bool grouped = shapes.uniformInt(0, 1) == 1;
        const std::size_t group =
            grouped ? static_cast<std::size_t>(
                          shapes.uniformInt(1, static_cast<int64_t>(n)))
                    : 0;
        const bool offset = shapes.uniformInt(0, 1) == 1;

        LutGemmConfig cfg;
        cfg.mu = static_cast<int>(shapes.uniformInt(1, kMaxMu));
        cfg.useHalfLut = cfg.mu >= 2 && shapes.uniformInt(0, 1) == 1;
        cfg.useGeneratorTree = shapes.uniformInt(0, 1) == 1;
        cfg.preAligned = shapes.uniformInt(0, 1) == 1;
        cfg.arith = ariths[shapes.uniformInt(0, 3)];
        cfg.threads = static_cast<int>(shapes.uniformInt(1, 8));
        cfg.blockRows = static_cast<int>(shapes.uniformInt(1, 32));

        const auto tc = makeCase(m, n, batch, bits, group, offset,
                                 2100 + static_cast<uint64_t>(trial));
        const auto ref = runBackend(tc, cfg, LutGemmBackend::Reference);
        const auto thr = runBackend(tc, cfg, LutGemmBackend::Threaded);
        const auto packed = runBackend(tc, cfg, LutGemmBackend::Packed);
        const auto simd = runBackend(tc, cfg, LutGemmBackend::Simd);

        const std::string what =
            "trial " + std::to_string(trial) + ": " + std::to_string(m) +
            "x" + std::to_string(n) + " batch " + std::to_string(batch) +
            " bits " + std::to_string(bits) + " group " +
            std::to_string(group) + " offset " + std::to_string(offset) +
            " mu " + std::to_string(cfg.mu) + " half " +
            std::to_string(cfg.useHalfLut) + " tree " +
            std::to_string(cfg.useGeneratorTree) + " pre " +
            std::to_string(cfg.preAligned) + " arith " +
            std::to_string(static_cast<int>(cfg.arith)) + " isa " +
            simdIsaName(activeSimdIsa());
        EXPECT_TRUE(compareMatrices(thr, ref).identical) << what;
        EXPECT_TRUE(compareMatrices(packed, ref).identical) << what;
        EXPECT_TRUE(compareMatrices(simd, ref).identical) << what;
    }
}

/**
 * Cross-ISA pin: the same Simd call must produce the same bits under
 * every dispatchable ISA, scalar included — the scalar fallback is
 * not approximately equal, it IS the contract.
 */
TEST(SimdGemm, ForcedIsaSweepIsBitIdentical)
{
    const auto tc = makeCase(33, 70, 3, 3, 24, true, 2200);
    for (const bool pre : {false, true}) {
        LutGemmConfig cfg;
        cfg.backend = LutGemmBackend::Simd;
        cfg.preAligned = pre;
        cfg.threads = 2;
        cfg.blockRows = 8;

        MatrixD baseline;
        {
            IsaOverrideGuard guard(SimdIsa::Scalar);
            baseline = lutGemm(tc.weights, tc.x, cfg);
        }
        for (const auto isa : {SimdIsa::Avx2, SimdIsa::Neon}) {
            if (!simdIsaSupported(isa))
                continue;
            IsaOverrideGuard guard(isa);
            const auto vec = lutGemm(tc.weights, tc.x, cfg);
            EXPECT_TRUE(compareMatrices(vec, baseline).identical)
                << "pre=" << pre << " isa=" << simdIsaName(isa);
        }
        // And the scalar-forced Simd backend equals Packed exactly.
        LutGemmConfig packedCfg = cfg;
        packedCfg.backend = LutGemmBackend::Packed;
        IsaOverrideGuard guard(SimdIsa::Scalar);
        const auto packed = lutGemm(tc.weights, tc.x, packedCfg);
        EXPECT_TRUE(compareMatrices(baseline, packed).identical)
            << "pre=" << pre;
    }
}

TEST(SimdGemm, ContextReuseIsBitIdentical)
{
    const auto tc = makeCase(40, 64, 2, 2, 16, true, 2300);
    LutGemmConfig cfg;
    cfg.backend = LutGemmBackend::Simd;
    cfg.preAligned = true;
    cfg.threads = 2;
    ExecutionContext ctx;
    const auto fresh = lutGemm(tc.weights, tc.x, cfg);
    for (int call = 0; call < 3; ++call) {
        const auto reused =
            lutGemm(tc.weights, tc.x, cfg, nullptr, &ctx);
        EXPECT_TRUE(compareMatrices(reused, fresh).identical)
            << "call " << call;
    }
}

TEST(SimdGemm, PrepackedKeysReuse)
{
    const auto tc = makeCase(24, 48, 2, 3, 12, true, 2400);
    LutGemmConfig cfg;
    cfg.backend = LutGemmBackend::Simd;
    cfg.preAligned = true;
    cfg.blockRows = 7;
    const auto packedKeys = packLutKeys(tc.weights, cfg.mu);
    const auto internal = lutGemm(tc.weights, tc.x, cfg);
    for (int call = 0; call < 2; ++call) {
        const auto reused = lutGemm(tc.weights, tc.x, cfg, packedKeys);
        EXPECT_TRUE(compareMatrices(reused, internal).identical)
            << "call " << call;
    }
    // Pre-packed keys stay rejected for the non-packed backends.
    LutGemmConfig refCfg = cfg;
    refCfg.backend = LutGemmBackend::Reference;
    EXPECT_THROW(lutGemm(tc.weights, tc.x, refCfg, packedKeys),
                 FatalError);
}

// --------------------------------------------------- counter identity

/**
 * Counter equivalence for the Simd path: the closed-form counts of an
 * uninstrumented Simd call must equal both its own instrumented
 * per-read counts and the Packed backend's (Simd shares the
 * build-each-LUT-set-once traversal, so every counter is
 * backend-invariant between the two).
 */
TEST(SimdGemm, CountersMatchInstrumentedAndPacked)
{
    Rng shapes(2500);
    for (int trial = 0; trial < 6; ++trial) {
        const auto m = static_cast<std::size_t>(shapes.uniformInt(1, 50));
        const auto n = static_cast<std::size_t>(shapes.uniformInt(1, 60));
        const auto batch =
            static_cast<std::size_t>(shapes.uniformInt(1, 4));
        const int bits = static_cast<int>(shapes.uniformInt(1, 3));
        const std::size_t group = trial % 2 == 0 ? 0 : 10;
        const bool offset = trial % 2 == 1;

        LutGemmConfig cfg;
        cfg.backend = LutGemmBackend::Simd;
        cfg.mu = static_cast<int>(shapes.uniformInt(1, 6));
        cfg.useHalfLut = cfg.mu >= 2;
        cfg.preAligned = trial % 2 == 0;
        cfg.blockRows = static_cast<int>(shapes.uniformInt(1, 16));

        const auto tc = makeCase(m, n, batch, bits, group, offset,
                                 2600 + static_cast<uint64_t>(trial));
        const std::string what = "trial " + std::to_string(trial);

        LutGemmCounters closed, instrumented, packed;
        cfg.instrument = false;
        (void)runBackend(tc, cfg, LutGemmBackend::Simd, &closed);
        cfg.instrument = true;
        (void)runBackend(tc, cfg, LutGemmBackend::Simd, &instrumented);
        cfg.instrument = false;
        (void)runBackend(tc, cfg, LutGemmBackend::Packed, &packed);
        expectCountersEqual(closed, instrumented, what + " instrumented");
        expectCountersEqual(closed, packed, what + " vs packed");
    }
}

TEST(SimdGemm, EngineNumericsPlumbsSimdBackend)
{
    const auto tc = makeCase(12, 40, 3, 3, 20, true, 2700);
    NumericsConfig ref;
    NumericsConfig simd;
    simd.backend = LutGemmBackend::Simd;
    simd.threads = 2;
    for (const bool pre : {false, true}) {
        const auto a = figlutGemm(tc.weights, tc.x, ref, pre);
        const auto b = figlutGemm(tc.weights, tc.x, simd, pre);
        EXPECT_TRUE(compareMatrices(a, b).identical) << "pre=" << pre;
    }
}

} // namespace
} // namespace figlut
