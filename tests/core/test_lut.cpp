/** @file Tests for the full FFLUT functional model. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/lut.h"

namespace figlut {
namespace {

TEST(LutD, TableTwoValues)
{
    // Table II with x = {1, 10, 100}: key 0 = -111, key 7 = +111 etc.
    const auto lut = LutD::buildDirect({1.0, 10.0, 100.0},
                                       FpArith::Exact);
    EXPECT_EQ(lut.entries(), 8u);
    EXPECT_DOUBLE_EQ(lut.value(0), -111.0);
    EXPECT_DOUBLE_EQ(lut.value(1), -1.0 - 10.0 + 100.0);
    EXPECT_DOUBLE_EQ(lut.value(2), -1.0 + 10.0 - 100.0);
    EXPECT_DOUBLE_EQ(lut.value(3), -1.0 + 10.0 + 100.0);
    EXPECT_DOUBLE_EQ(lut.value(4), 1.0 - 10.0 - 100.0);
    EXPECT_DOUBLE_EQ(lut.value(5), 1.0 - 10.0 + 100.0);
    EXPECT_DOUBLE_EQ(lut.value(6), 1.0 + 10.0 - 100.0);
    EXPECT_DOUBLE_EQ(lut.value(7), 111.0);
}

TEST(LutD, VerticalSymmetry)
{
    Rng rng(91);
    for (int mu = 1; mu <= 8; ++mu) {
        const auto xs = rng.normalVector(static_cast<std::size_t>(mu));
        const auto lut = LutD::buildDirect(xs, FpArith::Exact);
        for (uint32_t key = 0; key < lut.entries(); ++key)
            EXPECT_DOUBLE_EQ(lut.value(key),
                             -lut.value(complementKey(key, mu)))
                << "mu=" << mu << " key=" << key;
    }
}

TEST(LutD, MatchesManualSignedSums)
{
    Rng rng(92);
    const int mu = 5;
    const auto xs = rng.normalVector(mu);
    const auto lut = LutD::buildDirect(xs, FpArith::Exact);
    for (uint32_t key = 0; key < lut.entries(); ++key) {
        double expect = 0.0;
        for (int j = 0; j < mu; ++j)
            expect += keySign(key, j, mu) * xs[static_cast<std::size_t>(j)];
        EXPECT_NEAR(lut.value(key), expect, 1e-12);
    }
}

TEST(LutD, Fp32ModeRoundsEachAdd)
{
    // A value needing >24 significand bits shows the rounding.
    const std::vector<double> xs = {1.0f, std::ldexp(1.0, -30)};
    const auto exact = LutD::buildDirect(xs, FpArith::Exact);
    const auto fp32 = LutD::buildDirect(xs, FpArith::Fp32);
    EXPECT_NE(exact.value(3), fp32.value(3));
    EXPECT_EQ(fp32.value(3), 1.0); // tiny addend absorbed
}

TEST(LutD, Fp16ModeValuesAreRepresentable)
{
    Rng rng(93);
    const auto xs = rng.normalVector(4);
    const auto lut = LutD::buildDirect(xs, FpArith::Fp16);
    for (uint32_t key = 0; key < lut.entries(); ++key) {
        const double v = lut.value(key);
        EXPECT_EQ(v, quantizeToFormat(v, ActFormat::FP16));
    }
}

TEST(LutI, ExactIntegerEntries)
{
    const auto lut = LutI::buildDirect({3, -7, 11, 20});
    EXPECT_EQ(lut.entries(), 16u);
    // key b'1010: +3 +7 +11 -20  (bit per element, MSB first)
    EXPECT_EQ(lut.value(0xA), 3 - (-7) + 11 - 20);
    EXPECT_EQ(lut.value(0xF), 3 - 7 + 11 + 20);
    EXPECT_EQ(lut.value(0x0), -(3 - 7 + 11 + 20));
}

TEST(LutI, SymmetryHoldsExactly)
{
    Rng rng(94);
    for (int mu = 1; mu <= 8; ++mu) {
        std::vector<int64_t> xs(static_cast<std::size_t>(mu));
        for (auto &x : xs)
            x = rng.uniformInt(-1000000, 1000000);
        const auto lut = LutI::buildDirect(xs);
        for (uint32_t key = 0; key < lut.entries(); ++key)
            EXPECT_EQ(lut.value(key),
                      -lut.value(complementKey(key, mu)));
    }
}

TEST(FpAddHelpers, RoundModesMatchFormats)
{
    const double v = 1.0 + std::ldexp(1.0, -20);
    EXPECT_EQ(fpRound(v, FpArith::Exact), v);
    EXPECT_EQ(fpRound(v, FpArith::Fp32), v); // representable in fp32
    EXPECT_EQ(fpRound(v, FpArith::Fp16), 1.0);
    EXPECT_EQ(fpRound(v, FpArith::Bf16), 1.0);
}

TEST(Lut, OutOfRangeKeyPanics)
{
    const auto lut = LutD::buildDirect({1.0, 2.0}, FpArith::Exact);
    EXPECT_THROW(lut.value(4), PanicError);
    const auto ilut = LutI::buildDirect({1, 2});
    EXPECT_THROW(ilut.value(4), PanicError);
}

} // namespace
} // namespace figlut
