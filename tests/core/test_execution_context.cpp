/**
 * @file
 * Tests for ExecutionContext reuse: the persistent pool is spawned
 * once and ratchets up, the typed workspace slot persists by type, and
 * lutGemm produces bit-identical results with a shared context vs
 * fresh per-call resources — across repeated calls, interleaved
 * shapes, and all backends.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/execution_context.h"
#include "core/lut_gemm.h"
#include "model/synthetic.h"
#include "quant/packing.h"

namespace figlut {
namespace {

BcqTensor
makeTensor(std::size_t m, std::size_t n, int bits, std::size_t group,
           bool offset, uint64_t seed)
{
    Rng rng(seed);
    const auto w = syntheticWeights(m, n, rng);
    BcqConfig cfg;
    cfg.bits = bits;
    cfg.groupSize = group;
    cfg.useOffset = offset;
    cfg.iterations = 1;
    return quantizeBcq(w, cfg);
}

TEST(ExecutionContext, PoolIsSpawnedOnceAndReused)
{
    ExecutionContext ctx(2);
    EXPECT_FALSE(ctx.hasPool());
    EXPECT_EQ(ctx.poolSpawns(), 0u);

    ThreadPool &first = ctx.pool();
    EXPECT_TRUE(ctx.hasPool());
    EXPECT_EQ(ctx.poolThreads(), 2);
    EXPECT_EQ(ctx.poolSpawns(), 1u);

    // Same-or-smaller requests reuse the live pool.
    EXPECT_EQ(&ctx.pool(2), &first);
    EXPECT_EQ(&ctx.pool(1), &first);
    EXPECT_EQ(&ctx.pool(0), &first);
    EXPECT_EQ(ctx.poolSpawns(), 1u);

    // A larger request replaces it, and the size ratchets up.
    ThreadPool &grown = ctx.pool(4);
    EXPECT_EQ(ctx.poolThreads(), 4);
    EXPECT_EQ(ctx.poolSpawns(), 2u);
    EXPECT_EQ(&ctx.pool(3), &grown);
    EXPECT_EQ(ctx.poolSpawns(), 2u);
}

TEST(ExecutionContext, PoolDefaultsToHardwareConcurrency)
{
    ExecutionContext ctx; // threads <= 0 = auto
    EXPECT_EQ(ctx.threads(), 0);
    ThreadPool &pool = ctx.pool();
    EXPECT_GE(pool.threadCount(), 1);
    EXPECT_EQ(pool.threadCount(), resolveThreadCount(0));
}

TEST(ExecutionContext, PoolExecutesWorkAfterReuse)
{
    ExecutionContext ctx(3);
    for (int round = 0; round < 3; ++round) {
        std::vector<int> hits(64, 0);
        ctx.pool().parallelForBlocked(hits.size(), 8,
                                      [&](BlockRange r) {
                                          for (std::size_t i = r.begin;
                                               i < r.end; ++i)
                                              hits[i] += 1;
                                      });
        for (const int h : hits)
            EXPECT_EQ(h, 1);
    }
    EXPECT_EQ(ctx.poolSpawns(), 1u);
}

TEST(ExecutionContext, WorkspacePersistsByTypeAndResetsOnSwitch)
{
    ExecutionContext ctx;
    auto &vec = ctx.workspace<std::vector<double>>();
    EXPECT_TRUE(vec.empty());
    vec.push_back(1.5);
    // Same type: same object, contents preserved.
    EXPECT_EQ(&ctx.workspace<std::vector<double>>(), &vec);
    EXPECT_EQ(ctx.workspace<std::vector<double>>().size(), 1u);

    // Different type: previous workspace destroyed, fresh object.
    auto &ints = ctx.workspace<std::vector<int>>();
    EXPECT_TRUE(ints.empty());

    // Switching back also starts fresh.
    EXPECT_TRUE(ctx.workspace<std::vector<double>>().empty());
}

TEST(ExecutionContext, SharedContextMatchesFreshResourcesAllBackends)
{
    // Two interleaved shapes through one context: results must equal
    // the per-call-resource path bit-for-bit on every backend, call
    // after call (the workspace carries state between them).
    const auto big = makeTensor(48, 64, 3, 16, true, 42);
    const auto small = makeTensor(17, 23, 2, 0, false, 43);
    Rng rng(44);
    const auto xBig = syntheticActivations(64, 3, rng);
    const auto xSmall = syntheticActivations(23, 2, rng);

    for (const auto backend :
         {LutGemmBackend::Reference, LutGemmBackend::Threaded,
          LutGemmBackend::Packed}) {
        for (const bool pre : {false, true}) {
            LutGemmConfig cfg;
            cfg.backend = backend;
            cfg.preAligned = pre;
            cfg.threads = 2;
            cfg.blockRows = 8;

            ExecutionContext ctx(2);
            for (int call = 0; call < 3; ++call) {
                LutGemmCounters fresh, shared;
                const auto yRef = lutGemm(big, xBig, cfg, &fresh);
                const auto yCtx =
                    lutGemm(big, xBig, cfg, &shared, &ctx);
                EXPECT_EQ(yRef, yCtx)
                    << "backend=" << static_cast<int>(backend)
                    << " pre=" << pre << " call=" << call;
                EXPECT_EQ(fresh.lutReads, shared.lutReads);
                EXPECT_EQ(fresh.lutGenerations, shared.lutGenerations);

                const auto sRef = lutGemm(small, xSmall, cfg);
                const auto sCtx =
                    lutGemm(small, xSmall, cfg, nullptr, &ctx);
                EXPECT_EQ(sRef, sCtx)
                    << "backend=" << static_cast<int>(backend)
                    << " pre=" << pre << " call=" << call;
            }
        }
    }
}

TEST(ExecutionContext, PrepackedSharedContextSpawnsOnePool)
{
    const auto tensor = makeTensor(64, 48, 4, 0, true, 77);
    const auto packed = packLutKeys(tensor, 4);
    Rng rng(78);
    const auto x = syntheticActivations(48, 2, rng);

    LutGemmConfig cfg;
    cfg.backend = LutGemmBackend::Packed;
    cfg.preAligned = true;
    cfg.threads = 2;
    cfg.blockRows = 16;

    ExecutionContext ctx(2);
    const auto first = lutGemm(tensor, x, cfg, packed, nullptr, &ctx);
    for (int call = 0; call < 4; ++call) {
        const auto y = lutGemm(tensor, x, cfg, packed, nullptr, &ctx);
        EXPECT_EQ(y, first) << "call " << call;
    }
    // Five calls, one pool spawn: the reuse the context exists for.
    EXPECT_EQ(ctx.poolSpawns(), 1u);
    EXPECT_EQ(ctx.poolThreads(), 2);
}

} // namespace
} // namespace figlut
