/**
 * @file
 * Differential tests for the Packed LUT-GEMM backend: bit-identity of
 * Reference vs Packed vs Threaded over randomized shapes/configs, the
 * pre-packed key reuse API, and the closed-form-vs-instrumented
 * counter proof.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine_numerics.h"
#include "core/lut_gemm.h"
#include "model/synthetic.h"
#include "quant/packing.h"

namespace figlut {
namespace {

struct GemmCase
{
    BcqTensor weights;
    MatrixD x;
};

GemmCase
makeCase(std::size_t m, std::size_t n, std::size_t batch, int bits,
         std::size_t group, bool offset, uint64_t seed)
{
    Rng rng(seed);
    GemmCase tc;
    const auto w = syntheticWeights(m, n, rng);
    BcqConfig cfg;
    cfg.bits = bits;
    cfg.groupSize = group;
    cfg.useOffset = offset;
    cfg.iterations = 3;
    tc.weights = quantizeBcq(w, cfg);
    tc.x = syntheticActivations(n, batch, rng);
    return tc;
}

MatrixD
runBackend(const GemmCase &tc, LutGemmConfig cfg, LutGemmBackend backend,
           LutGemmCounters *counters = nullptr)
{
    cfg.backend = backend;
    return lutGemm(tc.weights, tc.x, cfg, counters);
}

void
expectCountersEqual(const LutGemmCounters &a, const LutGemmCounters &b,
                    const std::string &what)
{
    EXPECT_EQ(a.lutGenerations, b.lutGenerations) << what;
    EXPECT_EQ(a.generatorAdds, b.generatorAdds) << what;
    EXPECT_EQ(a.lutReads, b.lutReads) << what;
    EXPECT_EQ(a.racAccumulates, b.racAccumulates) << what;
    EXPECT_EQ(a.scaleMuls, b.scaleMuls) << what;
    EXPECT_EQ(a.offsetOps, b.offsetOps) << what;
}

TEST(LutGemmPacked, BitIdenticalToReferenceBothPaths)
{
    const auto tc = makeCase(32, 64, 3, 3, 16, true, 1001);
    for (const bool pre : {false, true}) {
        LutGemmConfig cfg;
        cfg.preAligned = pre;
        cfg.threads = 4;
        cfg.blockRows = 8;
        const auto ref = runBackend(tc, cfg, LutGemmBackend::Reference);
        const auto packed = runBackend(tc, cfg, LutGemmBackend::Packed);
        EXPECT_TRUE(compareMatrices(packed, ref).identical)
            << "preAligned=" << pre;
    }
}

TEST(LutGemmPacked, TailChunksAndOddShapes)
{
    // n = 37 with mu = 4 leaves a padded tail chunk; groupSize 10
    // additionally puts a tail chunk in every group.
    for (const std::size_t group : {std::size_t{0}, std::size_t{10}}) {
        const auto tc = makeCase(7, 37, 2, 2, group, true, 1002);
        LutGemmConfig cfg;
        cfg.preAligned = true;
        cfg.blockRows = 3;
        const auto ref = runBackend(tc, cfg, LutGemmBackend::Reference);
        const auto packed = runBackend(tc, cfg, LutGemmBackend::Packed);
        EXPECT_TRUE(compareMatrices(packed, ref).identical)
            << "group=" << group;
    }
}

/**
 * The ISSUE's randomized differential suite: odd shapes, tail chunks,
 * mu in [1, kMaxMu], offset on/off, half-LUT on/off, generator
 * on/off, both numeric paths — Reference vs Packed vs Threaded must
 * agree bit for bit.
 */
TEST(LutGemmPacked, RandomizedDifferentialSuite)
{
    Rng shapes(1003);
    for (int trial = 0; trial < 16; ++trial) {
        const auto m = static_cast<std::size_t>(shapes.uniformInt(1, 60));
        const auto n = static_cast<std::size_t>(shapes.uniformInt(1, 80));
        const auto batch =
            static_cast<std::size_t>(shapes.uniformInt(1, 5));
        const int bits = static_cast<int>(shapes.uniformInt(1, 4));
        const bool grouped = shapes.uniformInt(0, 1) == 1;
        const std::size_t group =
            grouped ? static_cast<std::size_t>(
                          shapes.uniformInt(1, static_cast<int64_t>(n)))
                    : 0;
        const bool offset = shapes.uniformInt(0, 1) == 1;

        LutGemmConfig cfg;
        cfg.mu = static_cast<int>(shapes.uniformInt(1, kMaxMu));
        cfg.useHalfLut = cfg.mu >= 2 && shapes.uniformInt(0, 1) == 1;
        cfg.useGeneratorTree = shapes.uniformInt(0, 1) == 1;
        cfg.preAligned = shapes.uniformInt(0, 1) == 1;
        cfg.threads = static_cast<int>(shapes.uniformInt(1, 8));
        cfg.blockRows = static_cast<int>(shapes.uniformInt(1, 32));

        const auto tc = makeCase(m, n, batch, bits, group, offset,
                                 1100 + static_cast<uint64_t>(trial));
        const auto ref = runBackend(tc, cfg, LutGemmBackend::Reference);
        const auto thr = runBackend(tc, cfg, LutGemmBackend::Threaded);
        const auto packed = runBackend(tc, cfg, LutGemmBackend::Packed);

        const std::string what =
            "trial " + std::to_string(trial) + ": " + std::to_string(m) +
            "x" + std::to_string(n) + " batch " + std::to_string(batch) +
            " bits " + std::to_string(bits) + " group " +
            std::to_string(group) + " offset " + std::to_string(offset) +
            " mu " + std::to_string(cfg.mu) + " half " +
            std::to_string(cfg.useHalfLut) + " tree " +
            std::to_string(cfg.useGeneratorTree) + " pre " +
            std::to_string(cfg.preAligned) + " threads " +
            std::to_string(cfg.threads) + " blockRows " +
            std::to_string(cfg.blockRows);
        EXPECT_TRUE(compareMatrices(thr, ref).identical) << what;
        EXPECT_TRUE(compareMatrices(packed, ref).identical) << what;
    }
}

TEST(LutGemmPacked, PrepackedKeysMatchInternalPacking)
{
    const auto tc = makeCase(24, 48, 2, 3, 12, true, 1004);
    LutGemmConfig cfg;
    cfg.backend = LutGemmBackend::Packed;
    cfg.preAligned = true;
    cfg.blockRows = 7;
    const auto packedKeys = packLutKeys(tc.weights, cfg.mu);
    const auto internal = lutGemm(tc.weights, tc.x, cfg);
    // Reuse the same pre-packing across repeated calls.
    for (int call = 0; call < 2; ++call) {
        const auto reused =
            lutGemm(tc.weights, tc.x, cfg, packedKeys);
        EXPECT_TRUE(compareMatrices(reused, internal).identical)
            << "call " << call;
    }
}

TEST(LutGemmPacked, PrepackedValidationThrows)
{
    const auto tc = makeCase(8, 16, 1, 2, 0, false, 1005);
    LutGemmConfig cfg;
    cfg.backend = LutGemmBackend::Packed;
    const auto mismatchedMu = packLutKeys(tc.weights, cfg.mu + 1);
    EXPECT_THROW(lutGemm(tc.weights, tc.x, cfg, mismatchedMu),
                 FatalError);

    const auto other = makeCase(9, 16, 1, 2, 0, false, 1006);
    const auto wrongShape = packLutKeys(other.weights, cfg.mu);
    EXPECT_THROW(lutGemm(tc.weights, tc.x, cfg, wrongShape), FatalError);

    // Pre-packed keys only make sense for the Packed backend.
    const auto good = packLutKeys(tc.weights, cfg.mu);
    LutGemmConfig refCfg = cfg;
    refCfg.backend = LutGemmBackend::Reference;
    EXPECT_THROW(lutGemm(tc.weights, tc.x, refCfg, good), FatalError);
}

TEST(LutGemmPacked, InvalidBlockRowsThrows)
{
    const auto tc = makeCase(4, 16, 1, 2, 0, false, 1007);
    LutGemmConfig cfg;
    cfg.backend = LutGemmBackend::Packed;
    cfg.blockRows = 0;
    EXPECT_THROW(lutGemm(tc.weights, tc.x, cfg), FatalError);
}

// ---------------------------------------- closed-form counter proofs

/**
 * The fast path's closed-form counters must equal the instrumented
 * per-read counts for every backend over the randomized suite — this
 * is the differential proof the ISSUE requires for stripping the
 * increments out of the hot loops.
 */
TEST(LutGemmCounters, ClosedFormMatchesInstrumentedRandomized)
{
    Rng shapes(1008);
    for (int trial = 0; trial < 10; ++trial) {
        const auto m = static_cast<std::size_t>(shapes.uniformInt(1, 50));
        const auto n = static_cast<std::size_t>(shapes.uniformInt(1, 60));
        const auto batch =
            static_cast<std::size_t>(shapes.uniformInt(1, 4));
        const int bits = static_cast<int>(shapes.uniformInt(1, 3));
        const bool grouped = shapes.uniformInt(0, 1) == 1;
        const std::size_t group =
            grouped ? static_cast<std::size_t>(
                          shapes.uniformInt(1, static_cast<int64_t>(n)))
                    : 0;
        const bool offset = shapes.uniformInt(0, 1) == 1;

        LutGemmConfig cfg;
        cfg.mu = static_cast<int>(shapes.uniformInt(1, 6));
        cfg.useHalfLut = cfg.mu >= 2 && shapes.uniformInt(0, 1) == 1;
        cfg.useGeneratorTree = shapes.uniformInt(0, 1) == 1;
        cfg.preAligned = shapes.uniformInt(0, 1) == 1;
        cfg.threads = static_cast<int>(shapes.uniformInt(1, 4));
        cfg.blockRows = static_cast<int>(shapes.uniformInt(1, 16));

        const auto tc = makeCase(m, n, batch, bits, group, offset,
                                 1200 + static_cast<uint64_t>(trial));
        for (const auto backend :
             {LutGemmBackend::Reference, LutGemmBackend::Threaded,
              LutGemmBackend::Packed}) {
            LutGemmCounters closed, instrumented;
            cfg.instrument = false;
            (void)runBackend(tc, cfg, backend, &closed);
            cfg.instrument = true;
            (void)runBackend(tc, cfg, backend, &instrumented);
            expectCountersEqual(
                closed, instrumented,
                "trial " + std::to_string(trial) + " backend " +
                    std::to_string(static_cast<int>(backend)) + " mu " +
                    std::to_string(cfg.mu) + " blockRows " +
                    std::to_string(cfg.blockRows));
        }
    }
}

TEST(LutGemmCounters, PackedBuildsEachLutSetExactlyOnce)
{
    // Unlike Threaded (which rebuilds per row block), Packed must
    // report batch x totalChunks LUT generations no matter how many
    // row tiles execute: 32 rows / blockRows 4 = 8 tiles here.
    const auto tc = makeCase(32, 64, 2, 3, 0, true, 1009);
    LutGemmConfig cfg;
    cfg.mu = 4;
    cfg.blockRows = 4;
    cfg.threads = 4;

    LutGemmCounters ref, thr, packed;
    (void)runBackend(tc, cfg, LutGemmBackend::Reference, &ref);
    (void)runBackend(tc, cfg, LutGemmBackend::Threaded, &thr);
    (void)runBackend(tc, cfg, LutGemmBackend::Packed, &packed);

    // 64 cols / mu 4 = 16 chunks, 2 columns -> 32 sets.
    EXPECT_EQ(ref.lutGenerations, 32u);
    EXPECT_EQ(packed.lutGenerations, ref.lutGenerations);
    EXPECT_EQ(packed.generatorAdds, ref.generatorAdds);
    EXPECT_EQ(thr.lutGenerations, ref.lutGenerations * 8);
    // Row-space work is traversal-invariant.
    EXPECT_EQ(packed.lutReads, ref.lutReads);
    EXPECT_EQ(packed.racAccumulates, ref.racAccumulates);
    EXPECT_EQ(packed.scaleMuls, ref.scaleMuls);
    EXPECT_EQ(packed.offsetOps, ref.offsetOps);
}

/**
 * Regression for the counter-ordering bug: generatorAdds used to be
 * sampled from the generator stats *before* the first generation ran.
 * With exactly one LUT generation the counter must already carry that
 * generation's tree adds.
 */
TEST(LutGemmCounters, GeneratorAddsAttributedAfterFirstGeneration)
{
    // n = mu = 4, batch 1, one group: exactly one LUT generation.
    const auto tc = makeCase(2, 4, 1, 1, 0, false, 1010);
    LutGemmConfig cfg;
    cfg.mu = 4;
    cfg.useGeneratorTree = true;
    cfg.instrument = true;
    LutGemmCounters cnt;
    (void)lutGemm(tc.weights, tc.x, cfg, &cnt);
    EXPECT_EQ(cnt.lutGenerations, 1u);
    EXPECT_EQ(cnt.generatorAdds, lutGeneratorAdderCount(4).treeAdds);
}

TEST(LutGemmCounters, GeneratorAddsScaleWithGenerations)
{
    // Multi-chunk, multi-plane, multi-column: every generation must
    // contribute exactly one tree's worth of adds.
    const auto tc = makeCase(4, 24, 3, 2, 8, true, 1011);
    for (const bool instrument : {false, true}) {
        LutGemmConfig cfg;
        cfg.mu = 4;
        cfg.useGeneratorTree = true;
        cfg.instrument = instrument;
        LutGemmCounters cnt;
        (void)lutGemm(tc.weights, tc.x, cfg, &cnt);
        // 3 groups x 2 chunks x 3 columns = 18 generations.
        EXPECT_EQ(cnt.lutGenerations, 18u) << instrument;
        EXPECT_EQ(cnt.generatorAdds,
                  18u * lutGeneratorAdderCount(4).treeAdds)
            << instrument;
    }
}

TEST(LutGemmPacked, EngineNumericsPlumbsPackedBackend)
{
    // The FIGLUT engine wrapper must honour the Packed backend and
    // stay bit-identical to its Reference execution.
    const auto tc = makeCase(12, 40, 3, 3, 20, true, 1012);
    NumericsConfig ref;
    NumericsConfig packed;
    packed.backend = LutGemmBackend::Packed;
    packed.threads = 2;
    for (const bool pre : {false, true}) {
        const auto a = figlutGemm(tc.weights, tc.x, ref, pre);
        const auto b = figlutGemm(tc.weights, tc.x, packed, pre);
        EXPECT_TRUE(compareMatrices(a, b).identical) << "pre=" << pre;
    }
}

} // namespace
} // namespace figlut
