/** @file Tests for the per-engine accuracy kernels (Table IV basis). */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/engine_numerics.h"
#include "model/synthetic.h"
#include "quant/uniform_to_bcq.h"

namespace figlut {
namespace {

struct Fixture
{
    MatrixD weights;   ///< original FP weights
    RtnTensor rtn;     ///< 4-bit uniform
    BcqTensor bcq;     ///< converted (exact) BCQ form
    MatrixD dequant;   ///< uniform dequantized values
    MatrixD x;         ///< activations
};

Fixture
makeFixture(std::size_t m, std::size_t n, std::size_t batch,
            uint64_t seed)
{
    Rng rng(seed);
    Fixture f;
    f.weights = syntheticWeights(m, n, rng);
    RtnConfig cfg;
    cfg.bits = 4;
    f.rtn = quantizeRtn(f.weights, cfg);
    f.bcq = uniformToBcq(f.rtn);
    f.dequant = f.rtn.dequantAll();
    f.x = syntheticActivations(n, batch, rng);
    return f;
}

TEST(EngineNames, AllDistinct)
{
    EXPECT_EQ(engineName(EngineKind::FPE), "FPE");
    EXPECT_EQ(engineName(EngineKind::IFPU), "iFPU");
    EXPECT_EQ(engineName(EngineKind::FIGNA), "FIGNA");
    EXPECT_EQ(engineName(EngineKind::FIGLUT_F), "FIGLUT-F");
    EXPECT_EQ(engineName(EngineKind::FIGLUT_I), "FIGLUT-I");
}

TEST(Oracle, MatchesManualDot)
{
    MatrixD w(2, 2);
    w(0, 0) = 1;
    w(0, 1) = 2;
    w(1, 0) = 3;
    w(1, 1) = 4;
    MatrixD x(2, 1);
    x(0, 0) = 10;
    x(1, 0) = 100;
    const auto y = oracleGemm(w, x);
    EXPECT_DOUBLE_EQ(y(0, 0), 210.0);
    EXPECT_DOUBLE_EQ(y(1, 0), 430.0);
}

TEST(FpReference, CloseToOracle)
{
    const auto f = makeFixture(16, 128, 4, 701);
    NumericsConfig nc;
    const auto ref = fpReferenceGemm(f.dequant, f.x, nc);

    MatrixD wq(f.dequant.rows(), f.dequant.cols());
    for (std::size_t i = 0; i < wq.size(); ++i)
        wq.at(i) = quantizeToFormat(f.dequant.at(i), ActFormat::FP16);
    MatrixD xq(f.x.rows(), f.x.cols());
    for (std::size_t i = 0; i < xq.size(); ++i)
        xq.at(i) = quantizeToFormat(f.x.at(i), ActFormat::FP16);
    const auto oracle = oracleGemm(wq, xq);
    EXPECT_LT(compareMatrices(ref, oracle).nrmse(), 1e-5);
}

TEST(FpReference, DeterministicAcrossCalls)
{
    const auto f = makeFixture(8, 64, 2, 702);
    NumericsConfig nc;
    const auto a = fpReferenceGemm(f.dequant, f.x, nc);
    const auto b = fpReferenceGemm(f.dequant, f.x, nc);
    EXPECT_TRUE(compareMatrices(a, b).identical);
}

TEST(Figna, CloseToUniformOracle)
{
    const auto f = makeFixture(16, 128, 4, 703);
    NumericsConfig nc;
    const auto y = fignaGemm(f.rtn, f.x, nc);

    MatrixD xq(f.x.rows(), f.x.cols());
    for (std::size_t i = 0; i < xq.size(); ++i)
        xq.at(i) = quantizeToFormat(f.x.at(i), ActFormat::FP16);
    const auto oracle = oracleGemm(f.dequant, xq);
    // 24-bit aligned datapath: near-lossless (paper's FIGNA claim).
    EXPECT_LT(compareMatrices(y, oracle).nrmse(), 1e-4);
}

TEST(Ifpu, CloseToBcqOracle)
{
    const auto f = makeFixture(16, 128, 4, 704);
    NumericsConfig nc;
    const auto y = ifpuGemm(f.bcq, f.x, nc);

    MatrixD xq(f.x.rows(), f.x.cols());
    for (std::size_t i = 0; i < xq.size(); ++i)
        xq.at(i) = quantizeToFormat(f.x.at(i), ActFormat::FP16);
    const auto oracle = oracleGemm(f.bcq.dequantAll(), xq);
    EXPECT_LT(compareMatrices(y, oracle).nrmse(), 1e-4);
}

TEST(TableIV, FiglutFMatchesFpReferenceClosely)
{
    // The Table IV claim: FIGLUT-F shows no accuracy loss vs the GPU
    // thanks to FP32 accumulation. The two kernels are not bit-equal —
    // operation order differs and the GPU path rounds dequantized
    // weights into FP16 while the LUT path applies alpha/offset
    // exactly — so "no loss" means agreement at FP16-output
    // granularity within a few ulps, plus a tiny global error.
    const auto f = makeFixture(32, 256, 4, 705);
    NumericsConfig nc;
    const auto gpu = fpReferenceGemm(f.dequant, f.x, nc);
    const auto fig = figlutGemm(f.bcq, f.x, nc, false);

    // Equal accuracy against the FP64 oracle on format-quantized
    // inputs: neither engine may be meaningfully worse than the other.
    MatrixD xq(f.x.rows(), f.x.cols());
    for (std::size_t i = 0; i < xq.size(); ++i)
        xq.at(i) = quantizeToFormat(f.x.at(i), ActFormat::FP16);
    const auto oracle = oracleGemm(f.dequant, xq);
    const double gpu_err = compareMatrices(gpu, oracle).nrmse();
    const double fig_err = compareMatrices(fig, oracle).nrmse();
    EXPECT_LT(gpu_err, 1e-3);
    EXPECT_LT(fig_err, 1e-3);
    EXPECT_LT(fig_err, 2.0 * gpu_err + 1e-9);

    // And the two engines agree with each other to FP16 precision.
    EXPECT_LT(compareMatrices(fig, gpu).nrmse(), 1e-3);
}

TEST(TableIV, FiglutIWithinTinyErrorOfFiglutF)
{
    const auto f = makeFixture(32, 256, 4, 706);
    NumericsConfig nc;
    const auto ff = figlutGemm(f.bcq, f.x, nc, false);
    const auto fi = figlutGemm(f.bcq, f.x, nc, true);
    EXPECT_LT(compareMatrices(fi, ff).nrmse(), 1e-4);
}

TEST(TableIV, NarrowAlignmentDegradesFiglutI)
{
    // Shrinking the aligned datapath must visibly hurt accuracy —
    // the knob behind the iFPU/FIGNA near-losslessness claim.
    const auto f = makeFixture(16, 128, 2, 707);
    NumericsConfig wide;
    wide.alignFracBits = 24;
    NumericsConfig narrow;
    narrow.alignFracBits = 6;

    MatrixD xq(f.x.rows(), f.x.cols());
    for (std::size_t i = 0; i < xq.size(); ++i)
        xq.at(i) = quantizeToFormat(f.x.at(i), ActFormat::FP16);
    const auto oracle = oracleGemm(f.bcq.dequantAll(), xq);

    const auto err_wide =
        compareMatrices(figlutGemm(f.bcq, f.x, wide, true), oracle);
    const auto err_narrow =
        compareMatrices(figlutGemm(f.bcq, f.x, narrow, true), oracle);
    EXPECT_GT(err_narrow.nrmse(), 4.0 * err_wide.nrmse());
}

TEST(CompareMatrices, ReportFields)
{
    MatrixD a(1, 2), b(1, 2);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    b(0, 0) = 1.5;
    b(0, 1) = 2.0;
    const auto r = compareMatrices(a, b);
    EXPECT_FALSE(r.identical);
    EXPECT_DOUBLE_EQ(r.maxAbs, 0.5);
    EXPECT_DOUBLE_EQ(r.mse, 0.125);
    EXPECT_NEAR(r.maxRel, 0.5 / 1.5, 1e-12);

    const auto same = compareMatrices(b, b);
    EXPECT_TRUE(same.identical);
    EXPECT_EQ(same.maxAbs, 0.0);
}

TEST(CompareMatrices, ShapeMismatchPanics)
{
    MatrixD a(1, 2), b(2, 1);
    EXPECT_THROW(compareMatrices(a, b), PanicError);
}

/** Engines vs oracle across activation formats (Fig. 13's variants). */
class EngineFormatSweep : public ::testing::TestWithParam<ActFormat>
{};

TEST_P(EngineFormatSweep, AllEnginesTrackOracle)
{
    const auto fmt = GetParam();
    const auto f = makeFixture(16, 96, 2, 708);
    NumericsConfig nc;
    nc.actFormat = fmt;
    nc.alignFracBits = 30;

    MatrixD xq(f.x.rows(), f.x.cols());
    for (std::size_t i = 0; i < xq.size(); ++i)
        xq.at(i) = quantizeToFormat(f.x.at(i), fmt);
    const auto oracle = oracleGemm(f.bcq.dequantAll(), xq);
    const double tol = fmt == ActFormat::BF16 ? 3e-2 : 2e-3;

    EXPECT_LT(compareMatrices(ifpuGemm(f.bcq, f.x, nc), oracle).nrmse(),
              tol);
    EXPECT_LT(compareMatrices(figlutGemm(f.bcq, f.x, nc, true), oracle)
                  .nrmse(),
              tol);
    EXPECT_LT(compareMatrices(figlutGemm(f.bcq, f.x, nc, false), oracle)
                  .nrmse(),
              tol);
}

INSTANTIATE_TEST_SUITE_P(Fmt, EngineFormatSweep,
                         ::testing::Values(ActFormat::FP16,
                                           ActFormat::BF16,
                                           ActFormat::FP32));

} // namespace
} // namespace figlut
