/** @file Tests for the tree LUT generator (paper Fig. 11). */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/lut_generator.h"

namespace figlut {
namespace {

TEST(GeneratorCount, PaperNumbersForMuFour)
{
    const auto s = lutGeneratorAdderCount(4);
    EXPECT_EQ(s.upperAdds, 2u);
    EXPECT_EQ(s.lowerAdds, 4u);
    EXPECT_EQ(s.combineAdds, 8u);
    EXPECT_EQ(s.treeAdds, 14u);   // paper: "requires 14 additions"
    EXPECT_EQ(s.naiveAdds, 24u);  // 2^(mu-1) * (mu-1)
    EXPECT_NEAR(s.savingRatio, 0.42, 0.005); // paper: 42% reduction
}

TEST(GeneratorCount, SmallMuCases)
{
    const auto s2 = lutGeneratorAdderCount(2);
    EXPECT_EQ(s2.treeAdds, 2u);
    EXPECT_EQ(s2.naiveAdds, 2u);
    EXPECT_DOUBLE_EQ(s2.savingRatio, 0.0);

    const auto s3 = lutGeneratorAdderCount(3);
    EXPECT_EQ(s3.treeAdds, 6u);
    EXPECT_EQ(s3.naiveAdds, 8u);
    EXPECT_NEAR(s3.savingRatio, 0.25, 1e-12);
}

TEST(GeneratorCount, SavingsGrowWithMu)
{
    double prev = -1.0;
    for (int mu = 2; mu <= 8; ++mu) {
        const auto s = lutGeneratorAdderCount(mu);
        EXPECT_LE(s.treeAdds, s.naiveAdds);
        EXPECT_GE(s.savingRatio, prev) << "mu=" << mu;
        prev = s.savingRatio;
    }
}

TEST(GeneratorCount, BeatsPerRacAddersBeyondKFour)
{
    // Paper: for k > 4 the generator performs fewer additions than
    // straightforward hardware with k RACs (mu=4: 14 vs k*(mu-1)).
    const auto s = lutGeneratorAdderCount(4);
    EXPECT_GT(s.treeAdds, 4u * 3u);  // k=4: generator loses
    EXPECT_LT(s.treeAdds, 5u * 3u);  // k=5: generator wins
}

/** Property: tree-generated tables equal direct enumeration. */
class GeneratorMuSweep : public ::testing::TestWithParam<int>
{};

TEST_P(GeneratorMuSweep, ExactModeEqualsDirect)
{
    const int mu = GetParam();
    Rng rng(401 + static_cast<uint64_t>(mu));
    const LutGenerator gen(mu, FpArith::Exact);
    for (int trial = 0; trial < 20; ++trial) {
        const auto xs = rng.normalVector(static_cast<std::size_t>(mu));
        const auto tree = gen.generateHalf(xs);
        const auto direct = HalfLutD::buildDirect(xs, FpArith::Exact);
        for (uint32_t key = 0; key < lutEntries(mu); ++key)
            EXPECT_NEAR(tree.value(key), direct.value(key), 1e-12)
                << "mu=" << mu << " key=" << key;
    }
}

TEST_P(GeneratorMuSweep, IntegerModeEqualsDirectExactly)
{
    const int mu = GetParam();
    Rng rng(501 + static_cast<uint64_t>(mu));
    const LutGenerator gen(mu, FpArith::Exact);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<int64_t> xs(static_cast<std::size_t>(mu));
        for (auto &x : xs)
            x = rng.uniformInt(-1000000, 1000000);
        const auto tree = gen.generateHalfInt(xs);
        const auto direct = HalfLutI::buildDirect(xs);
        for (uint32_t key = 0; key < lutEntries(mu); ++key)
            EXPECT_EQ(tree.value(key), direct.value(key))
                << "mu=" << mu << " key=" << key;
    }
}

INSTANTIATE_TEST_SUITE_P(Mu, GeneratorMuSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8));

TEST(Generator, Fp32ModeStaysWithinOneUlpOfDirect)
{
    // Different add orders round differently, but only in the last
    // place for a 4-term sum.
    Rng rng(411);
    const LutGenerator gen(4, FpArith::Fp32);
    for (int trial = 0; trial < 200; ++trial) {
        const auto xs = rng.normalVector(4);
        // Cancellation can make the result tiny while intermediate
        // rounding is at the scale of the operands, so the bound is in
        // ulps of the operand magnitude sum.
        double mag = 0.0;
        for (const double x : xs)
            mag += std::abs(x);
        const auto tree = gen.generateHalf(xs);
        const auto direct = HalfLutD::buildDirect(xs, FpArith::Fp32);
        for (uint32_t key = 0; key < 16; ++key) {
            const double t = tree.value(key);
            const double d = direct.value(key);
            EXPECT_NEAR(t, d, mag * 2.4e-7 + 1e-30);
        }
    }
}

TEST(Generator, WrongInputLengthPanics)
{
    const LutGenerator gen(4, FpArith::Exact);
    EXPECT_THROW(gen.generateHalf({1.0, 2.0}), PanicError);
    EXPECT_THROW(gen.generateHalfInt({1, 2, 3}), PanicError);
}

TEST(Generator, StatsAccessorMatchesStandalone)
{
    const LutGenerator gen(6, FpArith::Exact);
    const auto s = lutGeneratorAdderCount(6);
    EXPECT_EQ(gen.stats().treeAdds, s.treeAdds);
    EXPECT_EQ(gen.mu(), 6);
}

} // namespace
} // namespace figlut
