/**
 * @file
 * Tests for the ThreadPool work queue and the threaded LUT-GEMM
 * backend's bit-identity against the scalar Reference backend.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "core/engine_numerics.h"
#include "core/lut_gemm.h"
#include "core/parallel.h"
#include "model/synthetic.h"
#include "quant/uniform_to_bcq.h"

namespace figlut {
namespace {

// ---------------------------------------------------------------- pool

TEST(Parallel, ResolveThreadCount)
{
    EXPECT_GE(resolveThreadCount(0), 1);
    EXPECT_GE(resolveThreadCount(-3), 1);
    EXPECT_EQ(resolveThreadCount(1), 1);
    EXPECT_EQ(resolveThreadCount(7), 7);
}

TEST(Parallel, EmptyBatchCompletesImmediately)
{
    ThreadPool pool(2);
    int calls = 0;
    pool.parallelForBlocked(0, 16, [&](BlockRange) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.wait(); // idle wait must not deadlock
}

TEST(Parallel, CoversIndexSpaceExactlyOnce)
{
    ThreadPool pool(4);
    const std::size_t total = 1037; // not a multiple of the block size
    std::vector<std::atomic<int>> hits(total);
    pool.parallelForBlocked(total, 64, [&](BlockRange r) {
        EXPECT_LE(r.begin, r.end);
        EXPECT_LE(r.end, total);
        for (std::size_t i = r.begin; i < r.end; ++i)
            hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < total; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Parallel, SingleThreadMatchesSerialSum)
{
    std::vector<int> values(513);
    std::iota(values.begin(), values.end(), 1);
    const long expected =
        std::accumulate(values.begin(), values.end(), 0L);

    ThreadPool pool(1);
    std::atomic<long> sum{0};
    pool.parallelForBlocked(values.size(), 10, [&](BlockRange r) {
        long partial = 0;
        for (std::size_t i = r.begin; i < r.end; ++i)
            partial += values[i];
        sum.fetch_add(partial);
    });
    EXPECT_EQ(sum.load(), expected);
}

TEST(Parallel, OversubscriptionCompletes)
{
    // Far more workers than items (and than cores): every item must
    // still run exactly once and wait() must return.
    ThreadPool pool(32);
    std::atomic<int> calls{0};
    pool.parallelForBlocked(3, 1, [&](BlockRange r) {
        EXPECT_EQ(r.size(), 1u);
        calls.fetch_add(1);
    });
    EXPECT_EQ(calls.load(), 3);
}

TEST(Parallel, TaskExceptionRethrownFromWait)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelForBlocked(
                     8, 1,
                     [&](BlockRange r) {
                         if (r.begin == 5)
                             fatal("boom at ", r.begin);
                     }),
                 FatalError);
    // Pool must remain usable after an exception.
    std::atomic<int> calls{0};
    pool.parallelForBlocked(4, 2, [&](BlockRange) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 2);
}

// ------------------------------------------- threaded LUT-GEMM backend

struct GemmCase
{
    BcqTensor weights;
    MatrixD x;
};

GemmCase
makeCase(std::size_t m, std::size_t n, std::size_t batch, int bits,
         std::size_t group, bool offset, uint64_t seed)
{
    Rng rng(seed);
    GemmCase tc;
    const auto w = syntheticWeights(m, n, rng);
    BcqConfig cfg;
    cfg.bits = bits;
    cfg.groupSize = group;
    cfg.useOffset = offset;
    cfg.iterations = 3;
    tc.weights = quantizeBcq(w, cfg);
    tc.x = syntheticActivations(n, batch, rng);
    return tc;
}

MatrixD
runBackend(const GemmCase &tc, LutGemmBackend backend, int threads,
           int block_rows, bool pre_aligned,
           LutGemmCounters *counters = nullptr)
{
    LutGemmConfig cfg;
    cfg.backend = backend;
    cfg.threads = threads;
    cfg.blockRows = block_rows;
    cfg.preAligned = pre_aligned;
    return lutGemm(tc.weights, tc.x, cfg, counters);
}

TEST(LutGemmThreaded, OneThreadBitIdenticalToReference)
{
    const auto tc = makeCase(32, 64, 3, 3, 16, true, 901);
    for (const bool pre : {false, true}) {
        const auto ref =
            runBackend(tc, LutGemmBackend::Reference, 0, 64, pre);
        const auto thr =
            runBackend(tc, LutGemmBackend::Threaded, 1, 64, pre);
        EXPECT_TRUE(compareMatrices(thr, ref).identical)
            << "preAligned=" << pre;
    }
}

TEST(LutGemmThreaded, ManyThreadsBitIdenticalToReference)
{
    const auto tc = makeCase(64, 96, 4, 2, 24, true, 902);
    for (const bool pre : {false, true}) {
        const auto ref =
            runBackend(tc, LutGemmBackend::Reference, 0, 64, pre);
        const auto thr =
            runBackend(tc, LutGemmBackend::Threaded, 8, 8, pre);
        EXPECT_TRUE(compareMatrices(thr, ref).identical)
            << "preAligned=" << pre;
    }
}

TEST(LutGemmThreaded, BlockRowsSweepIsTilingInvariant)
{
    const auto tc = makeCase(40, 48, 2, 3, 0, true, 903);
    const auto ref = runBackend(tc, LutGemmBackend::Reference, 0, 64, true);
    // Including block sizes that do not divide M and exceed M.
    for (const int block_rows : {1, 3, 7, 16, 40, 64, 1000}) {
        const auto thr = runBackend(tc, LutGemmBackend::Threaded, 4,
                                    block_rows, true);
        EXPECT_TRUE(compareMatrices(thr, ref).identical)
            << "blockRows=" << block_rows;
    }
}

TEST(LutGemmThreaded, RandomizedShapesDifferential)
{
    Rng shapes(904);
    for (int trial = 0; trial < 12; ++trial) {
        const auto m = static_cast<std::size_t>(shapes.uniformInt(1, 70));
        const auto n = static_cast<std::size_t>(shapes.uniformInt(1, 90));
        const auto batch =
            static_cast<std::size_t>(shapes.uniformInt(1, 5));
        const int bits = static_cast<int>(shapes.uniformInt(1, 4));
        const bool grouped = shapes.uniformInt(0, 1) == 1;
        const std::size_t group =
            grouped ? static_cast<std::size_t>(
                          shapes.uniformInt(1, static_cast<int64_t>(n)))
                    : 0;
        const bool offset = shapes.uniformInt(0, 1) == 1;
        const bool pre = shapes.uniformInt(0, 1) == 1;
        const int threads = static_cast<int>(shapes.uniformInt(1, 8));
        const int block_rows = static_cast<int>(shapes.uniformInt(1, 32));

        const auto tc = makeCase(m, n, batch, bits, group, offset,
                                 905 + static_cast<uint64_t>(trial));
        const auto ref =
            runBackend(tc, LutGemmBackend::Reference, 0, 64, pre);
        const auto thr = runBackend(tc, LutGemmBackend::Threaded, threads,
                                    block_rows, pre);
        EXPECT_TRUE(compareMatrices(thr, ref).identical)
            << "trial " << trial << ": " << m << "x" << n << " batch "
            << batch << " bits " << bits << " group " << group
            << " offset " << offset << " pre " << pre << " threads "
            << threads << " blockRows " << block_rows;
    }
}

TEST(LutGemmThreaded, CountersMatchReferenceExceptLutBuilds)
{
    const auto tc = makeCase(32, 64, 2, 3, 0, true, 906);
    LutGemmCounters ref_cnt, thr_cnt;
    (void)runBackend(tc, LutGemmBackend::Reference, 0, 64, false, &ref_cnt);
    (void)runBackend(tc, LutGemmBackend::Threaded, 4, 8, false, &thr_cnt);
    // Row-space work is tiling-invariant.
    EXPECT_EQ(thr_cnt.lutReads, ref_cnt.lutReads);
    EXPECT_EQ(thr_cnt.racAccumulates, ref_cnt.racAccumulates);
    EXPECT_EQ(thr_cnt.scaleMuls, ref_cnt.scaleMuls);
    EXPECT_EQ(thr_cnt.offsetOps, ref_cnt.offsetOps);
    // LUTs are rebuilt once per row block: 32 rows / 8 = 4 blocks.
    EXPECT_EQ(thr_cnt.lutGenerations, ref_cnt.lutGenerations * 4);
    EXPECT_EQ(thr_cnt.generatorAdds, ref_cnt.generatorAdds * 4);
}

TEST(LutGemmThreaded, InvalidBlockRowsThrows)
{
    const auto tc = makeCase(4, 16, 1, 2, 0, false, 907);
    LutGemmConfig cfg;
    cfg.backend = LutGemmBackend::Threaded;
    cfg.blockRows = 0;
    EXPECT_THROW(lutGemm(tc.weights, tc.x, cfg), FatalError);
}

TEST(LutGemmThreaded, AbsurdThreadCountThrowsInsteadOfSpawning)
{
    const auto tc = makeCase(4, 16, 1, 2, 0, false, 908);
    LutGemmConfig cfg;
    cfg.backend = LutGemmBackend::Threaded;
    cfg.threads = kMaxLutGemmThreads + 1;
    EXPECT_THROW(lutGemm(tc.weights, tc.x, cfg), FatalError);
}

} // namespace
} // namespace figlut
