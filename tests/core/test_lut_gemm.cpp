/** @file Tests for the functional LUT-GEMM kernel. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/engine_numerics.h"
#include "core/lut_gemm.h"
#include "model/synthetic.h"
#include "quant/uniform_to_bcq.h"

namespace figlut {
namespace {

struct TestCase
{
    BcqTensor weights;
    MatrixD x;
    MatrixD dequant;
};

TestCase
makeCase(std::size_t m, std::size_t n, std::size_t batch, int bits,
         std::size_t group, bool offset, uint64_t seed)
{
    Rng rng(seed);
    TestCase tc;
    const auto w = syntheticWeights(m, n, rng);
    BcqConfig cfg;
    cfg.bits = bits;
    cfg.groupSize = group;
    cfg.useOffset = offset;
    cfg.iterations = 3;
    tc.weights = quantizeBcq(w, cfg);
    tc.x = syntheticActivations(n, batch, rng);
    tc.dequant = tc.weights.dequantAll();
    return tc;
}

TEST(LutGemm, ExactModeMatchesOracle)
{
    const auto tc = makeCase(8, 24, 3, 3, 0, true, 601);
    LutGemmConfig cfg;
    cfg.mu = 4;
    cfg.arith = FpArith::Exact;
    cfg.actFormat = ActFormat::FP32;
    const auto y = lutGemm(tc.weights, tc.x, cfg);

    // Oracle on format-quantized inputs.
    MatrixD xq(tc.x.rows(), tc.x.cols());
    for (std::size_t i = 0; i < tc.x.size(); ++i)
        xq.at(i) = quantizeToFormat(tc.x.at(i), ActFormat::FP32);
    const auto oracle = oracleGemm(tc.dequant, xq);

    const auto err = compareMatrices(y, oracle);
    EXPECT_LT(err.maxRel, 1e-10);
}

/** Property: every mu produces the same (near-oracle) result. */
class LutGemmMuSweep : public ::testing::TestWithParam<int>
{};

TEST_P(LutGemmMuSweep, MuInvariance)
{
    const int mu = GetParam();
    const auto tc = makeCase(6, 40, 2, 2, 0, true,
                             700 + static_cast<uint64_t>(mu));
    LutGemmConfig cfg;
    cfg.mu = mu;
    cfg.arith = FpArith::Exact;
    cfg.actFormat = ActFormat::FP32;
    const auto y = lutGemm(tc.weights, tc.x, cfg);

    MatrixD xq(tc.x.rows(), tc.x.cols());
    for (std::size_t i = 0; i < tc.x.size(); ++i)
        xq.at(i) = quantizeToFormat(tc.x.at(i), ActFormat::FP32);
    const auto oracle = oracleGemm(tc.dequant, xq);
    EXPECT_LT(compareMatrices(y, oracle).maxRel, 1e-9) << "mu=" << mu;
}

INSTANTIATE_TEST_SUITE_P(Mu, LutGemmMuSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 8));

TEST(LutGemm, HalfLutEqualsFullLut)
{
    const auto tc = makeCase(8, 32, 4, 3, 16, true, 602);
    for (const bool pre_aligned : {false, true}) {
        LutGemmConfig half_cfg;
        half_cfg.useHalfLut = true;
        half_cfg.preAligned = pre_aligned;
        LutGemmConfig full_cfg = half_cfg;
        full_cfg.useHalfLut = false;
        const auto a = lutGemm(tc.weights, tc.x, half_cfg);
        const auto b = lutGemm(tc.weights, tc.x, full_cfg);
        EXPECT_TRUE(compareMatrices(a, b).identical)
            << "preAligned=" << pre_aligned;
    }
}

TEST(LutGemm, GeneratorTreeEqualsDirectInIntegerPath)
{
    const auto tc = makeCase(8, 32, 2, 2, 0, true, 603);
    LutGemmConfig tree_cfg;
    tree_cfg.preAligned = true;
    tree_cfg.useGeneratorTree = true;
    LutGemmConfig direct_cfg = tree_cfg;
    direct_cfg.useGeneratorTree = false;
    const auto a = lutGemm(tc.weights, tc.x, tree_cfg);
    const auto b = lutGemm(tc.weights, tc.x, direct_cfg);
    EXPECT_TRUE(compareMatrices(a, b).identical);
}

TEST(LutGemm, PreAlignedMatchesIfpuBitExactly)
{
    // FIGLUT-I and iFPU share numerics by construction.
    const auto tc = makeCase(12, 64, 4, 3, 32, true, 604);
    NumericsConfig nc;
    nc.actFormat = ActFormat::FP16;
    const auto ifpu = ifpuGemm(tc.weights, tc.x, nc);
    const auto figlut = figlutGemm(tc.weights, tc.x, nc, true);
    EXPECT_TRUE(compareMatrices(figlut, ifpu).identical);
}

TEST(LutGemm, TailPaddingCorrect)
{
    // n = 37 is not divisible by mu = 4: the tail chunk must still be
    // exact (padding contributes zero).
    const auto tc = makeCase(4, 37, 2, 2, 0, true, 605);
    LutGemmConfig cfg;
    cfg.arith = FpArith::Exact;
    cfg.actFormat = ActFormat::FP32;
    const auto y = lutGemm(tc.weights, tc.x, cfg);

    MatrixD xq(tc.x.rows(), tc.x.cols());
    for (std::size_t i = 0; i < tc.x.size(); ++i)
        xq.at(i) = quantizeToFormat(tc.x.at(i), ActFormat::FP32);
    const auto oracle = oracleGemm(tc.dequant, xq);
    EXPECT_LT(compareMatrices(y, oracle).maxRel, 1e-9);
}

TEST(LutGemm, GroupWiseScalesHandled)
{
    const auto tc = makeCase(6, 48, 2, 2, 12, true, 606);
    LutGemmConfig cfg;
    cfg.arith = FpArith::Exact;
    cfg.actFormat = ActFormat::FP32;
    const auto y = lutGemm(tc.weights, tc.x, cfg);

    MatrixD xq(tc.x.rows(), tc.x.cols());
    for (std::size_t i = 0; i < tc.x.size(); ++i)
        xq.at(i) = quantizeToFormat(tc.x.at(i), ActFormat::FP32);
    const auto oracle = oracleGemm(tc.dequant, xq);
    EXPECT_LT(compareMatrices(y, oracle).maxRel, 1e-9);
}

TEST(LutGemm, UniformConvertedWeightsMatchRtnOracle)
{
    // A uniform-quantized matrix converted to BCQ must produce the
    // uniform dequant GEMM result (the Fig. 1 / Table I claim).
    Rng rng(607);
    const auto w = syntheticWeights(8, 32, rng);
    RtnConfig rcfg;
    rcfg.bits = 4;
    const auto rtn = quantizeRtn(w, rcfg);
    const auto bcq = uniformToBcq(rtn);
    const auto x = syntheticActivations(32, 3, rng);

    LutGemmConfig cfg;
    cfg.arith = FpArith::Exact;
    cfg.actFormat = ActFormat::FP32;
    const auto y = lutGemm(bcq, x, cfg);

    MatrixD xq(x.rows(), x.cols());
    for (std::size_t i = 0; i < x.size(); ++i)
        xq.at(i) = quantizeToFormat(x.at(i), ActFormat::FP32);
    const auto oracle = oracleGemm(rtn.dequantAll(), xq);
    EXPECT_LT(compareMatrices(y, oracle).maxRel, 1e-9);
}

TEST(LutGemm, CountersTally)
{
    const auto tc = makeCase(4, 32, 2, 3, 0, true, 608);
    LutGemmConfig cfg;
    cfg.mu = 4;
    LutGemmCounters counters;
    (void)lutGemm(tc.weights, tc.x, cfg, &counters);
    // 32/4 = 8 chunks per column, 2 columns -> 16 builds.
    EXPECT_EQ(counters.lutGenerations, 16u);
    EXPECT_EQ(counters.generatorAdds, 16u * 14u);
    // reads: rows(4) * planes(3) * chunks(8) * batch(2)
    EXPECT_EQ(counters.lutReads, 4u * 3 * 8 * 2);
    EXPECT_EQ(counters.racAccumulates, counters.lutReads);
    // scale muls: rows * planes * groups(1) * batch
    EXPECT_EQ(counters.scaleMuls, 4u * 3 * 2);
    EXPECT_EQ(counters.offsetOps, 4u * 2);
}

TEST(LutGemm, ShapeMismatchThrows)
{
    const auto tc = makeCase(4, 16, 1, 2, 0, false, 609);
    MatrixD bad(8, 1, 0.0);
    EXPECT_THROW(lutGemm(tc.weights, bad, LutGemmConfig{}), FatalError);
}

TEST(LutGemm, InvalidMuThrows)
{
    const auto tc = makeCase(2, 8, 1, 1, 0, false, 610);
    LutGemmConfig cfg;
    cfg.mu = 0;
    EXPECT_THROW(lutGemm(tc.weights, tc.x, cfg), FatalError);
    cfg.mu = 1;
    cfg.useHalfLut = true;
    EXPECT_THROW(lutGemm(tc.weights, tc.x, cfg), FatalError);
}

TEST(LutGemm, ValidateConfigReportsEachBadKnob)
{
    // The Status validator is the recoverable form of the kernel's
    // own entry checks; each knob violation must carry its code and
    // an actionable message.
    LutGemmConfig cfg;
    EXPECT_TRUE(validateLutGemmConfig(cfg).ok());

    cfg.mu = 0;
    auto s = validateLutGemmConfig(cfg);
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
    EXPECT_NE(s.message().find("mu"), std::string::npos);
    cfg.mu = kMaxMu + 1;
    EXPECT_FALSE(validateLutGemmConfig(cfg).ok());

    cfg = LutGemmConfig{};
    cfg.mu = 1;
    cfg.useHalfLut = true;
    s = validateLutGemmConfig(cfg);
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
    EXPECT_NE(s.message().find("mu >= 2"), std::string::npos);
    cfg.useHalfLut = false;
    EXPECT_TRUE(validateLutGemmConfig(cfg).ok());

    cfg = LutGemmConfig{};
    cfg.backend = LutGemmBackend::Threaded;
    cfg.blockRows = 0;
    s = validateLutGemmConfig(cfg);
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
    EXPECT_NE(s.message().find("blockRows"), std::string::npos);
    // The Reference backend never blocks rows; the knob is ignored.
    cfg.backend = LutGemmBackend::Reference;
    EXPECT_TRUE(validateLutGemmConfig(cfg).ok());

    cfg = LutGemmConfig{};
    cfg.threads = kMaxLutGemmThreads + 1;
    s = validateLutGemmConfig(cfg);
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
    EXPECT_NE(s.message().find("threads"), std::string::npos);
    cfg.threads = kMaxLutGemmThreads;
    EXPECT_TRUE(validateLutGemmConfig(cfg).ok());
}

TEST(LutGemm, PrePackedKeyMismatchesThrow)
{
    // Only the happy path of the pre-packed overload was covered; the
    // rejection paths guard against silently misindexed arenas.
    const auto tc = makeCase(6, 24, 2, 3, 0, true, 612);
    LutGemmConfig cfg;
    cfg.backend = LutGemmBackend::Packed;
    cfg.threads = 1;
    const auto packed = packLutKeys(tc.weights, cfg.mu);
    EXPECT_NO_THROW(lutGemm(tc.weights, tc.x, cfg, packed));

    // Keys packed for a different mu than the call's.
    const auto wrongMu = packLutKeys(tc.weights, cfg.mu + 1);
    EXPECT_THROW(lutGemm(tc.weights, tc.x, cfg, wrongMu), FatalError);

    // Keys packed from a different-shaped tensor.
    const auto other = makeCase(8, 24, 2, 3, 0, true, 613);
    const auto wrongShape = packLutKeys(other.weights, cfg.mu);
    EXPECT_THROW(lutGemm(tc.weights, tc.x, cfg, wrongShape), FatalError);

    // Keys packed from a tensor with a different plane count.
    const auto fewerBits = makeCase(6, 24, 2, 2, 0, true, 612);
    const auto wrongBits = packLutKeys(fewerBits.weights, cfg.mu);
    EXPECT_THROW(lutGemm(tc.weights, tc.x, cfg, wrongBits), FatalError);

    // Pre-packed keys are a Packed-backend contract.
    cfg.backend = LutGemmBackend::Threaded;
    EXPECT_THROW(lutGemm(tc.weights, tc.x, cfg, packed), FatalError);
}

/** Format sweep: the FP path respects each activation format. */
class LutGemmFormatSweep : public ::testing::TestWithParam<ActFormat>
{};

TEST_P(LutGemmFormatSweep, CloseToOracleInEachFormat)
{
    const auto fmt = GetParam();
    const auto tc = makeCase(8, 64, 2, 3, 0, true, 611);
    LutGemmConfig cfg;
    cfg.actFormat = fmt;
    cfg.arith = FpArith::Fp32;
    const auto y = lutGemm(tc.weights, tc.x, cfg);

    MatrixD xq(tc.x.rows(), tc.x.cols());
    for (std::size_t i = 0; i < tc.x.size(); ++i)
        xq.at(i) = quantizeToFormat(tc.x.at(i), fmt);
    const auto oracle = oracleGemm(tc.dequant, xq);
    // FP32 accumulation over 64 terms: generous but format-dependent.
    const double tol = fmt == ActFormat::BF16 ? 2e-2 : 1e-3;
    EXPECT_LT(compareMatrices(y, oracle).nrmse(), tol)
        << actFormatName(fmt);
}

INSTANTIATE_TEST_SUITE_P(Fmt, LutGemmFormatSweep,
                         ::testing::Values(ActFormat::FP16,
                                           ActFormat::BF16,
                                           ActFormat::FP32));

} // namespace
} // namespace figlut
