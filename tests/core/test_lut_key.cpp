/** @file Tests for LUT key encoding (paper Table II conventions). */

#include <gtest/gtest.h>

#include "core/lut_key.h"

namespace figlut {
namespace {

TEST(LutKey, TableTwoExamples)
{
    // {-1,-1,-1} -> 0 ... {+1,+1,+1} -> 7, first element is MSB.
    const uint8_t all_minus[3] = {0, 0, 0};
    const uint8_t all_plus[3] = {1, 1, 1};
    const uint8_t mixed[3] = {0, 1, 1}; // {-1,+1,+1} -> b'011 = 3
    const uint8_t mixed2[3] = {1, 0, 1}; // {+1,-1,+1} -> b'101 = 5
    EXPECT_EQ(makeKey(all_minus, 3), 0u);
    EXPECT_EQ(makeKey(all_plus, 3), 7u);
    EXPECT_EQ(makeKey(mixed, 3), 3u);
    EXPECT_EQ(makeKey(mixed2, 3), 5u);
}

TEST(LutKey, SignExtraction)
{
    // key 5 = b'101 over mu=3: signs {+, -, +}.
    EXPECT_EQ(keySign(5, 0, 3), 1);
    EXPECT_EQ(keySign(5, 1, 3), -1);
    EXPECT_EQ(keySign(5, 2, 3), 1);
}

TEST(LutKey, MakeAndExtractRoundTrip)
{
    for (int mu = 1; mu <= 8; ++mu) {
        for (uint32_t key = 0; key < lutEntries(mu); ++key) {
            uint8_t bits[8];
            for (int j = 0; j < mu; ++j)
                bits[j] = keySign(key, j, mu) > 0 ? 1 : 0;
            EXPECT_EQ(makeKey(bits, mu), key) << "mu=" << mu;
        }
    }
}

TEST(LutKey, ComplementFlipsAllSigns)
{
    for (int mu = 2; mu <= 6; ++mu) {
        for (uint32_t key = 0; key < lutEntries(mu); ++key) {
            const auto comp = complementKey(key, mu);
            for (int j = 0; j < mu; ++j)
                EXPECT_EQ(keySign(comp, j, mu), -keySign(key, j, mu));
            EXPECT_EQ(complementKey(comp, mu), key);
        }
    }
}

TEST(LutKey, EntriesCount)
{
    EXPECT_EQ(lutEntries(1), 2u);
    EXPECT_EQ(lutEntries(4), 16u);
    EXPECT_EQ(lutEntries(8), 256u);
}

TEST(LutKey, InvalidInputsPanic)
{
    const uint8_t bits[2] = {0, 2}; // 2 is not a bit
    EXPECT_THROW(makeKey(bits, 2), PanicError);
    const uint8_t ok[1] = {1};
    EXPECT_THROW(makeKey(ok, 0), PanicError);
    EXPECT_THROW(keySign(0, 3, 3), PanicError);
}

} // namespace
} // namespace figlut
