/**
 * @file
 * Differential suite for the paged KV arena: random ragged traffic
 * written through the arena must be bit-identical — via materialize(),
 * tokenRefs(), and the attention computed over them — to the same
 * tokens held in per-request contiguous KvCaches, across block sizes,
 * budgets, eviction/re-admission cycles, and injected faults. Also
 * pins the governance contracts the serving layer builds on:
 * all-or-nothing reservation rollback, budget-before-injector attempt
 * accounting, and deterministic fault schedules.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "runtime/kv_arena.h"
#include "runtime/kv_cache.h"
#include "runtime/reference_ops.h"

namespace figlut {
namespace {

MatrixD
randomMatrix(std::size_t rows, std::size_t cols, Rng &rng)
{
    MatrixD m(rows, cols);
    for (auto &v : m)
        v = rng.normal();
    return m;
}

/** Append one random token to (seq, layer) of the arena AND the
 *  contiguous oracle cache, writing identical doubles to both. */
void
appendEverywhere(KvArena &arena, KvArena::SeqId seq, KvCache &oracle,
                 std::size_t layer, std::size_t hidden, Rng &rng)
{
    const MatrixD k = randomMatrix(hidden, 1, rng);
    const MatrixD v = randomMatrix(hidden, 1, rng);
    const KvArena::TokenSlot slot = arena.appendToken(seq, layer);
    for (std::size_t r = 0; r < hidden; ++r) {
        slot.k[r] = k(r, 0);
        slot.v[r] = v(r, 0);
    }
    oracle.append(layer, k, v);
}

TEST(KvArena, DifferentialAgainstKvCacheAcrossBlockSizes)
{
    const std::size_t hidden = 8, layers = 2, heads = 2;
    for (const std::size_t blockTokens : {1u, 3u, 5u, 16u}) {
        KvArena::Options options;
        options.hidden = hidden;
        options.layers = layers;
        options.blockTokens = blockTokens;
        KvArena arena(options);
        Rng rng(100 + blockTokens);

        // Ragged sequences spanning less than one block up to several.
        const std::size_t lengths[] = {1, 2, 7, 19};
        std::vector<KvArena::SeqId> seqs;
        std::vector<KvCache> oracles;
        for (std::size_t s = 0; s < 4; ++s) {
            seqs.push_back(arena.createSequence());
            oracles.emplace_back(layers);
        }
        // Interleave appends across sequences (token-major), like a
        // fused step appending one token per live request.
        for (std::size_t t = 0; t < 19; ++t) {
            for (std::size_t s = 0; s < 4; ++s) {
                if (t >= lengths[s])
                    continue;
                ASSERT_EQ(arena.reserveTokens(seqs[s], t + 1),
                          KvArena::Reserve::Ok);
                for (std::size_t l = 0; l < layers; ++l)
                    appendEverywhere(arena, seqs[s], oracles[s], l,
                                     hidden, rng);
            }
        }

        for (std::size_t s = 0; s < 4; ++s) {
            EXPECT_EQ(arena.tokens(seqs[s]), lengths[s]);
            // materialize() round-trips bit-identically.
            EXPECT_EQ(arena.materialize(seqs[s]), oracles[s])
                << "blockTokens " << blockTokens << " seq " << s;
        }

        // The attention computed over arena views must equal the one
        // over the contiguous oracle, bit for bit, on every layer.
        const MatrixD q = randomMatrix(hidden, 4, rng);
        for (std::size_t l = 0; l < layers; ++l) {
            std::vector<std::vector<KvTokenRef>> views(4);
            std::vector<KvColumn> columns(4);
            for (std::size_t s = 0; s < 4; ++s) {
                arena.tokenRefs(seqs[s], l, views[s]);
                ASSERT_EQ(views[s].size(), lengths[s]);
                columns[s] = KvColumn{&oracles[s].keys(l),
                                      &oracles[s].values(l), 0,
                                      lengths[s]};
            }
            EXPECT_EQ(referenceDecodeAttention(q, views, heads),
                      referenceDecodeAttention(q, columns, heads))
                << "blockTokens " << blockTokens << " layer " << l;
        }
    }
}

TEST(KvArena, EvictionAndReAdmissionCyclesStayBitIdentical)
{
    const std::size_t hidden = 4, layers = 2;
    KvArena::Options options;
    options.hidden = hidden;
    options.layers = layers;
    options.blockTokens = 2;
    // Exactly the worst round's demand (life 2: 6 blocks for a's 5
    // tokens + 4 for b), so the assertions below prove blocks recycle
    // across lives instead of accumulating.
    options.budgetBytes = 10 * 2 * 2 * hidden * sizeof(double);
    KvArena arena(options);
    ASSERT_EQ(arena.budgetBlocks(), 10u);

    Rng rng(7);
    const KvArena::SeqId a = arena.createSequence();
    const KvArena::SeqId b = arena.createSequence();

    // Three lives of sequence b; each one releases its blocks back to
    // the free list and must rebuild a bit-identical KvCache view even
    // though the re-admitted life lands in recycled blocks.
    for (int life = 0; life < 3; ++life) {
        KvCache oracleA(layers), oracleB(layers);
        const std::size_t lenA = 3 + static_cast<std::size_t>(life);
        ASSERT_EQ(arena.reserveTokens(a, lenA), KvArena::Reserve::Ok);
        ASSERT_EQ(arena.reserveTokens(b, 4), KvArena::Reserve::Ok);
        for (std::size_t t = 0; t < 5; ++t)
            for (std::size_t l = 0; l < layers; ++l) {
                if (t < lenA)
                    appendEverywhere(arena, a, oracleA, l, hidden, rng);
                if (t < 4)
                    appendEverywhere(arena, b, oracleB, l, hidden, rng);
            }
        EXPECT_EQ(arena.materialize(a), oracleA) << "life " << life;
        EXPECT_EQ(arena.materialize(b), oracleB) << "life " << life;

        arena.resetSequence(a);
        arena.resetSequence(b);
        EXPECT_EQ(arena.blocksInUse(), 0u);
        EXPECT_EQ(arena.tokens(a), 0u);
    }
    // Recycling: the in-use high-water mark is exactly the worst
    // single round, not the sum of lives.
    EXPECT_EQ(arena.peakBytes(), options.budgetBytes);

    arena.releaseSequence(a);
    arena.releaseSequence(b);
    EXPECT_FALSE(arena.hasSequence(a));
}

TEST(KvArena, BudgetDenialRollsBackAndSkipsTheInjector)
{
    const std::size_t hidden = 4;
    KvArena::Options options;
    options.hidden = hidden;
    options.layers = 2;
    options.blockTokens = 2;
    options.budgetBytes = 3 * 2 * 2 * hidden * sizeof(double);
    KvArena arena(options);
    ASSERT_EQ(arena.budgetBlocks(), 3u);

    const KvArena::SeqId a = arena.createSequence();
    // 2 tokens x 2 layers = 2 blocks of the 3-block budget.
    ASSERT_EQ(arena.reserveTokens(a, 2), KvArena::Reserve::Ok);
    EXPECT_EQ(arena.blocksInUse(), 2u);
    EXPECT_EQ(arena.allocationAttempts(), 2u);

    // Growth to 4 tokens needs 2 more blocks; only 1 fits. The grant
    // must roll back whole (all-or-nothing) and the denied allocation
    // must not count as an injector-visible attempt.
    const std::uint64_t attemptsBefore = arena.allocationAttempts();
    ASSERT_EQ(arena.reserveTokens(a, 4), KvArena::Reserve::NoCapacity);
    EXPECT_EQ(arena.blocksInUse(), 2u);
    EXPECT_EQ(arena.tokens(a), 0u);
    // One block was granted (one attempt) before the budget denied the
    // second; the granted attempt counted, the denied one did not.
    EXPECT_EQ(arena.allocationAttempts(), attemptsBefore + 1);

    // The failed reservation left the tables usable: the original 2
    // tokens are still fully backed.
    ASSERT_EQ(arena.reserveTokens(a, 2), KvArena::Reserve::Ok);
    EXPECT_EQ(arena.allocationAttempts(), attemptsBefore + 1);
}

TEST(KvArena, InjectedFaultsAreDeterministicAndAtomic)
{
    const std::size_t hidden = 4;
    CountingFaultInjector faults(/*failEvery=*/3);
    KvArena::Options options;
    options.hidden = hidden;
    options.layers = 1;
    options.blockTokens = 1;
    KvArena arena(options, &faults);

    const KvArena::SeqId a = arena.createSequence();
    // Attempts 1, 2 succeed; attempt 3 faults, rolling back the whole
    // 3-block reservation.
    ASSERT_EQ(arena.reserveTokens(a, 3), KvArena::Reserve::Fault);
    EXPECT_EQ(arena.blocksInUse(), 0u);
    EXPECT_EQ(arena.allocationAttempts(), 3u);
    EXPECT_EQ(arena.allocationFaults(), 1u);

    // The attempt counter advances deterministically: the retry uses
    // attempts 4, 5, 6 and faults again on 6.
    ASSERT_EQ(arena.reserveTokens(a, 3), KvArena::Reserve::Fault);
    EXPECT_EQ(arena.allocationFaults(), 2u);
    // A smaller reservation (attempts 7, 8) clears.
    ASSERT_EQ(arena.reserveTokens(a, 2), KvArena::Reserve::Ok);
    EXPECT_EQ(arena.blocksInUse(), 2u);

    // A second arena with the same injector replays the identical
    // schedule (the injector is pure, so sharing is side-effect-free).
    KvArena replay(options, &faults);
    const KvArena::SeqId b = replay.createSequence();
    ASSERT_EQ(replay.reserveTokens(b, 3), KvArena::Reserve::Fault);
    ASSERT_EQ(replay.reserveTokens(b, 3), KvArena::Reserve::Fault);
    ASSERT_EQ(replay.reserveTokens(b, 2), KvArena::Reserve::Ok);
}

TEST(KvArena, CoveredReservationsNeverConsultTheInjector)
{
    CountingFaultInjector faults(/*failEvery=*/1); // fail everything
    KvArena::Options options;
    options.hidden = 4;
    options.layers = 1;
    options.blockTokens = 8;
    KvArena arena(options, &faults);

    // With failEvery=1 no allocation can succeed...
    const KvArena::SeqId a = arena.createSequence();
    ASSERT_EQ(arena.reserveTokens(a, 1), KvArena::Reserve::Fault);

    // ...so build a second arena without faults, then check that a
    // reservation already covered by granted blocks is a pure no-op:
    // no attempt, no injector call.
    KvArena clean(options);
    const KvArena::SeqId b = clean.createSequence();
    ASSERT_EQ(clean.reserveTokens(b, 5), KvArena::Reserve::Ok);
    const std::uint64_t attempts = clean.allocationAttempts();
    for (std::size_t t = 1; t <= 8; ++t)
        ASSERT_EQ(clean.reserveTokens(b, t), KvArena::Reserve::Ok);
    EXPECT_EQ(clean.allocationAttempts(), attempts);
}

TEST(KvArena, MisuseDiesLoudly)
{
    KvArena::Options options;
    options.hidden = 4;
    options.layers = 1;
    options.blockTokens = 4;
    KvArena arena(options);

    const KvArena::SeqId a = arena.createSequence();
    // Appending without a reservation is a serving-layer bug.
    EXPECT_THROW(arena.appendToken(a, 0), PanicError);
    // Unknown sequence handles are fatal everywhere.
    EXPECT_THROW(arena.tokens(999), PanicError);
    EXPECT_THROW(arena.reserveTokens(999, 1), PanicError);
    // A budget smaller than one block cannot exist.
    KvArena::Options tiny = options;
    tiny.budgetBytes = 8;
    EXPECT_THROW({ KvArena bad(tiny); }, PanicError);
}

} // namespace
} // namespace figlut
