/**
 * @file
 * Differential tests for the vectorized reference vector ops
 * (runtime/reference_ops.h over the core/simd.h dispatch tables):
 * cross-ISA bit-identity of layer norm, softmax, residual add, and
 * the LUT GELU against the forced-scalar table over odd and tail
 * lengths, softmax normalization/stability properties, and the LUT
 * GELU's bounded approximation error vs the exact tanh GELU. The CI
 * scalar-build leg runs this suite with FIGLUT_SIMD_AVX2=OFF.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/simd.h"
#include "runtime/reference_ops.h"

namespace figlut {
namespace {

/** Restore the dispatcher's environment selection on scope exit. */
struct IsaOverrideGuard
{
    explicit IsaOverrideGuard(SimdIsa isa) { setSimdIsaOverride(isa); }
    ~IsaOverrideGuard() { clearSimdIsaOverride(); }
};

/** ISAs this binary + host can actually run (Scalar always). */
std::vector<SimdIsa>
supportedIsas()
{
    std::vector<SimdIsa> isas{SimdIsa::Scalar};
    for (const auto isa : {SimdIsa::Avx2, SimdIsa::Neon}) {
        if (simdIsaSupported(isa))
            isas.push_back(isa);
    }
    return isas;
}

/** Odd, sub-vector, vector-multiple, and large lengths in one sweep. */
const std::vector<std::size_t> kLengths = {1,  2,  3,  4,   5,   7,  8,
                                           9,  16, 33, 100, 257, 1024};

MatrixD
randomMatrix(std::size_t rows, std::size_t cols, uint64_t seed,
             double scale = 3.0)
{
    Rng rng(seed);
    MatrixD m(rows, cols);
    for (auto &v : m)
        v = rng.normal() * scale;
    return m;
}

void
expectBitIdentical(const MatrixD &a, const MatrixD &b,
                   const std::string &what)
{
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a.at(i), b.at(i)) << what << " element " << i;
}

// ----------------------------------------------------- cross-ISA runs

TEST(ReferenceOps, LayerNormBitIdenticalAcrossIsas)
{
    for (const std::size_t h : kLengths) {
        for (const std::size_t batch : {1u, 3u}) {
            const MatrixD x = randomMatrix(h, batch, 100 + h);
            MatrixD scalarOut;
            {
                IsaOverrideGuard guard(SimdIsa::Scalar);
                scalarOut = referenceLayerNorm(x);
            }
            for (const auto isa : supportedIsas()) {
                IsaOverrideGuard guard(isa);
                expectBitIdentical(
                    referenceLayerNorm(x), scalarOut,
                    std::string("layernorm h=") + std::to_string(h) +
                        " isa=" + simdIsaName(isa));
            }
        }
    }
}

TEST(ReferenceOps, SoftmaxBitIdenticalAcrossIsas)
{
    for (const std::size_t n : kLengths) {
        const MatrixD src = randomMatrix(n, 1, 200 + n, 5.0);
        std::vector<double> scalarOut(src.data(), src.data() + n);
        {
            IsaOverrideGuard guard(SimdIsa::Scalar);
            referenceSoftmaxInPlace(scalarOut.data(), n);
        }
        for (const auto isa : supportedIsas()) {
            IsaOverrideGuard guard(isa);
            std::vector<double> out(src.data(), src.data() + n);
            referenceSoftmaxInPlace(out.data(), n);
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(out[i], scalarOut[i])
                    << "softmax n=" << n << " isa=" << simdIsaName(isa)
                    << " element " << i;
            }
        }
    }
}

TEST(ReferenceOps, ResidualAddBitIdenticalAcrossIsas)
{
    for (const std::size_t n : kLengths) {
        const MatrixD a = randomMatrix(n, 2, 300 + n);
        const MatrixD b = randomMatrix(n, 2, 400 + n);
        MatrixD scalarOut;
        {
            IsaOverrideGuard guard(SimdIsa::Scalar);
            scalarOut = referenceResidualAdd(a, b);
        }
        for (const auto isa : supportedIsas()) {
            IsaOverrideGuard guard(isa);
            expectBitIdentical(referenceResidualAdd(a, b), scalarOut,
                               std::string("residual n=") +
                                   std::to_string(n) +
                                   " isa=" + simdIsaName(isa));
        }
    }
}

TEST(ReferenceOps, GeluLutBitIdenticalAcrossIsas)
{
    for (const std::size_t n : kLengths) {
        // Scale past the table range so the identity tail and the lo
        // clamp are exercised on every length.
        const MatrixD x = randomMatrix(n, 1, 500 + n, 6.0);
        MatrixD scalarOut;
        {
            IsaOverrideGuard guard(SimdIsa::Scalar);
            scalarOut = referenceGeluLut(x);
        }
        for (const auto isa : supportedIsas()) {
            IsaOverrideGuard guard(isa);
            expectBitIdentical(referenceGeluLut(x), scalarOut,
                               std::string("gelu-lut n=") +
                                   std::to_string(n) +
                                   " isa=" + simdIsaName(isa));
        }
    }
}

// ----------------------------------------------------- op properties

TEST(ReferenceOps, LayerNormNormalizesEachColumn)
{
    const std::size_t h = 257;
    const MatrixD x = randomMatrix(h, 4, 42);
    const MatrixD out = referenceLayerNorm(x);
    for (std::size_t b = 0; b < out.cols(); ++b) {
        double mean = 0.0, var = 0.0;
        for (std::size_t r = 0; r < h; ++r)
            mean += out(r, b);
        mean /= static_cast<double>(h);
        for (std::size_t r = 0; r < h; ++r)
            var += (out(r, b) - mean) * (out(r, b) - mean);
        var /= static_cast<double>(h);
        EXPECT_NEAR(mean, 0.0, 1e-12);
        EXPECT_NEAR(var, 1.0, 1e-4); // eps shrinks variance slightly
    }
}

TEST(ReferenceOps, SoftmaxSumsToOneAndHandlesLargeValues)
{
    for (const std::size_t n : kLengths) {
        std::vector<double> v(n);
        for (std::size_t i = 0; i < n; ++i)
            v[i] = 700.0 + static_cast<double>(i); // exp would overflow
        referenceSoftmaxInPlace(v.data(), n);
        double sum = 0.0;
        for (const double p : v) {
            EXPECT_TRUE(std::isfinite(p));
            EXPECT_GE(p, 0.0);
            sum += p;
        }
        EXPECT_NEAR(sum, 1.0, 1e-12) << "n=" << n;
    }
}

TEST(ReferenceOps, GeluLutMatchesTanhGeluWithinTolerance)
{
    // Dense sweep across the table range plus both out-of-range tails.
    // The table's chord error bound is < 1e-5 (DESIGN.md); 1e-4 is the
    // acceptance tolerance with headroom for the asymptote tails.
    std::vector<double> xs;
    for (double x = -12.0; x <= 12.0; x += 1.0 / 64.0)
        xs.push_back(x);
    MatrixD m(xs.size(), 1);
    for (std::size_t i = 0; i < xs.size(); ++i)
        m.at(i) = xs[i];
    const MatrixD exact = referenceGelu(m);
    const MatrixD approx = referenceGeluLut(m);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        EXPECT_NEAR(approx.at(i), exact.at(i), 1e-4)
            << "x=" << xs[i];
    }
    // Identity tail: far above the range the LUT result IS x.
    MatrixD big(1, 1);
    big.at(0) = 100.0;
    EXPECT_EQ(referenceGeluLut(big).at(0), 100.0);
}

TEST(ReferenceOps, ActiveIsaMatchesDispatcher)
{
    // The suite above forces ISAs explicitly; sanity-check that the
    // default dispatch picks a supported one so the un-forced test
    // paths exercised the table they claim to.
    EXPECT_TRUE(simdIsaSupported(activeSimdIsa()));
}

} // namespace
} // namespace figlut
