/**
 * @file
 * Tests for the per-sequence KvCache and the ragged decode attention
 * it feeds: the ragged overload must be bit-identical, per column, to
 * the lock-step overload over that column's history — the property the
 * serve Engine's fused step rests on.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "runtime/kv_cache.h"
#include "runtime/reference_ops.h"

namespace figlut {
namespace {

MatrixD
randomMatrix(std::size_t rows, std::size_t cols, Rng &rng)
{
    MatrixD m(rows, cols);
    for (auto &v : m)
        v = rng.normal();
    return m;
}

TEST(KvCache, GrowsInLockStepAcrossLayers)
{
    KvCache cache(3);
    EXPECT_EQ(cache.layers(), 3u);
    EXPECT_EQ(cache.length(), 0u);
    EXPECT_TRUE(cache.empty());
    EXPECT_EQ(cache.bytes(), 0u);

    Rng rng(1);
    for (int step = 0; step < 2; ++step)
        for (std::size_t l = 0; l < 3; ++l)
            cache.append(l, randomMatrix(4, 1, rng),
                         randomMatrix(4, 1, rng));
    EXPECT_EQ(cache.length(), 2u);
    EXPECT_EQ(cache.keys(1).size(), 2u);
    EXPECT_EQ(cache.values(2).size(), 2u);
    EXPECT_EQ(cache.bytes(), 2u * 3u * 2u * 4u * sizeof(double));

    cache.clear();
    EXPECT_EQ(cache.length(), 0u);
    EXPECT_EQ(cache.layers(), 3u);
}

TEST(KvCache, ComparesByContents)
{
    Rng rng(2);
    const MatrixD k = randomMatrix(4, 1, rng);
    const MatrixD v = randomMatrix(4, 1, rng);
    KvCache a(1), b(1);
    a.append(0, k, v);
    b.append(0, k, v);
    EXPECT_EQ(a, b);
    b.append(0, k, v);
    EXPECT_NE(a, b);
}

TEST(KvCache, RejectsMalformedUse)
{
    KvCache cache(1);
    Rng rng(3);
    EXPECT_THROW(cache.append(1, randomMatrix(4, 1, rng),
                              randomMatrix(4, 1, rng)),
                 FatalError);
    EXPECT_THROW(cache.append(0, randomMatrix(4, 1, rng),
                              randomMatrix(3, 1, rng)),
                 FatalError);
    cache.append(0, randomMatrix(4, 1, rng), randomMatrix(4, 1, rng));
    // Step width must stay constant for the life of the sequence.
    EXPECT_THROW(cache.append(0, randomMatrix(4, 2, rng),
                              randomMatrix(4, 2, rng)),
                 FatalError);
    EXPECT_THROW(cache.keys(1), FatalError);
    EXPECT_THROW(cache.values(1), FatalError);
}

TEST(RaggedAttention, MatchesLockStepPerColumn)
{
    // Three columns with histories of different ages; each column of
    // the ragged result must equal a batch-1 lock-step call over that
    // column's own history, bit for bit.
    const std::size_t h = 8, heads = 2;
    Rng rng(11);
    const MatrixD q = randomMatrix(h, 3, rng);

    std::vector<std::vector<MatrixD>> kSteps(3), vSteps(3);
    const std::size_t lengths[3] = {1, 3, 2};
    for (std::size_t c = 0; c < 3; ++c) {
        for (std::size_t t = 0; t < lengths[c]; ++t) {
            kSteps[c].push_back(randomMatrix(h, 1, rng));
            vSteps[c].push_back(randomMatrix(h, 1, rng));
        }
    }

    std::vector<KvColumn> kv(3);
    for (std::size_t c = 0; c < 3; ++c)
        kv[c] = KvColumn{&kSteps[c], &vSteps[c], 0, lengths[c]};
    const MatrixD ragged = referenceDecodeAttention(q, kv, heads);
    ASSERT_EQ(ragged.rows(), h);
    ASSERT_EQ(ragged.cols(), 3u);

    for (std::size_t c = 0; c < 3; ++c) {
        MatrixD qc(h, 1);
        for (std::size_t r = 0; r < h; ++r)
            qc(r, 0) = q(r, c);
        const MatrixD solo =
            referenceDecodeAttention(qc, kSteps[c], vSteps[c], heads);
        for (std::size_t r = 0; r < h; ++r)
            EXPECT_EQ(ragged(r, c), solo(r, 0)) << "col " << c;
    }
}

TEST(RaggedAttention, LockStepOverloadIsTheUniformSpecialCase)
{
    // The historical lock-step overload (batch-wide snapshots) now
    // delegates to the ragged one; cross-check against explicit
    // uniform views into the same snapshots.
    const std::size_t h = 8, heads = 4, batch = 2, steps = 3;
    Rng rng(13);
    const MatrixD q = randomMatrix(h, batch, rng);
    std::vector<MatrixD> kSteps, vSteps;
    for (std::size_t t = 0; t < steps; ++t) {
        kSteps.push_back(randomMatrix(h, batch, rng));
        vSteps.push_back(randomMatrix(h, batch, rng));
    }
    const MatrixD uniform =
        referenceDecodeAttention(q, kSteps, vSteps, heads);
    std::vector<KvColumn> kv(batch);
    for (std::size_t b = 0; b < batch; ++b)
        kv[b] = KvColumn{&kSteps, &vSteps, b, steps};
    EXPECT_EQ(uniform, referenceDecodeAttention(q, kv, heads));
}

TEST(RaggedAttention, RejectsMalformedViews)
{
    const std::size_t h = 4;
    Rng rng(17);
    const MatrixD q = randomMatrix(h, 1, rng);
    std::vector<MatrixD> kSteps{randomMatrix(h, 1, rng)};
    std::vector<MatrixD> vSteps{randomMatrix(h, 1, rng)};

    // One view per column, exactly.
    EXPECT_THROW(referenceDecodeAttention(q, std::vector<KvColumn>{}, 2),
                 FatalError);
    // Empty history.
    EXPECT_THROW(referenceDecodeAttention(
                     q, {KvColumn{&kSteps, &vSteps, 0, 0}}, 2),
                 FatalError);
    // Length beyond the cached steps.
    EXPECT_THROW(referenceDecodeAttention(
                     q, {KvColumn{&kSteps, &vSteps, 0, 2}}, 2),
                 FatalError);
    // Column beyond the snapshot width.
    EXPECT_THROW(referenceDecodeAttention(
                     q, {KvColumn{&kSteps, &vSteps, 1, 1}}, 2),
                 FatalError);

    // The lock-step overload keeps its exact-width contract: cache
    // snapshots wider than the query batch are a caller bug, not a
    // prefix to attend silently.
    std::vector<MatrixD> wideK{randomMatrix(h, 2, rng)};
    std::vector<MatrixD> wideV{randomMatrix(h, 2, rng)};
    EXPECT_THROW(referenceDecodeAttention(q, wideK, wideV, 2),
                 FatalError);
}

} // namespace
} // namespace figlut
