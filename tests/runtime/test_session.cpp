/**
 * @file
 * Differential tests for the runtime Session: a Session decode step
 * must be bit-identical to a hand-rolled per-layer reference path
 * (Reference-backend lutGemm + reference vector ops, fresh resources
 * every call), and its emitted KernelTask list must match
 * decodeStepWorkload for the same WorkloadOptions.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "model/workload.h"
#include "runtime/reference_ops.h"
#include "runtime/session.h"

namespace figlut {
namespace {

/** Small decoder architecture for randomized trials. */
OptConfig
tinyConfig(std::size_t hidden, std::size_t layers, std::size_t heads,
           std::size_t ffn)
{
    OptConfig cfg;
    cfg.name = "OPT-test";
    cfg.hidden = hidden;
    cfg.layers = layers;
    cfg.heads = heads;
    cfg.ffn = ffn;
    return cfg;
}

/**
 * Hand-rolled decode step over the session's own quantized weights:
 * per-layer Reference-backend lutGemm calls (no ExecutionContext, no
 * pre-packed keys) chained with the reference vector ops, maintaining
 * its own KV cache. This is the per-call building-block style every
 * example used before Session existed.
 */
MatrixD
handRolledStep(const QuantizedModel &qm, const SessionOptions &so,
               const MatrixD &input,
               std::vector<std::vector<MatrixD>> &kCache,
               std::vector<std::vector<MatrixD>> &vCache)
{
    LutGemmConfig cfg = makeGemmConfig(so.exec, so.quant.mu);
    cfg.backend = LutGemmBackend::Reference;
    cfg.threads = 0;
    cfg.blockRows = 64;

    const OptConfig &model = qm.config();
    const std::size_t h = model.hidden;
    const std::size_t batch = input.cols();
    MatrixD x = input;
    for (std::size_t l = 0; l < qm.layers(); ++l) {
        const QuantizedLayer &layer = qm.layer(l);
        MatrixD ln = referenceLayerNorm(x);
        const MatrixD qkv = lutGemm(layer.qkv, ln, cfg);
        MatrixD q(h, batch), k(h, batch), v(h, batch);
        for (std::size_t r = 0; r < h; ++r) {
            for (std::size_t b = 0; b < batch; ++b) {
                q(r, b) = qkv(r, b);
                k(r, b) = qkv(h + r, b);
                v(r, b) = qkv(2 * h + r, b);
            }
        }
        kCache[l].push_back(std::move(k));
        vCache[l].push_back(std::move(v));
        const MatrixD attn =
            referenceDecodeAttention(q, kCache[l], vCache[l], model.heads);
        MatrixD proj = lutGemm(layer.attnOut, attn, cfg);
        x = referenceResidualAdd(x, proj);
        ln = referenceLayerNorm(x);
        MatrixD f = lutGemm(layer.fc1, ln, cfg);
        f = referenceGelu(f);
        proj = lutGemm(layer.fc2, f, cfg);
        x = referenceResidualAdd(x, proj);
    }
    return x;
}

void
expectTasksEqual(const std::vector<KernelTask> &a,
                 const std::vector<KernelTask> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, b[i].kind) << "task " << i;
        EXPECT_EQ(a[i].name, b[i].name) << "task " << i;
        if (a[i].kind == KernelTask::Kind::Gemm) {
            EXPECT_EQ(a[i].gemm.m, b[i].gemm.m) << "task " << i;
            EXPECT_EQ(a[i].gemm.n, b[i].gemm.n) << "task " << i;
            EXPECT_EQ(a[i].gemm.batch, b[i].gemm.batch) << "task " << i;
            EXPECT_EQ(a[i].gemm.weightBits, b[i].gemm.weightBits)
                << "task " << i;
            EXPECT_EQ(a[i].gemm.groupSize, b[i].gemm.groupSize)
                << "task " << i;
            EXPECT_EQ(a[i].gemm.hasOffset, b[i].gemm.hasOffset)
                << "task " << i;
        } else {
            EXPECT_EQ(a[i].vector.adds, b[i].vector.adds) << "task " << i;
            EXPECT_EQ(a[i].vector.muls, b[i].vector.muls) << "task " << i;
            EXPECT_EQ(a[i].vector.specials, b[i].vector.specials)
                << "task " << i;
        }
    }
}

TEST(Session, DecodeStepBitIdenticalToHandRolledReference)
{
    // Randomized OPT-125M-style shapes, scaled down so the per-trial
    // quantization stays in test budget: the per-layer structure
    // (4 GEMMs around LN/attention/GELU/residuals) is the real one.
    Rng trialRng(2025);
    for (int trial = 0; trial < 4; ++trial) {
        const std::size_t heads = trial % 2 == 0 ? 2 : 4;
        const std::size_t hidden =
            heads * static_cast<std::size_t>(trialRng.uniformInt(8, 16));
        const std::size_t ffn =
            hidden * static_cast<std::size_t>(trialRng.uniformInt(2, 4));
        const std::size_t layers =
            static_cast<std::size_t>(trialRng.uniformInt(1, 2));
        const auto model = tinyConfig(hidden, layers, heads, ffn);

        SessionOptions so;
        so.quant.weightBits =
            static_cast<int>(trialRng.uniformInt(2, 4));
        so.quant.groupSize = trial % 2 == 0 ? 0 : 16;
        so.quant.useOffset = trial % 2 == 1;
        so.quant.bcqIterations = 1;
        so.quant.mu = static_cast<int>(trialRng.uniformInt(3, 5));
        so.quant.seed = 7000 + static_cast<uint64_t>(trial);
        so.batch = static_cast<std::size_t>(trialRng.uniformInt(1, 3));
        so.exec.preAligned = trial % 2 == 0;
        so.exec.threads = 2;
        so.exec.blockRows = 8;

        Session session(model, so);
        Rng inputRng(99 + static_cast<uint64_t>(trial));
        MatrixD sessionHidden = session.makeInput(inputRng);
        MatrixD refHidden = sessionHidden;

        std::vector<std::vector<MatrixD>> kCache(session.model().layers());
        std::vector<std::vector<MatrixD>> vCache(session.model().layers());
        // Two steps so the second one attends over a real KV history.
        for (int step = 0; step < 2; ++step) {
            const auto result = session.runDecodeStep(sessionHidden);
            sessionHidden = result.hidden;
            refHidden = handRolledStep(session.model(), so, refHidden,
                                       kCache, vCache);
            EXPECT_EQ(sessionHidden, refHidden)
                << "trial " << trial << " step " << step;
            EXPECT_EQ(result.gemmCalls, 4 * session.model().layers())
                << "trial " << trial;
        }
    }
}

TEST(Session, EmittedTasksMatchDecodeStepWorkload)
{
    const auto model = tinyConfig(32, 2, 4, 64);
    for (const bool includeVector : {true, false}) {
        SessionOptions so;
        so.batch = 3;
        so.contextLen = 77;
        so.includeVector = includeVector;
        so.quant.weightBits = 3;
        so.quant.groupSize = 16;
        so.quant.useOffset = true;
        so.quant.bcqIterations = 0;
        Session session(model, so);
        expectTasksEqual(session.workloadTasks(),
                         decodeStepWorkload(session.model().config(),
                                            session.workloadOptions()));
        const std::size_t perLayer = includeVector ? 10u : 4u;
        EXPECT_EQ(session.workloadTasks().size(),
                  perLayer * session.model().layers());
    }
}

TEST(Session, WorkloadOptionsCarryQuantConfig)
{
    SessionOptions so;
    so.batch = 5;
    so.contextLen = 123;
    so.quant.weightBits = 2;
    so.quant.groupSize = 32;
    so.quant.useOffset = false;
    so.quant.bcqIterations = 0;
    Session session(tinyConfig(32, 1, 2, 64), so);
    const auto opts = session.workloadOptions();
    EXPECT_EQ(opts.batch, 5u);
    EXPECT_EQ(opts.contextLen, 123u);
    EXPECT_EQ(opts.weightBits, 2);
    EXPECT_EQ(opts.groupSize, 32u);
    EXPECT_FALSE(opts.hasOffset);
    for (const auto &task : session.workloadTasks()) {
        if (task.kind != KernelTask::Kind::Gemm)
            continue;
        EXPECT_EQ(task.gemm.weightBits, 2);
        EXPECT_EQ(task.gemm.groupSize, 32u);
        EXPECT_FALSE(task.gemm.hasOffset);
    }
}

TEST(Session, KvCacheGrowsAndResetRestartsTheSequence)
{
    SessionOptions so;
    so.quant.bcqIterations = 0;
    so.batch = 2;
    Session session(tinyConfig(16, 1, 2, 32), so);
    Rng rng(5);
    const MatrixD input = session.makeInput(rng);

    EXPECT_EQ(session.kvLength(), 0u);
    const auto first = session.runDecodeStep(input);
    EXPECT_EQ(session.kvLength(), 1u);
    const auto second = session.runDecodeStep(first.hidden);
    EXPECT_EQ(session.kvLength(), 2u);
    // With a cache, the same input produces a different mix than the
    // fresh first step (the attention blends two KV entries).
    session.resetKv();
    EXPECT_EQ(session.kvLength(), 0u);
    const auto again = session.runDecodeStep(input);
    EXPECT_EQ(session.kvLength(), 1u);
    EXPECT_EQ(again.hidden, first.hidden);
    (void)second;
}

TEST(Session, ResetKvMidSequenceReplaysTheWholeSequence)
{
    // Reset with a non-trivial KV history must replay *every* later
    // step bit-identically, not just the first (the KV clear has to
    // reach all layers of every per-sequence cache).
    SessionOptions so;
    so.quant.bcqIterations = 0;
    so.batch = 2;
    Session session(tinyConfig(16, 2, 2, 32), so);
    Rng rng(17);
    const MatrixD inputA = session.makeInput(rng);

    const auto firstA = session.runDecodeStep(inputA);
    const auto firstB = session.runDecodeStep(firstA.hidden);
    const auto firstC = session.runDecodeStep(firstB.hidden);
    EXPECT_EQ(session.kvLength(), 3u);

    session.resetKv();
    EXPECT_EQ(session.kvLength(), 0u);
    const auto againA = session.runDecodeStep(inputA);
    const auto againB = session.runDecodeStep(againA.hidden);
    const auto againC = session.runDecodeStep(againB.hidden);
    EXPECT_EQ(againA.hidden, firstA.hidden);
    EXPECT_EQ(againB.hidden, firstB.hidden);
    EXPECT_EQ(againC.hidden, firstC.hidden);
    EXPECT_EQ(session.kvLength(), 3u);

    // The replayed KV history matches too, per sequence and layer.
    for (std::size_t seq = 0; seq < so.batch; ++seq) {
        const KvCache cache = session.kv(seq);
        EXPECT_EQ(cache.layers(), 2u);
        EXPECT_EQ(cache.length(), 3u);
        EXPECT_GT(cache.bytes(), 0u);
    }
}

TEST(Session, KvAccessorExposesPerSequenceHistories)
{
    SessionOptions so;
    so.quant.bcqIterations = 0;
    so.batch = 2;
    Session session(tinyConfig(16, 1, 2, 32), so);
    Rng rng(23);
    const MatrixD input = session.makeInput(rng);
    const auto r = session.runDecodeStep(input);
    (void)r;

    // Each sequence's cached K/V is the batch-1 column view: h x 1
    // snapshots whose contents differ between the two sequences.
    const KvCache kv0 = session.kv(0);
    const KvCache kv1 = session.kv(1);
    ASSERT_EQ(kv0.length(), 1u);
    ASSERT_EQ(kv1.length(), 1u);
    EXPECT_EQ(kv0.keys(0).front().rows(), 16u);
    EXPECT_EQ(kv0.keys(0).front().cols(), 1u);
    EXPECT_NE(kv0, kv1);
    EXPECT_THROW(session.kv(2), FatalError);
}

TEST(Session, MaxLayersTruncatesModelAndWorkload)
{
    SessionOptions so;
    so.quant.bcqIterations = 0;
    so.quant.maxLayers = 2;
    Session session(tinyConfig(16, 5, 2, 32), so);
    EXPECT_EQ(session.model().layers(), 2u);
    EXPECT_EQ(session.model().config().layers, 2u);
    EXPECT_EQ(session.workloadTasks().size(), 2u * 10u);
    EXPECT_GT(session.model().storageBytes(), 0u);
    EXPECT_GT(session.model().packedKeyBytes(), 0u);
}

TEST(Session, SimulateScoresTheEmittedGraph)
{
    SessionOptions so;
    so.quant.bcqIterations = 0;
    so.batch = 2;
    Session session(tinyConfig(32, 2, 4, 64), so);
    HwConfig hw;
    hw.engine = EngineKind::FIGLUT_I;
    const auto result = session.simulate(hw);
    EXPECT_GT(result.totalCycles, 0.0);
    EXPECT_GT(result.seconds, 0.0);
    // Same graph through a bare Accelerator: identical score.
    const Accelerator acc(hw);
    const auto direct = acc.runWorkload(session.workloadTasks());
    EXPECT_EQ(result.totalCycles, direct.totalCycles);
    EXPECT_EQ(result.energy.totalJoules(), direct.energy.totalJoules());
}

TEST(Session, RejectsMalformedInputsAndConfigs)
{
    SessionOptions so;
    so.quant.bcqIterations = 0;
    Session session(tinyConfig(16, 1, 2, 32), so);
    EXPECT_THROW(session.runDecodeStep(MatrixD(8, 1)), FatalError);
    EXPECT_THROW(session.runDecodeStep(MatrixD(16, 3)), FatalError);

    // hidden not divisible by heads
    EXPECT_THROW(Session(tinyConfig(10, 1, 3, 32), so), FatalError);
    // empty architecture
    EXPECT_THROW(Session(tinyConfig(0, 0, 0, 0), so), FatalError);
    SessionOptions zeroBatch = so;
    zeroBatch.batch = 0;
    EXPECT_THROW(Session(tinyConfig(16, 1, 2, 32), zeroBatch),
                 FatalError);
}

TEST(Session, BackendsAgreeThroughTheSessionPath)
{
    // The session path (packed keys + shared context) must agree with
    // sessions configured for the other backends bit-for-bit.
    const auto model = tinyConfig(24, 1, 2, 48);
    MatrixD outputs[3];
    const LutGemmBackend backends[] = {LutGemmBackend::Reference,
                                       LutGemmBackend::Threaded,
                                       LutGemmBackend::Packed};
    for (int i = 0; i < 3; ++i) {
        SessionOptions so;
        so.quant.bcqIterations = 1;
        so.batch = 2;
        so.exec.backend = backends[i];
        so.exec.threads = 2;
        so.exec.blockRows = 8;
        Session session(model, so);
        // Only the Packed backend consumes pre-packed keys; the
        // others must not pay for materializing them.
        if (backends[i] == LutGemmBackend::Packed)
            EXPECT_GT(session.model().packedKeyBytes(), 0u);
        else
            EXPECT_EQ(session.model().packedKeyBytes(), 0u);
        Rng rng(11);
        const auto input = session.makeInput(rng);
        outputs[i] = session.runDecodeStep(input).hidden;
    }
    EXPECT_EQ(outputs[0], outputs[1]);
    EXPECT_EQ(outputs[0], outputs[2]);
}

} // namespace
} // namespace figlut
