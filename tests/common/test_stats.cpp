/** @file Unit tests for RunningStats and Histogram. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "common/stats.h"

namespace figlut {
namespace {

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleSample)
{
    RunningStats s;
    s.add(4.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 4.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 4.0);
    EXPECT_EQ(s.max(), 4.0);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats s;
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    RunningStats all, a, b;
    for (int i = 0; i < 100; ++i) {
        const double v = std::sin(i * 0.7) * 3.0 + i * 0.01;
        all.add(v);
        (i < 37 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity)
{
    RunningStats a, empty;
    a.add(1.0);
    a.add(2.0);
    const double mean = a.mean();
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.mean(), mean);

    RunningStats b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_EQ(b.mean(), mean);
}

TEST(Histogram, BinsCountsAndEdges)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(i + 0.5);
    EXPECT_EQ(h.total(), 10u);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(h.binCount(i), 1u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_DOUBLE_EQ(h.binLow(3), 3.0);
}

TEST(Histogram, UnderAndOverflow)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-0.1);
    h.add(1.0); // hi edge is exclusive
    h.add(0.5);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, InvalidConstructionThrows)
{
    EXPECT_THROW(Histogram(1.0, 0.0, 4), FatalError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), FatalError);
}

TEST(Histogram, RenderContainsBars)
{
    Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    const auto text = h.render(10);
    EXPECT_NE(text.find('#'), std::string::npos);
}

} // namespace
} // namespace figlut
