/** @file Unit tests for the console table formatter. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/table.h"

namespace figlut {
namespace {

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t({"engine", "TOPS/W"});
    t.addRow({"FIGLUT", "0.47"});
    t.addRow({"FIGNA", "0.33"});
    const auto text = t.render();
    EXPECT_NE(text.find("engine"), std::string::npos);
    EXPECT_NE(text.find("FIGLUT"), std::string::npos);
    EXPECT_NE(text.find("0.33"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, MismatchedRowThrows)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(TextTable, EmptyHeaderThrows)
{
    EXPECT_THROW(TextTable({}), FatalError);
}

TEST(TextTable, ColumnsArePadded)
{
    TextTable t({"x"});
    t.addRow({"longer-cell"});
    const auto text = t.render();
    // Header line must be as wide as the widest cell.
    const auto first_nl = text.find('\n');
    const auto second_nl = text.find('\n', first_nl + 1);
    const auto third_nl = text.find('\n', second_nl + 1);
    EXPECT_EQ(second_nl - first_nl, third_nl - second_nl);
}

TEST(TextTable, NumberFormatters)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(1.5, 0), "2");
    EXPECT_EQ(TextTable::ratio(1.984, 2), "1.98x");
    EXPECT_EQ(TextTable::pct(0.59, 0), "59%");
}

TEST(TextTable, RuleInsertsSeparator)
{
    TextTable t({"a"});
    t.addRow({"1"});
    t.addRule();
    t.addRow({"2"});
    const auto text = t.render();
    // 7 lines: rule, header, rule, row, rule, row, rule.
    std::size_t lines = 0;
    for (char c : text)
        lines += c == '\n';
    EXPECT_EQ(lines, 7u);
}

} // namespace
} // namespace figlut
