/** @file Unit tests for logging / error handling. */

#include <gtest/gtest.h>

#include <string>

#include "common/logging.h"

namespace figlut {
namespace {

TEST(Logging, FatalThrowsFatalError)
{
    try {
        fatal("bad value ", 42, " in ", "config");
        FAIL() << "fatal must throw";
    } catch (const FatalError &e) {
        EXPECT_EQ(std::string(e.what()), "bad value 42 in config");
    }
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("broken invariant"), PanicError);
}

TEST(Logging, PanicIsNotAFatalError)
{
    // The two classes must stay distinct: tests and callers rely on
    // telling user errors from library bugs.
    try {
        panic("x");
    } catch (const FatalError &) {
        FAIL() << "panic must not be catchable as FatalError";
    } catch (const PanicError &) {
        SUCCEED();
    }
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(FIGLUT_ASSERT(1 + 1 == 2, "math works"));
}

TEST(Logging, AssertThrowsWithLocation)
{
    try {
        FIGLUT_ASSERT(false, "detail ", 7);
        FAIL() << "assert must throw";
    } catch (const PanicError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("detail 7"), std::string::npos);
        EXPECT_NE(msg.find("test_logging.cpp"), std::string::npos);
    }
}

TEST(Logging, InformAndWarnDoNotThrow)
{
    EXPECT_NO_THROW(inform("status ", 1));
    EXPECT_NO_THROW(warn("something odd: ", 2.5));
}

} // namespace
} // namespace figlut
