/**
 * @file
 * Tests for the recoverable error model (common/status.h): Status
 * codes/messages and Result<T> value/error behaviour, including
 * move-only payloads (the Engine factory's shape).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/status.h"

namespace figlut {
namespace {

TEST(Status, DefaultAndFactoryAreOk)
{
    const Status def;
    EXPECT_TRUE(def.ok());
    EXPECT_EQ(def.code(), StatusCode::Ok);
    EXPECT_TRUE(def.message().empty());
    EXPECT_EQ(def.toString(), "OK");
    EXPECT_TRUE(Status::okStatus().ok());
}

TEST(Status, ErrorFactoriesCarryCodeAndStreamedMessage)
{
    const Status s = Status::invalidArgument("threads must be <= ", 16,
                                             ", got ", 99);
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
    EXPECT_EQ(s.message(), "threads must be <= 16, got 99");
    EXPECT_EQ(s.toString(),
              "INVALID_ARGUMENT: threads must be <= 16, got 99");

    EXPECT_EQ(Status::notFound("x").code(), StatusCode::NotFound);
    EXPECT_EQ(Status::resourceExhausted("x").code(),
              StatusCode::ResourceExhausted);
    EXPECT_EQ(Status::failedPrecondition("x").code(),
              StatusCode::FailedPrecondition);
    EXPECT_EQ(Status::deadlineExceeded("x").code(),
              StatusCode::DeadlineExceeded);
    EXPECT_EQ(Status::cancelled("x").code(), StatusCode::Cancelled);
    EXPECT_EQ(Status::preempted("x").code(), StatusCode::Preempted);
}

TEST(Status, CodeNamesAreStable)
{
    EXPECT_STREQ(statusCodeName(StatusCode::Ok), "OK");
    EXPECT_STREQ(statusCodeName(StatusCode::InvalidArgument),
                 "INVALID_ARGUMENT");
    EXPECT_STREQ(statusCodeName(StatusCode::NotFound), "NOT_FOUND");
    EXPECT_STREQ(statusCodeName(StatusCode::ResourceExhausted),
                 "RESOURCE_EXHAUSTED");
    EXPECT_STREQ(statusCodeName(StatusCode::FailedPrecondition),
                 "FAILED_PRECONDITION");
    EXPECT_STREQ(statusCodeName(StatusCode::DeadlineExceeded),
                 "DEADLINE_EXCEEDED");
    EXPECT_STREQ(statusCodeName(StatusCode::Cancelled), "CANCELLED");
    EXPECT_STREQ(statusCodeName(StatusCode::Preempted), "PREEMPTED");
}

TEST(Result, HoldsValueOnSuccess)
{
    Result<int> r(42);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.status().ok());
    EXPECT_EQ(r.value(), 42);
    r.value() = 7;
    EXPECT_EQ(r.value(), 7);
}

TEST(Result, HoldsStatusOnError)
{
    const Result<int> r(Status::notFound("unknown request id ", 5));
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::NotFound);
    EXPECT_THROW(r.value(), PanicError);
}

TEST(Result, SupportsMoveOnlyPayloads)
{
    Result<std::unique_ptr<std::string>> r(
        std::make_unique<std::string>("engine"));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r.value(), "engine");
    auto owned = std::move(r).value();
    EXPECT_EQ(*owned, "engine");
}

TEST(Result, RejectsOkStatusConstruction)
{
    EXPECT_THROW(Result<int>(Status::okStatus()), PanicError);
}

} // namespace
} // namespace figlut
