/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"

namespace figlut {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(8);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(9);
    std::set<int64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniformInt(-2, 3);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 6u); // all values hit
}

TEST(Rng, NormalMomentsRoughlyStandard)
{
    Rng rng(10);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, FlipIsRoughlyFair)
{
    Rng rng(12);
    int heads = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        heads += rng.flip();
    EXPECT_NEAR(static_cast<double>(heads) / n, 0.5, 0.02);
}

TEST(Rng, NormalVectorLengthAndSpread)
{
    Rng rng(13);
    const auto v = rng.normalVector(5000, 1.0, 3.0);
    ASSERT_EQ(v.size(), 5000u);
    double sum = 0.0;
    for (double x : v)
        sum += x;
    EXPECT_NEAR(sum / 5000.0, 1.0, 0.3);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(99);
    Rng child = a.split();
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == child.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, SeedAccessorRoundTrips)
{
    Rng rng(123456);
    EXPECT_EQ(rng.seed(), 123456u);
}

} // namespace
} // namespace figlut
