/** @file Unit tests for the Matrix container. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/matrix.h"

namespace figlut {
namespace {

TEST(Matrix, DefaultIsEmpty)
{
    MatrixD m;
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.cols(), 0u);
    EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructValueInitializes)
{
    MatrixD m(3, 4);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.size(), 12u);
    for (std::size_t i = 0; i < m.size(); ++i)
        EXPECT_EQ(m.at(i), 0.0);
}

TEST(Matrix, ConstructWithFillValue)
{
    Matrix<int> m(2, 2, 7);
    EXPECT_EQ(m(0, 0), 7);
    EXPECT_EQ(m(1, 1), 7);
}

TEST(Matrix, RowMajorLayout)
{
    MatrixD m(2, 3);
    m(0, 0) = 1;
    m(0, 2) = 3;
    m(1, 0) = 4;
    EXPECT_EQ(m.at(0), 1.0);
    EXPECT_EQ(m.at(2), 3.0);
    EXPECT_EQ(m.at(3), 4.0);
    EXPECT_EQ(m.rowPtr(1)[0], 4.0);
}

TEST(Matrix, OutOfRangeAccessPanics)
{
    MatrixD m(2, 2);
    EXPECT_THROW(m(2, 0), PanicError);
    EXPECT_THROW(m(0, 2), PanicError);
}

TEST(Matrix, EqualityComparesContents)
{
    Matrix<int> a(2, 2, 1), b(2, 2, 1), c(2, 2, 2);
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == c);
}

TEST(Matrix, FillOverwritesAll)
{
    MatrixD m(3, 3, 1.0);
    m.fill(9.0);
    for (const double v : m)
        EXPECT_EQ(v, 9.0);
}

TEST(Matrix, IterationCoversAllElements)
{
    Matrix<int> m(4, 5, 2);
    int total = 0;
    for (const int v : m)
        total += v;
    EXPECT_EQ(total, 40);
}

} // namespace
} // namespace figlut
