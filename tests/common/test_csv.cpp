/** @file Unit tests for the CSV writer. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.h"
#include "common/logging.h"

namespace figlut {
namespace {

std::string
readAll(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

class CsvWriterTest : public ::testing::Test
{
  protected:
    std::string path_ = ::testing::TempDir() + "figlut_csv_test.csv";

    void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvWriterTest, WritesHeaderAndRows)
{
    {
        CsvWriter csv(path_, {"a", "b"});
        csv.addRow({"1", "2"});
        csv.addRow({"3", "4"});
        EXPECT_EQ(csv.rowCount(), 2u);
    }
    EXPECT_EQ(readAll(path_), "a,b\n1,2\n3,4\n");
}

TEST_F(CsvWriterTest, QuotesSpecialCharacters)
{
    {
        CsvWriter csv(path_, {"v"});
        csv.addRow({"has,comma"});
        csv.addRow({"has\"quote"});
    }
    EXPECT_EQ(readAll(path_), "v\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST_F(CsvWriterTest, WidthMismatchThrows)
{
    CsvWriter csv(path_, {"a", "b"});
    EXPECT_THROW(csv.addRow({"only"}), FatalError);
}

TEST_F(CsvWriterTest, EmptyHeaderThrows)
{
    EXPECT_THROW(CsvWriter(path_, {}), FatalError);
}

TEST(CsvEscape, PassthroughWhenClean)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a b"), "a b");
}

TEST(CsvWriterStandalone, UnwritablePathThrows)
{
    EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), FatalError);
}

} // namespace
} // namespace figlut
