/**
 * @file
 * Tests for the shard partitioning layer: FIGLUT_SHARDS resolution,
 * row-range planning, BCQ/packed-key row slicing (the slice must be
 * bit-identical to re-packing the sliced tensor), NUMA topology
 * parsing, CPU-set placement shapes, and ShardPlan coverage over a
 * quantized model.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "model/synthetic.h"
#include "quant/bcq.h"
#include "quant/packing.h"
#include "runtime/exec_options.h"
#include "runtime/quantized_model.h"
#include "shard/numa.h"
#include "shard/shard_plan.h"

namespace figlut {
namespace {

/**
 * MUST RUN FIRST IN THIS BINARY: resolveShardCount() reads
 * FIGLUT_SHARDS exactly once per process (mirroring FIGLUT_SIMD), so
 * the env override is pinned before anything else resolves it.
 */
TEST(ShardEnv, FiglutShardsEnvOverridesAutoOnce)
{
    ASSERT_EQ(setenv("FIGLUT_SHARDS", "3", 1), 0);
    EXPECT_EQ(resolveShardCount(0), 3);
    EXPECT_EQ(resolveShardCount(-5), 3);
    // An explicit request always wins over the environment.
    EXPECT_EQ(resolveShardCount(2), 2);
    EXPECT_EQ(resolveShardCount(1), 1);
    // Read-once semantics: later env changes are ignored.
    ASSERT_EQ(setenv("FIGLUT_SHARDS", "7", 1), 0);
    EXPECT_EQ(resolveShardCount(0), 3);
    ASSERT_EQ(unsetenv("FIGLUT_SHARDS"), 0);
    EXPECT_EQ(resolveShardCount(0), 3);
    // Requests are clamped to the hard bound.
    EXPECT_EQ(resolveShardCount(kMaxShards + 100), kMaxShards);
}

TEST(PlanShardRows, CoversDisjointNearEqual)
{
    for (const std::size_t rows :
         {std::size_t{1}, std::size_t{7}, std::size_t{64},
          std::size_t{97}}) {
        for (const int shards : {1, 2, 3, 8}) {
            const auto ranges = planShardRows(rows, shards);
            ASSERT_EQ(ranges.size(), static_cast<std::size_t>(shards));
            std::size_t covered = 0, lo = rows, hi = 0;
            for (const ShardRowRange &r : ranges) {
                EXPECT_LE(r.begin, r.end);
                covered += r.size();
                lo = std::min(lo, r.size());
                hi = std::max(hi, r.size());
            }
            EXPECT_EQ(covered, rows);
            EXPECT_LE(hi - lo, 1u) << "rows " << rows << " shards "
                                   << shards;
            // Contiguous in order: each range starts where the
            // previous ended.
            EXPECT_EQ(ranges.front().begin, 0u);
            for (std::size_t s = 1; s < ranges.size(); ++s)
                EXPECT_EQ(ranges[s].begin, ranges[s - 1].end);
            EXPECT_EQ(ranges.back().end, rows);
        }
    }
}

TEST(PlanShardRows, MoreShardsThanRowsLeavesEmptyTails)
{
    const auto ranges = planShardRows(3, 8);
    ASSERT_EQ(ranges.size(), 8u);
    std::size_t nonEmpty = 0;
    for (const ShardRowRange &r : ranges)
        nonEmpty += r.empty() ? 0 : 1;
    EXPECT_EQ(nonEmpty, 3u);
    EXPECT_EQ(ranges.back().end, 3u);
}

BcqTensor
randomTensor(std::size_t m, std::size_t n, int bits, std::size_t group,
             bool offset, uint64_t seed)
{
    Rng rng(seed);
    const auto w = syntheticWeights(m, n, rng);
    BcqConfig cfg;
    cfg.bits = bits;
    cfg.groupSize = group;
    cfg.useOffset = offset;
    cfg.iterations = 2;
    return quantizeBcq(w, cfg);
}

TEST(SliceBcqRows, MatchesSourceElementwise)
{
    const auto t = randomTensor(23, 20, 3, 8, true, 77);
    const std::size_t r0 = 5, r1 = 17;
    const BcqTensor s = sliceBcqRows(t, r0, r1);
    EXPECT_EQ(s.rows, r1 - r0);
    EXPECT_EQ(s.cols, t.cols);
    EXPECT_EQ(s.bits, t.bits);
    EXPECT_EQ(s.groupSize, t.groupSize);
    EXPECT_EQ(s.hasOffset, t.hasOffset);
    ASSERT_EQ(s.planes.size(), t.planes.size());
    for (std::size_t p = 0; p < s.planes.size(); ++p)
        for (std::size_t r = 0; r < s.rows; ++r)
            for (std::size_t c = 0; c < s.cols; ++c)
                EXPECT_EQ(s.planes[p](r, c), t.planes[p](r0 + r, c));
    for (std::size_t p = 0; p < s.alphas.size(); ++p)
        for (std::size_t r = 0; r < s.rows; ++r)
            for (std::size_t g = 0; g < s.alphas[p].cols(); ++g)
                EXPECT_EQ(s.alphas[p](r, g), t.alphas[p](r0 + r, g));
    for (std::size_t r = 0; r < s.rows; ++r)
        for (std::size_t g = 0; g < s.offsets.cols(); ++g)
            EXPECT_EQ(s.offsets(r, g), t.offsets(r0 + r, g));
}

/** The load-bearing slicing identity: slicing pre-packed keys must be
 *  bit-identical to packing the sliced tensor — the executor's
 *  per-shard kernel inputs are exactly what an unsharded build of the
 *  slice would produce. */
TEST(SlicePackedKeysRows, IdenticalToRepackingTheSlice)
{
    const int mu = 4;
    for (const uint64_t seed : {11u, 12u, 13u}) {
        const auto t = randomTensor(31, 24, 2, 12, seed % 2 == 0, seed);
        const PackedLutKeys full = packLutKeys(t, mu);
        for (const auto &[r0, r1] :
             {std::pair<std::size_t, std::size_t>{0, 31},
              {0, 10},
              {10, 21},
              {21, 31},
              {30, 31}}) {
            const PackedLutKeys sliced =
                slicePackedKeysRows(full, r0, r1);
            const PackedLutKeys repacked =
                packLutKeys(sliceBcqRows(t, r0, r1), mu);
            EXPECT_EQ(sliced.mu, repacked.mu);
            EXPECT_EQ(sliced.bits, repacked.bits);
            EXPECT_EQ(sliced.rows, repacked.rows);
            EXPECT_EQ(sliced.cols, repacked.cols);
            EXPECT_EQ(sliced.groupSize, repacked.groupSize);
            EXPECT_EQ(sliced.groups, repacked.groups);
            EXPECT_EQ(sliced.totalChunks, repacked.totalChunks);
            EXPECT_EQ(sliced.groupChunkStart, repacked.groupChunkStart);
            EXPECT_EQ(sliced.keys, repacked.keys)
                << "seed " << seed << " rows [" << r0 << ", " << r1
                << ")";
        }
    }
}

TEST(ParseCpuList, HandlesRangesSinglesAndGarbage)
{
    EXPECT_EQ(parseCpuList("0-3,8,10-11"),
              (CpuSet{0, 1, 2, 3, 8, 10, 11}));
    EXPECT_EQ(parseCpuList("5"), (CpuSet{5}));
    EXPECT_EQ(parseCpuList("3,1,2,2"), (CpuSet{1, 2, 3}));
    EXPECT_EQ(parseCpuList(""), CpuSet{});
    EXPECT_EQ(parseCpuList("abc"), CpuSet{});
    // Malformed fragments are skipped, valid ones survive.
    EXPECT_EQ(parseCpuList("1,x,4-5"), (CpuSet{1, 4, 5}));
}

TEST(DetectNumaTopology, ReportsAtLeastOneNodeWithCpus)
{
    const NumaTopology topo = detectNumaTopology();
    ASSERT_GE(topo.nodeCount(), 1u);
    EXPECT_GE(topo.totalCpus(), 1u);
    for (const NumaNode &node : topo.nodes)
        EXPECT_FALSE(node.cpus.empty());
}

NumaTopology
syntheticTopology(const std::vector<CpuSet> &nodes)
{
    NumaTopology topo;
    for (std::size_t i = 0; i < nodes.size(); ++i)
        topo.nodes.push_back(
            {static_cast<int>(i), nodes[i]});
    return topo;
}

TEST(ShardCpuSets, SingleNodeSplitsContiguously)
{
    const auto topo = syntheticTopology({{0, 1, 2, 3, 4, 5, 6, 7}});
    const auto sets = shardCpuSets(topo, 3);
    ASSERT_EQ(sets.size(), 3u);
    std::size_t total = 0;
    for (const CpuSet &s : sets) {
        EXPECT_FALSE(s.empty());
        total += s.size();
    }
    EXPECT_EQ(total, 8u);
    // Contiguous, in order, no overlap.
    EXPECT_LT(sets[0].back(), sets[1].front());
    EXPECT_LT(sets[1].back(), sets[2].front());
}

TEST(ShardCpuSets, MultiNodeAssignsWholeNodesRoundRobin)
{
    const auto topo =
        syntheticTopology({{0, 1, 2, 3}, {4, 5, 6, 7}});
    const auto sets = shardCpuSets(topo, 4);
    ASSERT_EQ(sets.size(), 4u);
    EXPECT_EQ(sets[0], (CpuSet{0, 1, 2, 3}));
    EXPECT_EQ(sets[1], (CpuSet{4, 5, 6, 7}));
    EXPECT_EQ(sets[2], (CpuSet{0, 1, 2, 3}));
    EXPECT_EQ(sets[3], (CpuSet{4, 5, 6, 7}));
}

TEST(ShardCpuSets, FewerCpusThanShardsRoundRobinsSingles)
{
    const auto topo = syntheticTopology({{0, 1}});
    const auto sets = shardCpuSets(topo, 3);
    ASSERT_EQ(sets.size(), 3u);
    EXPECT_EQ(sets[0], (CpuSet{0}));
    EXPECT_EQ(sets[1], (CpuSet{1}));
    EXPECT_EQ(sets[2], (CpuSet{0}));
}

TEST(ShardCpuSets, NonPositiveShardsYieldEmptyPlan)
{
    const auto topo = syntheticTopology({{0, 1}});
    EXPECT_TRUE(shardCpuSets(topo, 0).empty());
    EXPECT_TRUE(shardCpuSets(topo, -2).empty());
}

TEST(GemmOperandIndex, DenseAndStable)
{
    EXPECT_EQ(gemmOperandIndex(LayerOp::QkvProj), 0u);
    EXPECT_EQ(gemmOperandIndex(LayerOp::OutProj), 1u);
    EXPECT_EQ(gemmOperandIndex(LayerOp::Fc1), 2u);
    EXPECT_EQ(gemmOperandIndex(LayerOp::Fc2), 3u);
}

TEST(ShardPlan, SlicesEveryOperandOfEveryLayer)
{
    OptConfig model;
    model.name = "OPT-shard-test";
    model.hidden = 16;
    model.layers = 2;
    model.heads = 2;
    model.ffn = 32;
    QuantizedModelOptions qopts;
    qopts.weightBits = 2;
    qopts.bcqIterations = 0;
    qopts.packKeys = true;
    const QuantizedModel quantized(model, qopts);

    const ShardPlan plan(quantized, 3);
    EXPECT_EQ(plan.shards(), 3);
    ASSERT_EQ(plan.layers(), quantized.layers());
    EXPECT_GT(plan.storageBytes(), 0u);
    const LayerOp gemms[] = {LayerOp::QkvProj, LayerOp::OutProj,
                             LayerOp::Fc1, LayerOp::Fc2};
    for (std::size_t l = 0; l < plan.layers(); ++l) {
        for (const LayerOp op : gemms) {
            const ShardedOperand &operand = plan.operand(l, op);
            const BcqTensor &whole = quantized.layer(l).weights(op);
            ASSERT_EQ(operand.shards(), 3u);
            ASSERT_EQ(operand.tensors.size(), 3u);
            ASSERT_EQ(operand.keys.size(), 3u);
            std::size_t rows = 0;
            for (std::size_t s = 0; s < 3; ++s) {
                EXPECT_EQ(operand.tensors[s].rows,
                          operand.ranges[s].size());
                EXPECT_EQ(operand.keys[s].rows,
                          operand.ranges[s].size());
                EXPECT_EQ(operand.tensors[s].cols, whole.cols);
                rows += operand.ranges[s].size();
            }
            EXPECT_EQ(rows, whole.rows);
        }
    }
}

TEST(ShardPlan, DegenerateSingleShardIsWholeOperand)
{
    OptConfig model;
    model.name = "OPT-shard-test";
    model.hidden = 8;
    model.layers = 1;
    model.heads = 2;
    model.ffn = 16;
    QuantizedModelOptions qopts;
    qopts.weightBits = 2;
    qopts.bcqIterations = 0;
    qopts.packKeys = false; // unpacked models slice weights only
    const QuantizedModel quantized(model, qopts);

    const ShardPlan plan(quantized, 1);
    const ShardedOperand &qkv = plan.operand(0, LayerOp::QkvProj);
    ASSERT_EQ(qkv.shards(), 1u);
    EXPECT_EQ(qkv.ranges[0].begin, 0u);
    EXPECT_EQ(qkv.ranges[0].end, quantized.layer(0).qkv.rows);
    EXPECT_TRUE(qkv.keys.empty());
}

} // namespace
} // namespace figlut
