/**
 * @file
 * The interconnect cost model and its replay pin. The Accelerator
 * prices one combine per row-sharded GEMM (b_eff style: latency +
 * bytes over effective bandwidth, calibrated by bench_stream's xpool
 * probe); these tests pin the closed form, its monotonicity in the
 * shard count, and — the load-bearing one — that a *sharded*
 * serve::Engine driven on a VirtualClock and priced with the sharded
 * workload reproduces sim::replayTrace(shards = N) bit for bit.
 */

#include <unordered_map>

#include <gtest/gtest.h>

#include "figlut/figlut.h"

namespace figlut {
namespace {

OptConfig
tinyModel()
{
    OptConfig model;
    model.name = "OPT-shard-replay-test";
    model.hidden = 64;
    model.layers = 1;
    model.heads = 2;
    model.ffn = 128;
    return model;
}

HwConfig
testHw()
{
    HwConfig hw;
    hw.engine = EngineKind::FIGLUT_I;
    return hw;
}

KernelTask
gemmTask(std::size_t m, std::size_t n, std::size_t batch, int shards)
{
    GemmShape shape;
    shape.m = m;
    shape.n = n;
    shape.batch = batch;
    shape.weightBits = 4;
    KernelTask task = KernelTask::makeGemm("gemm", shape);
    task.shards = shards;
    return task;
}

TEST(InterconnectModel, UnshardedGemmPaysNoCombine)
{
    const Accelerator acc(testHw());
    const auto result = acc.runWorkload({gemmTask(64, 64, 4, 1)});
    EXPECT_EQ(result.commCycles, 0.0);
    EXPECT_EQ(result.commBytes, 0.0);
}

TEST(InterconnectModel, CombinePricesLatencyPlusBytesOverBandwidth)
{
    const HwConfig hw = testHw();
    const Accelerator acc(hw);
    const std::size_t m = 64, n = 48, batch = 4;
    const int shards = 3;
    const auto result =
        acc.runWorkload({gemmTask(m, n, batch, shards)});

    // Closed form: broadcast the activation panel to shards-1 remote
    // groups, gather their (shards-1)/shards share of the output rows.
    const double store = storageBits(hw.actFormat) / 8.0;
    const double remote = shards - 1;
    const double bytes =
        (static_cast<double>(n) * batch * remote +
         static_cast<double>(m) * batch * remote / shards) *
        store;
    const double commS =
        hw.interconnect.latencyS +
        bytes / hw.interconnect.bandwidthBytesPerS;
    EXPECT_DOUBLE_EQ(result.commBytes, bytes);
    EXPECT_DOUBLE_EQ(result.commCycles,
                     commS * hw.tech.freqMhz * 1e6);

    // The combine is additive on top of the identical compute.
    const auto unsharded = acc.runWorkload({gemmTask(m, n, batch, 1)});
    EXPECT_DOUBLE_EQ(result.gemmCycles, unsharded.gemmCycles);
    EXPECT_DOUBLE_EQ(result.totalCycles,
                     unsharded.totalCycles + result.commCycles);
}

TEST(InterconnectModel, CombineCostGrowsWithShardCount)
{
    const Accelerator acc(testHw());
    double lastComm = 0.0;
    for (const int shards : {1, 2, 4, 8}) {
        const auto result =
            acc.runWorkload({gemmTask(128, 128, 8, shards)});
        EXPECT_GE(result.commCycles, lastComm) << shards;
        if (shards > 1) {
            EXPECT_GT(result.commCycles, lastComm) << shards;
        }
        lastComm = result.commCycles;
    }
}

TEST(InterconnectModel, ValidationRejectsNonsense)
{
    HwConfig hw = testHw();
    hw.interconnect.latencyS = -1.0;
    EXPECT_THROW(hw.validate(), FatalError);
    hw = testHw();
    hw.interconnect.bandwidthBytesPerS = 0.0;
    EXPECT_THROW(hw.validate(), FatalError);
}

TEST(ShardReplay, ShardedReplayIsSlowerThanUnsharded)
{
    ReplayOptions options;
    options.maxBatch = 2;
    options.maxQueue = 4;
    const std::vector<ReplayRequest> trace{
        {0.0, 4, 3}, {0.0, 6, 2}, {1e-4, 3, 2}};
    const auto base =
        replayTrace(tinyModel(), testHw(), options, trace);
    options.shards = 4;
    const auto sharded =
        replayTrace(tinyModel(), testHw(), options, trace);
    // Same schedule shape, strictly more simulated time per step: the
    // comm term prices in, compute does not change.
    ASSERT_EQ(sharded.steps, base.steps);
    EXPECT_GT(sharded.endS, base.endS);
    for (std::size_t s = 0; s < base.stepSeconds.size(); ++s)
        EXPECT_GT(sharded.stepSeconds[s], base.stepSeconds[s]) << s;
}

/**
 * The sharded twin of the replay pin: a serve::Engine actually
 * executing its GEMMs through the ShardedExecutor (shards = 2),
 * driven on a VirtualClock advanced by the sharded workload's
 * accelerator score (combine term included), reproduces
 * replayTrace(shards = 2) bit for bit — shed set, queue depths, and
 * every token completion time in *simulated* seconds.
 */
TEST(ShardReplay, ShardedEngineOnVirtualClockMatchesShardedReplay)
{
    const OptConfig model = tinyModel();
    const HwConfig hw = testHw();
    ReplayOptions options;
    options.maxBatch = 2;
    options.maxQueue = 2;
    options.prefillChunkTokens = 2; // chunked prefill, sharded too
    options.shards = 2;
    const std::vector<ReplayRequest> trace{
        {0.0, 4, 3}, {0.0, 6, 2}, {0.0, 5, 1}, {1e-4, 3, 2},
        {2e-3, 8, 3},
    };
    const auto replay = replayTrace(model, hw, options, trace);

    serve::VirtualClock clock;
    serve::EngineOptions engineOptions;
    engineOptions.clock = &clock;
    engineOptions.maxBatch = options.maxBatch;
    engineOptions.maxQueue = options.maxQueue;
    engineOptions.prefillChunkTokens = options.prefillChunkTokens;
    engineOptions.model.weightBits = options.weightBits;
    engineOptions.model.groupSize = options.groupSize;
    engineOptions.model.useOffset = options.hasOffset;
    engineOptions.model.bcqIterations = 1;
    engineOptions.includeVector = options.includeVector;
    engineOptions.exec.shards = options.shards;
    auto created = serve::Engine::create(model, engineOptions);
    ASSERT_TRUE(created.ok()) << created.status().toString();
    serve::Engine &engine = *created.value();
    ASSERT_EQ(engine.shards(), options.shards);

    const Accelerator accelerator(hw);
    WorkloadOptions workload;
    workload.weightBits = options.weightBits;
    workload.includeVector = options.includeVector;
    workload.groupSize = options.groupSize;
    workload.hasOffset = options.hasOffset;
    workload.shards = options.shards;

    std::vector<bool> shed(trace.size(), false);
    std::vector<std::vector<double>> tokenTimes(trace.size());
    std::vector<std::size_t> queueDepth;
    std::unordered_map<serve::RequestId, std::size_t> indexOf;

    std::size_t next = 0;
    while (true) {
        while (next < trace.size() &&
               trace[next].arrivalS <= clock.now()) {
            serve::RequestOptions request;
            request.maxTokens = trace[next].outputTokens;
            request.promptTokens = trace[next].promptTokens;
            request.seed = 100 + next;
            const auto id = engine.submit(request);
            if (id.ok())
                indexOf.emplace(id.value(), next);
            else
                shed[next] = true;
            ++next;
        }
        if (engine.liveRequests() == 0 &&
            engine.queuedRequests() == 0) {
            if (next == trace.size())
                break;
            clock.set(trace[next].arrivalS);
            continue;
        }

        const auto stats = engine.step();
        ASSERT_TRUE(stats.ok()) << stats.status().toString();
        const serve::StepStats &step = stats.value();
        ASSERT_FALSE(step.columnContexts.empty());
        workload.batch = step.columnContexts.size();
        const double stepS =
            accelerator
                .runWorkload(decodeStepWorkload(model, workload,
                                                step.columnContexts))
                .seconds;
        clock.advance(stepS);
        for (const serve::RequestId id : step.decodedIds)
            tokenTimes[indexOf.at(id)].push_back(clock.now());
        queueDepth.push_back(step.queueDepth);
    }

    ASSERT_EQ(queueDepth.size(), replay.steps);
    EXPECT_EQ(queueDepth, replay.queueDepth);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(shed[i], replay.requests[i].shed) << i;
        EXPECT_EQ(tokenTimes[i], replay.requests[i].tokenTimesS) << i;
    }
    for (const auto &[id, i] : indexOf) {
        const auto snapshot = engine.poll(id);
        ASSERT_TRUE(snapshot.ok()) << i;
        EXPECT_DOUBLE_EQ(snapshot.value().stats.queueSeconds,
                         replay.requests[i].queueS)
            << i;
    }

    // And the engine's own analytic pricing agrees: its next-step
    // tasks carry the shard stamp, so simulate() includes the combine.
    serve::RequestOptions tail;
    tail.maxTokens = 1;
    ASSERT_TRUE(engine.submit(tail).ok());
    const WorkloadResult scored = engine.simulate(hw);
    EXPECT_GT(scored.commCycles, 0.0);
}

} // namespace
} // namespace figlut
