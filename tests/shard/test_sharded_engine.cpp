/**
 * @file
 * Bit-identity of sharded execution. The contract under test is
 * DESIGN.md's "Sharded execution": for any shard count, backend, and
 * prefill/decode mix, the sharded path produces byte-for-byte the
 * hidden states, KV histories, and kernel counters of the unsharded
 * one — sharding is an execution-resource decision, never a numerics
 * or accounting change.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/lut_gemm.h"
#include "model/synthetic.h"
#include "runtime/exec_options.h"
#include "runtime/quantized_model.h"
#include "serve/engine.h"
#include "shard/shard_plan.h"
#include "shard/sharded_executor.h"

namespace figlut {
namespace {

void
expectMatrixEq(const MatrixD &a, const MatrixD &b, const char *what)
{
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c)
            ASSERT_EQ(a(r, c), b(r, c))
                << what << " at (" << r << ", " << c << ")";
}

void
expectCountersEqual(const LutGemmCounters &a, const LutGemmCounters &b,
                    const char *what)
{
    EXPECT_EQ(a.lutGenerations, b.lutGenerations) << what;
    EXPECT_EQ(a.generatorAdds, b.generatorAdds) << what;
    EXPECT_EQ(a.lutReads, b.lutReads) << what;
    EXPECT_EQ(a.racAccumulates, b.racAccumulates) << what;
    EXPECT_EQ(a.scaleMuls, b.scaleMuls) << what;
    EXPECT_EQ(a.offsetOps, b.offsetOps) << what;
}

const LutGemmBackend kBackends[] = {
    LutGemmBackend::Reference,
    LutGemmBackend::Threaded,
    LutGemmBackend::Packed,
    LutGemmBackend::Simd,
};

/**
 * Direct executor differential: every (backend, shard count) against
 * the plain unsharded kernel on the same operands — outputs and the
 * canonical counters bit-identical.
 */
TEST(ShardedExecutor, MatchesUnshardedKernelAllBackends)
{
    OptConfig model;
    model.name = "OPT-shard-exec";
    model.hidden = 16;
    model.layers = 2;
    model.heads = 2;
    model.ffn = 32;
    QuantizedModelOptions qopts;
    qopts.weightBits = 2;
    qopts.bcqIterations = 0;
    qopts.packKeys = true;
    const QuantizedModel quantized(model, qopts);

    Rng rng(314);
    const LayerOp gemms[] = {LayerOp::QkvProj, LayerOp::OutProj,
                             LayerOp::Fc1, LayerOp::Fc2};

    for (const int shards : {2, 3, 8}) {
        const ShardPlan plan(quantized, shards);
        ShardedExecutor exec(plan, 2);
        for (const LutGemmBackend backend : kBackends) {
            ExecOptions opts;
            opts.backend = backend;
            opts.threads = 2;
            const LutGemmConfig cfg =
                makeGemmConfig(opts, qopts.mu);
            for (std::size_t l = 0; l < quantized.layers(); ++l) {
                for (const LayerOp op : gemms) {
                    const BcqTensor &w =
                        quantized.layer(l).weights(op);
                    const auto x =
                        syntheticActivations(w.cols, 3, rng);
                    LutGemmCounters plain, shardedCnt;
                    const MatrixD expected =
                        backend == LutGemmBackend::Packed ||
                                backend == LutGemmBackend::Simd
                            ? lutGemm(w, x, cfg,
                                      quantized.layer(l).keys(op),
                                      &plain)
                            : lutGemm(w, x, cfg, &plain);
                    const MatrixD actual =
                        exec.run(l, op, x, cfg, &shardedCnt);
                    expectMatrixEq(expected, actual, "sharded gemm");
                    expectCountersEqual(plain, shardedCnt,
                                        "sharded counters");
                }
            }
        }
    }
}

struct DrainResult
{
    std::vector<MatrixD> hidden;
    std::vector<KvCache> kv;
    std::vector<LutGemmCounters> counters;
    /** Step-by-step fused counters, in execution order. */
    std::vector<LutGemmCounters> stepCounters;
    std::vector<std::size_t> stepColumns;
};

/**
 * Drive a ragged prefill+decode mix (queued admission, chunked
 * prefill) to completion on one engine configuration and capture
 * everything bit-identity must preserve.
 */
DrainResult
drainMix(LutGemmBackend backend, int shards)
{
    OptConfig model;
    model.name = "OPT-shard-mix";
    model.hidden = 16;
    model.layers = 2;
    model.heads = 2;
    model.ffn = 32;
    serve::EngineOptions opts;
    opts.model.weightBits = 3;
    opts.model.bcqIterations = 0;
    opts.exec.backend = backend;
    opts.exec.threads = 2;
    opts.exec.shards = shards;
    opts.maxBatch = 3; // the fourth request queues
    opts.prefillChunkTokens = 4; // long prompts prefill chunked
    auto created = serve::Engine::create(model, opts);
    EXPECT_TRUE(created.ok()) << created.status().toString();
    serve::Engine &engine = *created.value();
    EXPECT_EQ(engine.shards(), resolveShardCount(shards));

    const std::size_t prompts[] = {6, 0, 3, 9};
    const std::size_t budgets[] = {3, 5, 2, 4};
    std::vector<serve::RequestId> ids;
    for (std::size_t i = 0; i < 4; ++i) {
        serve::RequestOptions req;
        req.maxTokens = budgets[i];
        req.promptTokens = prompts[i];
        req.seed = 900 + i;
        auto id = engine.submit(req);
        EXPECT_TRUE(id.ok()) << id.status().toString();
        ids.push_back(id.value());
    }

    DrainResult out;
    std::size_t steps = 0;
    while (engine.liveRequests() > 0 || engine.queuedRequests() > 0) {
        const auto stats = engine.step();
        EXPECT_TRUE(stats.ok()) << stats.status().toString();
        out.stepCounters.push_back(stats.value().counters);
        out.stepColumns.push_back(
            stats.value().columnContexts.size());
        EXPECT_LT(++steps, 64u) << "engine failed to drain";
    }
    for (const serve::RequestId id : ids) {
        const auto snap = engine.poll(id);
        EXPECT_TRUE(snap.ok());
        EXPECT_EQ(snap.value().state, serve::RequestState::Finished);
        out.hidden.push_back(snap.value().hidden);
        out.counters.push_back(snap.value().stats.counters);
        out.kv.push_back(engine.kvHistory(id).value());
    }
    return out;
}

void
expectDrainsIdentical(const DrainResult &ref, const DrainResult &got,
                      const std::string &what)
{
    ASSERT_EQ(ref.stepColumns, got.stepColumns) << what;
    ASSERT_EQ(ref.stepCounters.size(), got.stepCounters.size()) << what;
    for (std::size_t s = 0; s < ref.stepCounters.size(); ++s)
        expectCountersEqual(ref.stepCounters[s], got.stepCounters[s],
                            what.c_str());
    ASSERT_EQ(ref.hidden.size(), got.hidden.size()) << what;
    for (std::size_t i = 0; i < ref.hidden.size(); ++i) {
        expectMatrixEq(ref.hidden[i], got.hidden[i], what.c_str());
        expectCountersEqual(ref.counters[i], got.counters[i],
                            what.c_str());
        const KvCache &a = ref.kv[i];
        const KvCache &b = got.kv[i];
        ASSERT_EQ(a.layers(), b.layers()) << what;
        ASSERT_EQ(a.length(), b.length()) << what;
        for (std::size_t l = 0; l < a.layers(); ++l) {
            for (std::size_t t = 0; t < a.keys(l).size(); ++t) {
                expectMatrixEq(a.keys(l)[t], b.keys(l)[t],
                               what.c_str());
                expectMatrixEq(a.values(l)[t], b.values(l)[t],
                               what.c_str());
            }
        }
    }
}

/**
 * The tentpole invariant: shards in {2, 3, 8} reproduce the shards=1
 * drain bit-for-bit — hidden states, per-step and per-request
 * counters, KV histories — on every backend, across a ragged mix of
 * chunked prefills, queued admission, and staggered retirement.
 */
TEST(ShardedEngine, BitIdenticalToUnshardedAcrossBackends)
{
    for (const LutGemmBackend backend : kBackends) {
        const DrainResult ref = drainMix(backend, 1);
        for (const int shards : {2, 3, 8}) {
            const DrainResult got = drainMix(backend, shards);
            expectDrainsIdentical(
                ref, got,
                std::string(lutGemmBackendName(backend)) + " shards " +
                    std::to_string(shards));
        }
    }
}

/** Sharding must also be invisible to the analytic view's GEMM count
 *  and to the workload geometry — only the shards stamp changes. */
TEST(ShardedEngine, WorkloadTasksCarryTheShardStamp)
{
    OptConfig model;
    model.name = "OPT-shard-tasks";
    model.hidden = 16;
    model.layers = 1;
    model.heads = 2;
    model.ffn = 32;
    serve::EngineOptions opts;
    opts.model.weightBits = 2;
    opts.model.bcqIterations = 0;
    opts.exec.shards = 2;
    auto created = serve::Engine::create(model, opts);
    ASSERT_TRUE(created.ok());
    serve::Engine &engine = *created.value();
    serve::RequestOptions req;
    req.maxTokens = 2;
    ASSERT_TRUE(engine.submit(req).ok());
    const auto tasks = engine.workloadTasks();
    ASSERT_FALSE(tasks.empty());
    for (const KernelTask &task : tasks) {
        if (task.kind == KernelTask::Kind::Gemm) {
            EXPECT_EQ(task.shards, 2);
        }
    }
}

} // namespace
} // namespace figlut
