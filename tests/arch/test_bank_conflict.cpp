/** @file Tests for the banked shared-memory LUT model (Section II-C). */

#include <gtest/gtest.h>

#include "arch/bank_conflict.h"
#include "common/logging.h"

namespace figlut {
namespace {

TEST(ConflictCycles, DistinctBanksAreFree)
{
    // 4 threads hitting banks 0..3: one cycle.
    EXPECT_EQ(conflictCycles({0, 1, 2, 3}, 32), 1u);
}

TEST(ConflictCycles, SameWordBroadcasts)
{
    // Identical addresses broadcast: still one cycle.
    EXPECT_EQ(conflictCycles({5, 5, 5, 5}, 32), 1u);
}

TEST(ConflictCycles, DistinctWordsSameBankSerialize)
{
    // Words 1 and 33 share bank 1 (mod 32): two cycles.
    EXPECT_EQ(conflictCycles({1, 33}, 32), 2u);
    // Four distinct words in one bank: four cycles (worst case).
    EXPECT_EQ(conflictCycles({2, 34, 66, 98}, 32), 4u);
}

TEST(ConflictCycles, WorstBankDominates)
{
    // Bank 0 gets 3 distinct words, bank 1 gets 1: 3 cycles.
    EXPECT_EQ(conflictCycles({0, 32, 64, 1}, 32), 3u);
}

TEST(ConflictCycles, EmptyAndInvalid)
{
    EXPECT_EQ(conflictCycles({}, 32), 0u);
    EXPECT_THROW(conflictCycles({1}, 0), FatalError);
}

TEST(BankConflict, ConstructionPhaseIsConflictFree)
{
    // The paper: "during the LUT construction phase, bank conflicts
    // are avoided as each thread accesses different banks".
    BankedLutConfig cfg;
    const auto stats = simulateConstructionWrites(cfg, 1000);
    EXPECT_DOUBLE_EQ(stats.slowdown(), 1.0);
    EXPECT_EQ(stats.worstBatch, 1u);
}

TEST(BankConflict, RandomReadsSerialize)
{
    // The paper: "during the LUT read phase, the randomness of the
    // weight pattern often causes frequent bank conflicts".
    Rng rng(5001);
    BankedLutConfig cfg; // 32 threads, 32 banks, mu=4 -> 16 words
    const auto stats = simulateRandomReads(rng, cfg, 2000);
    // 32 random keys over 16 words: heavy distinct-word collisions.
    EXPECT_GT(stats.slowdown(), 1.5);
    EXPECT_GT(stats.worstBatch, 2u);
}

TEST(BankConflict, MoreBanksReduceSlowdown)
{
    Rng a(5002), b(5002);
    BankedLutConfig few;
    few.banks = 8;
    few.mu = 8;
    BankedLutConfig many = few;
    many.banks = 64;
    const auto slow_few = simulateRandomReads(a, few, 2000).slowdown();
    const auto slow_many = simulateRandomReads(b, many, 2000).slowdown();
    EXPECT_GT(slow_few, slow_many);
}

TEST(BankConflict, SmallTablesCapSerialization)
{
    // mu=2: only 4 distinct words exist, so a bank holds at most 4 -
    // the worst batch can never exceed the table size.
    Rng rng(5003);
    BankedLutConfig cfg;
    cfg.mu = 2;
    const auto stats = simulateRandomReads(rng, cfg, 2000);
    EXPECT_LE(stats.worstBatch, 4u);
}

TEST(BankConflict, ExpectedSlowdownMatchesSimulation)
{
    Rng a(5004), b(5004);
    BankedLutConfig cfg;
    const double e = expectedRandomSlowdown(a, cfg, 3000);
    const double s = simulateRandomReads(b, cfg, 3000).slowdown();
    EXPECT_NEAR(e, s, 1e-12); // same RNG stream -> identical
}

TEST(BankConflict, InvalidConfigThrows)
{
    Rng rng(5005);
    BankedLutConfig cfg;
    cfg.threads = 0;
    EXPECT_THROW(simulateRandomReads(rng, cfg, 10), FatalError);
    EXPECT_THROW(simulateConstructionWrites(cfg, 10), FatalError);
    cfg.threads = 32;
    cfg.mu = 20;
    EXPECT_THROW(simulateRandomReads(rng, cfg, 10), FatalError);
}

} // namespace
} // namespace figlut
