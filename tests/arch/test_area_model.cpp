/** @file Tests for the MPU area model (Figs. 13/14 shapes). */

#include <gtest/gtest.h>

#include "arch/area_model.h"
#include "common/logging.h"

namespace figlut {
namespace {

const TechParams &tech = TechParams::default28nm();

MpuConfig
cfg(EngineKind e, ActFormat fmt = ActFormat::FP16, int wbits = 4)
{
    MpuConfig c;
    c.engine = e;
    c.actFormat = fmt;
    c.weightBits = wbits;
    return c;
}

TEST(ArrayGeometry, PaperConfigurations)
{
    EXPECT_EQ(engineArray(EngineKind::FPE).pes(), 64 * 64);
    EXPECT_EQ(engineArray(EngineKind::FIGNA).pes(), 64 * 64);
    EXPECT_EQ(engineArray(EngineKind::IFPU).pes(), 64 * 64 * 4);
    EXPECT_EQ(engineArray(EngineKind::FIGLUT_I).pes(), 2 * 16 * 4);
}

TEST(ArrayGeometry, EqualBinaryLaneCounts)
{
    // iFPU: 16384 binary PEs; FIGLUT: 128 PEs * 32 RACs * mu 4 = 16384.
    const auto figlut = engineArray(EngineKind::FIGLUT_I);
    EXPECT_EQ(figlut.pes() * 32 * 4, engineArray(EngineKind::IFPU).pes());
}

TEST(SkewStages, FiglutShallowerPipeline)
{
    EXPECT_EQ(skewStages(EngineKind::FPE), 63);
    EXPECT_EQ(skewStages(EngineKind::FIGLUT_I), 15); // paper claim
}

TEST(Fig14, ArithmeticDominatesInFpEngines)
{
    const auto fpe = mpuArea(cfg(EngineKind::FPE), tech);
    EXPECT_GT(fpe.arithmeticUm2, fpe.flipFlopUm2);
}

TEST(Fig14, FiglutFArithmeticSmallerThanFpe)
{
    // FIGLUT-F replaces the FP multiplier with FP adds: smaller
    // arithmetic area at the same throughput.
    const auto fpe = mpuArea(cfg(EngineKind::FPE), tech);
    const auto fig = mpuArea(cfg(EngineKind::FIGLUT_F), tech);
    EXPECT_LT(fig.arithmeticUm2, fpe.arithmeticUm2);
}

TEST(Fig14, FignaQ8ArithmeticGrowsFasterThanFpeQ8)
{
    // FIGNA's multipliers scale with weight width; FPE only grows the
    // dequantizer.
    const double figna_ratio =
        mpuArea(cfg(EngineKind::FIGNA, ActFormat::FP16, 8), tech)
            .arithmeticUm2 /
        mpuArea(cfg(EngineKind::FIGNA, ActFormat::FP16, 4), tech)
            .arithmeticUm2;
    const double fpe_ratio =
        mpuArea(cfg(EngineKind::FPE, ActFormat::FP16, 8), tech)
            .arithmeticUm2 /
        mpuArea(cfg(EngineKind::FPE, ActFormat::FP16, 4), tech)
            .arithmeticUm2;
    EXPECT_GT(figna_ratio, fpe_ratio);
}

TEST(Fig14, FiglutReducesFlipFlopAreaVsIfpu)
{
    const auto ifpu = mpuArea(cfg(EngineKind::IFPU), tech);
    const auto fig = mpuArea(cfg(EngineKind::FIGLUT_I), tech);
    EXPECT_LT(fig.flipFlopUm2, ifpu.flipFlopUm2);
}

TEST(Fig14, IfpuHasMostFlipFlops)
{
    // The bit-serial binary array replicates psum registers 4x.
    const auto ifpu = mpuArea(cfg(EngineKind::IFPU), tech);
    for (const auto e : {EngineKind::FPE, EngineKind::FIGNA,
                         EngineKind::FIGLUT_I}) {
        EXPECT_GT(ifpu.flipFlopUm2, mpuArea(cfg(e), tech).flipFlopUm2)
            << engineName(e);
    }
}

TEST(Fig14, FiglutIMpuSmallerThanFigna)
{
    // The TOPS/mm^2 advantage comes from here (throughput is equal).
    const auto figna = mpuArea(cfg(EngineKind::FIGNA), tech);
    const auto fig = mpuArea(cfg(EngineKind::FIGLUT_I), tech);
    EXPECT_LT(fig.totalUm2(), figna.totalUm2());
}

TEST(Fig14, AreaGrowsWithMantissa)
{
    for (const auto e : {EngineKind::FIGNA, EngineKind::IFPU,
                         EngineKind::FIGLUT_I}) {
        const auto fp16 = mpuArea(cfg(e, ActFormat::FP16), tech);
        const auto fp32 = mpuArea(cfg(e, ActFormat::FP32), tech);
        EXPECT_GT(fp32.totalUm2(), fp16.totalUm2()) << engineName(e);
    }
}

TEST(Fig14, Bf16CheaperThanFp16OnIntegerEngines)
{
    const auto bf16 = mpuArea(cfg(EngineKind::FIGNA, ActFormat::BF16),
                              tech);
    const auto fp16 = mpuArea(cfg(EngineKind::FIGNA, ActFormat::FP16),
                              tech);
    EXPECT_LT(bf16.totalUm2(), fp16.totalUm2());
}

TEST(AlignedWidth, MantissaPlusGuard)
{
    EXPECT_EQ(alignedWidth(ActFormat::FP16), 24);
    EXPECT_EQ(alignedWidth(ActFormat::BF16), 21);
    EXPECT_EQ(alignedWidth(ActFormat::FP32), 37);
}

TEST(TotalArea, IncludesBuffers)
{
    const double mpu_only =
        mpuArea(cfg(EngineKind::FIGLUT_I), tech).totalMm2();
    const double with_buffers =
        engineTotalAreaMm2(cfg(EngineKind::FIGLUT_I), tech);
    EXPECT_GT(with_buffers, mpu_only);
}

TEST(TotalArea, PlausibleMm2Range)
{
    for (const auto e : kAllEngines) {
        const double mm2 = engineTotalAreaMm2(cfg(e), tech);
        EXPECT_GT(mm2, 1.0) << engineName(e);
        EXPECT_LT(mm2, 60.0) << engineName(e);
    }
}

} // namespace
} // namespace figlut
