/** @file Calibration tests for the LUT power models (Figs. 6/8/9,
 *  Table III). These assert the paper's relative shapes hold. */

#include <gtest/gtest.h>

#include "arch/lut_power.h"
#include "common/logging.h"

namespace figlut {
namespace {

const TechParams &tech = TechParams::default28nm();

LutConfig
cfg(int mu, int k = 1, int bits = 32)
{
    LutConfig c;
    c.mu = mu;
    c.valueBits = bits;
    c.fanout = k;
    return c;
}

TEST(Fig6, RflutWorseThanFpAdder)
{
    // RFLUT read power exceeds the FP-adder baseline for mu=4 and 8.
    EXPECT_GT(relativeReadPower(LutImpl::RFLUT, cfg(4), 24, tech), 1.0);
    EXPECT_GT(relativeReadPower(LutImpl::RFLUT, cfg(8), 24, tech), 1.0);
}

TEST(Fig6, RflutMuFourWorseThanMuEight)
{
    // Paper: mu=4 needs twice the reads of mu=8 but each read is not
    // half the cost (fixed periphery), so mu=4 loses overall.
    EXPECT_GT(relativeReadPower(LutImpl::RFLUT, cfg(4), 24, tech),
              relativeReadPower(LutImpl::RFLUT, cfg(8), 24, tech));
}

TEST(Fig6, FflutBeatsBaselineForSmallMu)
{
    EXPECT_LT(relativeReadPower(LutImpl::FFLUT, cfg(2), 24, tech), 1.0);
    EXPECT_LT(relativeReadPower(LutImpl::FFLUT, cfg(4), 24, tech), 1.0);
}

TEST(Fig6, FflutMuEightBlowsUp)
{
    // The 2^8-entry array is "significantly large": well above the
    // baseline, which is why mu=8 is excluded from the design space.
    EXPECT_GT(relativeReadPower(LutImpl::FFLUT, cfg(8), 24, tech), 2.0);
}

TEST(Fig6, FflutBeatsRflutAtTheDesignPoint)
{
    // At mu=4 (the chosen configuration) the FFLUT is the clear
    // winner. At mu=8 the FF array's size erases the advantage —
    // which is exactly why the paper excludes mu=8.
    EXPECT_LT(relativeReadPower(LutImpl::FFLUT, cfg(4), 24, tech),
              relativeReadPower(LutImpl::RFLUT, cfg(4), 24, tech));
    EXPECT_GT(relativeReadPower(LutImpl::FFLUT, cfg(8), 24, tech),
              relativeReadPower(LutImpl::RFLUT, cfg(8), 24, tech));
}

TEST(Fig8, AtKOneMuFourCostsMoreThanMuTwo)
{
    // Unshared LUTs: the bigger mu=4 table dominates.
    EXPECT_GT(relativeReadPower(LutImpl::FFLUT, cfg(4, 1), 24, tech),
              relativeReadPower(LutImpl::FFLUT, cfg(2, 1), 24, tech));
}

TEST(Fig8, AtKThirtyTwoMuFourWins)
{
    // Shared LUTs amortize the table: mu=4 halves the RAC count per
    // work unit and wins, which is why the paper picks mu=4.
    EXPECT_LT(relativeReadPower(LutImpl::FFLUT, cfg(4, 32), 24, tech),
              relativeReadPower(LutImpl::FFLUT, cfg(2, 32), 24, tech));
}

TEST(Fig8, SharingReducesRelativePower)
{
    for (const int mu : {2, 4}) {
        const double k1 =
            relativeReadPower(LutImpl::FFLUT, cfg(mu, 1), 24, tech);
        const double k32 =
            relativeReadPower(LutImpl::FFLUT, cfg(mu, 32), 24, tech);
        EXPECT_LT(k32, k1) << "mu=" << mu;
    }
}

TEST(Fig8, FiglutDesignPointWellBelowBaseline)
{
    // The chosen configuration (mu=4, k=32) must deliver a clear
    // energy win over FP adders — the core of the paper's claim.
    EXPECT_LT(relativeReadPower(LutImpl::FFLUT, cfg(4, 32), 24, tech),
              0.5);
}

TEST(Fig9, PerRacPowerIsUShapedWithMinAtThirtyTwo)
{
    auto p_rac = [&](int k) {
        return pePower(LutImpl::FFLUT, cfg(4, k), false, 24, tech)
            .perRacFj;
    };
    // Sharp drop from k=1, minimum at 32, rising after.
    EXPECT_GT(p_rac(1), p_rac(8));
    EXPECT_GT(p_rac(8), p_rac(32));
    EXPECT_LT(p_rac(32), p_rac(128));
    EXPECT_LT(p_rac(128), p_rac(1024));
    for (const int k : {2, 4, 8, 16, 64, 128, 256})
        EXPECT_GE(p_rac(k), p_rac(32)) << "k=" << k;
}

TEST(Fig9, PePowerGrowsWithK)
{
    double prev = 0.0;
    for (const int k : {1, 2, 4, 8, 16, 32, 64}) {
        const double p =
            pePower(LutImpl::FFLUT, cfg(4, k), false, 24, tech).totalFj;
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST(TableIII, HalfLutHalvesHoldPower)
{
    const auto full = lutPower(LutImpl::FFLUT, cfg(4), tech);
    const auto half = lutPower(LutImpl::HFFLUT, cfg(4), tech);
    EXPECT_NEAR(half.holdFj / full.holdFj, 0.5, 0.01); // paper: 0.494
}

TEST(TableIII, MuxAndDecoderAreTrivialVsLut)
{
    const auto full = lutPower(LutImpl::FFLUT, cfg(4), tech);
    const auto half = lutPower(LutImpl::HFFLUT, cfg(4), tech);
    // FFLUT mux ~ 0.003 of the LUT hold power.
    EXPECT_NEAR(full.readFj / full.holdFj, 0.003, 0.002);
    EXPECT_EQ(full.decoderFj, 0.0);
    // hFFLUT mux + decoder ~ 0.005 of the *full* LUT hold power.
    EXPECT_NEAR((half.readFj + half.decoderFj) / full.holdFj, 0.005,
                0.003);
    // Decoder alone is still tiny.
    EXPECT_LT(half.decoderFj, 0.01 * full.holdFj);
}

TEST(LutPower, RacIntegerCheaperThanFp)
{
    EXPECT_LT(racAccumulateEnergy(true, 26, tech),
              racAccumulateEnergy(false, 24, tech));
}

TEST(LutPower, InvalidConfigPanics)
{
    EXPECT_THROW(lutPower(LutImpl::FFLUT, cfg(1), tech), PanicError);
    EXPECT_THROW(lutPower(LutImpl::FFLUT, cfg(11), tech), PanicError);
    auto bad = cfg(4);
    bad.fanout = 0;
    EXPECT_THROW(lutPower(LutImpl::FFLUT, bad, tech), PanicError);
}

} // namespace
} // namespace figlut
