/** @file Tests for the 28nm technology model calibration. */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/tech_params.h"
#include "common/logging.h"

namespace figlut {
namespace {

const TechParams &tech = TechParams::default28nm();

TEST(TechParams, FpAddAnchors)
{
    // Horowitz-derived anchors scaled to 28nm: FP16 ~240 fJ,
    // FP32 ~540 fJ, BF16 between the two but cheaper than FP16.
    EXPECT_NEAR(tech.fpAddEnergy(11), 239.0, 25.0);
    EXPECT_NEAR(tech.fpAddEnergy(24), 538.0, 50.0);
    EXPECT_LT(tech.fpAddEnergy(8), tech.fpAddEnergy(11));
}

TEST(TechParams, FpMulAnchors)
{
    EXPECT_NEAR(tech.fpMulEnergy(11), 660.0, 80.0);
    EXPECT_NEAR(tech.fpMulEnergy(24), 2200.0, 300.0);
}

TEST(TechParams, FpMulCostlierThanAdd)
{
    for (const int sig : {8, 11, 24})
        EXPECT_GT(tech.fpMulEnergy(sig), tech.fpAddEnergy(sig));
}

TEST(TechParams, IntOpsScaleWithWidth)
{
    EXPECT_DOUBLE_EQ(tech.intAddEnergy(32), 2.0 * tech.intAddEnergy(16));
    // Multiplier energy follows the partial-product count a*b.
    EXPECT_DOUBLE_EQ(tech.intMulEnergy(8, 8),
                     2.0 * tech.intMulEnergy(4, 8));
    EXPECT_DOUBLE_EQ(tech.intMulEnergy(8, 8),
                     4.0 * tech.intMulEnergy(4, 4));
}

TEST(TechParams, IntFarCheaperThanFp)
{
    // The pre-alignment engines' whole premise.
    EXPECT_LT(tech.intAddEnergy(24), 0.2 * tech.fpAddEnergy(24));
    EXPECT_LT(tech.intMulEnergy(24, 4), 0.5 * tech.fpMulEnergy(11));
}

TEST(TechParams, FanoutMultiplierShape)
{
    EXPECT_DOUBLE_EQ(tech.fanoutMultiplier(1), 1.0);
    EXPECT_GT(tech.fanoutMultiplier(2), 1.0);
    // Monotone increasing.
    double prev = 0.0;
    for (int k = 1; k <= 256; k *= 2) {
        const double m = tech.fanoutMultiplier(k);
        EXPECT_GT(m, prev);
        prev = m;
    }
}

TEST(TechParams, FanoutOptimumAtThirtyTwo)
{
    // m(k)/k (per-reader LUT cost) is minimized exactly at k = 32 —
    // the paper's chosen design point (Fig. 9).
    auto per_reader = [&](int k) {
        return tech.fanoutMultiplier(k) / static_cast<double>(k);
    };
    for (int k = 2; k <= 1024; k *= 2) {
        if (k != 32) {
            EXPECT_GT(per_reader(k), per_reader(32)) << "k=" << k;
        }
    }
    EXPECT_LT(per_reader(32), per_reader(31));
    EXPECT_LT(per_reader(32), per_reader(33));
}

TEST(TechParams, MemoryHierarchyOrdering)
{
    // DRAM >> SRAM >> flip-flop per bit.
    EXPECT_GT(tech.dramPerBitFj, 10.0 * tech.sramReadPerBitFj);
    EXPECT_GT(tech.sramReadPerBitFj, 5.0 * tech.ffHoldPerBitFj);
}

TEST(TechParams, ConversionHelpers)
{
    EXPECT_GT(tech.dequantEnergyFj(8, 11), tech.dequantEnergyFj(4, 11));
    EXPECT_GT(tech.prealignEnergyFj(24), 0.0);
    EXPECT_GT(tech.i2fEnergyFj(24), 0.0);
}

TEST(TechParams, AreaHelpersArePositiveAndMonotone)
{
    EXPECT_GT(tech.fpAddArea(24), tech.fpAddArea(11));
    EXPECT_GT(tech.fpMulArea(24), tech.fpMulArea(11));
    EXPECT_GT(tech.intMulArea(24, 8), tech.intMulArea(24, 4));
    EXPECT_GT(tech.ffArea(64), tech.ffArea(32));
}

TEST(TechParams, InvalidWidthsPanic)
{
    EXPECT_THROW(tech.intAddEnergy(0), PanicError);
    EXPECT_THROW(tech.intMulEnergy(4, 0), PanicError);
    EXPECT_THROW(tech.fpAddEnergy(-1), PanicError);
    EXPECT_THROW(tech.fanoutMultiplier(0), PanicError);
}

} // namespace
} // namespace figlut
