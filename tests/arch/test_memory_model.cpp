/** @file Tests for the SRAM/DRAM models. */

#include <gtest/gtest.h>

#include "arch/memory_model.h"
#include "common/logging.h"

namespace figlut {
namespace {

const TechParams &tech = TechParams::default28nm();

TEST(Sram, EnergiesScaleLinearly)
{
    const SramModel sram(tech);
    EXPECT_DOUBLE_EQ(sram.readEnergyFj(128),
                     2.0 * sram.readEnergyFj(64));
    EXPECT_DOUBLE_EQ(sram.writeEnergyFj(128),
                     2.0 * sram.writeEnergyFj(64));
    EXPECT_GT(sram.writeEnergyFj(64), sram.readEnergyFj(64));
}

TEST(Sram, AreaScalesWithCapacity)
{
    const SramModel sram(tech);
    EXPECT_DOUBLE_EQ(sram.areaUm2(2.0e6), 2.0 * sram.areaUm2(1.0e6));
    // 1 MiB should land in the few-mm^2 range.
    const double mm2 = sram.areaUm2(8.0 * 1024 * 1024) * 1e-6;
    EXPECT_GT(mm2, 1.0);
    EXPECT_LT(mm2, 10.0);
}

TEST(Sram, NegativeSizePanics)
{
    const SramModel sram(tech);
    EXPECT_THROW(sram.readEnergyFj(-1.0), PanicError);
    EXPECT_THROW(sram.writeEnergyFj(-1.0), PanicError);
    EXPECT_THROW(sram.areaUm2(-1.0), PanicError);
}

TEST(Dram, EnergyAndBandwidth)
{
    const DramModel dram(tech);
    EXPECT_DOUBLE_EQ(dram.accessEnergyFj(8), 8.0 * tech.dramPerBitFj);
    EXPECT_DOUBLE_EQ(dram.transferCycles(tech.dramBytesPerCycle), 1.0);
    EXPECT_DOUBLE_EQ(dram.transferCycles(0.0), 0.0);
    EXPECT_GT(dram.bytesPerCycle(), 0.0);
}

TEST(Dram, NegativeSizePanics)
{
    const DramModel dram(tech);
    EXPECT_THROW(dram.accessEnergyFj(-1.0), PanicError);
    EXPECT_THROW(dram.transferCycles(-1.0), PanicError);
}

TEST(MemTraffic, MergeAccumulates)
{
    MemTraffic a, b;
    a.sramReadBits = 10;
    a.dramBits = 5;
    b.sramReadBits = 1;
    b.sramWriteBits = 2;
    b.dramBits = 3;
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.sramReadBits, 11.0);
    EXPECT_DOUBLE_EQ(a.sramWriteBits, 2.0);
    EXPECT_DOUBLE_EQ(a.dramBits, 8.0);
}

} // namespace
} // namespace figlut
