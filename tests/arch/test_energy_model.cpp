/** @file Tests for the energy breakdown bookkeeping. */

#include <gtest/gtest.h>

#include "arch/energy_model.h"
#include "common/logging.h"

namespace figlut {
namespace {

TEST(EnergyBreakdown, TotalSumsCategories)
{
    EnergyBreakdown e;
    e.mpuArithFj = 1;
    e.lutFj = 2;
    e.generatorFj = 3;
    e.registersFj = 4;
    e.vpuFj = 5;
    e.sramFj = 6;
    e.dramFj = 7;
    EXPECT_DOUBLE_EQ(e.totalFj(), 28.0);
    EXPECT_DOUBLE_EQ(e.computeFj(), 15.0);
    EXPECT_DOUBLE_EQ(e.totalJoules(), 28.0e-15);
}

TEST(EnergyBreakdown, MergeAccumulates)
{
    EnergyBreakdown a, b;
    a.mpuArithFj = 10;
    a.dramFj = 1;
    b.mpuArithFj = 5;
    b.sramFj = 2;
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.mpuArithFj, 15.0);
    EXPECT_DOUBLE_EQ(a.sramFj, 2.0);
    EXPECT_DOUBLE_EQ(a.dramFj, 1.0);
}

TEST(EnergyBreakdown, VectorAlignsWithNames)
{
    EnergyBreakdown e;
    e.lutFj = 42;
    const auto names = EnergyBreakdown::categoryNames();
    const auto values = e.toVector();
    ASSERT_EQ(names.size(), values.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (names[i] == "lut")
            EXPECT_DOUBLE_EQ(values[i], 42.0);
        else
            EXPECT_DOUBLE_EQ(values[i], 0.0);
    }
}

TEST(AveragePower, WattsFromEnergyAndCycles)
{
    EnergyBreakdown e;
    e.mpuArithFj = 1e15; // 1 J
    // 1 J over 1e6 cycles at 100 MHz = 0.01 s -> 100 W.
    EXPECT_DOUBLE_EQ(averagePowerW(e, 1e6, 100.0), 100.0);
}

TEST(AveragePower, ZeroCyclesPanics)
{
    EnergyBreakdown e;
    EXPECT_THROW(averagePowerW(e, 0.0, 100.0), PanicError);
}

} // namespace
} // namespace figlut
