/** @file Tests for engine/workload configuration. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/engine_config.h"

namespace figlut {
namespace {

TEST(GemmShape, OpsAndMacs)
{
    GemmShape s;
    s.m = 10;
    s.n = 20;
    s.batch = 3;
    EXPECT_DOUBLE_EQ(s.macs(), 600.0);
    EXPECT_DOUBLE_EQ(s.ops(), 1200.0);
}

TEST(GemmShape, ValidationCatchesBadShapes)
{
    GemmShape s;
    s.m = 0;
    s.n = 4;
    s.batch = 1;
    EXPECT_THROW(s.validate(), FatalError);
    s.m = 4;
    s.weightBits = 0;
    EXPECT_THROW(s.validate(), FatalError);
    s.weightBits = 9;
    EXPECT_THROW(s.validate(), FatalError);
    s.weightBits = 4;
    s.groupSize = 5;
    EXPECT_THROW(s.validate(), FatalError);
    s.groupSize = 4;
    EXPECT_NO_THROW(s.validate());
}

TEST(HwConfig, BitSerialClassification)
{
    HwConfig hw;
    hw.engine = EngineKind::FPE;
    EXPECT_FALSE(hw.bitSerial());
    hw.engine = EngineKind::FIGNA;
    EXPECT_FALSE(hw.bitSerial());
    hw.engine = EngineKind::IFPU;
    EXPECT_TRUE(hw.bitSerial());
    hw.engine = EngineKind::FIGLUT_F;
    EXPECT_TRUE(hw.bitSerial());
    hw.engine = EngineKind::FIGLUT_I;
    EXPECT_TRUE(hw.bitSerial());
}

TEST(HwConfig, IntegerDatapathClassification)
{
    HwConfig hw;
    hw.engine = EngineKind::FPE;
    EXPECT_FALSE(hw.integerDatapath());
    hw.engine = EngineKind::FIGLUT_F;
    EXPECT_FALSE(hw.integerDatapath());
    hw.engine = EngineKind::FIGNA;
    EXPECT_TRUE(hw.integerDatapath());
    hw.engine = EngineKind::FIGLUT_I;
    EXPECT_TRUE(hw.integerDatapath());
}

TEST(HwConfig, FixedEnginesPadSubFourBit)
{
    HwConfig hw;
    hw.engine = EngineKind::FIGNA;
    hw.fixedWeightBits = 4;
    EXPECT_EQ(hw.processedWeightBits(2), 4);
    EXPECT_EQ(hw.processedWeightBits(4), 4);
    EXPECT_THROW(hw.processedWeightBits(8), FatalError);
    hw.fixedWeightBits = 8;
    EXPECT_EQ(hw.processedWeightBits(8), 8);
    EXPECT_EQ(hw.processedWeightBits(3), 8);
}

TEST(HwConfig, BitSerialProcessesNativeWidth)
{
    HwConfig hw;
    hw.engine = EngineKind::FIGLUT_I;
    for (int q = 1; q <= 8; ++q)
        EXPECT_EQ(hw.processedWeightBits(q), q);
}

TEST(HwConfig, PeakBinaryLanesEqualAcrossEngines)
{
    // The paper's equal-throughput configuration: 16384 binary lanes.
    for (const auto e : kAllEngines) {
        HwConfig hw;
        hw.engine = e;
        EXPECT_DOUBLE_EQ(hw.peakBinaryLanes(), 16384.0)
            << engineName(e);
    }
}

TEST(HwConfig, DescribeMentionsEngineAndFormat)
{
    HwConfig hw;
    hw.engine = EngineKind::FIGLUT_I;
    hw.actFormat = ActFormat::BF16;
    const auto text = hw.describe();
    EXPECT_NE(text.find("FIGLUT-I"), std::string::npos);
    EXPECT_NE(text.find("BF16"), std::string::npos);
}

TEST(HwConfig, NumericsPlumbsExecPolicy)
{
    HwConfig hw;
    hw.actFormat = ActFormat::BF16;
    hw.mu = 6;
    hw.exec.backend = LutGemmBackend::Threaded;
    hw.exec.threads = 3;
    hw.exec.blockRows = 17;
    const NumericsConfig nc = hw.numerics();
    EXPECT_EQ(nc.actFormat, ActFormat::BF16);
    EXPECT_EQ(nc.mu, 6);
    EXPECT_EQ(nc.backend, LutGemmBackend::Threaded);
    EXPECT_EQ(nc.threads, 3);
    EXPECT_EQ(nc.blockRows, 17);
}

TEST(ExecConfig, ValidationCatchesBadBlockRows)
{
    ExecConfig exec;
    EXPECT_NO_THROW(exec.validate()); // Reference ignores blockRows
    exec.blockRows = 0;
    EXPECT_NO_THROW(exec.validate());
    exec.backend = LutGemmBackend::Threaded;
    EXPECT_THROW(exec.validate(), FatalError);
    exec.blockRows = 1;
    EXPECT_NO_THROW(exec.validate());
    exec.threads = kMaxLutGemmThreads + 1;
    EXPECT_THROW(exec.validate(), FatalError);

    HwConfig hw;
    hw.exec.backend = LutGemmBackend::Threaded;
    hw.exec.blockRows = -2;
    EXPECT_THROW(hw.validate(), FatalError); // plumbed into HwConfig
}

TEST(HwConfig, ValidationCatchesBadParams)
{
    HwConfig hw;
    hw.mu = 1;
    EXPECT_THROW(hw.validate(), FatalError);
    hw.mu = 4;
    hw.k = 0;
    EXPECT_THROW(hw.validate(), FatalError);
    hw.k = 32;
    hw.fixedWeightBits = 5;
    EXPECT_THROW(hw.validate(), FatalError);
    hw.fixedWeightBits = 8;
    EXPECT_NO_THROW(hw.validate());
}

} // namespace
} // namespace figlut
