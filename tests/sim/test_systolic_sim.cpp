/** @file Detailed systolic simulator: functional and cycle-exactness
 *  tests, including cross-validation of the analytic timing model. */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/systolic_sim.h"
#include "sim/timing_model.h"

namespace figlut {
namespace {

Matrix<int32_t>
randomInts(std::size_t rows, std::size_t cols, Rng &rng, int lo, int hi)
{
    Matrix<int32_t> m(rows, cols);
    for (auto &v : m)
        v = static_cast<int32_t>(rng.uniformInt(lo, hi));
    return m;
}

/** Reference: out(c, b) = sum_r w(r, c) * x(r, b). */
Matrix<int64_t>
reference(const Matrix<int32_t> &w, const Matrix<int32_t> &x)
{
    Matrix<int64_t> out(w.cols(), x.cols(), 0);
    for (std::size_t c = 0; c < w.cols(); ++c)
        for (std::size_t b = 0; b < x.cols(); ++b) {
            int64_t acc = 0;
            for (std::size_t r = 0; r < w.rows(); ++r)
                acc += static_cast<int64_t>(w(r, c)) * x(r, b);
            out(c, b) = acc;
        }
    return out;
}

TEST(SystolicSim, OneByOneArray)
{
    SystolicSim sim({1, 1});
    Matrix<int32_t> w(1, 1, 3);
    Matrix<int32_t> x(1, 2);
    x(0, 0) = 5;
    x(0, 1) = -7;
    const auto run = sim.runTile(w, x);
    EXPECT_EQ(run.outputs(0, 0), 15);
    EXPECT_EQ(run.outputs(0, 1), -21);
    EXPECT_EQ(run.cycles, SystolicSim::expectedCycles(1, 1, 2));
}

TEST(SystolicSim, FunctionalMatchesReference)
{
    Rng rng(801);
    SystolicSim sim({8, 8});
    const auto w = randomInts(8, 8, rng, -50, 50);
    const auto x = randomInts(8, 5, rng, -100, 100);
    const auto run = sim.runTile(w, x);
    EXPECT_TRUE(run.outputs == reference(w, x));
}

TEST(SystolicSim, MacEventCountIsExact)
{
    Rng rng(802);
    SystolicSim sim({4, 6});
    const auto w = randomInts(4, 6, rng, -5, 5);
    const auto x = randomInts(4, 3, rng, -5, 5);
    const auto run = sim.runTile(w, x);
    EXPECT_EQ(run.macEvents, 4u * 6 * 3);
}

/** Property sweep over geometries and batch sizes. */
struct GeomCase
{
    int rows;
    int cols;
    std::size_t batch;
};

class SystolicGeometry : public ::testing::TestWithParam<GeomCase>
{};

TEST_P(SystolicGeometry, CyclesMatchClosedForm)
{
    const auto p = GetParam();
    Rng rng(900 + static_cast<uint64_t>(p.rows * 31 + p.cols));
    SystolicSim sim({p.rows, p.cols});
    const auto w = randomInts(static_cast<std::size_t>(p.rows),
                              static_cast<std::size_t>(p.cols), rng,
                              -9, 9);
    const auto x = randomInts(static_cast<std::size_t>(p.rows), p.batch,
                              rng, -9, 9);
    const auto run = sim.runTile(w, x);
    EXPECT_EQ(run.cycles,
              SystolicSim::expectedCycles(p.rows, p.cols, p.batch));
    EXPECT_TRUE(run.outputs == reference(w, x));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SystolicGeometry,
    ::testing::Values(GeomCase{1, 4, 3}, GeomCase{4, 1, 3},
                      GeomCase{2, 2, 1}, GeomCase{3, 5, 7},
                      GeomCase{5, 3, 7}, GeomCase{8, 8, 16},
                      GeomCase{16, 4, 2}, GeomCase{4, 16, 33},
                      GeomCase{12, 12, 12}));

TEST(SystolicSim, CrossValidatesAnalyticTimingModel)
{
    // The analytic model's per-tile cycle formula (batch + fill) must
    // equal the detailed simulator's measured cycles for the
    // fixed-precision engine geometry.
    Rng rng(803);
    for (const std::size_t batch : {1u, 8u, 32u}) {
        const int rows = 16, cols = 16;
        SystolicSim sim({rows, cols});
        const auto w = randomInts(rows, cols, rng, -3, 3);
        const auto x = randomInts(rows, batch, rng, -3, 3);
        const auto run = sim.runTile(w, x);

        // Analytic: one 16x16 tile of a hypothetical engine.
        const double fill = rows + cols - 2;
        EXPECT_EQ(static_cast<double>(run.cycles),
                  static_cast<double>(batch) + fill);
    }
}

TEST(SystolicSim, AnalyticFpeFillMatchesDetailedAtFullSize)
{
    // tileWalk's FPE fill must equal the detailed closed form for the
    // 64x64 array.
    HwConfig hw;
    hw.engine = EngineKind::FPE;
    GemmShape s;
    s.m = 64;
    s.n = 64;
    s.batch = 32;
    s.weightBits = 4;
    const auto walk = tileWalk(hw, s);
    EXPECT_EQ(walk.cyclesPerTile,
              static_cast<double>(
                  SystolicSim::expectedCycles(64, 64, 32)));
}

TEST(SystolicSim, InvalidInputsThrow)
{
    SystolicSim sim({2, 2});
    Matrix<int32_t> w(2, 2, 1);
    Matrix<int32_t> bad_w(3, 2, 1);
    Matrix<int32_t> x(2, 1, 1);
    Matrix<int32_t> bad_x(3, 1, 1);
    EXPECT_THROW(sim.runTile(bad_w, x), FatalError);
    EXPECT_THROW(sim.runTile(w, bad_x), FatalError);
    EXPECT_THROW(sim.runTile(w, Matrix<int32_t>(2, 0)), FatalError);
    EXPECT_THROW(SystolicSim({0, 4}), FatalError);
}

TEST(SystolicSim, ZeroWeightsGiveZeroOutputs)
{
    SystolicSim sim({4, 4});
    Matrix<int32_t> w(4, 4, 0);
    Rng rng(804);
    const auto x = randomInts(4, 4, rng, -9, 9);
    const auto run = sim.runTile(w, x);
    for (std::size_t i = 0; i < run.outputs.size(); ++i)
        EXPECT_EQ(run.outputs.at(i), 0);
}

} // namespace
} // namespace figlut
